// ixpmonitor runs the §6.3 IXP study: IPFIX-sampled detection across
// hundreds of member ASes with routing asymmetry and the established-TCP
// spoofing filter, reporting Fig 15 (unique IPs per day per class) and
// Fig 16 (per-AS concentration). It then demonstrates the operational
// counterpart: several member feeds exporting IPFIX concurrently into
// one sharded, wire-fed Detector.
//
//	go run ./examples/ixpmonitor [-clients 24000] [-members 400] [-feeds 4] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/netip"
	"os"
	"sync"

	haystack "repro"
	"repro/internal/flow"
	"repro/internal/ipfix"
	"repro/internal/report"
	"repro/internal/simtime"
)

func main() {
	clients := flag.Int("clients", 24_000, "total client lines across members")
	members := flag.Int("members", 400, "IXP member ASes")
	feeds := flag.Int("feeds", 4, "concurrent IPFIX collector feeds in the wire demo")
	seed := flag.Uint64("seed", 1, "world seed")
	flag.Parse()

	cfg := haystack.DefaultConfig(*seed)
	cfg.IXP.TotalClients = *clients
	cfg.IXP.Members = *members
	sys, err := haystack.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("wild IXP: %d members, %d client lines, IPFIX sampling an order of magnitude below the ISP\n\n",
		*members, *clients)

	for _, id := range []string{"F15", "F16"} {
		tbl, err := sys.Run(id)
		if err != nil {
			log.Fatal(err)
		}
		if err := report.Text(os.Stdout, tbl); err != nil {
			log.Fatal(err)
		}
	}

	wireDemo(sys, *feeds)
}

// wireDemo is the operational path at the IXP: every member AS exports
// IPFIX on its own observation domain, and the collector goroutines
// feed one detector concurrently — each Feed owns a pipeline producer,
// and members see disjoint client addresses, so the merged detections
// equal a sequential run.
func wireDemo(sys *haystack.System, feeds int) {
	det := sys.NewShardedDetector(0.4, 8)
	defer det.Close()
	h := simtime.HourOf(sys.StudyStart()) + 12

	var wg sync.WaitGroup
	for fi := 0; fi < feeds; fi++ {
		wg.Add(1)
		go func(fi int) {
			defer wg.Done()
			f := det.NewFeed()
			defer f.Close()
			exp := ipfix.NewExporter(uint32(fi + 1))
			// Each member's clients talk to a slice of the monitored
			// backends, keyed off the member index.
			var recs []flow.Record
			for i, r := range sys.Rules() {
				if i%feeds != fi {
					continue
				}
				for j, name := range r.Domains {
					ips := sys.ServiceIPs(name)
					if len(ips) == 0 {
						continue
					}
					port := uint16(443)
					if d, ok := sys.Catalog().Domains[name]; ok {
						port = d.Port
					}
					recs = append(recs, flow.Record{
						Key: flow.Key{
							Src:     netip.AddrFrom4([4]byte{185, byte(fi + 1), byte(i), byte(j)}),
							Dst:     ips[0],
							SrcPort: uint16(50000 + j), DstPort: port, Proto: flow.ProtoTCP,
						},
						Packets: 2, Bytes: 1100, TCPFlags: 0x18, Hour: h,
					})
				}
			}
			msgs, err := exp.Export(recs, 30)
			if err != nil {
				log.Fatal(err)
			}
			for _, m := range msgs {
				if err := f.FeedIPFIX(m); err != nil {
					log.Fatal(err)
				}
			}
		}(fi)
	}
	wg.Wait()

	dets := det.Detections()
	fmt.Printf("\nwire demo: %d concurrent member feeds into an %d-shard detector → %d (client, rule) detections",
		feeds, det.Shards(), len(dets))
	if skipped := det.SkippedRecords(); skipped > 0 {
		fmt.Printf(" (%d records skipped)", skipped)
	}
	fmt.Println()
}
