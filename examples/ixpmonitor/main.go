// ixpmonitor runs the §6.3 IXP study: IPFIX-sampled detection across
// hundreds of member ASes with routing asymmetry and the established-TCP
// spoofing filter, reporting Fig 15 (unique IPs per day per class) and
// Fig 16 (per-AS concentration).
//
//	go run ./examples/ixpmonitor [-clients 24000] [-members 400] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	haystack "repro"
	"repro/internal/report"
)

func main() {
	clients := flag.Int("clients", 24_000, "total client lines across members")
	members := flag.Int("members", 400, "IXP member ASes")
	seed := flag.Uint64("seed", 1, "world seed")
	flag.Parse()

	cfg := haystack.DefaultConfig(*seed)
	cfg.IXP.TotalClients = *clients
	cfg.IXP.Members = *members
	sys, err := haystack.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("wild IXP: %d members, %d client lines, IPFIX sampling an order of magnitude below the ISP\n\n",
		*members, *clients)

	for _, id := range []string{"F15", "F16"} {
		tbl, err := sys.Run(id)
		if err != nil {
			log.Fatal(err)
		}
		if err := report.Text(os.Stdout, tbl); err != nil {
			log.Fatal(err)
		}
	}
}
