// ixpmonitor runs the §6.3 IXP study: IPFIX-sampled detection across
// hundreds of member ASes with routing asymmetry and the established-TCP
// spoofing filter, reporting Fig 15 (unique IPs per day per class) and
// Fig 16 (per-AS concentration). It then demonstrates the operational
// counterpart: several member ASes exporting IPFIX over real loopback
// UDP sockets into one sharded, wire-fed Detector (Detector.Listen).
//
//	go run ./examples/ixpmonitor [-clients 24000] [-members 400] [-feeds 4] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/netip"
	"os"
	"sync"
	"time"

	haystack "repro"
	"repro/internal/collector"
	"repro/internal/flow"
	"repro/internal/ipfix"
	"repro/internal/report"
	"repro/internal/simtime"
)

func main() {
	clients := flag.Int("clients", 24_000, "total client lines across members")
	members := flag.Int("members", 400, "IXP member ASes")
	feeds := flag.Int("feeds", 4, "concurrent IPFIX collector feeds in the wire demo")
	seed := flag.Uint64("seed", 1, "world seed")
	flag.Parse()

	cfg := haystack.DefaultConfig(*seed)
	cfg.IXP.TotalClients = *clients
	cfg.IXP.Members = *members
	sys, err := haystack.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("wild IXP: %d members, %d client lines, IPFIX sampling an order of magnitude below the ISP\n\n",
		*members, *clients)

	for _, id := range []string{"F15", "F16"} {
		tbl, err := sys.Run(id)
		if err != nil {
			log.Fatal(err)
		}
		if err := report.Text(os.Stdout, tbl); err != nil {
			log.Fatal(err)
		}
	}

	wireDemo(sys, *feeds)
}

// wireDemo is the operational path at the IXP: every member AS exports
// IPFIX on its own observation domain over a real UDP socket, and the
// collector's sticky source→feed assignment keeps each member's
// stream (template cache, sequence anchor, client ordering) on one
// feed. Members see disjoint client addresses, so the merged
// detections equal a sequential run.
func wireDemo(sys *haystack.System, feeds int) {
	det := sys.NewShardedDetector(0.4, 8)
	defer det.Close()

	// Live event stream: detections arrive pushed, as an IXP operator
	// would consume them, rather than polled after the fact.
	evCh, cancelEv := det.Subscribe()
	defer cancelEv()
	events := 0
	evDone := make(chan struct{}) // haystack:unbounded close-only drain-complete signal; never carries data
	// haystack:allow golifetime det.Close (deferred above) closes evCh, so the drain exits with the detector
	go func() {
		defer close(evDone)
		for range evCh {
			events++
		}
	}()

	srv, err := det.Listen(haystack.ListenConfig{
		Config: collector.Config{
			Listeners:  []collector.Listener{{Addr: "127.0.0.1:0", Proto: collector.ProtoIPFIX}},
			MaxFeeds:   feeds,
			MinFeeds:   feeds, // each member gets its own lane at once
			QueueLen:   4096,
			ReadBuffer: 4 << 20, // headroom against bursty senders
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	addr := srv.Addrs()[0].String()
	h := simtime.HourOf(sys.StudyStart()) + 12

	var wg sync.WaitGroup
	sent := 0
	var sentMu sync.Mutex
	for fi := 0; fi < feeds; fi++ {
		wg.Add(1)
		go func(fi int) {
			defer wg.Done()
			// A fresh Dial per member: the distinct source port is the
			// member's exporter identity on the wire.
			conn, err := net.Dial("udp", addr)
			if err != nil {
				log.Fatal(err)
			}
			defer conn.Close()
			exp := ipfix.NewExporter(uint32(fi + 1))
			// Each member's clients talk to a slice of the monitored
			// backends, keyed off the member index.
			var recs []flow.Record
			for i, r := range sys.Rules() {
				if i%feeds != fi {
					continue
				}
				for j, name := range r.Domains {
					ips := sys.ServiceIPs(name)
					if len(ips) == 0 {
						continue
					}
					port := uint16(443)
					if d, ok := sys.Catalog().Domains[name]; ok {
						port = d.Port
					}
					recs = append(recs, flow.Record{
						Key: flow.Key{
							Src:     netip.AddrFrom4([4]byte{185, byte(fi + 1), byte(i), byte(j)}),
							Dst:     ips[0],
							SrcPort: uint16(50000 + j), DstPort: port, Proto: flow.ProtoTCP,
						},
						Packets: 2, Bytes: 1100, TCPFlags: 0x18, Hour: h,
					})
				}
			}
			// One reused encode buffer per member: AppendMessage is the
			// allocation-free send path a sustained exporter uses.
			var msgBuf []byte
			msgs := 0
			for rem := recs; len(rem) > 0; msgs++ {
				msgBuf = msgBuf[:0]
				var n int
				msgBuf, n, err = exp.AppendMessage(msgBuf, rem, 30)
				if err != nil {
					log.Fatal(err)
				}
				if _, err := conn.Write(msgBuf); err != nil {
					log.Fatal(err)
				}
				rem = rem[n:]
				if msgs%16 == 15 {
					time.Sleep(time.Millisecond) // pace loopback bursts
				}
			}
			sentMu.Lock()
			sent += msgs
			sentMu.Unlock()
		}(fi)
	}
	wg.Wait()

	// Wait for the sockets to see every datagram, then drain: Close
	// decodes all queued datagrams and closes the feeds, leaving the
	// detector quiescent for an exact read.
	for deadline := time.Now().Add(10 * time.Second); srv.Stats().Datagrams < uint64(sent); {
		if time.Now().After(deadline) {
			log.Fatalf("collector received %d of %d datagrams", srv.Stats().Datagrams, sent)
		}
		time.Sleep(time.Millisecond)
	}
	srv.Close()

	st := srv.Stats()
	dets := det.Detections()
	// Closing the detector drains the event broker and closes the
	// subscription channel, so the event count below is complete.
	det.Close()
	<-evDone
	fmt.Printf("\nwire demo: %d member exporters over UDP %s into an %d-shard detector\n",
		feeds, addr, det.Shards())
	fmt.Printf("  %d datagrams, %d records, %d dropped, %d decode errors → %d (client, rule) detections (%d live events)\n",
		st.Datagrams, st.Records, st.DroppedDatagrams, st.DecodeErrors, len(dets), events)
	for _, f := range st.Feeds {
		fmt.Printf("  feed %d: %d sources, %d datagrams, %d records, %d template drops, %d gaps\n",
			f.Feed, f.Sources, f.Datagrams, f.Records, f.TemplateDrops, f.SequenceGaps)
	}
	if skipped := det.SkippedRecords(); skipped > 0 {
		fmt.Printf("  (%d records skipped)\n", skipped)
	}
}
