// incident demonstrates the §7.2 security application: given a device
// class implicated in an attack (a botnet of compromised doorbells),
// the ISP uses the detection dictionary to find which subscriber lines
// host that device — aggregated to /24s for notification — without
// inspecting any payload.
//
//	go run ./examples/incident [-device "Ring Doorbell"] [-lines 30000] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/netip"
	"sort"

	"repro/internal/classify"
	"repro/internal/dedicated"
	"repro/internal/detect"
	"repro/internal/isp"
	"repro/internal/rules"
	"repro/internal/simrand"
	"repro/internal/simtime"
	"repro/internal/world"
)

func main() {
	device := flag.String("device", "Ring Doorbell", "rule name of the implicated device class")
	lines := flag.Int("lines", 30_000, "subscriber lines")
	seed := flag.Uint64("seed", 1, "world seed")
	flag.Parse()
	if err := run(*device, *lines, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(device string, lines int, seed uint64) error {
	w, err := world.Build(seed)
	if err != nil {
		return err
	}
	days := w.Window.Days()
	pipe := dedicated.New(w.PDNS, w.Scans, days[0], days[len(days)-1])
	census := pipe.ClassifyAll(classify.DefaultKB().ClassifyAll(w.Catalog.DomainNames()).IoTSpecific())
	dict, err := rules.Compile(w.Catalog, census, w.PDNS, days)
	if err != nil {
		return err
	}
	ri := dict.RuleIndex(device)
	if ri < 0 {
		return fmt.Errorf("no rule named %q (try `haystack rules`)", device)
	}

	cfg := isp.DefaultConfig()
	cfg.Lines = lines
	pop := isp.NewPopulation(simrand.New(seed), w.Catalog, cfg, w.Window)
	eng := detect.New(dict, 0.4)

	// One day of sampled flow data suffices for most device classes.
	day := days[0]
	idLine := map[detect.SubID]int32{}
	window := simtime.Window{Start: day.FirstHour(), End: day.FirstHour() + 24}
	pop.SimulateWindow(window,
		func(d simtime.Day) isp.Resolver { return w.ResolverOn(d) },
		func(line int32, sub detect.SubID, h simtime.Hour, ip netip.Addr, port uint16, pkts uint64) {
			idLine[sub] = line
			eng.Observe(sub, h, ip, port, pkts)
		})

	// Collect affected lines and aggregate to /24s for notification.
	var affected []int32
	eng.EachDetected(func(sub detect.SubID, rule int, _ simtime.Hour) {
		if rule == ri {
			affected = append(affected, idLine[sub])
		}
	})
	per24 := map[uint32]int{}
	for _, line := range affected {
		per24[pop.Slash24(line)]++
	}

	groundTruth := pop.ProductCount(dict.Rules[ri].Products[0])
	fmt.Printf("incident: device class %q implicated (rule level %s)\n", device, dict.Rules[ri].Level)
	fmt.Printf("  subscriber lines hosting the class (ground truth): %d\n", groundTruth)
	fmt.Printf("  lines identified from one day of 1:1024 sampled flows: %d (%.0f%% coverage)\n",
		len(affected), 100*float64(len(affected))/float64(max(groundTruth, 1)))
	fmt.Printf("  /24 prefixes to notify: %d\n\n", len(per24))

	type bucket struct {
		prefix uint32
		n      int
	}
	var buckets []bucket
	for p, n := range per24 {
		buckets = append(buckets, bucket{p, n})
	}
	sort.Slice(buckets, func(i, j int) bool {
		if buckets[i].n != buckets[j].n {
			return buckets[i].n > buckets[j].n
		}
		return buckets[i].prefix < buckets[j].prefix
	})
	fmt.Println("  densest prefixes:")
	for i, b := range buckets {
		if i == 10 {
			break
		}
		fmt.Printf("    10.%d.%d.0/24  %d affected lines\n", b.prefix>>8&255, b.prefix&255, b.n)
	}
	fmt.Println("\n  next steps per §7.2: notify owners, redirect the device's backend")
	fmt.Println("  domains to a patched endpoint, or rate-limit its service IPs.")
	return nil
}
