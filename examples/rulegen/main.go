// rulegen walks the Fig 7 rule-generation pipeline step by step,
// printing each intermediate decision: §4.1 domain classification,
// §4.2 dedicated-vs-shared verdicts (with the certificate-scan
// fallback), excluded devices, and the final IoT dictionary.
//
//	go run ./examples/rulegen [-seed 1] [-verbose]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"repro/internal/catalog"
	"repro/internal/classify"
	"repro/internal/dedicated"
	"repro/internal/rules"
	"repro/internal/world"
)

func main() {
	seed := flag.Uint64("seed", 1, "world seed")
	verbose := flag.Bool("verbose", false, "print per-domain verdicts")
	flag.Parse()

	w, err := world.Build(*seed)
	if err != nil {
		log.Fatal(err)
	}

	// Step 1 (§4.1): classify every observed domain.
	kb := classify.DefaultKB()
	census := kb.ClassifyAll(w.Catalog.DomainNames())
	p, s, g := census.Counts()
	fmt.Printf("step 1  classify %d observed domains: %d primary, %d support, %d generic\n",
		p+s+g, p, s, g)

	// Step 2 (§4.2.1 + §4.2.2): dedicated vs shared via passive DNS,
	// certificate scans as fallback.
	days := w.Window.Days()
	pipe := dedicated.New(w.PDNS, w.Scans, days[0], days[len(days)-1])
	ded := pipe.ClassifyAll(census.IoTSpecific())
	d, sh, nr, vc := ded.Counts()
	fmt.Printf("step 2  of %d IoT-specific domains: %d dedicated (passive DNS), %d shared, %d recovered via cert scans, %d no record\n",
		len(census.IoTSpecific()), d, sh, vc, nr)
	if *verbose {
		for _, name := range ded.Order {
			r := ded.Results[name]
			tag := ""
			if r.ViaCensys {
				tag = " (via cert scans)"
			}
			fmt.Printf("        %-45s %s%s\n", name, r.Verdict, tag)
		}
	}

	// Step 3 (§4.2.3): devices left without usable domains.
	fmt.Println("step 3  excluded devices (shared-only or no-record backends):")
	for _, prod := range w.Catalog.Products {
		usable, primary := 0, 0
		for _, u := range prod.Uses {
			if u.Domain.Role != catalog.RolePrimary {
				continue
			}
			primary++
			if ded.Usable(u.Domain.Name) {
				usable++
			}
		}
		if primary > 0 && usable == 0 {
			fmt.Printf("        %-22s (0/%d primary domains usable)\n", prod.Name, primary)
		}
	}

	// Step 4 (§4.3): compile the dictionary.
	dict, err := rules.Compile(w.Catalog, ded, w.PDNS, days)
	if err != nil {
		log.Fatal(err)
	}
	if err := dict.Verify(); err != nil {
		log.Fatal(err)
	}
	levels := dict.Levels()
	fmt.Printf("step 4  compiled %d rules: %d platform, %d manufacturer, %d product\n",
		len(dict.Rules), levels[catalog.LevelPlatform], levels[catalog.LevelManufacturer], levels[catalog.LevelProduct])

	byName := make([]string, 0, len(dict.Rules))
	for i := range dict.Rules {
		byName = append(byName, dict.Rules[i].Name)
	}
	sort.Strings(byName)
	for _, name := range byName {
		ri := dict.RuleIndex(name)
		r := &dict.Rules[ri]
		fmt.Printf("        %-22s %-4s %2d domains, %2d IP/port keys on day 1\n",
			r.Name, r.Level, len(r.Domains), len(dict.DomainIPs(days[0], r.Name, r.Domains[0])))
	}
	fmt.Printf("daily hitlist size on day 1: %d (IP, port) keys\n", dict.HitlistSize(days[0]))
}
