// homecapture reproduces the Home-VP's full-packet view (§2.2): it
// synthesizes one hour of ground-truth testbed traffic as real
// Ethernet/IPv4/TCP|UDP frames, writes them to a standard pcap file,
// then re-reads the capture with the zero-copy parser and prints the
// per-device footprint — the raw material of Figs 5, 8 and 9.
//
//	go run ./examples/homecapture [-o capture.pcap] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"

	"repro/internal/flow"
	"repro/internal/packet"
	"repro/internal/pcap"
	"repro/internal/simrand"
	"repro/internal/simtime"
	"repro/internal/traffic"
	"repro/internal/world"
)

func main() {
	out := flag.String("o", "home-vp.pcap", "capture file to write")
	seed := flag.Uint64("seed", 1, "world seed")
	flag.Parse()
	if err := run(*out, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(out string, seed uint64) error {
	w, err := world.Build(seed)
	if err != nil {
		return err
	}
	gen := traffic.New(simrand.New(seed), w.ResolverOn(w.Window.Days()[0]), w.Catalog.Devices())
	hour := simtime.IdleWindow.Start
	obs := gen.HourFlows(hour, traffic.ModeIdle, simtime.IdleWindow)

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	pw, err := pcap.NewWriter(f)
	if err != nil {
		return err
	}

	// One representative frame per sampled packet would be enormous;
	// write one frame per flow record carrying the record's mean
	// packet size, plus the frame count in the capture metadata — the
	// standard trade-off of flow-preserving capture thinning.
	frames := 0
	for _, ob := range obs {
		var l4 any
		if ob.Rec.Key.Proto == flow.ProtoUDP {
			l4 = &packet.UDP{SrcPort: ob.Rec.Key.SrcPort, DstPort: ob.Rec.Key.DstPort}
		} else {
			l4 = &packet.TCP{
				SrcPort: ob.Rec.Key.SrcPort, DstPort: ob.Rec.Key.DstPort,
				Flags: packet.TCPAck | packet.TCPPsh, Window: 65535,
			}
		}
		payload := make([]byte, int(ob.Rec.Bytes/ob.Rec.Packets)-40)
		if len(payload) < 0 {
			payload = nil
		}
		frame, err := packet.Build(&packet.Ethernet{}, &packet.IPv4{
			TTL: 64, Src: ob.Rec.Key.Src, Dst: ob.Rec.Key.Dst,
		}, l4, payload)
		if err != nil {
			return err
		}
		if err := pw.WritePacket(pcap.Packet{Time: hour.Time(), Data: frame}); err != nil {
			return err
		}
		frames++
	}
	if err := pw.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote %d flow-representative frames to %s\n\n", frames, out)

	// Re-read the capture with the DecodingLayer parser and aggregate.
	rf, err := os.Open(out)
	if err != nil {
		return err
	}
	defer rf.Close()
	pr, err := pcap.NewReader(rf)
	if err != nil {
		return err
	}
	var parser packet.Parser
	var decoded []packet.LayerType
	table := flow.NewTable(hour)
	for {
		p, err := pr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		decoded, err = parser.Parse(p.Data, decoded)
		if err != nil {
			return err
		}
		key := flow.Key{Src: parser.IP4.Src, Dst: parser.IP4.Dst, Proto: flow.Proto(parser.IP4.Protocol)}
		switch decoded[2] {
		case packet.LayerTypeTCP:
			key.SrcPort, key.DstPort = parser.TCP.SrcPort, parser.TCP.DstPort
		case packet.LayerTypeUDP:
			key.SrcPort, key.DstPort = parser.UDP.SrcPort, parser.UDP.DstPort
		}
		table.AddPacket(key, uint64(len(p.Data)), 0)
	}

	// Per-device summary by joining flows back to the generator's
	// ground truth (what the Home-VP can always do).
	perDev := map[string]int{}
	for _, ob := range obs {
		perDev[ob.Device.Product.Name]++
	}
	names := make([]string, 0, len(perDev))
	for n := range perDev {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return perDev[names[i]] > perDev[names[j]] })
	fmt.Printf("parsed %d flows back from the capture; busiest products this hour:\n", table.Len())
	for _, n := range names[:10] {
		fmt.Printf("  %-24s %3d active flows\n", n, perDev[n])
	}
	return nil
}
