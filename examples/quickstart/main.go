// Quickstart: build the simulated world, compile the IoT dictionary,
// and detect a device from real NetFlow v9 wire messages — the minimal
// end-to-end path through the public API.
package main

import (
	"fmt"
	"log"
	"net/netip"

	haystack "repro"
	"repro/internal/flow"
	"repro/internal/netflow"
	"repro/internal/simtime"
)

func main() {
	// 1. Assemble the world (testbeds, hosting, passive DNS, cert
	//    scans) and run the §4 pipeline. Deterministic in the seed.
	sys, err := haystack.New(haystack.DefaultConfig(42))
	if err != nil {
		log.Fatal(err)
	}

	// 2. Inspect the compiled dictionary.
	rules := sys.Rules()
	fmt.Printf("compiled %d detection rules, e.g.:\n", len(rules))
	for _, r := range rules[:5] {
		fmt.Printf("  %-20s %-4s %d domains\n", r.Name, r.Level, len(r.Domains))
	}

	// 3. Census numbers from §4 (exact reproduction of the paper).
	for _, id := range []string{"S41", "S42", "S43"} {
		tbl, err := sys.Run(id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s — %s\n", tbl.ID, tbl.Title)
		for _, row := range tbl.Rows {
			fmt.Printf("  %-28s %s\n", row[0], row[1])
		}
	}

	// 4. Operational detection: a subscriber's sampled flow to the
	//    Meross backend arrives as a NetFlow v9 message; the detector
	//    decodes the wire format and applies the dictionary on its
	//    sharded pipeline. Each collector socket gets its own Feed
	//    handle; here one feed suffices.
	det := sys.NewDetector(0.4)
	defer det.Close()
	feed := det.NewFeed()
	dom := sys.Catalog().Domains["mqtt.simmeross.example"]
	ips := sys.ServiceIPs(dom.Name)
	if len(ips) == 0 {
		log.Fatalf("%s does not resolve", dom.Name)
	}

	rec := flow.Record{
		Key: flow.Key{
			Src:     netip.MustParseAddr("100.64.77.3"),
			Dst:     ips[0],
			SrcPort: 49152, DstPort: dom.Port, Proto: flow.ProtoTCP,
		},
		Packets: 2, Bytes: 1200, TCPFlags: 0x18,
		Hour: simtime.HourOf(sys.StudyStart()) + 9,
	}
	exp := netflow.NewExporter(7)
	msgs, err := exp.Export([]flow.Record{rec}, 30)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range msgs {
		if err := feed.FeedNetFlow(m); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("\ndetections from one sampled NetFlow record:")
	for _, d := range det.Detections() {
		fmt.Printf("  subscriber %016x hosts %q (%s) since %s\n",
			d.Subscriber, d.Rule, d.Level, d.First.Format("2006-01-02 15:04"))
	}
}
