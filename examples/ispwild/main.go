// ispwild runs the §6.2 in-the-wild study: a two-week sweep over the
// simulated residential ISP, reporting the Fig 11–14 and Fig 18 series
// (subscriber lines with IoT activity, drill-downs, cumulative growth,
// and actively-used Alexa devices).
//
//	go run ./examples/ispwild [-lines 30000] [-scale 500] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	haystack "repro"
	"repro/internal/report"
)

func main() {
	lines := flag.Int("lines", 30_000, "subscriber lines to simulate")
	scale := flag.Int("scale", 500, "multiplier to paper scale (lines*scale ≈ 15M)")
	seed := flag.Uint64("seed", 1, "world seed")
	flag.Parse()

	cfg := haystack.DefaultConfig(*seed)
	cfg.ISP.Lines = *lines
	cfg.ISP.Scale = *scale
	sys, err := haystack.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("wild ISP: %d lines simulated (×%d ≈ %.1fM at paper scale)\n\n",
		*lines, *scale, float64(*lines)*float64(*scale)/1e6)

	for _, id := range []string{"F11", "F12", "F13", "F14", "F18"} {
		tbl, err := sys.Run(id)
		if err != nil {
			log.Fatal(err)
		}
		if err := report.Summary(os.Stdout, tbl); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("per-day detections for the other 32 device types (Fig 14 rows):")
	tbl, err := sys.Run("F14")
	if err != nil {
		log.Fatal(err)
	}
	if err := report.Text(os.Stdout, tbl); err != nil {
		log.Fatal(err)
	}
}
