package haystack

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"repro/internal/flow"
	"repro/internal/netflow"
	"repro/internal/simtime"
)

// TestStatsConcurrentWithFeeding is the -race regression guard for the
// atomicfield invariant: every counter the metrics surface reads
// (Feed.Stats → netflow/ipfix Dropped and Gaps, Detector.Stats,
// Rotate's window deltas) is hammered by readers while feed goroutines
// drive ingestion. A plain read or write sneaking into any of those
// counters fails this test under -race before haystacklint even runs.
func TestStatsConcurrentWithFeeding(t *testing.T) {
	s := sharedSystem(t)
	det := s.NewShardedDetector(0.4, 2)
	defer det.Close()

	// A small valid stream, plus one untemplated message (data FlowSet
	// before any template) so the Dropped counter moves too.
	var recs []flow.Record
	for j := 0; j < 40; j++ {
		recs = append(recs, flow.Record{
			Key: flow.Key{
				Src:     netip.AddrFrom4([4]byte{10, 0, byte(j / 8), byte(j % 8)}),
				Dst:     netip.AddrFrom4([4]byte{192, 0, 2, byte(j % 4)}),
				SrcPort: uint16(50000 + j), DstPort: 443, Proto: flow.ProtoTCP,
			},
			Packets: uint64(j%5 + 1), Bytes: 900,
			Hour: simtime.Hour(437_000 + j%24),
		})
	}
	exp := netflow.NewExporter(7)
	exp.TemplateEvery = 2 // leave some messages untemplated on replay
	msgs, err := exp.Export(recs, 8)
	if err != nil {
		t.Fatal(err)
	}

	const feeders = 2
	stop := make(chan struct{}) // close-only: test shutdown signal
	var wg sync.WaitGroup
	for i := 0; i < feeders; i++ {
		f := det.NewFeed()
		wg.Add(1)
		go func(f *Feed) {
			defer wg.Done()
			defer f.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, m := range msgs {
					f.FeedNetFlow(m) // decode errors irrelevant; load is the point
				}
				_ = f.Stats() // FeedStats reads the decoders' atomics mid-feed
			}
		}(f)
	}
	// Concurrent readers of every exported counter surface.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = det.Stats()
			_ = det.Rotate()
		}
	}()

	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()

	st := det.Stats()
	if st.RecordsIPv4 == 0 {
		t.Error("no records decoded; the race test exercised nothing")
	}
}

// TestSubscribeConcurrentWithRotate is the -race regression guard for
// the event path: Subscribe consumers draining (and churning — cancel
// and resubscribe mid-run) while Rotate closes windows and multiple
// feeds ingest. The broker, the subscriber registry, and the window
// baseline all interleave here; an unsynchronized touch on any of
// them fails under -race.
func TestSubscribeConcurrentWithRotate(t *testing.T) {
	s := sharedSystem(t)
	det := s.NewShardedDetector(0.4, 2)
	defer det.Close()

	// The same ingest load as TestStatsConcurrentWithFeeding, but with
	// repeated (src, dst) evidence so detections — and therefore
	// events — actually fire while windows rotate.
	var recs []flow.Record
	for j := 0; j < 40; j++ {
		recs = append(recs, flow.Record{
			Key: flow.Key{
				Src:     netip.AddrFrom4([4]byte{10, 1, 0, byte(j % 8)}),
				Dst:     netip.AddrFrom4([4]byte{192, 0, 2, byte(j % 4)}),
				SrcPort: uint16(40000 + j), DstPort: 443, Proto: flow.ProtoTCP,
			},
			Packets: uint64(j%7 + 1), Bytes: 1200,
			Hour: simtime.Hour(437_000 + j%24),
		})
	}
	exp := netflow.NewExporter(9)
	msgs, err := exp.Export(recs, 8)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{}) // close-only: test shutdown signal
	var wg sync.WaitGroup

	const feeders = 3
	for i := 0; i < feeders; i++ {
		f := det.NewFeed()
		wg.Add(1)
		go func(f *Feed) {
			defer wg.Done()
			defer f.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, m := range msgs {
					f.FeedNetFlow(m)
				}
			}
		}(f)
	}

	// Two kinds of subscribers: a long-lived one draining for the whole
	// run, and a churner that cancels and resubscribes in a tight loop,
	// racing the registry against the broker and Rotate.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ch, cancel := det.Subscribe()
		defer cancel()
		for {
			select {
			case <-stop:
				return
			case _, ok := <-ch:
				if !ok {
					return
				}
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			ch, cancel := det.Subscribe()
			// Drain whatever is queued right now, then drop the
			// subscription while the broker may be mid-delivery.
			for drained := false; !drained; {
				select {
				case _, ok := <-ch:
					drained = !ok
				default:
					drained = true
				}
			}
			cancel()
		}
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			res := det.Rotate()
			_ = len(res.Detections)
			_ = det.Stats()
		}
	}()

	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()

	st := det.Stats()
	if st.RecordsIPv4 == 0 {
		t.Error("no records decoded; the race test exercised nothing")
	}
	if st.Windows == 0 {
		t.Error("no windows rotated; the race test exercised nothing")
	}
}
