package haystack

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"repro/internal/flow"
	"repro/internal/netflow"
	"repro/internal/simtime"
)

// TestStatsConcurrentWithFeeding is the -race regression guard for the
// atomicfield invariant: every counter the metrics surface reads
// (Feed.Stats → netflow/ipfix Dropped and Gaps, Detector.Stats,
// Rotate's window deltas) is hammered by readers while feed goroutines
// drive ingestion. A plain read or write sneaking into any of those
// counters fails this test under -race before haystacklint even runs.
func TestStatsConcurrentWithFeeding(t *testing.T) {
	s := sharedSystem(t)
	det := s.NewShardedDetector(0.4, 2)
	defer det.Close()

	// A small valid stream, plus one untemplated message (data FlowSet
	// before any template) so the Dropped counter moves too.
	var recs []flow.Record
	for j := 0; j < 40; j++ {
		recs = append(recs, flow.Record{
			Key: flow.Key{
				Src:     netip.AddrFrom4([4]byte{10, 0, byte(j / 8), byte(j % 8)}),
				Dst:     netip.AddrFrom4([4]byte{192, 0, 2, byte(j % 4)}),
				SrcPort: uint16(50000 + j), DstPort: 443, Proto: flow.ProtoTCP,
			},
			Packets: uint64(j%5 + 1), Bytes: 900,
			Hour: simtime.Hour(437_000 + j%24),
		})
	}
	exp := netflow.NewExporter(7)
	exp.TemplateEvery = 2 // leave some messages untemplated on replay
	msgs, err := exp.Export(recs, 8)
	if err != nil {
		t.Fatal(err)
	}

	const feeders = 2
	stop := make(chan struct{}) // close-only: test shutdown signal
	var wg sync.WaitGroup
	for i := 0; i < feeders; i++ {
		f := det.NewFeed()
		wg.Add(1)
		go func(f *Feed) {
			defer wg.Done()
			defer f.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, m := range msgs {
					f.FeedNetFlow(m) // decode errors irrelevant; load is the point
				}
				_ = f.Stats() // FeedStats reads the decoders' atomics mid-feed
			}
		}(f)
	}
	// Concurrent readers of every exported counter surface.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = det.Stats()
			_ = det.Rotate()
		}
	}()

	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()

	st := det.Stats()
	if st.RecordsIPv4 == 0 {
		t.Error("no records decoded; the race test exercised nothing")
	}
}
