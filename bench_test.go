package haystack

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (one Benchmark per experiment ID), plus
// throughput benches for the operational pieces (wire codecs, the
// detection engine) and ablations over the design parameters the paper
// discusses: sampling rate, detection threshold D, and aggregation
// window.
//
// Run everything:  go test -bench=. -benchmem
// One figure:      go test -bench=BenchmarkF11 -benchmem

import (
	"fmt"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"repro/internal/collector"
	"repro/internal/detect"
	"repro/internal/experiments"
	"repro/internal/flow"
	"repro/internal/isp"
	"repro/internal/netflow"
	"repro/internal/pipeline"
	"repro/internal/sampling"
	"repro/internal/simrand"
	"repro/internal/simtime"
)

// benchLab shares one small-scale lab across figure benches so each
// iteration measures the driver, not world assembly. The heavyweight
// sweeps (ground truth, wild ISP, wild IXP) are primed once.
var (
	benchOnce sync.Once
	benchSys  *System
)

func benchSystem(b *testing.B) *System {
	b.Helper()
	benchOnce.Do(func() {
		cfg := experiments.DefaultConfig(1)
		cfg.ISP.Lines = 10_000
		cfg.ISP.Scale = 1500
		cfg.IXP.TotalClients = 8_000
		cfg.IXP.Members = 200
		benchSys = MustNew(cfg)
		// Prime the lazy sweeps so per-figure benches measure table
		// generation over cached simulations.
		for _, id := range []string{"F5a", "F11", "F15"} {
			if _, err := benchSys.Run(id); err != nil {
				panic(err)
			}
		}
	})
	return benchSys
}

func benchExperiment(b *testing.B, id string) {
	s := benchSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl, err := s.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// One benchmark per table/figure of the evaluation.

func BenchmarkTable1Catalog(b *testing.B)     { benchExperiment(b, "T1") }
func BenchmarkSec41(b *testing.B)             { benchExperiment(b, "S41") }
func BenchmarkSec42(b *testing.B)             { benchExperiment(b, "S42") }
func BenchmarkSec43(b *testing.B)             { benchExperiment(b, "S43") }
func BenchmarkFig5a(b *testing.B)             { benchExperiment(b, "F5a") }
func BenchmarkFig5b(b *testing.B)             { benchExperiment(b, "F5b") }
func BenchmarkFig5c(b *testing.B)             { benchExperiment(b, "F5c") }
func BenchmarkFig5d(b *testing.B)             { benchExperiment(b, "F5d") }
func BenchmarkFig6(b *testing.B)              { benchExperiment(b, "F6") }
func BenchmarkFig8(b *testing.B)              { benchExperiment(b, "F8") }
func BenchmarkFig9(b *testing.B)              { benchExperiment(b, "F9") }
func BenchmarkFig10(b *testing.B)             { benchExperiment(b, "F10") }
func BenchmarkFig11(b *testing.B)             { benchExperiment(b, "F11") }
func BenchmarkFig12(b *testing.B)             { benchExperiment(b, "F12") }
func BenchmarkFig13(b *testing.B)             { benchExperiment(b, "F13") }
func BenchmarkFig14(b *testing.B)             { benchExperiment(b, "F14") }
func BenchmarkFig15(b *testing.B)             { benchExperiment(b, "F15") }
func BenchmarkFig16(b *testing.B)             { benchExperiment(b, "F16") }
func BenchmarkFig17(b *testing.B)             { benchExperiment(b, "F17") }
func BenchmarkFig18(b *testing.B)             { benchExperiment(b, "F18") }
func BenchmarkSec5FalsePositive(b *testing.B) { benchExperiment(b, "S5FP") }

// BenchmarkWorldBuild measures full world assembly (catalog, hosting,
// two-week churn, passive DNS and scan sweeps, §4 pipeline, dictionary
// compilation).
func BenchmarkWorldBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultConfig(uint64(i + 1))
		if _, err := experiments.NewLab(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetectorNetFlow measures the operational path: NetFlow v9
// messages through collector and engine.
func BenchmarkDetectorNetFlow(b *testing.B) {
	s := benchSystem(b)
	det := s.NewDetector(0.4)
	ips := s.ServiceIPs("avs-alexa.simamazon.example")
	h := simtime.HourOf(s.StudyStart())

	recs := make([]flow.Record, 30)
	for i := range recs {
		recs[i] = flow.Record{
			Key: flow.Key{
				Src:     netip.AddrFrom4([4]byte{100, 64, byte(i >> 8), byte(i)}),
				Dst:     ips[i%len(ips)],
				SrcPort: uint16(40000 + i), DstPort: 443, Proto: flow.ProtoTCP,
			},
			Packets: 2, Bytes: 1200, Hour: h,
		}
	}
	exp := netflow.NewExporter(1)
	exp.TemplateEvery = 1
	msgs, err := exp.Export(recs, 30)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(msgs[0])))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := det.FeedNetFlow(msgs[0]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetectorFeedParallel measures multi-producer wire-fed
// throughput: N feed goroutines, each with its own exporter stream
// over a disjoint subscriber range, against one 8-shard detector.
// Compare feeds_1 (the single-producer baseline) with feeds_4/feeds_8
// for producer-side scaling.
func BenchmarkDetectorFeedParallel(b *testing.B) {
	s := benchSystem(b)
	ips := s.ServiceIPs("avs-alexa.simamazon.example")
	h := simtime.HourOf(s.StudyStart())

	// Pre-encode one NetFlow message stream per feed, subscribers
	// partitioned by feed so per-subscriber ordering is preserved.
	stream := func(feed int) []byte {
		recs := make([]flow.Record, 30)
		for i := range recs {
			recs[i] = flow.Record{
				Key: flow.Key{
					Src:     netip.AddrFrom4([4]byte{100, 64 + byte(feed), byte(i >> 8), byte(i)}),
					Dst:     ips[i%len(ips)],
					SrcPort: uint16(40000 + i), DstPort: 443, Proto: flow.ProtoTCP,
				},
				Packets: 2, Bytes: 1200, Hour: h,
			}
		}
		exp := netflow.NewExporter(uint32(feed + 1))
		exp.TemplateEvery = 1
		msgs, err := exp.Export(recs, 30)
		if err != nil {
			b.Fatal(err)
		}
		return msgs[0]
	}

	for _, feeds := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("feeds_%d", feeds), func(b *testing.B) {
			det := s.NewShardedDetector(0.4, 8)
			defer det.Close()
			msgs := make([][]byte, feeds)
			for g := range msgs {
				msgs[g] = stream(g)
			}
			per := (b.N + feeds - 1) / feeds
			b.SetBytes(int64(len(msgs[0])))
			b.ResetTimer()
			var wg sync.WaitGroup
			for g := 0; g < feeds; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					f := det.NewFeed()
					defer f.Close()
					for i := 0; i < per; i++ {
						if err := f.FeedNetFlow(msgs[g]); err != nil {
							b.Error(err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			if len(det.Detections()) == 0 {
				b.Fatal("no detections")
			}
		})
	}
}

// BenchmarkListenerIngest measures the full socket path: NetFlow v9
// datagrams written to a bound loopback UDP socket, read by the
// collector loop, decoded on a feed worker, and applied on the
// sharded pipeline — the deployable ingest rate of `haystack listen`.
func BenchmarkListenerIngest(b *testing.B) {
	s := benchSystem(b)
	det := s.NewShardedDetector(0.4, 8)
	defer det.Close()
	srv, err := det.Listen(ListenConfig{Config: collector.Config{
		Listeners:  []collector.Listener{{Addr: "127.0.0.1:0"}},
		MaxFeeds:   4,
		QueueLen:   8192,
		ReadBuffer: 4 << 20,
	}})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	ips := s.ServiceIPs("avs-alexa.simamazon.example")
	h := simtime.HourOf(s.StudyStart())
	recs := make([]flow.Record, 30)
	for i := range recs {
		recs[i] = flow.Record{
			Key: flow.Key{
				Src:     netip.AddrFrom4([4]byte{100, 64, byte(i >> 8), byte(i)}),
				Dst:     ips[i%len(ips)],
				SrcPort: uint16(40000 + i), DstPort: 443, Proto: flow.ProtoTCP,
			},
			Packets: 2, Bytes: 1200, Hour: h,
		}
	}
	exp := netflow.NewExporter(1)
	exp.TemplateEvery = 1
	msgs, err := exp.Export(recs, 30)
	if err != nil {
		b.Fatal(err)
	}
	msg := msgs[0]

	conn, err := net.Dial("udp", srv.Addrs()[0].String())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()

	b.SetBytes(int64(len(msg)))
	b.ResetTimer()
	sent := uint64(0)
	for i := 0; i < b.N; i++ {
		if _, err := conn.Write(msg); err != nil {
			b.Fatal(err)
		}
		sent++
		// Backpressure: keep the un-received backlog well under the
		// kernel socket buffer (a couple hundred datagrams at default
		// rmem) so the benchmark measures ingest, not silent kernel
		// drops.
		if sent%64 == 0 {
			for sent-srv.Stats().Datagrams > 128 {
				time.Sleep(20 * time.Microsecond)
			}
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for srv.Stats().Datagrams < sent {
		if time.Now().After(deadline) {
			break // kernel dropped some; report it below
		}
		time.Sleep(100 * time.Microsecond)
	}
	srv.Sync()
	b.StopTimer()
	st := srv.Stats()
	b.ReportMetric(float64(st.Records)/b.Elapsed().Seconds(), "records/s")
	if lost := sent - st.Datagrams; lost > 0 {
		b.ReportMetric(float64(lost), "kernel_dropped")
	}
	if st.DroppedDatagrams > 0 {
		b.ReportMetric(float64(st.DroppedDatagrams), "queue_dropped")
	}
}

// BenchmarkFeedInto measures arena decode throughput: one 30-record
// NetFlow v9 message (template re-announced every message, as the
// high-rate exporters do) decoded into a reused flow.Batch. Steady
// state is allocation-free — run with -benchmem to confirm.
func BenchmarkFeedInto(b *testing.B) {
	s := benchSystem(b)
	ips := s.ServiceIPs("avs-alexa.simamazon.example")
	h := simtime.HourOf(s.StudyStart())
	recs := make([]flow.Record, 30)
	for i := range recs {
		recs[i] = flow.Record{
			Key: flow.Key{
				Src:     netip.AddrFrom4([4]byte{100, 64, byte(i >> 8), byte(i)}),
				Dst:     ips[i%len(ips)],
				SrcPort: uint16(40000 + i), DstPort: 443, Proto: flow.ProtoTCP,
			},
			Packets: 2, Bytes: 1200, Hour: h,
		}
	}
	exp := netflow.NewExporter(1)
	exp.TemplateEvery = 1
	msgs, err := exp.Export(recs, 30)
	if err != nil {
		b.Fatal(err)
	}
	msg := msgs[0]

	col := netflow.NewCollector()
	arena := flow.NewBatch(64)
	b.SetBytes(int64(len(msg)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arena.Reset()
		if err := col.FeedInto(msg, arena); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(recs))*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkObserveBatch measures the producer-side batch path: 30-obs
// hitlist-match batches partitioned across 8 shards under one lock
// acquisition per batch. Compare with BenchmarkPipelineObserve for the
// per-record producer path.
func BenchmarkObserveBatch(b *testing.B) {
	s := benchSystem(b)
	ips := s.ServiceIPs("avs-alexa.simamazon.example")
	h := simtime.HourOf(s.StudyStart())
	obs := make([]pipeline.Obs, 30)
	for i := range obs {
		obs[i] = pipeline.Obs{
			Sub:  detect.SubID(i * 2654435761),
			Hour: h,
			IP:   ips[i%len(ips)],
			Port: 443,
			Pkts: 1,
		}
	}
	p := pipeline.New(s.lab.Dict, 0.4, 8)
	defer p.Close()
	prod := p.NewProducer()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prod.ObserveBatch(obs)
	}
	p.Sync()
	b.ReportMetric(float64(len(obs))*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkEngineObserve measures raw engine throughput on hitlist
// matches (flows/second an ISP deployment could sustain per core).
func BenchmarkEngineObserve(b *testing.B) {
	s := benchSystem(b)
	eng := detect.New(s.lab.Dict, 0.4)
	ips := s.ServiceIPs("avs-alexa.simamazon.example")
	h := simtime.HourOf(s.StudyStart())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Observe(detect.SubID(i&0xfffff), h, ips[i%len(ips)], 443, 1)
	}
}

// BenchmarkPipelineObserve measures sharded pipeline throughput on the
// same hitlist-match workload as BenchmarkEngineObserve. The producer
// only hashes and batches; engine work runs on the shard workers, so
// throughput scales with the shard count until the producer saturates.
func BenchmarkPipelineObserve(b *testing.B) {
	s := benchSystem(b)
	ips := s.ServiceIPs("avs-alexa.simamazon.example")
	h := simtime.HourOf(s.StudyStart())
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards_%d", n), func(b *testing.B) {
			p := pipeline.New(s.lab.Dict, 0.4, n)
			defer p.Close()
			prod := p.NewProducer()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				prod.Observe(detect.SubID(i&0xfffff), h, ips[i%len(ips)], 443, 1)
			}
			p.Sync()
		})
	}
}

// BenchmarkPipelineWildHour is the shard-scaling benchmark for the §6.2
// inner loop: one simulated wild-ISP hour (population draw + sampling)
// fed through the sharded pipeline, comparable to BenchmarkWildHour.
func BenchmarkPipelineWildHour(b *testing.B) {
	s := benchSystem(b)
	cfg := isp.DefaultConfig()
	cfg.Lines = 10_000
	pop := isp.NewPopulation(simrand.New(9), s.Catalog(), cfg, s.lab.W.Window)
	h := s.lab.W.Window.Start + 19
	r := s.lab.W.ResolverOn(h.Day())
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards_%d", n), func(b *testing.B) {
			p := pipeline.New(s.lab.Dict, 0.4, n)
			defer p.Close()
			prod := p.NewProducer()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pop.SimulateHour(h, r, func(_ int32, sub detect.SubID, hh simtime.Hour, ip netip.Addr, port uint16, pkts uint64) {
					prod.Observe(sub, hh, ip, port, pkts)
				})
				p.Sync()
			}
		})
	}
}

// BenchmarkWildHour measures one simulated hour of the wild ISP
// (population draw + sampling), the inner loop of Figs 11–14.
func BenchmarkWildHour(b *testing.B) {
	s := benchSystem(b)
	cfg := isp.DefaultConfig()
	cfg.Lines = 10_000
	pop := isp.NewPopulation(simrand.New(9), s.Catalog(), cfg, s.lab.W.Window)
	h := s.lab.W.Window.Start + 19
	r := s.lab.W.ResolverOn(h.Day())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		pop.SimulateHour(h, r, func(int32, detect.SubID, simtime.Hour, netip.Addr, uint16, uint64) {
			n++
		})
	}
}

// Ablation: sampling rate. The paper's detectability hinges on the
// 1:1024 ISP rate; this sweep shows visibility of a 700-pkt/h service
// (the Alexa keepalive) across rates.
func BenchmarkAblationSamplingRate(b *testing.B) {
	for _, rate := range []uint64{64, 256, 1024, 4096, 10240} {
		b.Run(fmt.Sprintf("rate_1in%d", rate), func(b *testing.B) {
			rng := simrand.New(1)
			visible := 0
			for i := 0; i < b.N; i++ {
				if sampling.Thin(rng, 700, rate) > 0 {
					visible++
				}
			}
			b.ReportMetric(float64(visible)/float64(b.N), "visible/hour")
		})
	}
}

// Ablation: detection threshold D. Replays the active ground truth at
// each threshold and reports mean hours-to-detect across rules — the
// Fig 10 tradeoff as a single number.
func BenchmarkAblationThresholdD(b *testing.B) {
	s := benchSystem(b)
	if _, err := s.Run("F10"); err != nil { // primes the ground-truth capture
		b.Fatal(err)
	}
	for _, d := range []float64{0.1, 0.4, 0.7, 1.0} {
		b.Run(fmt.Sprintf("D_%.1f", d), func(b *testing.B) {
			var detected, hours int
			for i := 0; i < b.N; i++ {
				detected, hours = 0, 0
				delays := s.lab.DetectionDelays(d)
				for _, v := range delays {
					if v >= 0 {
						detected++
						hours += v
					}
				}
			}
			if detected > 0 {
				b.ReportMetric(float64(detected), "rules_detected")
				b.ReportMetric(float64(hours)/float64(detected), "mean_hours")
			}
		})
	}
}

// Ablation: dictionary lookup scaling with hitlist size (per-day maps).
func BenchmarkAblationHitlistLookup(b *testing.B) {
	s := benchSystem(b)
	day := s.lab.W.Window.Days()[0]
	ip := s.ServiceIPs("ota.simsamsung.example")[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.lab.Dict.Lookup(day, ip, 443)
	}
}
