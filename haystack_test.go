package haystack

import (
	"net/netip"
	"sync"
	"testing"

	"repro/internal/flow"
	"repro/internal/netflow"
	"repro/internal/simtime"
)

var (
	sysOnce sync.Once
	sys     *System
)

func sharedSystem(t testing.TB) *System {
	sysOnce.Do(func() {
		sys = MustNew(DefaultConfig(1))
	})
	return sys
}

func TestRegistryCoversEveryTableAndFigure(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Registry() {
		if ids[e.ID] {
			t.Fatalf("duplicate experiment %s", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{
		"T1", "S41", "S42", "S43", "S5FP",
		"F5a", "F5b", "F5c", "F5d", "F6", "F8", "F9", "F10",
		"F11", "F12", "F13", "F14", "F15", "F16", "F17", "F18",
	} {
		if !ids[want] {
			t.Errorf("experiment %s missing from registry", want)
		}
	}
	if len(ids) != 21 {
		t.Errorf("registry has %d experiments, want 21", len(ids))
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	s := sharedSystem(t)
	if _, err := s.Run("F99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunByID(t *testing.T) {
	s := sharedSystem(t)
	tbl, err := s.Run("S42")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Stats["dedicated_pdns"] != 217 {
		t.Fatalf("S42 dedicated = %v", tbl.Stats["dedicated_pdns"])
	}
}

func TestRulesSummary(t *testing.T) {
	s := sharedSystem(t)
	rs := s.Rules()
	if len(rs) != 37 {
		t.Fatalf("rules = %d", len(rs))
	}
	byName := map[string]RuleSummary{}
	for _, r := range rs {
		byName[r.Name] = r
	}
	ftv := byName["Fire TV"]
	if ftv.Parent != "Amazon Product" || ftv.Level != "Pr." || len(ftv.Domains) != 33 {
		t.Fatalf("Fire TV summary wrong: %+v", ftv)
	}
	if len(byName["Alexa Enabled"].Products) != 5 {
		t.Fatalf("Alexa products: %v", byName["Alexa Enabled"].Products)
	}
}

func TestCatalogAccessor(t *testing.T) {
	s := sharedSystem(t)
	if got := len(s.Catalog().Products); got != 56 {
		t.Fatalf("catalog products = %d", got)
	}
}

// TestDetectorEndToEndNetFlow exercises the operational path: flow
// records → NetFlow v9 wire messages → collector → engine → detections.
func TestDetectorEndToEndNetFlow(t *testing.T) {
	s := sharedSystem(t)
	det := s.NewDetector(0.4)

	// A subscriber at 100.64.9.9 talks to Meross's MQTT endpoint — a
	// single-domain manufacturer rule.
	day := s.lab.W.Window.Days()[0]
	ips := s.lab.W.ResolverOn(day).Resolve("mqtt.simmeross.example")
	if len(ips) == 0 {
		t.Fatal("meross does not resolve")
	}
	sub := netip.MustParseAddr("100.64.9.9")
	dom := s.lab.W.Catalog.Domains["mqtt.simmeross.example"]
	if dom.Port != 8883 {
		t.Fatalf("meross MQTT port = %d, want 8883", dom.Port)
	}
	rec := flow.Record{
		Key: flow.Key{
			Src: sub, Dst: ips[0],
			SrcPort: 50123, DstPort: dom.Port, Proto: flow.ProtoTCP,
		},
		Packets: 3, Bytes: 1800, TCPFlags: 0x18,
		Hour: day.FirstHour() + 9,
	}
	exp := netflow.NewExporter(1)
	msgs, err := exp.Export([]flow.Record{rec}, 30)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range msgs {
		if err := det.FeedNetFlow(m); err != nil {
			t.Fatal(err)
		}
	}
	dets := det.Detections()
	if len(dets) != 1 {
		t.Fatalf("detections = %+v", dets)
	}
	if dets[0].Rule != "Meross Dooropener" || dets[0].Level != "Man." {
		t.Fatalf("detection = %+v", dets[0])
	}
	if got := simtime.HourOf(dets[0].First); got != rec.Hour {
		t.Fatalf("first detection hour %v, want %v", got, rec.Hour)
	}

	det.Reset()
	if len(det.Detections()) != 0 {
		t.Fatal("reset did not clear detections")
	}
}

func TestDetectorIgnoresUnknownDestinations(t *testing.T) {
	s := sharedSystem(t)
	det := s.NewDetector(0.4)
	day := s.lab.W.Window.Days()[0]
	rec := flow.Record{
		Key: flow.Key{
			Src:     netip.MustParseAddr("100.64.1.1"),
			Dst:     netip.MustParseAddr("203.0.113.7"), // not in any hitlist
			SrcPort: 1000, DstPort: 443, Proto: flow.ProtoTCP,
		},
		Packets: 100, Bytes: 60000,
		Hour: day.FirstHour(),
	}
	exp := netflow.NewExporter(2)
	msgs, _ := exp.Export([]flow.Record{rec}, 30)
	for _, m := range msgs {
		if err := det.FeedNetFlow(m); err != nil {
			t.Fatal(err)
		}
	}
	if len(det.Detections()) != 0 {
		t.Fatal("unknown destination produced a detection")
	}
}

func TestDetectorRejectsGarbage(t *testing.T) {
	s := sharedSystem(t)
	det := s.NewDetector(0.4)
	if err := det.FeedNetFlow([]byte{1, 2, 3}); err == nil {
		t.Fatal("garbage NetFlow accepted")
	}
	if err := det.FeedIPFIX([]byte{1, 2, 3}); err == nil {
		t.Fatal("garbage IPFIX accepted")
	}
}

func TestSubscriberKeyAnonymizesButIsStable(t *testing.T) {
	a := netip.MustParseAddr("100.64.9.9")
	if subscriberKey(a) != subscriberKey(a) {
		t.Fatal("key not stable")
	}
	b := netip.MustParseAddr("100.64.9.10")
	if subscriberKey(a) == subscriberKey(b) {
		t.Fatal("adjacent addresses collide")
	}
	if uint64(subscriberKey(a)) == uint64(0x64400909) {
		t.Fatal("key is the raw address — not anonymized")
	}
}

func TestPaperScaleConfig(t *testing.T) {
	cfg := PaperScaleConfig(7)
	if cfg.ISP.Lines != 150_000 || cfg.ISP.Scale != 100 {
		t.Fatalf("paper-scale config: %+v", cfg.ISP)
	}
	if cfg.Seed != 7 {
		t.Fatalf("seed = %d", cfg.Seed)
	}
}
