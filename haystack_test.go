package haystack

import (
	"net/netip"
	"reflect"
	"sync"
	"testing"

	"repro/internal/detect"
	"repro/internal/flow"
	"repro/internal/netflow"
	"repro/internal/simtime"
)

var (
	sysOnce sync.Once
	sys     *System
)

func sharedSystem(t testing.TB) *System {
	sysOnce.Do(func() {
		sys = MustNew(DefaultConfig(1))
	})
	return sys
}

func TestRegistryCoversEveryTableAndFigure(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Registry() {
		if ids[e.ID] {
			t.Fatalf("duplicate experiment %s", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{
		"T1", "S41", "S42", "S43", "S5FP",
		"F5a", "F5b", "F5c", "F5d", "F6", "F8", "F9", "F10",
		"F11", "F12", "F13", "F14", "F15", "F16", "F17", "F18",
	} {
		if !ids[want] {
			t.Errorf("experiment %s missing from registry", want)
		}
	}
	if len(ids) != 21 {
		t.Errorf("registry has %d experiments, want 21", len(ids))
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	s := sharedSystem(t)
	if _, err := s.Run("F99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunByID(t *testing.T) {
	s := sharedSystem(t)
	tbl, err := s.Run("S42")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Stats["dedicated_pdns"] != 217 {
		t.Fatalf("S42 dedicated = %v", tbl.Stats["dedicated_pdns"])
	}
}

func TestRulesSummary(t *testing.T) {
	s := sharedSystem(t)
	rs := s.Rules()
	if len(rs) != 37 {
		t.Fatalf("rules = %d", len(rs))
	}
	byName := map[string]RuleSummary{}
	for _, r := range rs {
		byName[r.Name] = r
	}
	ftv := byName["Fire TV"]
	if ftv.Parent != "Amazon Product" || ftv.Level != "Pr." || len(ftv.Domains) != 33 {
		t.Fatalf("Fire TV summary wrong: %+v", ftv)
	}
	if len(byName["Alexa Enabled"].Products) != 5 {
		t.Fatalf("Alexa products: %v", byName["Alexa Enabled"].Products)
	}
}

func TestCatalogAccessor(t *testing.T) {
	s := sharedSystem(t)
	if got := len(s.Catalog().Products); got != 56 {
		t.Fatalf("catalog products = %d", got)
	}
}

// TestDetectorEndToEndNetFlow exercises the operational path: flow
// records → NetFlow v9 wire messages → collector → engine → detections.
func TestDetectorEndToEndNetFlow(t *testing.T) {
	s := sharedSystem(t)
	det := s.NewDetector(0.4)
	defer det.Close()

	// A subscriber at 100.64.9.9 talks to Meross's MQTT endpoint — a
	// single-domain manufacturer rule.
	day := s.lab.W.Window.Days()[0]
	ips := s.lab.W.ResolverOn(day).Resolve("mqtt.simmeross.example")
	if len(ips) == 0 {
		t.Fatal("meross does not resolve")
	}
	sub := netip.MustParseAddr("100.64.9.9")
	dom := s.lab.W.Catalog.Domains["mqtt.simmeross.example"]
	if dom.Port != 8883 {
		t.Fatalf("meross MQTT port = %d, want 8883", dom.Port)
	}
	rec := flow.Record{
		Key: flow.Key{
			Src: sub, Dst: ips[0],
			SrcPort: 50123, DstPort: dom.Port, Proto: flow.ProtoTCP,
		},
		Packets: 3, Bytes: 1800, TCPFlags: 0x18,
		Hour: day.FirstHour() + 9,
	}
	exp := netflow.NewExporter(1)
	msgs, err := exp.Export([]flow.Record{rec}, 30)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range msgs {
		if err := det.FeedNetFlow(m); err != nil {
			t.Fatal(err)
		}
	}
	dets := det.Detections()
	if len(dets) != 1 {
		t.Fatalf("detections = %+v", dets)
	}
	if dets[0].Rule != "Meross Dooropener" || dets[0].Level != "Man." {
		t.Fatalf("detection = %+v", dets[0])
	}
	if got := simtime.HourOf(dets[0].First); got != rec.Hour {
		t.Fatalf("first detection hour %v, want %v", got, rec.Hour)
	}

	det.Reset()
	if len(det.Detections()) != 0 {
		t.Fatal("reset did not clear detections")
	}
}

func TestDetectorIgnoresUnknownDestinations(t *testing.T) {
	s := sharedSystem(t)
	det := s.NewDetector(0.4)
	defer det.Close()
	day := s.lab.W.Window.Days()[0]
	rec := flow.Record{
		Key: flow.Key{
			Src:     netip.MustParseAddr("100.64.1.1"),
			Dst:     netip.MustParseAddr("203.0.113.7"), // not in any hitlist
			SrcPort: 1000, DstPort: 443, Proto: flow.ProtoTCP,
		},
		Packets: 100, Bytes: 60000,
		Hour: day.FirstHour(),
	}
	exp := netflow.NewExporter(2)
	msgs, _ := exp.Export([]flow.Record{rec}, 30)
	for _, m := range msgs {
		if err := det.FeedNetFlow(m); err != nil {
			t.Fatal(err)
		}
	}
	if len(det.Detections()) != 0 {
		t.Fatal("unknown destination produced a detection")
	}
}

func TestDetectorRejectsGarbage(t *testing.T) {
	s := sharedSystem(t)
	det := s.NewDetector(0.4)
	defer det.Close()
	if err := det.FeedNetFlow([]byte{1, 2, 3}); err == nil {
		t.Fatal("garbage NetFlow accepted")
	}
	if err := det.FeedIPFIX([]byte{1, 2, 3}); err == nil {
		t.Fatal("garbage IPFIX accepted")
	}
}

func TestSubscriberKeyAnonymizesButIsStable(t *testing.T) {
	key := func(a netip.Addr, wantV6 bool) detect.SubID {
		k, v6, ok := subscriberKey(a)
		if !ok {
			t.Fatalf("subscriberKey(%v) not usable", a)
		}
		if v6 != wantV6 {
			t.Fatalf("subscriberKey(%v) family v6=%v, want %v", a, v6, wantV6)
		}
		return k
	}
	a := netip.MustParseAddr("100.64.9.9")
	if key(a, false) != key(a, false) {
		t.Fatal("key not stable")
	}
	b := netip.MustParseAddr("100.64.9.10")
	if key(a, false) == key(b, false) {
		t.Fatal("adjacent addresses collide")
	}
	if uint64(key(a, false)) == uint64(0x64400909) {
		t.Fatal("key is the raw address — not anonymized")
	}
	// The IPv4 hash is pinned: exported detections from earlier
	// releases must stay byte-identical.
	if got := uint64(key(a, false)); got != 0x2d596705e96c4d34 {
		t.Fatalf("IPv4 hash changed: %016x", got)
	}
	// 4-in-6 mapped addresses identify the same subscriber line.
	if key(netip.MustParseAddr("::ffff:100.64.9.9"), false) != key(a, false) {
		t.Fatal("mapped address keys differently")
	}
	// IPv6 subscribers are hashed too (§2.1 anonymizes *all* user
	// IPs), stably, and spread even for adjacent addresses.
	v6a := netip.MustParseAddr("2001:db8::1")
	v6b := netip.MustParseAddr("2001:db8::2")
	if key(v6a, true) != key(v6a, true) {
		t.Fatal("v6 key not stable")
	}
	if key(v6a, true) == key(v6b, true) {
		t.Fatal("adjacent v6 addresses collide")
	}
	if key(v6a, true) == key(a, false) {
		t.Fatal("v6 key collides with the v4 key in this test vector")
	}
	// Only addresses that cannot identify any subscriber are rejected,
	// not hashed (and certainly not panicked over, as As4 would).
	if _, _, ok := subscriberKey(netip.Addr{}); ok {
		t.Fatal("subscriberKey accepted the invalid zero address")
	}
}

// TestDetectorSkipsRecordsWithoutUsableSubscriber feeds a data FlowSet
// whose template omits the IPv4 source-address field entirely: decoded
// records carry an invalid subscriber address, which used to panic the
// detector and must now be counted and skipped.
func TestDetectorSkipsRecordsWithoutUsableSubscriber(t *testing.T) {
	s := sharedSystem(t)
	det := s.NewDetector(0.4)
	defer det.Close()

	// Hand-build a v9 message: template 260 with only (dstaddr,
	// dstport), then one matching data record.
	var msg []byte
	be16 := func(v uint16) { msg = append(msg, byte(v>>8), byte(v)) }
	be32 := func(v uint32) { msg = append(msg, byte(v>>24), byte(v>>16), byte(v>>8), byte(v)) }
	be16(9)    // version
	be16(2)    // count
	be32(0)    // uptime
	be32(3600) // unix secs
	be32(0)    // sequence
	be32(77)   // source ID
	be16(0)    // template flowset
	be16(16)   // length
	be16(260)  // template ID
	be16(2)    // field count
	be16(12)   // dstaddr
	be16(4)
	be16(11) // dstport
	be16(2)
	be16(260)                         // data flowset
	be16(12)                          // length (4 hdr + 6 record + 2 pad)
	msg = append(msg, 203, 0, 113, 7) // dstaddr
	be16(443)                         // dstport
	msg = append(msg, 0, 0)           // padding

	if err := det.FeedNetFlow(msg); err != nil {
		t.Fatal(err)
	}
	if got := det.SkippedRecords(); got != 1 {
		t.Fatalf("SkippedRecords = %d, want 1", got)
	}
	if len(det.Detections()) != 0 {
		t.Fatal("unusable record produced a detection")
	}
}

// TestDetectorConcurrentFeedsMatchSingle is the acceptance contract:
// the same exporter messages, partitioned across 4 concurrent feed
// goroutines over an 8-shard pipeline, must produce Detections()
// byte-identical to a single-feed single-shard detector. Run with
// -race to check the feed/producer handoff.
func TestDetectorConcurrentFeedsMatchSingle(t *testing.T) {
	s := sharedSystem(t)

	// One message stream per feed, each exporter covering a disjoint
	// subscriber range and a mix of rule domains, hours, and misses.
	const feeds = 4
	day := s.lab.W.Window.Days()[0]
	resolver := s.lab.W.ResolverOn(day)
	streams := make([][][]byte, feeds)
	for fi := 0; fi < feeds; fi++ {
		var recs []flow.Record
		for i, rule := range s.Rules() {
			for j, name := range rule.Domains {
				ips := resolver.Resolve(name)
				if len(ips) == 0 {
					continue
				}
				port := uint16(443)
				if d, ok := s.lab.W.Catalog.Domains[name]; ok {
					port = d.Port
				}
				recs = append(recs, flow.Record{
					Key: flow.Key{
						Src:     netip.AddrFrom4([4]byte{100, 64 + byte(fi), byte(i), byte(j)}),
						Dst:     ips[0],
						SrcPort: uint16(50000 + j), DstPort: port, Proto: flow.ProtoTCP,
					},
					Packets: uint64(j%5 + 1), Bytes: 900,
					Hour: day.FirstHour() + simtime.Hour(i%36),
				})
			}
		}
		exp := netflow.NewExporter(uint32(fi + 1))
		msgs, err := exp.Export(recs, 25)
		if err != nil {
			t.Fatal(err)
		}
		streams[fi] = msgs
	}

	single := s.NewShardedDetector(0.4, 1)
	defer single.Close()
	for _, msgs := range streams {
		f := single.NewFeed()
		for _, m := range msgs {
			if err := f.FeedNetFlow(m); err != nil {
				t.Fatal(err)
			}
		}
		f.Close()
	}
	want := single.Detections()
	if len(want) == 0 {
		t.Fatal("reference detector detected nothing; stream is too weak to compare")
	}

	multi := s.NewShardedDetector(0.4, 8)
	defer multi.Close()
	var wg sync.WaitGroup
	for _, msgs := range streams {
		f := multi.NewFeed()
		wg.Add(1)
		go func(f *Feed, msgs [][]byte) {
			defer wg.Done()
			for _, m := range msgs {
				if err := f.FeedNetFlow(m); err != nil {
					t.Error(err)
					return
				}
			}
			f.Close()
		}(f, msgs)
	}
	wg.Wait()
	got := multi.Detections()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("concurrent detections diverge: got %d, want %d", len(got), len(want))
	}
	if multi.SkippedRecords() != 0 {
		t.Fatalf("SkippedRecords = %d on a clean stream", multi.SkippedRecords())
	}
}

func TestPaperScaleConfig(t *testing.T) {
	cfg := PaperScaleConfig(7)
	if cfg.ISP.Lines != 150_000 || cfg.ISP.Scale != 100 {
		t.Fatalf("paper-scale config: %+v", cfg.ISP)
	}
	if cfg.Seed != 7 {
		t.Fatalf("seed = %d", cfg.Seed)
	}
}
