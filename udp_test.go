package haystack

// Loopback-socket integration tests for the UDP collector layer: real
// exporters sending real datagrams to bound sockets, proving the wire
// path end-to-end (acceptance contract: detections are byte-identical
// to feeding the same messages through in-memory feeds).

import (
	"context"
	"net"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"repro/internal/collector"
	"repro/internal/flow"
	"repro/internal/ipfix"
	"repro/internal/netflow"
	"repro/internal/simtime"
)

// streamRecords builds the fi-th of n disjoint-subscriber record
// sets, covering a mix of rule domains and hours — the raw material
// for one synthetic exporter stream.
func streamRecords(t testing.TB, s *System, fi, n int) []flow.Record {
	t.Helper()
	day := s.lab.W.Window.Days()[0]
	resolver := s.lab.W.ResolverOn(day)
	var recs []flow.Record
	for i, rule := range s.Rules() {
		if i%n != fi {
			continue
		}
		for j, name := range rule.Domains {
			ips := resolver.Resolve(name)
			if len(ips) == 0 {
				continue
			}
			port := uint16(443)
			if d, ok := s.lab.W.Catalog.Domains[name]; ok {
				port = d.Port
			}
			recs = append(recs, flow.Record{
				Key: flow.Key{
					Src:     netip.AddrFrom4([4]byte{100, 64 + byte(fi), byte(i), byte(j)}),
					Dst:     ips[0],
					SrcPort: uint16(50000 + j), DstPort: port, Proto: flow.ProtoTCP,
				},
				Packets: uint64(j%5 + 1), Bytes: 900,
				Hour: day.FirstHour() + simtime.Hour(i%36),
			})
		}
	}
	return recs
}

// exporterStreams builds n disjoint-subscriber message streams, half
// NetFlow v9 and half IPFIX, covering a mix of rule domains and hours.
func exporterStreams(t testing.TB, s *System, n int) [][][]byte {
	t.Helper()
	streams := make([][][]byte, n)
	for fi := 0; fi < n; fi++ {
		recs := streamRecords(t, s, fi, n)
		var msgs [][]byte
		var err error
		if fi%2 == 0 {
			msgs, err = netflow.NewExporter(uint32(fi+1)).Export(recs, 25)
		} else {
			msgs, err = ipfix.NewExporter(uint32(fi+1)).Export(recs, 25)
		}
		if err != nil {
			t.Fatal(err)
		}
		streams[fi] = msgs
	}
	return streams
}

// feedStreams drives the streams through in-memory feed handles — the
// reference the UDP path must match byte for byte.
func feedStreams(t testing.TB, det *Detector, streams [][][]byte) {
	t.Helper()
	for fi, msgs := range streams {
		f := det.NewFeed()
		feed := f.FeedNetFlow
		if fi%2 == 1 {
			feed = f.FeedIPFIX
		}
		for _, m := range msgs {
			if err := feed(m); err != nil {
				t.Fatal(err)
			}
		}
		f.Close()
	}
}

// TestDetectorListenUDPMatchesSingleFeed is the acceptance contract
// for the socket layer: four exporters (two NetFlow v9, two IPFIX)
// sending real datagrams over loopback UDP to one auto-sniffing
// socket must produce Detections() byte-identical to feeding the same
// messages through a single-shard in-memory detector.
func TestDetectorListenUDPMatchesSingleFeed(t *testing.T) {
	s := sharedSystem(t)
	streams := exporterStreams(t, s, 4)

	single := s.NewShardedDetector(0.4, 1)
	defer single.Close()
	feedStreams(t, single, streams)
	want := single.Detections()
	if len(want) == 0 {
		t.Fatal("reference detector detected nothing; stream is too weak to compare")
	}

	udp := s.NewShardedDetector(0.4, 8)
	defer udp.Close()
	srv, err := udp.Listen(ListenConfig{Config: collector.Config{
		Listeners:  []collector.Listener{{Addr: "127.0.0.1:0"}},
		MaxFeeds:   4,
		MinFeeds:   4, // every exporter gets its own lane at once
		QueueLen:   4096,
		ReadBuffer: 4 << 20, // headroom against scheduler stalls on loaded CI
	}})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addrs()[0].String()

	// One UDP source per exporter: a fresh Dial gives each stream a
	// distinct local port, so the sticky assignment keeps each
	// exporter's template cache and sequence anchor on one feed.
	total := 0
	done := make(chan error, len(streams))
	for _, msgs := range streams {
		total += len(msgs)
		go func(msgs [][]byte) {
			conn, err := net.Dial("udp", addr)
			if err != nil {
				done <- err
				return
			}
			defer conn.Close()
			for i, m := range msgs {
				if _, err := conn.Write(m); err != nil {
					done <- err
					return
				}
				if i%16 == 15 {
					time.Sleep(time.Millisecond) // pace loopback bursts
				}
			}
			done <- nil
		}(msgs)
	}
	for range streams {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().Datagrams < uint64(total) {
		if time.Now().After(deadline) {
			t.Fatalf("socket received %d of %d datagrams", srv.Stats().Datagrams, total)
		}
		time.Sleep(time.Millisecond)
	}
	srv.Close() // drains queues, closes feeds — detector is quiescent

	st := srv.Stats()
	if st.DroppedDatagrams != 0 || st.DecodeErrors != 0 {
		t.Fatalf("transport not clean: %+v", st)
	}
	if st.StartedFeeds != 4 {
		t.Fatalf("started feeds = %d, want 4", st.StartedFeeds)
	}
	for _, fs := range st.Feeds {
		if fs.TemplateDrops != 0 || fs.SequenceGaps != 0 {
			t.Fatalf("feed %d transport counters dirty: %+v", fs.Feed, fs)
		}
		if fs.Records == 0 {
			t.Fatalf("feed %d decoded no records: %+v", fs.Feed, fs)
		}
	}

	got := udp.Detections()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("UDP detections diverge from single-feed reference: got %d, want %d",
			len(got), len(want))
	}
	if udp.SkippedRecords() != 0 {
		t.Fatalf("SkippedRecords = %d on a clean stream", udp.SkippedRecords())
	}
}

// TestDetectorListenUDPCollidingSourceIDs pins the per-source decoder
// isolation: two exporters that both chose source ID 1 (as every
// default-configured exporter does) share one decode lane, and their
// interleaved streams must produce zero phantom sequence gaps and the
// same detections as feeding them separately — one shared decoder
// would thrash its sequence anchor on every alternation.
func TestDetectorListenUDPCollidingSourceIDs(t *testing.T) {
	s := sharedSystem(t)

	// Two NetFlow streams, disjoint subscribers, both from exporter
	// source ID 1.
	day := s.lab.W.Window.Days()[0]
	resolver := s.lab.W.ResolverOn(day)
	streams := make([][][]byte, 2)
	for fi := range streams {
		var recs []flow.Record
		for i, rule := range s.Rules() {
			for j, name := range rule.Domains {
				ips := resolver.Resolve(name)
				if len(ips) == 0 {
					continue
				}
				port := uint16(443)
				if d, ok := s.lab.W.Catalog.Domains[name]; ok {
					port = d.Port
				}
				recs = append(recs, flow.Record{
					Key: flow.Key{
						Src:     netip.AddrFrom4([4]byte{100, 64 + byte(fi), byte(i), byte(j)}),
						Dst:     ips[0],
						SrcPort: uint16(50000 + j), DstPort: port, Proto: flow.ProtoTCP,
					},
					Packets: 2, Bytes: 900,
					Hour: day.FirstHour() + simtime.Hour(i%12),
				})
			}
		}
		exp := netflow.NewExporter(1) // deliberately identical source IDs
		msgs, err := exp.Export(recs, 25)
		if err != nil {
			t.Fatal(err)
		}
		streams[fi] = msgs
	}

	single := s.NewShardedDetector(0.4, 1)
	defer single.Close()
	for _, msgs := range streams {
		f := single.NewFeed()
		for _, m := range msgs {
			if err := f.FeedNetFlow(m); err != nil {
				t.Fatal(err)
			}
		}
		f.Close()
	}
	want := single.Detections()
	if len(want) == 0 {
		t.Fatal("reference detector detected nothing")
	}

	udp := s.NewShardedDetector(0.4, 4)
	defer udp.Close()
	srv, err := udp.Listen(ListenConfig{Config: collector.Config{
		Listeners:  []collector.Listener{{Addr: "127.0.0.1:0", Proto: collector.ProtoNetFlow}},
		MaxFeeds:   1, // force both sources onto one decode lane
		QueueLen:   4096,
		ReadBuffer: 4 << 20,
	}})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addrs()[0].String()

	// Interleave the two sources message by message — the worst case
	// for a shared sequence anchor.
	conns := make([]net.Conn, 2)
	for i := range conns {
		if conns[i], err = net.Dial("udp", addr); err != nil {
			t.Fatal(err)
		}
		defer conns[i].Close()
	}
	total := 0
	for i := 0; i < len(streams[0]) || i < len(streams[1]); i++ {
		for fi, msgs := range streams {
			if i < len(msgs) {
				if _, err := conns[fi].Write(msgs[i]); err != nil {
					t.Fatal(err)
				}
				total++
			}
		}
		if i%8 == 7 {
			time.Sleep(time.Millisecond)
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().Datagrams < uint64(total) {
		if time.Now().After(deadline) {
			t.Fatalf("socket received %d of %d datagrams", srv.Stats().Datagrams, total)
		}
		time.Sleep(time.Millisecond)
	}
	srv.Close()

	st := srv.Stats()
	if st.StartedFeeds != 1 || st.Feeds[0].Sources != 2 {
		t.Fatalf("expected both sources on one lane: %+v", st.Feeds)
	}
	if st.Feeds[0].SequenceGaps != 0 {
		t.Fatalf("colliding source IDs produced %d phantom sequence gaps", st.Feeds[0].SequenceGaps)
	}
	if st.Feeds[0].TemplateDrops != 0 {
		t.Fatalf("colliding source IDs produced %d template drops", st.Feeds[0].TemplateDrops)
	}
	got := udp.Detections()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("detections diverge under source-ID collision: got %d, want %d", len(got), len(want))
	}
}

// TestDetectorListenAndDetect covers the managed lifecycle: serve
// until cancel, then a graceful drain. The configuration error path
// must fail before any socket work.
func TestDetectorListenAndDetect(t *testing.T) {
	s := sharedSystem(t)
	det := s.NewDetector(0.4)
	defer det.Close()

	if err := det.ListenAndDetect(context.Background(), ListenConfig{}); err == nil {
		t.Fatal("empty listener config accepted")
	}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		errc <- det.ListenAndDetect(ctx, ListenConfig{Config: collector.Config{Listeners: []collector.Listener{{Addr: "127.0.0.1:0"}}}})
	}()
	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("cancelled listen returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ListenAndDetect did not return after cancel")
	}
}

// TestFeedStatsRaceCleanDuringLiveFeed hammers the metrics surface
// while a feed goroutine is decoding — the counters must be loadable
// mid-ingest (run under -race in CI).
func TestFeedStatsRaceCleanDuringLiveFeed(t *testing.T) {
	s := sharedSystem(t)
	det := s.NewDetector(0.4)
	defer det.Close()

	streams := exporterStreams(t, s, 1)
	// A message whose template omits the source address: every record
	// skips, so SkippedRecords moves while we read it.
	skipper := msgWithoutSubscriberAddress()

	f := det.NewFeed()
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer f.Close()
		for i := 0; i < 50; i++ {
			for _, m := range streams[0] {
				if err := f.FeedNetFlow(m); err != nil {
					t.Error(err)
					return
				}
			}
			if err := f.FeedNetFlow(skipper); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for {
		select {
		case <-done:
			if st := f.Stats(); st.Records == 0 {
				t.Fatal("live feed reported zero records")
			}
			if det.SkippedRecords() != 50 {
				t.Fatalf("SkippedRecords = %d, want 50", det.SkippedRecords())
			}
			return
		default:
			_ = f.Stats()
			_ = det.SkippedRecords()
			_ = det.Stats()
		}
	}
}

// msgWithoutSubscriberAddress hand-builds a NetFlow v9 message whose
// template carries only (dstaddr, dstport): decoded records have no
// usable subscriber address and must be counted skipped.
func msgWithoutSubscriberAddress() []byte {
	var msg []byte
	be16 := func(v uint16) { msg = append(msg, byte(v>>8), byte(v)) }
	be32 := func(v uint32) { msg = append(msg, byte(v>>24), byte(v>>16), byte(v>>8), byte(v)) }
	be16(9)    // version
	be16(2)    // count
	be32(0)    // uptime
	be32(3600) // unix secs
	be32(0)    // sequence
	be32(91)   // source ID
	be16(0)    // template flowset
	be16(16)   // length
	be16(261)  // template ID
	be16(2)    // field count
	be16(12)   // dstaddr
	be16(4)
	be16(11) // dstport
	be16(2)
	be16(261)                         // data flowset
	be16(12)                          // length (4 hdr + 6 record + 2 pad)
	msg = append(msg, 203, 0, 113, 9) // dstaddr
	be16(443)                         // dstport
	msg = append(msg, 0, 0)           // padding
	return msg
}
