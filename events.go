package haystack

// The detection event stream: shard workers push pipeline.FireEvents
// through a bounded, drop-counted queue into a broker goroutine that
// translates them (rule index → name/level, hour bin → time) and fans
// them out to every Subscribe channel. The push-side counterpart of
// Detections — an ISP deployment wants detections as they fire,
// window after window, not a one-shot inventory.

import (
	"encoding/json"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pipeline"
)

// DetectionEvent is one live first-fire notification: Rule crossed
// its evidence threshold for Subscriber during the hour bin starting
// at First, while aggregation window Window (the Rotate sequence
// number) was current. Exactly one event is emitted per (subscriber,
// rule) per window, so the events of a window reproduce its
// WindowResult.Detections.
type DetectionEvent struct {
	// Subscriber is the opaque anonymized subscriber key (§2.1).
	Subscriber uint64
	Rule       string
	Level      string
	// First is the start of the hour bin in which the rule fired.
	First time.Time
	// Window is the aggregation-window sequence number the event
	// belongs to — WindowResult.Seq of the Rotate that closes it.
	Window uint64
}

// eventJSON is the wire form of DetectionEvent: Detection's schema
// plus the window stamp, subscriber as the 16-hex-digit hash string
// (SubscriberHex) — raw uint64 hashes exceed 2^53 and would corrupt
// in float64-based JSON consumers.
type eventJSON struct {
	Subscriber string    `json:"subscriber"`
	Rule       string    `json:"rule"`
	Level      string    `json:"level"`
	First      time.Time `json:"first"`
	Window     uint64    `json:"window"`
}

func (e DetectionEvent) MarshalJSON() ([]byte, error) {
	return json.Marshal(eventJSON{SubscriberHex(e.Subscriber), e.Rule, e.Level, e.First, e.Window})
}

func (e *DetectionEvent) UnmarshalJSON(b []byte) error {
	var raw eventJSON
	if err := json.Unmarshal(b, &raw); err != nil {
		return err
	}
	sub, err := strconv.ParseUint(raw.Subscriber, 16, 64)
	if err != nil {
		return fmt.Errorf("haystack: event subscriber %q: %w", raw.Subscriber, err)
	}
	*e = DetectionEvent{Subscriber: sub, Rule: raw.Rule, Level: raw.Level, First: raw.First, Window: raw.Window}
	return nil
}

const (
	// eventQueueLen bounds the queue between the shard workers and the
	// fan-out broker. A full queue drops events (counted in
	// DetectorStats.EventsDropped) rather than stalling detection.
	eventQueueLen = 1024
	// subscriberBuffer is each Subscribe channel's capacity. A slow
	// subscriber drops its own deliveries (SubscriberDrops) without
	// affecting other subscribers or the pipeline.
	subscriberBuffer = 256
)

// eventSub is one Subscribe registration.
type eventSub struct {
	ch   chan DetectionEvent
	name string
	// drops counts deliveries skipped because this subscriber's buffer
	// was full — surfaced per subscriber in DetectorStats.EventQueues.
	drops atomic.Uint64
}

// Subscribe registers a live detection stream: every DetectionEvent
// fired after the call is delivered to the returned channel, which
// any number of concurrent subscribers may hold. Delivery is
// asynchronous and bounded — a subscriber that stops draining loses
// its own events (counted in DetectorStats.SubscriberDrops) while
// detection and other subscribers proceed unharmed. The channel is
// closed by cancel (idempotent) or by Detector.Close. Subscribing to
// a closed detector returns an already-closed channel.
func (d *Detector) Subscribe() (<-chan DetectionEvent, func()) {
	return d.SubscribeNamed("")
}

// SubscribeNamed is Subscribe with an operator-visible name: the
// subscriber's queue depth and drop count appear under that name in
// DetectorStats.EventQueues (and therefore /metrics and expvar), so a
// lagging consumer — the event-log writer, an exporter bridge — is
// attributable. An empty name is assigned "sub-<n>".
func (d *Detector) SubscribeNamed(name string) (<-chan DetectionEvent, func()) {
	d.evMu.Lock()
	defer d.evMu.Unlock()
	if d.evClosed {
		ch := make(chan DetectionEvent) // haystack:unbounded closed immediately below; it only signals end-of-stream
		close(ch)
		return ch, func() {}
	}
	if d.evCh == nil {
		// First subscriber: start the broker and install the pipeline
		// first-fire hook. Both stay for the detector's lifetime — an
		// idle broker is one parked goroutine, and keeping the hook
		// means the event counters stay meaningful between
		// subscriptions.
		d.evSubs = make(map[*eventSub]struct{})
		d.evCh = make(chan pipeline.FireEvent, eventQueueLen)
		d.evDone = make(chan struct{}) // haystack:unbounded close-only broker-exit signal; never carries data
		go d.broker()
		d.pipe.SetFireHook(d.fire)
	}
	if name == "" {
		name = fmt.Sprintf("sub-%d", d.evNextID)
	}
	d.evNextID++
	sub := &eventSub{ch: make(chan DetectionEvent, subscriberBuffer), name: name}
	d.evSubs[sub] = struct{}{}
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			d.evMu.Lock()
			defer d.evMu.Unlock()
			if _, ok := d.evSubs[sub]; ok {
				delete(d.evSubs, sub)
				close(sub.ch)
			}
		})
	}
	return sub.ch, cancel
}

// fire is the pipeline first-fire hook: it runs on a shard worker
// goroutine under the shard's engine lock, so it only counts and does
// a non-blocking enqueue — a full queue drops the event visibly
// instead of stalling detection.
//
// haystack:hotpath — runs on the shard worker for every first-fire.
func (d *Detector) fire(ev pipeline.FireEvent) {
	d.eventsEmitted.Add(1)
	select {
	case d.evCh <- ev:
	default:
		d.eventsDropped.Add(1)
	}
}

// broker drains the event queue, translating each FireEvent through
// the dictionary and fanning it out to every subscriber. Sends happen
// under evMu, the same lock cancel closes channels under, so a
// delivery can never race a close. When the queue closes (Detector.
// Close, after the shard workers have stopped), the broker closes all
// subscriber channels and exits.
func (d *Detector) broker() {
	defer close(d.evDone)
	dict := d.pipe.Dictionary()
	for fe := range d.evCh {
		r := &dict.Rules[fe.Rule]
		ev := DetectionEvent{
			Subscriber: uint64(fe.Sub),
			Rule:       r.Name,
			Level:      r.Level.String(),
			First:      fe.Hour.Time(),
			Window:     fe.Window,
		}
		d.evMu.Lock()
		for sub := range d.evSubs {
			select {
			case sub.ch <- ev:
			default:
				sub.drops.Add(1)
				d.subscriberDrops.Add(1)
			}
		}
		d.evMu.Unlock()
		// Count after fan-out: once eventsDelivered catches up with
		// eventsEmitted-eventsDropped, every enqueued event has reached
		// (or visibly missed) every subscriber channel — what
		// flushEvents waits on before the event log is finalized.
		d.eventsDelivered.Add(1)
	}
	d.evMu.Lock()
	for sub := range d.evSubs {
		delete(d.evSubs, sub)
		close(sub.ch)
	}
	d.evMu.Unlock()
}

// flushEvents blocks until the broker has fanned out every event the
// shard workers enqueued so far — delivered to (or visibly dropped
// from) every subscriber channel — or the timeout passes. Call it
// with the pipeline quiescent (no fires in flight); it is how the
// event-log writer's subscription is drained completely before being
// canceled at shutdown. Returns false on timeout.
func (d *Detector) flushEvents(timeout time.Duration) bool {
	d.evMu.Lock()
	started := d.evCh != nil
	d.evMu.Unlock()
	if !started {
		return true
	}
	deadline := time.Now().Add(timeout)
	for {
		target := d.eventsEmitted.Load() - d.eventsDropped.Load()
		if d.eventsDelivered.Load() >= target {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// closeEvents shuts the event path down. Called by Detector.Close
// after pipeline.Close has stopped the shard workers, so no fire can
// race the queue close.
func (d *Detector) closeEvents() {
	d.evMu.Lock()
	ch := d.evCh
	closed := d.evClosed
	d.evClosed = true
	d.evMu.Unlock()
	if ch != nil && !closed {
		close(ch)
		<-d.evDone
	}
}
