package simtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestHourRoundTrip(t *testing.T) {
	tm := time.Date(2019, time.November, 15, 13, 45, 12, 0, time.UTC)
	h := HourOf(tm)
	got := h.Time()
	want := time.Date(2019, time.November, 15, 13, 0, 0, 0, time.UTC)
	if !got.Equal(want) {
		t.Fatalf("Hour.Time() = %v, want %v", got, want)
	}
}

func TestHourDay(t *testing.T) {
	h := HourOf(time.Date(2019, time.November, 15, 23, 0, 0, 0, time.UTC))
	d := h.Day()
	if d.String() != "2019-11-15" {
		t.Fatalf("day = %s", d)
	}
	h2 := h + 1 // midnight next day
	if h2.Day().String() != "2019-11-16" {
		t.Fatalf("next day = %s", h2.Day())
	}
}

func TestDayFirstHour(t *testing.T) {
	d := DayOf(time.Date(2019, time.November, 20, 17, 0, 0, 0, time.UTC))
	fh := d.FirstHour()
	if fh.Time().Hour() != 0 {
		t.Fatalf("first hour of day = %v", fh.Time())
	}
	if fh.Day() != d {
		t.Fatal("first hour not in its own day")
	}
}

func TestHourDayConsistency(t *testing.T) {
	f := func(raw int32) bool {
		h := Hour(raw)
		d := h.Day()
		return d.FirstHour() <= h && h < d.FirstHour()+24
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLocalHour(t *testing.T) {
	h := HourOf(time.Date(2019, time.November, 15, 23, 0, 0, 0, time.UTC))
	if got := h.LocalHour(0); got != 23 {
		t.Fatalf("LocalHour(0) = %d", got)
	}
	if got := h.LocalHour(1); got != 0 {
		t.Fatalf("LocalHour(+1) = %d", got)
	}
	if got := h.LocalHour(-1); got != 22 {
		t.Fatalf("LocalHour(-1) = %d", got)
	}
}

func TestLocalHourRange(t *testing.T) {
	f := func(raw int32, off int8) bool {
		v := Hour(raw).LocalHour(int(off % 13))
		return v >= 0 && v < 24
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWindowHours(t *testing.T) {
	if got := ActiveWindow.Hours(); got != 4*24 {
		t.Fatalf("active window hours = %d, want 96", got)
	}
	if got := IdleWindow.Hours(); got != 3*24 {
		t.Fatalf("idle window hours = %d, want 72", got)
	}
	if got := WildWindow.Hours(); got != 14*24 {
		t.Fatalf("wild window hours = %d, want 336", got)
	}
}

func TestWindowEmpty(t *testing.T) {
	w := Window{Start: 10, End: 10}
	if w.Hours() != 0 || w.Days() != nil {
		t.Fatal("empty window not empty")
	}
	w = Window{Start: 10, End: 5}
	if w.Hours() != 0 {
		t.Fatal("inverted window has hours")
	}
}

func TestWindowDays(t *testing.T) {
	days := WildWindow.Days()
	if len(days) != 14 {
		t.Fatalf("wild window has %d days, want 14", len(days))
	}
	if days[0].String() != "2019-11-15" || days[13].String() != "2019-11-28" {
		t.Fatalf("wild days span %s..%s", days[0], days[13])
	}
}

func TestWindowContains(t *testing.T) {
	w := ActiveWindow
	if !w.Contains(w.Start) {
		t.Fatal("window excludes its start")
	}
	if w.Contains(w.End) {
		t.Fatal("window includes its end")
	}
	if w.Contains(w.Start - 1) {
		t.Fatal("window includes hour before start")
	}
}

func TestWindowEach(t *testing.T) {
	var got []Hour
	w := Window{Start: 100, End: 104}
	w.Each(func(h Hour) { got = append(got, h) })
	if len(got) != 4 || got[0] != 100 || got[3] != 103 {
		t.Fatalf("Each visited %v", got)
	}
}

func TestCanonicalWindowsDisjointOrNested(t *testing.T) {
	// Active and idle windows must not overlap; both lie inside wild.
	if ActiveWindow.End > IdleWindow.Start {
		t.Fatal("active and idle windows overlap")
	}
	if ActiveWindow.Start < WildWindow.Start || IdleWindow.End > WildWindow.End {
		t.Fatal("experiment windows outside wild window")
	}
}

func TestHourString(t *testing.T) {
	h := HourOf(time.Date(2019, time.November, 15, 7, 0, 0, 0, time.UTC))
	if got := h.String(); got != "2019-11-15 07h" {
		t.Fatalf("String = %q", got)
	}
}

func TestFloorDivNegative(t *testing.T) {
	// Hours before the epoch must still map into correct days.
	h := Hour(-1)
	if h.Day() != Day(-1) {
		t.Fatalf("Hour(-1).Day() = %d, want -1", h.Day())
	}
	if Hour(-24).Day() != Day(-1) {
		t.Fatalf("Hour(-24).Day() = %d, want -1", Hour(-24).Day())
	}
	if Hour(-25).Day() != Day(-2) {
		t.Fatalf("Hour(-25).Day() = %d, want -2", Hour(-25).Day())
	}
}
