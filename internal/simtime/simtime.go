// Package simtime provides the discrete time axis of the simulation.
//
// The paper's measurements are hourly and daily aggregates over a fixed
// study period (November 15–28, 2019). All generators and vantage points
// operate on hour bins; days and the canonical experiment windows are
// derived views.
package simtime

import (
	"fmt"
	"time"
)

// Hour is an hour bin: hours since the Unix epoch, UTC.
type Hour int64

// Day is a day bin: days since the Unix epoch, UTC.
type Day int64

// HourOf returns the hour bin containing t.
func HourOf(t time.Time) Hour { return Hour(t.UTC().Unix() / 3600) }

// DayOf returns the day bin containing t.
func DayOf(t time.Time) Day { return Day(t.UTC().Unix() / 86400) }

// Time returns the start of the hour bin.
func (h Hour) Time() time.Time { return time.Unix(int64(h)*3600, 0).UTC() }

// Day returns the day bin containing h.
func (h Hour) Day() Day { return Day(floorDiv(int64(h), 24)) }

// LocalHour returns the hour-of-day (0–23) at the given UTC offset,
// used for diurnal activity patterns in the ISP's timezone.
func (h Hour) LocalHour(utcOffset int) int {
	v := (int(int64(h))%24 + utcOffset) % 24
	if v < 0 {
		v += 24
	}
	return v
}

// String formats the hour bin as "2019-11-15 13h".
func (h Hour) String() string {
	t := h.Time()
	return fmt.Sprintf("%s %02dh", t.Format("2006-01-02"), t.Hour())
}

// Time returns the start of the day bin.
func (d Day) Time() time.Time { return time.Unix(int64(d)*86400, 0).UTC() }

// FirstHour returns the first hour bin of the day.
func (d Day) FirstHour() Hour { return Hour(int64(d) * 24) }

// String formats the day bin as "2019-11-15".
func (d Day) String() string { return d.Time().Format("2006-01-02") }

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// Window is a half-open range of hour bins [Start, End).
type Window struct {
	Start, End Hour
}

// WindowFromTimes builds a window covering [start, end).
func WindowFromTimes(start, end time.Time) Window {
	return Window{Start: HourOf(start), End: HourOf(end)}
}

// Hours returns the number of hour bins in w (0 if empty or inverted).
func (w Window) Hours() int {
	if w.End <= w.Start {
		return 0
	}
	return int(w.End - w.Start)
}

// Days returns the day bins intersecting w, in order.
func (w Window) Days() []Day {
	if w.Hours() == 0 {
		return nil
	}
	var days []Day
	for d := w.Start.Day(); d <= (w.End - 1).Day(); d++ {
		days = append(days, d)
	}
	return days
}

// Contains reports whether h lies within w.
func (w Window) Contains(h Hour) bool { return h >= w.Start && h < w.End }

// Each calls fn for every hour bin in w, in order.
func (w Window) Each(fn func(Hour)) {
	for h := w.Start; h < w.End; h++ {
		fn(h)
	}
}

// String formats the window as "2019-11-15 00h – 2019-11-19 00h".
func (w Window) String() string {
	return fmt.Sprintf("%s – %s", w.Start, w.End)
}

func mustDate(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

// Canonical study windows from the paper (§2.3 and §6).
var (
	// ActiveWindow covers the active experiments: Nov 15–18, 2019
	// (9,810 automated interactions).
	ActiveWindow = WindowFromTimes(mustDate(2019, time.November, 15), mustDate(2019, time.November, 19))

	// IdleWindow covers the idle experiments: Nov 23–25, 2019.
	IdleWindow = WindowFromTimes(mustDate(2019, time.November, 23), mustDate(2019, time.November, 26))

	// WildWindow covers the in-the-wild study: Nov 15–28, 2019.
	WildWindow = WindowFromTimes(mustDate(2019, time.November, 15), mustDate(2019, time.November, 29))
)

// ISPUTCOffset is the UTC offset of the (European) ISP's local timezone
// used for diurnal patterns (CET in November).
const ISPUTCOffset = 1
