package experiments

import (
	"reflect"
	"testing"
)

// TestWildSweepShardInvariance is the sharding determinism contract:
// the §6.2 ISP sweep and §6.3 IXP sweep must produce byte-identical
// figure tables whether the detection pipeline runs on 1 shard or 8.
// A reduced world keeps the doubled sweep affordable in CI.
func TestWildSweepShardInvariance(t *testing.T) {
	build := func(shards int) *Lab {
		cfg := DefaultConfig(1)
		cfg.ISP.Lines = 6_000
		cfg.ISP.Scale = 2500
		cfg.IXP.TotalClients = 6_000
		cfg.IXP.Members = 100
		cfg.Shards = shards
		return MustNewLab(cfg)
	}
	one := build(1)
	eight := build(8)

	figures := []struct {
		id  string
		run func(*Lab) *Table
	}{
		{"F11", (*Lab).Fig11},
		{"F12", (*Lab).Fig12},
		{"F13", (*Lab).Fig13},
		{"F14", (*Lab).Fig14},
		{"F18", (*Lab).Fig18},
		{"F15", (*Lab).Fig15},
		{"F16", (*Lab).Fig16},
	}
	for _, f := range figures {
		a, b := f.run(one), f.run(eight)
		if !reflect.DeepEqual(a.Rows, b.Rows) {
			t.Errorf("%s: rows differ between shards=1 and shards=8", f.id)
			for i := range a.Rows {
				if i < len(b.Rows) && !reflect.DeepEqual(a.Rows[i], b.Rows[i]) {
					t.Errorf("%s row %d: %v != %v", f.id, i, a.Rows[i], b.Rows[i])
					break
				}
			}
		}
		if !reflect.DeepEqual(a.Stats, b.Stats) {
			t.Errorf("%s: stats differ: %v != %v", f.id, a.Stats, b.Stats)
		}
	}
}
