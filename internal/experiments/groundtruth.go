package experiments

import (
	"fmt"
	"net/netip"
	"sort"

	"repro/internal/catalog"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/traffic"
	"repro/internal/vantage"
	"repro/internal/world"
)

// portClass buckets destination ports like Fig 5(c): web, NTP, other.
func portClass(port uint16) int {
	switch port {
	case 443, 80, 8080:
		return 0
	case 123:
		return 1
	default:
		return 2
	}
}

var portClassNames = [3]string{"web", "ntp", "other"}

// ispOb is one ISP-sampled ground-truth observation, kept for detection
// replays (Fig 10) without re-running the sampler.
type ispOb struct {
	h    simtime.Hour
	ip   netip.Addr
	port uint16
	pkts uint64
	dev  int
}

type devDom struct {
	dev int
	dom string
}

// gtHour aggregates one hour at both vantage points.
type gtHour struct {
	h          simtime.Hour
	homeIPs    stats.Set[netip.Addr]
	ispIPs     stats.Set[netip.Addr]
	homeDoms   stats.Set[string]
	ispDoms    stats.Set[string]
	homeDevs   stats.Set[int]
	ispDevs    stats.Set[int]
	homeBytes  map[netip.Addr]uint64
	homeClass  [3]stats.Set[netip.Addr]
	ispClass   [3]stats.Set[netip.Addr]
	homeDevPkt map[int]uint64
	ispDevPkt  map[int]uint64
}

func newGTHour(h simtime.Hour) *gtHour {
	g := &gtHour{
		h:       h,
		homeIPs: stats.Set[netip.Addr]{}, ispIPs: stats.Set[netip.Addr]{},
		homeDoms: stats.Set[string]{}, ispDoms: stats.Set[string]{},
		homeDevs: stats.Set[int]{}, ispDevs: stats.Set[int]{},
		homeBytes:  map[netip.Addr]uint64{},
		homeDevPkt: map[int]uint64{},
		ispDevPkt:  map[int]uint64{},
	}
	for i := range g.homeClass {
		g.homeClass[i] = stats.Set[netip.Addr]{}
		g.ispClass[i] = stats.Set[netip.Addr]{}
	}
	return g
}

// gtCapture is one full ground-truth experiment (§2.3) observed at the
// Home-VP and the ISP-VP.
type gtCapture struct {
	mode   traffic.Mode
	window simtime.Window
	hours  []*gtHour
	// homePkts accumulates per (device, domain) packets at the home
	// side across the window (Figs 8 and 9).
	homePkts map[devDom]uint64
	ispObs   []ispOb
	// deviceName maps device IDs to names for reporting.
	deviceName map[int]string
	deviceProd map[int]string
}

// windowResolver adapts the world's per-day snapshots to the traffic
// generator's single-resolver interface; the capture loop advances day.
type windowResolver struct {
	w   *world.World
	day simtime.Day
}

func (r *windowResolver) Resolve(domain string) []netip.Addr {
	return r.w.ResolverOn(r.day).Resolve(domain)
}

// groundTruth lazily runs (and caches) one experiment mode.
func (l *Lab) groundTruth(mode traffic.Mode) *gtCapture {
	switch {
	case mode == traffic.ModeActive && l.gtActive != nil:
		return l.gtActive
	case mode == traffic.ModeIdle && l.gtIdle != nil:
		return l.gtIdle
	}
	window := simtime.ActiveWindow
	if mode == traffic.ModeIdle {
		window = simtime.IdleWindow
	}
	res := &windowResolver{w: l.W}
	gen := traffic.New(l.rng("gt-"+mode.String()), res, l.W.Catalog.Devices())
	vp := vantage.NewISP(l.rng("gt-isp-" + mode.String()))

	cap := &gtCapture{
		mode: mode, window: window,
		homePkts:   map[devDom]uint64{},
		deviceName: map[int]string{},
		deviceProd: map[int]string{},
	}
	for _, d := range l.W.Catalog.Devices() {
		cap.deviceName[d.ID] = d.String()
		cap.deviceProd[d.ID] = d.Product.Name
	}

	window.Each(func(h simtime.Hour) {
		res.day = h.Day()
		g := newGTHour(h)
		for _, ob := range gen.HourFlows(h, mode, window) {
			dst := ob.Rec.Key.Dst
			cls := portClass(ob.Rec.Key.DstPort)
			g.homeIPs.Add(dst)
			g.homeDoms.Add(ob.Domain)
			g.homeDevs.Add(ob.Device.ID)
			g.homeBytes[dst] += ob.Rec.Bytes
			g.homeClass[cls].Add(dst)
			g.homeDevPkt[ob.Device.ID] += ob.Rec.Packets
			cap.homePkts[devDom{ob.Device.ID, ob.Domain}] += ob.Rec.Packets

			if sampled, ok := vp.Observe(ob.Rec); ok {
				g.ispIPs.Add(dst)
				g.ispDoms.Add(ob.Domain)
				g.ispDevs.Add(ob.Device.ID)
				g.ispClass[cls].Add(dst)
				g.ispDevPkt[ob.Device.ID] += sampled.Packets
				cap.ispObs = append(cap.ispObs, ispOb{
					h: h, ip: dst, port: ob.Rec.Key.DstPort,
					pkts: sampled.Packets, dev: ob.Device.ID,
				})
			}
		}
		cap.hours = append(cap.hours, g)
	})

	if mode == traffic.ModeActive {
		l.gtActive = cap
	} else {
		l.gtIdle = cap
	}
	return cap
}

// Fig5a reproduces Fig 5(a): unique service IPs per hour at the Home-VP
// vs the ISP-VP, for active and idle experiments.
func (l *Lab) Fig5a() *Table {
	t := &Table{
		ID:      "F5a",
		Title:   "Fig 5(a): unique service IPs per hour, Home-VP vs ISP-VP",
		Columns: []string{"mode", "hour", "home-vp", "isp-vp"},
	}
	for _, mode := range []traffic.Mode{traffic.ModeActive, traffic.ModeIdle} {
		cap := l.groundTruth(mode)
		home, isp := stats.NewSeries[simtime.Hour](), stats.NewSeries[simtime.Hour]()
		homeAll, ispAll := stats.Set[netip.Addr]{}, stats.Set[netip.Addr]{}
		for _, g := range cap.hours {
			home.Set(g.h, float64(g.homeIPs.Len()))
			isp.Set(g.h, float64(g.ispIPs.Len()))
			homeAll.AddAll(g.homeIPs)
			ispAll.AddAll(g.ispIPs)
			t.addRow(mode.String(), g.h.String(),
				fmt.Sprintf("%d", g.homeIPs.Len()), fmt.Sprintf("%d", g.ispIPs.Len()))
		}
		ratio := stats.Ratio(isp, home)
		windowRatio := float64(ispAll.Len()) / float64(max(homeAll.Len(), 1))
		t.stat(mode.String()+"_hourly_visibility", ratio)
		t.stat(mode.String()+"_window_visibility", windowRatio)
		t.stat(mode.String()+"_home_ips_mean", home.Mean())
		t.note("%s: mean hourly ISP/Home service-IP visibility %.1f%% (paper ≈16%%); whole-window %.1f%%",
			mode, 100*ratio, 100*windowRatio)
	}
	return t
}

// Fig5b reproduces Fig 5(b): unique domains per hour at both VPs (the
// ISP side uses the home-side DNS ground truth to name sampled IPs).
func (l *Lab) Fig5b() *Table {
	t := &Table{
		ID:      "F5b",
		Title:   "Fig 5(b): unique domains per hour, Home-VP vs ISP-VP",
		Columns: []string{"mode", "hour", "home-vp", "isp-vp"},
	}
	for _, mode := range []traffic.Mode{traffic.ModeActive, traffic.ModeIdle} {
		cap := l.groundTruth(mode)
		home, isp := stats.NewSeries[simtime.Hour](), stats.NewSeries[simtime.Hour]()
		for _, g := range cap.hours {
			home.Set(g.h, float64(g.homeDoms.Len()))
			isp.Set(g.h, float64(g.ispDoms.Len()))
			t.addRow(mode.String(), g.h.String(),
				fmt.Sprintf("%d", g.homeDoms.Len()), fmt.Sprintf("%d", g.ispDoms.Len()))
		}
		t.stat(mode.String()+"_hourly_visibility", stats.Ratio(isp, home))
		t.stat(mode.String()+"_home_domains_mean", home.Mean())
	}
	t.note("domains are fewer than service IPs: many domains are hosted on multiple IPs (§3)")
	return t
}

// Fig5c reproduces Fig 5(c): cumulative service IPs per port class
// (web/NTP/other) at both VPs.
func (l *Lab) Fig5c() *Table {
	t := &Table{
		ID:      "F5c",
		Title:   "Fig 5(c): cumulative service IPs per port class",
		Columns: []string{"mode", "hour", "home-web", "home-ntp", "home-other", "isp-web", "isp-ntp", "isp-other"},
	}
	for _, mode := range []traffic.Mode{traffic.ModeActive, traffic.ModeIdle} {
		cap := l.groundTruth(mode)
		var homeCum, ispCum [3]stats.Set[netip.Addr]
		for i := range homeCum {
			homeCum[i] = stats.Set[netip.Addr]{}
			ispCum[i] = stats.Set[netip.Addr]{}
		}
		var lastRow [6]int
		for hi, g := range cap.hours {
			for c := 0; c < 3; c++ {
				homeCum[c].AddAll(g.homeClass[c])
				ispCum[c].AddAll(g.ispClass[c])
			}
			row := [6]int{
				homeCum[0].Len(), homeCum[1].Len(), homeCum[2].Len(),
				ispCum[0].Len(), ispCum[1].Len(), ispCum[2].Len(),
			}
			// Convergence: report every 6th hour plus the last.
			if hi%6 == 0 || hi == len(cap.hours)-1 {
				t.addRow(mode.String(), g.h.String(),
					fmt.Sprintf("%d", row[0]), fmt.Sprintf("%d", row[1]), fmt.Sprintf("%d", row[2]),
					fmt.Sprintf("%d", row[3]), fmt.Sprintf("%d", row[4]), fmt.Sprintf("%d", row[5]))
			}
			lastRow = row
		}
		for c := 0; c < 3; c++ {
			t.stat(fmt.Sprintf("%s_home_%s_final", mode, portClassNames[c]), float64(lastRow[c]))
			t.stat(fmt.Sprintf("%s_isp_%s_final", mode, portClassNames[c]), float64(lastRow[c+3]))
		}
	}
	t.note("the ISP trend mirrors the Home-VP per port class and converges over time (§3)")
	return t
}

// Fig5d reproduces Fig 5(d): unique devices observed per hour.
func (l *Lab) Fig5d() *Table {
	t := &Table{
		ID:      "F5d",
		Title:   "Fig 5(d): unique IoT devices observed per hour",
		Columns: []string{"mode", "hour", "home-vp", "isp-vp"},
	}
	for _, mode := range []traffic.Mode{traffic.ModeActive, traffic.ModeIdle} {
		cap := l.groundTruth(mode)
		home, isp := stats.NewSeries[simtime.Hour](), stats.NewSeries[simtime.Hour]()
		for _, g := range cap.hours {
			home.Set(g.h, float64(g.homeDevs.Len()))
			isp.Set(g.h, float64(g.ispDevs.Len()))
			t.addRow(mode.String(), g.h.String(),
				fmt.Sprintf("%d", g.homeDevs.Len()), fmt.Sprintf("%d", g.ispDevs.Len()))
		}
		ratio := stats.Ratio(isp, home)
		t.stat(mode.String()+"_device_visibility", ratio)
		t.note("%s: %.0f%% of active devices visible per hour at the ISP (paper: 67%% active / 64%% idle)",
			mode, 100*ratio)
	}
	return t
}

// Fig6 reproduces Fig 6: per-hour visibility of the heavy-hitter
// service IPs (top 10/20/30 % by byte count at the home side).
func (l *Lab) Fig6() *Table {
	t := &Table{
		ID:      "F6",
		Title:   "Fig 6: fraction of top-N% service IPs (by bytes) visible at the ISP",
		Columns: []string{"mode", "hour", "top10%", "top20%", "top30%"},
	}
	fractions := []float64{0.10, 0.20, 0.30}
	for _, mode := range []traffic.Mode{traffic.ModeActive, traffic.ModeIdle} {
		cap := l.groundTruth(mode)
		sums := make([]float64, len(fractions))
		n := 0
		for _, g := range cap.hours {
			if len(g.homeBytes) == 0 {
				continue
			}
			counter := stats.Counter[string]{}
			byKey := map[string]netip.Addr{}
			for ip, b := range g.homeBytes {
				k := ip.String()
				counter.Inc(k, b)
				byKey[k] = ip
			}
			vals := make([]float64, len(fractions))
			for fi, f := range fractions {
				top := stats.TopFraction(counter, f)
				vis := 0
				for _, k := range top {
					if g.ispIPs.Has(byKey[k]) {
						vis++
					}
				}
				vals[fi] = float64(vis) / float64(len(top))
				sums[fi] += vals[fi]
			}
			n++
			t.addRow(mode.String(), g.h.String(),
				fmt.Sprintf("%.2f", vals[0]), fmt.Sprintf("%.2f", vals[1]), fmt.Sprintf("%.2f", vals[2]))
		}
		for fi, f := range fractions {
			t.stat(fmt.Sprintf("%s_top%.0f_visibility", mode, f*100), sums[fi]/float64(max(n, 1)))
		}
	}
	t.note("popular service IPs are far more visible than the 16%% average (§3)")
	return t
}

// fig8Devices is the 13-device subset plotted in Fig 8.
var fig8Devices = []string{
	"Apple TV", "Blink Hub", "Echo Dot", "Meross Door Opener",
	"Netatmo Weather", "Philips Hue", "Smarter Brewer", "Smartlife Bulb",
	"Smartthings", "Anova Sousvide", "TP-Link Bulb", "Xiaomi Hub", "Yi Cam",
}

// Fig8 reproduces Fig 8: average packets/hour per domain for 13
// devices in idle mode, separating laconic from gossiping devices.
func (l *Lab) Fig8() *Table {
	t := &Table{
		ID:      "F8",
		Title:   "Fig 8: Home-VP average packets/hour per domain (13 devices, idle)",
		Columns: []string{"device", "domain", "avg pkts/h", "profile"},
	}
	cap := l.groundTruth(traffic.ModeIdle)
	hours := float64(cap.window.Hours())

	type row struct {
		dev, dom string
		pph      float64
	}
	perDev := map[string][]row{}
	for dd, pkts := range cap.homePkts {
		prod := cap.deviceProd[dd.dev]
		if !contains(fig8Devices, prod) {
			continue
		}
		// Use the testbed-1 instance only (one copy per product).
		if cap.deviceName[dd.dev] != prod+"#1" {
			continue
		}
		perDev[prod] = append(perDev[prod], row{dev: prod, dom: dd.dom, pph: float64(pkts) / hours})
	}
	for _, dev := range fig8Devices {
		rows := perDev[dev]
		sort.Slice(rows, func(i, j int) bool { return rows[i].pph > rows[j].pph })
		profile := "laconic"
		if len(rows) >= 15 {
			profile = "gossiping"
		}
		for _, r := range rows {
			t.addRow(r.dev, r.dom, fmt.Sprintf("%.1f", r.pph), profile)
		}
		t.stat("domains_"+dev, float64(len(rows)))
	}
	t.note("most devices are supported by a small domain set (<10); Apple TV and Echo-family gossip (§4.1)")
	return t
}

// Fig9 reproduces Fig 9: ECDF of average packets/hour per (device,
// domain) pair over IoT-specific domains, idle vs active.
func (l *Lab) Fig9() *Table {
	t := &Table{
		ID:      "F9",
		Title:   "Fig 9: ECDF of avg packets/hour per device+domain (IoT-specific)",
		Columns: []string{"mode", "quantile", "pkts/h"},
	}
	for _, mode := range []traffic.Mode{traffic.ModeIdle, traffic.ModeActive} {
		cap := l.groundTruth(mode)
		hours := float64(cap.window.Hours())
		var e stats.ECDF
		for dd, pkts := range cap.homePkts {
			dom, ok := l.W.Catalog.Domains[dd.dom]
			if !ok || dom.Role == catalog.RoleGeneric {
				continue
			}
			e.Add(float64(pkts) / hours)
		}
		for _, q := range []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.99} {
			t.addRow(mode.String(), fmt.Sprintf("%.2f", q), fmt.Sprintf("%.1f", e.Quantile(q)))
		}
		t.stat(mode.String()+"_median_pph", e.Quantile(0.5))
		t.stat(mode.String()+"_p90_pph", e.Quantile(0.9))
	}
	t.note("active experiments shift the upper tail beyond 10k pkts/h — the detection-friendly domains (§4.1)")
	return t
}

// Fig17 reproduces Fig 17: packet counts per hour for a single Alexa
// Enabled device (Echo Dot, testbed 1) at both VPs.
func (l *Lab) Fig17() *Table {
	t := &Table{
		ID:      "F17",
		Title:   "Fig 17: single Alexa Enabled device, packets/hour at Home-VP and ISP-VP",
		Columns: []string{"mode", "hour", "home pkts", "isp pkts"},
	}
	devID := -1
	for _, d := range l.W.Catalog.Devices() {
		if d.Product.Name == "Echo Dot" && d.Testbed == 1 {
			devID = d.ID
			break
		}
	}
	for _, mode := range []traffic.Mode{traffic.ModeActive, traffic.ModeIdle} {
		cap := l.groundTruth(mode)
		var homeMax, ispMax uint64
		for _, g := range cap.hours {
			hp, ip := g.homeDevPkt[devID], g.ispDevPkt[devID]
			if hp > homeMax {
				homeMax = hp
			}
			if ip > ispMax {
				ispMax = ip
			}
			t.addRow(mode.String(), g.h.String(), fmt.Sprintf("%d", hp), fmt.Sprintf("%d", ip))
		}
		t.stat(mode.String()+"_home_peak", float64(homeMax))
		t.stat(mode.String()+"_isp_peak", float64(ispMax))
	}
	t.note("activity spikes exceed 1k pkts/h at home and 10 sampled pkts/h at the ISP; idle never does (§7.1)")
	return t
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
