package experiments

import (
	"fmt"
	"sort"

	"repro/internal/catalog"
	"repro/internal/detect"
	"repro/internal/rules"
	"repro/internal/simtime"
	"repro/internal/traffic"
	"repro/internal/vantage"
)

// Fig10Thresholds is the detection-threshold sweep of Fig 10.
var Fig10Thresholds = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// NotDetected marks a rule that never fired within the window.
const NotDetected = -1

// detectionDelay replays the ISP-sampled ground truth through a fresh
// engine at threshold d and returns, per rule index, the delay in hours
// until first detection (NotDetected if never).
func (l *Lab) detectionDelay(cap *gtCapture, d float64) []int {
	eng := detect.New(l.Dict, d)
	const sub = detect.SubID(1) // the single ground-truth subscriber line
	for _, ob := range cap.ispObs {
		eng.Observe(sub, ob.h, ob.ip, ob.port, ob.pkts)
	}
	out := make([]int, len(l.Dict.Rules))
	for i := range out {
		if h, ok := eng.FirstDetection(sub, i); ok {
			out[i] = int(h - cap.window.Start + 1) // hours needed, 1-based
		} else {
			out[i] = NotDetected
		}
	}
	return out
}

// DetectionDelays replays the active ground truth at threshold d and
// returns per-rule hours-to-detect (NotDetected when never). Exposed
// for the threshold-ablation benchmark.
func (l *Lab) DetectionDelays(d float64) []int {
	return l.detectionDelay(l.groundTruth(traffic.ModeActive), d)
}

// Fig10 reproduces Fig 10: time to detect each IoT rule from the
// sampled ISP view of the ground-truth line, for both experiment modes
// across the threshold sweep, with the §5 summary percentages.
func (l *Lab) Fig10() *Table {
	t := &Table{
		ID:      "F10",
		Title:   "Fig 10: hours to detect each IoT rule per threshold D (−1 = not detected)",
		Columns: []string{"rule", "domains", "mode", "D=0.1", "D=0.2", "D=0.3", "D=0.4", "D=0.5", "D=0.6", "D=0.7", "D=0.8", "D=0.9", "D=1.0"},
	}
	for _, mode := range []traffic.Mode{traffic.ModeActive, traffic.ModeIdle} {
		cap := l.groundTruth(mode)
		delays := make([][]int, len(Fig10Thresholds))
		for di, d := range Fig10Thresholds {
			delays[di] = l.detectionDelay(cap, d)
		}
		order := sortedRuleIdx(l.Dict)
		for _, ri := range order {
			r := &l.Dict.Rules[ri]
			row := []string{r.Label(), fmt.Sprintf("%d", len(r.Domains)), mode.String()}
			for di := range Fig10Thresholds {
				row = append(row, fmt.Sprintf("%d", delays[di][ri]))
			}
			t.Rows = append(t.Rows, row)
		}
		// §5 summary at the conservative D=0.4: fraction of
		// manufacturer/product-level rules detected within 1/24/72 h.
		d04 := delays[3]
		summary(t, l.Dict, d04, mode.String()+"_manpr", func(r *rules.Rule) bool {
			return r.Level == catalog.LevelManufacturer || r.Level == catalog.LevelProduct
		})
		summary(t, l.Dict, d04, mode.String()+"_product", func(r *rules.Rule) bool {
			return r.Level == catalog.LevelProduct
		})
		if mode == traffic.ModeIdle {
			und := 0
			for _, v := range d04 {
				if v == NotDetected {
					und++
				}
			}
			t.stat("idle_undetected_rules", float64(und))
			t.note("idle: %d rules never detected (paper: 6, five sparse devices plus Samsung TV's hierarchy)", und)
		}
	}
	t.note("paper at D=0.4 active: 72/93/96%% of manufacturer- or product-level rules within 1/24/72 h")
	return t
}

func summary(t *Table, dict *rules.Dictionary, delays []int, key string, keep func(*rules.Rule) bool) {
	total := 0
	within := map[int]int{1: 0, 24: 0, 72: 0}
	for ri := range dict.Rules {
		if !keep(&dict.Rules[ri]) {
			continue
		}
		total++
		d := delays[ri]
		if d == NotDetected {
			continue
		}
		for _, lim := range []int{1, 24, 72} {
			if d <= lim {
				within[lim]++
			}
		}
	}
	if total == 0 {
		return
	}
	for _, lim := range []int{1, 24, 72} {
		t.stat(fmt.Sprintf("%s_within_%dh", key, lim), float64(within[lim])/float64(total))
	}
}

func sortedRuleIdx(dict *rules.Dictionary) []int {
	idx := make([]int, len(dict.Rules))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ra, rb := &dict.Rules[idx[a]], &dict.Rules[idx[b]]
		if len(ra.Domains) != len(rb.Domains) {
			return len(ra.Domains) < len(rb.Domains)
		}
		return ra.Name < rb.Name
	})
	return idx
}

// Table1 reproduces Table 1: the device inventory by category.
func (l *Lab) Table1() *Table {
	t := &Table{
		ID:      "T1",
		Title:   "Table 1: IoT devices under test",
		Columns: []string{"category", "product", "vendor", "testbeds", "automation"},
	}
	for _, cat := range catalog.Categories() {
		for _, p := range l.W.Catalog.Products {
			if p.Category != cat {
				continue
			}
			tb := "1"
			if p.InBothTestbeds {
				tb = "1+2"
			}
			auto := "active+idle"
			if p.IdleOnly {
				auto = "idle"
			}
			t.addRow(cat.String(), p.Name, p.Vendor, tb, auto)
		}
	}
	t.stat("products", float64(len(l.W.Catalog.Products)))
	t.stat("vendors", float64(len(l.W.Catalog.Vendors)))
	t.stat("devices", float64(len(l.W.Catalog.Devices())))
	return t
}

// Sec41 reproduces the §4.1 census: 415 Primary, 19 Support, rest
// Generic out of 524 observed domains.
func (l *Lab) Sec41() *Table {
	t := &Table{
		ID:      "S41",
		Title:   "§4.1: domain classification census",
		Columns: []string{"class", "count"},
	}
	p, s, g := l.Dom.Counts()
	t.addRow("Primary", fmt.Sprintf("%d", p))
	t.addRow("Support", fmt.Sprintf("%d", s))
	t.addRow("Generic", fmt.Sprintf("%d", g))
	t.addRow("total", fmt.Sprintf("%d", p+s+g))
	t.stat("primary", float64(p))
	t.stat("support", float64(s))
	t.stat("generic", float64(g))
	t.stat("iot_specific", float64(p+s))
	t.note("paper: 415 Primary + 19 Support of 524 observed domains")
	return t
}

// Sec42 reproduces the §4.2 pipeline outcome: 217 dedicated / 202
// shared / 15 no-record, 8 recovered via certificate scans (5 devices).
func (l *Lab) Sec42() *Table {
	t := &Table{
		ID:      "S42",
		Title:   "§4.2: dedicated vs shared backend infrastructure",
		Columns: []string{"verdict", "count"},
	}
	ded, shared, noRec, viaCensys := l.Ded.Counts()
	t.addRow("dedicated (passive DNS)", fmt.Sprintf("%d", ded))
	t.addRow("shared", fmt.Sprintf("%d", shared))
	t.addRow("recovered via cert scans", fmt.Sprintf("%d", viaCensys))
	t.addRow("no record", fmt.Sprintf("%d", noRec))
	t.stat("dedicated_pdns", float64(ded))
	t.stat("shared", float64(shared))
	t.stat("via_censys", float64(viaCensys))
	t.stat("no_record", float64(noRec))
	devs := map[string]bool{}
	for _, prod := range l.W.Catalog.Products {
		for _, u := range prod.Uses {
			if r, ok := l.Ded.Results[u.Domain.Name]; ok && r.ViaCensys {
				devs[prod.Name] = true
			}
		}
	}
	t.stat("censys_devices", float64(len(devs)))
	t.note("paper: 217 dedicated, 202 shared, 15 no-record of which 8 recovered (5 devices)")
	return t
}

// Sec43 reproduces the §4.3 rule census: detection rules per level and
// recognized manufacturers.
func (l *Lab) Sec43() *Table {
	t := &Table{
		ID:      "S43",
		Title:   "§4.3: generated detection rules",
		Columns: []string{"level", "rules"},
	}
	levels := l.Dict.Levels()
	t.addRow("Platform", fmt.Sprintf("%d", levels[catalog.LevelPlatform]))
	t.addRow("Manufacturer", fmt.Sprintf("%d", levels[catalog.LevelManufacturer]))
	t.addRow("Product", fmt.Sprintf("%d", levels[catalog.LevelProduct]))
	t.stat("platform_rules", float64(levels[catalog.LevelPlatform]))
	t.stat("manufacturer_rules", float64(levels[catalog.LevelManufacturer]))
	t.stat("product_rules", float64(levels[catalog.LevelProduct]))

	recognized := map[string]bool{}
	for i := range l.Dict.Rules {
		r := &l.Dict.Rules[i]
		if r.MultiVendor {
			continue
		}
		for _, pname := range r.Products {
			if p, ok := l.W.Catalog.Product(pname); ok {
				recognized[p.Vendor] = true
			}
		}
	}
	t.stat("recognized_manufacturers", float64(len(recognized)))
	t.stat("manufacturer_coverage", float64(len(recognized))/float64(len(l.W.Catalog.Vendors)))
	t.note("paper: rules for 20 manufacturers and 11 products — 77%% of the 40 manufacturers")
	return t
}

// Sec5FalsePositive reproduces the §5 crosscheck: enable only a small
// device subset and verify no other rule fires.
func (l *Lab) Sec5FalsePositive() *Table {
	t := &Table{
		ID:      "S5FP",
		Title:   "§5: false-positive crosscheck (subset-only world)",
		Columns: []string{"enabled product", "fired rules"},
	}
	subset := []string{"Echo Dot", "Meross Door Opener", "Yi Cam", "Netatmo Weather"}
	var devices []catalog.Device
	for _, d := range l.W.Catalog.Devices() {
		if contains(subset, d.Product.Name) && d.Testbed == 1 {
			devices = append(devices, d)
		}
	}
	res := &windowResolver{w: l.W}
	gen := traffic.New(l.rng("fp-check"), res, devices)
	// Use a private ISP sampler so the cached captures stay intact.
	eng := l.engine()
	const sub = detect.SubID(99)
	vp := vantage.NewISP(l.rng("fp-isp"))
	simtime.ActiveWindow.Each(func(h simtime.Hour) {
		res.day = h.Day()
		for _, ob := range gen.HourFlows(h, traffic.ModeActive, simtime.ActiveWindow) {
			if sampled, ok := vp.Observe(ob.Rec); ok {
				eng.Observe(sub, h, ob.Rec.Key.Dst, ob.Rec.Key.DstPort, sampled.Packets)
			}
		}
	})

	// Rules legitimately allowed to fire: those detecting the subset.
	allowed := map[int]bool{}
	for _, pname := range subset {
		for _, spec := range l.W.Catalog.RulesDetecting(pname) {
			if ri := l.Dict.RuleIndex(spec.Name); ri >= 0 {
				allowed[ri] = true
			}
		}
	}
	falsePositives := 0
	fired := 0
	for ri := range l.Dict.Rules {
		if !eng.Detected(sub, ri) {
			continue
		}
		fired++
		if !allowed[ri] {
			falsePositives++
			t.addRow("(unexpected)", l.Dict.Rules[ri].Label())
		}
	}
	for _, pname := range subset {
		var names []string
		for ri := range l.Dict.Rules {
			if eng.Detected(sub, ri) && allowed[ri] && detectsProduct(&l.Dict.Rules[ri], pname) {
				names = append(names, l.Dict.Rules[ri].Label())
			}
		}
		t.addRow(pname, fmt.Sprintf("%v", names))
	}
	t.stat("false_positives", float64(falsePositives))
	t.stat("fired_rules", float64(fired))
	t.note("paper: no devices identified that were not explicitly part of the experiment")
	return t
}

func detectsProduct(r *rules.Rule, product string) bool {
	for _, p := range r.Products {
		if p == product {
			return true
		}
	}
	return false
}
