package experiments

import (
	"sync"
	"testing"
)

// The lab is expensive (full two-week wild sweep); share one across the
// test binary.
var (
	labOnce sync.Once
	lab     *Lab
)

func sharedLab(t *testing.T) *Lab {
	t.Helper()
	labOnce.Do(func() {
		lab = MustNewLab(DefaultConfig(1))
	})
	return lab
}

func want(t *testing.T, tbl *Table, key string, lo, hi float64) {
	t.Helper()
	v, ok := tbl.Stats[key]
	if !ok {
		t.Fatalf("%s: stat %q missing (have %v)", tbl.ID, key, tbl.SortedStats())
	}
	if v < lo || v > hi {
		t.Errorf("%s: %s = %v, want in [%v, %v]", tbl.ID, key, v, lo, hi)
	}
}

func wantExact(t *testing.T, tbl *Table, key string, v float64) {
	t.Helper()
	want(t, tbl, key, v, v)
}

func TestTable1(t *testing.T) {
	tbl := sharedLab(t).Table1()
	wantExact(t, tbl, "products", 56)
	wantExact(t, tbl, "vendors", 40)
	wantExact(t, tbl, "devices", 96)
	if len(tbl.Rows) != 56 {
		t.Errorf("Table 1 lists %d products", len(tbl.Rows))
	}
}

func TestSec41(t *testing.T) {
	tbl := sharedLab(t).Sec41()
	wantExact(t, tbl, "primary", 415)
	wantExact(t, tbl, "support", 19)
	wantExact(t, tbl, "generic", 90)
	wantExact(t, tbl, "iot_specific", 434)
}

func TestSec42(t *testing.T) {
	tbl := sharedLab(t).Sec42()
	wantExact(t, tbl, "dedicated_pdns", 217)
	wantExact(t, tbl, "shared", 202)
	wantExact(t, tbl, "via_censys", 8)
	wantExact(t, tbl, "no_record", 7)
	wantExact(t, tbl, "censys_devices", 5)
}

func TestSec43(t *testing.T) {
	tbl := sharedLab(t).Sec43()
	wantExact(t, tbl, "platform_rules", 6)
	wantExact(t, tbl, "manufacturer_rules", 20)
	wantExact(t, tbl, "product_rules", 11)
	wantExact(t, tbl, "recognized_manufacturers", 31)
	want(t, tbl, "manufacturer_coverage", 0.77, 0.78)
}

func TestFig5a(t *testing.T) {
	tbl := sharedLab(t).Fig5a()
	// Paper: ~16 % hourly visibility, 500–1300 service IPs/h active.
	want(t, tbl, "active_hourly_visibility", 0.10, 0.28)
	want(t, tbl, "idle_hourly_visibility", 0.06, 0.25)
	want(t, tbl, "active_home_ips_mean", 450, 1300)
	// Whole-window visibility exceeds any hourly snapshot (§3).
	if tbl.Stats["active_window_visibility"] <= tbl.Stats["active_hourly_visibility"] {
		t.Error("window visibility should exceed hourly visibility")
	}
}

func TestFig5b(t *testing.T) {
	tbl := sharedLab(t).Fig5b()
	want(t, tbl, "active_home_domains_mean", 400, 524)
	lab := sharedLab(t)
	a := lab.Fig5a()
	// Fewer domains than service IPs per hour (§3).
	if tbl.Stats["active_home_domains_mean"] > a.Stats["active_home_ips_mean"] {
		t.Error("domains per hour should not exceed service IPs per hour")
	}
}

func TestFig5c(t *testing.T) {
	tbl := sharedLab(t).Fig5c()
	// Cumulative IPs converge and every class is non-empty; the ISP
	// sees a subset of the home view.
	for _, mode := range []string{"active", "idle"} {
		for _, class := range []string{"web", "ntp", "other"} {
			home := tbl.Stats[mode+"_home_"+class+"_final"]
			isp := tbl.Stats[mode+"_isp_"+class+"_final"]
			if home <= 0 {
				t.Errorf("%s home %s empty", mode, class)
			}
			if isp > home {
				t.Errorf("%s isp %s (%v) exceeds home (%v)", mode, class, isp, home)
			}
		}
	}
	if tbl.Stats["active_home_web_final"] <= tbl.Stats["active_home_ntp_final"] {
		t.Error("web service IPs should dominate NTP")
	}
}

func TestFig5d(t *testing.T) {
	tbl := sharedLab(t).Fig5d()
	// Paper: 67 % active / 64 % idle device visibility per hour.
	want(t, tbl, "active_device_visibility", 0.50, 0.85)
	want(t, tbl, "idle_device_visibility", 0.40, 0.80)
}

func TestFig6(t *testing.T) {
	tbl := sharedLab(t).Fig6()
	want(t, tbl, "active_top10_visibility", 0.60, 0.95)
	// Monotone: more popular ⇒ more visible.
	for _, mode := range []string{"active", "idle"} {
		t10 := tbl.Stats[mode+"_top10_visibility"]
		t20 := tbl.Stats[mode+"_top20_visibility"]
		t30 := tbl.Stats[mode+"_top30_visibility"]
		if !(t10 > t20 && t20 > t30) {
			t.Errorf("%s: heavy-hitter visibility not monotone: %v %v %v", mode, t10, t20, t30)
		}
	}
	// Heavy hitters are far more visible than the ~16 % average.
	a := sharedLab(t).Fig5a()
	if tbl.Stats["active_top10_visibility"] < 2.5*a.Stats["active_hourly_visibility"] {
		t.Error("top-10% visibility should far exceed the average")
	}
}

func TestFig8(t *testing.T) {
	tbl := sharedLab(t).Fig8()
	// 13 devices; gossips have large domain sets, laconic small ones.
	if tbl.Stats["domains_Apple TV"] < 15 {
		t.Errorf("Apple TV domains = %v, want gossiping (>=15)", tbl.Stats["domains_Apple TV"])
	}
	if tbl.Stats["domains_Echo Dot"] < 15 {
		t.Errorf("Echo Dot domains = %v, want gossiping (>=15)", tbl.Stats["domains_Echo Dot"])
	}
	for _, laconic := range []string{"Meross Door Opener", "Anova Sousvide", "Netatmo Weather", "Smarter Brewer"} {
		if tbl.Stats["domains_"+laconic] >= 10 {
			t.Errorf("%s domains = %v, want laconic (<10)", laconic, tbl.Stats["domains_"+laconic])
		}
	}
}

func TestFig9(t *testing.T) {
	tbl := sharedLab(t).Fig9()
	if tbl.Stats["active_median_pph"] <= tbl.Stats["idle_median_pph"] {
		t.Error("active median pkts/h should exceed idle")
	}
	if tbl.Stats["active_p90_pph"] <= tbl.Stats["idle_p90_pph"] {
		t.Error("active p90 pkts/h should exceed idle")
	}
}

func TestFig10(t *testing.T) {
	tbl := sharedLab(t).Fig10()
	// Paper (D=0.4, active): 72/93/96 % of Man/Pr rules in 1/24/72 h.
	want(t, tbl, "active_manpr_within_1h", 0.45, 0.90)
	want(t, tbl, "active_manpr_within_24h", 0.85, 1.0)
	want(t, tbl, "active_manpr_within_72h", 0.90, 1.0)
	// Idle detection is slower than active at every horizon.
	for _, k := range []string{"_manpr_within_1h", "_manpr_within_24h"} {
		if tbl.Stats["idle"+k] > tbl.Stats["active"+k] {
			t.Errorf("idle%s (%v) exceeds active%s (%v)", k, tbl.Stats["idle"+k], k, tbl.Stats["active"+k])
		}
	}
	// Paper: 6 rules undetectable in idle (5 sparse + Samsung TV).
	want(t, tbl, "idle_undetected_rules", 4, 7)
}

func TestFig11(t *testing.T) {
	tbl := sharedLab(t).Fig11()
	want(t, tbl, "alexa_daily_frac", 0.11, 0.17)   // paper ~14 %
	want(t, tbl, "any_daily_frac", 0.15, 0.24)     // paper ~20 %
	want(t, tbl, "alexa_day_hour_ratio", 1.3, 2.8) // paper ~2×
	want(t, tbl, "samsung_day_hour_ratio", 2.5, 8) // paper ~6×
	if tbl.Stats["samsung_day_hour_ratio"] <= tbl.Stats["alexa_day_hour_ratio"] {
		t.Error("Samsung should gain more from daily aggregation than Alexa")
	}
	if tbl.Stats["samsung_diurnal_amplitude"] <= tbl.Stats["other_diurnal_amplitude"] {
		t.Error("Samsung should show a diurnal pattern; the other 32 should not")
	}
}

func TestFig12(t *testing.T) {
	tbl := sharedLab(t).Fig12()
	for _, k := range []string{"amazon_over_alexa", "firetv_over_amazon", "samsungtv_over_samsung"} {
		want(t, tbl, k, 0.01, 0.95) // specialized subsets are proper fractions
	}
}

func TestFig13(t *testing.T) {
	tbl := sharedLab(t).Fig13()
	if tbl.Stats["subs_tail_growth"] <= tbl.Stats["slash24_tail_growth"] {
		t.Error("identifier-churn double counting should outgrow /24 aggregation")
	}
	want(t, tbl, "slash24_tail_growth", 0, 0.05)
}

func TestFig14(t *testing.T) {
	tbl := sharedLab(t).Fig14()
	if len(tbl.Rows) != 32 {
		t.Fatalf("Fig 14 lists %d device types, want 32", len(tbl.Rows))
	}
	if tbl.Stats["mean_Philips Dev."] <= tbl.Stats["mean_Microseven Cam."] {
		t.Error("popular Philips should exceed no-market Microseven")
	}
	if tbl.Stats["mean_Philips Dev."] < 50_000 {
		t.Errorf("Philips daily mean %v, want >50k at paper scale", tbl.Stats["mean_Philips Dev."])
	}
}

func TestFig15(t *testing.T) {
	tbl := sharedLab(t).Fig15()
	want(t, tbl, "alexa_daily_mean", 100_000, 450_000)  // paper ~200k
	want(t, tbl, "samsung_daily_mean", 30_000, 160_000) // paper ~90k
	want(t, tbl, "other_daily_mean", 40_000, 250_000)   // paper >100k
	if tbl.Stats["alexa_daily_mean"] <= tbl.Stats["samsung_daily_mean"] {
		t.Error("Alexa should dominate Samsung at the IXP")
	}
}

func TestFig16(t *testing.T) {
	tbl := sharedLab(t).Fig16()
	for _, class := range []string{"alexa", "samsung", "other"} {
		want(t, tbl, class+"_eyeball_share", 0.55, 1.0)
		want(t, tbl, class+"_top_as_share", 0.10, 0.80)
		if tbl.Stats[class+"_ases_with_activity"] < 20 {
			t.Errorf("%s: only %v ASes show activity; the tail is missing", class, tbl.Stats[class+"_ases_with_activity"])
		}
	}
}

func TestFig17(t *testing.T) {
	tbl := sharedLab(t).Fig17()
	if tbl.Stats["active_home_peak"] <= 1000 {
		t.Error("active home spikes should exceed 1k pkts/h (§7.1)")
	}
	if tbl.Stats["active_isp_peak"] <= 10 {
		t.Error("active ISP spikes should exceed 10 sampled pkts/h (§7.1)")
	}
	if tbl.Stats["idle_isp_peak"] > 10 {
		t.Error("idle ISP traffic should never reach the usage threshold")
	}
}

func TestFig18(t *testing.T) {
	tbl := sharedLab(t).Fig18()
	want(t, tbl, "active_peak", 8_000, 60_000) // paper ~27k
	if tbl.Stats["active_diurnal_amplitude"] < 1.5 {
		t.Errorf("active use should follow human diurnal activity, amplitude %v", tbl.Stats["active_diurnal_amplitude"])
	}
}

func TestSec5FalsePositive(t *testing.T) {
	tbl := sharedLab(t).Sec5FalsePositive()
	wantExact(t, tbl, "false_positives", 0)
	if tbl.Stats["fired_rules"] < 3 {
		t.Errorf("only %v rules fired for the 4-device subset", tbl.Stats["fired_rules"])
	}
}

func TestAllTablesWellFormed(t *testing.T) {
	l := sharedLab(t)
	tables := []*Table{
		l.Table1(), l.Sec41(), l.Sec42(), l.Sec43(),
		l.Fig5a(), l.Fig5b(), l.Fig5c(), l.Fig5d(), l.Fig6(), l.Fig8(),
		l.Fig9(), l.Fig10(), l.Fig11(), l.Fig12(), l.Fig13(), l.Fig14(),
		l.Fig15(), l.Fig16(), l.Fig17(), l.Fig18(), l.Sec5FalsePositive(),
	}
	seen := map[string]bool{}
	for _, tbl := range tables {
		if tbl.ID == "" || tbl.Title == "" {
			t.Errorf("table missing ID/title: %+v", tbl)
		}
		if seen[tbl.ID] {
			t.Errorf("duplicate table ID %s", tbl.ID)
		}
		seen[tbl.ID] = true
		if len(tbl.Columns) == 0 || len(tbl.Rows) == 0 {
			t.Errorf("%s: empty table", tbl.ID)
		}
		for i, row := range tbl.Rows {
			if len(row) != len(tbl.Columns) {
				t.Errorf("%s row %d has %d cells, want %d", tbl.ID, i, len(row), len(tbl.Columns))
				break
			}
		}
	}
}
