package experiments

import (
	"fmt"

	"repro/internal/detect"
	"repro/internal/ixp"
	"repro/internal/simtime"
	"repro/internal/stats"
)

// ixpRun is the shared §6.3 sweep: daily unique client IPs with
// detected IoT activity per class, plus the per-AS distribution of one
// reference day.
type ixpRun struct {
	fabric *ixp.Fabric

	dayAlexa, daySamsung, dayOther *stats.Series[simtime.Day]
	// perASDay1[class][member] = unique detected IPs on the first day.
	perASDay1 map[string]map[int32]int
}

func (l *Lab) ixpSweep() *ixpRun {
	if l.ixpRun != nil {
		return l.ixpRun
	}
	cls := l.classes()
	fabric := ixp.New(l.rng("ixp"), l.W.Catalog, l.Cfg.IXP, l.W.Window)
	r := &ixpRun{
		fabric:     fabric,
		dayAlexa:   stats.NewSeries[simtime.Day](),
		daySamsung: stats.NewSeries[simtime.Day](),
		dayOther:   stats.NewSeries[simtime.Day](),
		perASDay1:  map[string]map[int32]int{"alexa": {}, "samsung": {}, "other": {}},
	}
	otherSet := map[int]bool{}
	for _, ri := range cls.other {
		otherSet[ri] = true
	}

	// The daily bin runs on the sharded pipeline (see wildRun).
	dayEng := l.newPipeline()
	defer dayEng.Close()
	dayProd := dayEng.NewProducer()
	// The IXP keys detection state by client IP.
	subOf := func(ip [4]byte) detect.SubID {
		return detect.SubID(uint64(ip[0])<<24 | uint64(ip[1])<<16 | uint64(ip[2])<<8 | uint64(ip[3]))
	}
	subMember := map[detect.SubID]int32{}
	firstDay := l.W.Window.Start.Day()

	flushDay := func(day simtime.Day) {
		alexa, samsung, other := 0, 0, 0
		dayEng.EachDetected(func(sub detect.SubID, ri int, _ simtime.Hour) {
			var class string
			switch {
			case ri == cls.alexa:
				class = "alexa"
				alexa++
			case ri == cls.samsung:
				class = "samsung"
				samsung++
			case otherSet[ri]:
				class = "other"
				other++
			default:
				return
			}
			if day == firstDay {
				r.perASDay1[class][subMember[sub]]++
			}
		})
		r.dayAlexa.Set(day, float64(alexa))
		r.daySamsung.Set(day, float64(samsung))
		r.dayOther.Set(day, float64(other))
		dayEng.Reset()
	}

	w := l.W.Window
	curDay := w.Start.Day()
	w.Each(func(h simtime.Hour) {
		if h.Day() != curDay {
			flushDay(curDay)
			curDay = h.Day()
		}
		fabric.SimulateHour(h, l.W.ResolverOn(h.Day()), func(o ixp.Observation) {
			sub := subOf(o.Client.As4())
			subMember[sub] = o.Member
			dayProd.Observe(sub, o.Hour, o.IP, o.Port, o.Pkts)
		})
	})
	flushDay(curDay)

	l.ixpRun = r
	return r
}

// Fig15 reproduces Fig 15: unique client IPs with detected IoT
// activity per day at the IXP, per class.
func (l *Lab) Fig15() *Table {
	r := l.ixpSweep()
	scale := float64(l.Cfg.IXP.Scale)
	t := &Table{
		ID:      "F15",
		Title:   "Fig 15: IXP unique IPs with IoT activity per day",
		Columns: []string{"day", "alexa", "samsung", "other32"},
	}
	for _, d := range r.dayAlexa.Bins() {
		t.addRow(d.String(),
			fmt.Sprintf("%.0f", r.dayAlexa.Get(d)*scale),
			fmt.Sprintf("%.0f", r.daySamsung.Get(d)*scale),
			fmt.Sprintf("%.0f", r.dayOther.Get(d)*scale))
	}
	t.stat("alexa_daily_mean", r.dayAlexa.Mean()*scale)
	t.stat("samsung_daily_mean", r.daySamsung.Mean()*scale)
	t.stat("other_daily_mean", r.dayOther.Mean()*scale)
	t.stat("alexa_over_samsung", safeDiv(r.dayAlexa.Mean(), r.daySamsung.Mean()))
	t.note("paper: ≈200k Alexa, ≈90k Samsung, >100k other IoT IPs per day despite 10× sparser sampling")
	return t
}

// Fig16 reproduces Fig 16: the ECDF of the per-AS share of detected
// unique IPs on the first study day — heavily skewed toward a few
// eyeball members.
func (l *Lab) Fig16() *Table {
	r := l.ixpSweep()
	t := &Table{
		ID:      "F16",
		Title:   "Fig 16: per-AS share of detected IoT IPs (first day)",
		Columns: []string{"class", "quantile", "per-AS share"},
	}
	for _, class := range []string{"alexa", "samsung", "other"} {
		per := r.perASDay1[class]
		total := 0
		for _, n := range per {
			total += n
		}
		if total == 0 {
			continue
		}
		var e stats.ECDF
		topShare := 0.0
		for _, n := range per {
			share := float64(n) / float64(total)
			e.Add(share)
			if share > topShare {
				topShare = share
			}
		}
		for _, q := range []float64{0.25, 0.50, 0.75, 0.90, 0.99} {
			t.addRow(class, fmt.Sprintf("%.2f", q), fmt.Sprintf("%.4f", e.Quantile(q)))
		}
		t.stat(class+"_top_as_share", topShare)
		t.stat(class+"_ases_with_activity", float64(len(per)))

		// Eyeball concentration: share of detections within eyeballs.
		eyeball := 0
		for mi, n := range per {
			if r.fabric.Members[mi].Eyeball {
				eyeball += n
			}
		}
		t.stat(class+"_eyeball_share", float64(eyeball)/float64(total))
	}
	t.note("a small number of eyeball ASes carry most IoT activity, with a long non-eyeball tail (§6.3)")
	return t
}
