package experiments

import (
	"fmt"
	"net/netip"
	"runtime"

	"repro/internal/detect"
	"repro/internal/isp"
	"repro/internal/simtime"
	"repro/internal/stats"
)

// wildRun is the shared §6.2 sweep: one pass over the wild window
// feeding two sharded pipelines (hourly and daily bins; cumulative
// series derive from the daily detections) and collecting the series
// Figs 11–14 and 18 read.
type wildRun struct {
	pop *isp.Population

	// hourly counts per class.
	hourAlexa, hourSamsung, hourOther, hourAny *stats.Series[simtime.Hour]
	// hourly actively-used Alexa lines (§7.1, Fig 18).
	hourAlexaActive *stats.Series[simtime.Hour]

	// daily counts per class and drill-down rules.
	dayAlexa, dayAmazon, dayFireTV, daySamsung, daySamsungTV *stats.Series[simtime.Day]
	dayOther, dayAny                                         *stats.Series[simtime.Day]
	// dayRule[ri] is the daily-count series for rule ri (Fig 14).
	dayRule []*stats.Series[simtime.Day]

	// cumulative distinct subscriber identifiers and /24s per class.
	cumSubs, cum24 map[string]*stats.Series[simtime.Day]
}

func (l *Lab) wildRun() *wildRun {
	if l.wild != nil {
		return l.wild
	}
	cls := l.classes()
	pop := isp.NewPopulation(l.rng("wild"), l.W.Catalog, l.Cfg.ISP, l.W.Window)

	r := &wildRun{
		pop:             pop,
		hourAlexa:       stats.NewSeries[simtime.Hour](),
		hourSamsung:     stats.NewSeries[simtime.Hour](),
		hourOther:       stats.NewSeries[simtime.Hour](),
		hourAny:         stats.NewSeries[simtime.Hour](),
		hourAlexaActive: stats.NewSeries[simtime.Hour](),
		dayAlexa:        stats.NewSeries[simtime.Day](),
		dayAmazon:       stats.NewSeries[simtime.Day](),
		dayFireTV:       stats.NewSeries[simtime.Day](),
		daySamsung:      stats.NewSeries[simtime.Day](),
		daySamsungTV:    stats.NewSeries[simtime.Day](),
		dayOther:        stats.NewSeries[simtime.Day](),
		dayAny:          stats.NewSeries[simtime.Day](),
		cumSubs:         map[string]*stats.Series[simtime.Day]{},
		cum24:           map[string]*stats.Series[simtime.Day]{},
	}
	r.dayRule = make([]*stats.Series[simtime.Day], len(l.Dict.Rules))
	for i := range r.dayRule {
		r.dayRule[i] = stats.NewSeries[simtime.Day]()
	}
	classes := []string{"alexa", "amazon", "firetv", "samsung", "samsungtv"}
	classRule := []int{cls.alexa, cls.amazon, cls.fireTV, cls.samsung, cls.samsungTV}
	for _, c := range classes {
		r.cumSubs[c] = stats.NewSeries[simtime.Day]()
		r.cum24[c] = stats.NewSeries[simtime.Day]()
	}

	// Hourly and daily bins run on sharded pipelines: subscribers are
	// partitioned by identifier hash across worker-owned engines, so
	// the sweep parallelizes while every aggregate read below stays
	// shard-count invariant. (Cumulative series derive from the daily
	// detections; they need no engine of their own.)
	hourEng := l.newPipeline()
	defer hourEng.Close()
	hourProd := hourEng.NewProducer()
	dayEng := l.newPipeline()
	defer dayEng.Close()
	dayProd := dayEng.NewProducer()
	otherSet := map[int]bool{}
	for _, ri := range cls.other {
		otherSet[ri] = true
	}

	// Identifier → line mapping for /24 aggregation of cumulative
	// detections.
	idLine := map[detect.SubID]int32{}
	cumSeen := map[string]stats.Set[detect.SubID]{}
	cum24Seen := map[string]stats.Set[uint32]{}
	for _, c := range classes {
		cumSeen[c] = stats.Set[detect.SubID]{}
		cum24Seen[c] = stats.Set[uint32]{}
	}

	emit := func(line int32, sub detect.SubID, h simtime.Hour, ip netip.Addr, port uint16, pkts uint64) {
		idLine[sub] = line
		hourProd.Observe(sub, h, ip, port, pkts)
		dayProd.Observe(sub, h, ip, port, pkts)
	}

	flushHour := func(h simtime.Hour) {
		alexa, samsung, other, any, active := 0, 0, 0, 0, 0
		perSub := map[detect.SubID]uint8{}
		hourEng.EachDetected(func(sub detect.SubID, ri int, _ simtime.Hour) {
			switch {
			case ri == cls.alexa:
				perSub[sub] |= 1
				if hourEng.ActiveUse(sub, ri) {
					active++
				}
			case ri == cls.samsung:
				perSub[sub] |= 2
			case otherSet[ri]:
				perSub[sub] |= 4
			}
		})
		for _, bits := range perSub {
			if bits&1 != 0 {
				alexa++
			}
			if bits&2 != 0 {
				samsung++
			}
			if bits&4 != 0 {
				other++
			}
			any++
		}
		r.hourAlexa.Set(h, float64(alexa))
		r.hourSamsung.Set(h, float64(samsung))
		r.hourOther.Set(h, float64(other))
		r.hourAny.Set(h, float64(any))
		r.hourAlexaActive.Set(h, float64(active))
		hourEng.Reset()
	}

	flushDay := func(day simtime.Day) {
		perSub := map[detect.SubID]uint8{}
		dayEng.EachDetected(func(sub detect.SubID, ri int, _ simtime.Hour) {
			r.dayRule[ri].Add(day, 1)
			switch {
			case ri == cls.alexa:
				perSub[sub] |= 1
			case ri == cls.samsung:
				perSub[sub] |= 2
			case otherSet[ri]:
				perSub[sub] |= 4
			}
			for ci, cr := range classRule {
				if ri == cr {
					c := classes[ci]
					if !cumSeen[c].Has(sub) {
						cumSeen[c].Add(sub)
					}
					cum24Seen[c].Add(pop24(pop, idLine, sub))
				}
			}
		})
		alexa, samsung, other, any := 0, 0, 0, 0
		for _, bits := range perSub {
			if bits&1 != 0 {
				alexa++
			}
			if bits&2 != 0 {
				samsung++
			}
			if bits&4 != 0 {
				other++
			}
			any++
		}
		r.dayAlexa.Set(day, float64(alexa))
		r.daySamsung.Set(day, float64(samsung))
		r.dayOther.Set(day, float64(other))
		r.dayAny.Set(day, float64(any))
		r.dayAmazon.Set(day, float64(dayEng.CountDetected(cls.amazon)))
		r.dayFireTV.Set(day, float64(dayEng.CountDetected(cls.fireTV)))
		r.daySamsungTV.Set(day, float64(dayEng.CountDetected(cls.samsungTV)))
		for _, c := range classes {
			r.cumSubs[c].Set(day, float64(cumSeen[c].Len()))
			r.cum24[c].Set(day, float64(cum24Seen[c].Len()))
		}
		dayEng.Reset()
	}

	w := l.W.Window
	curDay := w.Start.Day()
	w.Each(func(h simtime.Hour) {
		if h.Day() != curDay {
			flushDay(curDay)
			curDay = h.Day()
		}
		// The parallel sweep's merged emission order is byte-identical
		// to the sequential sweep at any worker count, so the series
		// below don't depend on GOMAXPROCS.
		pop.SimulateHourParallel(h, l.W.ResolverOn(h.Day()), runtime.GOMAXPROCS(0), emit)
		flushHour(h)
	})
	flushDay(curDay)

	l.wild = r
	return r
}

func pop24(pop *isp.Population, idLine map[detect.SubID]int32, sub detect.SubID) uint32 {
	if line, ok := idLine[sub]; ok {
		return pop.Slash24(line)
	}
	return 0
}

// Fig11 reproduces Fig 11: subscriber lines with detected IoT activity,
// hourly (a) and daily (b), for Alexa Enabled, Samsung IoT, and the
// other 32 device types.
func (l *Lab) Fig11() *Table {
	r := l.wildRun()
	scale := float64(l.Cfg.ISP.Scale)
	t := &Table{
		ID:      "F11",
		Title:   "Fig 11: ISP subscriber lines with IoT activity (hourly and daily)",
		Columns: []string{"bin", "when", "alexa", "samsung", "other32", "any"},
	}
	for _, h := range r.hourAlexa.Bins() {
		if int(h-l.W.Window.Start)%6 != 0 {
			continue // thin the printed series; stats use all bins
		}
		t.addRow("hour", h.String(),
			fmt.Sprintf("%.0f", r.hourAlexa.Get(h)*scale),
			fmt.Sprintf("%.0f", r.hourSamsung.Get(h)*scale),
			fmt.Sprintf("%.0f", r.hourOther.Get(h)*scale),
			fmt.Sprintf("%.0f", r.hourAny.Get(h)*scale))
	}
	for _, d := range r.dayAlexa.Bins() {
		t.addRow("day", d.String(),
			fmt.Sprintf("%.0f", r.dayAlexa.Get(d)*scale),
			fmt.Sprintf("%.0f", r.daySamsung.Get(d)*scale),
			fmt.Sprintf("%.0f", r.dayOther.Get(d)*scale),
			fmt.Sprintf("%.0f", r.dayAny.Get(d)*scale))
	}

	lines := float64(l.Cfg.ISP.Lines)
	t.stat("alexa_daily_frac", r.dayAlexa.Mean()/lines)
	t.stat("any_daily_frac", r.dayAny.Mean()/lines)
	t.stat("alexa_day_hour_ratio", r.dayAlexa.Mean()/r.hourAlexa.Mean())
	t.stat("samsung_day_hour_ratio", r.daySamsung.Mean()/r.hourSamsung.Mean())
	t.stat("alexa_diurnal_amplitude", diurnalAmplitude(r.hourAlexa, l.W.Window))
	t.stat("samsung_diurnal_amplitude", diurnalAmplitude(r.hourSamsung, l.W.Window))
	t.stat("other_diurnal_amplitude", diurnalAmplitude(r.hourOther, l.W.Window))
	t.note("paper: ~20%% of lines show IoT activity; Alexa ~14%%; daily Alexa ≈2× hourly, Samsung ≈6×")
	return t
}

// diurnalAmplitude compares mean evening (18–22 local) to mean night
// (1–5 local) counts.
func diurnalAmplitude(s *stats.Series[simtime.Hour], w simtime.Window) float64 {
	evening, night := 0.0, 0.0
	ne, nn := 0, 0
	w.Each(func(h simtime.Hour) {
		local := h.LocalHour(simtime.ISPUTCOffset)
		switch {
		case local >= 18 && local <= 22:
			evening += s.Get(h)
			ne++
		case local >= 1 && local <= 5:
			night += s.Get(h)
			nn++
		}
	})
	if nn == 0 || night == 0 {
		return 0
	}
	return (evening / float64(ne)) / (night / float64(nn))
}

// Fig12 reproduces Fig 12: the drill-down within the Alexa and Samsung
// umbrellas per day.
func (l *Lab) Fig12() *Table {
	r := l.wildRun()
	scale := float64(l.Cfg.ISP.Scale)
	t := &Table{
		ID:      "F12",
		Title:   "Fig 12: drill-down for Amazon and Samsung devices per day",
		Columns: []string{"day", "alexa", "amazon", "firetv", "samsung", "samsungtv"},
	}
	for _, d := range r.dayAlexa.Bins() {
		t.addRow(d.String(),
			fmt.Sprintf("%.0f", r.dayAlexa.Get(d)*scale),
			fmt.Sprintf("%.0f", r.dayAmazon.Get(d)*scale),
			fmt.Sprintf("%.0f", r.dayFireTV.Get(d)*scale),
			fmt.Sprintf("%.0f", r.daySamsung.Get(d)*scale),
			fmt.Sprintf("%.0f", r.daySamsungTV.Get(d)*scale))
	}
	t.stat("amazon_over_alexa", safeDiv(r.dayAmazon.Mean(), r.dayAlexa.Mean()))
	t.stat("firetv_over_amazon", safeDiv(r.dayFireTV.Mean(), r.dayAmazon.Mean()))
	t.stat("samsungtv_over_samsung", safeDiv(r.daySamsungTV.Mean(), r.daySamsung.Mean()))
	t.note("specialized products account only for a fraction of each umbrella (§6.2)")
	return t
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Fig13 reproduces Fig 13: cumulative subscriber identifiers and /24s
// with detected activity across the two weeks.
func (l *Lab) Fig13() *Table {
	r := l.wildRun()
	scale := float64(l.Cfg.ISP.Scale)
	t := &Table{
		ID:      "F13",
		Title:   "Fig 13: cumulative subscribers (upper) and /24s (lower) across two weeks",
		Columns: []string{"aggregate", "day", "alexa", "amazon", "firetv", "samsung", "samsungtv"},
	}
	for _, d := range r.cumSubs["alexa"].Bins() {
		t.addRow("subscribers", d.String(),
			fmt.Sprintf("%.0f", r.cumSubs["alexa"].Get(d)*scale),
			fmt.Sprintf("%.0f", r.cumSubs["amazon"].Get(d)*scale),
			fmt.Sprintf("%.0f", r.cumSubs["firetv"].Get(d)*scale),
			fmt.Sprintf("%.0f", r.cumSubs["samsung"].Get(d)*scale),
			fmt.Sprintf("%.0f", r.cumSubs["samsungtv"].Get(d)*scale))
	}
	for _, d := range r.cum24["alexa"].Bins() {
		t.addRow("/24s", d.String(),
			fmt.Sprintf("%.0f", r.cum24["alexa"].Get(d)*scale),
			fmt.Sprintf("%.0f", r.cum24["amazon"].Get(d)*scale),
			fmt.Sprintf("%.0f", r.cum24["firetv"].Get(d)*scale),
			fmt.Sprintf("%.0f", r.cum24["samsung"].Get(d)*scale),
			fmt.Sprintf("%.0f", r.cum24["samsungtv"].Get(d)*scale))
	}
	// Growth of the last 4 days relative to the first 4: identifiers
	// keep growing (churn double-counting), /24s stabilize.
	t.stat("subs_tail_growth", tailGrowth(r.cumSubs["alexa"]))
	t.stat("slash24_tail_growth", tailGrowth(r.cum24["alexa"]))
	t.note("identifier churn inflates cumulative subscriber counts; /24 aggregation stabilizes (§6.2)")
	return t
}

// tailGrowth returns the relative growth over the final third of the
// series.
func tailGrowth(s *stats.Series[simtime.Day]) float64 {
	bins := s.Bins()
	if len(bins) < 3 {
		return 0
	}
	cut := bins[len(bins)-1-len(bins)/3]
	last := s.Get(bins[len(bins)-1])
	base := s.Get(cut)
	if base == 0 {
		return 0
	}
	return (last - base) / base
}

// tierNames maps catalog market tiers to Fig 14's popularity bands.
var tierNames = []string{"Top 10", "Top 100", "Top 200", "Top 500", "Top 2k", "10k", "No Market", "Other"}

// Fig14 reproduces Fig 14: daily detected lines for the 32 device
// types outside the Alexa/Samsung umbrellas, with market-popularity
// bands.
func (l *Lab) Fig14() *Table {
	r := l.wildRun()
	cls := l.classes()
	scale := float64(l.Cfg.ISP.Scale)
	t := &Table{
		ID:      "F14",
		Title:   "Fig 14: daily subscriber lines per device type (other 32)",
		Columns: []string{"rule", "market", "min/day", "mean/day", "max/day"},
	}
	for _, ri := range cls.other {
		rule := &l.Dict.Rules[ri]
		s := r.dayRule[ri]
		minV, maxV, sum := -1.0, 0.0, 0.0
		for _, d := range s.Bins() {
			v := s.Get(d)
			if minV < 0 || v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
			sum += v
		}
		n := float64(max(s.Len(), 1))
		if minV < 0 {
			minV = 0
		}
		tier := 7
		if p, ok := l.W.Catalog.Product(rule.Products[0]); ok {
			tier = p.MarketTier
		}
		t.addRow(rule.Label(), tierNames[tier],
			fmt.Sprintf("%.0f", minV*scale),
			fmt.Sprintf("%.0f", sum/n*scale),
			fmt.Sprintf("%.0f", maxV*scale))
		t.stat("mean_"+rule.Name, sum/n*scale)
	}
	t.note("counts are stable day over day; popular devices dominate but unpopular ones remain visible (§6.2)")
	return t
}

// Fig18 reproduces Fig 18: subscriber lines with *actively used* Alexa
// devices per hour (sampled-packet threshold 10), against hourly and
// daily detection counts.
func (l *Lab) Fig18() *Table {
	r := l.wildRun()
	scale := float64(l.Cfg.ISP.Scale)
	t := &Table{
		ID:      "F18",
		Title:   "Fig 18: subscribers with active Alexa use per hour",
		Columns: []string{"when", "hourly detected", "hourly active", "daily detected"},
	}
	for _, h := range r.hourAlexaActive.Bins() {
		if int(h-l.W.Window.Start)%6 != 0 {
			continue
		}
		t.addRow(h.String(),
			fmt.Sprintf("%.0f", r.hourAlexa.Get(h)*scale),
			fmt.Sprintf("%.0f", r.hourAlexaActive.Get(h)*scale),
			fmt.Sprintf("%.0f", r.dayAlexa.Get(h.Day())*scale))
	}
	t.stat("active_peak", r.hourAlexaActive.Max()*scale)
	t.stat("active_mean", r.hourAlexaActive.Mean()*scale)
	t.stat("active_diurnal_amplitude", diurnalAmplitude(r.hourAlexaActive, l.W.Window))
	t.note("paper: ~27k actively-used Alexa lines at daily peaks, following human diurnal activity (§7.1)")
	return t
}
