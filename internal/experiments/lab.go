// Package experiments contains one driver per table and figure of the
// paper's evaluation, each regenerating the corresponding rows or
// series from the simulated world.
//
// All drivers hang off a Lab, which assembles the world once (catalog,
// hosting, passive DNS, certificate scans), runs the §4 pipeline, and
// lazily executes the shared heavyweight simulations (ground-truth
// capture, wild-ISP sweep, wild-IXP sweep) that several figures share.
package experiments

import (
	"fmt"
	"sort"

	"repro/internal/classify"
	"repro/internal/dedicated"
	"repro/internal/detect"
	"repro/internal/isp"
	"repro/internal/ixp"
	"repro/internal/pipeline"
	"repro/internal/rules"
	"repro/internal/simrand"
	"repro/internal/world"
)

// Table is the uniform result shape every driver returns: printable
// rows plus machine-readable key statistics.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
	// Stats holds the metrics EXPERIMENTS.md and the tests assert on.
	Stats map[string]float64
}

func (t *Table) addRow(cells ...string) { t.Rows = append(t.Rows, cells) }

func (t *Table) note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

func (t *Table) stat(key string, v float64) {
	if t.Stats == nil {
		t.Stats = map[string]float64{}
	}
	t.Stats[key] = v
}

// SortedStats returns stat keys in order (deterministic rendering).
func (t *Table) SortedStats() []string {
	keys := make([]string, 0, len(t.Stats))
	for k := range t.Stats {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Config sizes the Lab's heavyweight simulations.
type Config struct {
	Seed uint64
	// ISP is the wild-ISP population sizing.
	ISP isp.Config
	// IXP is the wild-IXP fabric sizing.
	IXP ixp.Config
	// Threshold is the detection threshold D for wild runs (the
	// paper's conservative 0.4).
	Threshold float64
	// Shards is the number of parallel detection-engine shards the
	// wild sweeps run with. Results are shard-count invariant; more
	// shards only make the sweeps faster. Values < 1 mean 1.
	Shards int
}

// DefaultConfig returns the test-scale configuration (1:500 of the
// paper's 15 M lines). Examples and the CLI raise Lines for closer
// absolute numbers.
func DefaultConfig(seed uint64) Config {
	ispCfg := isp.DefaultConfig()
	ispCfg.Lines = 30_000
	ispCfg.Scale = 500
	ixpCfg := ixp.DefaultConfig()
	ixpCfg.TotalClients = 24_000
	ixpCfg.Scale = 100
	ixpCfg.Members = 400
	return Config{Seed: seed, ISP: ispCfg, IXP: ixpCfg, Threshold: 0.4, Shards: 1}
}

// Lab is the shared experiment environment.
type Lab struct {
	Cfg  Config
	W    *world.World
	KB   *classify.KnowledgeBase
	Dom  *classify.Census
	Ded  *dedicated.Census
	Dict *rules.Dictionary

	gtActive *gtCapture
	gtIdle   *gtCapture
	wild     *wildRun
	ixpRun   *ixpRun
}

// NewLab builds the world and runs the §4 pipeline.
func NewLab(cfg Config) (*Lab, error) {
	w, err := world.Build(cfg.Seed)
	if err != nil {
		return nil, err
	}
	kb := classify.DefaultKB()
	dom := kb.ClassifyAll(w.Catalog.DomainNames())
	days := w.Window.Days()
	pipe := dedicated.New(w.PDNS, w.Scans, days[0], days[len(days)-1])
	ded := pipe.ClassifyAll(dom.IoTSpecific())
	dict, err := rules.Compile(w.Catalog, ded, w.PDNS, days)
	if err != nil {
		return nil, err
	}
	if err := dict.Verify(); err != nil {
		return nil, err
	}
	return &Lab{Cfg: cfg, W: w, KB: kb, Dom: dom, Ded: ded, Dict: dict}, nil
}

// MustNewLab is NewLab for tests and examples.
func MustNewLab(cfg Config) *Lab {
	l, err := NewLab(cfg)
	if err != nil {
		panic(err)
	}
	return l
}

// engine returns a fresh detection engine at the lab threshold.
func (l *Lab) engine() *detect.Engine {
	return detect.New(l.Dict, l.Cfg.Threshold)
}

// newPipeline returns a sharded detection pipeline at the lab threshold
// and configured shard count (the §6 wild sweeps' hot path).
func (l *Lab) newPipeline() *pipeline.Pipeline {
	return pipeline.New(l.Dict, l.Cfg.Threshold, l.Cfg.Shards)
}

// rng forks a deterministic stream for a named sub-simulation.
func (l *Lab) rng(label string) *simrand.RNG {
	return simrand.New(l.Cfg.Seed).Fork(label)
}

// classRules partitions the dictionary into the reporting classes used
// throughout §6: the Alexa family, the Samsung family, and the "other
// 32 IoT device types".
type classRules struct {
	alexa, amazon, fireTV, samsung, samsungTV int
	other                                     []int
}

func (l *Lab) classes() classRules {
	c := classRules{
		alexa:     l.Dict.RuleIndex("Alexa Enabled"),
		amazon:    l.Dict.RuleIndex("Amazon Product"),
		fireTV:    l.Dict.RuleIndex("Fire TV"),
		samsung:   l.Dict.RuleIndex("Samsung IoT"),
		samsungTV: l.Dict.RuleIndex("Samsung TV"),
	}
	family := map[int]bool{
		c.alexa: true, c.amazon: true, c.fireTV: true,
		c.samsung: true, c.samsungTV: true,
	}
	for i := range l.Dict.Rules {
		if !family[i] {
			c.other = append(c.other, i)
		}
	}
	return c
}
