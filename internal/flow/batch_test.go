package flow

import (
	"net/netip"
	"testing"
)

func TestBatchAppendReset(t *testing.T) {
	b := NewBatch(2)
	if b.Len() != 0 {
		t.Fatalf("new batch len = %d, want 0", b.Len())
	}
	r := b.Append()
	r.Key.Src = netip.MustParseAddr("10.0.0.1")
	r.Packets = 7
	r2 := b.Append()
	r2.Packets = 9
	if b.Len() != 2 {
		t.Fatalf("len = %d, want 2", b.Len())
	}
	recs := b.Records()
	if recs[0].Packets != 7 || recs[1].Packets != 9 {
		t.Fatalf("records = %+v", recs)
	}

	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("len after reset = %d, want 0", b.Len())
	}
	// Reused slots must come back zeroed, not carrying stale fields.
	r3 := b.Append()
	if r3.Packets != 0 || r3.Key.Src.IsValid() {
		t.Fatalf("reused slot not zeroed: %+v", *r3)
	}
}

func TestBatchTruncate(t *testing.T) {
	b := NewBatch(0)
	for i := 0; i < 5; i++ {
		b.Append().Packets = uint64(i + 1)
	}
	b.Truncate(2)
	if b.Len() != 2 {
		t.Fatalf("len after truncate = %d, want 2", b.Len())
	}
	if got := b.Records()[1].Packets; got != 2 {
		t.Fatalf("record 1 packets = %d, want 2", got)
	}
	b.Truncate(-1) // out of range: no-op
	b.Truncate(10)
	if b.Len() != 2 {
		t.Fatalf("len after bad truncates = %d, want 2", b.Len())
	}
}

func TestBatchResetKeepsCapacity(t *testing.T) {
	b := NewBatch(0)
	for i := 0; i < 64; i++ {
		b.Append()
	}
	b.Reset()
	allocs := testing.AllocsPerRun(100, func() {
		b.Reset()
		for i := 0; i < 64; i++ {
			b.Append()
		}
	})
	if allocs != 0 {
		t.Fatalf("warm Append allocates %v allocs/run, want 0", allocs)
	}
}
