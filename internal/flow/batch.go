package flow

// Batch is a reusable arena of Records: the unit of work on the hot
// path from socket to shard. Decoders append into a Batch owned by
// the caller, the caller hands the filled batch to the observe layer,
// then Resets it for the next datagram. Reset keeps the backing array
// (reset-don't-free), so a warmed Batch sustains zero steady-state
// allocations per message.
//
// A Batch is not safe for concurrent use; each collector lane owns
// its own.
type Batch struct {
	recs []Record
}

// NewBatch returns a Batch with capacity for n records preallocated.
func NewBatch(n int) *Batch {
	return &Batch{recs: make([]Record, 0, n)}
}

// Reset empties the batch, keeping the backing storage for reuse.
//
// haystack:hotpath
func (b *Batch) Reset() { b.recs = b.recs[:0] }

// Len returns the number of records appended since the last Reset.
//
// haystack:hotpath
func (b *Batch) Len() int { return len(b.recs) }

// Records returns the appended records. The slice aliases the arena:
// it is valid only until the next Reset and must not be retained.
//
// haystack:hotpath
func (b *Batch) Records() []Record { return b.recs }

// Append returns a pointer to the next record slot, zeroed and ready
// to fill. The pointer aliases the arena and is valid only until the
// next Append or Reset (Append may grow the backing array).
//
// haystack:hotpath
func (b *Batch) Append() *Record {
	// append writes a zero Record into the slot and extends in place
	// whenever spare capacity exists — the steady state after warmup.
	b.recs = append(b.recs, Record{})
	return &b.recs[len(b.recs)-1]
}

// Truncate drops records appended at index n and beyond, keeping the
// first n. It is used by decoders to roll back a partially decoded
// set on error.
//
// haystack:hotpath
func (b *Batch) Truncate(n int) {
	if n < 0 || n > len(b.recs) {
		return
	}
	b.recs = b.recs[:n]
}
