package flow

import (
	"net/netip"
	"testing"
	"testing/quick"

	"repro/internal/simtime"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

func TestKeyReverse(t *testing.T) {
	k := Key{Src: addr("10.0.0.1"), Dst: addr("192.0.2.9"), SrcPort: 1234, DstPort: 443, Proto: ProtoTCP}
	r := k.Reverse()
	if r.Src != k.Dst || r.Dst != k.Src || r.SrcPort != k.DstPort || r.DstPort != k.SrcPort {
		t.Fatalf("reverse = %v", r)
	}
	if r.Reverse() != k {
		t.Fatal("double reverse is not identity")
	}
}

func TestKeyReverseInvolution(t *testing.T) {
	f := func(a, b [4]byte, sp, dp uint16, proto uint8) bool {
		k := Key{
			Src: netip.AddrFrom4(a), Dst: netip.AddrFrom4(b),
			SrcPort: sp, DstPort: dp, Proto: Proto(proto),
		}
		return k.Reverse().Reverse() == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableAggregation(t *testing.T) {
	tbl := NewTable(simtime.Hour(1000))
	k := Key{Src: addr("10.0.0.1"), Dst: addr("192.0.2.9"), SrcPort: 1234, DstPort: 443, Proto: ProtoTCP}
	tbl.AddPacket(k, 100, 0x02)
	tbl.AddPacket(k, 200, 0x10)
	tbl.AddPacket(k.Reverse(), 50, 0x10)
	if tbl.Len() != 2 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	recs := tbl.Records()
	var fwd *Record
	for i := range recs {
		if recs[i].Key == k {
			fwd = &recs[i]
		}
	}
	if fwd == nil {
		t.Fatal("forward flow missing")
	}
	if fwd.Packets != 2 || fwd.Bytes != 300 {
		t.Fatalf("fwd counters %d/%d", fwd.Packets, fwd.Bytes)
	}
	if fwd.TCPFlags != 0x12 {
		t.Fatalf("flags %#x", fwd.TCPFlags)
	}
	if fwd.Hour != 1000 {
		t.Fatalf("hour %d", fwd.Hour)
	}
}

func TestAddCountEquivalentToPackets(t *testing.T) {
	k := Key{Src: addr("10.0.0.1"), Dst: addr("192.0.2.9"), SrcPort: 1, DstPort: 2, Proto: ProtoUDP}
	a := NewTable(0)
	for i := 0; i < 7; i++ {
		a.AddPacket(k, 90, 0)
	}
	b := NewTable(0)
	b.AddCount(k, 7, 630, 0)
	ra, rb := a.Records()[0], b.Records()[0]
	if ra.Packets != rb.Packets || ra.Bytes != rb.Bytes {
		t.Fatalf("AddCount mismatch: %+v vs %+v", ra, rb)
	}
}

func TestAddCountZeroIsNoop(t *testing.T) {
	tbl := NewTable(0)
	k := Key{Src: addr("10.0.0.1"), Dst: addr("192.0.2.9")}
	tbl.AddCount(k, 0, 0, 0)
	if tbl.Len() != 0 {
		t.Fatal("zero-packet AddCount created a flow")
	}
}

func TestEachVisitsAll(t *testing.T) {
	tbl := NewTable(0)
	for i := 0; i < 10; i++ {
		k := Key{Src: addr("10.0.0.1"), Dst: addr("192.0.2.9"), SrcPort: uint16(i), DstPort: 443, Proto: ProtoTCP}
		tbl.AddPacket(k, 60, 0)
	}
	n := 0
	tbl.Each(func(r *Record) { n++ })
	if n != 10 {
		t.Fatalf("Each visited %d", n)
	}
}

func TestRecordValidate(t *testing.T) {
	good := Record{
		Key:     Key{Src: addr("10.0.0.1"), Dst: addr("192.0.2.9"), Proto: ProtoTCP},
		Packets: 2, Bytes: 120,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	bad := good
	bad.Packets = 0
	if bad.Validate() == nil {
		t.Fatal("zero-packet record accepted")
	}
	bad = good
	bad.Bytes = 10
	if bad.Validate() == nil {
		t.Fatal("impossible byte count accepted")
	}
	bad = good
	bad.Key.Src = netip.Addr{}
	if bad.Validate() == nil {
		t.Fatal("invalid address accepted")
	}
}

func TestProtoString(t *testing.T) {
	if ProtoTCP.String() != "TCP" || ProtoUDP.String() != "UDP" || ProtoICMP.String() != "ICMP" {
		t.Fatal("proto names wrong")
	}
	if Proto(200).String() != "Proto(200)" {
		t.Fatalf("unknown proto = %s", Proto(200))
	}
}

func BenchmarkAddPacket(b *testing.B) {
	tbl := NewTable(0)
	keys := make([]Key, 1024)
	for i := range keys {
		keys[i] = Key{
			Src: netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)}), Dst: addr("192.0.2.9"),
			SrcPort: uint16(i), DstPort: 443, Proto: ProtoTCP,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.AddPacket(keys[i&1023], 120, 0x10)
	}
}
