// Package flow defines the flow abstraction shared by every vantage
// point: the 5-tuple key, the per-flow record carried by NetFlow/IPFIX,
// and an aggregation table that turns packets into records.
//
// Records are the only thing an ISP or IXP sees in this system — no
// payload ever crosses a vantage point, mirroring the paper's
// header-only NetFlow/IPFIX setting.
package flow

import (
	"fmt"
	"net/netip"

	"repro/internal/simtime"
)

// Proto is an IP protocol number.
type Proto uint8

// Protocol numbers used in the simulation.
const (
	ProtoICMP Proto = 1
	ProtoTCP  Proto = 6
	ProtoUDP  Proto = 17
)

// String returns the protocol mnemonic.
func (p Proto) String() string {
	switch p {
	case ProtoICMP:
		return "ICMP"
	case ProtoTCP:
		return "TCP"
	case ProtoUDP:
		return "UDP"
	}
	return fmt.Sprintf("Proto(%d)", uint8(p))
}

// Key is a unidirectional 5-tuple flow key.
type Key struct {
	Src, Dst         netip.Addr
	SrcPort, DstPort uint16
	Proto            Proto
}

// Reverse returns the key of the opposite direction.
func (k Key) Reverse() Key {
	return Key{
		Src: k.Dst, Dst: k.Src,
		SrcPort: k.DstPort, DstPort: k.SrcPort,
		Proto: k.Proto,
	}
}

// String renders "src:sport -> dst:dport/PROTO".
func (k Key) String() string {
	return fmt.Sprintf("%s:%d -> %s:%d/%s", k.Src, k.SrcPort, k.Dst, k.DstPort, k.Proto)
}

// Record is one exported flow record: a key plus its counters within a
// collection interval.
type Record struct {
	Key      Key
	Packets  uint64
	Bytes    uint64
	TCPFlags uint8 // OR of all flags seen (0 for non-TCP)
	Hour     simtime.Hour
}

// Validate reports structural problems with a record.
func (r *Record) Validate() error {
	if !r.Key.Src.IsValid() || !r.Key.Dst.IsValid() {
		return fmt.Errorf("flow: record with invalid address: %v", r.Key)
	}
	if r.Packets == 0 {
		return fmt.Errorf("flow: record with zero packets: %v", r.Key)
	}
	if r.Bytes < r.Packets*20 {
		return fmt.Errorf("flow: record with %d bytes for %d packets (below minimum header size)", r.Bytes, r.Packets)
	}
	return nil
}

// Table aggregates packets into per-key records for one hour bin.
// The zero value is not usable; use NewTable.
type Table struct {
	hour simtime.Hour
	m    map[Key]*Record
}

// NewTable returns an empty aggregation table for the given hour.
func NewTable(hour simtime.Hour) *Table {
	return &Table{hour: hour, m: make(map[Key]*Record)}
}

// Hour returns the table's hour bin.
func (t *Table) Hour() simtime.Hour { return t.hour }

// AddPacket accumulates one packet into its flow.
func (t *Table) AddPacket(k Key, bytes uint64, tcpFlags uint8) {
	r := t.m[k]
	if r == nil {
		r = &Record{Key: k, Hour: t.hour}
		t.m[k] = r
	}
	r.Packets++
	r.Bytes += bytes
	r.TCPFlags |= tcpFlags
}

// AddCount accumulates an aggregate count (packets, bytes) into a flow.
// This is the fast path used by the traffic simulator, equivalent to
// calling AddPacket packets times with bytes/packets each.
func (t *Table) AddCount(k Key, packets, bytes uint64, tcpFlags uint8) {
	if packets == 0 {
		return
	}
	r := t.m[k]
	if r == nil {
		r = &Record{Key: k, Hour: t.hour}
		t.m[k] = r
	}
	r.Packets += packets
	r.Bytes += bytes
	r.TCPFlags |= tcpFlags
}

// Len returns the number of active flows.
func (t *Table) Len() int { return len(t.m) }

// Records drains the table into a slice (order unspecified).
func (t *Table) Records() []Record {
	out := make([]Record, 0, len(t.m))
	for _, r := range t.m {
		out = append(out, *r)
	}
	return out
}

// Each visits every record without copying the map out.
func (t *Table) Each(fn func(*Record)) {
	for _, r := range t.m {
		fn(r)
	}
}
