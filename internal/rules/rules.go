// Package rules compiles the catalog's detection-rule specs against the
// dedicated-infrastructure census into an executable IoT dictionary
// (§4.3): for every rule, the monitored primary domains that survived
// the §4.2 pipeline, and for every day of the study window, the
// IP/port → (rule, domain) hitlist that flow records are matched
// against.
package rules

import (
	"fmt"
	"math"
	"net/netip"

	"repro/internal/catalog"
	"repro/internal/dedicated"
	"repro/internal/pdns"
	"repro/internal/simtime"
)

// Rule is one compiled detection rule.
type Rule struct {
	Name          string
	Level         catalog.Level
	Parent        int // index into Dictionary.Rules, -1 for roots
	RequireParent bool
	MultiVendor   bool
	// MinOverride fixes the evidence requirement independent of D
	// (0 = use the threshold formula).
	MinOverride int
	// Domains are the usable monitored domains (dedicated verdicts
	// only), in spec order.
	Domains  []string
	Products []string
}

// Label renders the Fig 10 row label.
func (r *Rule) Label() string { return fmt.Sprintf("%s(%s)", r.Name, r.Level) }

// MinDomains returns the §4.3.2 evidence requirement for detection
// threshold D: max(1, ⌊D·N⌋) of the N monitored domains, unless the
// rule carries a fixed override (side information about which domain
// is critical, §4.3.1).
func (r *Rule) MinDomains(d float64) int {
	if r.MinOverride > 0 {
		return r.MinOverride
	}
	k := int(math.Floor(d * float64(len(r.Domains))))
	if k < 1 {
		k = 1
	}
	return k
}

// Target identifies one (rule, domain) pair a service endpoint maps to.
type Target struct {
	Rule int // index into Dictionary.Rules
	Bit  int // index into that rule's Domains
}

type ipPort struct {
	ip   netip.Addr
	port uint16
}

// Dictionary is the compiled daily hitlist plus rules (the paper's
// "IoT dictionary", §4).
type Dictionary struct {
	Rules []Rule
	// Dropped lists rule specs that lost every monitored domain in the
	// pipeline and cannot be used.
	Dropped []string

	days   map[simtime.Day]map[ipPort][]Target
	byName map[string]int
	ports  map[string]uint16
	minDay simtime.Day
	maxDay simtime.Day
}

// Compile builds the dictionary for the given days. The census decides
// which monitored domains are usable; passive DNS provides the per-day
// IP expansion, with the census' scan-derived IPs as fallback for
// censys-recovered domains.
func Compile(cat *catalog.Catalog, census *dedicated.Census, db *pdns.DB, days []simtime.Day) (*Dictionary, error) {
	if len(days) == 0 {
		return nil, fmt.Errorf("rules: no days to compile")
	}
	dict := &Dictionary{
		days:   make(map[simtime.Day]map[ipPort][]Target, len(days)),
		byName: map[string]int{},
		ports:  map[string]uint16{},
		minDay: days[0],
		maxDay: days[len(days)-1],
	}

	for _, spec := range cat.Rules {
		var usable []string
		for _, d := range spec.Domains {
			if census.Usable(d) {
				usable = append(usable, d)
			}
		}
		if len(usable) == 0 {
			dict.Dropped = append(dict.Dropped, spec.Name)
			continue
		}
		dict.byName[spec.Name] = len(dict.Rules)
		dict.Rules = append(dict.Rules, Rule{
			Name: spec.Name, Level: spec.Level, Parent: -1,
			RequireParent: spec.RequireParent, MultiVendor: spec.MultiVendor,
			MinOverride: spec.MinOverride,
			Domains:     usable, Products: spec.Products,
		})
		for _, d := range usable {
			if dom, ok := cat.Domains[d]; ok {
				dict.ports[d] = dom.Port
			} else {
				dict.ports[d] = 443
			}
		}
	}
	// Resolve parents after all rules exist (dropped parents detach).
	for i := range dict.Rules {
		spec, _ := cat.Rule(dict.Rules[i].Name)
		if spec != nil && spec.Parent != "" {
			if pi, ok := dict.byName[spec.Parent]; ok {
				dict.Rules[i].Parent = pi
			}
		}
	}

	for _, day := range days {
		m := make(map[ipPort][]Target)
		for ri := range dict.Rules {
			r := &dict.Rules[ri]
			for bit, d := range r.Domains {
				ips := db.ResolveA(d, day, day)
				if len(ips) == 0 {
					// Censys-recovered domain: static scan-derived set.
					ips = census.Results[d].IPs
				}
				port := dict.ports[d]
				for _, ip := range ips {
					k := ipPort{ip: ip, port: port}
					m[k] = append(m[k], Target{Rule: ri, Bit: bit})
				}
			}
		}
		dict.days[day] = m
	}
	return dict, nil
}

// Lookup returns the (rule, domain) targets for a service endpoint on a
// day. Days outside the compiled range clamp to its edges.
func (d *Dictionary) Lookup(day simtime.Day, ip netip.Addr, port uint16) []Target {
	if day < d.minDay {
		day = d.minDay
	}
	if day > d.maxDay {
		day = d.maxDay
	}
	return d.days[day][ipPort{ip: ip, port: port}]
}

// RuleIndex returns the index of a rule by name (-1 if dropped or
// unknown).
func (d *Dictionary) RuleIndex(name string) int {
	if i, ok := d.byName[name]; ok {
		return i
	}
	return -1
}

// HitlistSize returns the number of (IP, port) keys on a day.
func (d *Dictionary) HitlistSize(day simtime.Day) int {
	if day < d.minDay {
		day = d.minDay
	}
	if day > d.maxDay {
		day = d.maxDay
	}
	return len(d.days[day])
}

// Levels returns how many rules exist per detection level.
func (d *Dictionary) Levels() map[catalog.Level]int {
	out := map[catalog.Level]int{}
	for i := range d.Rules {
		out[d.Rules[i].Level]++
	}
	return out
}

// Verify performs internal consistency checks: every rule references a
// resolvable parent, domain lists are unique, and every (rule, bit)
// pair appearing in the hitlist is valid. It exists so callers can
// assert dictionary health after compilation.
func (d *Dictionary) Verify() error {
	for i := range d.Rules {
		r := &d.Rules[i]
		if r.Parent < -1 || r.Parent >= len(d.Rules) {
			return fmt.Errorf("rules: %s has out-of-range parent %d", r.Name, r.Parent)
		}
		seen := map[string]bool{}
		for _, dom := range r.Domains {
			if seen[dom] {
				return fmt.Errorf("rules: %s lists domain %s twice", r.Name, dom)
			}
			seen[dom] = true
		}
		if len(r.Domains) > 128 {
			return fmt.Errorf("rules: %s monitors %d domains (engine bitset limit is 128)", r.Name, len(r.Domains))
		}
	}
	for day, m := range d.days {
		for k, ts := range m {
			for _, t := range ts {
				if t.Rule < 0 || t.Rule >= len(d.Rules) {
					return fmt.Errorf("rules: day %v key %v has bad rule %d", day, k, t.Rule)
				}
				if t.Bit < 0 || t.Bit >= len(d.Rules[t.Rule].Domains) {
					return fmt.Errorf("rules: day %v key %v has bad bit %d", day, k, t.Bit)
				}
			}
		}
	}
	return nil
}

// DomainIPs exposes a rule domain's hitlist addresses on one day
// (diagnostics and tests).
func (d *Dictionary) DomainIPs(day simtime.Day, ruleName, domain string) []netip.Addr {
	ri := d.RuleIndex(ruleName)
	if ri < 0 {
		return nil
	}
	bit := -1
	for i, dom := range d.Rules[ri].Domains {
		if dom == domain {
			bit = i
			break
		}
	}
	if bit < 0 {
		return nil
	}
	var out []netip.Addr
	for k, ts := range d.days[day] {
		for _, t := range ts {
			if t.Rule == ri && t.Bit == bit {
				out = append(out, k.ip)
			}
		}
	}
	return out
}
