package rules

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/classify"
	"repro/internal/dedicated"
	"repro/internal/world"
)

func compileDict(t testing.TB, seed uint64) (*Dictionary, *world.World) {
	if t != nil {
		t.Helper()
	}
	w := world.MustBuild(seed)
	days := w.Window.Days()
	pipe := dedicated.New(w.PDNS, w.Scans, days[0], days[len(days)-1])
	iot := classify.DefaultKB().ClassifyAll(w.Catalog.DomainNames()).IoTSpecific()
	census := pipe.ClassifyAll(iot)
	dict, err := Compile(w.Catalog, census, w.PDNS, days)
	if err != nil {
		if t != nil {
			t.Fatal(err)
		}
		panic(err)
	}
	return dict, w
}

func TestCompileKeepsAll37Rules(t *testing.T) {
	dict, _ := compileDict(t, 1)
	if len(dict.Rules) != 37 {
		t.Fatalf("compiled %d rules, want 37 (dropped: %v)", len(dict.Rules), dict.Dropped)
	}
	if len(dict.Dropped) != 0 {
		t.Fatalf("dropped rules: %v", dict.Dropped)
	}
	levels := dict.Levels()
	if levels[catalog.LevelPlatform] != 6 || levels[catalog.LevelManufacturer] != 20 || levels[catalog.LevelProduct] != 11 {
		t.Fatalf("levels = %v", levels)
	}
}

func TestDictionaryVerifies(t *testing.T) {
	dict, _ := compileDict(t, 1)
	if err := dict.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejectsNegativeParent(t *testing.T) {
	dict, _ := compileDict(t, 1)
	old := dict.Rules[0].Parent
	dict.Rules[0].Parent = -2
	if err := dict.Verify(); err == nil {
		t.Fatal("Verify accepted parent index -2")
	}
	dict.Rules[0].Parent = old
	if err := dict.Verify(); err != nil {
		t.Fatalf("Verify rejects restored dictionary: %v", err)
	}
}

func TestRuleDomainsSurvivePipeline(t *testing.T) {
	// Every monitored domain in the catalog specs is dedicated-hosted
	// (possibly censys-recovered), so none may be lost.
	dict, w := compileDict(t, 1)
	for _, spec := range w.Catalog.Rules {
		ri := dict.RuleIndex(spec.Name)
		if ri < 0 {
			t.Fatalf("rule %s dropped", spec.Name)
		}
		if got := len(dict.Rules[ri].Domains); got != len(spec.Domains) {
			t.Errorf("rule %s kept %d/%d domains", spec.Name, got, len(spec.Domains))
		}
	}
}

func TestHierarchyLinks(t *testing.T) {
	dict, _ := compileDict(t, 1)
	ftv := dict.RuleIndex("Fire TV")
	amz := dict.RuleIndex("Amazon Product")
	alexa := dict.RuleIndex("Alexa Enabled")
	if dict.Rules[ftv].Parent != amz || dict.Rules[amz].Parent != alexa {
		t.Fatal("Amazon hierarchy broken")
	}
	stv := dict.RuleIndex("Samsung TV")
	sam := dict.RuleIndex("Samsung IoT")
	if dict.Rules[stv].Parent != sam || !dict.Rules[stv].RequireParent {
		t.Fatal("Samsung hierarchy broken")
	}
	if dict.Rules[alexa].Parent != -1 {
		t.Fatal("root rule has a parent")
	}
}

func TestMinDomains(t *testing.T) {
	r := Rule{Domains: make([]string, 10)}
	cases := []struct {
		d    float64
		want int
	}{
		{0.0, 1}, {0.05, 1}, {0.1, 1}, {0.4, 4}, {0.99, 9}, {1.0, 10},
	}
	for _, c := range cases {
		if got := r.MinDomains(c.d); got != c.want {
			t.Errorf("MinDomains(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	one := Rule{Domains: make([]string, 1)}
	if one.MinDomains(1.0) != 1 || one.MinDomains(0.1) != 1 {
		t.Error("single-domain rule must always need exactly 1")
	}
}

func TestLookupMatchesTrafficDestinations(t *testing.T) {
	// Flows generated toward a monitored domain's current address must
	// hit the dictionary on the same day.
	dict, w := compileDict(t, 1)
	day := w.Window.Days()[4]
	r := w.ResolverOn(day)
	dom := "avs-alexa.simamazon.example"
	ips := r.Resolve(dom)
	if len(ips) == 0 {
		t.Fatal("avs does not resolve")
	}
	for _, ip := range ips {
		targets := dict.Lookup(day, ip, 443)
		if len(targets) == 0 {
			t.Fatalf("no targets for %v on %v", ip, day)
		}
		// avs appears in two rules (Alexa Enabled and Amazon Product;
		// Fire TV monitors only its additional domains).
		if len(targets) != 2 {
			t.Fatalf("avs IP maps to %d targets, want 2", len(targets))
		}
	}
}

func TestLookupWrongPortMisses(t *testing.T) {
	dict, w := compileDict(t, 1)
	day := w.Window.Days()[0]
	ip := w.ResolverOn(day).Resolve("avs-alexa.simamazon.example")[0]
	if got := dict.Lookup(day, ip, 8080); len(got) != 0 {
		t.Fatalf("port-mismatched lookup returned %v", got)
	}
}

func TestLookupDayClamping(t *testing.T) {
	dict, w := compileDict(t, 1)
	days := w.Window.Days()
	ip := w.ResolverOn(days[0]).Resolve("mqtt.simmeross.example")[0]
	dom := w.Catalog.Domains["mqtt.simmeross.example"]
	before := dict.Lookup(days[0]-10, ip, dom.Port)
	first := dict.Lookup(days[0], ip, dom.Port)
	if len(before) != len(first) {
		t.Fatal("clamped lookup differs from first day")
	}
}

func TestCensysRecoveredDomainsInHitlist(t *testing.T) {
	dict, w := compileDict(t, 1)
	day := w.Window.Days()[0]
	// r1.simreolink.example is pdns-uncovered but censys-recovered.
	ips := dict.DomainIPs(day, "Reolink Cam.", "r1.simreolink.example")
	if len(ips) == 0 {
		t.Fatal("censys-recovered domain has no hitlist addresses")
	}
}

func TestHitlistSizePositive(t *testing.T) {
	dict, w := compileDict(t, 1)
	for _, day := range w.Window.Days() {
		if dict.HitlistSize(day) < 100 {
			t.Fatalf("hitlist on %v has %d keys", day, dict.HitlistSize(day))
		}
	}
}

func BenchmarkCompile(b *testing.B) {
	w := world.MustBuild(1)
	days := w.Window.Days()
	pipe := dedicated.New(w.PDNS, w.Scans, days[0], days[len(days)-1])
	iot := classify.DefaultKB().ClassifyAll(w.Catalog.DomainNames()).IoTSpecific()
	census := pipe.ClassifyAll(iot)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(w.Catalog, census, w.PDNS, days); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLookup(b *testing.B) {
	dict, w := compileDict(nil, 1)
	day := w.Window.Days()[0]
	ip := w.ResolverOn(day).Resolve("avs-alexa.simamazon.example")[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = dict.Lookup(day, ip, 443)
	}
}
