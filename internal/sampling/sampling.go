// Package sampling implements the packet sampling performed by the
// vantage points, which is the central obstacle the paper's methodology
// must overcome.
//
// Two equivalent interfaces are provided:
//
//   - per-packet samplers (Deterministic, Uniform) for code paths that
//     walk real packet streams, and
//   - binomial thinning (Thin) for the simulator's aggregate fast path,
//     which is statistically identical to uniform per-packet sampling
//     of the same counts.
//
// The ISP samples at 1:SampleRateISP; the IXP is an order of magnitude
// sparser (§2.1).
package sampling

import (
	"fmt"

	"repro/internal/flow"
	"repro/internal/simrand"
)

// Paper-calibrated sampling denominators: the ISP uses a consistent
// rate across all border routers; the IXP's rate is 10× lower.
const (
	RateISP = 1024  // 1-in-1024 packets
	RateIXP = 10240 // 1-in-10240 packets
)

// Sampler decides packet-by-packet whether a packet is exported.
type Sampler interface {
	// Sample reports whether the next packet is selected.
	Sample() bool
	// Rate returns the selection probability.
	Rate() float64
}

// Deterministic selects every n-th packet (count-based sampling, the
// classic Cisco "sampled NetFlow" mode).
type Deterministic struct {
	n     uint64
	count uint64
}

// NewDeterministic returns a 1-in-n sampler. It panics if n == 0.
func NewDeterministic(n uint64) *Deterministic {
	if n == 0 {
		panic("sampling: 1-in-0 sampler")
	}
	return &Deterministic{n: n}
}

// Sample implements Sampler.
func (d *Deterministic) Sample() bool {
	d.count++
	if d.count == d.n {
		d.count = 0
		return true
	}
	return false
}

// Rate implements Sampler.
func (d *Deterministic) Rate() float64 { return 1 / float64(d.n) }

// Uniform selects each packet independently with probability 1/n.
type Uniform struct {
	p   float64
	rng *simrand.RNG
}

// NewUniform returns a probabilistic 1-in-n sampler drawing from rng.
func NewUniform(n uint64, rng *simrand.RNG) *Uniform {
	if n == 0 {
		panic("sampling: 1-in-0 sampler")
	}
	return &Uniform{p: 1 / float64(n), rng: rng}
}

// Sample implements Sampler.
func (u *Uniform) Sample() bool { return u.rng.Bernoulli(u.p) }

// Rate implements Sampler.
func (u *Uniform) Rate() float64 { return u.p }

// Thin applies uniform 1-in-n sampling to an aggregate packet count,
// returning the number of sampled packets. Exact binomial, not an
// expectation: small flows routinely sample to zero, which is what
// makes laconic IoT devices hard to see (§5).
func Thin(rng *simrand.RNG, packets uint64, n uint64) uint64 {
	if n == 0 {
		panic("sampling: 1-in-0 thinning")
	}
	if n == 1 {
		return packets
	}
	const maxInt = int(^uint(0) >> 1)
	if packets > uint64(maxInt) {
		packets = uint64(maxInt)
	}
	return uint64(rng.Binomial(int(packets), 1/float64(n)))
}

// ThinRecord applies Thin to a flow record. It returns the sampled
// record and true, or a zero record and false when no packet of the
// flow was sampled (the flow is invisible at the vantage point).
// Bytes are scaled by the mean packet size, preserving the byte/packet
// ratio the heavy-hitter analysis depends on (Fig 6).
func ThinRecord(rng *simrand.RNG, rec flow.Record, n uint64) (flow.Record, bool) {
	sampled := Thin(rng, rec.Packets, n)
	if sampled == 0 {
		return flow.Record{}, false
	}
	out := rec
	out.Packets = sampled
	out.Bytes = rec.Bytes / rec.Packets * sampled
	return out, true
}

// Validate checks that a claimed sampler configuration is usable.
func Validate(n uint64) error {
	if n == 0 {
		return fmt.Errorf("sampling: rate denominator must be positive")
	}
	return nil
}
