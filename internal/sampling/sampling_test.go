package sampling

import (
	"math"
	"net/netip"
	"testing"
	"testing/quick"

	"repro/internal/flow"
	"repro/internal/simrand"
)

func TestDeterministicExact(t *testing.T) {
	s := NewDeterministic(10)
	hits := 0
	for i := 0; i < 1000; i++ {
		if s.Sample() {
			hits++
		}
	}
	if hits != 100 {
		t.Fatalf("deterministic 1-in-10 over 1000 packets selected %d", hits)
	}
	if s.Rate() != 0.1 {
		t.Fatalf("Rate = %v", s.Rate())
	}
}

func TestDeterministicSpacing(t *testing.T) {
	s := NewDeterministic(4)
	var picks []int
	for i := 0; i < 20; i++ {
		if s.Sample() {
			picks = append(picks, i)
		}
	}
	for i := 1; i < len(picks); i++ {
		if picks[i]-picks[i-1] != 4 {
			t.Fatalf("uneven spacing: %v", picks)
		}
	}
}

func TestUniformRate(t *testing.T) {
	rng := simrand.New(1)
	s := NewUniform(100, rng)
	hits := 0
	const n = 1_000_000
	for i := 0; i < n; i++ {
		if s.Sample() {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.01) > 0.001 {
		t.Fatalf("uniform 1-in-100 rate %v", got)
	}
}

func TestThinMean(t *testing.T) {
	rng := simrand.New(2)
	var total uint64
	const trials = 2000
	for i := 0; i < trials; i++ {
		total += Thin(rng, 10000, 1000)
	}
	mean := float64(total) / trials
	if math.Abs(mean-10) > 0.5 {
		t.Fatalf("thin mean %v, want ~10", mean)
	}
}

func TestThinBounds(t *testing.T) {
	rng := simrand.New(3)
	f := func(pkts uint16, nRaw uint8) bool {
		n := uint64(nRaw)%1000 + 1
		got := Thin(rng, uint64(pkts), n)
		return got <= uint64(pkts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestThinIdentityAtRateOne(t *testing.T) {
	rng := simrand.New(4)
	if got := Thin(rng, 12345, 1); got != 12345 {
		t.Fatalf("1-in-1 thinning changed count: %d", got)
	}
}

func TestThinSmallFlowsOftenInvisible(t *testing.T) {
	// A 100-packet/h laconic flow under 1:1024 sampling should be
	// invisible most of the time — the paper's core detectability
	// obstacle.
	rng := simrand.New(5)
	invisible := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		if Thin(rng, 100, RateISP) == 0 {
			invisible++
		}
	}
	frac := float64(invisible) / trials
	// P(invisible) = (1-1/1024)^100 ≈ 0.907
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("invisible fraction %v, want ~0.91", frac)
	}
}

func TestThinRecord(t *testing.T) {
	rng := simrand.New(6)
	rec := flow.Record{
		Key: flow.Key{
			Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("185.1.2.3"),
			SrcPort: 1000, DstPort: 443, Proto: flow.ProtoTCP,
		},
		Packets: 100000, Bytes: 60_000_000, TCPFlags: 0x10,
	}
	out, ok := ThinRecord(rng, rec, 1000)
	if !ok {
		t.Fatal("large flow sampled to zero (vanishingly unlikely)")
	}
	if out.Packets == 0 || out.Packets > rec.Packets {
		t.Fatalf("sampled packets %d", out.Packets)
	}
	// Byte/packet ratio preserved.
	if out.Bytes/out.Packets != rec.Bytes/rec.Packets {
		t.Fatalf("mean packet size changed: %d vs %d", out.Bytes/out.Packets, rec.Bytes/rec.Packets)
	}
	if out.Key != rec.Key || out.TCPFlags != rec.TCPFlags {
		t.Fatal("thinning altered key or flags")
	}
}

func TestThinRecordInvisible(t *testing.T) {
	rng := simrand.New(7)
	rec := flow.Record{Packets: 1, Bytes: 60}
	seen := 0
	for i := 0; i < 5000; i++ {
		if _, ok := ThinRecord(rng, rec, RateISP); ok {
			seen++
		}
	}
	got := float64(seen) / 5000
	want := 1.0 / RateISP
	if math.Abs(got-want) > 0.003 {
		t.Fatalf("single-packet visibility %v, want ~%v", got, want)
	}
}

func TestISPIXPRateRatio(t *testing.T) {
	if RateIXP/RateISP != 10 {
		t.Fatalf("IXP rate must be an order of magnitude lower (got ratio %d)", RateIXP/RateISP)
	}
}

func TestValidate(t *testing.T) {
	if Validate(0) == nil {
		t.Fatal("zero denominator accepted")
	}
	if Validate(1024) != nil {
		t.Fatal("valid denominator rejected")
	}
}

func TestThinEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		packets uint64
		n       uint64
		// wantMax bounds the result; wantExact pins it (when maxOnly is
		// false the result must equal wantMax).
		wantMax uint64
		exact   bool
	}{
		{"zero packets", 0, RateISP, 0, true},
		{"zero packets unsampled", 0, 1, 0, true},
		{"identity at n=1", 7, 1, 7, true},
		{"identity at n=1 large", 1 << 40, 1, 1 << 40, true},
		{"one packet sparse", 1, 1 << 20, 1, false},
		{"packets below denominator", 5, RateISP, 5, false},
		{"packets equal denominator", RateISP, RateISP, RateISP, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := simrand.New(11)
			got := Thin(rng, tc.packets, tc.n)
			if got > tc.wantMax {
				t.Fatalf("Thin(%d, %d) = %d, want <= %d", tc.packets, tc.n, got, tc.wantMax)
			}
			if tc.exact && got != tc.wantMax {
				t.Fatalf("Thin(%d, %d) = %d, want exactly %d", tc.packets, tc.n, got, tc.wantMax)
			}
		})
	}
}

func TestThinFewerPacketsThanDenominator(t *testing.T) {
	// packets < n must still be a fair binomial — over many trials a
	// 5-packet flow under 1:1024 shows up with P = 1-(1-1/1024)^5 ≈
	// 0.0049, never with more packets than it had.
	rng := simrand.New(12)
	const trials = 100_000
	visible := 0
	for i := 0; i < trials; i++ {
		got := Thin(rng, 5, RateISP)
		if got > 5 {
			t.Fatalf("thinned 5 packets into %d", got)
		}
		if got > 0 {
			visible++
		}
	}
	frac := float64(visible) / trials
	want := 1 - math.Pow(1-1.0/RateISP, 5)
	if math.Abs(frac-want) > 0.002 {
		t.Fatalf("5-packet visibility %v, want ~%v", frac, want)
	}
}

func TestDeterministicPhaseAcrossCalls(t *testing.T) {
	// The count phase persists across call batches: feeding 10 packets
	// as 10×1 or 2×5 must select the same positions as 1×10. This is
	// what lets the adversary harness share one sampler across an
	// entire trial's observations.
	sel := func(batches []int) []int {
		s := NewDeterministic(4)
		var picks []int
		pos := 0
		for _, b := range batches {
			for i := 0; i < b; i++ {
				if s.Sample() {
					picks = append(picks, pos)
				}
				pos++
			}
		}
		return picks
	}
	whole := sel([]int{20})
	split := sel([]int{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1})
	chunk := sel([]int{5, 5, 5, 5})
	if len(whole) != 5 {
		t.Fatalf("1-in-4 over 20 packets selected %d", len(whole))
	}
	for i := range whole {
		if whole[i] != split[i] || whole[i] != chunk[i] {
			t.Fatalf("phase broke across call batches: whole=%v split=%v chunk=%v", whole, split, chunk)
		}
	}
}

func TestDeterministicRateOne(t *testing.T) {
	// n == 1 selects every packet: 1-in-1 sampling is the identity for
	// the per-packet sampler just as Thin is for aggregates.
	s := NewDeterministic(1)
	for i := 0; i < 100; i++ {
		if !s.Sample() {
			t.Fatalf("1-in-1 sampler skipped packet %d", i)
		}
	}
}

func TestSamplerPanicsOnZero(t *testing.T) {
	for name, f := range map[string]func(){
		"deterministic": func() { NewDeterministic(0) },
		"uniform":       func() { NewUniform(0, simrand.New(1)) },
		"thin":          func() { Thin(simrand.New(1), 10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: 1-in-0 accepted", name)
				}
			}()
			f()
		}()
	}
}

func BenchmarkThin(b *testing.B) {
	rng := simrand.New(1)
	for i := 0; i < b.N; i++ {
		_ = Thin(rng, 5000, RateISP)
	}
}
