package eventlog

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// testEvent builds a deterministic event record for offset i.
func testEvent(i uint64) *Record {
	return &Record{Type: TypeEvent, Event: Event{
		Subscriber: 0x1000 + i,
		Rule:       "meross-plug",
		Level:      "device",
		First:      time.Unix(0, int64(i)*int64(time.Hour)).UTC(),
		Window:     i / 10,
	}}
}

// testWindow builds a deterministic window marker for seq.
func testWindow(seq uint64) *Record {
	return &Record{Type: TypeWindow, Window: WindowMarker{
		Seq:                 seq,
		Start:               time.Unix(int64(seq)*100, 0).UTC(),
		End:                 time.Unix(int64(seq)*100+60, 0).UTC(),
		Subscribers:         42,
		DetectedSubscribers: 7,
		Records:             1000 * seq,
		RecordsIPv4:         900 * seq,
		RecordsIPv6:         100 * seq,
		SkippedRecords:      seq,
		EventsDropped:       0,
		RuleCounts:          map[string]int{"meross-plug": 3, "alexa-echo": 4},
	}}
}

func mustAppend(t *testing.T, l *Log, rec *Record) uint64 {
	t.Helper()
	off, err := l.Append(rec)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	return off
}

func TestAppendReadRoundTrip(t *testing.T) {
	l, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	want := []*Record{testEvent(0), testEvent(1), testWindow(0), testEvent(2), testWindow(1)}
	for i, rec := range want {
		if off := mustAppend(t, l, rec); off != uint64(i) {
			t.Fatalf("offset %d, want %d", off, i)
		}
	}

	var got []Record
	next, err := l.ReadAt(0, func(off uint64, rec Record) bool {
		if off != uint64(len(got)) {
			t.Fatalf("offset %d out of order (want %d)", off, len(got))
		}
		got = append(got, rec)
		return true
	})
	if err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if next != uint64(len(want)) {
		t.Fatalf("next = %d, want %d", next, len(want))
	}
	for i, rec := range want {
		if !reflect.DeepEqual(got[i], *rec) {
			t.Errorf("record %d:\n got %+v\nwant %+v", i, got[i], *rec)
		}
	}

	// A read from the middle sees only the suffix; a read past the end
	// sees nothing and returns its clamped start.
	var n int
	if _, err := l.ReadAt(3, func(uint64, Record) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("ReadAt(3) visited %d records, want 2", n)
	}
	if next, err := l.ReadAt(99, func(uint64, Record) bool { t.Fatal("visited"); return false }); err != nil || next != 99 {
		t.Errorf("ReadAt(99) = %d, %v; want 99, nil", next, err)
	}
}

func TestRotationAndOffsetContinuity(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const total = 100
	for i := uint64(0); i < total; i++ {
		mustAppend(t, l, testEvent(i))
	}
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected >=3 segments at 256-byte rotation, got %d", st.Segments)
	}
	if st.NextOffset != total {
		t.Fatalf("NextOffset = %d, want %d", st.NextOffset, total)
	}

	// Every offset readable, in order, across the segment boundaries.
	var off uint64
	if _, err := l.ReadAt(0, func(o uint64, rec Record) bool {
		if o != off {
			t.Fatalf("offset %d, want %d", o, off)
		}
		if rec.Event.Subscriber != 0x1000+o {
			t.Fatalf("record %d has subscriber %#x", o, rec.Event.Subscriber)
		}
		off++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if off != total {
		t.Fatalf("visited %d records, want %d", off, total)
	}
}

func TestRetentionByBytes(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, SegmentBytes: 256, RetainBytes: 600})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	for i := uint64(0); i < 200; i++ {
		mustAppend(t, l, testEvent(i))
	}
	st := l.Stats()
	if st.OldestOffset == 0 {
		t.Fatal("retention never deleted a segment")
	}
	if st.RetentionSegments == 0 || st.RetentionRecords == 0 {
		t.Fatalf("retention counters not advanced: %+v", st)
	}
	if st.Bytes > 600+256+int64(256) {
		// Retention runs at rotation, so the budget can overshoot by
		// at most one segment plus the fresh active one.
		t.Fatalf("retained %d bytes against a 600-byte budget", st.Bytes)
	}

	// Reads from before the horizon clamp to OldestOffset.
	first := uint64(0xffffffff)
	if _, err := l.ReadAt(0, func(o uint64, _ Record) bool {
		if o < first {
			first = o
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if first != st.OldestOffset {
		t.Fatalf("first visited offset %d, want OldestOffset %d", first, st.OldestOffset)
	}

	// Reopen: the oldest offset survives the restart.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.OldestOffset(); got != st.OldestOffset {
		t.Fatalf("OldestOffset after reopen = %d, want %d", got, st.OldestOffset)
	}
	if got := l2.NextOffset(); got != 200 {
		t.Fatalf("NextOffset after reopen = %d, want 200", got)
	}
}

func TestReopenResumesOffsets(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 10; i++ {
		mustAppend(t, l, testEvent(i))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l, err = Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if off := mustAppend(t, l, testEvent(10)); off != 10 {
		t.Fatalf("append after reopen got offset %d, want 10", off)
	}
	var n int
	if _, err := l.ReadAt(0, func(uint64, Record) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 11 {
		t.Fatalf("visited %d records, want 11", n)
	}
}

// TestTornTailRecovery is the kill-mid-append regression test: a
// crash can leave a partial frame at the tail of the active segment,
// and Open must truncate it, resume at the right offset, and keep the
// file appendable.
func TestTornTailRecovery(t *testing.T) {
	for _, tear := range []struct {
		name string
		cut  int // bytes to keep of the final frame
	}{
		{"mid-header", 3},
		{"header-only", frameHeaderLen},
		{"mid-payload", frameHeaderLen + 5},
	} {
		t.Run(tear.name, func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(Options{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			for i := uint64(0); i < 5; i++ {
				mustAppend(t, l, testEvent(i))
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}

			// Simulate the torn write: a complete frame followed by a
			// prefix of another, exactly what a kill mid-append leaves.
			path := filepath.Join(dir, segName(0))
			full, err := encodeRecord(nil, testEvent(5))
			if err != nil {
				t.Fatal(err)
			}
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(full[:tear.cut]); err != nil {
				t.Fatal(err)
			}
			f.Close()

			l, err = Open(Options{Dir: dir})
			if err != nil {
				t.Fatalf("Open after torn write: %v", err)
			}
			defer l.Close()
			if got := l.NextOffset(); got != 5 {
				t.Fatalf("NextOffset = %d, want 5 (torn record must not count)", got)
			}
			if st := l.Stats(); st.RecoveryTruncatedBytes != int64(tear.cut) {
				t.Fatalf("RecoveryTruncatedBytes = %d, want %d", st.RecoveryTruncatedBytes, tear.cut)
			}

			// The log must be appendable and fully readable after
			// recovery — the new record lands on a clean boundary.
			if off := mustAppend(t, l, testEvent(5)); off != 5 {
				t.Fatalf("post-recovery append offset %d, want 5", off)
			}
			var n int
			if _, err := l.ReadAt(0, func(uint64, Record) bool { n++; return true }); err != nil {
				t.Fatalf("ReadAt after recovery: %v", err)
			}
			if n != 6 {
				t.Fatalf("visited %d records, want 6", n)
			}
		})
	}
}

func TestWaitAppend(t *testing.T) {
	l, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// Already-satisfied wait returns immediately.
	mustAppend(t, l, testEvent(0))
	if err := l.WaitAppend(context.Background(), 0); err != nil {
		t.Fatalf("WaitAppend(0): %v", err)
	}

	// A blocked wait wakes when the offset is appended.
	done := make(chan error, 1)
	go func() { done <- l.WaitAppend(context.Background(), 1) }()
	time.Sleep(10 * time.Millisecond)
	mustAppend(t, l, testEvent(1))
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("WaitAppend(1): %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitAppend(1) never woke")
	}

	// Context cancellation unblocks.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := l.WaitAppend(ctx, 99); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitAppend(ctx) = %v, want deadline exceeded", err)
	}

	// Close unblocks with ErrClosed.
	go func() { done <- l.WaitAppend(context.Background(), 99) }()
	time.Sleep(10 * time.Millisecond)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("WaitAppend after Close = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitAppend never woke on Close")
	}
}

func TestFsyncPolicies(t *testing.T) {
	t.Run("event", func(t *testing.T) {
		l, err := Open(Options{Dir: t.TempDir(), Fsync: FsyncEvent})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		for i := uint64(0); i < 5; i++ {
			mustAppend(t, l, testEvent(i))
		}
		if st := l.Stats(); st.Syncs != 5 {
			t.Fatalf("Syncs = %d, want 5 under FsyncEvent", st.Syncs)
		}
	})
	t.Run("window", func(t *testing.T) {
		l, err := Open(Options{Dir: t.TempDir(), Fsync: FsyncWindow})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		for i := uint64(0); i < 5; i++ {
			mustAppend(t, l, testEvent(i))
		}
		if st := l.Stats(); st.Syncs != 0 {
			t.Fatalf("Syncs = %d, want 0 before any window marker", st.Syncs)
		}
		mustAppend(t, l, testWindow(0))
		if st := l.Stats(); st.Syncs != 1 {
			t.Fatalf("Syncs = %d, want 1 after the window marker", st.Syncs)
		}
	})
	t.Run("timer", func(t *testing.T) {
		l, err := Open(Options{Dir: t.TempDir(), Fsync: FsyncTimer, FsyncInterval: 10 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		mustAppend(t, l, testEvent(0))
		deadline := time.Now().Add(5 * time.Second)
		for l.Stats().Syncs == 0 && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if l.Stats().Syncs == 0 {
			t.Fatal("timer policy never synced")
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, p := range []FsyncPolicy{FsyncWindow, FsyncEvent, FsyncTimer} {
		got, err := ParseFsyncPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("round trip %v: got %v, %v", p, got, err)
		}
	}
	if _, err := ParseFsyncPolicy("always"); err == nil {
		t.Error("ParseFsyncPolicy accepted garbage")
	}
}

func TestFollowerTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	fw := NewFollower(dir, 0)
	collect := func() []uint64 {
		var offs []uint64
		if err := fw.Poll(func(off uint64, rec Record) bool {
			offs = append(offs, off)
			return true
		}); err != nil {
			t.Fatalf("Poll: %v", err)
		}
		return offs
	}

	if offs := collect(); len(offs) != 0 {
		t.Fatalf("empty log delivered %v", offs)
	}
	for i := uint64(0); i < 40; i++ {
		mustAppend(t, l, testEvent(i))
	}
	offs := collect()
	if len(offs) != 40 || offs[0] != 0 || offs[39] != 39 {
		t.Fatalf("first poll delivered %d records (%v...)", len(offs), offs[:min(len(offs), 3)])
	}
	// Incremental: only new records on the next poll, across rotation.
	for i := uint64(40); i < 80; i++ {
		mustAppend(t, l, testEvent(i))
	}
	offs = collect()
	if len(offs) != 40 || offs[0] != 40 {
		t.Fatalf("second poll delivered %d records starting at %v", len(offs), offs[0])
	}
	if fw.Offset() != 80 {
		t.Fatalf("follower offset %d, want 80", fw.Offset())
	}
}

// TestFollowerToleratesTornTail pins the live-tail behavior: a
// partial frame at the end of the active segment is "not written
// yet", not an error, and the record is delivered once complete.
func TestFollowerToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	mustAppend(t, l, testEvent(0))

	// Hand-write a partial frame after the complete record, as if the
	// writer were mid-append.
	full, err := encodeRecord(nil, testEvent(1))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, segName(0))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(full[:len(full)-3]); err != nil {
		t.Fatal(err)
	}

	fw := NewFollower(dir, 0)
	var n int
	if err := fw.Poll(func(uint64, Record) bool { n++; return true }); err != nil {
		t.Fatalf("Poll over torn tail: %v", err)
	}
	if n != 1 {
		t.Fatalf("delivered %d records, want 1 (torn frame must not surface)", n)
	}

	// Complete the append; the next poll delivers it.
	if _, err := f.Write(full[len(full)-3:]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := fw.Poll(func(off uint64, rec Record) bool {
		n++
		if off != 1 || rec.Event.Subscriber != 0x1001 {
			t.Fatalf("completed frame decoded wrong: off=%d rec=%+v", off, rec)
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("delivered %d records total, want 2", n)
	}
}

func TestCorruptMidLogIsAnError(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 10; i++ {
		mustAppend(t, l, testEvent(i))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one payload bit in the middle of the segment.
	path := filepath.Join(dir, segName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Open truncates at the flip (no panic, no silent skip: every
	// record before it survives, nothing after it is visible).
	l, err = Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	st := l.Stats()
	if st.NextOffset >= 10 || st.RecoveryTruncatedBytes == 0 {
		t.Fatalf("corruption not detected: %+v", st)
	}
	var n uint64
	if _, err := l.ReadAt(0, func(uint64, Record) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != st.NextOffset {
		t.Fatalf("read %d records, want %d", n, st.NextOffset)
	}
}
