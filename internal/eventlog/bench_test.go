package eventlog

// Append-throughput benchmarks for the durable log — the numbers the
// fsync-policy guidance in docs/OPERATIONS.md is based on, and a
// BENCH_*.json trajectory point. The event record is the hot path
// (one per first-fire); markers are one per window and amortize away.
//
// Run: go test -run '^$' -bench BenchmarkAppend -benchmem ./internal/eventlog

import (
	"fmt"
	"testing"
	"time"
)

func BenchmarkAppend(b *testing.B) {
	for _, pol := range []FsyncPolicy{FsyncWindow, FsyncTimer, FsyncEvent} {
		b.Run("fsync_"+pol.String(), func(b *testing.B) {
			l, err := Open(Options{Dir: b.TempDir(), Fsync: pol})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			rec := Record{Type: TypeEvent, Event: Event{
				Subscriber: 0x0123456789abcdef,
				Rule:       "Meross Dooropener",
				Level:      "Man.",
				First:      time.Date(2019, time.November, 15, 9, 0, 0, 0, time.UTC),
				Window:     3,
			}}
			var bytes int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec.Event.Subscriber = uint64(i)
				off, err := l.Append(&rec)
				if err != nil {
					b.Fatal(err)
				}
				_ = off
			}
			b.StopTimer()
			bytes = l.Stats().Bytes
			b.SetBytes(bytes / int64(b.N))
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
}

// BenchmarkReadAt measures sequential replay speed over a populated
// log — the startup-cost side of the crash-replay tradeoff.
func BenchmarkReadAt(b *testing.B) {
	const records = 100_000
	l, err := Open(Options{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	rec := Record{Type: TypeEvent, Event: Event{
		Rule: "Meross Dooropener", Level: "Man.",
		First: time.Date(2019, time.November, 15, 9, 0, 0, 0, time.UTC),
	}}
	for i := 0; i < records; i++ {
		rec.Event.Subscriber = uint64(i)
		if _, err := l.Append(&rec); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if _, err := l.ReadAt(0, func(_ uint64, _ Record) bool { n++; return true }); err != nil {
			b.Fatal(err)
		}
		if n != records {
			b.Fatal(fmt.Errorf("read %d records, want %d", n, records))
		}
	}
	b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}
