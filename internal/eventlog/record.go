package eventlog

// Record framing and payload codecs. Every record on disk is one
// frame:
//
//	+--------------+--------------+---------------------+
//	| length (u32) | crc32c (u32) | payload (length B)  |
//	+--------------+--------------+---------------------+
//
// with all integers big-endian and the CRC32C (Castagnoli) taken over
// the payload bytes only. The payload's first byte is the record type;
// the rest is the type's body. The framing is deliberately the same
// shape as the JSONL export trailer (export.go) and the wire decoders:
// fixed-width guards first, then a length-checked view walk, so the
// wirebounds analyzer can prove the decode path panic-free and a
// single flipped bit anywhere in a frame is detected by the checksum.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"time"
)

// Type discriminates the record payloads.
type Type uint8

const (
	// TypeEvent is one DetectionEvent: a rule crossed threshold for a
	// subscriber while a window was current.
	TypeEvent Type = 1
	// TypeWindow is a window-boundary marker: the WindowResult summary
	// of a completed aggregation window. Everything before it up to the
	// previous marker belongs to the closed window; replay resumes from
	// the last marker.
	TypeWindow Type = 2
)

// Event is the logged form of a detection event. It mirrors
// haystack.DetectionEvent field for field; the types are distinct only
// because the root package imports this one.
type Event struct {
	Subscriber uint64
	Rule       string
	Level      string
	First      time.Time
	Window     uint64
}

// WindowMarker is the logged form of a completed window's summary —
// the WindowResult minus its detection list, which the preceding
// Event records already hold.
type WindowMarker struct {
	Seq                 uint64
	Start, End          time.Time
	Subscribers         int
	DetectedSubscribers int
	Records             uint64
	RecordsIPv4         uint64
	RecordsIPv6         uint64
	SkippedRecords      uint64
	EventsDropped       uint64
	RuleCounts          map[string]int
}

// Record is one decoded log record: exactly one of Event or Window is
// meaningful, per Type.
type Record struct {
	Type   Type
	Event  Event
	Window WindowMarker
}

const (
	// frameHeaderLen is the fixed frame prefix: u32 length + u32 CRC32C.
	frameHeaderLen = 8
	// MaxRecordLen bounds a payload. An append beyond it fails; a frame
	// header declaring more is corruption, not a huge allocation.
	MaxRecordLen = 1 << 20
)

// castagnoli is the CRC32C table, the polynomial storage systems use.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Frame-level errors. ErrCorrupt wraps every mid-log integrity
// failure; callers match it with errors.Is.
var (
	ErrCorrupt = errors.New("eventlog: corrupt record")
	// errTruncated marks a frame that ends before its declared length —
	// at the log tail this is a torn write, elsewhere corruption.
	errTruncated = fmt.Errorf("%w: truncated frame", ErrCorrupt)
)

// appendFrame appends one framed payload to dst.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// encodeRecord appends rec's frame to dst. It fails only on records
// that cannot be represented (oversized strings or payload) — never
// on ordinary detector output.
func encodeRecord(dst []byte, rec *Record) ([]byte, error) {
	var payload []byte
	var err error
	switch rec.Type {
	case TypeEvent:
		payload, err = encodeEvent(&rec.Event)
	case TypeWindow:
		payload, err = encodeWindow(&rec.Window)
	default:
		return nil, fmt.Errorf("eventlog: encode: unknown record type %d", rec.Type)
	}
	if err != nil {
		return nil, err
	}
	if len(payload) > MaxRecordLen {
		return nil, fmt.Errorf("eventlog: encode: %d-byte payload exceeds MaxRecordLen", len(payload))
	}
	return appendFrame(dst, payload), nil
}

// appendString appends a u16 length-prefixed string.
func appendString(dst []byte, s string) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

// encodeEvent builds a TypeEvent payload: type byte, then subscriber,
// window, first (UnixNano), rule (u16 length prefix), level (u8
// length prefix), all big-endian.
func encodeEvent(ev *Event) ([]byte, error) {
	if len(ev.Rule) > 0xffff {
		return nil, fmt.Errorf("eventlog: encode: %d-byte rule name", len(ev.Rule))
	}
	if len(ev.Level) > 0xff {
		return nil, fmt.Errorf("eventlog: encode: %d-byte level", len(ev.Level))
	}
	p := make([]byte, 0, 1+8+8+8+2+len(ev.Rule)+1+len(ev.Level))
	p = append(p, byte(TypeEvent))
	p = binary.BigEndian.AppendUint64(p, ev.Subscriber)
	p = binary.BigEndian.AppendUint64(p, ev.Window)
	p = binary.BigEndian.AppendUint64(p, uint64(ev.First.UnixNano()))
	p = appendString(p, ev.Rule)
	p = append(p, byte(len(ev.Level)))
	p = append(p, ev.Level...)
	return p, nil
}

// encodeWindow builds a TypeWindow payload: type byte, the fixed
// counters, then the rule-count table in lexicographic rule order.
//
// haystack:deterministic — log bytes are diffed across runs in tests
// and replayed byte-for-byte to tail consumers, so the RuleCounts map
// iteration must be sorted before anything is appended.
func encodeWindow(wm *WindowMarker) ([]byte, error) {
	rules := make([]string, 0, len(wm.RuleCounts))
	for r := range wm.RuleCounts {
		rules = append(rules, r)
	}
	sort.Strings(rules)

	p := make([]byte, 0, 1+8*8+4*3+len(rules)*16)
	p = append(p, byte(TypeWindow))
	p = binary.BigEndian.AppendUint64(p, wm.Seq)
	p = binary.BigEndian.AppendUint64(p, uint64(wm.Start.UnixNano()))
	p = binary.BigEndian.AppendUint64(p, uint64(wm.End.UnixNano()))
	p = binary.BigEndian.AppendUint32(p, uint32(wm.Subscribers))
	p = binary.BigEndian.AppendUint32(p, uint32(wm.DetectedSubscribers))
	p = binary.BigEndian.AppendUint64(p, wm.Records)
	p = binary.BigEndian.AppendUint64(p, wm.RecordsIPv4)
	p = binary.BigEndian.AppendUint64(p, wm.RecordsIPv6)
	p = binary.BigEndian.AppendUint64(p, wm.SkippedRecords)
	p = binary.BigEndian.AppendUint64(p, wm.EventsDropped)
	p = binary.BigEndian.AppendUint32(p, uint32(len(rules)))
	for _, r := range rules {
		if len(r) > 0xffff {
			return nil, fmt.Errorf("eventlog: encode: %d-byte rule name", len(r))
		}
		p = appendString(p, r)
		p = binary.BigEndian.AppendUint32(p, uint32(wm.RuleCounts[r]))
	}
	return p, nil
}

// decodeRecord parses one framed payload (the bytes after the frame
// header, already CRC-verified) into rec.
//
// haystack:hotpath — runs once per record on the replay and tail
// paths; every index is dominated by a length guard (wirebounds).
func decodeRecord(p []byte, rec *Record) error {
	if len(p) < 1 {
		return errTruncated
	}
	typ := Type(p[0])
	body := p[1:]
	*rec = Record{} // callers reuse rec across records; no stale fields
	switch typ {
	case TypeEvent:
		rec.Type = TypeEvent
		return decodeEvent(body, &rec.Event)
	case TypeWindow:
		rec.Type = TypeWindow
		return decodeWindow(body, &rec.Window)
	}
	return errUnknownType(typ)
}

// eventFixedLen is the fixed front of a TypeEvent body: subscriber,
// window, first, and the rule length prefix.
const eventFixedLen = 8 + 8 + 8 + 2

// decodeEvent parses a TypeEvent body.
//
// haystack:hotpath — see decodeRecord.
func decodeEvent(b []byte, ev *Event) error {
	if len(b) < eventFixedLen {
		return errTruncated
	}
	ev.Subscriber = binary.BigEndian.Uint64(b[0:8])
	ev.Window = binary.BigEndian.Uint64(b[8:16])
	ev.First = time.Unix(0, int64(binary.BigEndian.Uint64(b[16:24]))).UTC()
	rl := int(binary.BigEndian.Uint16(b[24:26]))
	rest := b[eventFixedLen:]
	if rl > len(rest) {
		return errTruncated
	}
	ev.Rule = string(rest[:rl])
	rest = rest[rl:]
	if len(rest) < 1 {
		return errTruncated
	}
	ll := int(rest[0])
	rest = rest[1:]
	if ll > len(rest) {
		return errTruncated
	}
	ev.Level = string(rest[:ll])
	rest = rest[ll:]
	if len(rest) != 0 {
		return errTrailingBytes(len(rest))
	}
	return nil
}

// windowFixedLen is the fixed front of a TypeWindow body: seven u64
// counters, two u32 tallies, and the u32 rule-table length.
const windowFixedLen = 8*8 + 4*3

// decodeWindow parses a TypeWindow body.
//
// haystack:hotpath — see decodeRecord.
func decodeWindow(b []byte, wm *WindowMarker) error {
	if len(b) < windowFixedLen {
		return errTruncated
	}
	wm.Seq = binary.BigEndian.Uint64(b[0:8])
	wm.Start = time.Unix(0, int64(binary.BigEndian.Uint64(b[8:16]))).UTC()
	wm.End = time.Unix(0, int64(binary.BigEndian.Uint64(b[16:24]))).UTC()
	wm.Subscribers = int(binary.BigEndian.Uint32(b[24:28]))
	wm.DetectedSubscribers = int(binary.BigEndian.Uint32(b[28:32]))
	wm.Records = binary.BigEndian.Uint64(b[32:40])
	wm.RecordsIPv4 = binary.BigEndian.Uint64(b[40:48])
	wm.RecordsIPv6 = binary.BigEndian.Uint64(b[48:56])
	wm.SkippedRecords = binary.BigEndian.Uint64(b[56:64])
	wm.EventsDropped = binary.BigEndian.Uint64(b[64:72])
	nrules := int(binary.BigEndian.Uint32(b[72:76]))
	rest := b[windowFixedLen:]
	wm.RuleCounts = nil
	for i := 0; i < nrules; i++ {
		if len(rest) < 2 {
			return errTruncated
		}
		rl := int(binary.BigEndian.Uint16(rest[0:2]))
		rest = rest[2:]
		if rl > len(rest) {
			return errTruncated
		}
		rule := string(rest[:rl])
		rest = rest[rl:]
		if len(rest) < 4 {
			return errTruncated
		}
		n := int(binary.BigEndian.Uint32(rest[0:4]))
		rest = rest[4:]
		if wm.RuleCounts == nil {
			wm.RuleCounts = make(map[string]int, nrules) // haystack:allow hotpath one marker per window, not per event; the map is the record's payload
		}
		wm.RuleCounts[rule] = n
	}
	if len(rest) != 0 {
		return errTrailingBytes(len(rest))
	}
	return nil
}

// Cold-path error constructors, outlined so the decode functions stay
// fmt-free on the per-record path.
func errUnknownType(t Type) error {
	return fmt.Errorf("%w: unknown record type %d", ErrCorrupt, t)
}

func errTrailingBytes(n int) error {
	return fmt.Errorf("%w: %d trailing bytes after payload", ErrCorrupt, n)
}
