// Package eventlog is the durable detection event log: a partitioned,
// segmented, append-only on-disk log for detection events and window
// boundaries, with Kafka-style semantics scaled to one node.
//
//   - Records are framed with a fixed-width length + CRC32C header
//     (record.go) and addressed by a dense logical offset (0, 1, 2, …).
//   - The log is a directory of segment files named by the offset of
//     their first record (00000000000000000000.seg, …); appends go to
//     the last ("active") segment, which rotates by size and age.
//   - Retention deletes whole oldest segments once the log exceeds a
//     byte or age budget; readers observe the purge as an advanced
//     OldestOffset, never as a half-deleted segment.
//   - Open recovers from a crash by scanning the active segment and
//     truncating at the first invalid frame — a torn append or a
//     flipped bit costs the tail of the log, never a panic and never a
//     silent skip past corruption.
//   - Fsync policy is the caller's durability/throughput dial: per
//     record, per window marker, or on a timer.
//
// The root package wires a Log under haystack.Server (a log writer
// subscribing to the detection event stream), replays it to rebuild
// detector window state after a crash, and serves offset-addressed
// tails over HTTP. See DESIGN.md "Durability & replay".
package eventlog

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// FsyncPolicy selects when appended records are forced to stable
// storage.
type FsyncPolicy int

const (
	// FsyncWindow syncs at every window marker (and at rotation and
	// Close): a crash can lose events of the current window only —
	// exactly the window replay rebuilds. The default.
	FsyncWindow FsyncPolicy = iota
	// FsyncEvent syncs after every record: maximum durability, one
	// fsync per detection event.
	FsyncEvent
	// FsyncTimer syncs on a timer (Options.FsyncInterval): bounded
	// data loss at bounded fsync cost, independent of event rate.
	FsyncTimer
)

// String returns the policy's CLI spelling.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncEvent:
		return "event"
	case FsyncTimer:
		return "timer"
	default:
		return "window"
	}
}

// ParseFsyncPolicy parses the CLI spelling of a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "window":
		return FsyncWindow, nil
	case "event":
		return FsyncEvent, nil
	case "timer":
		return FsyncTimer, nil
	}
	return 0, fmt.Errorf("eventlog: unknown fsync policy %q (want window, event, or timer)", s)
}

// Options configures a Log. The zero value of every field is a usable
// default except Dir, which is required.
type Options struct {
	// Dir is the log directory, created if needed.
	Dir string
	// SegmentBytes rotates the active segment when it would exceed
	// this size (default 64 MiB). Retention granularity is one
	// segment, so smaller segments mean tighter retention enforcement
	// at the cost of more files.
	SegmentBytes int64
	// SegmentAge rotates the active segment when its first record is
	// older than this (0 = size-based rotation only).
	SegmentAge time.Duration
	// RetainBytes deletes oldest closed segments while the log's total
	// size exceeds this (0 = unlimited). The active segment is never
	// deleted.
	RetainBytes int64
	// RetainAge deletes oldest closed segments whose newest record is
	// older than this (0 = unlimited).
	RetainAge time.Duration
	// Fsync is the durability policy; FsyncInterval is the FsyncTimer
	// period (default 1s).
	Fsync         FsyncPolicy
	FsyncInterval time.Duration
}

// DefaultSegmentBytes is the segment rotation size when
// Options.SegmentBytes is zero.
const DefaultSegmentBytes = 64 << 20

// defaultFsyncInterval is the FsyncTimer period when unset.
const defaultFsyncInterval = time.Second

// ErrClosed is returned by operations on a closed Log.
var ErrClosed = errors.New("eventlog: log closed")

// segment is one on-disk segment file. Offsets are dense, so segment
// i holds records [base_i, base_{i+1}).
type segment struct {
	base uint64
	path string
	size int64 // bytes of complete frames (the active segment grows)
}

// Log is an open event log. All methods are safe for concurrent use;
// reads proceed concurrently with appends.
type Log struct {
	opts Options

	mu      sync.Mutex
	segs    []segment // ascending by base; the last is active
	active  *os.File
	actBorn time.Time // active segment creation (age rotation)
	next    uint64    // offset of the next appended record
	dirty   bool      // unsynced appends on the active segment
	closed  bool
	waiters int
	notify  chan struct{} // haystack:unbounded close-only append signal, replaced per append
	buf     []byte        // append scratch

	done        chan struct{} // haystack:unbounded close-only FsyncTimer stop signal
	timerExited chan struct{} // haystack:unbounded close-only FsyncTimer exit acknowledgement

	appended      atomic.Uint64
	syncs         atomic.Uint64
	truncatedByte atomic.Int64
	retainSegs    atomic.Uint64
	retainRecs    atomic.Uint64
}

// segName formats a segment file name: the 20-digit zero-padded base
// offset (20 digits hold any uint64, so lexicographic order is offset
// order), extension .seg.
func segName(base uint64) string { return fmt.Sprintf("%020d.seg", base) }

// parseSegName inverts segName.
func parseSegName(name string) (uint64, bool) {
	s, ok := strings.CutSuffix(name, ".seg")
	if !ok || len(s) != 20 {
		return 0, false
	}
	base, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, false
	}
	return base, true
}

// Open opens (creating if needed) the log in opts.Dir and recovers it
// to a consistent state: the active segment is scanned and truncated
// at the first torn or corrupt frame, so the next append lands on a
// valid record boundary. Recovered losses are reported in
// Stats.RecoveryTruncatedBytes, never as an error — a torn tail is
// the expected crash artifact, not a failure.
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, errors.New("eventlog: Options.Dir is required")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = defaultFsyncInterval
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("eventlog: %w", err)
	}
	l := &Log{opts: opts, notify: make(chan struct{})} // haystack:unbounded close-only append-notification edge; never carries data

	segs, err := listSegments(opts.Dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		segs = []segment{{base: 0, path: filepath.Join(opts.Dir, segName(0))}}
		f, err := os.OpenFile(segs[0].path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			return nil, fmt.Errorf("eventlog: %w", err)
		}
		if err := syncDir(opts.Dir); err != nil {
			f.Close()
			return nil, fmt.Errorf("eventlog: %w", err)
		}
		l.segs, l.active, l.next = segs, f, 0
		l.actBorn = time.Now()
	} else {
		last := &segs[len(segs)-1]
		count, valid, err := recoverSegment(last.path)
		if err != nil {
			return nil, err
		}
		f, err := os.OpenFile(last.path, os.O_RDWR, 0)
		if err != nil {
			return nil, fmt.Errorf("eventlog: %w", err)
		}
		if lost := last.size - valid; lost > 0 {
			if err := f.Truncate(valid); err != nil {
				f.Close()
				return nil, fmt.Errorf("eventlog: truncating torn tail: %w", err)
			}
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, fmt.Errorf("eventlog: %w", err)
			}
			l.truncatedByte.Store(lost)
			last.size = valid
		}
		if _, err := f.Seek(valid, io.SeekStart); err != nil {
			f.Close()
			return nil, fmt.Errorf("eventlog: %w", err)
		}
		l.segs, l.active, l.next = segs, f, last.base+count
		if st, err := f.Stat(); err == nil {
			l.actBorn = st.ModTime()
		} else {
			l.actBorn = time.Now()
		}
	}

	if opts.Fsync == FsyncTimer {
		l.done = make(chan struct{})        // haystack:unbounded close-only shutdown signal for the sync timer
		l.timerExited = make(chan struct{}) // haystack:unbounded close-only timer-exit acknowledgement
		go l.syncLoop()
	}
	return l, nil
}

// listSegments returns the directory's segment files ascending by
// base offset, sizes from stat.
func listSegments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("eventlog: %w", err)
	}
	var segs []segment
	for _, e := range entries {
		base, ok := parseSegName(e.Name())
		if !ok {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, fmt.Errorf("eventlog: %w", err)
		}
		segs = append(segs, segment{base: base, path: filepath.Join(dir, e.Name()), size: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].base < segs[j].base })
	return segs, nil
}

// recoverSegment scans a segment from the front, fully decoding every
// frame, and returns the number of valid records and the byte size of
// the valid prefix. The scan stops cleanly at the first torn or
// corrupt frame; everything after it is unreachable (frames are
// length-prefixed, so there is no resynchronization point) and will
// be truncated by the caller.
func recoverSegment(path string) (count uint64, valid int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("eventlog: %w", err)
	}
	defer f.Close()
	sc := newFrameScanner(f, -1)
	var rec Record
	for {
		payload, err := sc.next()
		if err != nil {
			// io.EOF is the clean end; anything else (torn frame, CRC
			// mismatch, oversized length) ends the valid prefix here.
			return count, valid, nil
		}
		if decodeRecord(payload, &rec) != nil {
			return count, valid, nil
		}
		count++
		valid = sc.consumed
	}
}

// frameScanner reads frames off a segment file. limit bounds the
// bytes it may consume (-1 = to EOF); the Log passes the active
// segment's complete-frame size so concurrent reads never see a
// half-written frame.
type frameScanner struct {
	r        *bufio.Reader
	limit    int64
	consumed int64
	buf      []byte
}

func newFrameScanner(r io.Reader, limit int64) *frameScanner {
	return &frameScanner{r: bufio.NewReaderSize(r, 64<<10), limit: limit}
}

// next returns the next frame's CRC-verified payload, valid until the
// following call. io.EOF marks the clean end of the scan;
// errTruncated a frame cut short; ErrCorrupt a checksum or length
// failure.
func (s *frameScanner) next() ([]byte, error) {
	if s.limit >= 0 && s.consumed >= s.limit {
		return nil, io.EOF
	}
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(s.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, errTruncated
	}
	ln := binary.BigEndian.Uint32(hdr[0:4])
	if ln > MaxRecordLen {
		return nil, errOversize(ln)
	}
	total := int64(frameHeaderLen) + int64(ln)
	if s.limit >= 0 && s.consumed+total > s.limit {
		return nil, errTruncated
	}
	if cap(s.buf) < int(ln) {
		s.buf = make([]byte, int(ln))
	}
	p := s.buf[:ln]
	if _, err := io.ReadFull(s.r, p); err != nil {
		return nil, errTruncated
	}
	if crc32.Checksum(p, castagnoli) != binary.BigEndian.Uint32(hdr[4:8]) {
		return nil, errChecksum
	}
	s.consumed += total
	return p, nil
}

var errChecksum = fmt.Errorf("%w: checksum mismatch", ErrCorrupt)

func errOversize(ln uint32) error {
	return fmt.Errorf("%w: frame declares %d bytes (max %d)", ErrCorrupt, ln, MaxRecordLen)
}

// Append writes one record and returns its offset. Durability follows
// the fsync policy; ordering and visibility to readers are immediate.
// Safe for concurrent use.
func (l *Log) Append(rec *Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	buf, err := encodeRecord(l.buf[:0], rec)
	if err != nil {
		return 0, err
	}
	l.buf = buf
	if err := l.maybeRotateLocked(); err != nil {
		return 0, err
	}
	act := &l.segs[len(l.segs)-1]
	if _, err := l.active.Write(buf); err != nil {
		// A partial frame may be on disk. Cut back to the last record
		// boundary so a later append cannot bury garbage mid-segment;
		// if even that fails, recovery at next Open does the same.
		l.active.Truncate(act.size)
		l.active.Seek(act.size, io.SeekStart)
		return 0, fmt.Errorf("eventlog: append: %w", err)
	}
	off := l.next
	l.next++
	act.size += int64(len(buf))
	l.dirty = true
	l.appended.Add(1)
	if l.opts.Fsync == FsyncEvent || (l.opts.Fsync == FsyncWindow && rec.Type == TypeWindow) {
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	}
	if l.waiters > 0 {
		close(l.notify)
		l.notify = make(chan struct{}) // haystack:unbounded close-only append-notification edge; never carries data
	}
	return off, nil
}

// maybeRotateLocked closes the active segment and opens a fresh one
// when the active segment is non-empty and over the size or age
// budget, then applies retention. Caller holds l.mu.
func (l *Log) maybeRotateLocked() error {
	act := &l.segs[len(l.segs)-1]
	if act.size == 0 {
		return nil
	}
	over := act.size >= l.opts.SegmentBytes ||
		(l.opts.SegmentAge > 0 && time.Since(l.actBorn) >= l.opts.SegmentAge)
	if !over {
		return nil
	}
	// The closing segment must be durable before it becomes immutable
	// history: rotation is the FsyncWindow/FsyncTimer backstop.
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.active.Close(); err != nil {
		return fmt.Errorf("eventlog: closing segment: %w", err)
	}
	path := filepath.Join(l.opts.Dir, segName(l.next))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("eventlog: new segment: %w", err)
	}
	if err := syncDir(l.opts.Dir); err != nil {
		f.Close()
		return fmt.Errorf("eventlog: %w", err)
	}
	l.active = f
	l.actBorn = time.Now()
	l.segs = append(l.segs, segment{base: l.next, path: path})
	l.applyRetentionLocked()
	return nil
}

// applyRetentionLocked deletes oldest closed segments past the byte
// or age budget. Deletion failures are swallowed (the segment is
// retried at the next rotation); an undeletable file must not stop
// ingest. Caller holds l.mu.
func (l *Log) applyRetentionLocked() {
	for len(l.segs) > 1 {
		var total int64
		for _, s := range l.segs {
			total += s.size
		}
		victim := l.segs[0]
		drop := l.opts.RetainBytes > 0 && total > l.opts.RetainBytes
		if !drop && l.opts.RetainAge > 0 {
			// A closed segment's mtime is its last append — the age of
			// its newest record.
			if st, err := os.Stat(victim.path); err == nil && time.Since(st.ModTime()) > l.opts.RetainAge {
				drop = true
			}
		}
		if !drop {
			return
		}
		if err := os.Remove(victim.path); err != nil {
			return
		}
		l.retainSegs.Add(1)
		l.retainRecs.Add(l.segs[1].base - victim.base)
		l.segs = l.segs[1:]
	}
}

// syncLocked flushes unsynced appends to stable storage. Caller holds
// l.mu.
func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	if err := l.active.Sync(); err != nil {
		return fmt.Errorf("eventlog: fsync: %w", err)
	}
	l.dirty = false
	l.syncs.Add(1)
	return nil
}

// Sync forces all appended records to stable storage, regardless of
// policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

// syncLoop is the FsyncTimer goroutine: sync every FsyncInterval
// until Close.
func (l *Log) syncLoop() {
	defer close(l.timerExited)
	t := time.NewTicker(l.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-l.done:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed {
				l.syncLocked() // an I/O error here resurfaces on the next Append's sync or at Close
			}
			l.mu.Unlock()
		}
	}
}

// Close syncs and closes the log. Blocked WaitAppend calls return
// ErrClosed; further appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	close(l.notify)
	l.mu.Unlock()
	if l.done != nil {
		close(l.done)
		<-l.timerExited
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	err := l.syncLocked()
	if cerr := l.active.Close(); err == nil {
		err = cerr
	}
	return err
}

// NextOffset returns the offset the next appended record will get —
// one past the newest record.
func (l *Log) NextOffset() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// OldestOffset returns the offset of the oldest retained record.
// Offsets below it were purged by retention.
func (l *Log) OldestOffset() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segs[0].base
}

// WaitAppend blocks until the log holds a record at offset off (i.e.
// NextOffset > off), the context is done, or the log closes.
func (l *Log) WaitAppend(ctx context.Context, off uint64) error {
	for {
		l.mu.Lock()
		if l.next > off {
			l.mu.Unlock()
			return nil
		}
		if l.closed {
			l.mu.Unlock()
			return ErrClosed
		}
		ch := l.notify
		l.waiters++
		l.mu.Unlock()
		select {
		case <-ctx.Done():
			l.mu.Lock()
			l.waiters--
			l.mu.Unlock()
			return ctx.Err()
		case <-ch:
			l.mu.Lock()
			l.waiters--
			l.mu.Unlock()
		}
	}
}

// ReadAt invokes fn for every record from offset `from` (clamped into
// the retained range) to the newest, in offset order, until fn
// returns false. It returns the offset the next read should start
// from: one past the last record visited, or the clamped start if
// nothing was visited. Reads run concurrently with appends and only
// ever see complete records; a mid-log integrity failure returns an
// error wrapping ErrCorrupt, and a segment deleted by retention
// mid-read returns an error wrapping os.ErrNotExist (re-read from the
// new OldestOffset).
func (l *Log) ReadAt(from uint64, fn func(off uint64, rec Record) bool) (uint64, error) {
	l.mu.Lock()
	segs := append([]segment(nil), l.segs...)
	next := l.next
	l.mu.Unlock()
	if from < segs[0].base {
		from = segs[0].base
	}
	if from >= next {
		return from, nil
	}
	// Start at the segment containing `from`: the last one whose base
	// offset does not exceed it.
	i := sort.Search(len(segs), func(i int) bool { return segs[i].base > from }) - 1
	off := segs[i].base
	var rec Record
	for ; i < len(segs); i++ {
		seg := segs[i]
		f, err := os.Open(seg.path)
		if err != nil {
			return off, fmt.Errorf("eventlog: segment purged under reader: %w", err)
		}
		sc := newFrameScanner(f, seg.size)
		for {
			payload, err := sc.next()
			if err == io.EOF {
				break
			}
			if err == nil {
				err = decodeRecord(payload, &rec)
			}
			if err != nil {
				f.Close()
				return off, fmt.Errorf("eventlog: %s record %d: %w", filepath.Base(seg.path), off-seg.base, err)
			}
			if off >= from {
				if !fn(off, rec) {
					f.Close()
					return off + 1, nil
				}
			}
			off++
		}
		f.Close()
	}
	return off, nil
}

// Stats is the log's slice of the operator metrics surface.
//
// haystack:metrics-struct — every exported field must be filled by a
// haystack:metrics-export function (enforced by haystacklint).
type Stats struct {
	// Segments and Bytes describe the on-disk footprint right now.
	Segments int   `json:"segments"`
	Bytes    int64 `json:"bytes"`
	// OldestOffset and NextOffset bound the retained record range
	// [oldest, next).
	OldestOffset uint64 `json:"oldest_offset"`
	NextOffset   uint64 `json:"next_offset"`
	// AppendedRecords and Syncs count appends and fsyncs since Open.
	AppendedRecords uint64 `json:"appended_records"`
	Syncs           uint64 `json:"syncs"`
	// RecoveryTruncatedBytes is how many torn-tail bytes Open cut off
	// — nonzero exactly when the previous process died mid-append.
	RecoveryTruncatedBytes int64 `json:"recovery_truncated_bytes"`
	// RetentionSegments and RetentionRecords count what retention has
	// deleted since Open.
	RetentionSegments uint64 `json:"retention_segments"`
	RetentionRecords  uint64 `json:"retention_records"`
}

// Stats snapshots the log's health counters. Safe to call at any
// time.
//
// haystack:metrics-export
func (l *Log) Stats() Stats {
	l.mu.Lock()
	st := Stats{
		Segments:     len(l.segs),
		OldestOffset: l.segs[0].base,
		NextOffset:   l.next,
	}
	for _, s := range l.segs {
		st.Bytes += s.size
	}
	l.mu.Unlock()
	st.AppendedRecords = l.appended.Load()
	st.Syncs = l.syncs.Load()
	st.RecoveryTruncatedBytes = l.truncatedByte.Load()
	st.RetentionSegments = l.retainSegs.Load()
	st.RetentionRecords = l.retainRecs.Load()
	return st
}

// syncDir fsyncs a directory so created or deleted segment entries
// survive a crash. Filesystems that cannot sync a directory handle
// are tolerated, exactly as in the export path — the entry operation
// itself has already happened.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	if errors.Is(serr, syscall.EINVAL) || errors.Is(serr, syscall.ENOTSUP) ||
		errors.Is(serr, syscall.EOPNOTSUPP) || errors.Is(serr, syscall.ENOTTY) {
		return nil
	}
	return serr
}
