package eventlog

// FuzzSegmentRecovery: crash-recovery over arbitrary segment bytes.
// Whatever ends up in a segment file — a torn append, a bit flip from
// bad hardware, or outright garbage — Open must neither panic nor
// silently skip past damage: it recovers exactly the longest valid
// frame prefix of the file, truncates the rest, and leaves the log
// appendable. The oracle is the frame scanner itself run over the raw
// bytes, so the invariant holds for every input the fuzzer invents.

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// canonicalSegment builds a small valid log and returns its single
// segment's bytes.
func canonicalSegment(tb testing.TB) []byte {
	tb.Helper()
	dir := tb.TempDir()
	l, err := Open(Options{Dir: dir})
	if err != nil {
		tb.Fatal(err)
	}
	first := time.Date(2019, time.November, 15, 9, 0, 0, 0, time.UTC)
	for i := 0; i < 4; i++ {
		rec := Record{Type: TypeEvent, Event: Event{
			Subscriber: uint64(i + 1), Rule: "Meross Dooropener", Level: "Man.",
			First: first, Window: 0,
		}}
		if _, err := l.Append(&rec); err != nil {
			tb.Fatal(err)
		}
	}
	marker := Record{Type: TypeWindow, Window: WindowMarker{
		Seq: 0, Start: first, End: first.Add(time.Hour),
		Subscribers: 4, DetectedSubscribers: 4,
		RuleCounts: map[string]int{"Meross Dooropener": 4},
	}}
	if _, err := l.Append(&marker); err != nil {
		tb.Fatal(err)
	}
	if err := l.Close(); err != nil {
		tb.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "00000000000000000000.seg"))
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// expectedPrefix scans raw segment bytes the way recovery must: frame
// by frame, stopping at the first torn, corrupt, or undecodable
// frame. It returns the decoded records and how many bytes they span.
func expectedPrefix(raw []byte) (recs []Record, valid int64) {
	sc := newFrameScanner(bytes.NewReader(raw), -1)
	for {
		payload, err := sc.next()
		if err != nil {
			return recs, valid
		}
		var rec Record
		if decodeRecord(payload, &rec) != nil {
			return recs, valid
		}
		recs = append(recs, rec)
		valid = sc.consumed
	}
}

func FuzzSegmentRecovery(f *testing.F) {
	seg := canonicalSegment(f)
	f.Add(seg)
	f.Add([]byte{})
	f.Add(seg[:len(seg)/2])     // torn mid-frame
	f.Add(seg[:len(seg)-1])     // torn one byte short
	flipped := bytes.Clone(seg) // mid-log bit flip
	flipped[len(flipped)/3] ^= 0x10
	f.Add(flipped)
	short := bytes.Clone(seg) // length field corrupted
	short[0] ^= 0x80
	f.Add(short)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "00000000000000000000.seg"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		wantRecs, wantValid := expectedPrefix(data)

		l, err := Open(Options{Dir: dir})
		if err != nil {
			// Open may refuse a directory it cannot recover, but it must
			// not half-open it.
			return
		}
		defer l.Close()

		// No silent skip, no invention: the readable records are exactly
		// the valid prefix of the original bytes.
		var got []Record
		if _, err := l.ReadAt(0, func(_ uint64, rec Record) bool {
			cp := rec
			got = append(got, cp)
			return true
		}); err != nil {
			t.Fatalf("ReadAt after recovery: %v", err)
		}
		if len(got) != len(wantRecs) {
			t.Fatalf("recovered %d records, scan of the raw bytes yields %d", len(got), len(wantRecs))
		}
		for i := range got {
			if !recordsEqual(&got[i], &wantRecs[i]) {
				t.Fatalf("record %d diverges after recovery:\ngot  %+v\nwant %+v", i, got[i], wantRecs[i])
			}
		}
		if st := l.Stats(); st.RecoveryTruncatedBytes != int64(len(data))-wantValid {
			t.Fatalf("RecoveryTruncatedBytes = %d, want %d (of %d raw bytes, %d valid)",
				st.RecoveryTruncatedBytes, int64(len(data))-wantValid, len(data), wantValid)
		}
		if l.NextOffset() != uint64(len(wantRecs)) {
			t.Fatalf("NextOffset = %d after recovering %d records", l.NextOffset(), len(wantRecs))
		}

		// The recovered log is appendable and the append lands right
		// after the valid prefix.
		rec := Record{Type: TypeEvent, Event: Event{
			Subscriber: 7, Rule: "post-recovery", Level: "Pl.",
			First: time.Unix(0, 0).UTC(), Window: 9,
		}}
		off, err := l.Append(&rec)
		if err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if off != uint64(len(wantRecs)) {
			t.Fatalf("post-recovery append at offset %d, want %d", off, len(wantRecs))
		}
		n := 0
		if _, err := l.ReadAt(0, func(_ uint64, _ Record) bool { n++; return true }); err != nil {
			t.Fatalf("ReadAt after post-recovery append: %v", err)
		}
		if n != len(wantRecs)+1 {
			t.Fatalf("log holds %d records after append, want %d", n, len(wantRecs)+1)
		}
	})
}

// recordsEqual compares two records including the marker's RuleCounts
// map.
func recordsEqual(a, b *Record) bool { return reflect.DeepEqual(a, b) }
