package eventlog

// Follower reads a log directory that another process is writing —
// the local-dir mode of `haystack tail`. It holds no lock and no
// shared state with the writer, so it cannot know the writer's
// complete-frame high-water mark; instead it treats any invalid frame
// at the very tail of the newest segment as "not written yet" and
// simply stops there, retrying on the next Poll. An invalid frame
// anywhere else is real corruption and is reported.

import (
	"errors"
	"fmt"
	"io"
	"os"
)

// Follower is a poll-based reader of a live log directory. Not safe
// for concurrent use; run one Follower per consumer.
type Follower struct {
	dir string
	off uint64
	// skipped counts records the follower could not deliver because
	// retention deleted them before it caught up.
	skipped uint64
}

// NewFollower follows dir starting at offset from.
func NewFollower(dir string, from uint64) *Follower {
	return &Follower{dir: dir, off: from}
}

// Offset returns the next offset Poll will deliver.
func (f *Follower) Offset() uint64 { return f.off }

// Skipped returns how many records retention purged before the
// follower reached them.
func (f *Follower) Skipped() uint64 { return f.skipped }

// Poll delivers every currently-readable record from the follower's
// offset onward, in order, until fn returns false, then returns. A
// clean tail (caught up with the writer, possibly mid-append) returns
// nil; callers wait and Poll again. Corruption before the tail
// returns an error wrapping ErrCorrupt.
func (f *Follower) Poll(fn func(off uint64, rec Record) bool) error {
	segs, err := listSegments(f.dir)
	if err != nil {
		return err
	}
	if len(segs) == 0 {
		return nil
	}
	if f.off < segs[0].base {
		f.skipped += segs[0].base - f.off
		f.off = segs[0].base
	}
	// Segments that could hold f.off or later: the one containing it
	// and everything after. f.off past the end of the newest segment
	// means we are caught up.
	i := 0
	for i+1 < len(segs) && segs[i+1].base <= f.off {
		i++
	}
	for ; i < len(segs); i++ {
		seg := segs[i]
		last := i == len(segs)-1
		file, err := os.Open(seg.path)
		if errors.Is(err, os.ErrNotExist) {
			// Retention raced us: this segment (and our offset with
			// it) is gone. Re-list on the next Poll.
			return nil
		}
		if err != nil {
			return err
		}
		err = f.pollSegment(file, seg, last, fn)
		file.Close()
		if err == errStopped {
			return nil
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// errStopped is pollSegment's signal that fn asked to stop.
var errStopped = errors.New("eventlog: follower stopped")

// pollSegment scans one segment, delivering records at or past f.off.
// In the last (active) segment a torn or corrupt tail frame marks the
// writer's in-progress append and ends the scan silently; in closed
// segments it is corruption.
func (f *Follower) pollSegment(file *os.File, seg segment, last bool, fn func(off uint64, rec Record) bool) error {
	sc := newFrameScanner(file, -1)
	off := seg.base
	var rec Record
	for {
		payload, err := sc.next()
		if err == io.EOF {
			return nil
		}
		if err == nil {
			err = decodeRecord(payload, &rec)
		}
		if err != nil {
			if last {
				// The writer may be mid-append; what looks torn now
				// will be complete on the next Poll. Stop cleanly
				// without advancing past it.
				return nil
			}
			return fmt.Errorf("eventlog: %s record %d: %w", seg.path, off-seg.base, err)
		}
		if off >= f.off {
			if !fn(off, rec) {
				f.off = off + 1
				return errStopped
			}
			f.off = off + 1
		}
		off++
	}
}
