package detect

import (
	"sort"

	"repro/internal/simtime"
)

// Detection is one (subscriber, rule) detection event.
type Detection struct {
	Sub   SubID
	Rule  int
	First simtime.Hour
}

// Snapshot is an immutable summary of an engine's detections at one
// point in time. Snapshots taken from engines that track disjoint
// subscriber sets (shards) merge losslessly with Merge, which is how
// the sharded pipeline exposes a single coherent view.
type Snapshot struct {
	detections []int // per-rule detected-subscriber counts
	any        int   // subscribers with at least one fired rule
	subs       int   // tracked subscribers
	list       []Detection
	ruleFirst  []simtime.Hour // earliest firing hour per rule
	ruleFired  []bool
}

// Snapshot captures the engine's current detections. The engine may
// continue to mutate afterwards; the snapshot does not.
func (e *Engine) Snapshot() *Snapshot {
	s := &Snapshot{
		detections: append([]int(nil), e.detections...),
		subs:       len(e.subs),
		ruleFirst:  make([]simtime.Hour, len(e.dict.Rules)),
		ruleFired:  make([]bool, len(e.dict.Rules)),
	}
	for sub, st := range e.subs {
		any := false
		for i := range st.states {
			rs := &st.states[i]
			if !rs.detected {
				continue
			}
			any = true
			s.list = append(s.list, Detection{Sub: sub, Rule: rs.rule, First: rs.firstHour})
			if !s.ruleFired[rs.rule] || rs.firstHour < s.ruleFirst[rs.rule] {
				s.ruleFired[rs.rule] = true
				s.ruleFirst[rs.rule] = rs.firstHour
			}
		}
		if any {
			s.any++
		}
	}
	sortDetections(s.list)
	return s
}

// Merge combines snapshots taken from engines with disjoint subscriber
// sets into one. It returns an empty snapshot for no arguments.
func Merge(parts ...*Snapshot) *Snapshot {
	out := &Snapshot{}
	for _, p := range parts {
		if p == nil {
			continue
		}
		if len(out.detections) < len(p.detections) {
			out.detections = append(out.detections, make([]int, len(p.detections)-len(out.detections))...)
			out.ruleFirst = append(out.ruleFirst, make([]simtime.Hour, len(p.ruleFirst)-len(out.ruleFirst))...)
			out.ruleFired = append(out.ruleFired, make([]bool, len(p.ruleFired)-len(out.ruleFired))...)
		}
		for i, n := range p.detections {
			out.detections[i] += n
		}
		for i, fired := range p.ruleFired {
			if fired && (!out.ruleFired[i] || p.ruleFirst[i] < out.ruleFirst[i]) {
				out.ruleFired[i] = true
				out.ruleFirst[i] = p.ruleFirst[i]
			}
		}
		out.any += p.any
		out.subs += p.subs
		out.list = append(out.list, p.list...)
	}
	sortDetections(out.list)
	return out
}

func sortDetections(list []Detection) {
	sort.Slice(list, func(i, j int) bool {
		if list[i].Sub != list[j].Sub {
			return list[i].Sub < list[j].Sub
		}
		return list[i].Rule < list[j].Rule
	})
}

// CountDetected returns how many subscribers the rule fired for.
func (s *Snapshot) CountDetected(rule int) int {
	if rule < 0 || rule >= len(s.detections) {
		return 0
	}
	return s.detections[rule]
}

// CountAnyDetected returns how many subscribers have at least one fired
// rule.
func (s *Snapshot) CountAnyDetected() int { return s.any }

// Subscribers returns the number of tracked subscribers.
func (s *Snapshot) Subscribers() int { return s.subs }

// RuleFirstDetection returns the earliest hour the rule fired for any
// subscriber, and whether it fired at all.
func (s *Snapshot) RuleFirstDetection(rule int) (simtime.Hour, bool) {
	if rule < 0 || rule >= len(s.ruleFired) || !s.ruleFired[rule] {
		return 0, false
	}
	return s.ruleFirst[rule], true
}

// EachDetected visits every detection in (subscriber, rule) order.
func (s *Snapshot) EachDetected(fn func(sub SubID, rule int, first simtime.Hour)) {
	for _, d := range s.list {
		fn(d.Sub, d.Rule, d.First)
	}
}

// Detections returns the detections in (subscriber, rule) order. The
// caller must not modify the returned slice.
func (s *Snapshot) Detections() []Detection { return s.list }
