package detect

import (
	"net/netip"
	"reflect"
	"testing"

	"repro/internal/simrand"
	"repro/internal/simtime"
)

// obsStream builds a mixed observation stream over real dictionary
// endpoints: runs of same-subscriber observations (the shape the
// pipeline produces), interleaved with misses and subscriber changes.
func obsStream(t *testing.T, n int) ([]Obs, *Engine, *Engine) {
	t.Helper()
	dict, w := testDict(t)
	days := w.Window.Days()
	var endpoints []struct {
		ip   netip.Addr
		port uint16
	}
	for _, name := range w.Catalog.DomainNames() {
		d := w.Catalog.Domains[name]
		for _, ip := range w.ResolverOn(days[0]).Resolve(name) {
			endpoints = append(endpoints, struct {
				ip   netip.Addr
				port uint16
			}{ip, d.Port})
		}
	}
	if len(endpoints) == 0 {
		t.Fatal("no resolvable endpoints")
	}
	rng := simrand.New(4242)
	obs := make([]Obs, 0, n)
	sub := SubID(1)
	for len(obs) < n {
		if rng.Intn(4) == 0 {
			sub = SubID(1 + rng.Intn(40))
		}
		ep := endpoints[rng.Intn(len(endpoints))]
		o := Obs{
			Sub:  sub,
			Hour: w.Window.Start + simtime.Hour(rng.Intn(48)),
			IP:   ep.ip,
			Port: ep.port,
			Pkts: uint64(1 + rng.Intn(3)),
		}
		if rng.Intn(8) == 0 {
			o.Port++ // dictionary miss
		}
		obs = append(obs, o)
	}
	return obs, New(dict, 0.4), New(dict, 0.4)
}

type fireEvent struct {
	sub  SubID
	rule int
	h    simtime.Hour
}

// ObserveBatch must be observably identical to an Observe loop: the
// same OnFire sequence and the same final engine statistics.
func TestObserveBatchMatchesObserveLoop(t *testing.T) {
	obs, eA, eB := obsStream(t, 4000)

	var firesA, firesB []fireEvent
	eA.OnFire = func(sub SubID, rule int, h simtime.Hour) {
		firesA = append(firesA, fireEvent{sub, rule, h})
	}
	eB.OnFire = func(sub SubID, rule int, h simtime.Hour) {
		firesB = append(firesB, fireEvent{sub, rule, h})
	}

	for i := range obs {
		o := &obs[i]
		eA.Observe(o.Sub, o.Hour, o.IP, o.Port, o.Pkts)
	}
	// Feed the same stream in uneven batch slices.
	for i := 0; i < len(obs); {
		n := min(1+i%97, len(obs)-i)
		eB.ObserveBatch(obs[i : i+n])
		i += n
	}

	if !reflect.DeepEqual(firesA, firesB) {
		t.Fatalf("OnFire sequences diverged: loop %d events, batch %d events", len(firesA), len(firesB))
	}
	if a, b := eA.Subscribers(), eB.Subscribers(); a != b {
		t.Fatalf("subscriber counts diverged: %d vs %d", a, b)
	}
	for rule := 0; rule < len(eA.dict.Rules); rule++ {
		if a, b := eA.CountDetected(rule), eB.CountDetected(rule); a != b {
			t.Fatalf("rule %d detections diverged: %d vs %d", rule, a, b)
		}
	}
	for _, ev := range firesA {
		if pa, pb := eA.RulePackets(ev.sub, ev.rule), eB.RulePackets(ev.sub, ev.rule); pa != pb {
			t.Fatalf("packets for (%d,%d) diverged: %d vs %d", ev.sub, ev.rule, pa, pb)
		}
	}
}

// Once subscribers and rule states exist, the batch observe path must
// not allocate: the engine's per-record work is map reads, association
// list walks, and integer updates.
func TestObserveBatchZeroAllocs(t *testing.T) {
	obs, e, _ := obsStream(t, 512)
	e.ObserveBatch(obs) // warm: create subscriber + rule states
	allocs := testing.AllocsPerRun(100, func() {
		e.ObserveBatch(obs)
	})
	if allocs != 0 {
		t.Fatalf("steady-state ObserveBatch allocates %v allocs/run, want 0", allocs)
	}
}
