package detect

import (
	"reflect"
	"testing"

	"repro/internal/simtime"
)

func TestSnapshotMatchesEngine(t *testing.T) {
	dict, w := testDict(t)
	e := New(dict, 0.4)
	h := w.Window.Start
	feed(t, e, w, 1, h, "mqtt.simmeross.example")
	feed(t, e, w, 2, h+3, "api.simnetatmo.example")
	feed(t, e, w, 2, h+5, "mqtt.simmeross.example")

	s := e.Snapshot()
	if s.CountAnyDetected() != e.CountAnyDetected() {
		t.Fatalf("CountAnyDetected %d != %d", s.CountAnyDetected(), e.CountAnyDetected())
	}
	if s.Subscribers() != e.Subscribers() {
		t.Fatalf("Subscribers %d != %d", s.Subscribers(), e.Subscribers())
	}
	meross := dict.RuleIndex("Meross Dooropener")
	if s.CountDetected(meross) != e.CountDetected(meross) {
		t.Fatalf("CountDetected %d != %d", s.CountDetected(meross), e.CountDetected(meross))
	}
	if first, ok := s.RuleFirstDetection(meross); !ok || first != h {
		t.Fatalf("RuleFirstDetection = %v, %v; want %v, true", first, ok, h)
	}
	// Snapshots are immutable: further engine activity must not leak in.
	feed(t, e, w, 9, h, "mqtt.simmeross.example")
	if s.CountDetected(meross) == e.CountDetected(meross) {
		t.Fatal("snapshot tracked engine mutation")
	}
}

func TestSnapshotMergeDisjointShards(t *testing.T) {
	dict, w := testDict(t)
	h := w.Window.Start

	// One engine fed everything vs two engines fed a disjoint split.
	all := New(dict, 0.4)
	a := New(dict, 0.4)
	b := New(dict, 0.4)
	type ev struct {
		sub    SubID
		h      simtime.Hour
		domain string
	}
	evs := []ev{
		{1, h, "mqtt.simmeross.example"},
		{2, h + 3, "api.simnetatmo.example"},
		{3, h + 1, "mqtt.simmeross.example"},
		{2, h + 4, "mqtt.simmeross.example"},
	}
	for _, v := range evs {
		feed(t, all, w, v.sub, v.h, v.domain)
		if v.sub%2 == 0 {
			feed(t, a, w, v.sub, v.h, v.domain)
		} else {
			feed(t, b, w, v.sub, v.h, v.domain)
		}
	}
	merged := Merge(a.Snapshot(), b.Snapshot())
	want := all.Snapshot()
	if !reflect.DeepEqual(merged.Detections(), want.Detections()) {
		t.Fatalf("merged detections %v != %v", merged.Detections(), want.Detections())
	}
	if merged.CountAnyDetected() != want.CountAnyDetected() ||
		merged.Subscribers() != want.Subscribers() {
		t.Fatalf("merged aggregates differ: any %d/%d subs %d/%d",
			merged.CountAnyDetected(), want.CountAnyDetected(),
			merged.Subscribers(), want.Subscribers())
	}
	for ri := range dict.Rules {
		if merged.CountDetected(ri) != want.CountDetected(ri) {
			t.Fatalf("rule %d count %d != %d", ri, merged.CountDetected(ri), want.CountDetected(ri))
		}
		mh, mok := merged.RuleFirstDetection(ri)
		wh, wok := want.RuleFirstDetection(ri)
		if mh != wh || mok != wok {
			t.Fatalf("rule %d first detection %v,%v != %v,%v", ri, mh, mok, wh, wok)
		}
	}
}

func TestMergeEmpty(t *testing.T) {
	s := Merge()
	if s.CountAnyDetected() != 0 || s.Subscribers() != 0 || len(s.Detections()) != 0 {
		t.Fatal("empty merge not empty")
	}
	if _, ok := s.RuleFirstDetection(0); ok {
		t.Fatal("empty merge has a first detection")
	}
}
