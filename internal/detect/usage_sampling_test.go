package detect

import (
	"testing"

	"repro/internal/sampling"
	"repro/internal/simrand"
)

// TestActiveUseBoundaryUnderSampling pins the documented interaction
// between the §7.1 usage threshold and vantage-point sampling: the
// threshold applies to SAMPLED packet counts, full stop. A device
// emitting exactly UsageThreshold (10) raw packets per hour is active
// use when observed unsampled — the bound is inclusive — but under
// 1-in-100 sampling the engine sees the thinned count, so:
//
//   - detection (domain-bit evidence) survives exactly when at least
//     one packet is sampled — nothing flips silently, the flow is
//     simply invisible when every packet is dropped (RulePackets == 0
//     makes that auditable), and
//   - active use requires >= 10 SAMPLED packets, which for a raw
//     10-packet flow means all ten survive 1-in-100 sampling
//     (P = 10^-20) — operationally never.
//
// The adversary harness's evasive scenario leans on exactly this
// contract (it paces flows to UsageThreshold-1 raw packets); if the
// semantics ever change to rescale sampled counts back to raw rates,
// this test is the tripwire that forces that decision to be explicit.
func TestActiveUseBoundaryUnderSampling(t *testing.T) {
	dict, w := testDict(t)
	h := w.Window.Start
	ips := w.ResolverOn(h.Day()).Resolve("avs-alexa.simamazon.example")
	if len(ips) == 0 {
		t.Fatal("avs-alexa.simamazon.example does not resolve")
	}
	alexa := dict.RuleIndex("Alexa Enabled")

	// Unsampled: exactly 10 raw packets is active use (inclusive), 9 is
	// not — the boundary itself.
	for _, tc := range []struct {
		pkts uint64
		want bool
	}{{9, false}, {10, true}, {11, true}} {
		e := New(dict, 0.4)
		e.Observe(1, h, ips[0], 443, tc.pkts)
		if !e.Detected(1, alexa) {
			t.Fatalf("%d unsampled packets: not detected", tc.pkts)
		}
		if got := e.ActiveUse(1, alexa); got != tc.want {
			t.Fatalf("%d unsampled packets: ActiveUse = %v, want %v", tc.pkts, got, tc.want)
		}
	}

	// Sampled at 1-in-100: feed the thinned count, as every sampling
	// vantage point in the repo does. Track how often detection and
	// active use survive.
	rng := simrand.New(42)
	const trials = 4000
	detected, active := 0, 0
	for i := 0; i < trials; i++ {
		e := New(dict, 0.4)
		s := sampling.Thin(rng, UsageThreshold, 100)
		if s > 0 {
			e.Observe(1, h, ips[0], 443, s)
		}
		if e.Detected(1, alexa) {
			detected++
			if s == 0 {
				t.Fatal("detected with zero sampled packets")
			}
		} else if s > 0 {
			t.Fatalf("one sampled packet (%d) did not detect", s)
		}
		if e.ActiveUse(1, alexa) {
			active++
			if s < UsageThreshold {
				t.Fatalf("ActiveUse with %d sampled packets (< %d)", s, UsageThreshold)
			}
		}
	}

	// Detection survives iff >= 1 of the 10 packets is sampled:
	// P = 1 - 0.99^10 ≈ 0.0956.
	frac := float64(detected) / trials
	if frac < 0.06 || frac > 0.14 {
		t.Errorf("sampled detection fraction %v, want ~0.096 (1 - 0.99^10)", frac)
	}
	// Active use needs all 10 packets sampled (P = 10^-20): observing
	// it would mean the threshold was rescaled to raw rates.
	if active != 0 {
		t.Errorf("a 10-packet/h device was flagged active under 1-in-100 sampling %d times; "+
			"the documented contract is sampled-count thresholding", active)
	}
}
