// Package detect implements the streaming detection engine that applies
// the compiled IoT dictionary to sampled flow records (§5–§6).
//
// The engine is keyed by an opaque subscriber identifier — an
// anonymized subscriber-line hash at the ISP, a source address hash at
// the IXP — and tracks, per (subscriber, rule), which monitored domains
// have been evidenced. A rule fires once the §4.3.2 evidence
// requirement max(1, ⌊D·N⌋) is met, subject to the rule hierarchy
// (Samsung TV requires Samsung IoT confirmed first).
//
// Aggregation windows are the caller's concern: run one engine per
// hour/day/fortnight and Reset between bins, exactly like the paper's
// hourly and daily summaries.
package detect

import (
	"math/bits"
	"net/netip"

	"repro/internal/rules"
	"repro/internal/simtime"
)

// SubID is an opaque subscriber identifier.
type SubID uint64

// bitset covers up to 128 monitored domains per rule (Fire TV needs 67).
type bitset [2]uint64

func (b *bitset) set(i int) { b[i>>6] |= 1 << (i & 63) }

func (b *bitset) count() int {
	return bits.OnesCount64(b[0]) + bits.OnesCount64(b[1])
}

// ruleState is per-(subscriber, rule) evidence. Subscribers touch very
// few rules, so states live in a small association list.
type ruleState struct {
	rule      int
	bits      bitset
	pkts      uint64       // sampled packets attributed to the rule
	firstHour simtime.Hour // first hour the rule fired (0 = not yet)
	detected  bool
}

type subState struct {
	states []ruleState
}

func (s *subState) get(rule int) *ruleState {
	for i := range s.states {
		if s.states[i].rule == rule {
			return &s.states[i]
		}
	}
	s.states = append(s.states, ruleState{rule: rule})
	return &s.states[len(s.states)-1]
}

func (s *subState) lookup(rule int) *ruleState {
	for i := range s.states {
		if s.states[i].rule == rule {
			return &s.states[i]
		}
	}
	return nil
}

// Engine applies a dictionary at a fixed detection threshold.
// Not safe for concurrent use; shard subscribers across engines for
// parallel processing.
type Engine struct {
	dict *rules.Dictionary
	// D is the detection threshold of §4.3.2.
	D       float64
	minDoms []int
	subs    map[SubID]*subState
	// detections counts currently-detected subscribers per rule.
	detections []int

	// OnFire, when non-nil, is called synchronously at the moment a
	// rule crosses its evidence threshold for a subscriber — exactly
	// once per (subscriber, rule) per aggregation bin, including rules
	// released transitively by a newly-confirmed parent. It fires in
	// addition to (and in the same order as) Observe's returned slice.
	// The callback runs inside Observe and must not call back into the
	// engine; hand the event to a queue for anything heavier than a
	// counter.
	OnFire func(sub SubID, rule int, h simtime.Hour)
}

// New returns an engine with detection threshold d. The paper's
// conservative default is 0.4.
func New(dict *rules.Dictionary, d float64) *Engine {
	e := &Engine{dict: dict, D: d}
	e.minDoms = make([]int, len(dict.Rules))
	for i := range dict.Rules {
		e.minDoms[i] = dict.Rules[i].MinDomains(d)
	}
	e.Reset()
	return e
}

// Reset clears all subscriber state (start of a new aggregation bin).
func (e *Engine) Reset() {
	e.subs = make(map[SubID]*subState)
	e.detections = make([]int, len(e.dict.Rules))
}

// Dictionary returns the engine's dictionary.
func (e *Engine) Dictionary() *rules.Dictionary { return e.dict }

// Observe feeds one sampled flow observation: subscriber sub exchanged
// pkts sampled packets with service endpoint (ip, port) during hour h.
// Returns the rules that newly fired on this observation.
func (e *Engine) Observe(sub SubID, h simtime.Hour, ip netip.Addr, port uint16, pkts uint64) []int {
	targets := e.dict.Lookup(h.Day(), ip, port)
	if len(targets) == 0 {
		return nil
	}
	st := e.subs[sub]
	if st == nil {
		st = &subState{}
		e.subs[sub] = st
	}
	var fired []int
	for _, t := range targets {
		rs := st.get(t.Rule)
		rs.bits.set(t.Bit)
		rs.pkts += pkts
		fired = e.evaluate(sub, st, t.Rule, h, fired)
	}
	return fired
}

// Obs is one sampled flow observation: subscriber Sub exchanged Pkts
// sampled packets with service endpoint (IP, Port) during Hour. It is
// the element type of the batch observe path (internal/pipeline
// aliases it), laid out once here so batches cross the pipeline
// boundary without conversion.
type Obs struct {
	Sub  SubID
	Hour simtime.Hour
	IP   netip.Addr
	Port uint16
	Pkts uint64
}

// ObserveBatch feeds a batch of observations. It is semantically
// identical to calling Observe for each element in order — OnFire
// fires for exactly the same (subscriber, rule, hour) sequence — but
// amortizes per-record costs: the subscriber-state map lookup is
// hoisted across runs of consecutive same-subscriber observations,
// the common shape after a decoded flow batch is partitioned by
// shard. Newly-fired rules are reported only through OnFire.
//
// haystack:hotpath — runs once per shard batch, the innermost loop of
// the socket-to-detection path.
func (e *Engine) ObserveBatch(obs []Obs) {
	var (
		cur SubID
		st  *subState
	)
	for i := range obs {
		o := &obs[i]
		targets := e.dict.Lookup(o.Hour.Day(), o.IP, o.Port)
		if len(targets) == 0 {
			continue
		}
		if st == nil || o.Sub != cur {
			cur = o.Sub
			st = e.subs[cur]
			if st == nil {
				st = &subState{}
				e.subs[cur] = st
			}
		}
		for _, t := range targets {
			rs := st.get(t.Rule)
			rs.bits.set(t.Bit)
			rs.pkts += o.Pkts
			e.evaluate(cur, st, t.Rule, o.Hour, nil)
		}
	}
}

// evaluate re-checks a rule (and its dependents) after new evidence.
func (e *Engine) evaluate(sub SubID, st *subState, rule int, h simtime.Hour, fired []int) []int {
	rs := st.lookup(rule)
	if rs == nil || rs.detected {
		return fired
	}
	if rs.bits.count() < e.minDoms[rule] {
		return fired
	}
	r := &e.dict.Rules[rule]
	if r.RequireParent && r.Parent >= 0 {
		ps := st.lookup(r.Parent)
		if ps == nil || !ps.detected {
			return fired
		}
	}
	rs.detected = true
	rs.firstHour = h
	e.detections[rule]++
	fired = append(fired, rule)
	if e.OnFire != nil {
		e.OnFire(sub, rule, h)
	}
	// A newly-confirmed parent may release children waiting on it.
	for i := range e.dict.Rules {
		if e.dict.Rules[i].RequireParent && e.dict.Rules[i].Parent == rule {
			fired = e.evaluate(sub, st, i, h, fired)
		}
	}
	return fired
}

// Restore marks (sub, rule) as already detected with the given first
// detection hour, without evidence bits and without firing OnFire —
// the replay path rebuilding a window from a durable event log. A
// restored detection behaves exactly like a fired one: evaluate skips
// it (no double fire when live evidence arrives) and children gated
// on RequireParent see the parent as confirmed. Restoring an
// already-detected pair is a no-op, so replays are idempotent.
func (e *Engine) Restore(sub SubID, rule int, first simtime.Hour) {
	if rule < 0 || rule >= len(e.dict.Rules) {
		return
	}
	st := e.subs[sub]
	if st == nil {
		st = &subState{}
		e.subs[sub] = st
	}
	rs := st.get(rule)
	if rs.detected {
		return
	}
	rs.detected = true
	rs.firstHour = first
	e.detections[rule]++
}

// Detected reports whether the rule has fired for the subscriber.
func (e *Engine) Detected(sub SubID, rule int) bool {
	st := e.subs[sub]
	if st == nil {
		return false
	}
	rs := st.lookup(rule)
	return rs != nil && rs.detected
}

// FirstDetection returns the hour a rule first fired for a subscriber
// and whether it fired at all.
func (e *Engine) FirstDetection(sub SubID, rule int) (simtime.Hour, bool) {
	st := e.subs[sub]
	if st == nil {
		return 0, false
	}
	rs := st.lookup(rule)
	if rs == nil || !rs.detected {
		return 0, false
	}
	return rs.firstHour, true
}

// CountDetected returns how many subscribers the rule currently fires
// for.
func (e *Engine) CountDetected(rule int) int {
	if rule < 0 || rule >= len(e.detections) {
		return 0
	}
	return e.detections[rule]
}

// CountAnyDetected returns how many subscribers have at least one
// fired rule.
func (e *Engine) CountAnyDetected() int {
	n := 0
	for _, st := range e.subs {
		for i := range st.states {
			if st.states[i].detected {
				n++
				break
			}
		}
	}
	return n
}

// Subscribers returns the number of tracked subscribers (those with at
// least one dictionary hit).
func (e *Engine) Subscribers() int { return len(e.subs) }

// RulePackets returns the sampled packets attributed to (sub, rule) so
// far in this bin — the §7.1 usage signal (threshold 10/hour for
// "actively used").
func (e *Engine) RulePackets(sub SubID, rule int) uint64 {
	st := e.subs[sub]
	if st == nil {
		return 0
	}
	rs := st.lookup(rule)
	if rs == nil {
		return 0
	}
	return rs.pkts
}

// EachDetected visits every (subscriber, rule) detection.
func (e *Engine) EachDetected(fn func(sub SubID, rule int, first simtime.Hour)) {
	for sub, st := range e.subs {
		for i := range st.states {
			if st.states[i].detected {
				fn(sub, st.states[i].rule, st.states[i].firstHour)
			}
		}
	}
}

// UsageThreshold is the §7.1 packets/hour threshold: a detected device
// whose sampled packet count reaches it ("threshold 10/hour") counts as
// actively used.
const UsageThreshold = 10

// ActiveUse reports whether the rule's sampled packet count for the
// subscriber in this bin meets or exceeds UsageThreshold. The bound is
// inclusive: exactly 10 sampled packets in an hour is active use.
func (e *Engine) ActiveUse(sub SubID, rule int) bool {
	return e.RulePackets(sub, rule) >= UsageThreshold
}
