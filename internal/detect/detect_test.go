package detect

import (
	"net/netip"
	"reflect"
	"testing"

	"repro/internal/classify"
	"repro/internal/dedicated"
	"repro/internal/rules"
	"repro/internal/simtime"
	"repro/internal/world"
)

func testDict(t testing.TB) (*rules.Dictionary, *world.World) {
	w := world.MustBuild(1)
	days := w.Window.Days()
	pipe := dedicated.New(w.PDNS, w.Scans, days[0], days[len(days)-1])
	iot := classify.DefaultKB().ClassifyAll(w.Catalog.DomainNames()).IoTSpecific()
	census := pipe.ClassifyAll(iot)
	dict, err := rules.Compile(w.Catalog, census, w.PDNS, days)
	if err != nil {
		t.Fatal(err)
	}
	return dict, w
}

// feed sends one sampled packet for the domain's current address.
func feed(t testing.TB, e *Engine, w *world.World, sub SubID, h simtime.Hour, domain string) []int {
	t.Helper()
	day := h.Day()
	ips := w.ResolverOn(day).Resolve(domain)
	if len(ips) == 0 {
		t.Fatalf("%s does not resolve", domain)
	}
	d := w.Catalog.Domains[domain]
	return e.Observe(sub, h, ips[0], d.Port, 1)
}

func TestSingleDomainRuleFiresImmediately(t *testing.T) {
	dict, w := testDict(t)
	e := New(dict, 0.4)
	h := w.Window.Start
	fired := feed(t, e, w, 7, h, "mqtt.simmeross.example")
	ri := dict.RuleIndex("Meross Dooropener")
	found := false
	for _, f := range fired {
		if f == ri {
			found = true
		}
	}
	if !found {
		t.Fatalf("Meross rule did not fire; fired=%v", fired)
	}
	if !e.Detected(7, ri) {
		t.Fatal("Detected() disagrees")
	}
	if hh, ok := e.FirstDetection(7, ri); !ok || hh != h {
		t.Fatalf("first detection %v %v", hh, ok)
	}
}

func TestThresholdRequiresEnoughDomains(t *testing.T) {
	dict, w := testDict(t)
	e := New(dict, 0.4)
	h := w.Window.Start
	ri := dict.RuleIndex("Amcrest Cam.") // 5 domains → need 2 at D=0.4
	feed(t, e, w, 1, h, "r0.simamcrest.example")
	if e.Detected(1, ri) {
		t.Fatal("fired with 1/5 domains at D=0.4")
	}
	feed(t, e, w, 1, h+1, "r3.simamcrest.example")
	if !e.Detected(1, ri) {
		t.Fatal("did not fire with 2/5 domains at D=0.4")
	}
}

func TestRepeatDomainDoesNotAccumulate(t *testing.T) {
	dict, w := testDict(t)
	e := New(dict, 0.4)
	ri := dict.RuleIndex("Amcrest Cam.")
	for i := 0; i < 10; i++ {
		feed(t, e, w, 1, w.Window.Start+simtime.Hour(i), "r0.simamcrest.example")
	}
	if e.Detected(1, ri) {
		t.Fatal("ten hits on one domain counted as two domains")
	}
}

func TestAlexaHierarchyCascades(t *testing.T) {
	dict, w := testDict(t)
	e := New(dict, 0.4)
	h := w.Window.Start
	alexa := dict.RuleIndex("Alexa Enabled")
	amz := dict.RuleIndex("Amazon Product")
	// One avs contact: Alexa platform fires (1 domain rule), Amazon
	// Product (34 domains → need 13) does not.
	feed(t, e, w, 3, h, "avs-alexa.simamazon.example")
	if !e.Detected(3, alexa) {
		t.Fatal("Alexa Enabled did not fire on avs contact")
	}
	if e.Detected(3, amz) {
		t.Fatal("Amazon Product fired on a single domain")
	}
	// Add 12 more amz domains → 13/34 ≥ ⌊0.4·34⌋=13.
	for i := 0; i < 12; i++ {
		feed(t, e, w, 3, h, dict.Rules[amz].Domains[i+1])
	}
	if !e.Detected(3, amz) {
		t.Fatalf("Amazon Product did not fire with 13 domains (need %d)", dict.Rules[amz].MinDomains(0.4))
	}
}

// TestOnFireHookMatchesObserveReturn pins the first-fire hook contract:
// OnFire is called once per (subscriber, rule) per bin, in the same
// order as Observe's returned slice, including parent-released children
// — and never again for an already-detected rule until Reset.
func TestOnFireHookMatchesObserveReturn(t *testing.T) {
	dict, w := testDict(t)
	e := New(dict, 0.4)
	h := w.Window.Start

	type fire struct {
		sub  SubID
		rule int
		h    simtime.Hour
	}
	var hooked []fire
	e.OnFire = func(sub SubID, rule int, hh simtime.Hour) {
		hooked = append(hooked, fire{sub, rule, hh})
	}

	var returned []fire
	observe := func(sub SubID, hh simtime.Hour, domain string) {
		for _, r := range feed(t, e, w, sub, hh, domain) {
			returned = append(returned, fire{sub, r, hh})
		}
	}

	// A parent-release chain: Samsung TV evidence first (held back),
	// then the parent's critical domain fires both in one Observe.
	stv := dict.RuleIndex("Samsung TV")
	sam := dict.RuleIndex("Samsung IoT")
	for i := 0; i < 12; i++ {
		observe(9, h, dict.Rules[stv].Domains[i])
	}
	if len(hooked) != 0 {
		t.Fatalf("hook fired before any detection: %v", hooked)
	}
	observe(9, h+1, dict.Rules[sam].Domains[0])
	// A second subscriber and a single-domain rule.
	observe(11, h+2, "mqtt.simmeross.example")
	// Repeats must not re-fire.
	observe(9, h+3, dict.Rules[sam].Domains[0])
	observe(11, h+3, "mqtt.simmeross.example")

	if len(hooked) != 3 {
		t.Fatalf("hook fired %d times, want 3 (parent, released child, meross): %v", len(hooked), hooked)
	}
	if !reflect.DeepEqual(hooked, returned) {
		t.Fatalf("hook calls %v diverge from Observe returns %v", hooked, returned)
	}
	if hooked[0].rule != sam || hooked[1].rule != stv {
		t.Fatalf("parent-release order wrong: %v", hooked)
	}

	// Reset opens a new bin: the same evidence fires the hook again.
	e.Reset()
	hooked = hooked[:0]
	observe(11, h+5, "mqtt.simmeross.example")
	if len(hooked) != 1 {
		t.Fatalf("hook did not re-fire after Reset: %v", hooked)
	}
}

func TestSamsungTVRequiresParent(t *testing.T) {
	dict, w := testDict(t)
	e := New(dict, 0.4)
	h := w.Window.Start
	stv := dict.RuleIndex("Samsung TV")
	sam := dict.RuleIndex("Samsung IoT")
	// Touch 12 of the 16 TV-specific domains: ≥ ⌊0.4·16⌋ = 6, but the
	// parent (critical OTA domain) is silent.
	for i := 0; i < 12; i++ {
		feed(t, e, w, 9, h, dict.Rules[stv].Domains[i])
	}
	if e.Detected(9, stv) {
		t.Fatal("Samsung TV fired without Samsung IoT confirmation")
	}
	// Confirm the parent via its critical domain (MinOverride = 1).
	feed(t, e, w, 9, h+1, dict.Rules[sam].Domains[0])
	if !e.Detected(9, sam) {
		t.Fatal("Samsung IoT did not fire on the critical domain")
	}
	// The waiting child is released by the parent confirmation; its
	// own evidence was already sufficient.
	if !e.Detected(9, stv) {
		t.Fatal("Samsung TV not released after parent confirmation")
	}
}

func TestSamsungDryerNeverFiresTV(t *testing.T) {
	// A Samsung Dryer/Fridge household contacts only the 14 core
	// domains; the TV rule must stay silent (the §5 false-positive
	// guard).
	dict, w := testDict(t)
	e := New(dict, 0.4)
	h := w.Window.Start
	sam := dict.RuleIndex("Samsung IoT")
	stv := dict.RuleIndex("Samsung TV")
	for _, d := range dict.Rules[sam].Domains {
		feed(t, e, w, 11, h, d)
	}
	if !e.Detected(11, sam) {
		t.Fatal("Samsung IoT did not fire")
	}
	if e.Detected(11, stv) {
		t.Fatal("Samsung TV fired on core-domain traffic only")
	}
}

func TestEchoDotNeverFiresFireTV(t *testing.T) {
	// Echo Dot traffic covers all 34 Amazon Product domains but none
	// of Fire TV's additional ones.
	dict, w := testDict(t)
	e := New(dict, 0.4)
	h := w.Window.Start
	amz := dict.RuleIndex("Amazon Product")
	ftv := dict.RuleIndex("Fire TV")
	for _, d := range dict.Rules[amz].Domains {
		feed(t, e, w, 12, h, d)
	}
	if !e.Detected(12, amz) {
		t.Fatal("Amazon Product did not fire")
	}
	if e.Detected(12, ftv) {
		t.Fatal("Fire TV fired on Amazon-only traffic")
	}
}

func TestSubscribersIsolated(t *testing.T) {
	dict, w := testDict(t)
	e := New(dict, 0.4)
	feed(t, e, w, 100, w.Window.Start, "mqtt.simmeross.example")
	ri := dict.RuleIndex("Meross Dooropener")
	if e.Detected(200, ri) {
		t.Fatal("detection leaked across subscribers")
	}
	if e.CountDetected(ri) != 1 {
		t.Fatalf("CountDetected = %d", e.CountDetected(ri))
	}
}

func TestCountAnyDetected(t *testing.T) {
	dict, w := testDict(t)
	e := New(dict, 0.4)
	h := w.Window.Start
	feed(t, e, w, 1, h, "mqtt.simmeross.example")
	feed(t, e, w, 2, h, "api.simnetatmo.example")
	feed(t, e, w, 2, h, "mqtt.simmeross.example")
	// Subscriber 3 only touches an unmonitored (shared) service: the
	// engine must not even track it.
	ips := w.ResolverOn(h.Day()).Resolve("gh00.simgoogle.example")
	e.Observe(3, h, ips[0], 443, 1)
	if got := e.CountAnyDetected(); got != 2 {
		t.Fatalf("CountAnyDetected = %d, want 2", got)
	}
	if e.Subscribers() != 2 {
		t.Fatalf("Subscribers = %d, want 2 (shared flows must not allocate)", e.Subscribers())
	}
}

func TestResetClearsState(t *testing.T) {
	dict, w := testDict(t)
	e := New(dict, 0.4)
	feed(t, e, w, 1, w.Window.Start, "mqtt.simmeross.example")
	e.Reset()
	ri := dict.RuleIndex("Meross Dooropener")
	if e.Detected(1, ri) || e.CountDetected(ri) != 0 || e.Subscribers() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestUsageSignal(t *testing.T) {
	dict, w := testDict(t)
	e := New(dict, 0.4)
	h := w.Window.Start
	day := h.Day()
	ips := w.ResolverOn(day).Resolve("avs-alexa.simamazon.example")
	alexa := dict.RuleIndex("Alexa Enabled")
	e.Observe(5, h, ips[0], 443, 4)
	if e.ActiveUse(5, alexa) {
		t.Fatal("4 packets flagged as active use")
	}
	e.Observe(5, h, ips[0], 443, 5)
	if e.ActiveUse(5, alexa) {
		t.Fatalf("9 packets flagged as active use (have %d)", e.RulePackets(5, alexa))
	}
	// The §7.1 threshold is inclusive: exactly 10 packets is active.
	e.Observe(5, h, ips[0], 443, 1)
	if !e.ActiveUse(5, alexa) {
		t.Fatalf("10 packets not flagged (have %d)", e.RulePackets(5, alexa))
	}
}

func TestEachDetected(t *testing.T) {
	dict, w := testDict(t)
	e := New(dict, 0.4)
	h := w.Window.Start
	feed(t, e, w, 1, h, "mqtt.simmeross.example")
	feed(t, e, w, 2, h+3, "api.simnetatmo.example")
	got := map[SubID]simtime.Hour{}
	e.EachDetected(func(sub SubID, rule int, first simtime.Hour) {
		got[sub] = first
	})
	if len(got) != 2 || got[1] != h || got[2] != h+3 {
		t.Fatalf("EachDetected = %v", got)
	}
}

func TestDLevelOneRequiresAllDomains(t *testing.T) {
	dict, w := testDict(t)
	e := New(dict, 1.0)
	h := w.Window.Start
	ri := dict.RuleIndex("Reolink Cam.") // 2 domains → need 2 at D=1
	feed(t, e, w, 1, h, "r0.simreolink.example")
	if e.Detected(1, ri) {
		t.Fatal("fired with 1/2 at D=1.0")
	}
	feed(t, e, w, 1, h, "r1.simreolink.example")
	if !e.Detected(1, ri) {
		t.Fatal("did not fire with 2/2 at D=1.0")
	}
}

func TestUnknownEndpointIgnored(t *testing.T) {
	dict, _ := testDict(t)
	e := New(dict, 0.4)
	fired := e.Observe(1, 437000, netip.MustParseAddr("8.8.8.8"), 53, 100)
	if fired != nil || e.Subscribers() != 0 {
		t.Fatal("unknown endpoint created state")
	}
}

func BenchmarkObserveHit(b *testing.B) {
	dict, w := testDict(b)
	e := New(dict, 0.4)
	h := w.Window.Start
	ips := w.ResolverOn(h.Day()).Resolve("avs-alexa.simamazon.example")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Observe(SubID(i&0xffff), h, ips[0], 443, 1)
	}
}

func BenchmarkObserveMiss(b *testing.B) {
	dict, _ := testDict(b)
	e := New(dict, 0.4)
	ip := netip.MustParseAddr("8.8.8.8")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Observe(SubID(i&0xffff), 437000, ip, 53, 1)
	}
}
