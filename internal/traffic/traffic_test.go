package traffic

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/simrand"
	"repro/internal/simtime"
	"repro/internal/world"
)

func newGen(t *testing.T, seed uint64) (*Generator, *world.World) {
	t.Helper()
	w := world.MustBuild(seed)
	r := w.ResolverOn(w.Window.Days()[0])
	g := New(simrand.New(seed), r, w.Catalog.Devices())
	return g, w
}

func TestHourFlowsNonEmpty(t *testing.T) {
	g, _ := newGen(t, 1)
	obs := g.HourFlows(simtime.IdleWindow.Start, ModeIdle, simtime.IdleWindow)
	if len(obs) < 300 {
		t.Fatalf("idle hour produced only %d observations", len(obs))
	}
	for _, o := range obs {
		if err := o.Rec.Validate(); err != nil {
			t.Fatalf("invalid record from %s to %s: %v", o.Device, o.Domain, err)
		}
		if o.Rec.Hour != simtime.IdleWindow.Start {
			t.Fatalf("record hour %v", o.Rec.Hour)
		}
	}
}

func TestActiveProducesMoreTrafficThanIdle(t *testing.T) {
	g, _ := newGen(t, 2)
	idleTotal, activeTotal := uint64(0), uint64(0)
	// Compare the second active day (both testbeds running) to idle.
	h := simtime.ActiveWindow.Start + 30
	for _, o := range g.HourFlows(h, ModeIdle, simtime.ActiveWindow) {
		idleTotal += o.Rec.Packets
	}
	for _, o := range g.HourFlows(h, ModeActive, simtime.ActiveWindow) {
		activeTotal += o.Rec.Packets
	}
	if activeTotal < idleTotal*3/2 {
		t.Fatalf("active %d pkts not clearly above idle %d", activeTotal, idleTotal)
	}
}

func TestIdleOnlyProductsNeverActive(t *testing.T) {
	g, w := newGen(t, 3)
	h := simtime.ActiveWindow.Start + 30
	byProduct := map[string]uint64{}
	for _, o := range g.HourFlows(h, ModeActive, simtime.ActiveWindow) {
		byProduct[o.Device.Product.Name] += o.Rec.Packets
	}
	idle := map[string]uint64{}
	g2 := New(simrand.New(3), w.ResolverOn(w.Window.Days()[0]), w.Catalog.Devices())
	for _, o := range g2.HourFlows(h, ModeIdle, simtime.ActiveWindow) {
		idle[o.Device.Product.Name] += o.Rec.Packets
	}
	// The Samsung Dryer/Fridge must not grow in active mode beyond
	// Poisson noise.
	for _, name := range []string{"Samsung Dryer", "Samsung Fridge"} {
		a, i := float64(byProduct[name]), float64(idle[name])
		if i == 0 {
			t.Fatalf("%s idle traffic missing", name)
		}
		if a > i*1.5 {
			t.Fatalf("%s active %f >> idle %f despite IdleOnly", name, a, i)
		}
	}
}

func TestTestbed2Staggered(t *testing.T) {
	g, _ := newGen(t, 4)
	h0 := simtime.ActiveWindow.Start + 2 // within the lag
	burst2 := uint64(0)
	base2 := uint64(0)
	for _, o := range g.HourFlows(h0, ModeActive, simtime.ActiveWindow) {
		if o.Device.Testbed == 2 {
			burst2 += o.Rec.Packets
		}
	}
	g2, _ := newGen(t, 4)
	for _, o := range g2.HourFlows(h0, ModeIdle, simtime.ActiveWindow) {
		if o.Device.Testbed == 2 {
			base2 += o.Rec.Packets
		}
	}
	af, bf := float64(burst2), float64(base2)
	if af > bf*1.4 {
		t.Fatalf("testbed-2 devices active during stagger lag: %f vs %f", af, bf)
	}
}

func TestDomainsResolveToServiceIPs(t *testing.T) {
	g, w := newGen(t, 5)
	obs := g.HourFlows(simtime.IdleWindow.Start, ModeIdle, simtime.IdleWindow)
	day := w.Window.Days()[0]
	r := w.ResolverOn(day)
	for _, o := range obs[:100] {
		ips := r.Resolve(o.Domain)
		found := false
		for _, ip := range ips {
			if ip == o.Rec.Key.Dst {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("flow to %v not in %s's resolved set %v", o.Rec.Key.Dst, o.Domain, ips)
		}
	}
}

func TestSourceAddressesInHomePrefix(t *testing.T) {
	g, _ := newGen(t, 6)
	obs := g.HourFlows(simtime.IdleWindow.Start, ModeIdle, simtime.IdleWindow)
	for _, o := range obs {
		if !g.HomePrefix.Contains(o.Rec.Key.Src) {
			t.Fatalf("source %v outside home prefix %v", o.Rec.Key.Src, g.HomePrefix)
		}
	}
}

func TestNTPFlowsAreUDP123(t *testing.T) {
	g, _ := newGen(t, 7)
	obs := g.HourFlows(simtime.IdleWindow.Start, ModeIdle, simtime.IdleWindow)
	sawNTP := false
	for _, o := range obs {
		d, _ := catalogDomain(t, o.Domain)
		if d == nil {
			continue
		}
		if d.Port == 123 {
			sawNTP = true
			if o.Rec.Key.DstPort != 123 || o.Rec.Key.Proto != 17 {
				t.Fatalf("NTP flow mis-keyed: %v", o.Rec.Key)
			}
			if o.Rec.TCPFlags != 0 {
				t.Fatalf("UDP flow carries TCP flags")
			}
		}
	}
	if !sawNTP {
		t.Fatal("no NTP traffic generated in an hour")
	}
}

var catCache *catalog.Catalog

func catalogDomain(t *testing.T, name string) (*catalog.Domain, bool) {
	t.Helper()
	if catCache == nil {
		catCache = catalog.Build()
	}
	d, ok := catCache.Domains[name]
	return d, ok
}

func TestDeterministicGeneration(t *testing.T) {
	g1, _ := newGen(t, 9)
	g2, _ := newGen(t, 9)
	a := g1.HourFlows(simtime.IdleWindow.Start, ModeIdle, simtime.IdleWindow)
	b := g2.HourFlows(simtime.IdleWindow.Start, ModeIdle, simtime.IdleWindow)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Rec != b[i].Rec || a[i].Domain != b[i].Domain {
			t.Fatalf("observation %d differs", i)
		}
	}
}

func TestRunWindowCoversAllHours(t *testing.T) {
	g, _ := newGen(t, 10)
	w := simtime.Window{Start: simtime.IdleWindow.Start, End: simtime.IdleWindow.Start + 5}
	hours := 0
	g.RunWindow(w, ModeIdle, func(h simtime.Hour, obs []Observation) {
		hours++
		if len(obs) == 0 {
			t.Fatalf("hour %v empty", h)
		}
	})
	if hours != 5 {
		t.Fatalf("visited %d hours", hours)
	}
}

func BenchmarkHourFlows(b *testing.B) {
	w := world.MustBuild(1)
	g := New(simrand.New(1), w.ResolverOn(w.Window.Days()[0]), w.Catalog.Devices())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.HourFlows(simtime.IdleWindow.Start, ModeIdle, simtime.IdleWindow)
	}
}
