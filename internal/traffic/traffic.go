// Package traffic generates the ground-truth IoT traffic of §2: the
// hourly flow records that the testbed devices, tunnelled into one
// subscriber line (Home-VP), exchange with their backend domains.
//
// The generator is intensity-driven: each (device, domain) pair has a
// mean packets/hour for idle and active operation (from the catalog);
// actual hourly counts are Poisson draws, plus interaction bursts
// during active experiments (the paper ran 9,810 automated power and
// functional interactions). Every record is tagged with the device that
// produced it, which is exactly the ground truth a researcher has at
// the home vantage point.
package traffic

import (
	"net/netip"

	"repro/internal/catalog"
	"repro/internal/flow"
	"repro/internal/simrand"
	"repro/internal/simtime"
)

// Resolver supplies the DNS view the devices use when opening
// connections. hosting.Infra satisfies it directly; the world package
// provides per-day snapshot resolvers.
type Resolver interface {
	Resolve(domain string) []netip.Addr
}

// Mode is the experiment mode of §2.3.
type Mode uint8

// Experiment modes.
const (
	ModeIdle Mode = iota + 1
	ModeActive
)

// String returns the mode name.
func (m Mode) String() string {
	if m == ModeIdle {
		return "idle"
	}
	return "active"
}

// Observation is one flow record together with the device that
// generated it (ground truth available only at the home side).
type Observation struct {
	Device catalog.Device
	Domain string
	Rec    flow.Record
}

// Generator produces hourly ground-truth traffic. Not safe for
// concurrent use.
type Generator struct {
	rng     *simrand.RNG
	infra   Resolver
	devices []catalog.Device
	// HomePrefix is the reserved /28 of the Home-VP subscriber line.
	HomePrefix netip.Prefix
	// BurstProb is the per-device per-hour probability of an
	// interaction burst during active experiments.
	BurstProb float64
	// Testbed2LagHours delays testbed-2 devices at the start of the
	// active window (§3: "experiments on devices from Testbed1 are
	// started after Testbed2" — the two testbeds are staggered).
	Testbed2LagHours int
}

// New returns a generator over the given devices.
func New(rng *simrand.RNG, infra Resolver, devices []catalog.Device) *Generator {
	return &Generator{
		rng:              rng.Fork("traffic"),
		infra:            infra,
		devices:          devices,
		HomePrefix:       netip.MustParsePrefix("100.100.0.16/28"),
		BurstProb:        0.15,
		Testbed2LagHours: 24,
	}
}

// deviceAddr maps a device to an address within the home /28. All
// testbed traffic egresses through the tunnel endpoint prefix, so
// devices share the handful of addresses.
func (g *Generator) deviceAddr(d catalog.Device) netip.Addr {
	base := g.HomePrefix.Addr().As4()
	host := uint8(1 + d.ID%14) // usable addresses of a /28
	return netip.AddrFrom4([4]byte{base[0], base[1], base[2], base[3] + host})
}

// srcPort derives a stable ephemeral port per (device, domain, hour).
func srcPort(devID int, domIdx int, h simtime.Hour) uint16 {
	x := uint64(devID)*2654435761 + uint64(domIdx)*40503 + uint64(h)*97
	return uint16(32768 + x%28000)
}

// HourFlows generates all ground-truth flow records for one hour bin.
// activeWindow is the window of automated interactions; outside it (or
// for IdleOnly products) devices idle.
func (g *Generator) HourFlows(h simtime.Hour, mode Mode, activeWindow simtime.Window) []Observation {
	var out []Observation
	for _, dev := range g.devices {
		out = g.deviceHour(out, dev, h, mode, activeWindow)
	}
	return out
}

func (g *Generator) deviceHour(out []Observation, dev catalog.Device, h simtime.Hour, mode Mode, activeWindow simtime.Window) []Observation {
	active := mode == ModeActive && activeWindow.Contains(h) && !dev.Product.IdleOnly
	if active && dev.Testbed == 2 && int(h-activeWindow.Start) < g.Testbed2LagHours {
		active = false // staggered start
	}
	burst := active && g.rng.Bernoulli(g.BurstProb)
	src := g.deviceAddr(dev)

	for di, use := range dev.Product.Uses {
		mean := use.IdlePPH
		if active {
			mean += use.ActivePPH * 0.3 // steady interaction load
			if burst {
				mean += use.ActivePPH // power/functional interaction burst
			}
		}
		if mean <= 0 {
			continue
		}
		pkts := g.rng.Poisson(mean)
		if pkts == 0 {
			continue
		}
		ips := g.infra.Resolve(use.Domain.Name)
		if len(ips) == 0 {
			continue
		}
		// A device talks to one resolved address per domain per hour
		// (DNS answer caching), rotating across the pool over time.
		ip := ips[int(uint64(dev.ID)+uint64(di)+uint64(h))%len(ips)]
		rec := flow.Record{
			Key: flow.Key{
				Src: src, Dst: ip,
				SrcPort: srcPort(dev.ID, di, h), DstPort: use.Domain.Port,
				Proto: use.Domain.Proto,
			},
			Packets:  uint64(pkts),
			Bytes:    uint64(pkts) * use.Domain.BytesPerPkt,
			TCPFlags: flagsFor(use.Domain.Proto),
			Hour:     h,
		}
		out = append(out, Observation{Device: dev, Domain: use.Domain.Name, Rec: rec})
	}
	return out
}

func flagsFor(p flow.Proto) uint8 {
	if p == flow.ProtoTCP {
		// Aggregated over the hour the flow carries handshake and data
		// packets: SYN|ACK|PSH.
		return 0x02 | 0x10 | 0x08
	}
	return 0
}

// RunWindow generates observations for every hour of a window, calling
// emit per hour. Mode selects the §2.3 experiment type.
func (g *Generator) RunWindow(w simtime.Window, mode Mode, emit func(simtime.Hour, []Observation)) {
	w.Each(func(h simtime.Hour) {
		emit(h, g.HourFlows(h, mode, w))
	})
}
