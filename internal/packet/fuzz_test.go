package packet

import (
	"testing"
	"testing/quick"

	"repro/internal/simrand"
)

func TestParseNeverPanicsOnRandomBytes(t *testing.T) {
	var p Parser
	var decoded []LayerType
	f := func(data []byte) bool {
		decoded, _ = p.Parse(data, decoded)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestParseNeverPanicsOnMutatedFrames(t *testing.T) {
	base := sampleFrame(t, ProtoTCP, TCPAck, make([]byte, 64))
	rng := simrand.New(7)
	var p Parser
	var decoded []LayerType
	for i := 0; i < 10000; i++ {
		m := append([]byte(nil), base...)
		for j := 0; j < 1+rng.Intn(3); j++ {
			m[rng.Intn(len(m))] ^= byte(1 + rng.Intn(255))
		}
		// Also randomly truncate.
		if rng.Bernoulli(0.3) {
			m = m[:rng.Intn(len(m)+1)]
		}
		decoded, _ = p.Parse(m, decoded)
	}
}

func TestDecodersRejectEmpty(t *testing.T) {
	var e Ethernet
	if _, err := e.DecodeFromBytes(nil); err == nil {
		t.Error("empty ethernet accepted")
	}
	var ip IPv4
	if _, err := ip.DecodeFromBytes(nil); err == nil {
		t.Error("empty ipv4 accepted")
	}
	var tc TCP
	if _, err := tc.DecodeFromBytes(nil); err == nil {
		t.Error("empty tcp accepted")
	}
	var u UDP
	if _, err := u.DecodeFromBytes(nil); err == nil {
		t.Error("empty udp accepted")
	}
}
