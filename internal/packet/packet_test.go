package packet

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
)

func sampleFrame(t *testing.T, proto uint8, flags uint8, payload []byte) []byte {
	t.Helper()
	eth := &Ethernet{Dst: [6]byte{1, 2, 3, 4, 5, 6}, Src: [6]byte{6, 5, 4, 3, 2, 1}}
	ip := &IPv4{TTL: 64, Src: MustAddr4("10.1.2.3"), Dst: MustAddr4("185.2.3.4"), ID: 77}
	var frame []byte
	var err error
	switch proto {
	case ProtoTCP:
		tcp := &TCP{SrcPort: 50123, DstPort: 443, Seq: 1000, Ack: 2000, Flags: flags, Window: 65535}
		frame, err = Build(eth, ip, tcp, payload)
	case ProtoUDP:
		udp := &UDP{SrcPort: 50123, DstPort: 123}
		frame, err = Build(eth, ip, udp, payload)
	}
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return frame
}

func TestRoundTripTCP(t *testing.T) {
	payload := []byte("hello haystack")
	frame := sampleFrame(t, ProtoTCP, TCPAck|TCPPsh, payload)

	var p Parser
	decoded, err := p.Parse(frame, nil)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	want := []LayerType{LayerTypeEthernet, LayerTypeIPv4, LayerTypeTCP, LayerTypePayload}
	if len(decoded) != len(want) {
		t.Fatalf("decoded %v", decoded)
	}
	for i := range want {
		if decoded[i] != want[i] {
			t.Fatalf("decoded %v, want %v", decoded, want)
		}
	}
	if p.IP4.Src != MustAddr4("10.1.2.3") || p.IP4.Dst != MustAddr4("185.2.3.4") {
		t.Fatalf("addresses %v -> %v", p.IP4.Src, p.IP4.Dst)
	}
	if p.TCP.SrcPort != 50123 || p.TCP.DstPort != 443 {
		t.Fatalf("ports %d -> %d", p.TCP.SrcPort, p.TCP.DstPort)
	}
	if p.TCP.Flags != TCPAck|TCPPsh {
		t.Fatalf("flags %x", p.TCP.Flags)
	}
	if !bytes.Equal(p.Payload, payload) {
		t.Fatalf("payload %q", p.Payload)
	}
}

func TestRoundTripUDP(t *testing.T) {
	payload := make([]byte, 48) // NTP-sized
	frame := sampleFrame(t, ProtoUDP, 0, payload)

	var p Parser
	decoded, err := p.Parse(frame, nil)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if decoded[2] != LayerTypeUDP {
		t.Fatalf("decoded %v", decoded)
	}
	if p.UDP.DstPort != 123 {
		t.Fatalf("dst port %d", p.UDP.DstPort)
	}
	if int(p.UDP.Length) != 8+len(payload) {
		t.Fatalf("udp length %d", p.UDP.Length)
	}
	if len(p.Payload) != len(payload) {
		t.Fatalf("payload len %d", len(p.Payload))
	}
}

func TestIPv4ChecksumValid(t *testing.T) {
	frame := sampleFrame(t, ProtoTCP, TCPSyn, nil)
	ipHeader := frame[ethernetLen:]
	var ip IPv4
	if _, err := ip.DecodeFromBytes(ipHeader); err != nil {
		t.Fatal(err)
	}
	if !ip.VerifyChecksum(ipHeader) {
		t.Fatal("serialized IPv4 checksum does not verify")
	}
	// Corrupt one byte: checksum must fail.
	ipHeader[8] ^= 0xff
	if ip.VerifyChecksum(ipHeader) {
		t.Fatal("corrupted header passed checksum")
	}
}

func TestLayer4ChecksumValid(t *testing.T) {
	payload := []byte("xyz")
	frame := sampleFrame(t, ProtoTCP, TCPAck, payload)
	var p Parser
	if _, err := p.Parse(frame, nil); err != nil {
		t.Fatal(err)
	}
	// Recompute: checksum over pseudo-header + l4 (with checksum field
	// in place) must equal zero.
	l4 := frame[ethernetLen+20:]
	sum, err := ChecksumLayer4(p.IP4.Src, p.IP4.Dst, ProtoTCP, l4)
	if err != nil {
		t.Fatal(err)
	}
	if sum != 0 {
		t.Fatalf("tcp checksum verify = %#x, want 0", sum)
	}
}

func TestTruncatedFrames(t *testing.T) {
	frame := sampleFrame(t, ProtoTCP, TCPAck, []byte("data"))
	var p Parser
	for cut := 1; cut < len(frame); cut += 3 {
		_, err := p.Parse(frame[:cut], nil)
		// Either an explicit truncation error, or a clean stop with
		// fewer layers — but never a panic (that's the real assertion).
		_ = err
	}
}

func TestNonIPv4EtherType(t *testing.T) {
	eth := Ethernet{EtherType: EtherTypeIPv6}
	frame := eth.AppendTo(nil)
	frame = append(frame, 0xde, 0xad)
	var p Parser
	decoded, err := p.Parse(frame, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 2 || decoded[1] != LayerTypePayload {
		t.Fatalf("decoded %v", decoded)
	}
	if len(p.Payload) != 2 {
		t.Fatalf("payload %v", p.Payload)
	}
}

func TestUnknownL4StopsCleanly(t *testing.T) {
	eth := &Ethernet{}
	ip := &IPv4{TTL: 1, Protocol: ProtoICMP, Src: MustAddr4("1.2.3.4"), Dst: MustAddr4("5.6.7.8")}
	frame, err := Build(eth, ip, nil, []byte{8, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	var p Parser
	decoded, err := p.Parse(frame, nil)
	if err != nil {
		t.Fatal(err)
	}
	if decoded[len(decoded)-1] != LayerTypePayload || len(decoded) != 3 {
		t.Fatalf("decoded %v", decoded)
	}
}

func TestTCPEstablished(t *testing.T) {
	cases := []struct {
		flags uint8
		want  bool
	}{
		{TCPSyn, false},
		{TCPSyn | TCPAck, false},
		{TCPAck, true},
		{TCPAck | TCPPsh, true},
		{TCPFin | TCPAck, false},
		{TCPRst, false},
		{0, true},
	}
	for _, c := range cases {
		tcp := TCP{Flags: c.flags}
		if got := tcp.Established(); got != c.want {
			t.Errorf("Established(flags=%#x) = %v, want %v", c.flags, got, c.want)
		}
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: checksum of 00 01 f2 03 f4 f5 f6 f7 is 0x220d.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != 0x220d {
		t.Fatalf("Checksum = %#x, want 0x220d", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Odd-length buffers are padded with a zero byte.
	if Checksum([]byte{0xab}) != ^uint16(0xab00) {
		t.Fatal("odd-length checksum wrong")
	}
}

func TestParserReuseNoCrossTalk(t *testing.T) {
	var p Parser
	var scratch []LayerType
	f1 := sampleFrame(t, ProtoTCP, TCPAck, []byte("first"))
	f2 := sampleFrame(t, ProtoUDP, 0, []byte("second!"))
	var err error
	scratch, err = p.Parse(f1, scratch)
	if err != nil {
		t.Fatal(err)
	}
	scratch, err = p.Parse(f2, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if scratch[2] != LayerTypeUDP {
		t.Fatalf("second parse decoded %v", scratch)
	}
	if string(p.Payload) != "second!" {
		t.Fatalf("payload %q", p.Payload)
	}
}

func TestBuildParsePropertyTCP(t *testing.T) {
	f := func(sp, dp uint16, seq, ack uint32, flags uint8, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		eth := &Ethernet{}
		ip := &IPv4{TTL: 64, Src: netip.AddrFrom4([4]byte{10, 0, 0, 1}), Dst: netip.AddrFrom4([4]byte{192, 0, 2, 9})}
		tcp := &TCP{SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack, Flags: flags & 0x3f}
		frame, err := Build(eth, ip, tcp, payload)
		if err != nil {
			return false
		}
		var p Parser
		if _, err := p.Parse(frame, nil); err != nil {
			return false
		}
		return p.TCP.SrcPort == sp && p.TCP.DstPort == dp &&
			p.TCP.Seq == seq && p.TCP.Ack == ack &&
			p.TCP.Flags == flags&0x3f && bytes.Equal(p.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLayerTypeString(t *testing.T) {
	if LayerTypeTCP.String() != "TCP" || LayerType(99).String() == "" {
		t.Fatal("LayerType.String broken")
	}
}

func BenchmarkParse(b *testing.B) {
	eth := &Ethernet{}
	ip := &IPv4{TTL: 64, Src: MustAddr4("10.0.0.1"), Dst: MustAddr4("192.0.2.9")}
	tcp := &TCP{SrcPort: 4242, DstPort: 443, Flags: TCPAck}
	frame, err := Build(eth, ip, tcp, make([]byte, 512))
	if err != nil {
		b.Fatal(err)
	}
	var p Parser
	var decoded []LayerType
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		decoded, err = p.Parse(frame, decoded)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuild(b *testing.B) {
	eth := &Ethernet{}
	ip := &IPv4{TTL: 64, Src: MustAddr4("10.0.0.1"), Dst: MustAddr4("192.0.2.9")}
	payload := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tcp := &TCP{SrcPort: 4242, DstPort: 443, Flags: TCPAck}
		if _, err := Build(eth, ip, tcp, payload); err != nil {
			b.Fatal(err)
		}
	}
}
