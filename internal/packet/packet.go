// Package packet implements wire-format encoding and decoding for the
// protocol layers the vantage points observe: Ethernet, IPv4, TCP and
// UDP.
//
// The design follows gopacket's DecodingLayer idiom: each layer type is
// a reusable struct with DecodeFromBytes (zero-copy: decoded fields are
// scalars, payloads are sub-slices of the input) and AppendTo for
// serialization. Parser mirrors gopacket's DecodingLayerParser — one
// allocation-free pass over a frame, appending the decoded layer types
// to a caller-owned slice.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// LayerType identifies a protocol layer.
type LayerType uint8

// Layer types understood by this package.
const (
	LayerTypeEthernet LayerType = iota + 1
	LayerTypeIPv4
	LayerTypeTCP
	LayerTypeUDP
	LayerTypePayload
)

// String returns the conventional layer name.
func (lt LayerType) String() string {
	switch lt {
	case LayerTypeEthernet:
		return "Ethernet"
	case LayerTypeIPv4:
		return "IPv4"
	case LayerTypeTCP:
		return "TCP"
	case LayerTypeUDP:
		return "UDP"
	case LayerTypePayload:
		return "Payload"
	}
	return fmt.Sprintf("LayerType(%d)", uint8(lt))
}

// ErrTruncated is returned when a buffer is too short for the layer
// being decoded.
var ErrTruncated = errors.New("packet: truncated")

// EtherType values.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeIPv6 uint16 = 0x86dd
)

// IP protocol numbers.
const (
	ProtoICMP uint8 = 1
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
)

// TCP flag bits.
const (
	TCPFin uint8 = 1 << iota
	TCPSyn
	TCPRst
	TCPPsh
	TCPAck
	TCPUrg
)

// Ethernet is an Ethernet II header.
type Ethernet struct {
	Dst, Src  [6]byte
	EtherType uint16
}

const ethernetLen = 14

// DecodeFromBytes parses the header and returns the payload.
func (e *Ethernet) DecodeFromBytes(data []byte) (payload []byte, err error) {
	if len(data) < ethernetLen {
		return nil, fmt.Errorf("%w: ethernet needs %d bytes, have %d", ErrTruncated, ethernetLen, len(data))
	}
	copy(e.Dst[:], data[0:6])
	copy(e.Src[:], data[6:12])
	e.EtherType = binary.BigEndian.Uint16(data[12:14])
	return data[ethernetLen:], nil
}

// AppendTo serializes the header onto b and returns the extended slice.
func (e *Ethernet) AppendTo(b []byte) []byte {
	b = append(b, e.Dst[:]...)
	b = append(b, e.Src[:]...)
	return binary.BigEndian.AppendUint16(b, e.EtherType)
}

// LayerType implements the Layer contract.
func (e *Ethernet) LayerType() LayerType { return LayerTypeEthernet }

// IPv4 is an IPv4 header without options support on the encode side
// (options are tolerated and skipped when decoding).
type IPv4 struct {
	TOS      uint8
	Length   uint16 // total length incl. header
	ID       uint16
	Flags    uint8  // 3 bits: reserved, DF, MF
	FragOff  uint16 // 13 bits
	TTL      uint8
	Protocol uint8
	Checksum uint16
	Src, Dst netip.Addr
	ihl      int // decoded header length in bytes
}

const ipv4MinLen = 20

// DecodeFromBytes parses the header and returns the layer-4 payload
// (truncated to the total-length field when the buffer is longer).
func (ip *IPv4) DecodeFromBytes(data []byte) (payload []byte, err error) {
	if len(data) < ipv4MinLen {
		return nil, fmt.Errorf("%w: ipv4 needs %d bytes, have %d", ErrTruncated, ipv4MinLen, len(data))
	}
	vi := data[0]
	if vi>>4 != 4 {
		return nil, fmt.Errorf("packet: not IPv4 (version %d)", vi>>4)
	}
	ip.ihl = int(vi&0x0f) * 4
	if ip.ihl < ipv4MinLen {
		return nil, fmt.Errorf("packet: bad IHL %d", ip.ihl)
	}
	if len(data) < ip.ihl {
		return nil, fmt.Errorf("%w: ipv4 header claims %d bytes, have %d", ErrTruncated, ip.ihl, len(data))
	}
	ip.TOS = data[1]
	ip.Length = binary.BigEndian.Uint16(data[2:4])
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	ff := binary.BigEndian.Uint16(data[6:8])
	ip.Flags = uint8(ff >> 13)
	ip.FragOff = ff & 0x1fff
	ip.TTL = data[8]
	ip.Protocol = data[9]
	ip.Checksum = binary.BigEndian.Uint16(data[10:12])
	ip.Src = netip.AddrFrom4([4]byte(data[12:16]))
	ip.Dst = netip.AddrFrom4([4]byte(data[16:20]))
	end := len(data)
	if int(ip.Length) >= ip.ihl && int(ip.Length) < end {
		end = int(ip.Length)
	}
	return data[ip.ihl:end], nil
}

// HeaderLen returns the decoded header length (20 when encoding).
func (ip *IPv4) HeaderLen() int {
	if ip.ihl >= ipv4MinLen {
		return ip.ihl
	}
	return ipv4MinLen
}

// AppendTo serializes a 20-byte header (no options) with a correct
// checksum, computing Length from payloadLen.
func (ip *IPv4) AppendTo(b []byte, payloadLen int) ([]byte, error) {
	if !ip.Src.Is4() || !ip.Dst.Is4() {
		return nil, fmt.Errorf("packet: ipv4 addresses must be 4-byte (src %v dst %v)", ip.Src, ip.Dst)
	}
	total := ipv4MinLen + payloadLen
	if total > 0xffff {
		return nil, fmt.Errorf("packet: ipv4 total length %d exceeds 65535", total)
	}
	start := len(b)
	b = append(b, 0x45, ip.TOS)
	b = binary.BigEndian.AppendUint16(b, uint16(total))
	b = binary.BigEndian.AppendUint16(b, ip.ID)
	b = binary.BigEndian.AppendUint16(b, uint16(ip.Flags)<<13|ip.FragOff&0x1fff)
	b = append(b, ip.TTL, ip.Protocol, 0, 0) // checksum placeholder
	src, dst := ip.Src.As4(), ip.Dst.As4()
	b = append(b, src[:]...)
	b = append(b, dst[:]...)
	sum := Checksum(b[start:])
	binary.BigEndian.PutUint16(b[start+10:], sum)
	return b, nil
}

// LayerType implements the Layer contract.
func (ip *IPv4) LayerType() LayerType { return LayerTypeIPv4 }

// VerifyChecksum reports whether the decoded header bytes carry a valid
// internet checksum. It must be called with the same slice passed to
// DecodeFromBytes.
func (ip *IPv4) VerifyChecksum(header []byte) bool {
	if len(header) < ip.HeaderLen() {
		return false
	}
	return Checksum(header[:ip.HeaderLen()]) == 0
}

// TCP is a TCP header. Options are tolerated and skipped when decoding;
// encoding emits a 20-byte header.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	Checksum         uint16
	Urgent           uint16
	dataOffset       int
}

const tcpMinLen = 20

// DecodeFromBytes parses the header and returns the payload.
func (t *TCP) DecodeFromBytes(data []byte) (payload []byte, err error) {
	if len(data) < tcpMinLen {
		return nil, fmt.Errorf("%w: tcp needs %d bytes, have %d", ErrTruncated, tcpMinLen, len(data))
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	t.dataOffset = int(data[12]>>4) * 4
	if t.dataOffset < tcpMinLen {
		return nil, fmt.Errorf("packet: bad TCP data offset %d", t.dataOffset)
	}
	if len(data) < t.dataOffset {
		return nil, fmt.Errorf("%w: tcp header claims %d bytes, have %d", ErrTruncated, t.dataOffset, len(data))
	}
	t.Flags = data[13] & 0x3f
	t.Window = binary.BigEndian.Uint16(data[14:16])
	t.Checksum = binary.BigEndian.Uint16(data[16:18])
	t.Urgent = binary.BigEndian.Uint16(data[18:20])
	return data[t.dataOffset:], nil
}

// AppendTo serializes a 20-byte header. The checksum field is written
// as-is; use ChecksumLayer4 to compute it.
func (t *TCP) AppendTo(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, t.SrcPort)
	b = binary.BigEndian.AppendUint16(b, t.DstPort)
	b = binary.BigEndian.AppendUint32(b, t.Seq)
	b = binary.BigEndian.AppendUint32(b, t.Ack)
	b = append(b, 5<<4, t.Flags&0x3f)
	b = binary.BigEndian.AppendUint16(b, t.Window)
	b = binary.BigEndian.AppendUint16(b, t.Checksum)
	return binary.BigEndian.AppendUint16(b, t.Urgent)
}

// LayerType implements the Layer contract.
func (t *TCP) LayerType() LayerType { return LayerTypeTCP }

// Established reports whether the segment is part of an established
// connection: at least one flag-less (or plain ACK) data segment. The
// IXP vantage point uses this to discard spoofed traffic (§6.3).
func (t *TCP) Established() bool {
	return t.Flags&(TCPSyn|TCPRst|TCPFin) == 0
}

// UDP is a UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
}

const udpLen = 8

// DecodeFromBytes parses the header and returns the payload.
func (u *UDP) DecodeFromBytes(data []byte) (payload []byte, err error) {
	if len(data) < udpLen {
		return nil, fmt.Errorf("%w: udp needs %d bytes, have %d", ErrTruncated, udpLen, len(data))
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.Length = binary.BigEndian.Uint16(data[4:6])
	u.Checksum = binary.BigEndian.Uint16(data[6:8])
	end := len(data)
	if int(u.Length) >= udpLen && int(u.Length) < end {
		end = int(u.Length)
	}
	return data[udpLen:end], nil
}

// AppendTo serializes the header, computing Length from payloadLen.
func (u *UDP) AppendTo(b []byte, payloadLen int) []byte {
	b = binary.BigEndian.AppendUint16(b, u.SrcPort)
	b = binary.BigEndian.AppendUint16(b, u.DstPort)
	b = binary.BigEndian.AppendUint16(b, uint16(udpLen+payloadLen))
	return binary.BigEndian.AppendUint16(b, u.Checksum)
}

// LayerType implements the Layer contract.
func (u *UDP) LayerType() LayerType { return LayerTypeUDP }

// Checksum computes the internet checksum (RFC 1071) of data.
func Checksum(data []byte) uint16 {
	var sum uint32
	for len(data) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(data))
		data = data[2:]
	}
	if len(data) == 1 {
		sum += uint32(data[0]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// ChecksumLayer4 computes a TCP/UDP checksum over the IPv4 pseudo-header
// plus the given layer-4 bytes (header with zeroed checksum field plus
// payload).
func ChecksumLayer4(src, dst netip.Addr, proto uint8, l4 []byte) (uint16, error) {
	if !src.Is4() || !dst.Is4() {
		return 0, fmt.Errorf("packet: pseudo-header needs IPv4 addresses")
	}
	pseudo := make([]byte, 12, 12+len(l4))
	s, d := src.As4(), dst.As4()
	copy(pseudo[0:4], s[:])
	copy(pseudo[4:8], d[:])
	pseudo[9] = proto
	binary.BigEndian.PutUint16(pseudo[10:12], uint16(len(l4)))
	pseudo = append(pseudo, l4...)
	return Checksum(pseudo), nil
}
