package packet

import (
	"fmt"
	"net/netip"
)

// Parser decodes Ethernet/IPv4/TCP|UDP frames in a single pass without
// allocating, in the style of gopacket's DecodingLayerParser: the layer
// structs are owned by the Parser and overwritten on every call, and the
// decoded-layers slice is caller-provided and reused.
//
// Parser is not safe for concurrent use; give each goroutine its own.
type Parser struct {
	Eth     Ethernet
	IP4     IPv4
	TCP     TCP
	UDP     UDP
	Payload []byte // sub-slice of the input frame
}

// Parse decodes frame starting at Ethernet, appending each decoded
// LayerType to decoded (which is reset first). Unknown layer-3 or
// layer-4 protocols terminate the walk without error; the undecoded rest
// is exposed as LayerTypePayload.
func (p *Parser) Parse(frame []byte, decoded []LayerType) ([]LayerType, error) {
	decoded = decoded[:0]
	p.Payload = nil

	rest, err := p.Eth.DecodeFromBytes(frame)
	if err != nil {
		return decoded, err
	}
	decoded = append(decoded, LayerTypeEthernet)

	if p.Eth.EtherType != EtherTypeIPv4 {
		p.Payload = rest
		return append(decoded, LayerTypePayload), nil
	}
	rest, err = p.IP4.DecodeFromBytes(rest)
	if err != nil {
		return decoded, err
	}
	decoded = append(decoded, LayerTypeIPv4)

	switch p.IP4.Protocol {
	case ProtoTCP:
		rest, err = p.TCP.DecodeFromBytes(rest)
		if err != nil {
			return decoded, err
		}
		decoded = append(decoded, LayerTypeTCP)
	case ProtoUDP:
		rest, err = p.UDP.DecodeFromBytes(rest)
		if err != nil {
			return decoded, err
		}
		decoded = append(decoded, LayerTypeUDP)
	}
	p.Payload = rest
	return append(decoded, LayerTypePayload), nil
}

// Build serializes a full Ethernet/IPv4/{TCP,UDP} frame. It is the
// inverse of Parse for the supported layer combinations and computes
// the IPv4 and layer-4 checksums.
func Build(eth *Ethernet, ip *IPv4, l4 any, payload []byte) ([]byte, error) {
	var l4buf []byte
	var proto uint8
	switch h := l4.(type) {
	case *TCP:
		proto = ProtoTCP
		h.Checksum = 0
		l4buf = h.AppendTo(nil)
	case *UDP:
		proto = ProtoUDP
		h.Checksum = 0
		l4buf = h.AppendTo(nil, len(payload))
	case nil:
		proto = ip.Protocol
	default:
		return nil, fmt.Errorf("packet: unsupported layer-4 type %T", l4)
	}
	l4buf = append(l4buf, payload...)

	if l4 != nil {
		ip.Protocol = proto
		sum, err := ChecksumLayer4(ip.Src, ip.Dst, proto, l4buf)
		if err != nil {
			return nil, err
		}
		// Patch the checksum into the serialized header.
		switch l4.(type) {
		case *TCP:
			l4buf[16], l4buf[17] = byte(sum>>8), byte(sum)
		case *UDP:
			l4buf[6], l4buf[7] = byte(sum>>8), byte(sum)
		}
	}

	eth.EtherType = EtherTypeIPv4
	out := eth.AppendTo(nil)
	out, err := ip.AppendTo(out, len(l4buf))
	if err != nil {
		return nil, err
	}
	return append(out, l4buf...), nil
}

// MustAddr4 parses a dotted-quad IPv4 literal, panicking on error.
// Intended for tests and static tables.
func MustAddr4(s string) netip.Addr {
	a, err := netip.ParseAddr(s)
	if err != nil || !a.Is4() {
		panic(fmt.Sprintf("packet: bad IPv4 literal %q", s))
	}
	return a
}
