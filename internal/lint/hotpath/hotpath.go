// Package hotpath polices the per-record ingest path. Functions
// annotated `// haystack:hotpath` run once per datagram or per flow
// record at ISP/IXP rates (millions per second), where a stray
// time.Now, fmt call, reflection, map allocation, or closure is a
// measurable regression — the cost classes the ROADMAP's 2.3M → 20M+
// rec/s item attacks. Cold branches (error construction and the like)
// belong in unannotated helper functions.
package hotpath

import (
	"go/ast"
	"go/types"

	"repro/internal/lint"
)

// Analyzer flags slow-path operations inside haystack:hotpath
// functions.
var Analyzer = &lint.Analyzer{
	Name: "hotpath",
	Doc:  "haystack:hotpath functions may not call time.Now/fmt/reflect or allocate maps/closures",
	Run:  run,
}

// banned maps package path → specific banned functions; an empty set
// bans every function of the package.
var banned = map[string]map[string]bool{
	"fmt":     nil,
	"reflect": nil,
	"time":    {"Now": true, "Since": true, "Until": true},
}

func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, ok := lint.DocDirective(fd.Doc, "hotpath"); !ok {
				continue
			}
			check(pass, fd)
		}
	}
	return nil
}

func check(pass *lint.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "hotpath function %s allocates a closure; hoist it or drop the haystack:hotpath annotation", fd.Name.Name)
			return false // the closure's own body is cold by definition
		case *ast.CompositeLit:
			if isMap(pass.TypesInfo.Types[n].Type) {
				pass.Reportf(n.Pos(), "hotpath function %s allocates a map literal; preallocate it outside the hot path", fd.Name.Name)
			}
		case *ast.CallExpr:
			checkCall(pass, fd, n)
		}
		return true
	})
}

func checkCall(pass *lint.Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return
	}
	// make(map[...]...) allocates on every call.
	if b, ok := obj.(*types.Builtin); ok && b.Name() == "make" && len(call.Args) > 0 {
		if isMap(pass.TypesInfo.Types[call.Args[0]].Type) {
			pass.Reportf(call.Pos(), "hotpath function %s allocates a map; preallocate it outside the hot path", fd.Name.Name)
		}
		return
	}
	pkg := obj.Pkg()
	if pkg == nil {
		return
	}
	names, ok := banned[pkg.Path()]
	if !ok {
		return
	}
	if names == nil || names[obj.Name()] {
		pass.Reportf(call.Pos(), "hotpath function %s calls %s.%s; move it off the per-record path (outline cold branches into an unannotated helper)",
			fd.Name.Name, pkg.Path(), obj.Name())
	}
}

func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
