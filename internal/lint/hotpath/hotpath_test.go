package hotpath_test

import (
	"testing"

	"repro/internal/lint/hotpath"
	"repro/internal/lint/linttest"
)

func TestHotPath(t *testing.T) {
	linttest.Run(t, hotpath.Analyzer, "a")
}
