// Fixture mirroring the decode-path violations haystacklint found in
// internal/netflow and internal/ipfix: fmt.Errorf inline on the
// per-datagram path, plus the other banned cost classes.
package a

import (
	"errors"
	"fmt"
	"time"
)

var errShortMsg = errors.New("short message")

// decodeBad commits every hot-path sin at once.
//
// haystack:hotpath
func decodeBad(b []byte) error {
	if len(b) < 4 {
		return fmt.Errorf("short: %d", len(b)) // want "calls fmt.Errorf"
	}
	start := time.Now()    // want "calls time.Now"
	_ = time.Since(start)  // want "calls time.Since"
	m := map[int]int{1: 2} // want "allocates a map literal"
	_ = m
	n := make(map[string]int, 8) // want "allocates a map"
	_ = n
	f := func() { _ = time.Now() } // want "allocates a closure"
	f()
	return nil
}

// decodeGood is the sanctioned shape: static errors on the trivial
// path, cold error construction outlined into an unannotated helper.
//
// haystack:hotpath
func decodeGood(b []byte) error {
	if len(b) == 0 {
		return errShortMsg
	}
	if len(b) < 4 {
		return errShort(len(b))
	}
	time.Sleep(0) // Sleep is deliberately not banned (error-path pacing)
	return nil
}

// errShort is cold: it runs at most once per malformed message.
func errShort(n int) error { return fmt.Errorf("short: %d", n) }

// cold is unannotated, so anything goes.
func cold() {
	_ = time.Now()
	_ = fmt.Sprintf("%d", 7)
	_ = map[int]int{}
}
