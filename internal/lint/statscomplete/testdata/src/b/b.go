// Fixture for a metrics struct with no export function at all: every
// field is unreachable from the operator surface.
package b

// haystack:metrics-struct
type Stats struct { // want "has no haystack:metrics-export function"
	Records uint64
}
