// Fixture for the forgotten-counter class: ReadErrors was added to the
// snapshot struct but never plumbed into the export function, so it
// would serve as a silent zero on /metrics.
package a

// Stats is the transport-health snapshot.
//
// haystack:metrics-struct
type Stats struct {
	Records    uint64
	ReadErrors uint64 // want "field ReadErrors is not referenced"
	internal   int
}

type server struct {
	records    uint64
	readErrors uint64
}

// Stats snapshots the counters.
//
// haystack:metrics-export
func (s *server) Stats() Stats {
	return Stats{Records: s.records}
}
