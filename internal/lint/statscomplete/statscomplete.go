// Package statscomplete keeps the operator metrics surface complete.
// Snapshot structs (collector.Stats, haystack.DetectorStats,
// haystack.WindowResult, …) are filled field-by-field from atomic
// counters by hand-written export code; when PR 5 added stream
// transport counters, every one had to be plumbed into /metrics and
// expvar manually, and nothing would have caught a forgotten field —
// it would just export as a silent zero. This analyzer makes the
// omission a vet failure: every exported field of a struct annotated
// `// haystack:metrics-struct` must be referenced by some function in
// the same package annotated `// haystack:metrics-export`.
package statscomplete

import (
	"go/ast"
	"go/types"

	"repro/internal/lint"
)

// Analyzer verifies metrics snapshot structs against their export
// code.
var Analyzer = &lint.Analyzer{
	Name: "statscomplete",
	Doc:  "every exported field of a haystack:metrics-struct must be referenced by a haystack:metrics-export function",
	Run:  run,
}

func run(pass *lint.Pass) error {
	type monitored struct {
		name   string
		spec   *ast.TypeSpec
		fields []*types.Var // exported fields, declaration order
	}
	var structs []*monitored
	var exporters []*ast.FuncDecl

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if _, ok := lint.DocDirective(d.Doc, "metrics-export"); ok && d.Body != nil {
					exporters = append(exporters, d)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					_, ok = lint.DocDirective(ts.Doc, "metrics-struct")
					if !ok {
						// A single-spec `type` declaration hangs its doc
						// on the GenDecl.
						_, ok = lint.DocDirective(d.Doc, "metrics-struct")
					}
					if !ok {
						continue
					}
					obj, _ := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
					if obj == nil {
						continue
					}
					st, ok := obj.Type().Underlying().(*types.Struct)
					if !ok {
						pass.Reportf(ts.Pos(), "haystack:metrics-struct %s is not a struct type", ts.Name.Name)
						continue
					}
					m := &monitored{name: ts.Name.Name, spec: ts}
					for i := 0; i < st.NumFields(); i++ {
						if f := st.Field(i); f.Exported() {
							m.fields = append(m.fields, f)
						}
					}
					structs = append(structs, m)
				}
			}
		}
	}
	if len(structs) == 0 {
		return nil
	}
	if len(exporters) == 0 {
		for _, m := range structs {
			pass.Reportf(m.spec.Pos(),
				"metrics struct %s has no haystack:metrics-export function in package %s: its fields reach no operator surface",
				m.name, pass.Pkg.Name())
		}
		return nil
	}

	// A field is covered if any exporter body mentions it — as a
	// selector (st.Records), a composite-literal key (Records: …), or
	// through an intermediate value; go/types resolves all of those
	// identifier uses to the same field object.
	referenced := make(map[*types.Var]bool)
	for _, fd := range exporters {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if f, ok := pass.TypesInfo.Uses[id].(*types.Var); ok && f.IsField() {
				referenced[f] = true
			}
			return true
		})
	}
	for _, m := range structs {
		for _, f := range m.fields {
			if !referenced[f] {
				pass.Reportf(f.Pos(),
					"metrics struct %s field %s is not referenced by any haystack:metrics-export function: it will export as a silent zero on /metrics and expvar",
					m.name, f.Name())
			}
		}
	}
	return nil
}
