package statscomplete_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/statscomplete"
)

func TestMissingField(t *testing.T) {
	linttest.Run(t, statscomplete.Analyzer, "a")
}

func TestNoExporter(t *testing.T) {
	linttest.Run(t, statscomplete.Analyzer, "b")
}
