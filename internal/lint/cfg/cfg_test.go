package cfg_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/lint/cfg"
)

// build parses src as a file, finds function name, and returns its
// graph. Sources are type-check-free: cfg.New tolerates a nil
// types.Info (syntactic panic matching).
func build(t *testing.T, src, name string) *cfg.Graph {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return cfg.New(fd.Body, nil)
		}
	}
	t.Fatalf("no function %q", name)
	return nil
}

func check(t *testing.T, g *cfg.Graph, want string) {
	t.Helper()
	got := strings.TrimSpace(g.String())
	want = strings.TrimSpace(want)
	if got != want {
		t.Errorf("graph mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestDeferAndPanicPath(t *testing.T) {
	g := build(t, `
package p

func f(ok bool) {
	defer cleanup()
	if !ok {
		panic("bad")
	}
	work()
}
`, "f")
	if len(g.Defers) != 1 {
		t.Fatalf("Defers = %d, want 1", len(g.Defers))
	}
	check(t, g, `
b0 (entry):
	defer cleanup()
	!ok
	-> b2 if !ok
	-> b3 if !(!ok)
b1 (exit):
b2:
	panic("bad")
	-> b1 panic
b3:
	work()
	-> b1
`)
}

func TestLabeledBreakAndContinue(t *testing.T) {
	g := build(t, `
package p

func f(rows [][]int) int {
	total := 0
outer:
	for i := 0; i < len(rows); i++ {
		for _, v := range rows[i] {
			if v < 0 {
				break outer
			}
			if v == 0 {
				continue outer
			}
			total += v
		}
	}
	return total
}
`, "f")
	check(t, g, `
b0 (entry):
	total := 0
	-> b2
b1 (exit):
b2:
	i := 0
	-> b3
b3:
	i < len(rows)
	-> b4 if i < len(rows)
	-> b5 if !(i < len(rows))
b4:
	-> b7
b5:
	return total
	-> b1
b6:
	i++
	-> b3
b7:
	rows[i]
	-> b8 range
	-> b9
b8:
	v < 0
	-> b10 if v < 0
	-> b11 if !(v < 0)
b9:
	-> b6
b10:
	break outer
	-> b5
b11:
	v == 0
	-> b12 if v == 0
	-> b13 if !(v == 0)
b12:
	continue outer
	-> b6
b13:
	total += v
	-> b7
`)
	// The labeled-for's after-block is b5 (where `return total` lands);
	// both the inner `break outer` (b10) and the natural exit reach it,
	// and `continue outer` (b12) targets the outer post (b6), not the
	// inner head.
}

func TestSelectPaths(t *testing.T) {
	g := build(t, `
package p

func f(stop chan struct{}, in chan int) {
	for {
		select {
		case <-stop:
			return
		case v := <-in:
			use(v)
		}
	}
}
`, "f")
	check(t, g, `
b0 (entry):
	-> b2
b1 (exit):
b2:
	-> b3
b3:
	-> b6
	-> b7
b4:
	-> b1
b5:
	-> b2
b6:
	<-stop
	return
	-> b1
b7:
	v := <-in
	use(v)
	-> b5
`)
	// b4 is the for{}'s after-block: pred-less (the loop only exits via
	// return) but still wired to the exit for the code that would
	// follow. b5 is the select's after-block feeding back to the head.
}

func TestGotoAndFallthrough(t *testing.T) {
	g := build(t, `
package p

func f(n int) int {
	switch n {
	case 0:
		n++
		fallthrough
	case 1:
		n += 2
	default:
		goto done
	}
	n *= 3
done:
	return n
}
`, "f")
	check(t, g, `
b0 (entry):
	n
	-> b3
	-> b4
	-> b5
b1 (exit):
b2:
	n *= 3
	-> b6
b3:
	0
	n++
	fallthrough
	-> b4
b4:
	1
	n += 2
	-> b2
b5:
	goto done
	-> b6
b6:
	return n
	-> b1
`)
	// Fallthrough chains b3 into b4; case 1's natural exit runs the
	// post-switch statement (b2) before reaching the labeled block
	// (b6), while the default's goto skips straight there.
}

// TestUnreachableTail: statements after a no-return call land in a
// pred-less block instead of vanishing.
func TestUnreachableTail(t *testing.T) {
	g := build(t, `
package p

func f() {
	panic("always")
	work()
}
`, "f")
	if len(g.Blocks) < 3 {
		t.Fatalf("blocks = %d, want >= 3", len(g.Blocks))
	}
	dead := g.Blocks[2]
	if len(dead.Preds) != 0 {
		t.Errorf("dead block has %d preds, want 0", len(dead.Preds))
	}
	if len(dead.Nodes) != 1 {
		t.Errorf("dead block has %d nodes, want 1", len(dead.Nodes))
	}
}
