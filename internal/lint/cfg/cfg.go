// Package cfg builds per-function control-flow graphs over go/ast for
// the haystacklint dataflow analyzers (internal/lint/dataflow and the
// analyzers built on it). It is deliberately smaller than
// golang.org/x/tools/go/cfg — which the offline build cannot import —
// but models everything the invariant suite needs: branch edges carry
// their condition (and polarity) so flow analyses can refine facts,
// range-loop body edges carry the *ast.RangeStmt so index variables
// can be bounded, panic/os.Exit departures are distinguished from
// normal returns, and defers are recorded in syntactic order.
//
// Function literals are NOT inlined: a FuncLit body is its own
// function and gets its own graph. Analyzers walking Block.Nodes must
// prune at *ast.FuncLit when descending subtrees.
package cfg

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// Block is a straight-line sequence of AST nodes: no jumps in except
// at the top, none out except at the bottom. Nodes holds statements
// and, for branch heads, the condition expression last; subtrees of a
// node never include statements that appear as separate nodes.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Edge
	Preds []*Edge
}

// Edge connects two blocks. A nil Cond is an unconditional jump; with
// Cond set, the edge is taken when the condition evaluates to !Negate.
// Range marks the body-entry edge of a range loop (the key/value
// variables are freshly assigned along it). IsPanic marks departures
// that skip the normal return path: panic, os.Exit, runtime.Goexit,
// log.Fatal*.
type Edge struct {
	From, To *Block
	Cond     ast.Expr
	Negate   bool
	Range    *ast.RangeStmt
	IsPanic  bool
}

// Graph is one function body's CFG. Exit is the sole sink: return
// statements, falling off the end, and no-return calls all edge to it
// (the latter with IsPanic set).
type Graph struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
	// Defers lists every defer statement in syntactic order. The graph
	// does not expand defer execution at each exit; analyzers that care
	// (lockorder) apply deferred effects when inspecting Exit edges.
	Defers []*ast.DeferStmt
}

// New builds the CFG of body. info, when non-nil, disambiguates the
// panic builtin and package-qualified no-return calls from shadowing
// locals; with a nil info the builder matches them syntactically.
func New(body *ast.BlockStmt, info *types.Info) *Graph {
	b := &builder{
		g:      &Graph{},
		info:   info,
		labels: make(map[string]*Block),
	}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.cur = b.g.Entry
	b.stmts(body.List)
	if b.cur != nil {
		b.jump(b.cur, b.g.Exit)
	}
	return b.g
}

type target struct {
	label string
	brk   *Block
	cont  *Block // nil for switch/select
}

type builder struct {
	g       *Graph
	info    *types.Info
	cur     *Block // nil while the current point is unreachable
	targets []target
	labels  map[string]*Block
	pending string // label awaiting its loop/switch/select
	fall    *Block // fallthrough target inside a switch clause
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// ensure revives the current block after unreachable code: dead
// statements still get a (pred-less) block so analyzers and golden
// dumps see them.
func (b *builder) ensure() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *builder) add(n ast.Node) {
	blk := b.ensure()
	blk.Nodes = append(blk.Nodes, n)
}

func (b *builder) edge(from, to *Block, e Edge) {
	e.From, e.To = from, to
	p := &e
	from.Succs = append(from.Succs, p)
	to.Preds = append(to.Preds, p)
}

func (b *builder) jump(from, to *Block) { b.edge(from, to, Edge{}) }

func (b *builder) takeLabel() string {
	l := b.pending
	b.pending = ""
	return l
}

func (b *builder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.ExprStmt:
		b.add(s)
		if b.noReturn(s.X) {
			b.edge(b.cur, b.g.Exit, Edge{IsPanic: true})
			b.cur = nil
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cur, b.g.Exit)
		b.cur = nil

	case *ast.DeferStmt:
		b.add(s)
		b.g.Defers = append(b.g.Defers, s)

	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		if b.cur != nil {
			b.jump(b.cur, lb)
		}
		b.cur = lb
		b.pending = s.Label.Name
		b.stmt(s.Stmt)
		b.pending = ""

	case *ast.BranchStmt:
		b.branchStmt(s)

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s)

	case *ast.RangeStmt:
		b.rangeStmt(s)

	case *ast.SwitchStmt:
		b.switchStmt(s)

	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s)

	case *ast.SelectStmt:
		b.selectStmt(s)

	default:
		// AssignStmt, DeclStmt, IncDecStmt, SendStmt, GoStmt,
		// EmptyStmt: straight-line.
		b.add(s)
	}
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	b.add(s)
	from := b.cur
	b.cur = nil
	switch s.Tok {
	case token.BREAK:
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if s.Label == nil || t.label == s.Label.Name {
				b.jump(from, t.brk)
				return
			}
		}
	case token.CONTINUE:
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if t.cont != nil && (s.Label == nil || t.label == s.Label.Name) {
				b.jump(from, t.cont)
				return
			}
		}
	case token.GOTO:
		b.jump(from, b.labelBlock(s.Label.Name))
	case token.FALLTHROUGH:
		if b.fall != nil {
			b.jump(from, b.fall)
		}
	}
}

func (b *builder) labelBlock(name string) *Block {
	if lb, ok := b.labels[name]; ok {
		return lb
	}
	lb := b.newBlock()
	b.labels[name] = lb
	return lb
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	cond := b.cur
	then := b.newBlock()
	after := b.newBlock()
	b.edge(cond, then, Edge{Cond: s.Cond})
	b.cur = then
	b.stmts(s.Body.List)
	if b.cur != nil {
		b.jump(b.cur, after)
	}
	if s.Else != nil {
		els := b.newBlock()
		b.edge(cond, els, Edge{Cond: s.Cond, Negate: true})
		b.cur = els
		b.stmt(s.Else)
		if b.cur != nil {
			b.jump(b.cur, after)
		}
	} else {
		b.edge(cond, after, Edge{Cond: s.Cond, Negate: true})
	}
	b.cur = after
}

func (b *builder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock()
	if b.cur != nil {
		b.jump(b.cur, head)
	}
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
	}
	body := b.newBlock()
	after := b.newBlock()
	cont := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock()
		post.Nodes = append(post.Nodes, s.Post)
		b.jump(post, head)
		cont = post
	}
	if s.Cond != nil {
		b.edge(head, body, Edge{Cond: s.Cond})
		b.edge(head, after, Edge{Cond: s.Cond, Negate: true})
	} else {
		b.jump(head, body)
	}
	b.targets = append(b.targets, target{label: label, brk: after, cont: cont})
	b.cur = body
	b.stmts(s.Body.List)
	b.targets = b.targets[:len(b.targets)-1]
	if b.cur != nil {
		b.jump(b.cur, cont)
	}
	b.cur = after
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	head := b.newBlock()
	if b.cur != nil {
		b.jump(b.cur, head)
	}
	// The range operand is evaluated once at the head. The RangeStmt
	// itself is conveyed on the body edge (not as a node — its subtree
	// contains the body, which would be walked twice).
	head.Nodes = append(head.Nodes, s.X)
	body := b.newBlock()
	after := b.newBlock()
	b.edge(head, body, Edge{Range: s})
	b.jump(head, after)
	b.targets = append(b.targets, target{label: label, brk: after, cont: head})
	b.cur = body
	b.stmts(s.Body.List)
	b.targets = b.targets[:len(b.targets)-1]
	if b.cur != nil {
		b.jump(b.cur, head)
	}
	b.cur = after
}

func (b *builder) switchStmt(s *ast.SwitchStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	cond := b.ensure()
	after := b.newBlock()
	b.targets = append(b.targets, target{label: label, brk: after})
	clauses := s.Body.List
	blocks := make([]*Block, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock()
	}
	hasDefault := false
	savedFall := b.fall
	for i, cs := range clauses {
		cc := cs.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		b.edge(cond, blocks[i], Edge{})
		for _, e := range cc.List {
			blocks[i].Nodes = append(blocks[i].Nodes, e)
		}
		b.fall = nil
		if i+1 < len(clauses) {
			b.fall = blocks[i+1]
		}
		b.cur = blocks[i]
		b.stmts(cc.Body)
		if b.cur != nil {
			b.jump(b.cur, after)
		}
	}
	b.fall = savedFall
	b.targets = b.targets[:len(b.targets)-1]
	if !hasDefault {
		b.jump(cond, after)
	}
	b.cur = after
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Assign)
	cond := b.cur
	after := b.newBlock()
	b.targets = append(b.targets, target{label: label, brk: after})
	hasDefault := false
	for _, cs := range s.Body.List {
		cc := cs.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		blk := b.newBlock()
		b.edge(cond, blk, Edge{})
		b.cur = blk
		b.stmts(cc.Body)
		if b.cur != nil {
			b.jump(b.cur, after)
		}
	}
	b.targets = b.targets[:len(b.targets)-1]
	if !hasDefault {
		b.jump(cond, after)
	}
	b.cur = after
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	sel := b.ensure()
	after := b.newBlock()
	b.targets = append(b.targets, target{label: label, brk: after})
	for _, cs := range s.Body.List {
		cc := cs.(*ast.CommClause)
		blk := b.newBlock()
		b.edge(sel, blk, Edge{})
		if cc.Comm != nil {
			blk.Nodes = append(blk.Nodes, cc.Comm)
		}
		b.cur = blk
		b.stmts(cc.Body)
		if b.cur != nil {
			b.jump(b.cur, after)
		}
	}
	b.targets = b.targets[:len(b.targets)-1]
	// An empty select{} blocks forever: after keeps no preds and the
	// tail is unreachable, which is exactly right.
	b.cur = after
}

// noReturn reports whether the call expression never returns: the
// panic builtin, os.Exit, runtime.Goexit, or log.Fatal*.
func (b *builder) noReturn(x ast.Expr) bool {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name != "panic" {
			return false
		}
		if b.info != nil {
			_, isBuiltin := b.info.Uses[fun].(*types.Builtin)
			return isBuiltin
		}
		return true
	case *ast.SelectorExpr:
		pkg, ok := ast.Unparen(fun.X).(*ast.Ident)
		if !ok {
			return false
		}
		if b.info != nil {
			if _, isPkg := b.info.Uses[pkg].(*types.PkgName); !isPkg {
				return false
			}
		}
		switch {
		case pkg.Name == "os" && fun.Sel.Name == "Exit",
			pkg.Name == "runtime" && fun.Sel.Name == "Goexit",
			pkg.Name == "log" && strings.HasPrefix(fun.Sel.Name, "Fatal"):
			return true
		}
	}
	return false
}

// String renders the graph for golden tests: one paragraph per block,
// nodes then successor edges, in construction order.
func (g *Graph) String() string {
	var buf bytes.Buffer
	for _, b := range g.Blocks {
		fmt.Fprintf(&buf, "b%d%s:\n", b.Index, g.mark(b))
		for _, n := range b.Nodes {
			fmt.Fprintf(&buf, "\t%s\n", nodeText(n))
		}
		for _, e := range b.Succs {
			fmt.Fprintf(&buf, "\t-> b%d%s\n", e.To.Index, edgeText(e))
		}
	}
	return buf.String()
}

func (g *Graph) mark(b *Block) string {
	switch b {
	case g.Entry:
		return " (entry)"
	case g.Exit:
		return " (exit)"
	}
	return ""
}

func edgeText(e *Edge) string {
	switch {
	case e.IsPanic:
		return " panic"
	case e.Range != nil:
		return " range"
	case e.Cond != nil && e.Negate:
		return " if !(" + nodeText(e.Cond) + ")"
	case e.Cond != nil:
		return " if " + nodeText(e.Cond)
	}
	return ""
}

// nodeText prints a node on one line, whitespace-collapsed and
// truncated, for deterministic dumps.
func nodeText(n ast.Node) string {
	var buf bytes.Buffer
	printer.Fprint(&buf, token.NewFileSet(), n)
	s := strings.Join(strings.Fields(buf.String()), " ")
	if len(s) > 60 {
		s = s[:57] + "..."
	}
	return s
}
