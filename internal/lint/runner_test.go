package lint_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/atomicfield"
)

// TestCrossPackageFacts drives the full multichecker stack — go list,
// from-source type-checking, fact collection in dependency order —
// over a two-package fixture where the atomic use (in lib) and the
// plain read (in app) live in different packages.
func TestCrossPackageFacts(t *testing.T) {
	res, err := lint.Run(".", []*lint.Analyzer{atomicfield.Analyzer},
		"./testdata/src/lib", "./testdata/src/app")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Findings) != 1 {
		t.Fatalf("got %d findings, expected exactly 1: %v", len(res.Findings), res.Findings)
	}
	f := res.Findings[0]
	if !strings.Contains(f.File, "app.go") {
		t.Errorf("finding at %s, expected it in app.go", f.File)
	}
	if strings.Contains(f.File, "..") || strings.HasPrefix(f.File, "/") {
		t.Errorf("finding path should be relative to the run dir: %s", f.File)
	}
	if !strings.Contains(f.Message, "plain read of atomic field Dropped") {
		t.Errorf("unexpected message: %s", f.Message)
	}
	if !strings.Contains(f.Message, "lib.go") {
		t.Errorf("message should cite the atomic use site in lib.go: %s", f.Message)
	}
}
