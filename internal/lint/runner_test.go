package lint_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/atomicfield"
)

// TestCrossPackageFacts drives the full multichecker stack — go list,
// from-source type-checking, fact collection in dependency order —
// over a two-package fixture where the atomic use (in lib) and the
// plain read (in app) live in different packages.
func TestCrossPackageFacts(t *testing.T) {
	res, err := lint.Run(".", []*lint.Analyzer{atomicfield.Analyzer},
		"./testdata/src/lib", "./testdata/src/app")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Diagnostics) != 1 {
		t.Fatalf("got %d diagnostics, expected exactly 1: %v", len(res.Diagnostics), res.Diagnostics)
	}
	d := res.Diagnostics[0]
	pos := res.Fset.Position(d.Pos)
	if !strings.Contains(pos.Filename, "app.go") {
		t.Errorf("diagnostic at %s, expected it in app.go", pos)
	}
	if !strings.Contains(d.Message, "plain read of atomic field Dropped") {
		t.Errorf("unexpected message: %s", d.Message)
	}
	if !strings.Contains(d.Message, "lib.go") {
		t.Errorf("message should cite the atomic use site in lib.go: %s", d.Message)
	}
}
