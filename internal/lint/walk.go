package lint

import "go/ast"

// WalkStack traverses every file depth-first, calling fn with each
// node and the stack of its ancestors (outermost first, not including
// the node itself). fn returning false prunes the subtree.
func (p *Pass) WalkStack(fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			ok := fn(n, stack)
			if ok {
				stack = append(stack, n)
			}
			return ok
		})
	}
}
