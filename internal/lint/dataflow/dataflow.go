// Package dataflow provides the fixpoint machinery the haystacklint
// invariant analyzers share: a generic forward worklist solver over
// internal/lint/cfg graphs, a reaching-definitions analysis, and the
// Bounds lattice — a set of difference constraints used by wirebounds
// to prove that slice accesses are dominated by length guards.
//
// Everything here is per-function and flow-sensitive; cross-package
// reasoning stays in the analyzers, which exchange summaries through
// the lint.Facts mechanism.
package dataflow

import (
	"go/ast"

	"repro/internal/lint/cfg"
)

// Problem describes one forward dataflow analysis over a CFG. States
// are treated as immutable values: Transfer and Refine must return
// fresh states (or the input unchanged) rather than mutate in place.
type Problem[S any] struct {
	// Entry is the state on function entry.
	Entry S
	// Join merges two states where control-flow paths meet. For a
	// must-analysis (facts that hold on every path) Join is
	// intersection; for a may-analysis it is union.
	Join func(a, b S) S
	// Equal detects convergence.
	Equal func(a, b S) bool
	// Transfer applies one block node.
	Transfer func(s S, n ast.Node) S
	// Refine, when non-nil, specializes the state along a branch edge
	// (e.g. admitting the edge's condition as a fact).
	Refine func(s S, e *cfg.Edge) S
}

// Result carries the fixpoint: the state at each block's entry and
// exit. Blocks unreachable from Entry are absent from both maps.
type Result[S any] struct {
	In, Out map[*cfg.Block]S
}

// Solve runs p to fixpoint over g with a standard worklist.
func Solve[S any](g *cfg.Graph, p Problem[S]) *Result[S] {
	res := &Result[S]{
		In:  make(map[*cfg.Block]S),
		Out: make(map[*cfg.Block]S),
	}
	res.In[g.Entry] = p.Entry
	work := []*cfg.Block{g.Entry}
	inWork := map[*cfg.Block]bool{g.Entry: true}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b] = false

		s := res.In[b]
		for _, n := range b.Nodes {
			s = p.Transfer(s, n)
		}
		res.Out[b] = s

		for _, e := range b.Succs {
			es := s
			if p.Refine != nil {
				es = p.Refine(es, e)
			}
			old, seen := res.In[e.To]
			next := es
			if seen {
				next = p.Join(old, es)
				if p.Equal(next, old) {
					continue
				}
			}
			res.In[e.To] = next
			if !inWork[e.To] {
				work = append(work, e.To)
				inWork[e.To] = true
			}
		}
	}
	return res
}
