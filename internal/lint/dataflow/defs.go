package dataflow

// Reaching definitions: which assignments can have produced the value
// of a local variable at a given program point. The golifetime
// analyzer uses this to resolve close(ch) through local aliases
// (ch := d.evCh; ...; close(ch) closes the field), and it is the
// canonical client of Solve for tests.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/lint/cfg"
)

type defSet map[ast.Node]bool

type defState map[types.Object]defSet

// Defs is the result of a reaching-definitions analysis over one
// function body.
type Defs struct {
	info   *types.Info
	res    *Result[defState]
	loc    map[ast.Node]nodeLoc
	impure map[types.Object]bool
}

type nodeLoc struct {
	b *cfg.Block
	i int
}

// ReachingDefs analyzes g. Definitions are AssignStmt, IncDecStmt,
// ValueSpec, and RangeStmt nodes; variables whose address is taken or
// that are referenced by a function literal are conservatively
// "impure" and report no definitions.
func ReachingDefs(g *cfg.Graph, info *types.Info) *Defs {
	d := &Defs{
		info:   info,
		loc:    make(map[ast.Node]nodeLoc),
		impure: make(map[types.Object]bool),
	}
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			d.loc[n] = nodeLoc{b, i}
			d.scanImpure(n)
		}
	}
	d.res = Solve(g, Problem[defState]{
		Entry:    defState{},
		Join:     joinDefs,
		Equal:    equalDefs,
		Transfer: d.transfer,
		Refine:   d.refine,
	})
	return d
}

// At returns the definitions of obj reaching node n (which must be a
// block node: a statement or branch condition), ordered by position.
// nil means "unknown": obj is impure, n is unreachable or not in the
// graph, or the value predates the function (parameter, captured or
// package-level state).
func (d *Defs) At(n ast.Node, obj types.Object) []ast.Node {
	if obj == nil || d.impure[obj] {
		return nil
	}
	l, ok := d.loc[n]
	if !ok {
		return nil
	}
	s, ok := d.res.In[l.b]
	if !ok {
		return nil
	}
	for _, m := range l.b.Nodes[:l.i] {
		s = d.transfer(s, m)
	}
	set := s[obj]
	if len(set) == 0 {
		return nil
	}
	out := make([]ast.Node, 0, len(set))
	for def := range set {
		out = append(out, def)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

func (d *Defs) transfer(s defState, n ast.Node) defState {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			s = d.define(s, lhs, n)
		}
	case *ast.IncDecStmt:
		s = d.define(s, n.X, n)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						s = d.define(s, name, vs)
					}
				}
			}
		}
	}
	return s
}

func (d *Defs) refine(s defState, e *cfg.Edge) defState {
	if e.Range == nil {
		return s
	}
	if e.Range.Key != nil {
		s = d.define(s, e.Range.Key, e.Range)
	}
	if e.Range.Value != nil {
		s = d.define(s, e.Range.Value, e.Range)
	}
	return s
}

func (d *Defs) define(s defState, lhs ast.Expr, node ast.Node) defState {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return s
	}
	obj := d.varObj(id)
	if obj == nil {
		return s
	}
	ns := make(defState, len(s)+1)
	for k, v := range s {
		ns[k] = v
	}
	ns[obj] = defSet{node: true}
	return ns
}

func (d *Defs) varObj(id *ast.Ident) types.Object {
	if v, ok := d.info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := d.info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// scanImpure marks objects reaching beyond simple local dataflow:
// address-taken variables and anything a function literal touches.
func (d *Defs) scanImpure(n ast.Node) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			ast.Inspect(x.Body, func(y ast.Node) bool {
				if id, ok := y.(*ast.Ident); ok {
					if v, ok := d.info.Uses[id].(*types.Var); ok {
						d.impure[v] = true
					}
				}
				return true
			})
			return false
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
					if v, ok := d.info.Uses[id].(*types.Var); ok {
						d.impure[v] = true
					}
				}
			}
		}
		return true
	})
}

func joinDefs(a, b defState) defState {
	out := make(defState, len(a)+len(b))
	for obj, set := range a {
		out[obj] = set
	}
	for obj, set := range b {
		if cur, ok := out[obj]; ok {
			merged := make(defSet, len(cur)+len(set))
			for n := range cur {
				merged[n] = true
			}
			for n := range set {
				merged[n] = true
			}
			out[obj] = merged
		} else {
			out[obj] = set
		}
	}
	return out
}

func equalDefs(a, b defState) bool {
	if len(a) != len(b) {
		return false
	}
	for obj, as := range a {
		bs, ok := b[obj]
		if !ok || len(as) != len(bs) {
			return false
		}
		for n := range as {
			if !bs[n] {
				return false
			}
		}
	}
	return true
}
