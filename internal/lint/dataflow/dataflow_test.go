package dataflow_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/cfg"
	"repro/internal/lint/dataflow"
)

// buildTyped parses and type-checks src, returning the named
// function's CFG plus the info needed by the analyses.
func buildTyped(t *testing.T, src, fn string) (*cfg.Graph, *ast.File, *types.Info, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := lint.NewTypesInfo()
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			return cfg.New(fd.Body, info), f, info, fset
		}
	}
	t.Fatalf("no function %q", fn)
	return nil, nil, nil, nil
}

func TestReachingDefsThroughBranch(t *testing.T) {
	g, f, info, _ := buildTyped(t, `
package p

type s struct{ ch chan int }

func f(d *s, cond bool) {
	ch := d.ch
	if cond {
		ch = make(chan int)
	}
	close(ch)
}
`, "f")
	defs := dataflow.ReachingDefs(g, info)

	// Locate the close call's block node and ch's object.
	var closeStmt ast.Node
	var chObj types.Object
	ast.Inspect(f, func(n ast.Node) bool {
		if es, ok := n.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "close" {
					closeStmt = es
					chObj = info.Uses[call.Args[0].(*ast.Ident)]
				}
			}
		}
		return true
	})
	if closeStmt == nil || chObj == nil {
		t.Fatal("close(ch) not found")
	}
	got := defs.At(closeStmt, chObj)
	if len(got) != 2 {
		t.Fatalf("defs reaching close(ch) = %d, want 2 (init + branch)", len(got))
	}
	// Both definitions are assignments; the first is the alias of the
	// field (ch := d.ch).
	first, ok := got[0].(*ast.AssignStmt)
	if !ok {
		t.Fatalf("first def is %T, want *ast.AssignStmt", got[0])
	}
	if _, ok := first.Rhs[0].(*ast.SelectorExpr); !ok {
		t.Errorf("first def RHS is %T, want field selector", first.Rhs[0])
	}
}

func TestReachingDefsKill(t *testing.T) {
	g, f, info, _ := buildTyped(t, `
package p

func f() int {
	x := 1
	x = 2
	return x
}
`, "f")
	defs := dataflow.ReachingDefs(g, info)
	var ret ast.Node
	var xObj types.Object
	ast.Inspect(f, func(n ast.Node) bool {
		if rs, ok := n.(*ast.ReturnStmt); ok {
			ret = rs
			xObj = info.Uses[rs.Results[0].(*ast.Ident)]
		}
		return true
	})
	got := defs.At(ret, xObj)
	if len(got) != 1 {
		t.Fatalf("defs at return = %d, want 1 (x = 2 kills x := 1)", len(got))
	}
	as := got[0].(*ast.AssignStmt)
	if as.Tok != token.ASSIGN {
		t.Errorf("surviving def token = %v, want =", as.Tok)
	}
}

func TestReachingDefsImpure(t *testing.T) {
	g, f, info, _ := buildTyped(t, `
package p

func g(p *int)

func f() int {
	x := 1
	g(&x)
	return x
}
`, "f")
	defs := dataflow.ReachingDefs(g, info)
	var ret ast.Node
	var xObj types.Object
	ast.Inspect(f, func(n ast.Node) bool {
		if rs, ok := n.(*ast.ReturnStmt); ok {
			ret = rs
			xObj = info.Uses[rs.Results[0].(*ast.Ident)]
		}
		return true
	})
	if got := defs.At(ret, xObj); got != nil {
		t.Fatalf("address-taken variable reported defs %v, want nil (unknown)", got)
	}
}

func TestBoundsProveTransitive(t *testing.T) {
	var b dataflow.Bounds
	// off+L <= recLen, recLen <= len(body)  =>  off+L <= len(body)
	b = b.With("off+L", "recLen", 0)
	b = b.With("recLen", "len(body)", 0)
	if !b.Prove("off+L", "len(body)", 0) {
		t.Error("transitive bound not proven")
	}
	if b.Prove("len(body)", "off+L", 0) {
		t.Error("reverse bound should not be provable")
	}
}

func TestBoundsConstants(t *testing.T) {
	var b dataflow.Bounds
	// len(msg) >= 16  is  Zero - len(msg) <= -16
	b = b.With(dataflow.Zero, "len(msg)", -16)
	// query: 4 <= len(msg)  is  Zero - len(msg) <= -4
	if !b.Prove(dataflow.Zero, "len(msg)", -4) {
		t.Error("weaker constant bound not proven")
	}
	if b.Prove(dataflow.Zero, "len(msg)", -17) {
		t.Error("stronger constant bound should not be provable")
	}
}

func TestBoundsJoinIntersects(t *testing.T) {
	var a, b dataflow.Bounds
	a = a.With("x", "len(s)", 0).With(dataflow.Zero, "len(s)", -8)
	b = b.With("x", "len(s)", -1)
	j := dataflow.JoinBounds(a, b)
	if !j.Prove("x", "len(s)", 0) {
		t.Error("common fact lost at join")
	}
	if j.Prove("x", "len(s)", -1) {
		t.Error("join kept the tighter one-sided bound")
	}
	if j.Prove(dataflow.Zero, "len(s)", -8) {
		t.Error("join kept a one-branch fact")
	}
}

func TestBoundsKill(t *testing.T) {
	var b dataflow.Bounds
	b = b.With("off", "len(body)", 0).With(dataflow.Zero, "len(body)", -4)
	b = b.Kill(func(term string) bool { return term == "off" })
	if b.Prove("off", "len(body)", 0) {
		t.Error("killed fact still provable")
	}
	if !b.Prove(dataflow.Zero, "len(body)", -4) {
		t.Error("unrelated fact lost by kill")
	}
}

func TestBoundsEq(t *testing.T) {
	var b dataflow.Bounds
	// n == len(s): slicing s[:n] (n <= len(s)) and indexing by
	// anything < n are both fine.
	b = b.WithEq("n", "len(s)", 0)
	if !b.Prove("n", "len(s)", 0) || !b.Prove("len(s)", "n", 0) {
		t.Error("equality did not yield both directions")
	}
}
