package dataflow

// Bounds — the flow lattice behind wirebounds. A state is a
// conjunction of difference constraints `x - y <= k` over opaque
// string terms (the analyzer canonicalizes expressions like `off`,
// `len(msg)`, or `off+int(f.Length)` to terms; the distinguished Zero
// term anchors constants). Must-facts compose by intersection at
// joins, and proving a query is a shortest-path reachability question
// on the constraint graph — the classical difference-constraint
// system, sized here for the handful of facts a length-guarded decode
// function accumulates.

import (
	"fmt"
	"sort"
	"strings"
)

// Zero is the constant-0 term: a constraint `x - Zero <= 5` means
// x <= 5, and `Zero - x <= -5` means x >= 5.
const Zero = "0"

type boundKey struct{ x, y string }

// Bounds is an immutable constraint set. The zero value is the empty
// set (no facts).
type Bounds struct {
	m map[boundKey]int
}

// With returns b plus the fact `x - y <= k` (keeping the tighter bound
// if one already exists). Adding a fact about identical terms is a
// no-op: x - x <= k is vacuous for k >= 0 and a contradiction
// otherwise, neither of which we track.
func (b Bounds) With(x, y string, k int) Bounds {
	if x == y {
		return b
	}
	key := boundKey{x, y}
	if old, ok := b.m[key]; ok && old <= k {
		return b
	}
	m := make(map[boundKey]int, len(b.m)+1)
	for kk, vv := range b.m {
		m[kk] = vv
	}
	m[key] = k
	return Bounds{m}
}

// WithEq returns b plus `x == y + k` (both directions).
func (b Bounds) WithEq(x, y string, k int) Bounds {
	return b.With(x, y, k).With(y, x, -k)
}

// Prove reports whether `x - y <= k` follows from the constraint set,
// by relaxing the difference-constraint graph (edge y'→x' of weight
// k' per fact `x' - y' <= k'`) from y.
func (b Bounds) Prove(x, y string, k int) bool {
	if x == y {
		return k >= 0
	}
	if len(b.m) == 0 {
		return false
	}
	dist := map[string]int{y: 0}
	// Bellman-Ford: |terms| rounds bound simple paths; the constraint
	// sets here are tiny, so the quadratic worst case is irrelevant.
	terms := make(map[string]bool, len(b.m))
	for kk := range b.m {
		terms[kk.x] = true
		terms[kk.y] = true
	}
	for range len(terms) + 1 {
		changed := false
		for kk, w := range b.m {
			dy, ok := dist[kk.y]
			if !ok {
				continue
			}
			if dx, ok := dist[kk.x]; !ok || dy+w < dx {
				dist[kk.x] = dy + w
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	dx, ok := dist[x]
	return ok && dx <= k
}

// Kill returns b without any constraint mentioning a term for which
// stale returns true (Zero excepted — constants never go stale).
func (b Bounds) Kill(stale func(term string) bool) Bounds {
	var m map[boundKey]int
	for kk, vv := range b.m {
		if (kk.x != Zero && stale(kk.x)) || (kk.y != Zero && stale(kk.y)) {
			continue
		}
		if m == nil {
			m = make(map[boundKey]int, len(b.m))
		}
		m[kk] = vv
	}
	if len(m) == len(b.m) {
		return b
	}
	return Bounds{m}
}

// JoinBounds intersects two fact sets: a constraint survives only if
// both branches establish it, at the looser of the two bounds.
func JoinBounds(a, b Bounds) Bounds {
	var m map[boundKey]int
	for kk, va := range a.m {
		if vb, ok := b.m[kk]; ok {
			if m == nil {
				m = make(map[boundKey]int)
			}
			if vb > va {
				m[kk] = vb
			} else {
				m[kk] = va
			}
		}
	}
	return Bounds{m}
}

// EqualBounds reports set equality.
func EqualBounds(a, b Bounds) bool {
	if len(a.m) != len(b.m) {
		return false
	}
	for kk, va := range a.m {
		if vb, ok := b.m[kk]; !ok || va != vb {
			return false
		}
	}
	return true
}

// String renders the constraints sorted, for tests and debugging.
func (b Bounds) String() string {
	parts := make([]string, 0, len(b.m))
	for kk, vv := range b.m {
		parts = append(parts, fmt.Sprintf("%s-%s<=%d", kk.x, kk.y, vv))
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ", ") + "}"
}
