// Package linttest runs a haystacklint analyzer over fixture
// packages and checks its findings against `// want "regexp"` comments
// — the analysistest contract, reimplemented on the stdlib so the
// offline build needs no golang.org/x/tools.
//
// Fixtures live under the analyzer's testdata/src/<pkg>/ and may
// import the standard library (type-checked from GOROOT source) and,
// with RunMulti, earlier fixture packages by their bare name — which
// exercises cross-package facts exactly as the real drivers flow them
// down the import graph. Every diagnostic must be matched by a want
// comment on its line, and every want comment must be matched by a
// diagnostic; haystack:allow suppression is honored exactly as the
// real drivers honor it.
package linttest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint"
)

// stdlibMu serializes fixture type-checking: the from-source stdlib
// importer is not safe for concurrent use.
var stdlibMu sync.Mutex

// Run analyzes testdata/src/<pkg> (relative to the caller's package
// directory) with a and asserts its diagnostics against the fixture's
// want comments.
func Run(t *testing.T, a *lint.Analyzer, pkg string) {
	t.Helper()
	RunMulti(t, a, pkg)
}

// RunMulti analyzes several fixture packages in order with one shared
// fact store: each package is Collected then Run before the next
// package is touched, so facts flow strictly down the import graph —
// exactly the order both real drivers (multichecker and unitchecker)
// guarantee. A later package may import an earlier one by its fixture
// name. Wants are asserted in every listed package.
func RunMulti(t *testing.T, a *lint.Analyzer, pkgs ...string) {
	t.Helper()
	stdlibMu.Lock()
	defer stdlibMu.Unlock()

	fset := token.NewFileSet()
	imp := &fixtureImporter{
		base:    lint.SourceImporter(fset),
		checked: make(map[string]*types.Package),
	}

	type loadedPkg struct {
		name  string
		files []*ast.File
		tpkg  *types.Package
		info  *types.Info
	}
	var loaded []loadedPkg
	var allFiles []*ast.File
	for _, pkg := range pkgs {
		dir := filepath.Join("testdata", "src", pkg)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		var names []string
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				names = append(names, e.Name())
			}
		}
		sort.Strings(names)
		if len(names) == 0 {
			t.Fatalf("linttest: no fixture files in %s", dir)
		}

		var files []*ast.File
		for _, name := range names {
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				t.Fatalf("linttest: %v", err)
			}
			files = append(files, f)
		}

		info := lint.NewTypesInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(pkg, fset, files, info)
		if err != nil {
			t.Fatalf("linttest: fixture %s does not type-check: %v", pkg, err)
		}
		imp.checked[pkg] = tpkg
		loaded = append(loaded, loadedPkg{pkg, files, tpkg, info})
		allFiles = append(allFiles, files...)
	}

	facts := lint.NewFacts()
	var diags []lint.Diagnostic
	for _, lp := range loaded {
		if a.Collect != nil {
			a.Collect(lint.NewPass(a, fset, lp.files, lp.tpkg, lp.info, facts, func(lint.Diagnostic) {}))
		}
		files := lp.files
		report := func(d lint.Diagnostic) {
			if lint.Suppressed(fset, files, d) {
				return
			}
			diags = append(diags, d)
		}
		if err := a.Run(lint.NewPass(a, fset, lp.files, lp.tpkg, lp.info, facts, report)); err != nil {
			t.Fatalf("linttest: %s on %s: %v", a.Name, lp.name, err)
		}
	}

	wants := collectWants(t, fset, allFiles)
	matchedWant := make([]bool, len(wants))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for i, w := range wants {
			if w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				matchedWant[i] = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for i, w := range wants {
		if !matchedWant[i] {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// fixtureImporter resolves fixture packages checked earlier in this
// RunMulti call, deferring everything else (the stdlib) to the
// from-source GOROOT importer.
type fixtureImporter struct {
	base    types.Importer
	checked map[string]*types.Package
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := fi.checked[path]; ok {
		return p, nil
	}
	return fi.base.Import(path)
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// collectWants parses `// want "re" ["re" ...]` comments. The want
// anchors to the line its comment starts on.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []want {
	t.Helper()
	var out []want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := fset.Position(c.Pos())
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 {
					continue
				}
				rest := strings.TrimSpace(text[idx+len("want "):])
				for rest != "" {
					if rest[0] != '"' {
						t.Fatalf("%s: malformed want comment at %q", pos, rest)
					}
					q, err := quotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s: malformed want comment: %v", pos, err)
					}
					lit, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: malformed want pattern %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(lit)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, lit, err)
					}
					out = append(out, want{file: pos.Filename, line: pos.Line, re: re})
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}
	return out
}

// quotedPrefix returns the leading Go string literal of s.
func quotedPrefix(s string) (string, error) {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return s[:i+1], nil
		}
	}
	return "", fmt.Errorf("unterminated string in %q", s)
}
