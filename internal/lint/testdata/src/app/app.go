// Package app is the consumer half of the cross-package fact fixture:
// it reads lib's atomically-written counter plainly. Only the
// atomicfield fact exported by lib's analysis can catch this — nothing
// in this package mentions sync/atomic.
package app

import "repro/internal/lint/testdata/src/lib"

func Stats(c *lib.Collector) uint64 {
	return c.Dropped
}
