package tvariant

import "testing"

// TestInc reads g.N plainly — an atomicfield violation if test files
// were analyzed. Neither driver must report it.
func TestInc(t *testing.T) {
	var g Gauge
	g.Inc()
	if g.N != 1 {
		t.Fatal("not incremented")
	}
}
