// Package tvariant is the test-variant consistency fixture: the
// package itself is clean, but its _test.go file reads the atomic
// counter plainly. The standalone driver never loads test files, so
// the vet driver must skip test variants too — both modes cover
// exactly the same file sets.
package tvariant

import "sync/atomic"

type Gauge struct {
	N uint64
}

func (g *Gauge) Inc() {
	atomic.AddUint64(&g.N, 1)
}
