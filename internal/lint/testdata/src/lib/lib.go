// Package lib is the provider half of the cross-package fact fixture:
// it bumps an exported counter atomically, which obliges every
// importer to do the same.
package lib

import "sync/atomic"

type Collector struct {
	Dropped uint64
}

func (c *Collector) Feed() {
	atomic.AddUint64(&c.Dropped, 1)
}
