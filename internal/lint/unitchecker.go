package lint

// The go-vet side of the driver. `go vet -vettool=haystacklint` does
// not hand the tool a pattern list: for every package in the build
// graph it writes a vet.cfg describing one type-checked unit (file
// list, import map, export-data locations, fact files from
// already-vetted dependencies) and invokes the tool with that config
// as its sole argument. This file implements that contract — the
// subset of it these analyzers need — on the stdlib gc importer.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
)

// vetConfig mirrors cmd/go's vet.cfg JSON (the fields we consume).
type vetConfig struct {
	ID         string
	Compiler   string
	Dir        string
	ImportPath string
	GoFiles    []string

	ImportMap   map[string]string // source import path → canonical package path
	PackageFile map[string]string // package path → export data (.a) file
	PackageVetx map[string]string // package path → vetx fact file from its vet run
	VetxOnly    bool              // compute facts only; report nothing
	VetxOutput  string            // where to write this unit's facts

	SucceedOnTypecheckFailure bool
}

// RunUnit executes analyzers over the single compilation unit described
// by the vet.cfg at cfgPath and returns the process exit code: 0 clean,
// 2 with diagnostics (printed to w), 1 on driver error (printed to w).
func RunUnit(w io.Writer, analyzers []*Analyzer, cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(w, "haystacklint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(w, "haystacklint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// Test files are outside the suite's coverage: the standalone
	// driver loads GoFiles only (go list without -test), and the two
	// modes must agree on what the suite covers. cmd/go hands the tool
	// test code three ways — _test.go files folded into the package's
	// own unit (same ID, no marker), external "p_test" packages whose
	// files are all _test.go, and the generated "p.test" main — so
	// drop _test.go files from every unit and skip .test mains
	// entirely. Units left empty still forward dependency facts so the
	// go command's fact chain stays unbroken.
	goFiles := cfg.GoFiles[:0:0]
	for _, name := range cfg.GoFiles {
		if !strings.HasSuffix(name, "_test.go") {
			goFiles = append(goFiles, name)
		}
	}
	if len(goFiles) == 0 || isTestVariant(cfg.ID) || isTestVariant(cfg.ImportPath) {
		facts, code := loadDepFacts(w, &cfg)
		if code != 0 {
			return code
		}
		return writeVetx(w, &cfg, facts)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(w, "haystacklint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	// Two-step import resolution, as cmd/vet does it: the unit's
	// ImportMap rewrites source-level import paths (vendoring, test
	// variants), then the gc importer reads export data from the
	// exact files the build produced.
	gcImp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		return gcImp.Import(importPath)
	})

	info := NewTypesInfo()
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor(compiler, runtime.GOARCH),
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(w, "haystacklint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	// Facts flow through vetx files: start from the union of every
	// dependency's facts (each file already carries its own transitive
	// closure), add this unit's, and re-export the union so importers
	// of this package see the whole chain.
	facts, code := loadDepFacts(w, &cfg)
	if code != 0 {
		return code
	}

	discard := func(Diagnostic) {}
	for _, a := range analyzers {
		if a.Collect != nil {
			a.Collect(NewPass(a, fset, files, tpkg, info, facts, discard))
		}
	}
	if code := writeVetx(w, &cfg, facts); code != 0 || cfg.VetxOnly {
		return code
	}

	var diags []Diagnostic
	report := func(d Diagnostic) {
		if Suppressed(fset, files, d) {
			return
		}
		diags = append(diags, d)
	}
	for _, a := range analyzers {
		if err := a.Run(NewPass(a, fset, files, tpkg, info, facts, report)); err != nil {
			fmt.Fprintf(w, "haystacklint: %s: %v\n", a.Name, err)
			return 1
		}
	}
	if len(diags) == 0 {
		return 0
	}
	sortDiagnostics(fset, diags)
	for _, d := range diags {
		fmt.Fprintf(w, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	return 2
}

// sortDiagnostics orders by file position for stable output.
func sortDiagnostics(fset *token.FileSet, ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		pi, pj := fset.Position(ds[i].Pos), fset.Position(ds[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Offset < pj.Offset
	})
}

// isTestVariant reports whether an import path names a test build of
// a package: "p [p.test]" (internal test variant), "p_test [p.test]"
// (external test package), or "p.test" (the generated test main).
func isTestVariant(importPath string) bool {
	return strings.Contains(importPath, " [") || strings.HasSuffix(importPath, ".test")
}

// loadDepFacts unions every dependency's vetx facts. Returns a
// non-zero exit code on failure.
func loadDepFacts(w io.Writer, cfg *vetConfig) (*Facts, int) {
	facts := NewFacts()
	for path, vetx := range cfg.PackageVetx {
		data, err := os.ReadFile(vetx)
		if err != nil {
			fmt.Fprintf(w, "haystacklint: reading facts for %s: %v\n", path, err)
			return nil, 1
		}
		var m map[string]map[string]string
		if err := json.Unmarshal(data, &m); err != nil {
			fmt.Fprintf(w, "haystacklint: decoding facts for %s: %v\n", path, err)
			return nil, 1
		}
		facts.Merge(FactsFromMap(m))
	}
	return facts, 0
}

// writeVetx serializes facts to the unit's VetxOutput, if requested.
func writeVetx(w io.Writer, cfg *vetConfig, facts *Facts) int {
	if cfg.VetxOutput == "" {
		return 0
	}
	out, err := json.Marshal(facts.Map())
	if err == nil {
		err = os.WriteFile(cfg.VetxOutput, out, 0o666)
	}
	if err != nil {
		fmt.Fprintf(w, "haystacklint: writing facts: %v\n", err)
		return 1
	}
	return 0
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
