// Package lint is a self-contained static-analysis framework for the
// repository's own invariants — the haystacklint suite. It mirrors the
// shape of golang.org/x/tools/go/analysis (Analyzer, Pass, Diagnostic)
// without depending on it, because this module builds offline from the
// standard library alone.
//
// The suite encodes, as machine checks, the invariants that previous
// PRs enforced by hand and code review:
//
//   - atomicfield: a struct field ever accessed through sync/atomic
//     (or declared with an atomic.* type) must never be read or
//     written plainly — the counter-race class fixed by hand in PR 2/3;
//   - statscomplete: every exported field of a metrics snapshot struct
//     must be referenced by its export code, so new counters cannot
//     silently vanish from /metrics and expvar;
//   - hotpath: functions annotated `// haystack:hotpath` may not call
//     time.Now, fmt, or reflect, and may not allocate maps or
//     closures;
//   - boundedchan: make(chan T) without a capacity is forbidden
//     outside tests unless annotated `// haystack:unbounded <why>`.
//
// The dataflow layer (cfg, dataflow) adds four analyzers that prove
// semantic invariants over per-function control-flow graphs:
//
//   - lockorder: the cross-package mutex-acquisition graph must stay
//     acyclic, and every Lock must have an Unlock on every non-panic
//     path to return;
//   - golifetime: every goroutine started outside tests must have a
//     provable stop path (context cancellation, a package-closed
//     channel, or a joined WaitGroup);
//   - deterministic: map iteration reaching exported bytes (functions
//     annotated `// haystack:deterministic`) must pass through a sort
//     on every path, so exports are byte-stable;
//   - wirebounds: in `// haystack:hotpath` decode functions, every
//     slice index and subslice must be dominated by a length guard.
//
// Drivers: cmd/haystacklint runs the suite either as a standalone
// multichecker over `go list` patterns (loader.go, runner.go) or under
// `go vet -vettool=` via the vet unitchecker protocol
// (unitchecker.go). Tests use linttest, an analysistest-style fixture
// runner driven by `// want "regexp"` comments.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one analysis: a name, documentation, and the
// passes the drivers invoke per package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, fact storage, and
	// `// haystack:allow <name>` suppressions. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description printed by -help.
	Doc string
	// Collect, when set, runs over every package before Run and may
	// export facts (but not report diagnostics). Drivers guarantee a
	// package's dependencies are collected before its dependents, so
	// facts flow down the import graph.
	Collect func(*Pass)
	// Run reports diagnostics for one package. Facts exported by this
	// package's Collect and by its (transitive) dependencies are
	// visible.
	Run func(*Pass) error
}

// Pass carries one analyzed package through an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	facts  *Facts
	report func(Diagnostic)
}

// Diagnostic is one finding, anchored to a position in the analyzed
// package.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// ExportFact publishes a string-keyed fact visible to this analyzer in
// every dependent package (and to Run in this one). Keys must be
// stable across processes — derive them from package paths and object
// names, never from token positions of other packages.
func (p *Pass) ExportFact(key, value string) {
	p.facts.set(p.Analyzer.Name, key, value)
}

// Fact looks up a fact exported by this analyzer in this package or
// any dependency.
func (p *Pass) Fact(key string) (string, bool) {
	return p.facts.get(p.Analyzer.Name, key)
}

// FactKeys returns every fact key visible to this analyzer, sorted.
func (p *Pass) FactKeys() []string {
	return p.facts.keys(p.Analyzer.Name)
}

// Facts is the cross-package fact store: analyzer name → key → value.
// The multichecker keeps one Facts for the whole run; the unitchecker
// serializes it per package (vetx files) so facts survive process
// boundaries.
type Facts struct {
	m map[string]map[string]string
	// hook, when set, observes every exported fact. The multichecker
	// points it at the result cache while one package Collects, so the
	// cache entry records exactly what that package exported.
	hook func(analyzer, key, value string)
}

// NewFacts returns an empty fact store.
func NewFacts() *Facts { return &Facts{m: make(map[string]map[string]string)} }

// SetHook installs (or, with nil, removes) an observer called on every
// subsequent fact export.
func (f *Facts) SetHook(hook func(analyzer, key, value string)) { f.hook = hook }

func (f *Facts) set(analyzer, key, value string) {
	a := f.m[analyzer]
	if a == nil {
		a = make(map[string]string)
		f.m[analyzer] = a
	}
	a[key] = value
	if f.hook != nil {
		f.hook(analyzer, key, value)
	}
}

func (f *Facts) get(analyzer, key string) (string, bool) {
	v, ok := f.m[analyzer][key]
	return v, ok
}

func (f *Facts) keys(analyzer string) []string {
	out := make([]string, 0, len(f.m[analyzer]))
	for k := range f.m[analyzer] {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Merge copies every fact of other into f (other wins on collisions).
func (f *Facts) Merge(other *Facts) {
	for a, kv := range other.m {
		for k, v := range kv {
			f.set(a, k, v)
		}
	}
}

// Map exposes the underlying store for serialization (unitchecker
// vetx files). The returned map must not be mutated.
func (f *Facts) Map() map[string]map[string]string { return f.m }

// FactsFromMap wraps a deserialized store.
func FactsFromMap(m map[string]map[string]string) *Facts {
	if m == nil {
		m = make(map[string]map[string]string)
	}
	return &Facts{m: m}
}

// NewPass assembles a Pass for drivers (runner, unitchecker,
// linttest).
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, facts *Facts, report func(Diagnostic)) *Pass {
	return &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		facts:     facts,
		report:    report,
	}
}

// Inspect walks every file of the pass in depth-first order, calling
// fn for each node; fn returning false prunes the subtree.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// NewTypesInfo returns a types.Info with every map the analyzers
// consult populated.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}
