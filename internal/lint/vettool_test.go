package lint_test

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVetTool exercises the `go vet -vettool=` protocol end to end:
// the -V=full handshake, the -flags query, per-package vet.cfg
// invocations, and cross-package fact flow through vetx files. It
// builds the real binary and vets the same lib/app fixture pair the
// multichecker test uses.
func TestVetTool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to go vet")
	}
	tool := filepath.Join(t.TempDir(), "haystacklint")
	build := exec.Command("go", "build", "-o", tool, "repro/cmd/haystacklint")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building haystacklint: %v\n%s", err, out)
	}

	vet := func(pattern string) (string, error) {
		cmd := exec.Command("go", "vet", "-vettool="+tool, pattern)
		var buf bytes.Buffer
		cmd.Stdout = &buf
		cmd.Stderr = &buf
		err := cmd.Run()
		return buf.String(), err
	}

	if out, err := vet("./testdata/src/lib"); err != nil {
		t.Errorf("clean package failed vet: %v\n%s", err, out)
	}

	out, err := vet("./testdata/src/app")
	if err == nil {
		t.Fatalf("dirty package passed vet; output:\n%s", out)
	}
	if !strings.Contains(out, "plain read of atomic field Dropped") {
		t.Errorf("missing atomicfield diagnostic in vet output:\n%s", out)
	}
	if !strings.Contains(out, "lib.go") {
		t.Errorf("diagnostic should cite lib's atomic use site (fact flow through vetx):\n%s", out)
	}

	// Test-variant consistency: tvariant's _test.go reads an atomic
	// field plainly, but test files are outside the suite's coverage
	// in both modes — vet must skip the "p [p.test]" unit and pass.
	if out, err := vet("./testdata/src/tvariant"); err != nil {
		t.Errorf("test-variant package failed vet — test files must be skipped, as the standalone driver skips them: %v\n%s", err, out)
	}
}
