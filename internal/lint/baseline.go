package lint

// The suppression baseline: a checked-in JSON file that waives known
// findings the suite cannot prove safe but a human has reviewed and
// justified. The contract is deliberately strict:
//
//   - every entry MUST carry a reason; an empty or "TODO"-prefixed
//     reason fails the load, so -write-baseline output (which stamps
//     TODO reasons) cannot be checked in unedited;
//   - an entry that matches no current finding fails the run — stale
//     suppressions must be deleted when the code they excused is
//     fixed, or they would silently waive future regressions;
//   - entries match on analyzer, file, and a message regexp, never on
//     line numbers, so unrelated edits do not churn the baseline.

import (
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strings"
)

// BaselineEntry waives findings from one analyzer in one file whose
// message matches a regexp.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	// File is the slash-separated path relative to the lint run's
	// root, exactly as findings report it.
	File string `json:"file"`
	// Message is an RE2 regexp matched (unanchored) against the
	// finding message.
	Message string `json:"message"`
	// Reason records why this finding is acceptable. Mandatory.
	Reason string `json:"reason"`

	re *regexp.Regexp
}

// Baseline is the file format: a free-form comment plus entries.
type Baseline struct {
	Comment string          `json:"comment,omitempty"`
	Entries []BaselineEntry `json:"entries"`
}

// LoadBaseline reads and validates a baseline file. Every entry must
// name an analyzer and a file, compile as a regexp, and carry a
// human-written reason.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: parsing baseline %s: %v", path, err)
	}
	for i := range b.Entries {
		e := &b.Entries[i]
		if e.Analyzer == "" || e.File == "" {
			return nil, fmt.Errorf("lint: baseline %s entry %d: analyzer and file are required", path, i)
		}
		reason := strings.TrimSpace(e.Reason)
		if reason == "" || strings.HasPrefix(reason, "TODO") {
			return nil, fmt.Errorf("lint: baseline %s entry %d (%s in %s): a real reason is required — explain why this finding is acceptable", path, i, e.Analyzer, e.File)
		}
		re, err := regexp.Compile(e.Message)
		if err != nil {
			return nil, fmt.Errorf("lint: baseline %s entry %d: bad message regexp: %v", path, i, err)
		}
		e.re = re
	}
	return &b, nil
}

// Apply partitions findings into live (kept) and baselined. Baselined
// findings carry the matching entry's reason as their Justification.
// unused lists entries that matched nothing — the caller must treat
// those as an error.
func (b *Baseline) Apply(findings []Finding) (kept, baselined []Finding, unused []BaselineEntry) {
	used := make([]bool, len(b.Entries))
	for _, f := range findings {
		matched := false
		for i := range b.Entries {
			e := &b.Entries[i]
			if e.Analyzer == f.Analyzer && e.File == f.File && e.re.MatchString(f.Message) {
				used[i] = true
				if !matched {
					matched = true
					f.Justification = e.Reason
					baselined = append(baselined, f)
				}
			}
		}
		if !matched {
			kept = append(kept, f)
		}
	}
	for i, u := range used {
		if !u {
			unused = append(unused, b.Entries[i])
		}
	}
	return kept, baselined, unused
}

// WriteBaselineFile generates a baseline covering findings, one entry
// per distinct (analyzer, file, message), with the message quoted as a
// literal regexp. Reasons are stamped "TODO …" so the file is visibly
// unreviewed — LoadBaseline refuses it until every reason is replaced
// with a justification.
func WriteBaselineFile(path string, findings []Finding) error {
	type key struct{ analyzer, file, message string }
	seen := make(map[key]bool)
	b := Baseline{
		Comment: "haystacklint suppression baseline. Every entry needs a reviewed reason; entries matching no finding fail the run.",
		Entries: []BaselineEntry{},
	}
	for _, f := range findings {
		k := key{f.Analyzer, f.File, f.Message}
		if seen[k] {
			continue
		}
		seen[k] = true
		b.Entries = append(b.Entries, BaselineEntry{
			Analyzer: f.Analyzer,
			File:     f.File,
			Message:  regexp.QuoteMeta(f.Message),
			Reason:   "TODO: explain why this finding is acceptable",
		})
	}
	sort.Slice(b.Entries, func(i, j int) bool {
		ei, ej := b.Entries[i], b.Entries[j]
		if ei.File != ej.File {
			return ei.File < ej.File
		}
		if ei.Analyzer != ej.Analyzer {
			return ei.Analyzer < ej.Analyzer
		}
		return ei.Message < ej.Message
	})
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
