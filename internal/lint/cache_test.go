package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/atomicfield"
)

// writeTempModule synthesizes a two-package module — lib exports an
// atomically-written counter, app reads it plainly — mirroring the
// checked-in cross-package fixture, but in a writable directory so the
// test can edit sources and watch cache keys change.
func writeTempModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for path, content := range map[string]string{
		"go.mod": "module tmpcache\n\ngo 1.24\n",
		"lib/lib.go": `package lib

import "sync/atomic"

type Collector struct {
	Dropped uint64
}

func (c *Collector) Feed() {
	atomic.AddUint64(&c.Dropped, 1)
}
`,
		"app/app.go": `package app

import "tmpcache/lib"

func Stats(c *lib.Collector) uint64 {
	return c.Dropped
}
`,
	} {
		full := filepath.Join(dir, path)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestResultCache drives the cached runner end to end: a cold run
// populates the cache, a warm run replays every package without
// re-analysis, and an edit to one package invalidates exactly the
// dependent chain — with cached facts still feeding the re-analysis.
func TestResultCache(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list repeatedly")
	}
	dir := writeTempModule(t)
	cache := filepath.Join(t.TempDir(), "lintcache")
	opts := lint.Options{Dir: dir, CacheDir: cache, SuiteKey: "test-suite"}
	analyzers := []*lint.Analyzer{atomicfield.Analyzer}

	run := func() *lint.RunResult {
		t.Helper()
		res, err := lint.RunWithOptions(opts, analyzers, "./...")
		if err != nil {
			t.Fatalf("RunWithOptions: %v", err)
		}
		return res
	}
	check := func(res *lint.RunResult, why string) {
		t.Helper()
		if len(res.Findings) != 1 {
			t.Fatalf("%s: got %d findings, want the one plain read: %v", why, len(res.Findings), res.Findings)
		}
		f := res.Findings[0]
		if f.File != "app/app.go" || f.Analyzer != "atomicfield" {
			t.Errorf("%s: unexpected finding %+v", why, f)
		}
	}

	cold := run()
	check(cold, "cold run")
	if cold.CacheHits != 0 {
		t.Errorf("cold run reported %d cache hits", cold.CacheHits)
	}

	warm := run()
	check(warm, "warm run")
	if warm.CacheHits != 2 {
		t.Errorf("warm run hit %d packages, want 2 (lib and app)", warm.CacheHits)
	}

	// Edit app only: lib must replay from cache, and the re-analysis
	// of app must still see lib's cached atomicfield fact — the
	// finding depends on it.
	appPath := filepath.Join(dir, "app", "app.go")
	data, err := os.ReadFile(appPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(appPath, append(data, []byte("\nfunc Twice(c *lib.Collector) uint64 { return Stats(c) * 2 }\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	edited := run()
	check(edited, "after editing app")
	if edited.CacheHits != 1 {
		t.Errorf("after editing app: %d cache hits, want 1 (lib only)", edited.CacheHits)
	}

	// Edit lib: the key chain must invalidate app too.
	libPath := filepath.Join(dir, "lib", "lib.go")
	data, err = os.ReadFile(libPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(libPath, append(data, []byte("\nfunc (c *Collector) Touch() {}\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	invalidated := run()
	check(invalidated, "after editing lib")
	if invalidated.CacheHits != 0 {
		t.Errorf("after editing lib: %d cache hits, want 0 (chain invalidation)", invalidated.CacheHits)
	}

	final := run()
	check(final, "final warm run")
	if final.CacheHits != 2 {
		t.Errorf("final warm run hit %d packages, want 2", final.CacheHits)
	}
}
