// Fixture mirroring the PR 3 counter race: Dropped is a plain uint64
// bumped with atomic.AddUint64 on the feed path, so every other access
// must be atomic too. Gaps shows the typed-atomic variant.
package a

import "sync/atomic"

type Collector struct {
	Dropped uint64
	Gaps    atomic.Uint64
	name    string
}

func (c *Collector) feed() {
	atomic.AddUint64(&c.Dropped, 1) // the use that makes Dropped atomic
	c.Gaps.Add(1)                   // method calls are sanctioned
}

func (c *Collector) statsBad() uint64 {
	return c.Dropped // want "plain read of atomic field Dropped"
}

func (c *Collector) resetBad() {
	c.Dropped = 0 // want "plain write to atomic field Dropped"
	c.Dropped++   // want "plain write to atomic field Dropped"
}

func newBad() *Collector {
	return &Collector{Dropped: 1} // want "plain write .composite literal. to atomic field Dropped"
}

func copyBad(c *Collector) uint64 {
	g := c.Gaps // want "plain read of atomic field Gaps"
	return g.Load()
}

func statsGood(c *Collector) uint64 {
	return atomic.LoadUint64(&c.Dropped) + c.Gaps.Load()
}

func addrGood(c *Collector) *atomic.Uint64 {
	return &c.Gaps // taking the address to pass the atomic around is fine
}

func nameGood(c *Collector) string {
	return c.name // never accessed atomically; plain access is fine
}

func allowGood(c *Collector) uint64 {
	return c.Dropped // haystack:allow atomicfield test-only read after goroutines stopped
}
