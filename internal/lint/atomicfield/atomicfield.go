// Package atomicfield enforces the repo's hardest-won concurrency
// invariant: once a struct field is accessed through sync/atomic — or
// is declared with an atomic.* type — every access must be atomic.
// Mixed plain/atomic access is exactly the Dropped/Gaps counter race
// class that PR 2/3 had to fix by hand after it surfaced in CI.
package atomicfield

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint"
)

// Analyzer flags plain reads and writes of atomically-accessed struct
// fields.
var Analyzer = &lint.Analyzer{
	Name:    "atomicfield",
	Doc:     "a field accessed via sync/atomic must never be read or written plainly",
	Collect: collect,
	Run:     run,
}

// collect exports one fact per named-struct field this package
// accesses with a sync/atomic call, keyed by its stable object path,
// so dependent packages can police plain access to exported counters.
func collect(pass *lint.Pass) {
	if pass.TypesInfo == nil {
		return // dependency loaded signatures-only
	}
	keys := newKeyCache()
	for f, pos := range atomicUses(pass) {
		if key, ok := keys.of(f); ok {
			pass.ExportFact(key, pass.Fset.Position(pos).String())
		}
	}
}

func run(pass *lint.Pass) error {
	local := atomicUses(pass)
	keys := newKeyCache()

	// why explains, per field, what makes it atomic — a local atomic
	// use site, an imported fact, or its declared type.
	why := func(f *types.Var) (string, bool) {
		if isAtomicType(f.Type()) {
			return fmt.Sprintf("it has type %s", f.Type()), true
		}
		if pos, ok := local[f]; ok {
			return fmt.Sprintf("it is accessed with sync/atomic at %s", pass.Fset.Position(pos)), true
		}
		if key, ok := keys.of(f); ok {
			if at, ok := pass.Fact(key); ok {
				return fmt.Sprintf("it is accessed with sync/atomic at %s", at), true
			}
		}
		return "", false
	}

	pass.WalkStack(func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := pass.TypesInfo.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return true
		}
		f, ok := s.Obj().(*types.Var)
		if !ok {
			return true
		}
		reason, atomic := why(f)
		if !atomic {
			return true
		}
		switch use := classify(pass, sel, stack); use {
		case useAtomic, useMethod, useAddr:
			// &f handed to sync/atomic, f.Load()-style method calls,
			// and address-taking (to pass an *atomic.T around) are the
			// sanctioned access forms.
		case useWrite:
			report(pass, sel, f, "plain write to", reason)
		default:
			report(pass, sel, f, "plain read of", reason)
		}
		return true
	})

	// Composite-literal keys assign fields without a SelectorExpr:
	// S{Dropped: 3} is a plain write in disguise.
	pass.WalkStack(func(n ast.Node, stack []ast.Node) bool {
		kv, ok := n.(*ast.KeyValueExpr)
		if !ok {
			return true
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			return true
		}
		f, ok := pass.TypesInfo.Uses[key].(*types.Var)
		if !ok || !f.IsField() {
			return true
		}
		if reason, atomic := why(f); atomic {
			report(pass, kv, f, "plain write (composite literal) to", reason)
		}
		return true
	})
	return nil
}

func report(pass *lint.Pass, at ast.Node, f *types.Var, verb, reason string) {
	pass.Reportf(at.Pos(),
		"%s atomic field %s: %s; every access must go through sync/atomic (or annotate // haystack:allow atomicfield <why>)",
		verb, f.Name(), reason)
}

type useKind int

const (
	useRead useKind = iota
	useWrite
	useAddr
	useMethod
	useAtomic
)

// classify decides how a field selector is being used, from its
// ancestor chain.
func classify(pass *lint.Pass, sel *ast.SelectorExpr, stack []ast.Node) useKind {
	// Walk up through parenthesization.
	up := func(i int) ast.Node {
		for ; i >= 0; i-- {
			if _, ok := stack[i].(*ast.ParenExpr); !ok {
				return stack[i]
			}
		}
		return nil
	}
	parent := up(len(stack) - 1)
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		// x.f.M(...): method or nested-field selection on the field.
		if s := pass.TypesInfo.Selections[p]; s != nil && s.Kind() == types.MethodVal {
			return useMethod
		}
		// Selecting a nested plain field through an atomic field is a
		// plain read of the atomic one.
		return useRead
	case *ast.UnaryExpr:
		if p.Op != token.AND {
			return useRead
		}
		// &x.f: sanctioned when handed straight to a sync/atomic call.
		if call, ok := up(len(stack) - 2).(*ast.CallExpr); ok && isAtomicCall(pass, call) {
			return useAtomic
		}
		return useAddr
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if unparen(lhs) == sel {
				return useWrite
			}
		}
		return useRead
	case *ast.IncDecStmt:
		return useWrite
	}
	return useRead
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// atomicUses maps every named-struct field whose address is passed to
// a sync/atomic function in this package to one such call site.
func atomicUses(pass *lint.Pass) map[*types.Var]token.Pos {
	out := make(map[*types.Var]token.Pos)
	if pass.TypesInfo == nil {
		return out
	}
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isAtomicCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			u, ok := unparen(arg).(*ast.UnaryExpr)
			if !ok || u.Op != token.AND {
				continue
			}
			sel, ok := unparen(u.X).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			if s := pass.TypesInfo.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
				if f, ok := s.Obj().(*types.Var); ok {
					if _, seen := out[f]; !seen {
						out[f] = call.Pos()
					}
				}
			}
		}
		return true
	})
	return out
}

// isAtomicCall reports whether the call's callee is a function from
// package sync/atomic (by object identity, so import aliasing cannot
// hide it).
func isAtomicCall(pass *lint.Pass, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	fn, ok := obj.(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" && fn.Type().(*types.Signature).Recv() == nil
}

// isAtomicType reports whether t is (a pointer to) one of the
// sync/atomic value types.
func isAtomicType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// keyCache computes stable cross-process identifiers for fields of
// package-scope named structs: "pkgpath.Type.Field". Fields of
// anonymous or function-local structs get no key (and therefore no
// cross-package fact) — plain access to those is still caught within
// their own package via object identity.
type keyCache struct {
	m map[*types.Package]map[*types.Var]string
}

func newKeyCache() *keyCache {
	return &keyCache{m: make(map[*types.Package]map[*types.Var]string)}
}

func (kc *keyCache) of(f *types.Var) (string, bool) {
	pkg := f.Pkg()
	if pkg == nil {
		return "", false
	}
	fields, ok := kc.m[pkg]
	if !ok {
		fields = make(map[*types.Var]string)
		scope := pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				fields[st.Field(i)] = pkg.Path() + "." + name + "." + st.Field(i).Name()
			}
		}
		kc.m[pkg] = fields
	}
	key, ok := fields[f]
	return key, ok
}
