package lint

// haystack: directives — the annotation language the analyzers read.
//
//	// haystack:hotpath                      (function doc)
//	// haystack:metrics-struct               (type doc)
//	// haystack:metrics-export               (function doc)
//	// haystack:unbounded <why>              (line of, or line above, a make(chan T))
//	// haystack:allow <analyzer> <why>       (line of, or line above, a finding)
//
// Directives are ordinary line comments so they survive gofmt and
// need no build-system support; like go:build lines they bind by
// position, not parsing context.

import (
	"go/ast"
	"go/token"
	"strings"
)

// directivePrefix opens every haystacklint annotation.
const directivePrefix = "haystack:"

// Directive is one parsed annotation: its name (after "haystack:"),
// its free-form argument tail, and where it appeared.
type Directive struct {
	Name string
	Args string
	Pos  token.Pos
}

// parseDirective extracts a directive from one comment's text, if any.
func parseDirective(c *ast.Comment) (Directive, bool) {
	text := strings.TrimPrefix(c.Text, "//")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, directivePrefix) {
		return Directive{}, false
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	name, args, _ := strings.Cut(rest, " ")
	return Directive{Name: name, Args: strings.TrimSpace(args), Pos: c.Pos()}, true
}

// DocDirective reports whether doc carries the named directive and
// returns its argument tail.
func DocDirective(doc *ast.CommentGroup, name string) (Directive, bool) {
	if doc == nil {
		return Directive{}, false
	}
	for _, c := range doc.List {
		if d, ok := parseDirective(c); ok && d.Name == name {
			return d, true
		}
	}
	return Directive{}, false
}

// LineDirectives indexes every directive of a file by the source line
// it governs: the line the comment sits on, which also covers the
// following line when the comment stands alone (annotation above the
// statement, the dominant style for long reasons).
type LineDirectives struct {
	fset  *token.FileSet
	lines map[int][]Directive
}

// FileDirectives collects the line-anchored directives of one file.
func FileDirectives(fset *token.FileSet, file *ast.File) *LineDirectives {
	ld := &LineDirectives{fset: fset, lines: make(map[int][]Directive)}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			d, ok := parseDirective(c)
			if !ok {
				continue
			}
			line := fset.Position(c.Pos()).Line
			ld.lines[line] = append(ld.lines[line], d)
		}
	}
	return ld
}

// At returns the named directive governing pos: on the same line, or
// on the line directly above (a standalone annotation comment).
func (ld *LineDirectives) At(pos token.Pos, name string) (Directive, bool) {
	line := ld.fset.Position(pos).Line
	for _, l := range [2]int{line, line - 1} {
		for _, d := range ld.lines[l] {
			if d.Name == name {
				return d, true
			}
		}
	}
	return Directive{}, false
}

// Suppressed reports whether a diagnostic at pos is waived by a
// `// haystack:allow <analyzer> <why>` annotation. A bare allow with
// no reason is ignored — the why is the point of the escape hatch.
func Suppressed(fset *token.FileSet, files []*ast.File, d Diagnostic) bool {
	for _, f := range files {
		if f.FileStart <= d.Pos && d.Pos < f.FileEnd {
			ld := FileDirectives(fset, f)
			if a, ok := ld.At(d.Pos, "allow"); ok {
				name, why, _ := strings.Cut(a.Args, " ")
				return name == d.Analyzer && strings.TrimSpace(why) != ""
			}
			return false
		}
	}
	return false
}
