package a

import "encoding/binary"

const headerLen = 16
const setHeaderLen = 4

type fieldSpec struct {
	ID     uint16
	Length uint16
}

// haystack:hotpath
func guardedHeader(msg []byte) (uint32, bool) {
	if len(msg) < headerLen {
		return 0, false
	}
	v := binary.BigEndian.Uint32(msg[4:8]) // constant bounds under len guard: ok
	return v, true
}

// haystack:hotpath
func unguardedHeader(msg []byte) uint32 {
	return binary.BigEndian.Uint32(msg[4:8]) // want "slice bound 8 is not proven <= len\\(msg\\)"
}

// haystack:hotpath
func lengthField(msg []byte) []byte {
	if len(msg) < headerLen {
		return nil
	}
	length := int(binary.BigEndian.Uint16(msg[2:4]))
	if length < headerLen || length > len(msg) {
		return nil
	}
	return msg[headerLen:length] // lo <= hi <= len all proven: ok
}

// haystack:hotpath
func lengthFieldMissingUpper(msg []byte) []byte {
	if len(msg) < headerLen {
		return nil
	}
	length := int(binary.BigEndian.Uint16(msg[2:4]))
	if length < headerLen {
		return nil
	}
	return msg[headerLen:length] // want "slice bound length is not proven <= len\\(msg\\)"
}

// haystack:hotpath
func setWalk(rest []byte) int {
	n := 0
	for len(rest) >= setHeaderLen {
		setLen := int(binary.BigEndian.Uint16(rest[2:4]))
		if setLen < setHeaderLen || setLen > len(rest) {
			return n
		}
		body := rest[setHeaderLen:setLen] // loop + guard facts: ok
		n += len(body)
		rest = rest[setLen:] // setLen <= len(rest) still holds: ok
	}
	return n
}

// haystack:hotpath
func setWalkGuardKilled(rest []byte) int {
	n := 0
	for len(rest) >= setHeaderLen {
		setLen := int(binary.BigEndian.Uint16(rest[2:4]))
		if setLen < setHeaderLen || setLen > len(rest) {
			return n
		}
		rest = rest[setHeaderLen:]
		n += int(rest[setLen]) // want "index setLen is not proven < len\\(rest\\)"
	}
	return n
}

// fieldWalk models the fixed parseData shape: per-record slice, then
// per-field advance under an explicit guard.
//
// haystack:hotpath
func fieldWalk(body []byte, fields []fieldSpec, recLen int) int {
	n := 0
	for len(body) >= recLen {
		if recLen <= 0 {
			return n
		}
		rec := body[:recLen] // loop condition: ok
		for _, f := range fields {
			if int(f.Length) > len(rec) {
				break
			}
			fb := rec[:f.Length] // guarded: ok
			n += len(fb)
			rec = rec[f.Length:] // guarded: ok
		}
		body = body[recLen:] // loop condition: ok
	}
	return n
}

// haystack:hotpath
func fieldWalkUnguarded(body []byte, fields []fieldSpec, recLen int) int {
	n := 0
	for len(body) >= recLen {
		if recLen <= 0 {
			return n
		}
		off := 0
		for _, f := range fields {
			fb := body[off : off+int(f.Length)] // want "slice bound off\\+int\\(f.Length\\) is not proven <= len\\(body\\)"
			n += len(fb)
			off += int(f.Length)
		}
		body = body[recLen:]
	}
	return n
}

// haystack:hotpath
func arrayConv(fb []byte) [4]byte {
	if len(fb) == 4 {
		return [4]byte(fb) // equality guard: ok
	}
	return [4]byte{}
}

// haystack:hotpath
func arrayConvUnguarded(fb []byte) [4]byte {
	return [4]byte(fb) // want "conversion to \\[4\\]byte is not proven safe"
}

// haystack:hotpath
func rangeIndex(recs []int) int {
	n := 0
	for i := range recs {
		n += recs[i] // range binds i < len(recs): ok
	}
	return n
}

// haystack:hotpath
func staleIndex(recs []int, i int) int {
	if i >= 0 && i < len(recs) {
		recs = recs[1:] // i >= 0 and i < len make len >= 1: ok
		return recs[i]  // want "index i is not proven < len\\(recs\\)"
	}
	return 0
}

// haystack:hotpath
func clampedBuf(buf []byte, n int) []byte {
	m := min(n, len(buf))
	return buf[:m] // min() bound: ok
}

// haystack:hotpath
func resetBuf(b []byte) []byte {
	return b[:0] // len is never negative, no guard needed: ok
}

// haystack:hotpath
func modIndex(shards []int, h uint64) int {
	i := int(h % uint64(len(shards)))
	return shards[i] // modulo by len: ok
}

// haystack:hotpath
func shortCircuit(b []byte, i int) byte {
	if i >= 0 && i < len(b) && b[i] != 0 { // refined under &&: ok
		return b[i] // both conjuncts hold here: ok
	}
	return 0
}

// haystack:hotpath
func allowEscape(b []byte, i int) byte {
	// haystack:allow wirebounds caller contract guarantees i < len(b), documented at the call sites
	return b[i]
}

// notHot is out of scope: no hotpath annotation, no findings.
func notHot(b []byte) byte {
	return b[9]
}
