// Package wirebounds proves that `haystack:hotpath` decode functions
// cannot panic on malformed wire input: every slice index, subslice,
// and slice→array conversion must be dominated by a length guard.
//
// The proof is a forward must-analysis over the function's CFG
// (internal/lint/cfg) with the dataflow.Bounds lattice: branch
// conditions contribute difference constraints (`setLen <= len(rest)`,
// `len(msg) >= 16`), assignments kill constraints over overwritten
// terms and contribute equalities (`n := len(s)`, `v := min(a, b)`,
// modulo-by-len), range loops bound their index variable, and each
// access site is discharged by shortest-path reasoning over the
// constraint graph. What cannot be proven is reported — a finding
// means "a crafted datagram picks the path that panics here", which
// the repo's fuzz targets can only sample but this analyzer decides.
//
// Scope: function declarations annotated `// haystack:hotpath`.
// Function literals inside them are skipped (none of the decode paths
// use closures); map indexing and constant-index array access are
// compile-time-safe and ignored. The analysis does not track
// lower-bound negativity of signed index expressions except where a
// fact or unsigned origin proves it, and treats any call taking &x or
// a pointer-receiver method on x as clobbering facts about x.
package wirebounds

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/cfg"
	"repro/internal/lint/dataflow"
)

var Analyzer = &lint.Analyzer{
	Name: "wirebounds",
	Doc:  "slice accesses in haystack:hotpath decode functions must be dominated by length guards",
	Run:  run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, ok := lint.DocDirective(fd.Doc, "hotpath"); !ok {
				continue
			}
			w := &walker{pass: pass}
			w.check(fd.Body)
		}
	}
	return nil
}

type walker struct {
	pass *lint.Pass
}

func (w *walker) check(body *ast.BlockStmt) {
	g := cfg.New(body, w.pass.TypesInfo)
	res := dataflow.Solve(g, dataflow.Problem[dataflow.Bounds]{
		Join:  dataflow.JoinBounds,
		Equal: dataflow.EqualBounds,
		Transfer: func(s dataflow.Bounds, n ast.Node) dataflow.Bounds {
			return w.transfer(s, n, false)
		},
		Refine: w.refine,
	})
	// Second, deterministic pass with the fixpoint in-states: same
	// transfer, but access sites are verified and reported.
	for _, b := range g.Blocks {
		s, ok := res.In[b]
		if !ok {
			continue // unreachable
		}
		for _, n := range b.Nodes {
			s = w.transfer(s, n, true)
		}
	}
}

// transfer applies one block node: walks its expressions (verifying
// access sites when report is set), then applies assignment effects.
func (w *walker) transfer(s dataflow.Bounds, n ast.Node, report bool) dataflow.Bounds {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, rhs := range n.Rhs {
			s = w.walkExpr(s, rhs, report)
		}
		for _, lhs := range n.Lhs {
			s = w.walkExpr(s, lhs, report)
		}
		s = w.assign(s, n)
	case *ast.IncDecStmt:
		s = w.walkExpr(s, n.X, report)
		s = w.killPath(s, n.X)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						s = w.walkExpr(s, v, report)
					}
					for i, name := range vs.Names {
						if i < len(vs.Values) {
							s = w.genAssign(s, name, vs.Values[i])
						}
					}
				}
			}
		}
	case ast.Expr:
		s = w.walkExpr(s, n, report)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			s = w.walkExpr(s, r, report)
		}
	case *ast.SendStmt:
		s = w.walkExpr(s, n.Chan, report)
		s = w.walkExpr(s, n.Value, report)
	case *ast.ExprStmt:
		s = w.walkExpr(s, n.X, report)
	case *ast.DeferStmt:
		s = w.walkExpr(s, n.Call, report)
	case *ast.GoStmt:
		s = w.walkExpr(s, n.Call, report)
	case *ast.BranchStmt, *ast.EmptyStmt:
	default:
		// A statement kind we do not model: drop all facts.
		s = dataflow.Bounds{}
	}
	return s
}

// assign applies one assignment statement's effects: kills facts over
// the overwritten paths, then records equalities the RHS implies.
func (w *walker) assign(s dataflow.Bounds, n *ast.AssignStmt) dataflow.Bounds {
	for _, lhs := range n.Lhs {
		s = w.killPath(s, lhs)
	}
	if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
		s = w.genAssign(s, n.Lhs[0], n.Rhs[0])
	}
	return s
}

// genAssign records facts implied by `lhs = rhs`, provided rhs does
// not mention lhs (self-referential updates only kill).
func (w *walker) genAssign(s dataflow.Bounds, lhs, rhs ast.Expr) dataflow.Bounds {
	lt, loff, ok := w.canon(lhs)
	if !ok || lt == dataflow.Zero {
		return s
	}
	marker := lt
	rhs = ast.Unparen(rhs)

	// v := min(a, b, ...) — v <= each argument.
	if call, ok := rhs.(*ast.CallExpr); ok {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "min" {
			if _, isBuiltin := w.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				for _, arg := range call.Args {
					if at, aoff, ok := w.canon(arg); ok && !strings.Contains(at, marker) {
						s = s.With(lt, at, aoff-loff)
					}
				}
				return s
			}
		}
	}

	// v := x % uint?(len(p)) — v <= len(p)-1, v >= 0 for unsigned x.
	if t, nonneg, ok := w.modLen(rhs); ok && !strings.Contains(t, marker) {
		s = s.With(lt, t, -1-loff)
		if nonneg {
			s = s.With(dataflow.Zero, lt, loff)
		}
		return s
	}

	// v := <canonical expr> — equality.
	if rt, roff, ok := w.canon(rhs); ok && !strings.Contains(rt, marker) {
		s = s.WithEq(lt, rt, roff-loff)
	}

	// v := s[lo:hi] with constant lo — len(v) == hi - lo (an omitted
	// high bound means len(s)).
	if se, ok := rhs.(*ast.SliceExpr); ok && !se.Slice3 {
		lo := 0
		okLo := se.Low == nil
		if se.Low != nil {
			if lt2, c, ok := w.canon(se.Low); ok && lt2 == dataflow.Zero {
				lo, okLo = c, true
			}
		}
		if okLo {
			var ht string
			var hoff int
			okHi := false
			if se.High != nil {
				ht, hoff, okHi = w.canon(se.High)
			} else if t, ok := w.lenTermOf(se.X, w.exprType(se.X)); ok {
				ht, okHi = t, true
			}
			if okHi && !strings.Contains(ht, marker) {
				s = s.WithEq("len("+lt+")", ht, hoff-lo)
			}
		}
	}
	return s
}

// modLen matches `x % len(p)` through integer conversions, returning
// len(p)'s term and whether x is of unsigned origin.
func (w *walker) modLen(e ast.Expr) (term string, nonneg, ok bool) {
	be, isBin := ast.Unparen(w.unconvert(e)).(*ast.BinaryExpr)
	if !isBin || be.Op != token.REM {
		return "", false, false
	}
	rhs := ast.Unparen(w.unconvert(be.Y))
	call, isCall := rhs.(*ast.CallExpr)
	if !isCall || len(call.Args) != 1 {
		return "", false, false
	}
	if id, isIdent := ast.Unparen(call.Fun).(*ast.Ident); !isIdent || id.Name != "len" {
		return "", false, false
	}
	t, off, okArg := w.canon(call.Args[0])
	if !okArg || off != 0 {
		return "", false, false
	}
	return "len(" + t + ")", w.isUnsigned(be.X), true
}

// walkExpr visits e in evaluation order, refining across && and ||
// and verifying slice accesses when report is set. The returned state
// reflects kills from calls that may mutate operands.
func (w *walker) walkExpr(s dataflow.Bounds, e ast.Expr, report bool) dataflow.Bounds {
	if e == nil {
		return s
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return w.walkExpr(s, e.X, report)
	case *ast.FuncLit:
		return s // separate function; not part of this proof
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND, token.LOR:
			// Short-circuit: the right operand only evaluates under the
			// left's truth (&&) or falsity (||), so it is checked under
			// the refined state. The state after the whole expression is
			// the join of "stopped early" and "evaluated both".
			s1 := w.walkExpr(s, e.X, report)
			s2 := w.walkExpr(w.refineCond(s1, e.X, e.Op == token.LAND), e.Y, report)
			return dataflow.JoinBounds(s1, s2)
		}
		s = w.walkExpr(s, e.X, report)
		return w.walkExpr(s, e.Y, report)
	case *ast.IndexExpr:
		s = w.walkExpr(s, e.X, report)
		s = w.walkExpr(s, e.Index, report)
		if report {
			w.checkIndex(s, e)
		}
		return s
	case *ast.SliceExpr:
		s = w.walkExpr(s, e.X, report)
		for _, b := range []ast.Expr{e.Low, e.High, e.Max} {
			s = w.walkExpr(s, b, report)
		}
		if report {
			w.checkSlice(s, e)
		}
		return s
	case *ast.CallExpr:
		s = w.walkExpr(s, e.Fun, report)
		for _, a := range e.Args {
			s = w.walkExpr(s, a, report)
		}
		if report {
			w.checkArrayConv(s, e)
		}
		return w.killCallEffects(s, e)
	case *ast.SelectorExpr:
		return w.walkExpr(s, e.X, report)
	case *ast.StarExpr:
		return w.walkExpr(s, e.X, report)
	case *ast.UnaryExpr:
		return w.walkExpr(s, e.X, report)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			s = w.walkExpr(s, el, report)
		}
		return s
	case *ast.KeyValueExpr:
		s = w.walkExpr(s, e.Key, report)
		return w.walkExpr(s, e.Value, report)
	case *ast.TypeAssertExpr:
		return w.walkExpr(s, e.X, report)
	case *ast.IndexListExpr:
		return w.walkExpr(s, e.X, report)
	default:
		return s
	}
}

// killCallEffects drops facts about operands a call may mutate: &x
// arguments and pointer-receiver method targets.
func (w *walker) killCallEffects(s dataflow.Bounds, call *ast.CallExpr) dataflow.Bounds {
	for _, a := range call.Args {
		if ue, ok := ast.Unparen(a).(*ast.UnaryExpr); ok && ue.Op == token.AND {
			s = w.killPath(s, ue.X)
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if selection, ok := w.pass.TypesInfo.Selections[sel]; ok && selection.Kind() == types.MethodVal {
			if sig, ok := selection.Obj().Type().(*types.Signature); ok && sig.Recv() != nil {
				if _, isPtr := sig.Recv().Type().(*types.Pointer); isPtr {
					s = w.killPath(s, sel.X)
				}
			}
		}
	}
	return s
}

func (w *walker) checkIndex(s dataflow.Bounds, e *ast.IndexExpr) {
	t := w.exprType(e.X)
	lenTerm, ok := w.lenTermOf(e.X, t)
	if !ok {
		return
	}
	if !w.proveLE(s, e.Index, 0, lenTerm, -1) {
		w.reportf(e, "index %s is not proven < %s", render(e.Index), lenOf(e.X))
	}
}

func (w *walker) checkSlice(s dataflow.Bounds, e *ast.SliceExpr) {
	t := w.exprType(e.X)
	lenTerm, ok := w.lenTermOf(e.X, t)
	if !ok {
		return
	}
	// High (and Max) against len; Low against High (or len).
	for _, hi := range []ast.Expr{e.High, e.Max} {
		if hi == nil {
			continue
		}
		if !w.proveLE(s, hi, 0, lenTerm, 0) {
			w.reportf(e, "slice bound %s is not proven <= %s", render(hi), lenOf(e.X))
		}
	}
	if e.Low != nil {
		upper, upperTerm := e.High, ""
		if upper == nil {
			upperTerm = lenTerm
		}
		if !w.proveLoHi(s, e.Low, upper, upperTerm) {
			limit := lenOf(e.X)
			if e.High != nil {
				limit = render(e.High)
			}
			w.reportf(e, "slice bound %s is not proven <= %s", render(e.Low), limit)
		}
	}
}

// checkArrayConv verifies slice→array conversions: [N]T(s) panics
// when len(s) < N.
func (w *walker) checkArrayConv(s dataflow.Bounds, call *ast.CallExpr) {
	tv, ok := w.pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	target := tv.Type
	if p, isPtr := target.Underlying().(*types.Pointer); isPtr {
		target = p.Elem()
	}
	arr, isArr := target.Underlying().(*types.Array)
	if !isArr {
		return
	}
	arg := call.Args[0]
	if _, isSlice := w.exprType(arg).(*types.Slice); !isSlice {
		return
	}
	lenTerm, ok := w.lenTermOf(arg, w.exprType(arg))
	if !ok {
		return
	}
	n := int(arr.Len())
	// Need len(s) >= n: Zero - len(s) <= -n.
	if !w.prove(s, dataflow.Zero, lenTerm, -n) {
		w.reportf(call, "conversion to [%d]%s is not proven safe: need len(%s) >= %d",
			n, arr.Elem(), render(arg), n)
	}
}

// proveLE proves canon(e)+eoff <= term+off.
func (w *walker) proveLE(s dataflow.Bounds, e ast.Expr, eoff int, term string, off int) bool {
	t, c, ok := w.canon(e)
	if !ok {
		return false
	}
	return w.prove(s, t, term, off-c-eoff)
}

// prove wraps Bounds.Prove with the axiom that length terms are
// non-negative, so e.g. b[:0] needs no explicit guard.
func (w *walker) prove(s dataflow.Bounds, x, y string, k int) bool {
	for _, t := range [2]string{x, y} {
		if strings.HasPrefix(t, "len(") {
			s = s.With(dataflow.Zero, t, 0)
		}
	}
	return s.Prove(x, y, k)
}

// proveLoHi proves lo <= hi (hi nil means the term upperTerm), with
// the `s[x : x+k]` special case: when hi is syntactically lo + K, the
// obligation reduces to 0 <= K.
func (w *walker) proveLoHi(s dataflow.Bounds, lo, hi ast.Expr, upperTerm string) bool {
	lt, lc, ok := w.canon(lo)
	if !ok {
		return false
	}
	if hi == nil {
		return w.prove(s, lt, upperTerm, -lc)
	}
	if be, ok := ast.Unparen(hi).(*ast.BinaryExpr); ok && be.Op == token.ADD {
		for _, p := range [2][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
			x, k := p[0], p[1]
			if xt, xc, ok := w.canon(x); ok && xt == lt && xc == lc {
				if w.isUnsigned(w.unconvert(k)) {
					return true
				}
				if kt, kc, ok := w.canon(k); ok && w.prove(s, dataflow.Zero, kt, kc) {
					return true
				}
			}
		}
	}
	ht, hc, ok := w.canon(hi)
	if !ok {
		return false
	}
	return w.prove(s, lt, ht, hc-lc)
}

// refine admits an edge's condition (or range bound) into the state.
func (w *walker) refine(s dataflow.Bounds, e *cfg.Edge) dataflow.Bounds {
	if e.Range != nil {
		return w.refineRange(s, e.Range)
	}
	if e.Cond != nil {
		return w.refineCond(s, e.Cond, !e.Negate)
	}
	return s
}

// refineRange kills and re-bounds the key variable of `for k := range s`.
func (w *walker) refineRange(s dataflow.Bounds, rs *ast.RangeStmt) dataflow.Bounds {
	if rs.Key != nil {
		s = w.killPath(s, rs.Key)
	}
	if rs.Value != nil {
		s = w.killPath(s, rs.Value)
	}
	if rs.Key == nil {
		return s
	}
	switch t := w.exprType(rs.X).(type) {
	case *types.Slice:
	case *types.Basic:
		if t.Info()&types.IsString == 0 {
			return s
		}
	default:
		return s // maps/channels/arrays: no slice-length bound to learn
	}
	kt, koff, ok := w.canon(rs.Key)
	if !ok || koff != 0 {
		return s
	}
	if lenTerm, ok := w.lenTermOf(rs.X, w.exprType(rs.X)); ok {
		s = s.With(kt, lenTerm, -1)
		s = s.With(dataflow.Zero, kt, 0)
	}
	return s
}

// refineCond folds a branch condition (with polarity) into facts.
func (w *walker) refineCond(s dataflow.Bounds, cond ast.Expr, truth bool) dataflow.Bounds {
	cond = ast.Unparen(cond)
	if ue, ok := cond.(*ast.UnaryExpr); ok && ue.Op == token.NOT {
		return w.refineCond(s, ue.X, !truth)
	}
	be, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return s
	}
	switch be.Op {
	case token.LAND:
		if truth {
			return w.refineCond(w.refineCond(s, be.X, true), be.Y, true)
		}
		return s
	case token.LOR:
		if !truth {
			return w.refineCond(w.refineCond(s, be.X, false), be.Y, false)
		}
		return s
	}
	op := be.Op
	if !truth {
		switch op {
		case token.LSS:
			op = token.GEQ
		case token.LEQ:
			op = token.GTR
		case token.GTR:
			op = token.LEQ
		case token.GEQ:
			op = token.LSS
		case token.EQL:
			op = token.NEQ
		case token.NEQ:
			op = token.EQL
		default:
			return s
		}
	}
	lt, lc, okL := w.canon(be.X)
	rt, rc, okR := w.canon(be.Y)
	if !okL || !okR {
		return s
	}
	switch op {
	case token.LSS:
		return s.With(lt, rt, rc-lc-1)
	case token.LEQ:
		return s.With(lt, rt, rc-lc)
	case token.GTR:
		return s.With(rt, lt, lc-rc-1)
	case token.GEQ:
		return s.With(rt, lt, lc-rc)
	case token.EQL:
		return s.WithEq(lt, rt, rc-lc)
	}
	return s
}

// killPath drops constraints over the assigned expression's path (and
// anything reached through it). Element stores (s[i] = v) change no
// tracked term — facts range over variables, field paths, and their
// lengths — but a pointer store (*p = v) may alias any of them, so it
// clears the state.
func (w *walker) killPath(s dataflow.Bounds, lhs ast.Expr) dataflow.Bounds {
	lhs = ast.Unparen(lhs)
	t, _, ok := w.canon(lhs)
	if ok && t != dataflow.Zero {
		return s.Kill(func(term string) bool { return strings.Contains(term, t) })
	}
	switch lhs.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
		return s
	}
	return dataflow.Bounds{}
}

// canon maps an expression to (term, constant offset). Constants fold
// to (Zero, value); identifiers and field paths become stable
// name@pos terms; len(x) of arrays folds to the array length;
// integer conversions unwrap (both occurrences of a guarded value
// canonicalize identically); +/- of a constant folds into the offset;
// other binary combinations become opaque composite terms, so a guard
// over the same syntactic expression still matches.
func (w *walker) canon(e ast.Expr) (term string, off int, ok bool) {
	e = ast.Unparen(e)
	if tv, found := w.pass.TypesInfo.Types[e]; found && tv.Value != nil {
		if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
			return dataflow.Zero, int(v), true
		}
		return "", 0, false
	}
	switch e := e.(type) {
	case *ast.Ident:
		if v, isVar := w.pass.TypesInfo.ObjectOf(e).(*types.Var); isVar {
			return fmt.Sprintf("%s@%d", v.Name(), v.Pos()), 0, true
		}
	case *ast.SelectorExpr:
		base, _, okBase := w.canon(e.X)
		if okBase && base != dataflow.Zero {
			if sel, found := w.pass.TypesInfo.Selections[e]; found && sel.Kind() == types.FieldVal {
				return base + "." + e.Sel.Name, 0, true
			}
		}
	case *ast.CallExpr:
		// len(x)
		if id, isIdent := ast.Unparen(e.Fun).(*ast.Ident); isIdent && id.Name == "len" && len(e.Args) == 1 {
			if _, isBuiltin := w.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				argT := w.exprType(e.Args[0])
				if arr, isArr := w.arrayOf(argT); isArr {
					return dataflow.Zero, int(arr.Len()), true
				}
				if t, c, okArg := w.canon(e.Args[0]); okArg && c == 0 && t != dataflow.Zero {
					return "len(" + t + ")", 0, true
				}
			}
			return "", 0, false
		}
		// Integer conversion: unwrap.
		if tv, found := w.pass.TypesInfo.Types[e.Fun]; found && tv.IsType() && len(e.Args) == 1 {
			if b, isBasic := tv.Type.Underlying().(*types.Basic); isBasic && b.Info()&types.IsInteger != 0 {
				return w.canon(e.Args[0])
			}
		}
	case *ast.BinaryExpr:
		lt, lc, okL := w.canon(e.X)
		rt, rc, okR := w.canon(e.Y)
		if !okL || !okR {
			return "", 0, false
		}
		switch e.Op {
		case token.ADD:
			switch {
			case lt == dataflow.Zero:
				return rt, rc + lc, true
			case rt == dataflow.Zero:
				return lt, lc + rc, true
			default:
				return lt + "+" + rt, lc + rc, true
			}
		case token.SUB:
			if rt == dataflow.Zero {
				return lt, lc - rc, true
			}
			if lt != dataflow.Zero {
				return lt + "-" + rt, lc - rc, true
			}
		}
	}
	return "", 0, false
}

// unconvert strips integer type conversions.
func (w *walker) unconvert(e ast.Expr) ast.Expr {
	for {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return e
		}
		tv, found := w.pass.TypesInfo.Types[call.Fun]
		if !found || !tv.IsType() {
			return e
		}
		if b, isBasic := tv.Type.Underlying().(*types.Basic); !isBasic || b.Info()&types.IsInteger == 0 {
			return e
		}
		e = call.Args[0]
	}
}

func (w *walker) exprType(e ast.Expr) types.Type {
	if tv, ok := w.pass.TypesInfo.Types[e]; ok && tv.Type != nil {
		return tv.Type.Underlying()
	}
	return nil
}

// lenTermOf returns the term standing for len(x), or ok=false when the
// operand is not a checkable sequence (maps) or is an array (constant
// length handled by the caller via canon; here we only skip index
// checks the compiler already performs for constant operands).
func (w *walker) lenTermOf(x ast.Expr, t types.Type) (string, bool) {
	switch t := t.(type) {
	case *types.Slice:
	case *types.Basic:
		if t.Info()&types.IsString == 0 {
			return "", false
		}
	case *types.Array, *types.Pointer:
		return "", false // constant length; compile-time checked for consts, rare otherwise
	default:
		return "", false
	}
	term, off, ok := w.canon(x)
	if !ok || off != 0 || term == dataflow.Zero {
		return "", false
	}
	return "len(" + term + ")", true
}

func (w *walker) arrayOf(t types.Type) (*types.Array, bool) {
	if t == nil {
		return nil, false
	}
	arr, ok := t.(*types.Array)
	return arr, ok
}

func (w *walker) isUnsigned(e ast.Expr) bool {
	t := w.exprType(e)
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsUnsigned != 0
}

func (w *walker) reportf(n ast.Node, format string, args ...any) {
	w.pass.Reportf(n.Pos(), format+" on this path; a malformed datagram could panic here — add or restore a length guard", args...)
}

// render prints an expression for diagnostics (positions stripped).
var atPos = regexp.MustCompile(`@\d+`)

func render(e ast.Expr) string {
	return atPos.ReplaceAllString(exprString(e), "")
}

func lenOf(e ast.Expr) string { return "len(" + render(e) + ")" }

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return "(" + exprString(e.X) + ")"
	case *ast.BinaryExpr:
		return exprString(e.X) + e.Op.String() + exprString(e.Y)
	case *ast.UnaryExpr:
		return e.Op.String() + exprString(e.X)
	case *ast.CallExpr:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = exprString(a)
		}
		return exprString(e.Fun) + "(" + strings.Join(args, ",") + ")"
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.BasicLit:
		return e.Value
	default:
		return "expr"
	}
}
