package lint

// The result cache. A package's lint outcome is a pure function of the
// tool, the analyzer suite, its own source bytes, and its
// dependencies' outcomes (facts flow strictly down the import graph),
// so each target package is cached under a key hashing exactly those
// inputs. The key chains: a package's key folds in its direct imports'
// keys, so editing any dependency — however deep — invalidates every
// dependent. Standard-library packages hash as the toolchain version
// instead of their file bytes; they only change when the toolchain
// does.
//
// A cache entry stores the package's findings (positions resolved, so
// no FileSet is needed to replay them), its source-suppression count,
// and the facts its Collect exported — dependents analyzed on a cache
// miss still see a hit package's facts.

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
)

// cacheVersion invalidates every entry when the entry format or the
// key derivation changes.
const cacheVersion = "haystacklint-cache-v1"

// cacheEntry is one package's stored outcome.
type cacheEntry struct {
	Version    string                       `json:"version"`
	Findings   []Finding                    `json:"findings"`
	Suppressed int                          `json:"suppressed"`
	Facts      map[string]map[string]string `json:"facts,omitempty"`
}

// cacheKeys derives the content-hash key of every listed package, in
// dependency order so import keys always exist before they are folded
// into a dependent's hash. suiteKey identifies the tool build (the
// binary's self-hash) so rebuilt analyzers invalidate the cache.
func cacheKeys(listed []*listPackage, analyzers []*Analyzer, suiteKey string) (map[string]string, error) {
	keys := make(map[string]string, len(listed))
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	sort.Strings(names)

	for _, lp := range listed {
		h := sha256.New()
		fmt.Fprintf(h, "%s\n%s\n", cacheVersion, suiteKey)
		for _, n := range names {
			fmt.Fprintf(h, "analyzer %s\n", n)
		}
		fmt.Fprintf(h, "package %s\n", lp.ImportPath)

		if lp.Standard || lp.ImportPath == "unsafe" {
			// The stdlib's content is determined by the toolchain.
			fmt.Fprintf(h, "stdlib %s\n", runtime.Version())
		} else {
			for _, name := range lp.GoFiles {
				f, err := os.Open(filepath.Join(lp.Dir, name))
				if err != nil {
					return nil, fmt.Errorf("lint: hashing %s: %v", lp.ImportPath, err)
				}
				fmt.Fprintf(h, "file %s\n", name)
				_, err = io.Copy(h, f)
				f.Close()
				if err != nil {
					return nil, fmt.Errorf("lint: hashing %s: %v", lp.ImportPath, err)
				}
			}
			imports := append([]string(nil), lp.Imports...)
			sort.Strings(imports)
			for _, imp := range imports {
				if mapped, ok := lp.ImportMap[imp]; ok {
					imp = mapped
				}
				dep, ok := keys[imp]
				if !ok {
					// Unresolvable dependency (go list -e tolerated an
					// error): fold the raw path so the key is still
					// deterministic, never reused across resolutions.
					dep = "unresolved:" + imp
				}
				fmt.Fprintf(h, "import %s %s\n", imp, dep)
			}
		}
		keys[lp.ImportPath] = fmt.Sprintf("%x", h.Sum(nil))
	}
	return keys, nil
}

// readCacheEntry loads the entry stored under key, or nil on any miss
// (absent, unreadable, malformed, wrong version — the cache is an
// optimization, never an error source).
func readCacheEntry(cacheDir, key string) *cacheEntry {
	data, err := os.ReadFile(cachePath(cacheDir, key))
	if err != nil {
		return nil
	}
	var e cacheEntry
	if json.Unmarshal(data, &e) != nil || e.Version != cacheVersion {
		return nil
	}
	return &e
}

// writeCacheEntry stores e under key. Write failures are returned so
// the driver can warn, but callers treat them as non-fatal.
func writeCacheEntry(cacheDir, key string, e *cacheEntry) error {
	e.Version = cacheVersion
	if e.Findings == nil {
		e.Findings = []Finding{}
	}
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	path := cachePath(cacheDir, key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	// Write-then-rename so a crashed run never leaves a torn entry for
	// a later run to trust.
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func cachePath(cacheDir, key string) string {
	return filepath.Join(cacheDir, key[:2], key+".json")
}
