package lock

import "sync"

type Registry struct {
	mu    sync.Mutex
	items map[string]int
}

type Journal struct {
	mu sync.Mutex
	n  int
}

type Index struct {
	rw sync.RWMutex
	m  map[string]int
}

// Pool and Gate export their mutexes so the lockuser fixture can
// build cross-package orderings against them.
type Pool struct {
	Mu  sync.Mutex
	hot bool
}

type Gate struct {
	Mu   sync.Mutex
	open bool
}

// Get is balanced by defer: ok.
func (r *Registry) Get(k string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.items[k]
}

// Put unlocks manually on both paths: ok.
func (r *Registry) Put(k string, v int) bool {
	r.mu.Lock()
	if r.items == nil {
		r.mu.Unlock()
		return false
	}
	r.items[k] = v
	r.mu.Unlock()
	return true
}

// Leak returns early with the lock held.
func (r *Registry) Leak(k string) int {
	r.mu.Lock() // want "not released on every path to return"
	if v, ok := r.items[k]; ok {
		return v
	}
	r.mu.Unlock()
	return 0
}

// MustGet exits with the lock held only by panicking: ok.
func (r *Registry) MustGet(k string) int {
	r.mu.Lock()
	v, ok := r.items[k]
	if !ok {
		panic("lock: missing " + k)
	}
	r.mu.Unlock()
	return v
}

// Sum locks and unlocks per iteration: ok.
func (r *Registry) Sum(keys []string) int {
	n := 0
	for _, k := range keys {
		r.mu.Lock()
		n += r.items[k]
		r.mu.Unlock()
	}
	return n
}

// Lookup read-locks with defer: ok.
func (ix *Index) Lookup(k string) int {
	ix.rw.RLock()
	defer ix.rw.RUnlock()
	return ix.m[k]
}

// LeakyLookup misses the RUnlock on the zero path.
func (ix *Index) LeakyLookup(k string) int {
	ix.rw.RLock() // want "not released on every path to return"
	v := ix.m[k]
	if v == 0 {
		return 0
	}
	ix.rw.RUnlock()
	return v
}

// Spawn's goroutine body is its own analysis unit and leaks.
func Spawn(r *Registry) {
	go func() {
		r.mu.Lock() // want "not released on every path to return"
		r.items["spawned"]++
	}()
}

// SpawnClean's goroutine releases via defer: ok.
func SpawnClean(r *Registry) {
	go func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		r.items["spawned"]++
	}()
}

// LocalBalance: function-local mutex, balanced: ok.
func LocalBalance() int {
	var mu sync.Mutex
	mu.Lock()
	x := 1
	mu.Unlock()
	return x
}

// lockBoth and lockBothReversed acquire the same pair in opposite
// orders; each acquisition that completes the cycle is flagged.
func lockBoth(r *Registry, j *Journal) {
	r.mu.Lock()
	j.mu.Lock() // want "cycle: lock.Registry.mu -> lock.Journal.mu -> lock.Registry.mu"
	j.n++
	j.mu.Unlock()
	r.mu.Unlock()
}

func lockBothReversed(r *Registry, j *Journal) {
	j.mu.Lock()
	r.mu.Lock() // want "cycle: lock.Journal.mu -> lock.Registry.mu -> lock.Journal.mu"
	j.n++
	r.mu.Unlock()
	j.mu.Unlock()
}

// Pump re-acquires on every iteration without releasing on the back
// edge. The held count must saturate (not grow without bound — the
// solver has to reach a fixpoint) and the leak must still be flagged.
func (r *Registry) Pump(n int) {
	for i := 0; i < n; i++ {
		r.mu.Lock() // want "not released on every path to return"
	}
}

// Mark's lock set becomes a cross-package summary fact.
func (p *Pool) Mark() {
	p.Mu.Lock()
	p.hot = true
	p.Mu.Unlock()
}

// Chain orders Pool.Mu before Gate.Mu. lockuser.Close orders them the
// other way, but facts flow only down the import graph: the cycle is
// reported in lockuser (which sees this edge as a fact), not here
// (this package is analyzed before lockuser even exists).
func Chain(p *Pool, g *Gate) {
	p.Mu.Lock()
	g.Mu.Lock()
	g.open = p.hot
	g.Mu.Unlock()
	p.Mu.Unlock()
}
