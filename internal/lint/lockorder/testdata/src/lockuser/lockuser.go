package lockuser

import (
	"sync"

	"lock"
)

type Cache struct {
	mu   sync.Mutex
	pool *lock.Pool
	warm bool
}

// Refresh calls Mark while holding Cache.mu: the callee's lock set
// arrives as a cross-package summary fact, and Evict below reverses
// the order, so the call site completes a cycle.
func (c *Cache) Refresh() {
	c.mu.Lock()
	c.pool.Mark() // want "cycle: lockuser.Cache.mu -> lock.Pool.Mu -> lockuser.Cache.mu"
	c.warm = true
	c.mu.Unlock()
}

// Evict takes Pool.Mu then Cache.mu — the reverse of Refresh.
func (c *Cache) Evict() {
	c.pool.Mu.Lock()
	c.mu.Lock() // want "cycle: lock.Pool.Mu -> lockuser.Cache.mu -> lock.Pool.Mu"
	c.warm = false
	c.mu.Unlock()
	c.pool.Mu.Unlock()
}

// Close orders Gate.Mu before Pool.Mu; lock.Chain orders them the
// other way, and that edge arrives purely as a dependency fact.
func Close(g *lock.Gate, p *lock.Pool) {
	g.Mu.Lock()
	p.Mu.Lock() // want "cycle: lock.Gate.Mu -> lock.Pool.Mu -> lock.Gate.Mu"
	p.Mu.Unlock()
	g.Mu.Unlock()
}

// Warm holds only one lock at a time: ok.
func (c *Cache) Warm() {
	c.mu.Lock()
	c.warm = true
	c.mu.Unlock()
	c.pool.Mark()
}

// allowEscape: a deliberate, documented leak stays quiet.
func (c *Cache) Pin() {
	// haystack:allow lockorder handed to Unpin which releases it; pin/unpin pairs are asserted in tests
	c.mu.Lock()
	c.warm = true
}
