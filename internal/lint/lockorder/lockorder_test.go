package lockorder_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/lockorder"
)

func TestLockorder(t *testing.T) {
	linttest.RunMulti(t, lockorder.Analyzer, "lock", "lockuser")
}
