// Package lockorder proves two mutex invariants across the repo:
// every sync.Mutex/RWMutex acquired on a path is released on every
// non-panic path to return, and the global lock-acquisition graph —
// assembled from per-function summaries that flow between packages as
// facts — is acyclic, so no two call paths can acquire the same pair
// of locks in opposite orders.
//
// Lock identity is structural: a mutex field is named by its owning
// struct type ("repro/internal/pipeline.Pipeline.mu"), a package-level
// mutex by its package path, and a function-local mutex by its
// declaration. Local locks are checked for balance but excluded from
// the ordering graph: they cannot be contended across functions.
//
// Acquisitions inside defer and go statements do not affect the
// caller's held-set: goroutine bodies and deferred closures are
// analyzed as functions in their own right. sync.Cond.Wait and
// TryLock are deliberately ignored — Wait is held-neutral, and a
// TryLock that can fail establishes no ordering.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/cfg"
	"repro/internal/lint/dataflow"
)

// Analyzer is the lockorder analyzer.
var Analyzer = &lint.Analyzer{
	Name:    "lockorder",
	Doc:     "mutexes released on every path; global acquisition graph acyclic",
	Collect: collect,
	Run:     run,
}

// mutexMethods maps the sync method names we model to whether they
// acquire (true) or release (false).
var mutexMethods = map[string]bool{
	"Lock":    true,
	"RLock":   true,
	"Unlock":  false,
	"RUnlock": false,
}

// lockKey names a mutex. Global keys are stable across packages;
// local keys are unique within a function and never exported.
type lockKey struct {
	name  string
	local bool
}

// heldEntry tracks one may-held lock: how many times it may be held
// and where it was first acquired (for reporting).
type heldEntry struct {
	count int
	pos   token.Pos
}

// heldMap is the dataflow state: locks that may be held. Missing key
// means definitely not held.
type heldMap map[string]heldEntry

func joinHeld(a, b heldMap) heldMap {
	out := make(heldMap, len(a)+len(b))
	for k, e := range a {
		out[k] = e
	}
	for k, e := range b {
		if o, ok := out[k]; ok {
			if o.count > e.count {
				e.count = o.count
			}
			if o.pos < e.pos {
				e.pos = o.pos
			}
		}
		out[k] = e
	}
	return out
}

func equalHeld(a, b heldMap) bool {
	if len(a) != len(b) {
		return false
	}
	for k, e := range a {
		if o, ok := b[k]; !ok || o != e {
			return false
		}
	}
	return true
}

// edge is one observed acquisition order: to was locked while from
// was held.
type edge struct {
	from, to string
}

// analysis is the per-package result shared by Collect and Run.
type analysis struct {
	pass *lint.Pass
	// locks maps function key -> global locks it may acquire,
	// transitively through same-package and imported callees.
	locks map[string]map[string]bool
	// edges maps each acquisition-order edge to the position where it
	// was first observed in this package.
	edges map[edge]token.Pos
	// leaks are balance violations, reported at the acquisition.
	leaks []leak
}

type leak struct {
	pos token.Pos
	key string
}

// funcNode is one analyzable body: a declared function or a function
// literal (goroutine, deferred closure, callback).
type funcNode struct {
	key  string // "" for function literals
	body *ast.BlockStmt
}

func collect(pass *lint.Pass) {
	if pass.TypesInfo == nil {
		return // dependency package loaded without bodies/types
	}
	a := analyze(pass)
	for fn, locks := range a.locks {
		if len(locks) == 0 {
			continue
		}
		names := make([]string, 0, len(locks))
		for l := range locks {
			names = append(names, l)
		}
		sort.Strings(names)
		pass.ExportFact("fn:"+fn, strings.Join(names, " "))
	}
	for e := range a.edges {
		pass.ExportFact("edge:"+e.from+"|"+e.to, "1")
	}
}

func run(pass *lint.Pass) error {
	a := analyze(pass)

	for _, l := range a.leaks {
		pass.Reportf(l.pos, "%s is locked here but not released on every path to return", display(l.key))
	}

	// Assemble the global acquisition graph: edges observed in this
	// package plus every edge fact exported by dependencies.
	adj := make(map[string][]string)
	addEdge := func(from, to string) {
		adj[from] = append(adj[from], to)
	}
	for _, key := range pass.FactKeys() {
		rest, ok := strings.CutPrefix(key, "edge:")
		if !ok {
			continue
		}
		from, to, ok := strings.Cut(rest, "|")
		if !ok {
			continue
		}
		addEdge(from, to)
	}
	for e := range a.edges {
		addEdge(e.from, e.to)
	}
	for k := range adj {
		sort.Strings(adj[k])
	}

	// A cycle through a local edge is reported at that edge. Walking
	// only from local edges keeps each package's findings its own.
	local := make([]edge, 0, len(a.edges))
	for e := range a.edges {
		local = append(local, e)
	}
	sort.Slice(local, func(i, j int) bool {
		if local[i].from != local[j].from {
			return local[i].from < local[j].from
		}
		return local[i].to < local[j].to
	})
	for _, e := range local {
		if path := findPath(adj, e.to, e.from); path != nil {
			cycle := append([]string{e.from}, path...)
			pass.Reportf(a.edges[e],
				"acquiring %s while holding %s creates a lock-order cycle: %s",
				e.to, e.from, strings.Join(cycle, " -> "))
		}
	}
	return nil
}

// findPath returns a path from -> ... -> to in adj, or nil. A
// self-edge (from == to with an edge) counts as a path of length one.
func findPath(adj map[string][]string, from, to string) []string {
	type item struct {
		node string
		prev int
	}
	items := []item{{from, -1}}
	seen := map[string]bool{from: true}
	for i := 0; i < len(items); i++ {
		for _, next := range adj[items[i].node] {
			if next == to {
				path := []string{to}
				for j := i; j >= 0; j = items[j].prev {
					path = append(path, items[j].node)
				}
				for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
					path[l], path[r] = path[r], path[l]
				}
				return path
			}
			if !seen[next] {
				seen[next] = true
				items = append(items, item{next, i})
			}
		}
	}
	return nil
}

// analyze runs the per-function held-set dataflow over every function
// body in the package and folds the results into summaries, ordering
// edges, and balance findings.
func analyze(pass *lint.Pass) *analysis {
	a := &analysis{
		pass:  pass,
		locks: make(map[string]map[string]bool),
		edges: make(map[edge]token.Pos),
	}

	var fns []funcNode
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fns = append(fns, funcNode{key: funcKey(pass.TypesInfo, fd), body: fd.Body})
			// Function literals anywhere inside (including go and
			// defer bodies) are separate analysis units.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					fns = append(fns, funcNode{body: fl.Body})
				}
				return true
			})
		}
	}

	// Pass 1 — syntactic summaries: direct global locks and resolved
	// callees per declared function, then a fixpoint folding in
	// same-package summaries and imported "fn:" facts. Function
	// literals are folded into their enclosing declared function:
	// a closure's locks are (conservatively) its caller's locks.
	direct := make(map[string]map[string]bool)
	callees := make(map[string]map[string]bool)
	for _, fn := range fns {
		if fn.key == "" {
			continue
		}
		dl, dc := directLocksAndCallees(pass.TypesInfo, fn.body)
		if d, ok := direct[fn.key]; ok { // redeclaration across build shapes
			for k := range dl {
				d[k] = true
			}
		} else {
			direct[fn.key] = dl
		}
		if c, ok := callees[fn.key]; ok {
			for k := range dc {
				c[k] = true
			}
		} else {
			callees[fn.key] = dc
		}
	}
	for fn, dl := range direct {
		set := make(map[string]bool, len(dl))
		for k := range dl {
			set[k] = true
		}
		a.locks[fn] = set
	}
	for changed := true; changed; {
		changed = false
		for fn, cs := range callees {
			set := a.locks[fn]
			for callee := range cs {
				for _, l := range calleeLocks(pass, a.locks, callee) {
					if !set[l] {
						set[l] = true
						changed = true
					}
				}
			}
		}
	}

	// Pass 2 — flow-sensitive held-set per body: ordering edges at
	// each acquisition and call site, balance at each non-panic exit.
	for _, fn := range fns {
		a.analyzeBody(fn)
	}
	return a
}

// analyzeBody solves the may-held dataflow for one body, then replays
// each reachable block to record ordering edges and check balance.
func (a *analysis) analyzeBody(fn funcNode) {
	info := a.pass.TypesInfo
	g := cfg.New(fn.body, info)

	transfer := func(s heldMap, n ast.Node) heldMap { return a.transfer(s, n, nil) }
	res := dataflow.Solve(g, dataflow.Problem[heldMap]{
		Entry:    heldMap{},
		Join:     joinHeld,
		Equal:    equalHeld,
		Transfer: transfer,
	})

	// Replay for edges: at every acquisition or lock-taking call,
	// every may-held lock orders before the incoming ones.
	for _, b := range g.Blocks {
		s, ok := res.In[b]
		if !ok {
			continue // unreachable
		}
		for _, n := range b.Nodes {
			s = a.transfer(s, n, func(acquired []string, pos token.Pos, held heldMap) {
				for h, e := range held {
					if e.count == 0 || strings.HasPrefix(h, "local:") {
						continue
					}
					for _, l := range acquired {
						if l == h || strings.HasPrefix(l, "local:") {
							continue
						}
						key := edge{from: h, to: l}
						if old, ok := a.edges[key]; !ok || pos < old {
							a.edges[key] = pos
						}
					}
				}
			})
		}
	}

	// Balance: deferred unlocks discharge held locks at every exit;
	// anything left on a non-panic exit edge is a leak.
	deferred := make(map[string]int)
	for _, d := range g.Defers {
		for key, n := range deferredUnlocks(info, d) {
			deferred[key] += n
		}
	}
	reported := make(map[string]bool)
	for _, e := range g.Exit.Preds {
		if e.IsPanic {
			continue
		}
		s, ok := res.Out[e.From]
		if !ok {
			continue
		}
		keys := make([]string, 0, len(s))
		for k := range s {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			entry := s[k]
			if entry.count-deferred[k] <= 0 || reported[k] {
				continue
			}
			reported[k] = true
			a.leaks = append(a.leaks, leak{pos: entry.pos, key: k})
		}
	}
}

// transfer applies one CFG node to the held-set. When onAcquire is
// non-nil it is invoked with the locks the node acquires (directly or
// through a summarized callee) and the held-set in force before them.
func (a *analysis) transfer(s heldMap, n ast.Node, onAcquire func([]string, token.Pos, heldMap)) heldMap {
	switch n.(type) {
	case *ast.DeferStmt, *ast.GoStmt:
		// Deferred unlocks apply at exit; goroutine and deferred
		// closure bodies are separate analysis units.
		return s
	}
	info := a.pass.TypesInfo
	out := s
	mutated := false
	mutate := func() {
		if !mutated {
			cp := make(heldMap, len(out)+1)
			for k, v := range out {
				cp[k] = v
			}
			out = cp
			mutated = true
		}
	}
	ast.Inspect(n, func(sub ast.Node) bool {
		if _, ok := sub.(*ast.FuncLit); ok {
			return false
		}
		call, ok := sub.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op, key, ok := mutexOp(info, call); ok {
			if op { // acquire
				if onAcquire != nil {
					onAcquire([]string{key.name}, call.Pos(), out)
				}
				mutate()
				e := out[key.name]
				// Saturate at 2: "held more than once" is all the
				// balance and ordering checks distinguish, and an
				// unbounded count would never reach a fixpoint when a
				// loop acquires without releasing on the back edge.
				if e.count < 2 {
					e.count++
				}
				if e.pos == token.NoPos {
					e.pos = call.Pos()
				}
				out[key.name] = e
			} else if e, held := out[key.name]; held {
				mutate()
				e.count--
				if e.count <= 0 {
					delete(out, key.name)
				} else {
					out[key.name] = e
				}
			}
			return true
		}
		if callee, ok := calleeKey(info, call); ok && onAcquire != nil {
			if locks := calleeLocks(a.pass, a.locks, callee); len(locks) > 0 {
				onAcquire(locks, call.Pos(), out)
			}
		}
		return true
	})
	return out
}

// calleeLocks returns the sorted global locks callee may acquire,
// from this package's summaries or an imported "fn:" fact.
func calleeLocks(pass *lint.Pass, local map[string]map[string]bool, callee string) []string {
	if set, ok := local[callee]; ok {
		out := make([]string, 0, len(set))
		for l := range set {
			out = append(out, l)
		}
		sort.Strings(out)
		return out
	}
	if v, ok := pass.Fact("fn:" + callee); ok {
		return strings.Fields(v)
	}
	return nil
}

// directLocksAndCallees scans a body (pruning nested function
// literals) for global lock acquisitions and statically resolved
// callees.
func directLocksAndCallees(info *types.Info, body *ast.BlockStmt) (locks, callees map[string]bool) {
	locks = make(map[string]bool)
	callees = make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op, key, ok := mutexOp(info, call); ok {
			if op && !key.local {
				locks[key.name] = true
			}
			return true
		}
		if callee, ok := calleeKey(info, call); ok {
			callees[callee] = true
		}
		return true
	})
	return locks, callees
}

// deferredUnlocks returns the unlocks a defer statement performs at
// function exit: a direct mu.Unlock() or the top-level unlocks of a
// deferred closure.
func deferredUnlocks(info *types.Info, d *ast.DeferStmt) map[string]int {
	out := make(map[string]int)
	if op, key, ok := mutexOp(info, d.Call); ok {
		if !op {
			out[key.name]++
		}
		return out
	}
	if fl, ok := d.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if op, key, ok := mutexOp(info, call); ok && !op {
					out[key.name]++
				}
			}
			return true
		})
	}
	return out
}

// mutexOp reports whether call is a modeled sync.Mutex/RWMutex method
// call, returning true for acquisitions and the lock's identity. Calls
// on lock expressions we cannot name (map elements, function results)
// are ignored entirely so acquire/release stay balanced.
func mutexOp(info *types.Info, call *ast.CallExpr) (acquire bool, key lockKey, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return false, lockKey{}, false
	}
	acquire, modeled := mutexMethods[sel.Sel.Name]
	if !modeled {
		return false, lockKey{}, false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false, lockKey{}, false
	}
	key, named := keyForLockExpr(info, sel.X)
	if !named {
		return false, lockKey{}, false
	}
	return acquire, key, true
}

// keyForLockExpr names the mutex denoted by e. Struct fields are
// named by their owning type, package-level vars by their package,
// locals by their declaration position.
func keyForLockExpr(info *types.Info, e ast.Expr) (lockKey, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			recv := sel.Recv()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			if named, ok := recv.(*types.Named); ok {
				obj := named.Obj()
				return lockKey{name: qualify(obj.Pkg(), obj.Name()) + "." + e.Sel.Name}, true
			}
			return lockKey{}, false
		}
		// Qualified reference to another package's var: pkg.Mu.
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && isPackageLevel(v) {
			return lockKey{name: qualify(v.Pkg(), v.Name())}, true
		}
		return lockKey{}, false
	case *ast.Ident:
		v, ok := info.ObjectOf(e).(*types.Var)
		if !ok {
			return lockKey{}, false
		}
		if isPackageLevel(v) {
			return lockKey{name: qualify(v.Pkg(), v.Name())}, true
		}
		return lockKey{name: fmt.Sprintf("local:%s@%d", v.Name(), v.Pos()), local: true}, true
	}
	return lockKey{}, false
}

func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

func qualify(pkg *types.Package, name string) string {
	if pkg == nil {
		return name
	}
	return pkg.Path() + "." + name
}

// calleeKey resolves a call to a statically known function or method
// and returns its stable cross-package key. Interface methods and
// function values are not resolvable and return false.
func calleeKey(info *types.Info, call *ast.CallExpr) (string, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn.FullName(), true
		}
	case *ast.SelectorExpr:
		fn, ok := info.Uses[fun.Sel].(*types.Func)
		if !ok {
			return "", false
		}
		if sel, ok := info.Selections[fun]; ok && types.IsInterface(sel.Recv()) {
			return "", false
		}
		return fn.FullName(), true
	}
	return "", false
}

// funcKey returns the stable cross-package key of a declared
// function, matching what calleeKey resolves at call sites.
func funcKey(info *types.Info, fd *ast.FuncDecl) string {
	if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
		return fn.FullName()
	}
	return ""
}

// display strips the local: prefix for messages.
func display(key string) string {
	if rest, ok := strings.CutPrefix(key, "local:"); ok {
		name, _, _ := strings.Cut(rest, "@")
		return name
	}
	return key
}
