package lint

// A from-source package loader for the multichecker driver. It shells
// out to `go list -deps -json` for build-system truth (file sets per
// build constraints, import maps, dependency order) and type-checks
// everything with go/types — dependencies with IgnoreFuncBodies, so
// loading the module costs API-surface checking of the stdlib only.
// This replaces golang.org/x/tools/go/packages, which the offline
// build cannot depend on.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Target     bool // named by the load patterns (vs. a dependency)
	Standard   bool // part of the standard library
	// GoFiles are the build-selected source files (absolute paths) and
	// Imports the source-level import paths — retained so the result
	// cache can key a package on its content and its dependencies.
	GoFiles []string
	Imports []string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	// TypeErrors holds type-checker complaints. Fatal for targets
	// (the runner refuses to analyze a package it cannot trust);
	// tolerated for dependencies, whose bodies we skip anyway.
	TypeErrors []error
}

// listPackage is the slice of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load expands patterns (relative to dir; "" = cwd) and returns the
// matched packages plus their dependencies, topologically ordered so
// every package appears after its imports. Target packages are fully
// type-checked with complete types.Info; dependencies are checked
// signatures-only.
func Load(dir string, patterns ...string) ([]*Package, error) {
	return LoadWithTags(dir, "", patterns...)
}

// LoadWithTags is Load with a -tags argument passed through to the go
// command, so the standalone driver selects the same build-constrained
// file sets a tagged build (and `go vet -tags`) would.
func LoadWithTags(dir, tags string, patterns ...string) ([]*Package, error) {
	listed, err := listPackages(dir, tags, patterns...)
	if err != nil {
		return nil, err
	}
	return checkPackages(listed)
}

// listPackages shells out to `go list -e -deps -json` and decodes the
// dependency-ordered package stream. It is the cheap half of loading:
// the result cache hashes these file lists without type-checking.
func listPackages(dir, tags string, patterns ...string) ([]*listPackage, error) {
	args := []string{"list", "-e", "-deps", "-json"}
	if tags != "" {
		args = append(args, "-tags", tags)
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// CGO off: constraint-select the pure-Go file sets so from-source
	// type-checking never meets a cgo-generated identifier.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	var listed []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		listed = append(listed, lp)
	}
	return listed, nil
}

// checkPackages parses and type-checks a dependency-ordered package
// list from go list.
func checkPackages(listed []*listPackage) ([]*Package, error) {
	fset := token.NewFileSet()
	sizes := types.SizesFor("gc", runtime.GOARCH)
	byPath := make(map[string]*types.Package, len(listed))
	var pkgs []*Package

	for _, lp := range listed {
		if lp.ImportPath == "unsafe" {
			byPath["unsafe"] = types.Unsafe
			continue
		}
		if lp.Error != nil && !lp.DepOnly {
			return nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		target := !lp.DepOnly
		mode := parser.SkipObjectResolution
		if target {
			mode |= parser.ParseComments
		}
		var files []*ast.File
		var parseErrs []error
		var goFiles []string
		for _, name := range lp.GoFiles {
			path := filepath.Join(lp.Dir, name)
			goFiles = append(goFiles, path)
			f, err := parser.ParseFile(fset, path, nil, mode)
			if f != nil {
				files = append(files, f)
			}
			if err != nil {
				parseErrs = append(parseErrs, err)
			}
		}
		pkg := &Package{
			ImportPath: lp.ImportPath,
			Dir:        lp.Dir,
			Target:     target,
			Standard:   lp.Standard,
			GoFiles:    goFiles,
			Imports:    lp.Imports,
			Fset:       fset,
			Files:      files,
			TypeErrors: parseErrs,
		}
		var info *types.Info
		if target {
			info = NewTypesInfo()
		}
		conf := types.Config{
			Importer:         &mapImporter{byPath: byPath, importMap: lp.ImportMap},
			Sizes:            sizes,
			IgnoreFuncBodies: !target,
			Error: func(err error) {
				pkg.TypeErrors = append(pkg.TypeErrors, err)
			},
		}
		name := lp.ImportPath
		if i := strings.LastIndex(name, "/"); i >= 0 {
			name = name[i+1:]
		}
		tpkg, _ := conf.Check(lp.ImportPath, fset, files, info)
		if tpkg == nil {
			tpkg = types.NewPackage(lp.ImportPath, name)
		}
		pkg.Types = tpkg
		pkg.Info = info
		byPath[lp.ImportPath] = tpkg
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// mapImporter resolves imports against already-checked packages,
// honoring the per-package ImportMap (vendored stdlib paths).
type mapImporter struct {
	byPath    map[string]*types.Package
	importMap map[string]string
}

func (m *mapImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := m.byPath[path]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("lint: import %q not loaded (go list order violated?)", path)
}

// SourceImporter returns a from-source importer for fixture packages
// (linttest): stdlib-only imports, resolved through GOROOT without the
// go command. Not safe for concurrent use.
func SourceImporter(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "source", nil)
}
