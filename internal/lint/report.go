package lint

// Position-resolved findings and their serializations. Diagnostics
// carry token.Pos, which only means something next to the FileSet that
// produced it; a Finding is the portable form — file, line, column —
// that the result cache stores, the baseline matches against, and the
// JSON/SARIF writers emit.

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"path/filepath"
	"strings"
)

// Finding is one resolved diagnostic. File is slash-separated and
// relative to the directory the run was rooted at whenever the file
// lives under it, so findings compare stably across checkouts.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	// Justification is set when a baseline entry waived this finding;
	// it carries the entry's reason into the SARIF suppression record.
	Justification string `json:"justification,omitempty"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// resolveFinding turns a Diagnostic into a Finding with its file path
// relativized against absDir ("" keeps paths as the FileSet has them).
func resolveFinding(fset *token.FileSet, absDir string, d Diagnostic) Finding {
	pos := fset.Position(d.Pos)
	file := pos.Filename
	if absDir != "" {
		if rel, err := filepath.Rel(absDir, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	return Finding{
		File:     filepath.ToSlash(file),
		Line:     pos.Line,
		Col:      pos.Column,
		Analyzer: d.Analyzer,
		Message:  d.Message,
	}
}

// Report is the machine-readable summary of one run, emitted by the
// -json flag.
type Report struct {
	// Findings are the live, actionable findings: not suppressed in
	// source and not covered by the baseline.
	Findings []Finding `json:"findings"`
	// Baselined findings matched a baseline entry; each carries the
	// entry's reason as its Justification.
	Baselined []Finding `json:"baselined,omitempty"`
	// Suppressed counts findings waived by haystack:allow annotations.
	Suppressed int `json:"suppressed"`
	// CacheHits counts target packages whose results were replayed
	// from the content-hash cache.
	CacheHits int `json:"cache_hits"`
}

// WriteJSON serializes the report, indented, to w.
func (r *Report) WriteJSON(w io.Writer) error {
	if r.Findings == nil {
		r.Findings = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// SARIF 2.1.0 — the slice of the schema the suite emits. Baselined
// findings are included as suppressed results (kind "external", the
// baseline reason as justification) so a SARIF viewer shows the whole
// picture while CI gates only on unsuppressed results.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	RuleIndex    int                `json:"ruleIndex"`
	Level        string             `json:"level"`
	Message      sarifMessage       `json:"message"`
	Locations    []sarifLocation    `json:"locations"`
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

type sarifSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}

// WriteSARIF emits a SARIF 2.1.0 log of findings to w. Every analyzer
// becomes a rule (so rule metadata is stable even on clean runs);
// findings with a Justification become suppressed results.
func WriteSARIF(w io.Writer, analyzers []*Analyzer, findings []Finding) error {
	driver := sarifDriver{Name: "haystacklint", Rules: []sarifRule{}}
	ruleIndex := make(map[string]int, len(analyzers))
	for _, a := range analyzers {
		ruleIndex[a.Name] = len(driver.Rules)
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: firstSentence(a.Doc)},
		})
	}

	results := []sarifResult{}
	for _, f := range findings {
		idx, ok := ruleIndex[f.Analyzer]
		if !ok {
			// A finding from an unregistered analyzer (cached results
			// after a suite change): register a bare rule for it.
			idx = len(driver.Rules)
			ruleIndex[f.Analyzer] = idx
			driver.Rules = append(driver.Rules, sarifRule{
				ID:               f.Analyzer,
				ShortDescription: sarifMessage{Text: f.Analyzer},
			})
		}
		r := sarifResult{
			RuleID:    f.Analyzer,
			RuleIndex: idx,
			Level:     "error",
			Message:   sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       f.File,
						URIBaseID: "SRCROOT",
					},
					Region: sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		}
		if f.Justification != "" {
			r.Suppressions = []sarifSuppression{{Kind: "external", Justification: f.Justification}}
		}
		results = append(results, r)
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// firstSentence trims doc to its first sentence for SARIF rule
// descriptions.
func firstSentence(doc string) string {
	doc = strings.TrimSpace(doc)
	if i := strings.Index(doc, ". "); i >= 0 {
		return doc[:i+1]
	}
	if i := strings.Index(doc, ".\n"); i >= 0 {
		return doc[:i+1]
	}
	return doc
}
