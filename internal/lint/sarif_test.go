package lint_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/lint"
)

// TestWriteSARIF round-trips the emitted log through encoding/json and
// checks the structure a SARIF viewer (or GitHub code scanning)
// depends on: schema/version, one rule per analyzer, results bound to
// rules by id and index, physical locations, and suppression records
// for baselined findings.
func TestWriteSARIF(t *testing.T) {
	analyzers := []*lint.Analyzer{
		{Name: "wirebounds", Doc: "prove decode indexing in bounds. Second sentence."},
		{Name: "hotpath", Doc: "no allocation on hot paths"},
	}
	findings := []lint.Finding{
		{File: "internal/ipfix/ipfix.go", Line: 327, Col: 9, Analyzer: "wirebounds", Message: "slice bound off+4 is not proven <= len(body)"},
		{File: "internal/pipeline/pipeline.go", Line: 295, Col: 2, Analyzer: "wirebounds", Message: "slice index h is not proven < len(shards)",
			Justification: "index is a modulo over len(shards)"},
	}
	var buf bytes.Buffer
	if err := lint.WriteSARIF(&buf, analyzers, findings); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}

	var log struct {
		Schema  string `json:"$schema"`
		Version string
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct{ Text string }
					}
				}
			}
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string
				Message   struct{ Text string }
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI       string `json:"uri"`
							URIBaseID string `json:"uriBaseId"`
						}
						Region struct{ StartLine, StartColumn int }
					}
				}
				Suppressions []struct{ Kind, Justification string }
			}
		}
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("emitted SARIF does not parse: %v", err)
	}
	if log.Version != "2.1.0" || log.Schema == "" {
		t.Errorf("version %q schema %q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "haystacklint" {
		t.Errorf("driver name %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != 2 {
		t.Fatalf("got %d rules, want one per analyzer", len(run.Tool.Driver.Rules))
	}
	if got := run.Tool.Driver.Rules[0].ShortDescription.Text; got != "prove decode indexing in bounds." {
		t.Errorf("rule description not trimmed to first sentence: %q", got)
	}
	if len(run.Results) != 2 {
		t.Fatalf("got %d results", len(run.Results))
	}
	for i, r := range run.Results {
		f := findings[i]
		if r.RuleID != f.Analyzer || r.Level != "error" || r.Message.Text != f.Message {
			t.Errorf("result %d: %+v does not reflect %+v", i, r, f)
		}
		if run.Tool.Driver.Rules[r.RuleIndex].ID != r.RuleID {
			t.Errorf("result %d: ruleIndex %d does not point at %s", i, r.RuleIndex, r.RuleID)
		}
		loc := r.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI != f.File || loc.Region.StartLine != f.Line || loc.Region.StartColumn != f.Col {
			t.Errorf("result %d location %+v does not match finding %+v", i, loc, f)
		}
	}
	if len(run.Results[0].Suppressions) != 0 {
		t.Error("live finding carries a suppression")
	}
	sup := run.Results[1].Suppressions
	if len(sup) != 1 || sup[0].Kind != "external" || sup[0].Justification == "" {
		t.Errorf("baselined finding suppressions = %+v, want one external with justification", sup)
	}
}
