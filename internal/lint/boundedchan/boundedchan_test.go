package boundedchan_test

import (
	"testing"

	"repro/internal/lint/boundedchan"
	"repro/internal/lint/linttest"
)

func TestBoundedChan(t *testing.T) {
	linttest.Run(t, boundedchan.Analyzer, "a")
}
