// Package boundedchan forbids unbuffered channels outside tests. At
// millions of subscribers every queue in the ingest path must have an
// explicit bound (and a drop-or-block policy): an unbounded or
// accidentally synchronous channel is either an OOM or a pipeline
// stall waiting to happen. Channels that are genuinely synchronization
// points (close-only done channels, say) carry an explicit
// `// haystack:unbounded <why>` annotation so the reasoning is in the
// source, not in a reviewer's memory.
package boundedchan

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// Analyzer flags make(chan T) with no capacity argument.
var Analyzer = &lint.Analyzer{
	Name: "boundedchan",
	Doc:  "make(chan T) without a capacity is forbidden outside _test.go files unless annotated // haystack:unbounded <why>",
	Run:  run,
}

func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		var ld *lint.LineDirectives // built lazily: most files have no chans
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok {
				return true
			}
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
				return true
			}
			tv := pass.TypesInfo.Types[call.Args[0]]
			if !tv.IsType() {
				return true
			}
			if _, ok := tv.Type.Underlying().(*types.Chan); !ok {
				return true
			}
			if ld == nil {
				ld = lint.FileDirectives(pass.Fset, file)
			}
			if d, ok := ld.At(call.Pos(), "unbounded"); ok {
				if d.Args != "" {
					return true
				}
				pass.Reportf(call.Pos(), "haystack:unbounded needs a reason: say why this channel cannot grow without bound")
				return true
			}
			pass.Reportf(call.Pos(), "unbuffered channel: give it a capacity (bounded queues are the backpressure policy) or annotate // haystack:unbounded <why>")
			return true
		})
	}
	return nil
}
