// Fixture for the backpressure policy: every channel gets a capacity
// or a reason.
package a

func bad() chan int {
	ch := make(chan int) // want "unbuffered channel"
	return ch
}

func bounded() chan int {
	return make(chan int, 16)
}

func annotatedSameLine() chan struct{} {
	done := make(chan struct{}) // haystack:unbounded close-only shutdown signal; never carries data
	return done
}

func annotatedAbove() chan struct{} {
	// haystack:unbounded close-only shutdown signal; never carries data
	done := make(chan struct{})
	return done
}

func bareReason() chan struct{} {
	// haystack:unbounded
	ch := make(chan struct{}) // want "needs a reason"
	return ch
}

func notAChan() []int {
	return make([]int, 4) // single-arg make of a non-channel is fine
}
