// Test files are exempt: synchronous channels are the natural idiom
// for test orchestration, and tests do not run at ingest rates.
package a

func testHelper() chan int {
	return make(chan int)
}
