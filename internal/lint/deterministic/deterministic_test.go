package deterministic_test

import (
	"testing"

	"repro/internal/lint/deterministic"
	"repro/internal/lint/linttest"
)

func TestDeterministic(t *testing.T) {
	linttest.Run(t, deterministic.Analyzer, "det")
}
