// Package deterministic proves that exported bytes do not depend on
// Go's randomized map iteration order. Functions on the export path
// carry a `haystack:deterministic` doc directive; inside them (and
// transitively, through taint facts that follow the import graph)
// every map range must be neutralized one of three ways:
//
//   - the loop body is order-insensitive: it only accumulates with
//     commutative ops (+=, counters) or writes distinct map keys;
//   - the collected result provably passes a sort on every path from
//     the loop to the function's exit — sort/slices calls, or a
//     helper this analyzer marked as a sorter;
//   - the loop carries `haystack:allow deterministic <why>`.
//
// Calls to tainted helpers (functions whose result leaks iteration
// order) are findings at the call site unless the result is sorted
// before exit. encoding/json needs no annotations: it sorts map keys
// itself.
package deterministic

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/cfg"
)

// Analyzer is the deterministic analyzer.
var Analyzer = &lint.Analyzer{
	Name:    "deterministic",
	Doc:     "exported bytes independent of map iteration order",
	Collect: collect,
	Run:     run,
}

// sortFuncs are the stdlib calls that establish order.
var sortFuncs = map[string]bool{
	"sort.Sort": true, "sort.Stable": true, "sort.Slice": true,
	"sort.SliceStable": true, "sort.Strings": true, "sort.Ints": true,
	"sort.Float64s": true,
	"slices.Sort":   true, "slices.SortFunc": true, "slices.SortStableFunc": true,
}

// pkgTaint is what one package knows about its functions.
type pkgTaint struct {
	tainted map[string]bool // result leaks map iteration order
	sorter  map[string]bool // calling it sorts its argument
}

func collect(pass *lint.Pass) {
	if pass.TypesInfo == nil {
		return // dependency package loaded without bodies/types
	}
	pt := compute(pass)
	for k := range pt.tainted {
		pass.ExportFact("taint:"+k, "1")
	}
	for k := range pt.sorter {
		pass.ExportFact("sorter:"+k, "1")
	}
}

func run(pass *lint.Pass) error {
	pt := compute(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, ok := lint.DocDirective(fd.Doc, "deterministic"); !ok {
				continue
			}
			checkExportFunc(pass, pt, fd)
		}
	}
	return nil
}

// checkExportFunc reports every unneutralized map range and every
// unsorted call to a tainted helper inside an annotated function.
func checkExportFunc(pass *lint.Pass, pt *pkgTaint, fd *ast.FuncDecl) {
	g := cfg.New(fd.Body, pass.TypesInfo)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if !isMapRange(pass.TypesInfo, n) || orderInsensitive(pass.TypesInfo, n) {
				return true
			}
			if sortedAfterRange(pass, pt, g, n) {
				return true
			}
			pass.Reportf(n.Pos(), "map iteration order reaches the exported output; sort what this loop collects before writing, or mark it haystack:allow deterministic <why>")
		case *ast.CallExpr:
			key, ok := calleeKey(pass.TypesInfo, n)
			if !ok || !isTainted(pass, pt, key) {
				return true
			}
			if sortedAfterCall(pass, pt, g, n) {
				return true
			}
			pass.Reportf(n.Pos(), "%s iterates a map in nondeterministic order; sort its result before export, or mark the call haystack:allow deterministic <why>", shortName(key))
		}
		return true
	})
}

// compute derives the package's taint and sorter sets: direct sorts
// and unneutralized ranges first, then a fixpoint over same-package
// calls (imported callees resolve through facts).
func compute(pass *lint.Pass) *pkgTaint {
	pt := &pkgTaint{tainted: make(map[string]bool), sorter: make(map[string]bool)}

	type fn struct {
		key string
		fd  *ast.FuncDecl
		g   *cfg.Graph
	}
	var fns []fn
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			key := funcKey(pass.TypesInfo, fd)
			if key == "" {
				continue
			}
			fns = append(fns, fn{key, fd, nil})
		}
	}

	// Direct sorters: any body with a stdlib sort call.
	for _, f := range fns {
		direct := false
		ast.Inspect(f.fd.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && stdlibSortCall(pass.TypesInfo, call) {
				direct = true
			}
			return !direct
		})
		if direct {
			pt.sorter[f.key] = true
		}
	}

	// Direct taint: an unneutralized map range anywhere in the body
	// (closures included — they run as part of the function).
	for i := range fns {
		f := &fns[i]
		f.g = cfg.New(f.fd.Body, pass.TypesInfo)
		ast.Inspect(f.fd.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMapRange(pass.TypesInfo, rs) {
				return true
			}
			if orderInsensitive(pass.TypesInfo, rs) || allowedAt(pass, rs.Pos()) {
				return true
			}
			if sortedAfterRange(pass, pt, f.g, rs) {
				return true
			}
			pt.tainted[f.key] = true
			return true
		})
	}

	// Call taint: calling a tainted function taints the caller unless
	// the result is sorted before exit or the call is allowed.
	for changed := true; changed; {
		changed = false
		for i := range fns {
			f := &fns[i]
			if pt.tainted[f.key] {
				continue
			}
			ast.Inspect(f.fd.Body, func(n ast.Node) bool {
				if pt.tainted[f.key] {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				key, ok := calleeKey(pass.TypesInfo, call)
				if !ok || !isTainted(pass, pt, key) {
					return true
				}
				if allowedAt(pass, call.Pos()) || sortedAfterCall(pass, pt, f.g, call) {
					return true
				}
				pt.tainted[f.key] = true
				changed = true
				return false
			})
		}
	}
	return pt
}

func isTainted(pass *lint.Pass, pt *pkgTaint, key string) bool {
	if pt.tainted[key] {
		return true
	}
	_, ok := pass.Fact("taint:" + key)
	return ok
}

func isSorter(pass *lint.Pass, pt *pkgTaint, key string) bool {
	if pt.sorter[key] {
		return true
	}
	_, ok := pass.Fact("sorter:" + key)
	return ok
}

// isMapRange reports whether rs iterates a map.
func isMapRange(info *types.Info, rs *ast.RangeStmt) bool {
	tv, ok := info.Types[rs.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// orderInsensitive accepts loop bodies whose effect is the same under
// any iteration order: commutative accumulation (+=, -=, |=, &=, ^=,
// ++/--), writes to distinct map keys, and delete — optionally under
// branches. Anything else (append, scalar assignment, I/O) is
// order-sensitive.
func orderInsensitive(info *types.Info, rs *ast.RangeStmt) bool {
	var stmtOK func(s ast.Stmt) bool
	stmtsOK := func(list []ast.Stmt) bool {
		for _, s := range list {
			if !stmtOK(s) {
				return false
			}
		}
		return true
	}
	stmtOK = func(s ast.Stmt) bool {
		switch s := s.(type) {
		case *ast.AssignStmt:
			switch s.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN,
				token.AND_ASSIGN, token.XOR_ASSIGN:
				return true
			case token.ASSIGN:
				for _, lhs := range s.Lhs {
					ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
					if !ok {
						return false
					}
					if tv, ok := info.Types[ix.X]; !ok {
						return false
					} else if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
						return false
					}
				}
				return true
			}
			return false
		case *ast.IncDecStmt:
			return true
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok {
					if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "delete" {
						return true
					}
				}
			}
			return false
		case *ast.IfStmt:
			if !stmtsOK(s.Body.List) {
				return false
			}
			if s.Else != nil {
				return stmtOK(s.Else)
			}
			return true
		case *ast.BlockStmt:
			return stmtsOK(s.List)
		case *ast.BranchStmt:
			return s.Tok == token.CONTINUE
		}
		return false
	}
	return stmtsOK(rs.Body.List)
}

// sortedAfterRange reports whether every path from the loop's exit to
// the function's exit passes a sort. Ranges with no edge in g (inside
// closures) have no provable after-path and return false.
func sortedAfterRange(pass *lint.Pass, pt *pkgTaint, g *cfg.Graph, rs *ast.RangeStmt) bool {
	var head *cfg.Block
	for _, b := range g.Blocks {
		for _, e := range b.Succs {
			if e.Range == rs {
				head = b
			}
		}
	}
	if head == nil {
		return false
	}
	for _, e := range head.Succs {
		if e.Range == rs {
			continue // into the loop body
		}
		if !sortedFrom(pass, pt, g, e.To, 0, make(map[*cfg.Block]bool)) {
			return false
		}
	}
	return true
}

// sortedAfterCall reports whether every path from the call's node to
// the exit passes a sort. A sort in the same node (the call feeding a
// sorter directly) counts.
func sortedAfterCall(pass *lint.Pass, pt *pkgTaint, g *cfg.Graph, call *ast.CallExpr) bool {
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if n.Pos() <= call.Pos() && call.End() <= n.End() {
				if nodeSorts(pass, pt, n, call) {
					return true
				}
				return sortedFrom(pass, pt, g, b, i+1, make(map[*cfg.Block]bool))
			}
		}
	}
	return false
}

// sortedFrom walks forward from b.Nodes[idx:]: true when every path
// reaching Exit passes a sorting node first.
func sortedFrom(pass *lint.Pass, pt *pkgTaint, g *cfg.Graph, b *cfg.Block, idx int, seen map[*cfg.Block]bool) bool {
	if b == g.Exit {
		return false
	}
	for _, n := range b.Nodes[idx:] {
		if nodeSorts(pass, pt, n, nil) {
			return true
		}
	}
	if seen[b] {
		return true // a cycle reaches Exit only via some other path
	}
	seen[b] = true
	for _, e := range b.Succs {
		if !sortedFrom(pass, pt, g, e.To, 0, seen) {
			return false
		}
	}
	return true
}

// nodeSorts reports whether n contains a sorting call other than
// except.
func nodeSorts(pass *lint.Pass, pt *pkgTaint, n ast.Node, except *ast.CallExpr) bool {
	sorts := false
	ast.Inspect(n, func(sub ast.Node) bool {
		call, ok := sub.(*ast.CallExpr)
		if !ok || call == except || sorts {
			return !sorts
		}
		if stdlibSortCall(pass.TypesInfo, call) {
			sorts = true
			return false
		}
		if key, ok := calleeKey(pass.TypesInfo, call); ok && isSorter(pass, pt, key) {
			sorts = true
			return false
		}
		return true
	})
	return sorts
}

// stdlibSortCall matches the sort/slices calls in sortFuncs.
func stdlibSortCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return sortFuncs[fn.Pkg().Path()+"."+fn.Name()]
}

// allowedAt reports a haystack:allow deterministic directive with a
// reason at pos — honored during taint computation so a documented
// source does not taint its callers.
func allowedAt(pass *lint.Pass, pos token.Pos) bool {
	return lint.Suppressed(pass.Fset, pass.Files, lint.Diagnostic{
		Pos:      pos,
		Analyzer: "deterministic",
	})
}

// calleeKey resolves a statically known callee to its cross-package
// key; interface methods and function values return false.
func calleeKey(info *types.Info, call *ast.CallExpr) (string, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn.FullName(), true
		}
	case *ast.SelectorExpr:
		fn, ok := info.Uses[fun.Sel].(*types.Func)
		if !ok {
			return "", false
		}
		if sel, ok := info.Selections[fun]; ok && types.IsInterface(sel.Recv()) {
			return "", false
		}
		return fn.FullName(), true
	}
	return "", false
}

func funcKey(info *types.Info, fd *ast.FuncDecl) string {
	if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
		return fn.FullName()
	}
	return ""
}

// shortName trims a FullName like "(*path/to/pkg.T).M" to "pkg.T.M"
// for messages.
func shortName(key string) string {
	key = strings.TrimPrefix(key, "(*")
	key = strings.TrimPrefix(key, "(")
	key = strings.Replace(key, ")", "", 1)
	if i := strings.LastIndexByte(key, '/'); i >= 0 {
		key = key[i+1:]
	}
	return key
}
