package det

import (
	"fmt"
	"io"
	"sort"
)

// WriteCounts collects keys, sorts, then writes: ok.
//
// haystack:deterministic
func WriteCounts(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s %d\n", k, m[k])
	}
}

// WriteCountsUnsorted streams straight out of the map.
//
// haystack:deterministic
func WriteCountsUnsorted(w io.Writer, m map[string]int) {
	for k, v := range m { // want "map iteration order reaches the exported output"
		fmt.Fprintf(w, "%s %d\n", k, v)
	}
}

// WriteCountsSortedSometimes sorts on one path only.
//
// haystack:deterministic
func WriteCountsSortedSometimes(w io.Writer, m map[string]int, fast bool) {
	var keys []string
	for k := range m { // want "map iteration order reaches the exported output"
		keys = append(keys, k)
	}
	if !fast {
		sort.Strings(keys)
	}
	for _, k := range keys {
		fmt.Fprintln(w, k)
	}
}

// Total only accumulates commutatively: ok.
//
// haystack:deterministic
func Total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Invert writes distinct map keys: ok.
//
// haystack:deterministic
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Prune deletes and counts under a branch: ok.
//
// haystack:deterministic
func Prune(m map[string]int) int {
	dropped := 0
	for k, v := range m {
		if v == 0 {
			delete(m, k)
			dropped++
		}
	}
	return dropped
}

// keysOf leaks iteration order to its caller: tainted.
func keysOf(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

// sortKeys is a sorter: calling it neutralizes taint.
func sortKeys(ks []string) {
	sort.Strings(ks)
}

// WriteViaHelperUnsorted consumes a tainted result directly.
//
// haystack:deterministic
func WriteViaHelperUnsorted(w io.Writer, m map[string]int) {
	for _, k := range keysOf(m) { // want "det.keysOf iterates a map in nondeterministic order"
		fmt.Fprintln(w, k)
	}
}

// WriteViaHelperSorted sorts the tainted result first: ok.
//
// haystack:deterministic
func WriteViaHelperSorted(w io.Writer, m map[string]int) {
	ks := keysOf(m)
	sort.Strings(ks)
	for _, k := range ks {
		fmt.Fprintln(w, k)
	}
}

// WriteViaSorterHelper sorts through a package helper: ok.
//
// haystack:deterministic
func WriteViaSorterHelper(w io.Writer, m map[string]int) {
	ks := keysOf(m)
	sortKeys(ks)
	for _, k := range ks {
		fmt.Fprintln(w, k)
	}
}

// Fanout's delivery order is unordered by contract: allowed.
//
// haystack:deterministic
func Fanout(m map[string]chan int) {
	// haystack:allow deterministic delivery order across subscribers is unordered by contract
	for _, ch := range m {
		ch <- 1
	}
}

// relay calls keysOf but sorts before returning: not tainted, so the
// annotated caller below is clean.
func relay(m map[string]int) []string {
	ks := keysOf(m)
	sort.Strings(ks)
	return ks
}

// WriteViaRelay: taint stops at relay's sort: ok.
//
// haystack:deterministic
func WriteViaRelay(w io.Writer, m map[string]int) {
	for _, k := range relay(m) {
		fmt.Fprintln(w, k)
	}
}

// notAnnotated is outside the contract: no findings here.
func notAnnotated(w io.Writer, m map[string]int) {
	for k := range m {
		fmt.Fprintln(w, k)
	}
}

// Closure ranges inside a function literal — still part of this
// function's output.
//
// haystack:deterministic
func Closure(w io.Writer, m map[string]int) {
	emit := func() {
		for k := range m { // want "map iteration order reaches the exported output"
			fmt.Fprintln(w, k)
		}
	}
	emit()
}
