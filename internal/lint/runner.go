package lint

// The multichecker driver: load packages, run every analyzer's
// Collect over the whole dependency-ordered set (facts flow down the
// import graph), then Run over the target packages, printing
// file:line:col findings. cmd/haystacklint wires this to the command
// line; CI runs it over ./... and fails on any finding.

import (
	"fmt"
	"go/token"
	"io"
	"sort"
)

// RunResult is one multichecker run's outcome.
type RunResult struct {
	Fset        *token.FileSet
	Diagnostics []Diagnostic
	// Suppressed counts findings waived by haystack:allow annotations
	// (reported for transparency, not failure).
	Suppressed int
}

// Run loads patterns from dir and applies every analyzer to the
// target packages. Diagnostics come back ordered by position.
func Run(dir string, analyzers []*Analyzer, patterns ...string) (*RunResult, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	for _, p := range pkgs {
		if p.Target && len(p.TypeErrors) > 0 {
			return nil, fmt.Errorf("lint: %s does not type-check: %v", p.ImportPath, p.TypeErrors[0])
		}
	}
	facts := NewFacts()
	res := &RunResult{}
	if len(pkgs) > 0 {
		res.Fset = pkgs[0].Fset
	}
	discard := func(Diagnostic) {}
	// Collect runs over dependencies too: a fact about an imported
	// package (an atomically-accessed exported field, say) must exist
	// before a dependent's Run consults it. Dependencies carry no
	// syntax or Info (bodies were skipped), so Collect implementations
	// must tolerate empty Files.
	for _, p := range pkgs {
		for _, a := range analyzers {
			if a.Collect != nil {
				a.Collect(NewPass(a, p.Fset, p.Files, p.Types, p.Info, facts, discard))
			}
		}
	}
	for _, p := range pkgs {
		if !p.Target {
			continue
		}
		for _, a := range analyzers {
			report := func(d Diagnostic) {
				if Suppressed(p.Fset, p.Files, d) {
					res.Suppressed++
					return
				}
				res.Diagnostics = append(res.Diagnostics, d)
			}
			if err := a.Run(NewPass(a, p.Fset, p.Files, p.Types, p.Info, facts, report)); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %v", a.Name, p.ImportPath, err)
			}
		}
	}
	sortDiagnostics(res.Fset, res.Diagnostics)
	return res, nil
}

// sortDiagnostics orders by file position for stable output.
func sortDiagnostics(fset *token.FileSet, ds []Diagnostic) {
	if fset == nil {
		return
	}
	sort.SliceStable(ds, func(i, j int) bool {
		pi, pj := fset.Position(ds[i].Pos), fset.Position(ds[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Offset < pj.Offset
	})
}

// Print writes findings in the canonical file:line:col: analyzer:
// message form and reports whether any were printed.
func (res *RunResult) Print(w io.Writer) bool {
	for _, d := range res.Diagnostics {
		fmt.Fprintf(w, "%s: %s: %s\n", res.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	return len(res.Diagnostics) > 0
}
