package lint

// The multichecker driver: load packages, then walk them in dependency
// order, Collecting and Running each package before the next, so facts
// flow strictly down the import graph — the same order the vet
// unitchecker guarantees, and the property that makes per-package
// result caching sound. cmd/haystacklint wires this to the command
// line; CI runs it over ./... and fails on any finding outside the
// checked-in baseline.

import (
	"fmt"
	"io"
	"path/filepath"
	"sort"
)

// Options configures a run beyond the defaults of Run.
type Options struct {
	// Dir is the directory patterns resolve in ("" = cwd). Finding
	// paths are reported relative to it.
	Dir string
	// Tags is passed to the go command as -tags, so the standalone
	// driver selects the same files a tagged build would.
	Tags string
	// CacheDir enables the per-package result cache when non-empty.
	CacheDir string
	// SuiteKey identifies the tool build inside cache keys (the
	// binary's self-hash); an empty key still caches, but rebuilding
	// the analyzers will not invalidate entries.
	SuiteKey string
}

// RunResult is one multichecker run's outcome.
type RunResult struct {
	// Findings are position-resolved diagnostics, ordered by file,
	// line, column.
	Findings []Finding
	// Suppressed counts findings waived by haystack:allow annotations
	// (reported for transparency, not failure).
	Suppressed int
	// CacheHits counts target packages replayed from the result cache.
	CacheHits int
}

// Run loads patterns from dir and applies every analyzer to the
// target packages.
func Run(dir string, analyzers []*Analyzer, patterns ...string) (*RunResult, error) {
	return RunWithOptions(Options{Dir: dir}, analyzers, patterns...)
}

// RunWithOptions is Run with build tags and the result cache.
func RunWithOptions(opts Options, analyzers []*Analyzer, patterns ...string) (*RunResult, error) {
	listed, err := listPackages(opts.Dir, opts.Tags, patterns...)
	if err != nil {
		return nil, err
	}

	var keys map[string]string
	entries := make(map[string]*cacheEntry)
	if opts.CacheDir != "" {
		keys, err = cacheKeys(listed, analyzers, opts.SuiteKey)
		if err != nil {
			return nil, err
		}
		// Fast path: when every target hits, the run needs no parsing
		// or type-checking at all — just replay the stored findings.
		allHit := true
		for _, lp := range listed {
			if lp.DepOnly {
				continue
			}
			e := readCacheEntry(opts.CacheDir, keys[lp.ImportPath])
			if e == nil {
				allHit = false
				break
			}
			entries[lp.ImportPath] = e
		}
		if allHit {
			res := &RunResult{}
			for _, lp := range listed {
				if e := entries[lp.ImportPath]; e != nil {
					res.Findings = append(res.Findings, e.Findings...)
					res.Suppressed += e.Suppressed
					res.CacheHits++
				}
			}
			sortFindings(res.Findings)
			return res, nil
		}
	}

	absDir, err := filepath.Abs(firstNonEmpty(opts.Dir, "."))
	if err != nil {
		absDir = ""
	}
	pkgs, err := checkPackages(listed)
	if err != nil {
		return nil, err
	}
	for _, p := range pkgs {
		if p.Target && len(p.TypeErrors) > 0 {
			return nil, fmt.Errorf("lint: %s does not type-check: %v", p.ImportPath, p.TypeErrors[0])
		}
	}

	facts := NewFacts()
	res := &RunResult{}
	discard := func(Diagnostic) {}
	for _, p := range pkgs {
		// A cached target package contributes its stored findings and
		// facts without re-analysis; dependents analyzed below still
		// see everything its Collect would have exported.
		if e, ok := entries[p.ImportPath]; ok {
			res.Findings = append(res.Findings, e.Findings...)
			res.Suppressed += e.Suppressed
			res.CacheHits++
			facts.Merge(FactsFromMap(e.Facts))
			continue
		}

		// Collect runs over dependencies too: a fact about an imported
		// package (an atomically-accessed exported field, say) must
		// exist before a dependent's Run consults it. Dependencies
		// carry no syntax or Info (bodies were skipped), so Collect
		// implementations must tolerate empty Files.
		var exported map[string]map[string]string
		if p.Target && opts.CacheDir != "" {
			exported = make(map[string]map[string]string)
			facts.SetHook(func(analyzer, key, value string) {
				a := exported[analyzer]
				if a == nil {
					a = make(map[string]string)
					exported[analyzer] = a
				}
				a[key] = value
			})
		}
		for _, a := range analyzers {
			if a.Collect != nil {
				a.Collect(NewPass(a, p.Fset, p.Files, p.Types, p.Info, facts, discard))
			}
		}
		facts.SetHook(nil)

		if !p.Target {
			continue
		}
		var pkgFindings []Finding
		suppressed := 0
		for _, a := range analyzers {
			report := func(d Diagnostic) {
				if Suppressed(p.Fset, p.Files, d) {
					suppressed++
					return
				}
				pkgFindings = append(pkgFindings, resolveFinding(p.Fset, absDir, d))
			}
			if err := a.Run(NewPass(a, p.Fset, p.Files, p.Types, p.Info, facts, report)); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %v", a.Name, p.ImportPath, err)
			}
		}
		res.Findings = append(res.Findings, pkgFindings...)
		res.Suppressed += suppressed
		if opts.CacheDir != "" {
			e := &cacheEntry{Findings: pkgFindings, Suppressed: suppressed, Facts: exported}
			// Write failure is non-fatal: the cache is an optimization.
			_ = writeCacheEntry(opts.CacheDir, keys[p.ImportPath], e)
		}
	}
	sortFindings(res.Findings)
	return res, nil
}

// sortFindings orders findings by file, then position, then analyzer,
// for stable output across cached and live runs.
func sortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}

func firstNonEmpty(a, b string) string {
	if a != "" {
		return a
	}
	return b
}

// Print writes findings in the canonical file:line:col: analyzer:
// message form and reports whether any were printed.
func (res *RunResult) Print(w io.Writer) bool {
	for _, f := range res.Findings {
		fmt.Fprintln(w, f.String())
	}
	return len(res.Findings) > 0
}
