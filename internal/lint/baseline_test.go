package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestBaselineApply(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	writeFile(t, path, `{
  "entries": [
    {"analyzer": "wirebounds", "file": "a/a.go", "message": "not proven", "reason": "modulo result is always in range"},
    {"analyzer": "golifetime", "file": "b/b.go", "message": "not provably stopped", "reason": "process-lifetime goroutine"}
  ]
}`)
	b, err := lint.LoadBaseline(path)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	findings := []lint.Finding{
		{File: "a/a.go", Line: 3, Analyzer: "wirebounds", Message: "slice index i is not proven < len(xs)"},
		{File: "a/a.go", Line: 9, Analyzer: "wirebounds", Message: "slice index j is not proven < len(ys)"},
		{File: "a/a.go", Line: 12, Analyzer: "hotpath", Message: "call to time.Now in hot path"},
	}
	kept, baselined, unused := b.Apply(findings)
	// Both wirebounds findings match the one entry; hotpath survives.
	if len(kept) != 1 || kept[0].Analyzer != "hotpath" {
		t.Errorf("kept = %v, want the hotpath finding only", kept)
	}
	if len(baselined) != 2 {
		t.Errorf("baselined = %v, want both wirebounds findings", baselined)
	}
	for _, f := range baselined {
		if f.Justification != "modulo result is always in range" {
			t.Errorf("baselined finding lost its justification: %+v", f)
		}
	}
	// The golifetime entry matched nothing: stale.
	if len(unused) != 1 || unused[0].Analyzer != "golifetime" {
		t.Errorf("unused = %v, want the golifetime entry", unused)
	}
}

func TestBaselineReasonRequired(t *testing.T) {
	for name, entry := range map[string]string{
		"empty": `{"analyzer": "hotpath", "file": "a.go", "message": "x", "reason": ""}`,
		"todo":  `{"analyzer": "hotpath", "file": "a.go", "message": "x", "reason": "TODO: explain why this finding is acceptable"}`,
	} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "baseline.json")
			writeFile(t, path, `{"entries": [`+entry+`]}`)
			if _, err := lint.LoadBaseline(path); err == nil {
				t.Errorf("baseline with %s reason loaded; a reviewed reason must be mandatory", name)
			}
		})
	}
}

func TestBaselineBadRegexp(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	writeFile(t, path, `{"entries": [{"analyzer": "hotpath", "file": "a.go", "message": "(", "reason": "legit"}]}`)
	if _, err := lint.LoadBaseline(path); err == nil {
		t.Error("baseline with invalid regexp loaded")
	}
}

// TestWriteBaselineRoundTrip checks the generator's output is
// structurally valid but unloadable until its TODO reasons are edited
// — the policy that keeps unreviewed suppressions out of the tree.
func TestWriteBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	findings := []lint.Finding{
		{File: "p/p.go", Line: 1, Analyzer: "wirebounds", Message: "slice index i+1 is not proven <= len(b)"},
		{File: "p/p.go", Line: 2, Analyzer: "wirebounds", Message: "slice index i+1 is not proven <= len(b)"}, // dedups
	}
	if err := lint.WriteBaselineFile(path, findings); err != nil {
		t.Fatalf("WriteBaselineFile: %v", err)
	}
	if _, err := lint.LoadBaseline(path); err == nil {
		t.Fatal("generated baseline loaded with TODO reasons; it must require editing")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	edited := strings.ReplaceAll(string(data), "TODO: explain why this finding is acceptable", "offsets bounded by the header check")
	writeFile(t, path, edited)
	b, err := lint.LoadBaseline(path)
	if err != nil {
		t.Fatalf("edited baseline failed to load: %v", err)
	}
	if len(b.Entries) != 1 {
		t.Errorf("got %d entries, want 1 (identical findings dedup)", len(b.Entries))
	}
	kept, baselined, unused := b.Apply(findings)
	if len(kept) != 0 || len(baselined) != 2 || len(unused) != 0 {
		t.Errorf("round trip: kept=%d baselined=%d unused=%d, want 0/2/0 (QuoteMeta must match the literal message)", len(kept), len(baselined), len(unused))
	}
}
