package life

import (
	"context"
	"sync"
)

type Broker struct {
	events chan int
	done   chan struct{}
	subs   chan string
	tasks  sync.WaitGroup
}

// Start's goroutine ranges over a field channel that Close below
// provably closes: ok.
func (b *Broker) Start() {
	go func() {
		for range b.events {
		}
		close(b.done)
	}()
}

// loop is launched by name; its receive on b.events still counts: ok.
func (b *Broker) StartNamed() {
	go b.loop()
}

func (b *Broker) loop() {
	for range b.events {
	}
}

// Close closes b.events through a local alias — identity resolution
// must see through `ch := b.events`.
func (b *Broker) Close() {
	ch := b.events
	close(ch)
	<-b.done
}

// StartWorker joins via a field WaitGroup that Drain waits on: ok.
func (b *Broker) StartWorker() {
	b.tasks.Add(1)
	go func() {
		defer b.tasks.Done()
		for range b.subs { // never closed, but the join is enough
		}
	}()
}

func (b *Broker) Drain() {
	b.tasks.Wait()
}

// Orphan loops on a channel nobody closes and joins nothing.
func (b *Broker) Orphan() {
	go func() { // want "not provably stopped"
		for range b.subs {
		}
	}()
}

// Ticker exits on context cancel: ok.
func Ticker(ctx context.Context, tick chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick:
			}
		}
	}()
}

// Spin loops forever with no signal at all.
func Spin() {
	go func() { // want "not provably stopped"
		n := 0
		for {
			n++
		}
	}()
}

// Straight runs to completion without loops or channel ops: ok.
func Straight(fn func()) {
	go func() {
		fn()
	}()
}

// LocalJoin captures a local WaitGroup that the caller waits on: ok.
func LocalJoin(parts []int) int {
	var wg sync.WaitGroup
	total := 0
	for range parts {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				total++ // data race, but not this analyzer's problem
			}
		}()
	}
	wg.Wait()
	return total
}

// Opaque launches a function value: nothing to inspect.
func Opaque(fn func()) {
	go fn() // want "not provably stopped"
}

// Allowed documents an externally bounded goroutine.
func Allowed(ch chan int) {
	// haystack:allow golifetime subscription channel is closed by the cancel func returned to the caller
	go func() {
		for range ch {
		}
	}()
}

// CondUser: sync.Cond.Wait must not be mistaken for WaitGroup
// evidence.
type CondUser struct {
	mu   sync.Mutex
	cond *sync.Cond
}

func (c *CondUser) Watch() {
	go func() { // want "not provably stopped"
		c.mu.Lock()
		for {
			c.cond.Wait()
		}
	}()
}
