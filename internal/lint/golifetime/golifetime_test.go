package golifetime_test

import (
	"testing"

	"repro/internal/lint/golifetime"
	"repro/internal/lint/linttest"
)

func TestGolifetime(t *testing.T) {
	linttest.Run(t, golifetime.Analyzer, "life")
}
