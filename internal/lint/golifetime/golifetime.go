// Package golifetime checks that every goroutine started outside
// test files has a provable stop path. A goroutine passes when its
// body (a function literal or a same-package function) shows one of:
//
//   - a receive from a context's Done channel;
//   - a receive or range over a channel that this package (or a
//     dependency, via facts) provably closes — matched by identity:
//     the owning struct field, a package-level var, or a local whose
//     definitions all alias such a channel;
//   - a sync.WaitGroup Done whose WaitGroup is Waited on — matched by
//     field, package var, or captured-variable identity;
//   - a straight-line body: no loops, selects, or channel operations,
//     so the goroutine terminates when its calls do.
//
// This is evidence checking, not a termination proof: the analyzer
// confirms the shutdown signal exists and is connected, and leaves
// "the signal fires" to the runtime tests. Goroutines whose lifetime
// is bounded externally carry `haystack:allow golifetime <why>`.
package golifetime

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint"
)

// Analyzer is the golifetime analyzer.
var Analyzer = &lint.Analyzer{
	Name:    "golifetime",
	Doc:     "every goroutine has a provable stop path (cancel, close, or join)",
	Collect: collect,
	Run:     run,
}

// evidence is the package-wide shutdown inventory: channels that get
// closed and WaitGroups that get waited, by identity.
type evidence struct {
	closedKeys map[string]bool
	closedObjs map[types.Object]bool
	waitKeys   map[string]bool
	waitObjs   map[types.Object]bool
}

func collect(pass *lint.Pass) {
	if pass.TypesInfo == nil {
		return // dependency package loaded without bodies/types
	}
	ev := gather(pass)
	for k := range ev.closedKeys {
		pass.ExportFact("closed:"+k, "1")
	}
	for k := range ev.waitKeys {
		pass.ExportFact("waited:"+k, "1")
	}
}

func run(pass *lint.Pass) error {
	ev := gather(pass)
	for _, key := range pass.FactKeys() {
		if k, ok := strings.CutPrefix(key, "closed:"); ok {
			ev.closedKeys[k] = true
		}
		if k, ok := strings.CutPrefix(key, "waited:"); ok {
			ev.waitKeys[k] = true
		}
	}

	// Map from function objects to their declarations, to resolve
	// `go s.loop()` bodies.
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls[pass.TypesInfo.Defs[fd.Name]] = fd
			}
		}
	}

	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := resolveBody(pass, decls, g.Call)
			if body != nil && hasStopEvidence(pass, ev, body) {
				return true
			}
			pass.Reportf(g.Pos(), "goroutine is not provably stopped: no context cancel, no receive on a package-closed channel, no joined WaitGroup in its body")
			return true
		})
	}
	return nil
}

// gather scans every non-test function body for close() calls and
// WaitGroup Waits, recording the identities they discharge.
func gather(pass *lint.Pass) *evidence {
	ev := &evidence{
		closedKeys: make(map[string]bool),
		closedObjs: make(map[types.Object]bool),
		waitKeys:   make(map[string]bool),
		waitObjs:   make(map[types.Object]bool),
	}
	info := pass.TypesInfo
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && len(call.Args) == 1 {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
					arg := ast.Unparen(call.Args[0])
					if key, ok := globalKey(info, arg); ok {
						ev.closedKeys[key] = true
					} else if obj := localObj(info, arg); obj != nil {
						ev.closedObjs[obj] = true
						// close(ch) where ch aliases a field: credit
						// the field too (the closeEvents pattern).
						for _, k := range aliasKeys(pass, obj) {
							ev.closedKeys[k] = true
						}
					}
				}
				return true
			}
			if recv, ok := syncMethod(info, call, "Wait", "sync.WaitGroup"); ok {
				if key, ok := globalKey(info, recv); ok {
					ev.waitKeys[key] = true
				} else if obj := localObj(info, recv); obj != nil {
					ev.waitObjs[obj] = true
				}
			}
			return true
		})
	}
	return ev
}

// hasStopEvidence scans a goroutine body (pruning nested go
// statements, which are their own goroutines) for any accepted stop
// path.
func hasStopEvidence(pass *lint.Pass, ev *evidence, body *ast.BlockStmt) bool {
	info := pass.TypesInfo
	found := false
	unbounded := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			// A nested goroutine is its own analysis unit: neither its
			// evidence nor its loops belong to this body.
			return false
		case *ast.ForStmt, *ast.SelectStmt:
			unbounded = true
		case *ast.RangeStmt:
			if ch, ok := info.Types[n.X]; ok {
				if _, isChan := ch.Type.Underlying().(*types.Chan); isChan {
					if chanMatches(pass, ev, n.X) {
						found = true
						return false
					}
				}
			}
			unbounded = true
		case *ast.SendStmt:
			unbounded = true
		case *ast.UnaryExpr:
			if n.Op != token.ARROW {
				return true
			}
			unbounded = true
			x := ast.Unparen(n.X)
			if call, ok := x.(*ast.CallExpr); ok {
				if _, ok := syncMethod(info, call, "Done", "context.Context"); ok {
					found = true // <-ctx.Done()
					return false
				}
				return true
			}
			if chanMatches(pass, ev, x) {
				found = true
				return false
			}
		case *ast.CallExpr:
			if recv, ok := syncMethod(info, n, "Done", "sync.WaitGroup"); ok && wgMatches(info, ev, recv) {
				found = true
				return false
			}
		}
		return true
	})
	return found || !unbounded
}

// chanMatches reports whether the channel denoted by e is provably
// closed: by identity, or through aliases of a closed identity.
func chanMatches(pass *lint.Pass, ev *evidence, e ast.Expr) bool {
	info := pass.TypesInfo
	if key, ok := globalKey(info, e); ok {
		return ev.closedKeys[key]
	}
	obj := localObj(info, e)
	if obj == nil {
		return false
	}
	if ev.closedObjs[obj] {
		return true
	}
	for _, k := range aliasKeys(pass, obj) {
		if ev.closedKeys[k] {
			return true
		}
	}
	return false
}

func wgMatches(info *types.Info, ev *evidence, recv ast.Expr) bool {
	if key, ok := globalKey(info, recv); ok {
		return ev.waitKeys[key]
	}
	if obj := localObj(info, recv); obj != nil {
		return ev.waitObjs[obj]
	}
	return false
}

// resolveBody returns the goroutine's body: the literal itself, or
// the declaration of a same-package function or method. Nil when the
// callee is a function value or lives in another package.
func resolveBody(pass *lint.Pass, decls map[types.Object]*ast.FuncDecl, call *ast.CallExpr) *ast.BlockStmt {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if fd := decls[pass.TypesInfo.Uses[fun]]; fd != nil {
			return fd.Body
		}
	case *ast.SelectorExpr:
		if fd := decls[pass.TypesInfo.Uses[fun.Sel]]; fd != nil {
			return fd.Body
		}
	}
	return nil
}

// aliasKeys returns the global identities assigned to obj anywhere in
// the package: for `ch := d.evCh`, the evCh field key.
func aliasKeys(pass *lint.Pass, obj types.Object) []string {
	info := pass.TypesInfo
	var keys []string
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || info.ObjectOf(id) != obj {
					continue
				}
				if key, ok := globalKey(info, ast.Unparen(as.Rhs[i])); ok {
					keys = append(keys, key)
				}
			}
			return true
		})
	}
	return keys
}

// syncMethod reports whether call invokes the named method on a
// receiver of exactly type typ (e.g. "sync.WaitGroup",
// "context.Context"), returning the receiver expression.
func syncMethod(info *types.Info, call *ast.CallExpr, name, typ string) (ast.Expr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return nil, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	if types.TypeString(rt, nil) != typ {
		return nil, false
	}
	return sel.X, true
}

// globalKey names a struct field ("pkgpath.Type.field") or a
// package-level var ("pkgpath.name").
func globalKey(info *types.Info, e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			recv := sel.Recv()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			if named, ok := recv.(*types.Named); ok {
				obj := named.Obj()
				if obj.Pkg() != nil {
					return obj.Pkg().Path() + "." + obj.Name() + "." + e.Sel.Name, true
				}
			}
			return "", false
		}
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && isPackageLevel(v) {
			return v.Pkg().Path() + "." + v.Name(), true
		}
	case *ast.Ident:
		if v, ok := info.ObjectOf(e).(*types.Var); ok && isPackageLevel(v) {
			return v.Pkg().Path() + "." + v.Name(), true
		}
	}
	return "", false
}

// localObj returns the variable object behind a plain identifier (a
// local or captured channel/WaitGroup), or nil.
func localObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := info.ObjectOf(id).(*types.Var); ok {
		return v
	}
	return nil
}

func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

func isTestFile(pass *lint.Pass, f *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
}
