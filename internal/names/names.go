// Package names provides domain-name utilities used by the detection
// methodology: normalization, label handling, and second-level-domain
// (SLD) extraction.
//
// The paper's dedicated-infrastructure test (§4.2.1) hinges on the SLD:
// a service IP is "exclusively used" if every domain it serves shares a
// single second-level domain (or is reachable from it via CNAMEs). We
// implement SLD extraction against a small embedded public-suffix set
// sufficient for the simulated world plus the common real suffixes that
// appear in the paper's examples.
package names

import (
	"fmt"
	"strings"
)

// publicSuffixes holds effective TLDs under which registrations happen.
// Multi-label suffixes are listed explicitly; all single labels are
// treated as public suffixes by default.
var publicSuffixes = map[string]bool{
	"co.uk":  true,
	"com.cn": true,
	"com.au": true,
	"co.jp":  true,
	// Cloud-provider zones whose direct children are tenant
	// registrations, mirroring *.amazonaws.com style delegation.
	"ec2compute.simcloud.example": true,
	"cdn.simakamai.example":       true,
	"iotcloud.simaws.example":     true,
}

// Normalize lowercases a domain and strips any trailing dot. It does not
// validate; use Valid for that.
func Normalize(domain string) string {
	domain = strings.TrimSuffix(strings.ToLower(strings.TrimSpace(domain)), ".")
	return domain
}

// Valid reports whether the domain is a plausible FQDN: non-empty
// letters/digits/hyphen labels of length 1–63, at least two labels,
// total length <= 253.
func Valid(domain string) bool {
	domain = Normalize(domain)
	if len(domain) == 0 || len(domain) > 253 {
		return false
	}
	labels := strings.Split(domain, ".")
	if len(labels) < 2 {
		return false
	}
	for li, l := range labels {
		if len(l) == 0 || len(l) > 63 {
			return false
		}
		if l == "*" {
			// A wildcard is only legal as the leftmost label.
			if li != 0 {
				return false
			}
			continue
		}
		if l[0] == '-' || l[len(l)-1] == '-' {
			return false
		}
		for i := 0; i < len(l); i++ {
			c := l[i]
			switch {
			case c >= 'a' && c <= 'z':
			case c >= '0' && c <= '9':
			case c == '-':
			case c == '_': // seen in the wild for service labels
			default:
				return false
			}
		}
	}
	return true
}

// SLD returns the second-level domain of fqdn: the registrable domain
// one label below the public suffix (e.g. "a.b.example.com" →
// "example.com", "x.devA.ec2compute.simcloud.example" →
// "devA.ec2compute.simcloud.example"). It returns "" if fqdn has no
// registrable part.
func SLD(fqdn string) string {
	fqdn = Normalize(fqdn)
	labels := strings.Split(fqdn, ".")
	if len(labels) < 2 {
		return ""
	}
	// Find the longest public suffix that is a proper suffix of fqdn.
	suffixLen := 1 // default: the TLD alone is public
	for i := 0; i < len(labels); i++ {
		cand := strings.Join(labels[i:], ".")
		if publicSuffixes[cand] {
			suffixLen = len(labels) - i
			break
		}
	}
	if len(labels) <= suffixLen {
		return "" // the name is itself a public suffix
	}
	return strings.Join(labels[len(labels)-suffixLen-1:], ".")
}

// SameSLD reports whether two FQDNs share a registrable domain.
func SameSLD(a, b string) bool {
	sa, sb := SLD(a), SLD(b)
	return sa != "" && sa == sb
}

// IsSubdomainOf reports whether child equals parent or lies underneath it.
func IsSubdomainOf(child, parent string) bool {
	child, parent = Normalize(child), Normalize(parent)
	if child == parent {
		return true
	}
	return strings.HasSuffix(child, "."+parent)
}

// MatchesPattern reports whether fqdn matches a name pattern that may
// carry a single leading wildcard label ("*.devE.example" matches
// "c.devE.example" and "a.b.devE.example" but not "devE.example").
// Patterns without a wildcard match exactly.
func MatchesPattern(pattern, fqdn string) bool {
	pattern, fqdn = Normalize(pattern), Normalize(fqdn)
	if rest, ok := strings.CutPrefix(pattern, "*."); ok {
		return IsSubdomainOf(fqdn, rest) && fqdn != rest
	}
	return pattern == fqdn
}

// Join concatenates labels into an FQDN, skipping empties.
func Join(labels ...string) string {
	parts := labels[:0:0]
	for _, l := range labels {
		if l != "" {
			parts = append(parts, l)
		}
	}
	return Normalize(strings.Join(parts, "."))
}

// Sub returns "<label>.<domain>", validating the result.
func Sub(label, domain string) (string, error) {
	d := Join(label, domain)
	if !Valid(d) {
		return "", fmt.Errorf("names: invalid domain %q", d)
	}
	return d, nil
}
