package names

import (
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	cases := map[string]string{
		"Example.COM.":   "example.com",
		"  a.b.c ":       "a.b.c",
		"already.fine":   "already.fine",
		"TRAILING.DOT.":  "trailing.dot",
		"MiXeD.ExAmPlE.": "mixed.example",
	}
	for in, want := range cases {
		if got := Normalize(in); got != want {
			t.Errorf("Normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	f := func(s string) bool {
		n := Normalize(s)
		return Normalize(n) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValid(t *testing.T) {
	valid := []string{
		"example.com", "a.b.c.example", "avs-alexa.simamazon.example",
		"xn--test.example", "a_b.example", "*.deve.example",
	}
	for _, d := range valid {
		if !Valid(d) {
			t.Errorf("Valid(%q) = false, want true", d)
		}
	}
	invalid := []string{
		"", "nodots", "-bad.example", "bad-.example", "sp ace.example",
		"double..dot.example", "under*.example", "a.*" + ".example",
	}
	for _, d := range invalid {
		if Valid(d) {
			t.Errorf("Valid(%q) = true, want false", d)
		}
	}
}

func TestValidLongLabel(t *testing.T) {
	long := make([]byte, 64)
	for i := range long {
		long[i] = 'a'
	}
	if Valid(string(long) + ".example") {
		t.Error("64-char label accepted")
	}
	if !Valid(string(long[:63]) + ".example") {
		t.Error("63-char label rejected")
	}
}

func TestSLD(t *testing.T) {
	cases := map[string]string{
		"example.com":                         "example.com",
		"a.b.example.com":                     "example.com",
		"www.bbc.co.uk":                       "bbc.co.uk",
		"bbc.co.uk":                           "bbc.co.uk",
		"co.uk":                               "",
		"com":                                 "",
		"deva-vm.ec2compute.simcloud.example": "deva-vm.ec2compute.simcloud.example",
		"x.devb.cdn.simakamai.example":        "devb.cdn.simakamai.example",
		"avs-alexa.na.simamazon.example":      "simamazon.example",
		"api.simring.example":                 "simring.example",
		"ec2compute.simcloud.example":         "",
	}
	for in, want := range cases {
		if got := SLD(in); got != want {
			t.Errorf("SLD(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSLDIdempotentOnItself(t *testing.T) {
	for _, d := range []string{"a.b.example.com", "x.y.z.simxiaomi.example", "w.bbc.co.uk"} {
		s := SLD(d)
		if s == "" {
			t.Fatalf("SLD(%q) empty", d)
		}
		if got := SLD(s); got != s {
			t.Errorf("SLD(SLD(%q)) = %q, want %q", d, got, s)
		}
	}
}

func TestSameSLD(t *testing.T) {
	if !SameSLD("a.example.com", "b.c.example.com") {
		t.Error("same SLD not detected")
	}
	if SameSLD("a.example.com", "a.example.org") {
		t.Error("different TLD matched")
	}
	if SameSLD("com", "com") {
		t.Error("bare public suffix matched")
	}
}

func TestIsSubdomainOf(t *testing.T) {
	if !IsSubdomainOf("a.b.example.com", "example.com") {
		t.Error("subdomain not detected")
	}
	if !IsSubdomainOf("example.com", "example.com") {
		t.Error("self not detected")
	}
	if IsSubdomainOf("badexample.com", "example.com") {
		t.Error("suffix-in-label false positive")
	}
	if IsSubdomainOf("example.com", "a.example.com") {
		t.Error("parent claimed as subdomain of child")
	}
}

func TestMatchesPattern(t *testing.T) {
	cases := []struct {
		pattern, fqdn string
		want          bool
	}{
		{"*.deve.example", "c.deve.example", true},
		{"*.deve.example", "a.b.deve.example", true},
		{"*.deve.example", "deve.example", false},
		{"c.deve.example", "c.deve.example", true},
		{"c.deve.example", "x.deve.example", false},
		{"*.deve.example", "deve.example.evil.example", false},
	}
	for _, c := range cases {
		if got := MatchesPattern(c.pattern, c.fqdn); got != c.want {
			t.Errorf("MatchesPattern(%q, %q) = %v, want %v", c.pattern, c.fqdn, got, c.want)
		}
	}
}

func TestJoinAndSub(t *testing.T) {
	if got := Join("api", "simring.example"); got != "api.simring.example" {
		t.Fatalf("Join = %q", got)
	}
	if got := Join("", "x.example"); got != "x.example" {
		t.Fatalf("Join with empty label = %q", got)
	}
	d, err := Sub("ota", "simsamsung.example")
	if err != nil || d != "ota.simsamsung.example" {
		t.Fatalf("Sub = %q, %v", d, err)
	}
	if _, err := Sub("bad label", "x.example"); err == nil {
		t.Fatal("Sub accepted invalid label")
	}
}

func TestSLDOfSubdomainMatchesParent(t *testing.T) {
	// Property: for valid two-label-or-more domains under .example,
	// prefixing labels never changes the SLD.
	base := "simtplink.example"
	for _, pre := range []string{"a", "a.b", "deep.er.still"} {
		d := pre + "." + base
		if SLD(d) != base {
			t.Errorf("SLD(%q) = %q, want %q", d, SLD(d), base)
		}
	}
}
