package world

import (
	"testing"

	"repro/internal/simtime"
)

func TestBuildSucceeds(t *testing.T) {
	w := MustBuild(1)
	if len(w.Catalog.Domains) != 524 {
		t.Fatalf("domains = %d", len(w.Catalog.Domains))
	}
	if w.PDNS.Len() == 0 {
		t.Fatal("passive DNS empty")
	}
	if w.Scans.Len() == 0 {
		t.Fatal("scan dataset empty")
	}
}

func TestEveryCoveredDomainResolvesDaily(t *testing.T) {
	w := MustBuild(1)
	for _, day := range w.Window.Days() {
		r := w.ResolverOn(day)
		for name := range w.Catalog.Domains {
			if len(r.Resolve(name)) == 0 {
				t.Fatalf("domain %s does not resolve on %s", name, day)
			}
		}
	}
}

func TestUncoveredDomainsAbsentFromPDNS(t *testing.T) {
	w := MustBuild(1)
	days := w.Window.Days()
	a, b := days[0], days[len(days)-1]
	for name, d := range w.Catalog.Domains {
		ips := w.PDNS.ResolveA(name, a, b)
		if d.PDNSCovered && len(ips) == 0 {
			t.Errorf("covered domain %s missing from passive DNS", name)
		}
		if !d.PDNSCovered && len(ips) != 0 {
			t.Errorf("uncovered domain %s present in passive DNS", name)
		}
	}
}

func TestChurnChangesMappings(t *testing.T) {
	w := MustBuild(1)
	days := w.Window.Days()
	changed := 0
	for name := range w.Catalog.Domains {
		first := w.ResolverOn(days[0]).Resolve(name)
		last := w.ResolverOn(days[len(days)-1]).Resolve(name)
		if len(first) != len(last) {
			changed++
			continue
		}
		for i := range first {
			if first[i] != last[i] {
				changed++
				break
			}
		}
	}
	if changed < 100 {
		t.Fatalf("only %d/524 domains churned over two weeks; churn model inert", changed)
	}
}

func TestIPsOfSupersetOfDaily(t *testing.T) {
	w := MustBuild(1)
	day := w.Window.Days()[3]
	for _, name := range []string{"avs-alexa.simamazon.example", "ota.simsamsung.example"} {
		all := map[string]bool{}
		for _, ip := range w.IPsOf(name) {
			all[ip.String()] = true
		}
		for _, ip := range w.ResolverOn(day).Resolve(name) {
			if !all[ip.String()] {
				t.Errorf("daily IP %v of %s missing from window union", ip, name)
			}
		}
	}
}

func TestResolverClamping(t *testing.T) {
	w := MustBuild(1)
	days := w.Window.Days()
	early := w.ResolverOn(days[0] - 100)
	if early.Day() != days[0] {
		t.Fatalf("early resolver day = %v", early.Day())
	}
	late := w.ResolverOn(days[len(days)-1] + 100)
	if late.Day() != days[len(days)-1] {
		t.Fatalf("late resolver day = %v", late.Day())
	}
}

func TestWorldDeterministic(t *testing.T) {
	w1, w2 := MustBuild(7), MustBuild(7)
	day := w1.Window.Days()[5]
	r1, r2 := w1.ResolverOn(day), w2.ResolverOn(day)
	for name := range w1.Catalog.Domains {
		a, b := r1.Resolve(name), r2.Resolve(name)
		if len(a) != len(b) {
			t.Fatalf("nondeterministic pool size for %s", name)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("nondeterministic address for %s: %v vs %v", name, a[i], b[i])
			}
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	w1, w2 := MustBuild(1), MustBuild(2)
	day := w1.Window.Days()[0]
	same := 0
	total := 0
	r1, r2 := w1.ResolverOn(day), w2.ResolverOn(day)
	for name := range w1.Catalog.Domains {
		a, b := r1.Resolve(name), r2.Resolve(name)
		total++
		if len(a) > 0 && len(b) > 0 && a[0] == b[0] {
			same++
		}
	}
	// Dedicated pools allocate sequentially per provider, so some
	// overlap is expected, but shared pools and churn must differ.
	if same == total {
		t.Fatal("different seeds produced identical worlds")
	}
}

func TestWindowIsWildWindow(t *testing.T) {
	w := MustBuild(1)
	if w.Window != simtime.WildWindow {
		t.Fatalf("window = %v", w.Window)
	}
}
