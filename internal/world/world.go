// Package world assembles the full simulated environment: the catalog's
// testbed, the hosting infrastructure, and the external datasets
// (passive DNS and certificate scans), advanced day by day through the
// study window with DNS churn.
//
// A World is a pure function of its seed: building twice with the same
// seed yields byte-identical state, which is what makes every
// experiment in this repository reproducible.
package world

import (
	"fmt"
	"net/netip"

	"repro/internal/catalog"
	"repro/internal/certscan"
	"repro/internal/hosting"
	"repro/internal/pdns"
	"repro/internal/simrand"
	"repro/internal/simtime"
)

// World is the assembled simulation environment.
type World struct {
	Catalog *catalog.Catalog
	Infra   *hosting.Infra
	PDNS    *pdns.DB
	Scans   *certscan.DB
	Window  simtime.Window
	RNG     *simrand.RNG

	// dayIPs snapshots domain→addresses per day, so traffic for any
	// day resolves against the DNS state of that day even though the
	// infrastructure has churned since.
	dayIPs map[simtime.Day]map[string][]netip.Addr
}

// Build constructs the world for the study window, observing the DNS
// state of every day into the passive-DNS database and sweeping the
// certificate scanner daily.
func Build(seed uint64) (*World, error) {
	rng := simrand.New(seed)
	cat := catalog.Build()
	infra := hosting.New(rng, hosting.DefaultConfig())

	for _, ps := range cat.Providers {
		if _, err := infra.AddProvider(ps.Name, ps.Kind, ps.ASN, ps.CIDR, ps.Zone); err != nil {
			return nil, fmt.Errorf("world: %w", err)
		}
	}
	for _, shared := range []string{"simakamai", "simweb"} {
		if err := infra.AddCDNBackground(shared); err != nil {
			return nil, fmt.Errorf("world: %w", err)
		}
	}

	db := pdns.New()
	scans := certscan.New()
	w := &World{
		Catalog: cat, Infra: infra, PDNS: db, Scans: scans,
		Window: simtime.WildWindow, RNG: rng,
		dayIPs: make(map[simtime.Day]map[string][]netip.Addr),
	}

	for _, name := range cat.DomainNames() {
		d := cat.Domains[name]
		a, err := infra.Host(d.Name, d.Provider, d.PoolSize, d.HTTPS)
		if err != nil {
			return nil, fmt.Errorf("world: hosting %s: %w", d.Name, err)
		}
		if !d.PDNSCovered {
			db.SetUncovered(d.Name)
			if a.CNAME != "" {
				db.SetUncovered(a.CNAME)
			}
		}
	}

	for _, day := range w.Window.Days() {
		infra.ObserveInto(db, day)
		infra.ScanInto(scans)
		snap := make(map[string][]netip.Addr, len(cat.Domains))
		for _, name := range cat.DomainNames() {
			snap[name] = infra.Resolve(name)
		}
		w.dayIPs[day] = snap
		infra.StepDay()
	}
	return w, nil
}

// MustBuild is Build for tests and examples with static inputs.
func MustBuild(seed uint64) *World {
	w, err := Build(seed)
	if err != nil {
		panic(err)
	}
	return w
}

// ResolverOn returns the DNS view of the given day (the address set a
// device connecting on that day would use). Days outside the window
// clamp to its edges.
func (w *World) ResolverOn(day simtime.Day) DayResolver {
	days := w.Window.Days()
	if day < days[0] {
		day = days[0]
	}
	if day > days[len(days)-1] {
		day = days[len(days)-1]
	}
	return DayResolver{w: w, day: day}
}

// DayResolver resolves domains against one day's snapshot; it
// implements traffic.Resolver.
type DayResolver struct {
	w   *World
	day simtime.Day
}

// Resolve returns the domain's addresses on the resolver's day.
func (r DayResolver) Resolve(domain string) []netip.Addr {
	return r.w.dayIPs[r.day][domain]
}

// Day returns the snapshot day.
func (r DayResolver) Day() simtime.Day { return r.day }

// IPsOf returns every address the domain held across the whole window
// (the union the daily hitlists draw from).
func (w *World) IPsOf(domain string) []netip.Addr {
	seen := map[netip.Addr]bool{}
	var out []netip.Addr
	for _, day := range w.Window.Days() {
		for _, ip := range w.dayIPs[day][domain] {
			if !seen[ip] {
				seen[ip] = true
				out = append(out, ip)
			}
		}
	}
	return out
}
