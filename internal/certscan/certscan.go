// Package certscan implements an internet-wide TLS-scan dataset in the
// style of Censys, the fallback data source of §4.2.2: when passive DNS
// has no record for a domain, the methodology finds the domain's
// service IPs by matching the certificate (and HTTPS banner checksum)
// presented by scanned hosts.
//
// The §4.2.2 matching rule is implemented verbatim: a certificate is
// associated with a domain iff one of its names matches the domain at
// the SLD or deeper (exact or single-wildcard), and the certificate
// carries no other subject alternative name.
package certscan

import (
	"crypto/sha256"
	"encoding/hex"
	"net/netip"
	"sort"
	"strings"

	"repro/internal/names"
)

// Certificate is a scanned X.509 leaf reduced to the fields the
// methodology reads: the subject names and a fingerprint.
type Certificate struct {
	// Names holds the subject common name plus all SANs.
	Names []string
	// Fingerprint is the hex SHA-256 of the (simulated) DER encoding.
	Fingerprint string
}

// NewCertificate builds a certificate over the given names with a
// deterministic fingerprint.
func NewCertificate(certNames ...string) *Certificate {
	normalized := make([]string, len(certNames))
	for i, n := range certNames {
		normalized[i] = names.Normalize(n)
	}
	sort.Strings(normalized)
	sum := sha256.Sum256([]byte(strings.Join(normalized, "\n")))
	return &Certificate{Names: normalized, Fingerprint: hex.EncodeToString(sum[:])}
}

// MatchesDomain implements the §4.2.2 association rule for domain:
// some name matches at SLD or deeper, and there is no other SAN.
func (c *Certificate) MatchesDomain(domain string) bool {
	domain = names.Normalize(domain)
	sld := names.SLD(domain)
	if sld == "" {
		return false
	}
	matched := false
	for _, n := range c.Names {
		ok := names.MatchesPattern(n, domain) || names.Normalize(n) == domain
		if !ok {
			// A name like "*.devE.com" also covers the bare domain
			// query "c.devE.com"; anything not under the same SLD is
			// a foreign SAN and disqualifies the certificate.
			if !names.SameSLD(n, domain) && strings.TrimPrefix(n, "*.") != sld {
				return false
			}
			continue
		}
		matched = true
	}
	return matched
}

// Host is one scanned endpoint: an IP/port presenting a certificate and
// an HTTPS banner with a stable checksum.
type Host struct {
	IP             netip.Addr
	Port           uint16
	Cert           *Certificate
	BannerChecksum uint64
}

// DB is the scan dataset. The zero value is not usable; use New.
type DB struct {
	hosts  []Host
	byFP   map[string][]int // fingerprint -> host indices
	byAddr map[netip.Addr][]int
	seen   map[hostKey]bool
}

type hostKey struct {
	ip     netip.Addr
	port   uint16
	fp     string
	banner uint64
}

// New returns an empty scan dataset.
func New() *DB {
	return &DB{
		byFP:   make(map[string][]int),
		byAddr: make(map[netip.Addr][]int),
		seen:   make(map[hostKey]bool),
	}
}

// AddHost records a scanned endpoint. Re-scanning an identical endpoint
// (same address, port, certificate and banner) is a no-op, so periodic
// scan sweeps can be replayed into the same dataset.
func (db *DB) AddHost(h Host) {
	k := hostKey{ip: h.IP, port: h.Port, banner: h.BannerChecksum}
	if h.Cert != nil {
		k.fp = h.Cert.Fingerprint
	}
	if db.seen[k] {
		return
	}
	db.seen[k] = true
	idx := len(db.hosts)
	db.hosts = append(db.hosts, h)
	if h.Cert != nil {
		db.byFP[h.Cert.Fingerprint] = append(db.byFP[h.Cert.Fingerprint], idx)
	}
	db.byAddr[h.IP] = append(db.byAddr[h.IP], idx)
}

// Len returns the number of scanned endpoints.
func (db *DB) Len() int { return len(db.hosts) }

// HostsAt returns the endpoints scanned at ip.
func (db *DB) HostsAt(ip netip.Addr) []Host {
	idxs := db.byAddr[ip]
	out := make([]Host, len(idxs))
	for i, idx := range idxs {
		out[i] = db.hosts[idx]
	}
	return out
}

// IPsWithFingerprint returns all IPs presenting the certificate with
// the given fingerprint, sorted.
func (db *DB) IPsWithFingerprint(fp string) []netip.Addr {
	var out []netip.Addr
	for _, idx := range db.byFP[fp] {
		out = append(out, db.hosts[idx].IP)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return dedup(out)
}

// ServiceIPsForDomain implements the §4.2.2 lookup: find any host whose
// certificate matches domain, then return every IP presenting the same
// certificate fingerprint *and* the same HTTPS banner checksum. The
// boolean reports whether any matching certificate was found at all —
// a domain that does not use HTTPS yields (nil, false), which is how
// devices drop out with "could not identify sufficient information".
func (db *DB) ServiceIPsForDomain(domain string) ([]netip.Addr, bool) {
	type key struct {
		fp     string
		banner uint64
	}
	seeds := map[key]bool{}
	for _, h := range db.hosts {
		if h.Cert != nil && h.Cert.MatchesDomain(domain) {
			seeds[key{h.Cert.Fingerprint, h.BannerChecksum}] = true
		}
	}
	if len(seeds) == 0 {
		return nil, false
	}
	var out []netip.Addr
	for _, h := range db.hosts {
		if h.Cert == nil {
			continue
		}
		if seeds[key{h.Cert.Fingerprint, h.BannerChecksum}] {
			out = append(out, h.IP)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return dedup(out), true
}

func dedup(in []netip.Addr) []netip.Addr {
	out := in[:0]
	for i, v := range in {
		if i == 0 || v != in[i-1] {
			out = append(out, v)
		}
	}
	return out
}
