package certscan

import (
	"net/netip"
	"testing"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

func TestCertificateFingerprintDeterministic(t *testing.T) {
	a := NewCertificate("c.deve.example", "*.deve.example")
	b := NewCertificate("*.DEVE.example", "c.deve.example") // order/case-insensitive
	if a.Fingerprint != b.Fingerprint {
		t.Fatal("fingerprint depends on name order or case")
	}
	c := NewCertificate("c.deve.example")
	if a.Fingerprint == c.Fingerprint {
		t.Fatal("different name sets share a fingerprint")
	}
}

func TestMatchesDomain(t *testing.T) {
	cases := []struct {
		names  []string
		domain string
		want   bool
	}{
		// Paper example: Name matches c.devE.com or *.devE.com, no other SAN.
		{[]string{"c.deve.example"}, "c.deve.example", true},
		{[]string{"*.deve.example"}, "c.deve.example", true},
		{[]string{"*.deve.example", "deve.example"}, "c.deve.example", true},
		// Foreign SAN disqualifies.
		{[]string{"*.deve.example", "cdn.simakamai.example"}, "c.deve.example", false},
		{[]string{"othersite.example"}, "c.deve.example", false},
		// Shared CDN certificate with many tenant SANs.
		{[]string{"*.cdnshared.example", "tenant1.example", "tenant2.example"}, "tenant1.example", false},
	}
	for _, c := range cases {
		cert := NewCertificate(c.names...)
		if got := cert.MatchesDomain(c.domain); got != c.want {
			t.Errorf("MatchesDomain(%v, %q) = %v, want %v", c.names, c.domain, got, c.want)
		}
	}
}

func TestServiceIPsForDomain(t *testing.T) {
	db := New()
	cert := NewCertificate("*.deve.example")
	// Three IPs present the same cert+banner; one IP presents the same
	// cert with a different banner (e.g. a different service tier) and
	// must still be counted only when its banner matches a seed.
	for i, ip := range []string{"185.5.0.1", "185.5.0.2", "185.5.0.3"} {
		_ = i
		db.AddHost(Host{IP: addr(ip), Port: 443, Cert: cert, BannerChecksum: 777})
	}
	db.AddHost(Host{IP: addr("185.5.0.9"), Port: 443, Cert: cert, BannerChecksum: 888})
	// Unrelated host.
	db.AddHost(Host{IP: addr("185.6.0.1"), Port: 443, Cert: NewCertificate("x.other.example"), BannerChecksum: 777})

	ips, ok := db.ServiceIPsForDomain("c.deve.example")
	if !ok {
		t.Fatal("no match found")
	}
	// Both banner variants seed (both hosts match the domain), so all
	// four deve IPs are returned, but never the unrelated one.
	want := map[string]bool{"185.5.0.1": true, "185.5.0.2": true, "185.5.0.3": true, "185.5.0.9": true}
	if len(ips) != len(want) {
		t.Fatalf("got %v", ips)
	}
	for _, ip := range ips {
		if !want[ip.String()] {
			t.Fatalf("unexpected IP %v", ip)
		}
	}
}

func TestServiceIPsForDomainNoHTTPS(t *testing.T) {
	db := New()
	db.AddHost(Host{IP: addr("185.5.0.1"), Port: 443, Cert: NewCertificate("a.example")})
	ips, ok := db.ServiceIPsForDomain("plaintext.devf.example")
	if ok || ips != nil {
		t.Fatal("domain without HTTPS matched")
	}
}

func TestBannerChecksumSeparatesTenants(t *testing.T) {
	// Two tenants of a hosting provider present certificates with the
	// same wildcard name (misissued/shared cert) but different banners;
	// only same-banner IPs group together.
	db := New()
	shared := NewCertificate("*.sharedhost.example")
	db.AddHost(Host{IP: addr("185.5.1.1"), Port: 443, Cert: shared, BannerChecksum: 1})
	db.AddHost(Host{IP: addr("185.5.1.2"), Port: 443, Cert: shared, BannerChecksum: 2})
	// Query can't disambiguate: both banners seed. This documents the
	// behaviour; the dedicated-infra pipeline applies the pdns test
	// afterwards, so over-approximation here is safe.
	ips, ok := db.ServiceIPsForDomain("a.sharedhost.example")
	if !ok || len(ips) != 2 {
		t.Fatalf("ips = %v ok = %v", ips, ok)
	}
}

func TestHostsAtAndLen(t *testing.T) {
	db := New()
	ip := addr("185.5.0.1")
	db.AddHost(Host{IP: ip, Port: 443, Cert: NewCertificate("a.example"), BannerChecksum: 5})
	db.AddHost(Host{IP: ip, Port: 8443, Cert: NewCertificate("b.example"), BannerChecksum: 6})
	if db.Len() != 2 {
		t.Fatalf("Len = %d", db.Len())
	}
	hosts := db.HostsAt(ip)
	if len(hosts) != 2 {
		t.Fatalf("HostsAt = %d", len(hosts))
	}
}

func TestIPsWithFingerprint(t *testing.T) {
	db := New()
	cert := NewCertificate("fw.simblink.example")
	db.AddHost(Host{IP: addr("185.4.0.2"), Port: 443, Cert: cert})
	db.AddHost(Host{IP: addr("185.4.0.1"), Port: 443, Cert: cert})
	db.AddHost(Host{IP: addr("185.4.0.1"), Port: 8443, Cert: cert}) // dup IP
	ips := db.IPsWithFingerprint(cert.Fingerprint)
	if len(ips) != 2 || ips[0] != addr("185.4.0.1") || ips[1] != addr("185.4.0.2") {
		t.Fatalf("ips = %v", ips)
	}
	if got := db.IPsWithFingerprint("nope"); len(got) != 0 {
		t.Fatalf("unknown fingerprint returned %v", got)
	}
}
