// Package dedicated implements the §4.2 pipeline of Figure 7: deciding,
// for each IoT-specific domain, whether its backend runs on dedicated
// or shared infrastructure.
//
// The decision uses two data sources in sequence:
//
//  1. passive DNS (§4.2.1): expand the domain to all service IPs seen
//     during the study window, then require every IP to be exclusively
//     used — serving names of a single registrable domain, following
//     CNAME chains — for the whole window;
//  2. certificate scans (§4.2.2): for domains absent from passive DNS,
//     find IPs presenting a certificate whose names match the domain at
//     SLD-or-deeper with no foreign SAN, tied together by the HTTPS
//     banner checksum.
//
// Domains failing both are NoRecord; devices left without enough usable
// domains are excluded (§4.2.3).
package dedicated

import (
	"net/netip"

	"repro/internal/certscan"
	"repro/internal/names"
	"repro/internal/pdns"
	"repro/internal/simtime"
)

// Verdict is the pipeline outcome for one domain.
type Verdict uint8

// Verdicts.
const (
	// VerdictDedicated: every service IP is exclusive to the domain's
	// SLD — usable for flow-level detection.
	VerdictDedicated Verdict = iota + 1
	// VerdictShared: at least one service IP serves unrelated parties.
	VerdictShared
	// VerdictNoRecord: neither data source could place the domain.
	VerdictNoRecord
)

// String returns the verdict name.
func (v Verdict) String() string {
	switch v {
	case VerdictDedicated:
		return "dedicated"
	case VerdictShared:
		return "shared"
	case VerdictNoRecord:
		return "no-record"
	}
	return "verdict(?)"
}

// Result is the classification of one domain.
type Result struct {
	Domain  string
	Verdict Verdict
	// ViaCensys marks dedicated verdicts reached through the
	// certificate-scan fallback.
	ViaCensys bool
	// IPs are the service addresses attributed to the domain over the
	// window (from passive DNS, or from the scan dataset when
	// ViaCensys).
	IPs []netip.Addr
}

// Pipeline classifies domains against the two data sources.
type Pipeline struct {
	PDNS  *pdns.DB
	Scans *certscan.DB
	// Window is the study period the §4.2.1 exclusivity test covers.
	From, To simtime.Day
}

// New returns a pipeline over the given window.
func New(db *pdns.DB, scans *certscan.DB, from, to simtime.Day) *Pipeline {
	return &Pipeline{PDNS: db, Scans: scans, From: from, To: to}
}

// Classify runs the Figure 7 decision for one domain.
func (p *Pipeline) Classify(domain string) Result {
	domain = names.Normalize(domain)
	res := Result{Domain: domain}

	ips := p.PDNS.ResolveA(domain, p.From, p.To)
	if len(ips) == 0 {
		// §4.2.2 fallback: certificate match.
		scanIPs, ok := p.Scans.ServiceIPsForDomain(domain)
		if !ok || len(scanIPs) == 0 {
			res.Verdict = VerdictNoRecord
			return res
		}
		res.Verdict = VerdictDedicated
		res.ViaCensys = true
		res.IPs = scanIPs
		return res
	}

	want := names.SLD(domain)
	for _, ip := range ips {
		exclusive, sld := p.PDNS.ExclusiveIP(ip, p.From, p.To)
		if !exclusive || sld != want {
			res.Verdict = VerdictShared
			res.IPs = ips
			return res
		}
	}
	res.Verdict = VerdictDedicated
	res.IPs = ips
	return res
}

// Census aggregates pipeline results over a domain set.
type Census struct {
	Results map[string]Result
	// Order preserves the input order for deterministic reports.
	Order []string
}

// ClassifyAll classifies every domain.
func (p *Pipeline) ClassifyAll(domains []string) *Census {
	c := &Census{Results: make(map[string]Result, len(domains))}
	for _, d := range domains {
		d = names.Normalize(d)
		if _, dup := c.Results[d]; dup {
			continue
		}
		c.Results[d] = p.Classify(d)
		c.Order = append(c.Order, d)
	}
	return c
}

// Counts returns (#dedicated-via-pdns, #shared, #no-record,
// #dedicated-via-censys). The paper's §4.2 numbers are (217, 202, 7, 8)
// after the Censys step: 15 domains had no DNSDB record, 8 of which the
// certificate fallback recovered.
func (c *Census) Counts() (dedicated, shared, noRecord, viaCensys int) {
	for _, r := range c.Results {
		switch r.Verdict {
		case VerdictDedicated:
			if r.ViaCensys {
				viaCensys++
			} else {
				dedicated++
			}
		case VerdictShared:
			shared++
		default:
			noRecord++
		}
	}
	return dedicated, shared, noRecord, viaCensys
}

// Usable reports whether a domain ended up usable for detection.
func (c *Census) Usable(domain string) bool {
	r, ok := c.Results[names.Normalize(domain)]
	return ok && r.Verdict == VerdictDedicated
}

// UsableDomains returns the dedicated domains in input order.
func (c *Census) UsableDomains() []string {
	var out []string
	for _, d := range c.Order {
		if c.Results[d].Verdict == VerdictDedicated {
			out = append(out, d)
		}
	}
	return out
}
