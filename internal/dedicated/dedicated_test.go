package dedicated

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/classify"
	"repro/internal/world"
)

func pipelineOver(w *world.World) *Pipeline {
	days := w.Window.Days()
	return New(w.PDNS, w.Scans, days[0], days[len(days)-1])
}

func TestPaperCounts(t *testing.T) {
	// §4.2: of 434 IoT-specific domains, 217 dedicated via passive
	// DNS, 202 shared, 15 without records of which 8 recovered via
	// certificate scans (leaving 7 no-record).
	w := world.MustBuild(1)
	p := pipelineOver(w)
	iot := classify.DefaultKB().ClassifyAll(w.Catalog.DomainNames()).IoTSpecific()
	if len(iot) != 434 {
		t.Fatalf("IoT-specific input = %d, want 434", len(iot))
	}
	census := p.ClassifyAll(iot)
	ded, shared, noRec, viaCensys := census.Counts()
	if ded != 217 {
		t.Errorf("dedicated via pdns = %d, want 217", ded)
	}
	if shared != 202 {
		t.Errorf("shared = %d, want 202", shared)
	}
	if viaCensys != 8 {
		t.Errorf("recovered via censys = %d, want 8", viaCensys)
	}
	if noRec != 7 {
		t.Errorf("remaining no-record = %d, want 7", noRec)
	}
}

func TestVerdictsMatchHostingGroundTruth(t *testing.T) {
	w := world.MustBuild(2)
	p := pipelineOver(w)
	for name, d := range w.Catalog.Domains {
		if d.Role == catalog.RoleGeneric {
			continue
		}
		res := p.Classify(name)
		switch {
		case !d.PDNSCovered && d.HTTPS:
			if res.Verdict != VerdictDedicated || !res.ViaCensys {
				t.Errorf("%s: want censys-dedicated, got %v (viaCensys=%v)", name, res.Verdict, res.ViaCensys)
			}
		case !d.PDNSCovered:
			if res.Verdict != VerdictNoRecord {
				t.Errorf("%s: want no-record, got %v", name, res.Verdict)
			}
		case d.Kind.Shared():
			if res.Verdict != VerdictShared {
				t.Errorf("%s: want shared, got %v", name, res.Verdict)
			}
		default:
			if res.Verdict != VerdictDedicated || res.ViaCensys {
				t.Errorf("%s: want pdns-dedicated, got %v (viaCensys=%v)", name, res.Verdict, res.ViaCensys)
			}
		}
	}
}

func TestDedicatedResultsCarryIPs(t *testing.T) {
	w := world.MustBuild(3)
	p := pipelineOver(w)
	res := p.Classify("avs-alexa.simamazon.example")
	if res.Verdict != VerdictDedicated {
		t.Fatalf("verdict %v", res.Verdict)
	}
	if len(res.IPs) < 8 {
		t.Fatalf("window IP set %d, want >= pool size 8", len(res.IPs))
	}
}

func TestSharedOnlyDevicesExcluded(t *testing.T) {
	// §4.2.3: Google Home (+Mini), Apple TV and Lefun have no usable
	// domain at all.
	w := world.MustBuild(1)
	p := pipelineOver(w)
	census := p.ClassifyAll(w.Catalog.DomainNames())
	for _, pname := range []string{"Google Home", "Google Home Mini", "Apple TV", "Lefun Cam"} {
		prod, ok := w.Catalog.Product(pname)
		if !ok {
			t.Fatalf("product %s missing", pname)
		}
		for _, u := range prod.Uses {
			if u.Domain.Role == catalog.RoleGeneric {
				continue
			}
			if census.Usable(u.Domain.Name) {
				t.Errorf("%s: domain %s usable despite shared-only backend", pname, u.Domain.Name)
			}
		}
	}
}

func TestLGTVLeftWithOneDomain(t *testing.T) {
	// §4.2.3: "for LG TV, we are left with only one out of 4 domains".
	w := world.MustBuild(1)
	p := pipelineOver(w)
	prod, _ := w.Catalog.Product("LG TV")
	usable := 0
	total := 0
	for _, u := range prod.Uses {
		if u.Domain.Role != catalog.RolePrimary {
			continue
		}
		total++
		if p.Classify(u.Domain.Name).Verdict == VerdictDedicated {
			usable++
		}
	}
	if total != 4 || usable != 1 {
		t.Fatalf("LG TV primary domains usable %d/%d, want 1/4", usable, total)
	}
}

func TestWemoWinkInsufficientInformation(t *testing.T) {
	w := world.MustBuild(1)
	p := pipelineOver(w)
	for _, pname := range []string{"WeMo Plug", "Wink 2"} {
		prod, _ := w.Catalog.Product(pname)
		for _, u := range prod.Uses {
			if u.Domain.Role == catalog.RoleGeneric {
				continue
			}
			if res := p.Classify(u.Domain.Name); res.Verdict != VerdictNoRecord {
				t.Errorf("%s domain %s: %v, want no-record", pname, u.Domain.Name, res.Verdict)
			}
		}
	}
}

func TestCensysRecoveredSpanFiveDevices(t *testing.T) {
	w := world.MustBuild(1)
	p := pipelineOver(w)
	census := p.ClassifyAll(w.Catalog.DomainNames())
	devices := map[string]bool{}
	for _, prod := range w.Catalog.Products {
		for _, u := range prod.Uses {
			r, ok := census.Results[u.Domain.Name]
			if ok && r.ViaCensys {
				devices[prod.Name] = true
			}
		}
	}
	if len(devices) != 5 {
		t.Fatalf("censys recoveries span %v (%d devices), want 5", devices, len(devices))
	}
}

func TestUsableDomainsOrderStable(t *testing.T) {
	w := world.MustBuild(1)
	p := pipelineOver(w)
	in := []string{"avs-alexa.simamazon.example", "ota.simsamsung.example", "gh00.simgoogle.example"}
	census := p.ClassifyAll(in)
	usable := census.UsableDomains()
	if len(usable) != 2 || usable[0] != "avs-alexa.simamazon.example" || usable[1] != "ota.simsamsung.example" {
		t.Fatalf("usable = %v", usable)
	}
}

func BenchmarkClassifyAll434(b *testing.B) {
	w := world.MustBuild(1)
	p := pipelineOver(w)
	iot := classify.DefaultKB().ClassifyAll(w.Catalog.DomainNames()).IoTSpecific()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.ClassifyAll(iot)
	}
}
