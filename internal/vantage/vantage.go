// Package vantage implements the three observation points of Figure 2:
//
//   - Home-VP: the subscriber line itself, full packet capture
//     (sampling rate 1), domain knowledge available;
//   - ISP-VP: the ISP border routers, NetFlow sampled at 1:1024,
//     headers only;
//   - IXP-VP: the IXP switching fabric, IPFIX sampled another order of
//     magnitude lower, with an established-TCP filter standing in for
//     the spoofing protection of §6.3.
package vantage

import (
	"repro/internal/flow"
	"repro/internal/sampling"
	"repro/internal/simrand"
)

// Kind identifies a vantage point type.
type Kind uint8

// Vantage point kinds.
const (
	KindHome Kind = iota + 1
	KindISP
	KindIXP
)

// String returns the paper's vantage-point label.
func (k Kind) String() string {
	switch k {
	case KindHome:
		return "Home-VP"
	case KindISP:
		return "ISP-VP"
	case KindIXP:
		return "IXP-VP"
	}
	return "VP(?)"
}

// Point is one vantage point. Not safe for concurrent use.
type Point struct {
	Kind Kind
	// Rate is the packet sampling denominator (1 = full capture).
	Rate uint64
	// RequireEstablished drops TCP records for which no sampled packet
	// is a flag-less data packet.
	RequireEstablished bool
	// DataPacketFraction is the fraction of a TCP flow's packets that
	// are flag-less data packets (used by the established filter).
	DataPacketFraction float64

	rng *simrand.RNG
}

// NewHome returns a full-capture home vantage point.
func NewHome() *Point {
	return &Point{Kind: KindHome, Rate: 1}
}

// NewISP returns the ISP border-router vantage point.
func NewISP(rng *simrand.RNG) *Point {
	return &Point{Kind: KindISP, Rate: sampling.RateISP, rng: rng.Fork("vp-isp")}
}

// NewIXP returns the IXP vantage point.
func NewIXP(rng *simrand.RNG) *Point {
	return &Point{
		Kind: KindIXP, Rate: sampling.RateIXP,
		RequireEstablished: true, DataPacketFraction: 0.9,
		rng: rng.Fork("vp-ixp"),
	}
}

// Observe passes one ground-truth flow record through the vantage
// point. It returns the record as seen there and whether it was seen at
// all. Full-capture points return the record unchanged.
func (p *Point) Observe(rec flow.Record) (flow.Record, bool) {
	if p.Rate <= 1 {
		return rec, true
	}
	out, ok := sampling.ThinRecord(p.rng, rec, p.Rate)
	if !ok {
		return flow.Record{}, false
	}
	if p.RequireEstablished && out.Key.Proto == flow.ProtoTCP {
		data := p.rng.Binomial(int(out.Packets), p.DataPacketFraction)
		if data == 0 {
			return flow.Record{}, false
		}
	}
	return out, true
}
