package vantage

import (
	"math"
	"net/netip"
	"testing"

	"repro/internal/flow"
	"repro/internal/sampling"
	"repro/internal/simrand"
)

func rec(pkts uint64, proto flow.Proto) flow.Record {
	return flow.Record{
		Key: flow.Key{
			Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("185.1.0.1"),
			SrcPort: 40000, DstPort: 443, Proto: proto,
		},
		Packets: pkts, Bytes: pkts * 600, TCPFlags: 0x1a,
	}
}

func TestHomeSeesEverything(t *testing.T) {
	h := NewHome()
	r := rec(1, flow.ProtoTCP)
	out, ok := h.Observe(r)
	if !ok || out != r {
		t.Fatal("home vantage point altered or dropped a record")
	}
}

func TestISPVisibilityMatchesSamplingRate(t *testing.T) {
	p := NewISP(simrand.New(1))
	if p.Rate != sampling.RateISP {
		t.Fatalf("ISP rate = %d", p.Rate)
	}
	seen := 0
	const trials = 3000
	for i := 0; i < trials; i++ {
		if _, ok := p.Observe(rec(1024, flow.ProtoTCP)); ok {
			seen++
		}
	}
	// P(visible) = 1-(1-1/1024)^1024 ≈ 0.632.
	got := float64(seen) / trials
	if math.Abs(got-0.632) > 0.04 {
		t.Fatalf("1024-packet flow visibility %v, want ~0.63", got)
	}
}

func TestIXPAnOrderSparserThanISP(t *testing.T) {
	isp := NewISP(simrand.New(2))
	ixp := NewIXP(simrand.New(2))
	if ixp.Rate != 10*isp.Rate {
		t.Fatalf("IXP rate %d vs ISP %d", ixp.Rate, isp.Rate)
	}
	ispSeen, ixpSeen := 0, 0
	const trials = 4000
	for i := 0; i < trials; i++ {
		if _, ok := isp.Observe(rec(700, flow.ProtoTCP)); ok {
			ispSeen++
		}
		if _, ok := ixp.Observe(rec(700, flow.ProtoTCP)); ok {
			ixpSeen++
		}
	}
	if ixpSeen*3 > ispSeen {
		t.Fatalf("IXP visibility %d not clearly below ISP %d", ixpSeen, ispSeen)
	}
}

func TestIXPEstablishedFilterDropsUDPNever(t *testing.T) {
	ixp := NewIXP(simrand.New(3))
	// Large UDP flow: the established filter must not apply.
	seen := 0
	for i := 0; i < 2000; i++ {
		if _, ok := ixp.Observe(rec(200000, flow.ProtoUDP)); ok {
			seen++
		}
	}
	if seen == 0 {
		t.Fatal("UDP flows never visible at IXP")
	}
}

func TestObservePreservesKeyAndScalesCounters(t *testing.T) {
	p := NewISP(simrand.New(4))
	in := rec(1_000_000, flow.ProtoTCP)
	out, ok := p.Observe(in)
	if !ok {
		t.Fatal("million-packet flow invisible")
	}
	if out.Key != in.Key {
		t.Fatal("key altered")
	}
	if out.Packets >= in.Packets || out.Packets == 0 {
		t.Fatalf("sampled packets %d", out.Packets)
	}
	if out.Bytes/out.Packets != in.Bytes/in.Packets {
		t.Fatal("mean packet size not preserved")
	}
}

func TestKindString(t *testing.T) {
	if KindHome.String() != "Home-VP" || KindISP.String() != "ISP-VP" || KindIXP.String() != "IXP-VP" {
		t.Fatal("vantage names wrong")
	}
}
