package report

import (
	"strings"
	"testing"

	"repro/internal/experiments"
)

func sample() *experiments.Table {
	return &experiments.Table{
		ID:      "TX",
		Title:   "sample table",
		Columns: []string{"name", "value"},
		Rows:    [][]string{{"alpha", "1"}, {"beta-longer", "22"}},
		Notes:   []string{"a note"},
		Stats:   map[string]float64{"zz": 2, "aa": 1},
	}
}

func TestTextContainsEverything(t *testing.T) {
	var b strings.Builder
	if err := Text(&b, sample()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, wantSub := range []string{"TX — sample table", "name", "value", "alpha", "beta-longer", "a note", "aa", "zz"} {
		if !strings.Contains(out, wantSub) {
			t.Errorf("text output missing %q:\n%s", wantSub, out)
		}
	}
	// Stats render in sorted order.
	if strings.Index(out, "aa") > strings.Index(out, "zz") {
		t.Error("stats not sorted")
	}
}

func TestCSV(t *testing.T) {
	var b strings.Builder
	if err := CSV(&b, sample()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if lines[0] != "name,value" || lines[1] != "alpha,1" {
		t.Fatalf("csv content wrong: %v", lines)
	}
}

func TestSummaryOmitsRows(t *testing.T) {
	var b strings.Builder
	if err := Summary(&b, sample()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Contains(out, "alpha") {
		t.Error("summary should omit rows")
	}
	if !strings.Contains(out, "sample table") || !strings.Contains(out, "aa") {
		t.Error("summary missing title or stats")
	}
}
