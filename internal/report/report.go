// Package report renders experiment tables as fixed-width text and CSV,
// the two output formats of the CLI, examples, and EXPERIMENTS.md
// generation.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"repro/internal/experiments"
)

// Text renders the table as aligned fixed-width text.
func Text(w io.Writer, t *experiments.Table) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		return b.String()
	}
	if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", max(total-2, 4))); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, key := range t.SortedStats() {
		if _, err := fmt.Fprintf(w, "  stat %-40s %.4f\n", key, t.Stats[key]); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// CSV renders the table rows (with a header line) as CSV.
func CSV(w io.Writer, t *experiments.Table) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Summary renders only the title, stats and notes (no rows), for quick
// side-by-side comparison with the paper.
func Summary(w io.Writer, t *experiments.Table) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title); err != nil {
		return err
	}
	for _, key := range t.SortedStats() {
		if _, err := fmt.Fprintf(w, "  %-42s %12.4f\n", key, t.Stats[key]); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
