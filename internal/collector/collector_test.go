package collector

import (
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// stubFeed records what the server drives into it. Marker byte: the
// third byte of each datagram identifies the sending source, so tests
// can assert sticky routing without real wire decoding.
type stubFeed struct {
	nf, ix  atomic.Uint64
	delay   time.Duration
	mu      sync.Mutex
	markers map[byte]int
	closed  atomic.Bool
}

func (f *stubFeed) record(m []byte) {
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	if len(m) >= 3 {
		f.mu.Lock()
		if f.markers == nil {
			f.markers = map[byte]int{}
		}
		f.markers[m[2]]++
		f.mu.Unlock()
	}
}

func (f *stubFeed) FeedNetFlow(m []byte) error { f.record(m); f.nf.Add(1); return nil }
func (f *stubFeed) FeedIPFIX(m []byte) error   { f.record(m); f.ix.Add(1); return nil }
func (f *stubFeed) Stats() FeedStats {
	return FeedStats{Records: f.nf.Load() + f.ix.Load()}
}
func (f *stubFeed) Close() { f.closed.Store(true) }

func (f *stubFeed) markerSet() map[byte]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[byte]int, len(f.markers))
	for k, v := range f.markers {
		out[k] = v
	}
	return out
}

func TestParseListener(t *testing.T) {
	for _, tc := range []struct {
		in    string
		addr  string
		proto Proto
		bad   bool
	}{
		{in: "127.0.0.1:2055", addr: "127.0.0.1:2055", proto: ProtoAuto},
		{in: "netflow@:2055", addr: ":2055", proto: ProtoNetFlow},
		{in: "ipfix@[::1]:4739", addr: "[::1]:4739", proto: ProtoIPFIX},
		{in: "auto@:9995", addr: ":9995", proto: ProtoAuto},
		{in: "sflow@:6343", bad: true},
		{in: "", bad: true},
		{in: "netflow@", bad: true},
	} {
		l, err := ParseListener(tc.in)
		if tc.bad {
			if err == nil {
				t.Errorf("ParseListener(%q) accepted", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseListener(%q): %v", tc.in, err)
			continue
		}
		if l.Addr != tc.addr || l.Proto != tc.proto {
			t.Errorf("ParseListener(%q) = %+v", tc.in, l)
		}
	}
}

func TestSniff(t *testing.T) {
	if got := sniff([]byte{0, 9, 0, 0}); got != ProtoNetFlow {
		t.Errorf("version 9 sniffed as %v", got)
	}
	if got := sniff([]byte{0, 10, 0, 0}); got != ProtoIPFIX {
		t.Errorf("version 10 sniffed as %v", got)
	}
	for _, b := range [][]byte{nil, {0}, {0, 5, 0, 0}, {0xff, 0xff}} {
		if got := sniff(b); got != ProtoAuto {
			t.Errorf("sniff(%v) = %v, want unrecognized", b, got)
		}
	}
}

// startStubServer binds one auto-sniffing loopback socket over stub
// feeds and returns the server, its address, and the feeds created.
func startStubServer(t *testing.T, cfg Config) (*Server, net.Addr, *[]*stubFeed) {
	t.Helper()
	cfg.Listeners = []Listener{{Addr: "127.0.0.1:0"}}
	feeds := &[]*stubFeed{}
	var mu sync.Mutex
	srv, err := Listen(cfg, func() Feed {
		f := &stubFeed{}
		mu.Lock()
		*feeds = append(*feeds, f)
		mu.Unlock()
		return f
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, srv.Addrs()[0], feeds
}

// send opens a fresh UDP source (distinct local port) and sends n
// datagrams carrying the version and marker bytes.
func send(t *testing.T, to net.Addr, version byte, marker byte, n int) {
	t.Helper()
	conn, err := net.Dial("udp", to.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte{0, version, marker, 0}
	for i := 0; i < n; i++ {
		if _, err := conn.Write(msg); err != nil {
			t.Fatal(err)
		}
		if i%32 == 31 {
			time.Sleep(time.Millisecond) // pace loopback bursts
		}
	}
}

func waitDatagrams(t *testing.T, srv *Server, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Datagrams < want {
		if time.Now().After(deadline) {
			t.Fatalf("received %d of %d datagrams", srv.Stats().Datagrams, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServerStickyRouting: three sources over one auto socket, three
// active feeds — every source's datagrams must land on exactly one
// feed, NetFlow and IPFIX must reach the right decoder entry point,
// and the metrics must account for every datagram.
func TestServerStickyRouting(t *testing.T) {
	srv, addr, feeds := startStubServer(t, Config{MaxFeeds: 3, MinFeeds: 3, QueueLen: 1024})

	const per = 100
	send(t, addr, 9, 'a', per)  // NetFlow source
	send(t, addr, 9, 'b', per)  // NetFlow source
	send(t, addr, 10, 'c', per) // IPFIX source
	waitDatagrams(t, srv, 3*per)
	srv.Sync()

	st := srv.Stats()
	if st.StartedFeeds != 3 {
		t.Fatalf("started feeds = %d, want 3 (one per source)", st.StartedFeeds)
	}
	if st.DroppedDatagrams != 0 || st.DecodeErrors != 0 {
		t.Fatalf("drops=%d errors=%d on a clean run", st.DroppedDatagrams, st.DecodeErrors)
	}

	var nf, ix uint64
	for _, f := range *feeds {
		ms := f.markerSet()
		if len(ms) != 1 {
			t.Fatalf("feed saw markers %v — source assignment is not sticky", ms)
		}
		for m, n := range ms {
			if n != per {
				t.Fatalf("marker %c: %d datagrams, want %d", m, n, per)
			}
		}
		nf += f.nf.Load()
		ix += f.ix.Load()
	}
	if nf != 2*per || ix != per {
		t.Fatalf("sniffed %d netflow + %d ipfix, want %d + %d", nf, ix, 2*per, per)
	}
}

// TestServerCloseDrainsQueues: a slow feed accumulates a backlog;
// Close must decode every received datagram before returning, then
// close the feed, and leave no goroutines behind.
func TestServerCloseDrainsQueues(t *testing.T) {
	before := runtime.NumGoroutine()

	cfg := Config{MaxFeeds: 1, QueueLen: 4096}
	feeds := &[]*stubFeed{}
	var mu sync.Mutex
	cfg.Listeners = []Listener{{Addr: "127.0.0.1:0"}}
	srv, err := Listen(cfg, func() Feed {
		f := &stubFeed{delay: 200 * time.Microsecond}
		mu.Lock()
		*feeds = append(*feeds, f)
		mu.Unlock()
		return f
	})
	if err != nil {
		t.Fatal(err)
	}

	const n = 500
	send(t, srv.Addrs()[0], 9, 'x', n)
	waitDatagrams(t, srv, n) // received and enqueued, mostly not yet decoded
	srv.Close()

	if got := (*feeds)[0].nf.Load(); got != n {
		t.Fatalf("Close drained %d of %d queued datagrams", got, n)
	}
	if !(*feeds)[0].closed.Load() {
		t.Fatal("feed not closed on shutdown")
	}
	st := srv.Stats()
	if st.Feeds[0].Datagrams != n || st.Feeds[0].QueueDepth != 0 {
		t.Fatalf("post-close snapshot: %+v", st.Feeds[0])
	}

	// Every server goroutine (readers, worker, control loop) must be
	// gone. Allow the runtime a moment to retire them.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after close", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerSyncCoversEnqueued: Sync returns only after everything
// enqueued before the call has been decoded.
func TestServerSyncCoversEnqueued(t *testing.T) {
	srv, addr, feeds := startStubServer(t, Config{MaxFeeds: 1, QueueLen: 4096})
	const n = 300
	send(t, addr, 10, 's', n)
	waitDatagrams(t, srv, n)
	srv.Sync()
	if got := (*feeds)[0].ix.Load(); got != n {
		t.Fatalf("Sync returned with %d of %d datagrams decoded", got, n)
	}
}

// TestServerCountsDecodeErrors: datagrams matching neither protocol
// version on an auto socket are counted, not fatal.
func TestServerCountsDecodeErrors(t *testing.T) {
	srv, addr, _ := startStubServer(t, Config{MaxFeeds: 1})
	send(t, addr, 5, 'z', 10) // version 5 — sniff fails
	waitDatagrams(t, srv, 10)
	srv.Sync()
	if st := srv.Stats(); st.DecodeErrors != 10 {
		t.Fatalf("decode errors = %d, want 10", st.DecodeErrors)
	}
}

// TestServerAdaptiveFanIn: with a tiny per-feed rate budget, a burst
// from one source must raise the fan-in target so the next source
// lands on a second feed.
func TestServerAdaptiveFanIn(t *testing.T) {
	srv, addr, _ := startStubServer(t, Config{
		MaxFeeds:    4,
		QueueLen:    4096,
		RatePerFeed: 1, // any observable rate overflows one feed
		Tick:        5 * time.Millisecond,
	})

	send(t, addr, 9, 'p', 200)
	waitDatagrams(t, srv, 200)
	srv.Sync()

	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().ActiveFeeds < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("fan-in target stuck at %d under load (ewma %.1f)",
				srv.Stats().ActiveFeeds, srv.Stats().RateEWMA)
		}
		time.Sleep(time.Millisecond)
	}

	send(t, addr, 9, 'q', 10) // new source → must open a second feed
	waitDatagrams(t, srv, 210)
	srv.Sync()
	if st := srv.Stats(); st.StartedFeeds < 2 {
		t.Fatalf("new source stayed on the saturated feed: %+v", st)
	}
}

// TestListenConfigErrors: bad configs fail fast.
func TestListenConfigErrors(t *testing.T) {
	if _, err := Listen(Config{}, func() Feed { return &stubFeed{} }); err == nil {
		t.Error("no listeners accepted")
	}
	if _, err := Listen(Config{Listeners: []Listener{{Addr: "127.0.0.1:0"}}}, nil); err == nil {
		t.Error("nil feed constructor accepted")
	}
	if _, err := Listen(Config{Listeners: []Listener{{Addr: "not-an-address"}}},
		func() Feed { return &stubFeed{} }); err == nil {
		t.Error("unparseable address accepted")
	}
}
