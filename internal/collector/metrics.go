package collector

// The operator-facing metrics surface: a point-in-time Stats snapshot
// (JSON-serializable, expvar-friendly) plus an http.Handler that
// serves it. The taxonomy — what each counter means and how to read
// it during exporter restarts — is documented in docs/OPERATIONS.md.

import (
	"encoding/json"
	"math"
	"net/http"
)

// FeedSnapshot is the per-lane slice of a Stats snapshot: one decode
// lane (worker goroutine) and the per-source feeds it drives.
//
// haystack:metrics-struct — every exported field must be filled by a
// haystack:metrics-export function (enforced by haystacklint).
type FeedSnapshot struct {
	// Feed is the lane index (0-based, stable for the server's
	// lifetime).
	Feed int `json:"feed"`
	// Sources is how many exporter addresses are stickily assigned to
	// this lane. Each has its own decoder state.
	Sources int64 `json:"sources"`
	// Datagrams counts payloads this lane has decoded.
	Datagrams uint64 `json:"datagrams"`
	// DroppedDatagrams counts payloads lost because this lane's queue
	// was full when they arrived.
	DroppedDatagrams uint64 `json:"dropped_datagrams"`
	// DecodeErrors counts datagrams the wire decoders rejected
	// (malformed, or unsniffable on an auto socket).
	DecodeErrors uint64 `json:"decode_errors"`
	// QueueDepth/QueueCap expose the lane's backlog right now.
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
	// Records, TemplateDrops, and SequenceGaps aggregate the lane's
	// per-source decoders: records delivered to the detection
	// pipeline, data sets skipped for want of a template, and
	// exporter sequence discontinuities. Counts are cumulative — a
	// stream source torn down at disconnect leaves its totals behind.
	Records       uint64 `json:"records"`
	TemplateDrops uint64 `json:"template_drops"`
	SequenceGaps  uint64 `json:"sequence_gaps"`
}

// Stats is a point-in-time snapshot of the server's transport health.
//
// haystack:metrics-struct — every exported field must be filled by a
// haystack:metrics-export function (enforced by haystacklint).
type Stats struct {
	// Datagrams and Bytes count everything received on the UDP
	// sockets; the stream transport's equivalents are StreamMessages
	// and StreamBytes, so operators see load per transport.
	Datagrams uint64 `json:"datagrams"`
	Bytes     uint64 `json:"bytes"`
	// DroppedDatagrams counts queue-full losses across all feeds
	// (both transports drop at a full lane queue rather than stall).
	DroppedDatagrams uint64 `json:"dropped_datagrams"`
	// ReadErrors counts unexpected socket read, accept, and stream
	// transport errors; the loops survive them, but a climbing
	// counter means the kernel or the network path is unhappy.
	ReadErrors uint64 `json:"read_errors"`
	// StreamConns is how many TCP exporter connections are open right
	// now; StreamConnsTotal counts every connection ever accepted,
	// and StreamConnsRejected those refused at the MaxConns cap.
	// Each open connection is one exporter source with its own feed
	// identity, torn down at disconnect.
	StreamConns         int64  `json:"stream_conns"`
	StreamConnsTotal    uint64 `json:"stream_conns_total"`
	StreamConnsRejected uint64 `json:"stream_conns_rejected"`
	// StreamMessages and StreamBytes count IPFIX messages framed off
	// TCP streams and their payload bytes.
	StreamMessages uint64 `json:"stream_messages"`
	StreamBytes    uint64 `json:"stream_bytes"`
	// FramingErrors counts stream connections killed because the byte
	// stream lost IPFIX message alignment (wrong version word,
	// impossible Length field, or a header truncated mid-read) — a
	// desynced length-delimited stream cannot be resynchronized.
	FramingErrors uint64 `json:"framing_errors"`
	// Records sums decoded records across feeds.
	Records uint64 `json:"records"`
	// DecodeErrors sums decoder rejections across feeds.
	DecodeErrors uint64 `json:"decode_errors"`
	// ActiveFeeds is the fan-in controller's current target: how many
	// feeds accept newly seen exporter sources.
	ActiveFeeds int `json:"active_feeds"`
	// StartedFeeds is how many feeds have actually been opened.
	StartedFeeds int `json:"started_feeds"`
	// MaxFeeds echoes the configured cap.
	MaxFeeds int `json:"max_feeds"`
	// RateEWMA is the controller's smoothed records/sec estimate.
	RateEWMA float64 `json:"rate_ewma"`
	// Feeds holds one entry per started feed.
	Feeds []FeedSnapshot `json:"feeds"`
}

// Stats snapshots the server's transport counters. Safe to call at
// any time, including while feeds are running — all counters are
// atomics, so the snapshot is approximate under load but never racy.
//
// haystack:metrics-export
func (s *Server) Stats() Stats {
	st := Stats{
		Datagrams:           s.datagrams.Load(),
		Bytes:               s.bytes.Load(),
		DroppedDatagrams:    s.dropped.Load(),
		ReadErrors:          s.readErrors.Load(),
		StreamConns:         s.streamConns.Load(),
		StreamConnsTotal:    s.acceptedConns.Load(),
		StreamConnsRejected: s.rejectedConns.Load(),
		StreamMessages:      s.streamMsgs.Load(),
		StreamBytes:         s.streamBytes.Load(),
		FramingErrors:       s.framingErrors.Load(),
		ActiveFeeds:         int(s.active.Load()),
		MaxFeeds:            s.cfg.MaxFeeds,
		RateEWMA:            math.Float64frombits(s.ewma.Load()),
	}
	for _, w := range s.workers {
		if !w.started.Load() {
			continue
		}
		// Wire payloads only: source-teardown control messages ride
		// the same queue but are not datagrams. controls is loaded
		// first — it can only lag the portion already counted in
		// processed, so the subtraction cannot underflow.
		controls := w.controls.Load()
		snap := FeedSnapshot{
			Feed:             w.idx,
			Sources:          w.sources.Load(),
			Datagrams:        w.processed.Load() - controls,
			DroppedDatagrams: w.dropped.Load(),
			DecodeErrors:     w.errors.Load(),
			QueueDepth:       len(w.ch),
			QueueCap:         cap(w.ch),
		}
		// Live feeds plus the final counters of sources already torn
		// down: totals stay cumulative across stream disconnects.
		snap.Records = w.retiredRecords.Load()
		snap.TemplateDrops = w.retiredDropped.Load()
		snap.SequenceGaps = w.retiredGaps.Load()
		for _, f := range w.feedList() {
			fs := f.Stats()
			snap.Records += fs.Records
			snap.TemplateDrops += fs.Dropped
			snap.SequenceGaps += fs.Gaps
		}
		st.StartedFeeds++
		st.Records += snap.Records
		st.DecodeErrors += snap.DecodeErrors
		st.Feeds = append(st.Feeds, snap)
	}
	return st
}

// ServeMetrics is an http.Handler serving the Stats snapshot as
// indented JSON — mount it at /metrics, or feed Stats to expvar for
// /debug/vars integration.
func (s *Server) ServeMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Stats())
}
