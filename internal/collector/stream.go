package collector

// TCP stream transport for IPFIX (RFC 7011 §10.4). A stream has no
// datagram boundaries, so messages are framed by the 16-bit Length
// field at offset 2 of the IPFIX message header — the whole reason
// the RFC requires that field. NetFlow v9 carries no length and
// cannot ride a stream; Listener.validate rejects the combination.
//
// Identity model: one connection is one exporter source. The
// connection's sourceKey carries a serial number, so a reconnecting
// exporter (same remote host, even the same ephemeral port) gets a
// fresh Feed — template caches and sequence anchors live exactly as
// long as the connection and are torn down when it closes, via a
// closeSource control message drained through the owning lane (so
// teardown is ordered after every message the connection delivered).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"syscall"
	"time"
)

// ipfixStreamVersion and ipfixHeaderLen pin the framing constants
// from RFC 7011 §3.1: every message starts 〈version=10, length〉 and
// the length covers the 16-byte header itself.
const (
	ipfixStreamVersion = 10
	ipfixHeaderLen     = 16
)

// errFraming marks a stream that has lost (or never had) IPFIX
// message alignment. Framing errors are unrecoverable — there is no
// way to resynchronize a length-delimited stream — so the connection
// is closed and the exporter is expected to reconnect.
var errFraming = errors.New("collector: IPFIX stream framing error")

// streamListener is one bound TCP listener.
type streamListener struct {
	idx int // index into Config.Listeners, for Addrs
	ln  net.Listener
}

// nextIPFIXMessage frames one IPFIX message out of r into buf (whose
// length must be at least maxMsg ≥ ipfixHeaderLen) and returns the
// message length. Errors are either errFraming (stream desynced:
// wrong version, undersized or oversized length), io.EOF (clean close
// between messages), or the transport error that interrupted the
// read (io.ErrUnexpectedEOF for a stream truncated mid-message).
func nextIPFIXMessage(r io.Reader, buf []byte, maxMsg int) (int, error) {
	if _, err := io.ReadFull(r, buf[:4]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			// 1-3 bytes then EOF: a truncated header is a framing
			// problem, not a clean close.
			return 0, fmt.Errorf("%w: truncated message header", errFraming)
		}
		return 0, err
	}
	if v := binary.BigEndian.Uint16(buf[0:2]); v != ipfixStreamVersion {
		return 0, fmt.Errorf("%w: version %d (want %d)", errFraming, v, ipfixStreamVersion)
	}
	n := int(binary.BigEndian.Uint16(buf[2:4]))
	if n < ipfixHeaderLen || n > maxMsg {
		return 0, fmt.Errorf("%w: message length %d (want %d..%d)", errFraming, n, ipfixHeaderLen, maxMsg)
	}
	if _, err := io.ReadFull(r, buf[4:n]); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return 0, err
	}
	return n, nil
}

// acceptLoop owns one TCP listener: accept, count, hand the
// connection its own read loop. Accept errors are survived (paced)
// until shutdown, mirroring readLoop's posture.
func (s *Server) acceptLoop(sl *streamListener) {
	defer s.readers.Done()
	for {
		c, err := sl.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return // shutdown
			}
			select {
			case <-s.done:
				return
			default:
			}
			s.readErrors.Add(1)
			time.Sleep(time.Millisecond)
			continue
		}
		if max := s.cfg.MaxConns; max > 0 && s.streamConns.Load() >= int64(max) {
			// Over the connection budget: refuse outright (counted)
			// instead of letting an open-socket flood grow goroutines
			// and decoder state without bound.
			s.rejectedConns.Add(1)
			c.Close()
			continue
		}
		s.acceptedConns.Add(1)
		s.streamConns.Add(1)
		s.connMu.Lock()
		s.conns[c] = struct{}{}
		s.connMu.Unlock()
		// Close may have snapshotted s.conns between Accept and the
		// registration above, in which case nobody would ever close
		// this connection and a still-sending exporter could keep its
		// read loop alive past shutdown. Re-checking done after
		// registering closes the race: either Close saw the conn, or
		// we see done (closing twice is harmless).
		select {
		case <-s.done:
			c.Close()
		default:
		}
		s.readers.Add(1)
		go s.connLoop(sl, c)
	}
}

// connLoop is the per-connection hot path: frame messages off the
// stream, route them to the source's sticky lane, and tear the
// source down when the connection ends. Like readLoop it never
// decodes and never blocks on a feed.
func (s *Server) connLoop(sl *streamListener, c net.Conn) {
	defer s.readers.Done()
	key := sourceKey{sock: sl.idx, conn: s.connSerial.Add(1)}
	key.src, key.raw = addrKey(c.RemoteAddr())
	maxMsg := s.cfg.MaxDatagram
	if maxMsg > 0xffff {
		maxMsg = 0xffff // an IPFIX length field cannot say more
	}

	var w *worker // assigned on the first well-framed message
	for {
		if s.cfg.IdleTimeout > 0 {
			c.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
		buf := s.getBuf()
		n, err := nextIPFIXMessage(c, buf, maxMsg)
		if err != nil {
			s.putBuf(buf)
			if errors.Is(err, errFraming) {
				s.framingErrors.Add(1)
			} else if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) &&
				!errors.Is(err, net.ErrClosed) &&
				!errors.Is(err, os.ErrDeadlineExceeded) && !errors.Is(err, syscall.ECONNRESET) {
				// The connection is done either way. A clean close, a
				// disconnect mid-message (an exporter killed between
				// writes), a shutdown race, an idle-deadline reap
				// (that is the reaper working, not an error), and a
				// peer reset (routine exporter churn) are all
				// expected; only genuinely unexpected transport
				// errors — the class docs/OPERATIONS.md tells
				// operators to page on — count.
				select {
				case <-s.done:
				default:
					s.readErrors.Add(1)
				}
			}
			break
		}
		if w == nil {
			w = s.workerFor(key)
		}
		select {
		case w.ch <- datagram{buf: buf, n: n, proto: ProtoIPFIX, src: key}:
			w.enqueued.Add(1)
		default:
			// Full queue: drop visibly, exactly like the UDP path —
			// blocking here would let one slow lane stall the stream
			// into a TCP zero-window and back up the exporter.
			w.dropped.Add(1)
			s.dropped.Add(1)
			s.putBuf(buf)
		}
		// Counted after the enqueue attempt: anyone who has seen
		// stream_messages reach N may rely on all N being enqueued
		// (or dropped), so Stats-gated Sync calls cover them.
		s.streamMsgs.Add(1)
		s.streamBytes.Add(uint64(n))
	}

	c.Close()
	s.connMu.Lock()
	delete(s.conns, c)
	s.connMu.Unlock()
	s.streamConns.Add(-1)
	if w != nil {
		// Tear down the connection's feed *after* everything it
		// enqueued: the control message rides the same lane queue.
		// Blocking is safe — the lane drains continuously, and at
		// shutdown its channel closes only after readers.Wait (which
		// includes this goroutine).
		w.ch <- datagram{src: key, closeSource: true}
		w.enqueued.Add(1)
	}
}
