package collector

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/iotest"
	"time"
)

// streamMsg builds one minimal IPFIX-framed message: version 10, the
// Length field covering header + payload bytes, and a marker byte at
// offset 4 (the export-time field) so tests can attribute deliveries
// to their sending connection.
func streamMsg(marker byte, payload int) []byte {
	m := make([]byte, ipfixHeaderLen+payload)
	binary.BigEndian.PutUint16(m[0:2], ipfixStreamVersion)
	binary.BigEndian.PutUint16(m[2:4], uint16(len(m)))
	m[4] = marker
	return m
}

func TestParseListenerStream(t *testing.T) {
	for _, tc := range []struct {
		in    string
		addr  string
		netw  string
		proto Proto
		bad   bool
	}{
		{in: "tcp+ipfix@:4739", addr: ":4739", netw: "tcp", proto: ProtoIPFIX},
		{in: "tcp@127.0.0.1:4739", addr: "127.0.0.1:4739", netw: "tcp", proto: ProtoIPFIX},
		{in: "udp+netflow@:2055", addr: ":2055", netw: "udp", proto: ProtoNetFlow},
		{in: "udp@:2055", addr: ":2055", netw: "udp", proto: ProtoAuto},
		{in: "udp+auto@:2055", addr: ":2055", netw: "udp", proto: ProtoAuto},
		{in: "tcp+netflow@:2055", bad: true}, // no length field to frame
		{in: "tcp+auto@:4739", bad: true},    // a stream cannot sniff per message
		{in: "sctp+ipfix@:4739", bad: true},
		{in: "tcp+ipfix@", bad: true},
	} {
		l, err := ParseListener(tc.in)
		if tc.bad {
			if err == nil {
				t.Errorf("ParseListener(%q) accepted: %+v", tc.in, l)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseListener(%q): %v", tc.in, err)
			continue
		}
		if l.Addr != tc.addr || l.Net != tc.netw || l.Proto != tc.proto {
			t.Errorf("ParseListener(%q) = %+v", tc.in, l)
		}
	}
}

// TestNextIPFIXMessage covers the framer against every split and
// every malformation class directly, without sockets.
func TestNextIPFIXMessage(t *testing.T) {
	msg := streamMsg('m', 12)
	buf := make([]byte, 65535)

	// Whole messages back to back, delivered one byte per Read — the
	// framer must reassemble across every possible read boundary.
	stream := append(append([]byte{}, msg...), streamMsg('n', 0)...)
	r := iotest.OneByteReader(bytes.NewReader(stream))
	n, err := nextIPFIXMessage(r, buf, 65535)
	if err != nil || n != len(msg) || !bytes.Equal(buf[:n], msg) {
		t.Fatalf("first frame: n=%d err=%v", n, err)
	}
	n, err = nextIPFIXMessage(r, buf, 65535)
	if err != nil || n != ipfixHeaderLen || buf[4] != 'n' {
		t.Fatalf("second frame: n=%d err=%v", n, err)
	}
	if _, err = nextIPFIXMessage(r, buf, 65535); !errors.Is(err, io.EOF) {
		t.Fatalf("end of stream: %v, want io.EOF", err)
	}

	for name, tc := range map[string]struct {
		in      []byte
		wantErr error
	}{
		"wrong version":    {streamMsg('v', 0), errFraming},
		"length too small": {streamMsg('s', 0), errFraming},
		"length too big":   {streamMsg('b', 0), errFraming},
		"truncated header": {msg[:3], errFraming},
		"truncated body":   {msg[:len(msg)-5], io.ErrUnexpectedEOF},
	} {
		in := append([]byte{}, tc.in...)
		switch name {
		case "wrong version":
			binary.BigEndian.PutUint16(in[0:2], 9) // NetFlow on a stream
		case "length too small":
			binary.BigEndian.PutUint16(in[2:4], ipfixHeaderLen-1)
		case "length too big":
			binary.BigEndian.PutUint16(in[2:4], 60000)
		}
		if _, err := nextIPFIXMessage(bytes.NewReader(in), buf, 1024); !errors.Is(err, tc.wantErr) {
			t.Errorf("%s: err = %v, want %v", name, err, tc.wantErr)
		}
	}
}

// streamStub is the stream-test Feed: it attributes each message to
// its connection by the marker byte at offset 4.
type streamStub struct {
	msgs    atomic.Uint64
	badNF   atomic.Uint64
	mu      sync.Mutex
	markers map[byte]int
	closed  atomic.Bool
}

func (f *streamStub) FeedIPFIX(m []byte) error {
	f.mu.Lock()
	if f.markers == nil {
		f.markers = map[byte]int{}
	}
	if len(m) > 4 {
		f.markers[m[4]]++
	}
	f.mu.Unlock()
	f.msgs.Add(1)
	return nil
}
func (f *streamStub) FeedNetFlow([]byte) error { f.badNF.Add(1); return nil }
func (f *streamStub) Stats() FeedStats         { return FeedStats{Records: f.msgs.Load()} }
func (f *streamStub) Close()                   { f.closed.Store(true) }

func (f *streamStub) markerSet() map[byte]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[byte]int, len(f.markers))
	for k, v := range f.markers {
		out[k] = v
	}
	return out
}

// stubRegistry collects the feeds a server creates, safely readable
// while the server is still creating more.
type stubRegistry struct {
	mu    sync.Mutex
	feeds []*streamStub
}

func (r *stubRegistry) add(f *streamStub) {
	r.mu.Lock()
	r.feeds = append(r.feeds, f)
	r.mu.Unlock()
}

func (r *stubRegistry) list() []*streamStub {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*streamStub(nil), r.feeds...)
}

func (r *stubRegistry) count() int { return len(r.list()) }

// startStreamServer binds one TCP IPFIX listener over streamStub
// feeds.
func startStreamServer(t *testing.T, cfg Config) (*Server, string, *stubRegistry) {
	t.Helper()
	cfg.Listeners = []Listener{{Addr: "127.0.0.1:0", Proto: ProtoIPFIX, Net: "tcp"}}
	reg := &stubRegistry{}
	srv, err := Listen(cfg, func() Feed {
		f := &streamStub{}
		reg.add(f)
		return f
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, srv.Addrs()[0].String(), reg
}

// waitFor polls until cond holds or the deadline trips.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// writeChunked writes b in fixed-size chunks so message boundaries
// never align with write boundaries.
func writeChunked(t *testing.T, c net.Conn, b []byte, chunk int) {
	t.Helper()
	for len(b) > 0 {
		n := min(chunk, len(b))
		if _, err := c.Write(b[:n]); err != nil {
			t.Fatal(err)
		}
		b = b[n:]
	}
}

// TestStreamServerConnectionIdentity is the stream-transport core
// contract: each connection is one exporter source with its own
// sticky Feed; messages split across arbitrary write boundaries
// reassemble exactly; disconnect tears the source's feed down and a
// reconnect gets a fresh one.
func TestStreamServerConnectionIdentity(t *testing.T) {
	srv, addr, feeds := startStreamServer(t, Config{MaxFeeds: 1, QueueLen: 1024})

	const per = 50
	conns := make([]net.Conn, 2)
	for i, marker := range []byte{'a', 'b'} {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
		var stream []byte
		for j := 0; j < per; j++ {
			stream = append(stream, streamMsg(marker, j%29)...)
		}
		writeChunked(t, c, stream, 7) // 7 never divides a message length evenly
	}
	defer conns[1].Close()

	waitFor(t, "all stream messages", func() bool { return srv.Stats().StreamMessages == 2*per })
	srv.Sync()

	st := srv.Stats()
	if st.StreamConns != 2 || st.StreamConnsTotal != 2 {
		t.Fatalf("conns = %d open / %d total, want 2 / 2", st.StreamConns, st.StreamConnsTotal)
	}
	if st.FramingErrors != 0 || st.DroppedDatagrams != 0 {
		t.Fatalf("transport not clean: %+v", st)
	}
	if st.StartedFeeds != 1 || st.Feeds[0].Sources != 2 {
		t.Fatalf("want both connections as sources on one lane: %+v", st.Feeds)
	}
	if feeds.count() != 2 {
		t.Fatalf("got %d feeds, want one per connection", feeds.count())
	}
	for _, f := range feeds.list() {
		ms := f.markerSet()
		if len(ms) != 1 {
			t.Fatalf("feed saw markers %v — connection identity is not sticky", ms)
		}
		for m, n := range ms {
			if n != per {
				t.Fatalf("marker %c: %d messages, want %d", m, n, per)
			}
		}
		if f.badNF.Load() != 0 {
			t.Fatalf("stream messages reached FeedNetFlow")
		}
	}

	// Disconnect one exporter: its feed must be closed and its source
	// slot released, while the other connection is untouched.
	conns[0].Close()
	waitFor(t, "feed teardown after disconnect", func() bool {
		st := srv.Stats()
		return st.StreamConns == 1 && st.StartedFeeds == 1 && st.Feeds[0].Sources == 1
	})
	// The departed source's decode totals stay on the lane's books —
	// cumulative counters must not shrink at disconnect (the fan-in
	// controller differences them per tick).
	if got := srv.Stats().Feeds[0].Records; got != 2*per {
		t.Fatalf("lane records = %d after disconnect, want cumulative %d", got, 2*per)
	}
	closed := 0
	for _, f := range feeds.list() {
		if f.closed.Load() {
			closed++
		}
	}
	if closed != 1 {
		t.Fatalf("%d feeds closed after one disconnect, want 1", closed)
	}

	// A reconnect — same exporter host — is a *new* source: fresh
	// feed, no inherited decoder state.
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	writeChunked(t, c, streamMsg('c', 3), 2)
	waitFor(t, "reconnected source's feed", func() bool { return feeds.count() == 3 })
	waitFor(t, "reconnect message", func() bool { return srv.Stats().StreamMessages == 2*per+1 })
}

// TestStreamServerFramingErrorKillsConnection: garbage on the stream
// is unrecoverable — the server must count a framing error and drop
// the connection rather than guess at message boundaries.
func TestStreamServerFramingErrorKillsConnection(t *testing.T) {
	srv, addr, feeds := startStreamServer(t, Config{MaxFeeds: 1})
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// A valid message, then bytes that cannot start an IPFIX header.
	if _, err := c.Write(append(streamMsg('g', 4), 0xde, 0xad, 0xbe, 0xef)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "framing error", func() bool { return srv.Stats().FramingErrors == 1 })
	// The server hangs up; the client sees EOF.
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("connection still open after framing error")
	}
	waitFor(t, "connection teardown", func() bool { return srv.Stats().StreamConns == 0 })
	srv.Sync()
	// The message before the garbage was still delivered, and its feed
	// was torn down with the connection.
	if feeds.count() != 1 || feeds.list()[0].msgs.Load() != 1 {
		t.Fatalf("pre-garbage message lost: %d feeds", feeds.count())
	}
	waitFor(t, "feed close", func() bool { return feeds.list()[0].closed.Load() })
}

// TestStreamServerMessageSizeBound: a Length field above the
// configured per-message bound is a framing error, so a hostile or
// corrupt stream cannot make the collector buffer arbitrarily.
func TestStreamServerMessageSizeBound(t *testing.T) {
	srv, addr, _ := startStreamServer(t, Config{MaxFeeds: 1, MaxDatagram: 64})
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write(streamMsg('h', 100)); err != nil { // length 116 > 64
		t.Fatal(err)
	}
	waitFor(t, "oversize framing error", func() bool { return srv.Stats().FramingErrors == 1 })
	if st := srv.Stats(); st.StreamMessages != 0 {
		t.Fatalf("oversized message was framed: %+v", st)
	}
}

// TestStreamServerConnectionCap: connections past MaxConns are
// refused and counted — an open-socket flood cannot grow goroutines
// and decoder state without bound.
func TestStreamServerConnectionCap(t *testing.T) {
	srv, addr, _ := startStreamServer(t, Config{MaxFeeds: 1, MaxConns: 1})
	c1, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := c1.Write(streamMsg('1', 0)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first connection", func() bool { return srv.Stats().StreamConns == 1 })

	c2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	waitFor(t, "cap rejection", func() bool { return srv.Stats().StreamConnsRejected == 1 })
	c2.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c2.Read(make([]byte, 1)); err == nil {
		t.Fatal("over-cap connection left open")
	}
	st := srv.Stats()
	if st.StreamConns != 1 || st.StreamConnsTotal != 1 {
		t.Fatalf("cap leaked a connection: %+v", st)
	}

	// Closing the in-budget connection frees the slot for the next.
	c1.Close()
	waitFor(t, "slot freed", func() bool { return srv.Stats().StreamConns == 0 })
	c3, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if _, err := c3.Write(streamMsg('3', 0)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-teardown accept", func() bool { return srv.Stats().StreamConnsTotal == 2 })
}

// TestStreamServerIdleTimeout: a connection that goes silent past the
// idle deadline is reaped.
func TestStreamServerIdleTimeout(t *testing.T) {
	srv, addr, _ := startStreamServer(t, Config{MaxFeeds: 1, IdleTimeout: 50 * time.Millisecond})
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitFor(t, "idle connection reaped", func() bool { return srv.Stats().StreamConns == 0 })
	if n := srv.Stats().FramingErrors; n != 0 {
		t.Fatalf("idle close counted %d framing errors", n)
	}
}

// TestStreamServerCloseDrains: Close must deliver every framed
// message already queued, close the per-connection feeds, and leave
// no goroutines behind — the stream flavor of the UDP drain test.
func TestStreamServerCloseDrains(t *testing.T) {
	before := runtime.NumGoroutine()

	cfg := Config{Listeners: []Listener{{Addr: "127.0.0.1:0", Proto: ProtoIPFIX, Net: "tcp"}},
		MaxFeeds: 2, QueueLen: 4096}
	feeds := &stubRegistry{}
	srv, err := Listen(cfg, func() Feed {
		f := &streamStub{}
		feeds.add(f)
		return f
	})
	if err != nil {
		t.Fatal(err)
	}

	const n = 400
	c, err := net.Dial("tcp", srv.Addrs()[0].String())
	if err != nil {
		t.Fatal(err)
	}
	var stream []byte
	for i := 0; i < n; i++ {
		stream = append(stream, streamMsg('d', i%13)...)
	}
	writeChunked(t, c, stream, 1000)
	waitFor(t, "messages framed", func() bool { return srv.Stats().StreamMessages == n })
	srv.Close()
	c.Close()

	if got := feeds.list()[0].msgs.Load(); got != n {
		t.Fatalf("Close drained %d of %d queued messages", got, n)
	}
	if !feeds.list()[0].closed.Load() {
		t.Fatal("feed not closed on shutdown")
	}
	if st := srv.Stats(); st.StreamConns != 0 {
		t.Fatalf("connections survived Close: %+v", st)
	}

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after close", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestListenRejectsBadStreamListeners: impossible transport/protocol
// combinations fail at Listen, not at the first datagram.
func TestListenRejectsBadStreamListeners(t *testing.T) {
	newFeed := func() Feed { return &streamStub{} }
	for _, l := range []Listener{
		{Addr: "127.0.0.1:0", Proto: ProtoNetFlow, Net: "tcp"},
		{Addr: "127.0.0.1:0", Proto: ProtoAuto, Net: "tcp"},
		{Addr: "127.0.0.1:0", Net: "sctp"},
	} {
		if srv, err := Listen(Config{Listeners: []Listener{l}}, newFeed); err == nil {
			srv.Close()
			t.Errorf("Listen accepted %+v", l)
		}
	}
}

// TestAddrKeyTransportAware: source identity must survive any
// net.Addr implementation — an address type the collector has never
// seen must still yield distinct keys for distinct sources instead of
// collapsing onto one zero-valued key (the pre-TCP readLoop bug).
func TestAddrKeyTransportAware(t *testing.T) {
	u := &net.UDPAddr{IP: net.IPv4(192, 0, 2, 7), Port: 9}
	tc := &net.TCPAddr{IP: net.IPv4(192, 0, 2, 7), Port: 9}
	uSrc, uRaw := addrKey(u)
	tSrc, tRaw := addrKey(tc)
	if uRaw != "" || tRaw != "" || uSrc != tSrc {
		t.Fatalf("UDP/TCP addrs: %v/%q vs %v/%q", uSrc, uRaw, tSrc, tRaw)
	}
	if uSrc.Port() != 9 || !uSrc.Addr().IsValid() {
		t.Fatalf("UDP addr key = %v", uSrc)
	}

	a, aRaw := addrKey(fakeAddr{"unixgram", "/run/a.sock"})
	b, bRaw := addrKey(fakeAddr{"unixgram", "/run/b.sock"})
	if aRaw == "" || bRaw == "" {
		t.Fatal("exotic addrs produced empty raw identities")
	}
	if a == b && aRaw == bRaw {
		t.Fatal("distinct exotic sources collapsed onto one key")
	}
	if _, raw := addrKey(nil); raw == "" {
		t.Fatal("nil addr collapsed onto the zero key")
	}
	// A string-parsable non-UDP/TCP addr keeps its AddrPort identity.
	if src, raw := addrKey(fakeAddr{"ip", "198.51.100.4:77"}); raw != "" || src.Port() != 77 {
		t.Fatalf("parsable addr: %v/%q", src, raw)
	}
}

type fakeAddr struct{ network, str string }

func (a fakeAddr) Network() string { return a.network }
func (a fakeAddr) String() string  { return a.str }

// FuzzStreamFramer hammers the framer with arbitrary byte streams:
// it must never panic, never return a frame that violates the IPFIX
// header invariants, never corrupt framed bytes, and only fail with
// one of its three documented error classes.
func FuzzStreamFramer(f *testing.F) {
	f.Add([]byte{})
	f.Add(streamMsg('f', 0))
	f.Add(append(streamMsg('f', 5), streamMsg('g', 0)...))
	f.Add([]byte{0, 10, 0, 16})
	f.Add([]byte{0, 9, 0, 16, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		buf := make([]byte, 65535)
		consumed := 0
		for {
			n, err := nextIPFIXMessage(r, buf, 65535)
			if err != nil {
				if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, errFraming) {
					t.Fatalf("unexpected error class: %v", err)
				}
				return
			}
			if n < ipfixHeaderLen || n > 65535 {
				t.Fatalf("framed length %d out of bounds", n)
			}
			if binary.BigEndian.Uint16(buf[0:2]) != ipfixStreamVersion {
				t.Fatalf("framed message with version %d", binary.BigEndian.Uint16(buf[0:2]))
			}
			if int(binary.BigEndian.Uint16(buf[2:4])) != n {
				t.Fatalf("framed %d bytes but header says %d", n, binary.BigEndian.Uint16(buf[2:4]))
			}
			if !bytes.Equal(buf[:n], data[consumed:consumed+n]) {
				t.Fatal("framer corrupted message bytes")
			}
			consumed += n
		}
	})
}
