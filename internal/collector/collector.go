// Package collector is the socket layer of the wire-fed detector: it
// binds UDP listeners for NetFlow v9 / IPFIX exporters — plus TCP
// stream listeners for IPFIX (RFC 7011 §10.4) — and drives the wire
// messages into per-source ingestion feeds, the deployment shape the
// paper's §6 vantage points imply (flow exporters at an ISP or IXP
// streaming to a central collector).
//
// Architecture (see DESIGN.md for the full three-layer picture):
//
//   - one read-loop goroutine per UDP socket, reading into recycled
//     buffers — the loop never decodes, so a slow feed cannot stall
//     the socket;
//   - one accept loop per TCP listener and one read loop per accepted
//     connection, framing IPFIX messages out of the byte stream by
//     the header's Length field (stream.go) — NetFlow v9 has no
//     length field and stays UDP-only;
//   - a sticky source→lane assignment with per-source decoder state:
//     all messages from one exporter source (a UDP remote address, or
//     one TCP connection) land on the same decode lane, and every
//     source gets its own Feed handle — template caches, sequence
//     anchors, and per-subscriber ordering can never be corrupted by
//     another exporter, even one whose self-chosen source/domain IDs
//     collide. TCP feeds live exactly as long as their connection and
//     are torn down on disconnect;
//   - an adaptive fan-in controller (fanin.go) that scales how many
//     feeds accept new sources with the observed record rate;
//   - per-feed transport metrics (Stats, ServeMetrics) so operators
//     can see drops, gaps, and queue depth per feed, plus
//     connection-level stream counters.
//
// The package knows nothing about detection: it drives any Feed
// implementation. The root haystack package adapts Detector feeds to
// this interface.
package collector

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"net"
	"net/netip"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/flow"
)

// FeedStats are the transport-health counters one ingestion feed
// exposes. Implementations must make Stats safe to call while the
// feed is being driven (atomic counters).
//
// haystack:metrics-struct — every exported field must be aggregated by
// a haystack:metrics-export function (enforced by haystacklint).
type FeedStats struct {
	// Records counts decoded flow records delivered downstream.
	Records uint64
	// Dropped counts data sets skipped because their template had not
	// been seen yet (untemplated data over UDP).
	Dropped uint64
	// Gaps counts exporter sequence discontinuities (lost or
	// reordered transport).
	Gaps uint64
}

// Feed is one wire-format ingestion handle. The server drives each
// feed from exactly one worker goroutine; Stats may be read from
// other goroutines at any time.
type Feed interface {
	FeedNetFlow(msg []byte) error
	FeedIPFIX(msg []byte) error
	Stats() FeedStats
	Close()
}

// ArenaFeed is the optional batch extension of Feed: a feed that can
// decode a wire message into a caller-owned record arena and observe
// the whole batch before returning. Lanes probe for it once per
// datagram and hand over their per-lane arena (recycled alongside the
// receive buffers, one arena per lane regardless of how many sources
// the lane carries), so a decode allocates nothing in steady state.
// The feed gets the arena already Reset, may leave anything in it,
// and must not retain it past the call.
type ArenaFeed interface {
	FeedNetFlowBatch(msg []byte, arena *flow.Batch) error
	FeedIPFIXBatch(msg []byte, arena *flow.Batch) error
}

// Proto selects the wire protocol of a listener.
type Proto uint8

const (
	// ProtoAuto sniffs each datagram by its version field (9 →
	// NetFlow v9, 10 → IPFIX), so one socket may serve both kinds of
	// exporter.
	ProtoAuto Proto = iota
	ProtoNetFlow
	ProtoIPFIX
)

func (p Proto) String() string {
	switch p {
	case ProtoNetFlow:
		return "netflow"
	case ProtoIPFIX:
		return "ipfix"
	default:
		return "auto"
	}
}

// sniff classifies a datagram by its leading version field. ProtoAuto
// means unrecognized.
func sniff(b []byte) Proto {
	if len(b) < 2 {
		return ProtoAuto
	}
	switch binary.BigEndian.Uint16(b) {
	case 9:
		return ProtoNetFlow
	case 10:
		return ProtoIPFIX
	}
	return ProtoAuto
}

// Listener is one socket to bind: a UDP datagram socket (the default)
// or a TCP stream listener.
type Listener struct {
	// Addr is the listen address (host:port; port 0 binds an
	// ephemeral port, reported by Server.Addrs).
	Addr string
	// Proto fixes the socket's wire protocol. On UDP the zero value
	// (ProtoAuto) sniffs per datagram; exporters conventionally use
	// port 2055 for NetFlow v9 and 4739 for IPFIX, but sniffing makes
	// the convention optional. TCP listeners must pin ProtoIPFIX —
	// only IPFIX carries the message-length field that frames a byte
	// stream (RFC 7011 §3.1); NetFlow v9 (RFC 3954) has none and is
	// UDP-only.
	Proto Proto
	// Net selects the transport: "udp" (the default; "" means udp) or
	// "tcp" for RFC 7011 stream transport.
	Net string
}

// validate normalizes the transport and rejects impossible
// transport/protocol combinations.
func (l Listener) validate() (Listener, error) {
	switch l.Net {
	case "", "udp":
		l.Net = "udp"
	case "tcp":
		if l.Proto != ProtoIPFIX {
			return Listener{}, fmt.Errorf("collector: tcp listener %s must pin ipfix: NetFlow v9 has no message length field to frame a stream (protocol %v)", l.Addr, l.Proto)
		}
	default:
		return Listener{}, fmt.Errorf("collector: unknown transport %q (want udp or tcp)", l.Net)
	}
	if l.Addr == "" {
		return Listener{}, errors.New("collector: empty listen address")
	}
	return l, nil
}

// ParseListener parses an operator-facing listener spec:
//
//	host:port                      UDP, auto-sniffed
//	proto@host:port                UDP; proto ∈ netflow, ipfix, auto
//	udp+proto@host:port            same, transport spelled out
//	tcp+ipfix@host:port            TCP stream transport (RFC 7011)
//	tcp@host:port                  shorthand for tcp+ipfix
//
// NetFlow v9 is rejected on tcp at parse time: its messages carry no
// length field, so a byte stream cannot be framed.
func ParseListener(s string) (Listener, error) {
	l := Listener{Addr: s, Net: "udp"}
	if spec, addr, ok := strings.Cut(s, "@"); ok {
		l.Addr = addr
		proto := spec
		if transport, p, ok := strings.Cut(spec, "+"); ok {
			proto = p
			switch transport {
			case "udp":
			case "tcp":
				l.Net = "tcp"
			default:
				return Listener{}, fmt.Errorf("collector: unknown transport %q (want udp or tcp)", transport)
			}
		} else if spec == "tcp" || spec == "udp" {
			// Bare transport: "tcp@host:port" means tcp+ipfix (the
			// only protocol a stream can frame), "udp@…" means auto.
			l.Net, proto = spec, ""
			if spec == "tcp" {
				l.Proto = ProtoIPFIX
			}
		}
		switch proto {
		case "netflow":
			l.Proto = ProtoNetFlow
		case "ipfix":
			l.Proto = ProtoIPFIX
		case "auto":
			l.Proto = ProtoAuto
		case "":
		default:
			return Listener{}, fmt.Errorf("collector: unknown protocol %q (want netflow, ipfix, or auto)", proto)
		}
	}
	return l.validate()
}

// Config sizes a Server. Zero fields take the documented defaults.
type Config struct {
	// Listeners are the sockets to bind (UDP datagram or TCP stream);
	// at least one is required.
	Listeners []Listener
	// MaxFeeds caps the fan-in: the most ingestion feeds the adaptive
	// controller may open. Callers usually cap this at the pipeline
	// shard count. Default 1.
	MaxFeeds int
	// MinFeeds floors the fan-in (default 1).
	MinFeeds int
	// QueueLen bounds each feed's datagram backlog; when a feed's
	// queue is full newly arrived datagrams for it are dropped and
	// counted, never blocking the socket loop. Default 256.
	QueueLen int
	// MaxDatagram sizes the receive buffers and bounds one wire
	// message on either transport (default 65535, the UDP maximum and
	// the largest length an IPFIX header can declare; exporters keep
	// well under path MTU in practice). A TCP message whose Length
	// field exceeds it is a framing error and kills the connection.
	MaxDatagram int
	// ReadBuffer, when positive, requests SO_RCVBUF bytes on each
	// socket — the kernel-side cushion against ingest bursts.
	ReadBuffer int
	// IdleTimeout is the per-connection read deadline on TCP stream
	// listeners: a connection delivering no bytes for this long is
	// closed (and its feed torn down), so half-dead exporters cannot
	// pin feeds forever. Default 10m — comfortably above common IPFIX
	// template-refresh intervals; negative disables the deadline.
	IdleTimeout time.Duration
	// MaxConns bounds concurrently open TCP stream connections across
	// all stream listeners — every open connection costs a goroutine
	// and (once it speaks) decoder state, so an unbounded accept loop
	// would hand a hostile peer the collector's memory. Connections
	// accepted past the cap are closed immediately and counted
	// (stream_conns_rejected); the cap is approximate under
	// concurrent accept loops. Default 1024; negative = unlimited.
	MaxConns int
	// RatePerFeed is the records/sec one feed is provisioned for
	// before the controller grows the pool (default
	// DefaultRatePerFeed).
	RatePerFeed float64
	// Tick is the fan-in controller's sampling interval (default 1s).
	Tick time.Duration
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.MaxFeeds < 1 {
		out.MaxFeeds = 1
	}
	if out.MinFeeds < 1 {
		out.MinFeeds = 1
	}
	if out.MinFeeds > out.MaxFeeds {
		out.MinFeeds = out.MaxFeeds
	}
	if out.QueueLen < 1 {
		out.QueueLen = 256
	}
	if out.MaxDatagram < 1 {
		out.MaxDatagram = 65535
	}
	if out.MaxDatagram < ipfixHeaderLen {
		// No flow protocol fits a smaller message, and the stream
		// framer needs room for at least one IPFIX header.
		out.MaxDatagram = ipfixHeaderLen
	}
	if out.RatePerFeed <= 0 {
		out.RatePerFeed = DefaultRatePerFeed
	}
	if out.Tick <= 0 {
		out.Tick = time.Second
	}
	if out.IdleTimeout == 0 {
		out.IdleTimeout = 10 * time.Minute
	}
	if out.MaxConns == 0 {
		out.MaxConns = 1024
	}
	return out
}

// datagram is one received wire message in a recycled buffer — a UDP
// payload, an IPFIX message framed out of a TCP stream, or (with
// closeSource set) the tear-down marker for a departed stream source.
type datagram struct {
	buf   []byte // full-capacity backing buffer, returned to the pool
	n     int    // payload length
	proto Proto  // listener protocol (ProtoAuto: sniff at decode time)
	src   sourceKey
	// closeSource marks a control message: the source has
	// disconnected, close and forget its feed. buf is nil.
	closeSource bool
}

type socket struct {
	idx   int
	proto Proto
	pc    net.PacketConn
	// udp is pc when the socket is a plain UDP socket, enabling the
	// ReadFromUDPAddrPort fast path: ReadFrom allocates a *net.UDPAddr
	// per datagram, ReadFromUDPAddrPort returns a value netip.AddrPort.
	udp *net.UDPConn
}

// sourceKey identifies one exporter stream: the listener it arrived
// on plus a transport-specific source identity.
type sourceKey struct {
	sock int
	// src is the remote address for address-identified transports
	// (UDP). raw carries any net.Addr the transport cannot express as
	// an AddrPort, so unrelated exotic sources never collapse onto one
	// zero-valued key.
	src netip.AddrPort
	raw string
	// conn makes stream sources connection-identified: each accepted
	// TCP connection is its own source (serial > 0), so a reconnecting
	// exporter — even from the same remote port — gets fresh decoder
	// state rather than inheriting a dead connection's.
	conn uint64
}

// addrKey renders any net.Addr as a sourceKey address identity,
// transport-aware: UDP and TCP addresses map to their AddrPort; any
// other implementation keeps its full string form so two distinct
// sources can never share a key.
func addrKey(a net.Addr) (src netip.AddrPort, raw string) {
	switch t := a.(type) {
	case *net.UDPAddr:
		return t.AddrPort(), ""
	case *net.TCPAddr:
		return t.AddrPort(), ""
	case nil:
		return netip.AddrPort{}, "<nil>"
	}
	if ap, err := netip.ParseAddrPort(a.String()); err == nil {
		return ap, ""
	}
	return netip.AddrPort{}, a.Network() + "/" + a.String()
}

// worker is one decode lane: a goroutine draining a bounded queue
// into per-source Feed handles. Every exporter source assigned to the
// lane gets its own Feed (decoder pair + pipeline producer), so two
// exporters whose self-chosen source/domain IDs collide can never
// poison each other's template cache or sequence anchor.
type worker struct {
	idx     int
	ch      chan datagram
	started atomic.Bool

	// arena is the lane's record arena: every ArenaFeed decode on this
	// lane reuses it (reset-don't-free), so per-datagram decode costs
	// no allocation once the arena has grown to the working set. Owned
	// by the lane goroutine.
	arena *flow.Batch

	// feeds is written only by the worker goroutine (under mu, so
	// metrics readers can iterate a consistent view); the worker's
	// own lock-free reads race with nothing.
	mu    sync.Mutex
	feeds map[sourceKey]Feed

	sources   atomic.Int64  // sticky exporter sources assigned here
	enqueued  atomic.Uint64 // messages accepted onto ch (incl. control)
	processed atomic.Uint64 // messages handled by the lane (incl. control)
	controls  atomic.Uint64 // closeSource control messages handled
	dropped   atomic.Uint64 // datagrams lost to a full queue
	errors    atomic.Uint64 // datagrams the decoders rejected (or unsniffable)

	// retired* accumulate the final FeedStats of torn-down stream
	// sources, so lane/server record counts stay cumulative across
	// exporter disconnects — the control loop's rate sampling differs
	// uint64 totals per tick, and a total that shrank at teardown
	// would wrap into an absurd positive rate and slam the fan-in to
	// max.
	retiredRecords atomic.Uint64
	retiredDropped atomic.Uint64
	retiredGaps    atomic.Uint64
}

// feedList snapshots the lane's per-source feeds for metrics readers.
func (w *worker) feedList() []Feed {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]Feed, 0, len(w.feeds))
	for _, f := range w.feeds {
		out = append(out, f)
	}
	return out
}

// Server binds the configured sockets and fans wire messages into
// feeds.
type Server struct {
	cfg     Config
	newFeed func() Feed

	socks   []*socket
	streams []*streamListener
	addrs   []net.Addr // bound address per configured listener
	workers []*worker
	free    chan []byte // recycled receive buffers

	// active is the fan-in target: workers[0:active] accept new
	// sources. Updated by the control loop, read by the dispatchers.
	active atomic.Int32
	ewma   atomic.Uint64 // controller EWMA, math.Float64bits

	assignMu sync.Mutex // guards assignment misses and worker starts
	assign   sync.Map   // sourceKey → *worker

	datagrams  atomic.Uint64 // received across all UDP sockets
	bytes      atomic.Uint64 // UDP bytes received
	dropped    atomic.Uint64 // queue-full drops across all workers
	readErrors atomic.Uint64 // unexpected socket/accept errors (loop survives)

	// Stream-transport counters (stream.go).
	connSerial    atomic.Uint64 // next connection-source serial
	streamConns   atomic.Int64  // connections open right now
	acceptedConns atomic.Uint64 // connections accepted, lifetime
	rejectedConns atomic.Uint64 // connections refused at the MaxConns cap
	streamMsgs    atomic.Uint64 // IPFIX messages framed off streams
	streamBytes   atomic.Uint64 // stream payload bytes framed
	framingErrors atomic.Uint64 // desynced/oversized/mistyped frames

	connMu sync.Mutex // guards conns
	conns  map[net.Conn]struct{}

	readers sync.WaitGroup // socket read loops, accept loops, conn loops
	tasks   sync.WaitGroup // worker + control goroutines
	done    chan struct{}  // closed to stop the control loop
	closed  sync.Once
}

// Listen binds every configured socket and starts ingesting
// immediately. newFeed is called once per exporter source the fan-in
// opens — for the haystack Detector it returns Detector.NewFeed
// handles. Callers stop the server with Close (or Serve with a
// context).
func Listen(cfg Config, newFeed func() Feed) (*Server, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Listeners) == 0 {
		return nil, errors.New("collector: no listeners configured")
	}
	if newFeed == nil {
		return nil, errors.New("collector: nil feed constructor")
	}
	s := &Server{
		cfg:     cfg,
		newFeed: newFeed,
		free:    make(chan []byte, cfg.MaxFeeds*cfg.QueueLen+2*len(cfg.Listeners)),
		conns:   make(map[net.Conn]struct{}),
		done:    make(chan struct{}), // haystack:unbounded close-only shutdown broadcast; never carries data
		addrs:   make([]net.Addr, len(cfg.Listeners)),
	}
	s.active.Store(int32(cfg.MinFeeds))
	s.workers = make([]*worker, cfg.MaxFeeds)
	for i := range s.workers {
		s.workers[i] = &worker{
			idx:   i,
			ch:    make(chan datagram, cfg.QueueLen),
			feeds: make(map[sourceKey]Feed),
			arena: flow.NewBatch(512),
		}
	}
	closeAll := func() {
		for _, sk := range s.socks {
			sk.pc.Close()
		}
		for _, sl := range s.streams {
			sl.ln.Close()
		}
	}
	for i, l := range cfg.Listeners {
		l, err := l.validate()
		if err != nil {
			closeAll()
			return nil, err
		}
		if l.Net == "tcp" {
			ln, err := net.Listen("tcp", l.Addr)
			if err != nil {
				closeAll()
				return nil, fmt.Errorf("collector: listen tcp %s: %w", l.Addr, err)
			}
			s.streams = append(s.streams, &streamListener{idx: i, ln: ln})
			s.addrs[i] = ln.Addr()
			continue
		}
		pc, err := net.ListenPacket("udp", l.Addr)
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("collector: listen %s: %w", l.Addr, err)
		}
		if cfg.ReadBuffer > 0 {
			if c, ok := pc.(*net.UDPConn); ok {
				c.SetReadBuffer(cfg.ReadBuffer) // best effort; kernel may clamp
			}
		}
		udp, _ := pc.(*net.UDPConn)
		s.socks = append(s.socks, &socket{idx: i, proto: l.Proto, pc: pc, udp: udp})
		s.addrs[i] = pc.LocalAddr()
	}
	for _, sk := range s.socks {
		s.readers.Add(1)
		go s.readLoop(sk)
	}
	for _, sl := range s.streams {
		s.readers.Add(1)
		go s.acceptLoop(sl)
	}
	s.tasks.Add(1)
	go s.controlLoop()
	return s, nil
}

// Addrs returns the bound address of every listener, in configuration
// order — the way to discover ephemeral ports after binding ":0".
func (s *Server) Addrs() []net.Addr {
	return append([]net.Addr(nil), s.addrs...)
}

// Serve blocks until ctx is done, then shuts the server down
// gracefully (Close): a cancelled listen is the normal way to stop.
func (s *Server) Serve(ctx context.Context) error {
	<-ctx.Done()
	return s.Close()
}

// Close stops the server: sockets, stream listeners, and open
// connections are closed first, then every queued message is drained
// through its feed, feeds are closed, and all goroutines exit. Safe
// to call multiple times; concurrent callers block until the shutdown
// completes.
func (s *Server) Close() error {
	s.closed.Do(func() {
		close(s.done)
		for _, sk := range s.socks {
			sk.pc.Close()
		}
		for _, sl := range s.streams {
			sl.ln.Close()
		}
		s.connMu.Lock()
		open := make([]net.Conn, 0, len(s.conns))
		for c := range s.conns {
			open = append(open, c)
		}
		s.connMu.Unlock()
		for _, c := range open {
			c.Close()
		}
		s.readers.Wait() // no dispatcher is running past this point
		for _, w := range s.workers {
			if w.started.Load() {
				close(w.ch)
			}
		}
		s.tasks.Wait()
	})
	return nil
}

// Sync blocks until every datagram enqueued before the call has been
// decoded and handed to its feed. It does not quiesce the sockets —
// datagrams arriving during the wait are not covered — so callers
// wanting exact results stop their exporters (or Close) first.
func (s *Server) Sync() {
	targets := make([]uint64, len(s.workers))
	for i, w := range s.workers {
		targets[i] = w.enqueued.Load()
	}
	for i, w := range s.workers {
		for w.processed.Load() < targets[i] {
			time.Sleep(100 * time.Microsecond)
		}
	}
}

// getBuf takes a datagram buffer from the recycle ring, growing the
// ring only when it runs dry.
//
// haystack:hotpath — runs once per datagram.
func (s *Server) getBuf() []byte {
	select {
	case b := <-s.free:
		return b
	default:
		return make([]byte, s.cfg.MaxDatagram)
	}
}

// putBuf returns a buffer to the recycle ring, dropping it when the
// ring is full.
//
// haystack:hotpath — runs once per datagram.
func (s *Server) putBuf(b []byte) {
	select {
	case s.free <- b:
	default: // recycle ring full; let it be collected
	}
}

// readLoop is the per-socket hot path: read, count, route, hand off.
// It never decodes and never blocks on a feed.
//
// haystack:hotpath — loops once per datagram (time.Sleep appears only
// on the persistent-read-error path and is deliberately not banned).
func (s *Server) readLoop(sk *socket) {
	defer s.readers.Done()
	for {
		buf := s.getBuf()
		var (
			n   int
			err error
			key = sourceKey{sock: sk.idx}
		)
		if sk.udp != nil {
			// Fast path: no *net.UDPAddr allocated per datagram.
			n, key.src, err = sk.udp.ReadFromUDPAddrPort(buf)
		} else {
			var addr net.Addr
			n, addr, err = sk.pc.ReadFrom(buf)
			key.src, key.raw = addrKey(addr)
		}
		if err != nil {
			s.putBuf(buf)
			if errors.Is(err, net.ErrClosed) {
				return // shutdown
			}
			select {
			case <-s.done:
				return
			default:
			}
			// Unexpected read error on a connectionless socket:
			// count it visibly and keep the listener alive, pacing
			// so a persistent error cannot hot-spin the loop.
			s.readErrors.Add(1)
			time.Sleep(time.Millisecond)
			continue
		}
		s.datagrams.Add(1)
		s.bytes.Add(uint64(n))
		w := s.workerFor(key)
		select {
		case w.ch <- datagram{buf: buf, n: n, proto: sk.proto, src: key}:
			w.enqueued.Add(1)
		default:
			// Full queue: drop like the kernel would if nobody read
			// the socket, but visibly.
			w.dropped.Add(1)
			s.dropped.Add(1)
			s.putBuf(buf)
		}
	}
}

// workerFor resolves the sticky source→lane assignment, creating it
// on first sight of a source. Assignments are sticky for the life of
// the server: moving a source would abandon its template cache and
// sequence anchor and reorder its subscribers' records. The fan-in
// target only shapes where *new* sources land.
func (s *Server) workerFor(key sourceKey) *worker {
	if v, ok := s.assign.Load(key); ok {
		return v.(*worker)
	}
	s.assignMu.Lock()
	defer s.assignMu.Unlock()
	if v, ok := s.assign.Load(key); ok {
		return v.(*worker)
	}
	// Least-loaded (by assigned sources) among the active prefix.
	n := int(s.active.Load())
	if n > len(s.workers) {
		n = len(s.workers)
	}
	w := s.workers[0]
	for _, cand := range s.workers[1:n] {
		if cand.sources.Load() < w.sources.Load() {
			w = cand
		}
	}
	s.startWorker(w)
	w.sources.Add(1)
	s.assign.Store(key, w)
	return w
}

// startWorker lazily launches the lane's decode goroutine. Caller
// holds assignMu.
func (s *Server) startWorker(w *worker) {
	if w.started.Load() {
		return
	}
	s.tasks.Add(1)
	go func() {
		defer s.tasks.Done()
		for d := range w.ch {
			s.decode(w, d)
		}
		for _, f := range w.feedList() {
			f.Close()
		}
	}()
	w.started.Store(true)
}

// decode runs a lane's per-datagram work: sniff, feed, count.
//
// haystack:hotpath — runs once per datagram on the lane goroutine.
func (s *Server) decode(w *worker, d datagram) {
	if d.closeSource {
		// Stream source disconnected: close its feed and release the
		// source slot so the lane's decoder state does not accumulate
		// across exporter reconnects. The feed may never have
		// materialized (every message dropped at a full queue); the
		// assignment exists either way — connLoop only announces
		// sources it routed.
		if f := w.feeds[d.src]; f != nil {
			f.Close()
			fs := f.Stats()
			// Remove the feed before crediting its totals to the
			// retired counters: a concurrent records() read may then
			// transiently undercount (harmless dip), but never
			// double-count — an inflated total would make the control
			// loop's next uint64 rate difference wrap hugely positive
			// and slam the fan-in to max.
			w.mu.Lock()
			delete(w.feeds, d.src)
			w.mu.Unlock()
			w.retiredRecords.Add(fs.Records)
			w.retiredDropped.Add(fs.Dropped)
			w.retiredGaps.Add(fs.Gaps)
		}
		w.sources.Add(-1)
		s.assign.Delete(d.src)
		// processed before controls: metrics readers load controls
		// first and subtract it from processed, which stays
		// non-negative only if every control visible in controls has
		// already been counted in processed.
		w.processed.Add(1)
		w.controls.Add(1)
		return
	}
	// d.n is the datagram's read count into d.buf, so it never exceeds
	// the buffer in practice; the clamp keeps the slice provably in
	// bounds even if a future producer breaks that invariant.
	n := d.n
	if n > len(d.buf) {
		n = len(d.buf)
	}
	msg := d.buf[:n]
	proto := d.proto
	if proto == ProtoAuto {
		proto = sniff(msg)
	}
	if proto == ProtoAuto {
		// Unclassifiable garbage: count it without allocating decoder
		// state for the source.
		w.errors.Add(1)
		w.processed.Add(1)
		s.putBuf(d.buf)
		return
	}
	feed := w.feeds[d.src] // lock-free: only this goroutine writes
	if feed == nil {
		feed = s.newFeed()
		w.mu.Lock()
		w.feeds[d.src] = feed
		w.mu.Unlock()
	}
	var err error
	if af, ok := feed.(ArenaFeed); ok {
		// Batch hot path: decode the whole message into the lane's
		// recycled arena; the feed observes the batch before returning.
		w.arena.Reset()
		if proto == ProtoNetFlow {
			err = af.FeedNetFlowBatch(msg, w.arena)
		} else {
			err = af.FeedIPFIXBatch(msg, w.arena)
		}
	} else if proto == ProtoNetFlow {
		err = feed.FeedNetFlow(msg)
	} else {
		err = feed.FeedIPFIX(msg)
	}
	if err != nil {
		w.errors.Add(1)
	}
	w.processed.Add(1)
	s.putBuf(d.buf)
}

// controlLoop samples the aggregate record rate and retargets the
// fan-in. It owns the controller state; everyone else reads the
// published active target and EWMA.
func (s *Server) controlLoop() {
	defer s.tasks.Done()
	ctrl := newController(s.cfg.MinFeeds, s.cfg.MaxFeeds, s.cfg.RatePerFeed)
	t := time.NewTicker(s.cfg.Tick)
	defer t.Stop()
	last := s.records()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
			// records() can dip transiently while a stream source's
			// totals move from its live feed to the retired counters;
			// clamp to the high-water mark so the unsigned difference
			// can never wrap into an absurd rate.
			cur := s.records()
			var rate float64
			if cur > last {
				rate = float64(cur-last) / s.cfg.Tick.Seconds()
				last = cur
			}
			s.active.Store(int32(ctrl.step(rate)))
			s.ewma.Store(math.Float64bits(ctrl.ewma))
		}
	}
}

// records sums decoded records across all per-source feeds, live and
// retired — the total is monotonic, which the control loop's
// per-tick differencing depends on.
func (s *Server) records() uint64 {
	var n uint64
	for _, w := range s.workers {
		if !w.started.Load() {
			continue
		}
		n += w.retiredRecords.Load()
		for _, f := range w.feedList() {
			n += f.Stats().Records
		}
	}
	return n
}
