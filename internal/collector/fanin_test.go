package collector

import "testing"

// TestFanInScalesUpImmediately: a rate burst above capacity must grow
// the active set without waiting out hysteresis.
func TestFanInScalesUpImmediately(t *testing.T) {
	c := newController(1, 8, 1000)
	if c.active != 1 {
		t.Fatalf("initial active = %d", c.active)
	}
	// The first non-zero sample seeds the EWMA outright (no cold-start
	// smoothing): 20 000 rec/s wants 20 feeds, capped at 8.
	if got := c.step(20_000); got != 8 {
		t.Fatalf("active after burst = %d, want cap 8", got)
	}
}

// TestFanInColdStartSeeded: the EWMA starts at the first non-zero
// sample instead of warming up from zero — a full-rate burst at
// startup must reach its target on the very first tick. Quiet ticks
// before the first sample must not count as samples.
func TestFanInColdStartSeeded(t *testing.T) {
	c := newController(1, 8, 1000)
	for i := 0; i < 5; i++ {
		if got := c.step(0); got != 1 {
			t.Fatalf("active = %d during pre-traffic silence, want 1", got)
		}
	}
	if c.seeded {
		t.Fatal("zero samples seeded the EWMA")
	}
	if got := c.step(4500); got != 5 {
		t.Fatalf("first sample scaled to %d feeds, want 5 (ewma %.0f)", got, c.ewma)
	}
	if c.ewma != 4500 {
		t.Fatalf("ewma = %.0f after seeding, want the raw sample 4500", c.ewma)
	}
	// After the seed, samples smooth normally again.
	if got := c.step(1000); got != 5 {
		t.Fatalf("active = %d one sample after the seed, want 5", got)
	}
	if want := 0.3*1000 + 0.7*4500; c.ewma != want {
		t.Fatalf("ewma = %.0f, want smoothed %.0f", c.ewma, want)
	}
}

func TestFanInCappedAtMax(t *testing.T) {
	c := newController(1, 4, 1000)
	for i := 0; i < 10; i++ {
		c.step(1e9)
	}
	if c.active != 4 {
		t.Fatalf("active = %d, want cap 4", c.active)
	}
}

// TestFanInScaleDownHysteresis: shrinking requires the rate to sit
// below the low-water band for downTicks consecutive ticks; a
// momentary lull must not shed a feed.
func TestFanInScaleDownHysteresis(t *testing.T) {
	c := newController(1, 8, 1000)
	for i := 0; i < 20; i++ {
		c.step(3500) // settle EWMA at 3500 → 4 feeds
	}
	if c.active != 4 {
		t.Fatalf("settled active = %d, want 4", c.active)
	}

	// A single quiet tick: EWMA dips but not for long enough.
	c.step(0)
	if c.active != 4 {
		t.Fatalf("active shrank after one quiet tick: %d", c.active)
	}
	// Recovery resets the countdown.
	for i := 0; i < 5; i++ {
		c.step(3500)
	}
	if c.active != 4 {
		t.Fatalf("active = %d after recovery, want 4", c.active)
	}

	// Sustained silence walks it back down to the floor, one step per
	// downTicks window.
	for i := 0; i < 100; i++ {
		c.step(0)
	}
	if c.active != 1 {
		t.Fatalf("active = %d after sustained silence, want 1", c.active)
	}
}

// TestFanInHoldsInsideBand: rates between the low-water mark and
// capacity leave the state untouched (the sticky band).
func TestFanInHoldsInsideBand(t *testing.T) {
	c := newController(1, 8, 1000)
	for i := 0; i < 30; i++ {
		c.step(2500) // EWMA → 2500, needs 3 feeds
	}
	if c.active != 3 {
		t.Fatalf("settled active = %d, want 3", c.active)
	}
	// 2500 > low·(3-1)·1000 = 1000 and < 3·1000: hold forever.
	for i := 0; i < 50; i++ {
		if got := c.step(2500); got != 3 {
			t.Fatalf("active left the sticky band: %d", got)
		}
	}
}

func TestFanInRespectsMin(t *testing.T) {
	c := newController(3, 8, 1000)
	for i := 0; i < 100; i++ {
		c.step(0)
	}
	if c.active != 3 {
		t.Fatalf("active = %d, want floor 3", c.active)
	}
}
