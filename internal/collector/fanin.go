package collector

// Adaptive feed fan-in: the controller decides how many collector
// feeds are eligible to receive *new* exporter sources, scaling with
// the observed record rate. It is a pure state machine — the Server
// drives it from the control-loop ticker and tests drive it directly.
//
// States are the active-feed counts 1..max. Transitions per tick, on
// the EWMA-smoothed records/sec rate R with per-feed capacity C:
//
//	scale up   active → active+1  when R > active·C
//	           (immediate, repeated until R fits — ingest must not
//	           wait out a ramp)
//	scale down active → active-1  when R < low·(active-1)·C for
//	           downTicks consecutive ticks (hysteresis: a momentary
//	           lull must not thrash assignments)
//
// The band between low·(active-1)·C and active·C is deliberately
// sticky: within it the controller holds its state.
type controller struct {
	min, max    int
	ratePerFeed float64 // records/sec one feed is provisioned for (C)
	alpha       float64 // EWMA smoothing weight for the newest sample
	low         float64 // scale-down hysteresis fraction of (active-1)·C
	downTicks   int     // consecutive quiet ticks required to shrink

	ewma        float64
	seeded      bool // ewma holds a real sample, not the zero cold start
	active      int
	pendingDown int
}

// Controller defaults; Config overrides flow in through newController.
const (
	// DefaultRatePerFeed is the records/sec one feed is sized for
	// before the controller grows the pool. One feed comfortably
	// decodes far more on loopback; the default leaves headroom for
	// template-heavy streams and the pipeline producer hand-off.
	DefaultRatePerFeed = 50_000
	defaultAlpha       = 0.3
	defaultLow         = 0.5
	defaultDownTicks   = 5
)

func newController(min, max int, ratePerFeed float64) *controller {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	if ratePerFeed <= 0 {
		ratePerFeed = DefaultRatePerFeed
	}
	return &controller{
		min: min, max: max,
		ratePerFeed: ratePerFeed,
		alpha:       defaultAlpha,
		low:         defaultLow,
		downTicks:   defaultDownTicks,
		active:      min,
	}
}

// step folds one rate sample (records/sec since the previous tick)
// into the EWMA and returns the new active-feed target. The first
// non-zero sample seeds the EWMA outright: smoothing a full-rate
// startup burst against the zero cold start would make ingest wait
// out several warm-up ticks before the pool scales.
func (c *controller) step(rate float64) int {
	if !c.seeded && rate > 0 {
		c.ewma = rate
		c.seeded = true
	} else {
		c.ewma = c.alpha*rate + (1-c.alpha)*c.ewma
	}
	for c.active < c.max && c.ewma > float64(c.active)*c.ratePerFeed {
		c.active++
		c.pendingDown = 0
	}
	if c.active > c.min && c.ewma < c.low*float64(c.active-1)*c.ratePerFeed {
		c.pendingDown++
		if c.pendingDown >= c.downTicks {
			c.active--
			c.pendingDown = 0
		}
	} else {
		c.pendingDown = 0
	}
	return c.active
}
