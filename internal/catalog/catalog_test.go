package catalog

import (
	"testing"

	"repro/internal/hosting"
)

// The catalog is hand-balanced to the paper's §4 census; these tests
// pin every number.

func TestTable1Counts(t *testing.T) {
	c := Build()
	if got := len(c.Vendors); got != 40 {
		t.Errorf("vendors = %d, want 40", got)
	}
	if got := len(c.Products); got != 56 {
		t.Errorf("products = %d, want 56", got)
	}
	if got := len(c.Devices()); got != 96 {
		t.Errorf("devices = %d, want 96", got)
	}
}

func TestVendorsConsistent(t *testing.T) {
	c := Build()
	valid := map[string]bool{}
	for _, v := range c.Vendors {
		if valid[v] {
			t.Errorf("duplicate vendor %q", v)
		}
		valid[v] = true
	}
	used := map[string]bool{}
	for _, p := range c.Products {
		if !valid[p.Vendor] {
			t.Errorf("product %q has unlisted vendor %q", p.Name, p.Vendor)
		}
		used[p.Vendor] = true
	}
	for _, v := range c.Vendors {
		if !used[v] {
			t.Errorf("vendor %q has no products", v)
		}
	}
}

func TestCategoryCounts(t *testing.T) {
	c := Build()
	got := map[Category]int{}
	for _, p := range c.Products {
		got[p.Category]++
	}
	want := map[Category]int{
		CatSurveillance: 13, CatSmartHubs: 8, CatHomeAutomation: 14,
		CatVideo: 5, CatAudio: 6, CatAppliances: 10,
	}
	for cat, n := range want {
		if got[cat] != n {
			t.Errorf("%s: %d products, want %d", cat, got[cat], n)
		}
	}
}

func TestDomainCensus(t *testing.T) {
	c := Build()
	if got := len(c.Domains); got != 524 {
		t.Errorf("total domains = %d, want 524", got)
	}
	roles := map[Role]int{}
	for _, d := range c.Domains {
		roles[d.Role]++
	}
	if roles[RolePrimary] != 415 {
		t.Errorf("primary = %d, want 415", roles[RolePrimary])
	}
	if roles[RoleSupport] != 19 {
		t.Errorf("support = %d, want 19", roles[RoleSupport])
	}
	if roles[RoleGeneric] != 90 {
		t.Errorf("generic = %d, want 90", roles[RoleGeneric])
	}
}

func TestDedicatedSharedNoRecordSplit(t *testing.T) {
	c := Build()
	var dedicated, shared, noRecord, recoverable int
	for _, d := range c.Domains {
		if d.Role == RoleGeneric {
			continue
		}
		switch {
		case !d.PDNSCovered:
			noRecord++
			if d.HTTPS {
				recoverable++
			}
		case d.Kind == hosting.KindDedicated || d.Kind == hosting.KindCloudTenant:
			dedicated++
		default:
			shared++
		}
	}
	if dedicated != 217 {
		t.Errorf("dedicated (pdns-visible) = %d, want 217", dedicated)
	}
	if shared != 202 {
		t.Errorf("shared = %d, want 202", shared)
	}
	if noRecord != 15 {
		t.Errorf("no-record = %d, want 15", noRecord)
	}
	if recoverable != 8 {
		t.Errorf("censys-recoverable = %d, want 8", recoverable)
	}
}

func TestRecoverableDomainsBelongToFiveDevices(t *testing.T) {
	c := Build()
	products := map[string]bool{}
	for _, p := range c.Products {
		for _, u := range p.Uses {
			if !u.Domain.PDNSCovered && u.Domain.HTTPS {
				products[p.Name] = true
			}
		}
	}
	if len(products) != 5 {
		t.Errorf("censys-recoverable domains span %d products (%v), want 5", len(products), products)
	}
}

func TestEveryDomainIsUsed(t *testing.T) {
	c := Build()
	used := map[string]bool{}
	for _, p := range c.Products {
		for _, u := range p.Uses {
			used[u.Domain.Name] = true
		}
	}
	for name := range c.Domains {
		if !used[name] {
			t.Errorf("domain %q contacted by no product", name)
		}
	}
}

func TestEveryProductHasTraffic(t *testing.T) {
	c := Build()
	for _, p := range c.Products {
		if len(p.Uses) == 0 {
			t.Errorf("product %q has no domain uses", p.Name)
			continue
		}
		idle := 0.0
		for _, u := range p.Uses {
			idle += u.IdlePPH
			if u.IdlePPH < 0 || u.ActivePPH < 0 {
				t.Errorf("product %q has negative rate on %s", p.Name, u.Domain.Name)
			}
		}
		if idle <= 0 {
			t.Errorf("product %q has zero idle traffic", p.Name)
		}
	}
}

func TestRuleCensus(t *testing.T) {
	c := Build()
	if got := len(c.Rules); got != 37 {
		t.Errorf("rules = %d, want 37", got)
	}
	levels := map[Level]int{}
	for _, r := range c.Rules {
		levels[r.Level]++
	}
	if levels[LevelPlatform] != 6 {
		t.Errorf("platform rules = %d, want 6", levels[LevelPlatform])
	}
	if levels[LevelManufacturer] != 20 {
		t.Errorf("manufacturer rules = %d, want 20", levels[LevelManufacturer])
	}
	if levels[LevelProduct] != 11 {
		t.Errorf("product rules = %d, want 11", levels[LevelProduct])
	}
}

func TestRuleDomainGroups(t *testing.T) {
	// Fig 10 groups rules by monitored-domain count:
	// 9 with one domain, 11 with two, 2 with three, 5 with four,
	// 10 with five or more.
	c := Build()
	groups := map[int]int{}
	for _, r := range c.Rules {
		n := len(r.Domains)
		switch {
		case n >= 5:
			groups[5]++
		default:
			groups[n]++
		}
	}
	want := map[int]int{1: 9, 2: 11, 3: 2, 4: 5, 5: 10}
	for k, v := range want {
		if groups[k] != v {
			t.Errorf("rules with %d(+) domains = %d, want %d", k, groups[k], v)
		}
	}
}

func TestRuleHierarchy(t *testing.T) {
	c := Build()
	amazon, ok := c.Rule("Amazon Product")
	if !ok || amazon.Parent != "Alexa Enabled" || len(amazon.Domains) != 34 {
		t.Fatalf("Amazon Product rule wrong: %+v", amazon)
	}
	ftv, ok := c.Rule("Fire TV")
	if !ok || ftv.Parent != "Amazon Product" || !ftv.RequireParent || len(ftv.Domains) != 33 {
		t.Fatalf("Fire TV rule wrong: %+v", ftv)
	}
	sam, ok := c.Rule("Samsung IoT")
	if !ok || len(sam.Domains) != 14 || sam.MinOverride != 1 {
		t.Fatalf("Samsung IoT rule wrong: %+v", sam)
	}
	stv, ok := c.Rule("Samsung TV")
	if !ok || !stv.RequireParent || len(stv.Domains) != 16 {
		t.Fatalf("Samsung TV rule wrong: %+v", stv)
	}
	// Child rules monitor domains disjoint from their parents, so a
	// parent's traffic can never fire the child (the §5 false-positive
	// guard). Totals incl. ancestors match the paper: 34+33 = 67 for
	// Fire TV, 14+16 = 30 for Samsung TV.
	in := func(set []string) map[string]bool {
		m := map[string]bool{}
		for _, d := range set {
			m[d] = true
		}
		return m
	}
	amzSet := in(amazon.Domains)
	for _, d := range ftv.Domains {
		if amzSet[d] {
			t.Errorf("Fire TV monitors parent domain %q", d)
		}
	}
	samSet := in(sam.Domains)
	for _, d := range stv.Domains {
		if samSet[d] {
			t.Errorf("Samsung TV monitors parent domain %q", d)
		}
	}
	if got := len(amazon.Domains) + len(ftv.Domains); got != 67 {
		t.Errorf("Fire TV total monitored incl. ancestors = %d, want 67", got)
	}
	if got := len(sam.Domains) + len(stv.Domains); got != 30 {
		t.Errorf("Samsung TV total monitored incl. ancestors = %d, want 30", got)
	}
}

func TestRuleReferencesResolve(t *testing.T) {
	c := Build()
	for _, r := range c.Rules {
		if r.Parent != "" {
			if _, ok := c.Rule(r.Parent); !ok {
				t.Errorf("rule %q has unknown parent %q", r.Name, r.Parent)
			}
		}
		for _, d := range r.Domains {
			dom, ok := c.Domains[d]
			if !ok {
				t.Errorf("rule %q monitors unknown domain %q", r.Name, d)
				continue
			}
			if dom.Role != RolePrimary {
				t.Errorf("rule %q monitors non-primary domain %q (%s)", r.Name, d, dom.Role)
			}
			if dom.Kind != hosting.KindDedicated && dom.Kind != hosting.KindCloudTenant {
				t.Errorf("rule %q monitors shared-hosted domain %q", r.Name, d)
			}
		}
		if len(r.Products) == 0 {
			t.Errorf("rule %q detects no products", r.Name)
		}
		for _, p := range r.Products {
			if _, ok := c.Product(p); !ok {
				t.Errorf("rule %q references unknown product %q", r.Name, p)
			}
		}
	}
}

func TestRecognizedManufacturers(t *testing.T) {
	// §4.3.2: rules recognize devices from 31 of the 40 manufacturers
	// (77 %). Multi-vendor platform rules (Alexa Enabled, Smartlife)
	// cannot attribute a manufacturer.
	c := Build()
	recognized := map[string]bool{}
	for _, r := range c.Rules {
		if r.MultiVendor {
			continue
		}
		for _, pname := range r.Products {
			p, _ := c.Product(pname)
			if p != nil {
				recognized[p.Vendor] = true
			}
		}
	}
	if len(recognized) != 31 {
		t.Errorf("recognized manufacturers = %d, want 31: %v", len(recognized), recognized)
	}
}

func TestSharedOnlyProductsHaveNoDedicatedDomains(t *testing.T) {
	c := Build()
	var sharedOnly []string
	for _, p := range c.Products {
		if !p.SharedOnly {
			continue
		}
		sharedOnly = append(sharedOnly, p.Name)
		for _, u := range p.Uses {
			if u.Domain.Role == RoleGeneric {
				continue
			}
			if u.Domain.Kind == hosting.KindDedicated || u.Domain.Kind == hosting.KindCloudTenant {
				t.Errorf("shared-only product %q uses dedicated domain %q", p.Name, u.Domain.Name)
			}
		}
	}
	// §4.2.3 names exactly these: Google Home, Google Home Mini,
	// Apple TV, Lefun camera.
	if len(sharedOnly) != 4 {
		t.Errorf("shared-only products = %v, want 4", sharedOnly)
	}
}

func TestIdleOnlyProducts(t *testing.T) {
	c := Build()
	var idleOnly []string
	for _, p := range c.Products {
		if p.IdleOnly {
			idleOnly = append(idleOnly, p.Name)
			for _, u := range p.Uses {
				if u.ActivePPH != 0 {
					t.Errorf("idle-only product %q has active traffic on %q", p.Name, u.Domain.Name)
				}
			}
		}
	}
	if len(idleOnly) != 2 { // Samsung Dryer, Samsung Fridge (Table 1)
		t.Errorf("idle-only products = %v, want 2", idleOnly)
	}
}

func TestDevicesSplitAcrossTestbeds(t *testing.T) {
	c := Build()
	per := map[int]int{}
	for _, d := range c.Devices() {
		per[d.Testbed]++
	}
	if per[1] != 56 {
		t.Errorf("testbed 1 has %d devices, want 56", per[1])
	}
	if per[2] != 40 {
		t.Errorf("testbed 2 has %d devices, want 40", per[2])
	}
}

func TestDeviceIDsUnique(t *testing.T) {
	c := Build()
	seen := map[int]bool{}
	for _, d := range c.Devices() {
		if seen[d.ID] {
			t.Errorf("duplicate device ID %d", d.ID)
		}
		seen[d.ID] = true
	}
}

func TestRulesDetecting(t *testing.T) {
	c := Build()
	rules := c.RulesDetecting("Echo Dot")
	names := map[string]bool{}
	for _, r := range rules {
		names[r.Name] = true
	}
	if !names["Alexa Enabled"] || !names["Amazon Product"] || names["Fire TV"] {
		t.Errorf("Echo Dot detected by %v", names)
	}
}

func TestProvidersResolvable(t *testing.T) {
	c := Build()
	known := map[string]bool{}
	for _, p := range c.Providers {
		if known[p.Name] {
			t.Errorf("duplicate provider %q", p.Name)
		}
		known[p.Name] = true
	}
	for _, d := range c.Domains {
		if !known[d.Provider] {
			t.Errorf("domain %q references unknown provider %q", d.Name, d.Provider)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, b := Build(), Build()
	an, bn := a.DomainNames(), b.DomainNames()
	if len(an) != len(bn) {
		t.Fatal("nondeterministic domain count")
	}
	for i := range an {
		if an[i] != bn[i] {
			t.Fatalf("domain order differs at %d: %s vs %s", i, an[i], bn[i])
		}
	}
}
