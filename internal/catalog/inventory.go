package catalog

import (
	"fmt"

	"repro/internal/flow"
	"repro/internal/hosting"
)

// Build constructs the full testbed inventory. The construction is
// deterministic and pure data — no randomness — so every experiment
// sees the identical world.
func Build() *Catalog {
	b := &builder{c: &Catalog{Domains: map[string]*Domain{}}}
	b.providers()
	b.domains()
	b.products()
	b.rules()
	b.c.Vendors = vendorList
	return b.c
}

// vendorList is the paper's 40 manufacturers (Table 1). "MagicHome"
// covers both the Magichome strip and the Flux bulb (same app/platform
// family); "Allure" reaches only the Alexa voice service.
var vendorList = []string{
	// Surveillance
	"Amcrest", "Blink", "Icsee", "Lefun", "Luohe", "Microseven",
	"Reolink", "Ring", "Ubell", "Wansview", "Yi", "ZModo",
	// Hubs
	"Insteon", "Osram", "Philips", "Sengled", "SmartThings",
	"SwitchBot", "Wink", "Xiaomi",
	// Home automation
	"D-Link", "Honeywell", "MagicHome", "Meross", "Nest", "Tuya",
	"TP-Link", "Belkin",
	// Video
	"Apple", "LG", "Roku", "Samsung", "Amazon",
	// Audio
	"Allure", "Google",
	// Appliances
	"Anova", "Appkettle", "GE", "Netatmo", "Smarter",
}

type builder struct {
	c *Catalog
}

func (b *builder) providers() {
	ps := []ProviderSpec{
		{"simcloud", hosting.KindCloudTenant, 64900, "186.1.0.0/16", "ec2compute.simcloud.example"},
		{"simaws", hosting.KindCloudTenant, 64901, "186.2.0.0/16", "iotcloud.simaws.example"},
		{"simakamai", hosting.KindCDN, 64902, "187.1.0.0/16", "cdn.simakamai.example"},
		{"simweb", hosting.KindGeneric, 64903, "187.2.0.0/16", ""},
		{"simntp", hosting.KindNTPPool, 64904, "187.3.0.0/20", ""},
	}
	// One dedicated data-centre block per vendor that operates its own
	// backend.
	dedicated := []string{
		"amazon", "samsung", "philips", "xiaomi", "tplink", "honeywell",
		"smartthings", "blink", "wansview", "amcrest", "dlink", "ge",
		"netatmo", "sengled", "insteon", "osram", "nest", "roku",
		"zmodo", "icsee", "luohe", "microseven", "lg", "belkin", "wink",
		"switchbot", "whisk",
	}
	for i, v := range dedicated {
		ps = append(ps, ProviderSpec{
			Name: "dc-" + v,
			Kind: hosting.KindDedicated,
			ASN:  uint32(64601 + i),
			CIDR: fmt.Sprintf("185.%d.0.0/16", i+1),
			Zone: "",
		})
	}
	b.c.Providers = ps
}

// dom registers a domain once; repeated names panic (the inventory is
// hand-balanced and duplicates would corrupt the §4 counts).
func (b *builder) dom(d Domain) *Domain {
	if d.PoolSize == 0 {
		d.PoolSize = 2
	}
	if d.Port == 0 {
		d.Port = 443
	}
	if d.Proto == 0 {
		d.Proto = flow.ProtoTCP
	}
	if d.BytesPerPkt == 0 {
		d.BytesPerPkt = 600
	}
	if _, dup := b.c.Domains[d.Name]; dup {
		panic("catalog: duplicate domain " + d.Name)
	}
	dd := d
	b.c.Domains[d.Name] = &dd
	b.c.domainSeq = append(b.c.domainSeq, d.Name)
	return &dd
}

// ded registers a covered, HTTPS, dedicated primary domain.
func (b *builder) ded(name, provider string, pool int) *Domain {
	return b.dom(Domain{
		Name: name, Role: RolePrimary, Kind: hosting.KindDedicated,
		Provider: provider, PoolSize: pool, HTTPS: true, PDNSCovered: true,
	})
}

// cloud registers a covered, HTTPS, cloud-tenant primary domain.
func (b *builder) cloud(name, provider string, pool int) *Domain {
	return b.dom(Domain{
		Name: name, Role: RolePrimary, Kind: hosting.KindCloudTenant,
		Provider: provider, PoolSize: pool, HTTPS: true, PDNSCovered: true,
	})
}

// shared registers a CDN/generic-hosted primary domain.
func (b *builder) shared(name, provider string, pool int) *Domain {
	return b.dom(Domain{
		Name: name, Role: RolePrimary, Kind: kindOf(provider),
		Provider: provider, PoolSize: pool, HTTPS: true, PDNSCovered: true,
	})
}

func kindOf(provider string) hosting.Kind {
	switch provider {
	case "simakamai":
		return hosting.KindCDN
	case "simweb":
		return hosting.KindGeneric
	case "simntp":
		return hosting.KindNTPPool
	case "simcloud", "simaws":
		return hosting.KindCloudTenant
	}
	return hosting.KindDedicated
}

// Domain-name bucket generators. The global counts are asserted in
// catalog_test.go against the §4 totals.

func seq(prefix string, n int, format string) []string {
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = fmt.Sprintf(format, prefix, i)
	}
	return out
}

func (b *builder) domains() {
	// ---- Rule domains (dedicated or cloud; bucket A, 187 names) ----
	b.ded("avs-alexa.simamazon.example", "dc-amazon", 8)
	for _, n := range seq("amz", 33, "%s%02d.simamazon.example") {
		b.ded(n, "dc-amazon", 3)
	}
	for _, n := range seq("ftv", 33, "%s%02d.simamazon.example") {
		b.ded(n, "dc-amazon", 3)
	}
	b.ded("ota.simsamsung.example", "dc-samsung", 6)
	for _, n := range seq("sam", 13, "%s%02d.simsamsung.example") {
		b.ded(n, "dc-samsung", 3)
	}
	for _, n := range seq("tv", 16, "%s%02d.simsamsung.example") {
		b.ded(n, "dc-samsung", 3)
	}
	// One-domain rules.
	b.cloud("api.simanova.example", "simcloud", 2)
	b.cloud("kettle.simsmarter.example", "simaws", 2)
	b.ded("hub.siminsteon.example", "dc-insteon", 2)
	b.cloud("api.simmagichome.example", "simaws", 2)
	meross := b.cloud("mqtt.simmeross.example", "simcloud", 3)
	meross.Port = 8883 // MQTT over TLS — an "other services" port (Fig 5c)
	m7cam := b.ded("cam.simmicroseven.example", "dc-microseven", 1)
	m7cam.Port = 9100 // proprietary camera streaming port
	b.ded("api.simnetatmo.example", "dc-netatmo", 2)
	b.cloud("coffee.simsmarter.example", "simaws", 2)
	// Two-domain rules.
	for _, v := range []struct{ label, prov string }{
		{"simappkettle", "simcloud"}, {"simblink", "dc-blink"},
		{"simflux", "simaws"}, {"simge", "dc-ge"},
		{"simicsee", "dc-icsee"}, {"simlightify", "dc-osram"},
		{"simluohe", "dc-luohe"}, {"simreolink", "simcloud"},
		{"simsengled", "dc-sengled"}, {"simsmartthings", "dc-smartthings"},
		{"simwansview", "dc-wansview"},
	} {
		for i := 0; i < 2; i++ {
			name := fmt.Sprintf("r%d.%s.example", i, v.label)
			if kindOf(v.prov) == hosting.KindCloudTenant {
				b.cloud(name, v.prov, 2)
			} else {
				b.ded(name, v.prov, 2)
			}
		}
	}
	// Three-domain rules.
	for i := 0; i < 3; i++ {
		b.ded(fmt.Sprintf("r%d.simhoneywell.example", i), "dc-honeywell", 2)
		b.ded(fmt.Sprintf("r%d.simxiaomi.example", i), "dc-xiaomi", 3)
	}
	// Four-domain rules.
	for i := 0; i < 4; i++ {
		b.ded(fmt.Sprintf("r%d.simnest.example", i), "dc-nest", 2)
		b.cloud(fmt.Sprintf("r%d.simring.example", i), "simcloud", 3)
		b.cloud(fmt.Sprintf("r%d.simtuya.example", i), "simaws", 4)
		b.cloud(fmt.Sprintf("r%d.simubell.example", i), "simcloud", 1)
		b.cloud(fmt.Sprintf("r%d.simyi.example", i), "simcloud", 2)
	}
	// Remaining 5+-domain rules.
	for i := 0; i < 5; i++ {
		b.ded(fmt.Sprintf("r%d.simamcrest.example", i), "dc-amcrest", 2)
		b.ded(fmt.Sprintf("r%d.simdlink.example", i), "dc-dlink", 2)
		b.ded(fmt.Sprintf("r%d.simzmodo.example", i), "dc-zmodo", 2)
	}
	for i := 0; i < 6; i++ {
		b.ded(fmt.Sprintf("r%d.simphilips.example", i), "dc-philips", 3)
		b.ded(fmt.Sprintf("r%d.simtplink.example", i), "dc-tplink", 3)
	}
	for i := 0; i < 7; i++ {
		b.ded(fmt.Sprintf("r%d.simroku.example", i), "dc-roku", 3)
	}

	// The 15 no-record domains (§4.2.2): 8 rule domains of 5 devices
	// are recoverable via certificate scans …
	for _, n := range []string{
		"r1.simreolink.example", "r2.simubell.example", "r3.simubell.example",
		"r1.simluohe.example", "r1.simicsee.example",
		"r2.simamcrest.example", "r3.simamcrest.example", "r4.simamcrest.example",
	} {
		d, ok := b.c.Domains[n]
		if !ok {
			panic("catalog: no-record target missing: " + n)
		}
		d.PDNSCovered = false // HTTPS stays true → Censys recovers it
	}

	// ---- Non-rule dedicated domains (bucket B, 38 names) ----
	b.ded("svc.simlg.example", "dc-lg", 2) // LG's one dedicated domain
	// Dedicated Support domains (complementary services, §4.1).
	for _, n := range []string{
		"samsung-recipes.simwhisk.example", "samsung-img.simwhisk.example",
		"hue-cloud.simwhisk.example", "alexa-skills.simwhisk.example",
		"mi-cloud.simwhisk.example", "nest-weather.simwhisk.example",
	} {
		d := b.ded(n, "dc-whisk", 2)
		d.Role = RoleSupport
	}
	// Extra dedicated primary domains, contacted but not monitored.
	for _, e := range []struct {
		vendor string
		n      int
	}{
		{"amazon", 4}, {"samsung", 4}, {"philips", 3}, {"xiaomi", 3},
		{"smartthings", 2}, {"nest", 2}, {"roku", 2}, {"tplink", 2},
		{"honeywell", 1}, {"blink", 1}, {"wansview", 1}, {"amcrest", 1},
		{"ge", 1}, {"netatmo", 1}, {"osram", 1},
	} {
		for i := 0; i < e.n; i++ {
			b.ded(fmt.Sprintf("x%d.sim%s.example", i, e.vendor), "dc-"+e.vendor, 2)
		}
	}
	// Ring's two extra domains live in its cloud tenancy.
	b.cloud("x0.simring.example", "simcloud", 2)
	b.cloud("x1.simring.example", "simcloud", 2)

	// ---- Shared-infrastructure domains (bucket C, 202 names) ----
	for _, n := range seq("atv", 40, "%s%02d.simappletv.example") {
		b.shared(n, "simakamai", 4)
	}
	for _, n := range seq("gh", 30, "%s%02d.simgoogle.example") {
		b.shared(n, "simweb", 6)
	}
	for i := 0; i < 3; i++ {
		b.shared(fmt.Sprintf("s%d.simlefun.example", i), "simakamai", 2)
		b.shared(fmt.Sprintf("s%d.simlg.example", i), "simakamai", 3)
	}
	// Shared Support domains.
	for i, owner := range []string{
		"amazon", "amazon", "amazon", "samsung", "samsung",
		"appletv", "appletv", "google", "google",
		"roku", "lg", "yi", "tplink",
	} {
		d := b.shared(fmt.Sprintf("sup%d.sim%s-assets.example", i, owner), "simakamai", 3)
		d.Role = RoleSupport
	}
	// Gossip extras on shared infrastructure per vendor.
	for _, v := range []struct {
		vendor string
		n      int
	}{
		{"amazon", 20}, {"samsung", 15}, {"xiaomi", 10}, {"philips", 8},
		{"roku", 8}, {"ring", 6}, {"nest", 6}, {"tplink", 6},
		{"honeywell", 4}, {"smartthings", 5}, {"blink", 4}, {"yi", 4},
		{"wansview", 3}, {"amcrest", 3}, {"dlink", 3}, {"ge", 2},
		{"netatmo", 2}, {"sengled", 2}, {"insteon", 2},
	} {
		for i := 0; i < v.n; i++ {
			b.shared(fmt.Sprintf("c%d.sim%s-cdn.example", i, v.vendor), "simakamai", 4)
		}
	}

	// ---- Unrecoverable no-record domains (bucket D, 7 names) ----
	// Dedicated in reality, but passive DNS never saw them and they do
	// not speak HTTPS, so the pipeline cannot place them (§4.2.3:
	// "for Wemo Plug and Wink-hub, we could not identify sufficient
	// information").
	for _, v := range []struct {
		name, prov string
	}{
		{"p0.simwemo.example", "dc-belkin"}, {"p1.simwemo.example", "dc-belkin"},
		{"p0.simwink.example", "dc-wink"}, {"p1.simwink.example", "dc-wink"},
		{"p0.simswitchbot.example", "dc-switchbot"},
		{"p1.simswitchbot.example", "dc-switchbot"},
		{"p2.simswitchbot.example", "dc-switchbot"},
	} {
		d := b.dom(Domain{
			Name: v.name, Role: RolePrimary, Kind: hosting.KindDedicated,
			Provider: v.prov, PoolSize: 1, HTTPS: false, PDNSCovered: false,
		})
		d.Port = 8883
	}

	// ---- Generic domains (bucket E, 90 names) ----
	for _, n := range seq("pool", 20, "%s%02d.simntp.example") {
		d := b.dom(Domain{
			Name: n, Role: RoleGeneric, Kind: hosting.KindNTPPool,
			Provider: "simntp", PoolSize: 4, PDNSCovered: true,
		})
		d.Port = 123
		d.Proto = flow.ProtoUDP
		d.BytesPerPkt = 76
	}
	for _, n := range seq("g", 70, "%s%02d.simgenericweb.example") {
		d := b.shared(n, "simweb", 8)
		d.Role = RoleGeneric
		d.BytesPerPkt = 1000
	}
}
