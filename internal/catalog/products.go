package catalog

import "fmt"

// prodSpec is one row of the product table; uses are attached after.
type prodSpec struct {
	name   string
	vendor string
	cat    Category
	both   bool // deployed in both testbeds (two device instances)
	idle   bool // Table 1 "idle": interactions not automatable
	shared bool // backend entirely on shared infrastructure (§4.2.3)
	tier   int  // Fig 14 market band, 0 = Top 10 … 7 = other/no rank
	pen    float64
}

func (b *builder) product(s prodSpec) *Product {
	p := &Product{
		Name: s.name, Vendor: s.vendor, Category: s.cat,
		InBothTestbeds: s.both, IdleOnly: s.idle, SharedOnly: s.shared,
		MarketTier: s.tier, WildPenetration: s.pen,
	}
	b.c.Products = append(b.c.Products, p)
	return p
}

// u attaches a domain use; the domain must already be registered.
func (b *builder) u(p *Product, domain string, idle, active float64) {
	d, ok := b.c.Domains[domain]
	if !ok {
		panic("catalog: product " + p.Name + " uses unknown domain " + domain)
	}
	p.Uses = append(p.Uses, Use{Domain: d, IdlePPH: idle, ActivePPH: active})
}

// useq attaches a numbered domain range, e.g. useq(p, "amz",
// "%s%02d.simamazon.example", 33, 15, 60).
func (b *builder) useq(p *Product, prefix, format string, n int, idle, active float64) {
	for _, name := range seq(prefix, n, format) {
		b.u(p, name, idle, active)
	}
}

func (b *builder) products() {
	// ---------------- Audio ----------------
	// Alexa's voice service idles at ~700 pkts/h, which under 1:1024
	// sampling yields ≈50 % per-hour visibility — the calibration that
	// reproduces "daily counts roughly double hourly counts" (§6.2).
	dot := b.product(prodSpec{name: "Echo Dot", vendor: "Amazon", cat: CatAudio, both: true, tier: 7, pen: 0.45})
	b.u(dot, "avs-alexa.simamazon.example", 700, 3000)
	b.useq(dot, "amz", "%s%02d.simamazon.example", 33, 15, 60)
	b.u(dot, "pool00.simntp.example", 12, 0)
	b.u(dot, "g00.simgenericweb.example", 8, 30)

	spot := b.product(prodSpec{name: "Echo Spot", vendor: "Amazon", cat: CatAudio, both: true, tier: 7, pen: 0.07})
	b.u(spot, "avs-alexa.simamazon.example", 650, 2500)
	b.useq(spot, "amz", "%s%02d.simamazon.example", 33, 12, 50)
	b.u(spot, "pool01.simntp.example", 12, 0)

	plus := b.product(prodSpec{name: "Echo Plus", vendor: "Amazon", cat: CatAudio, both: true, tier: 7, pen: 0.14})
	b.u(plus, "avs-alexa.simamazon.example", 680, 2800)
	b.useq(plus, "amz", "%s%02d.simamazon.example", 33, 14, 55)
	b.u(plus, "pool02.simntp.example", 12, 0)

	allure := b.product(prodSpec{name: "Allure with Alexa", vendor: "Allure", cat: CatAudio, tier: 7, pen: 0.012})
	b.u(allure, "avs-alexa.simamazon.example", 400, 1500)
	b.u(allure, "pool03.simntp.example", 10, 0)

	gh := b.product(prodSpec{name: "Google Home", vendor: "Google", cat: CatAudio, both: true, shared: true, tier: 7, pen: 0.30})
	b.useq(gh, "gh", "%s%02d.simgoogle.example", 30, 40, 300)
	b.u(gh, "sup7.simgoogle-assets.example", 15, 40)
	b.u(gh, "pool04.simntp.example", 12, 0)
	b.u(gh, "g01.simgenericweb.example", 20, 80)

	ghm := b.product(prodSpec{name: "Google Home Mini", vendor: "Google", cat: CatAudio, shared: true, tier: 7, pen: 0.25})
	b.useq(ghm, "gh", "%s%02d.simgoogle.example", 20, 30, 200)
	b.u(ghm, "sup8.simgoogle-assets.example", 12, 30)
	b.u(ghm, "pool05.simntp.example", 12, 0)

	// ---------------- Video ----------------
	ftv := b.product(prodSpec{name: "Fire TV", vendor: "Amazon", cat: CatVideo, both: true, tier: 7, pen: 0.17})
	b.u(ftv, "avs-alexa.simamazon.example", 300, 1200)
	b.useq(ftv, "amz", "%s%02d.simamazon.example", 33, 10, 40)
	b.useq(ftv, "ftv", "%s%02d.simamazon.example", 33, 8, 80)
	b.u(ftv, "sup0.simamazon-assets.example", 20, 100)
	b.u(ftv, "sup1.simamazon-assets.example", 15, 80)
	b.useq(ftv, "g1", "%s%d.simgenericweb.example", 9, 150, 1500)
	b.u(ftv, "pool06.simntp.example", 12, 0)

	atv := b.product(prodSpec{name: "Apple TV", vendor: "Apple", cat: CatVideo, shared: true, tier: 7, pen: 0.10})
	b.useq(atv, "atv", "%s%02d.simappletv.example", 40, 25, 250)
	b.u(atv, "sup5.simappletv-assets.example", 20, 60)
	b.u(atv, "sup6.simappletv-assets.example", 15, 50)
	b.u(atv, "g02.simgenericweb.example", 150, 1200)
	b.u(atv, "pool07.simntp.example", 12, 0)

	lgtv := b.product(prodSpec{name: "LG TV", vendor: "LG", cat: CatVideo, tier: 7, pen: 0.15})
	b.u(lgtv, "svc.simlg.example", 300, 400)
	b.u(lgtv, "s0.simlg.example", 30, 200)
	b.u(lgtv, "s1.simlg.example", 25, 150)
	b.u(lgtv, "s2.simlg.example", 20, 120)
	b.u(lgtv, "sup10.simlg-assets.example", 10, 40)
	b.u(lgtv, "g03.simgenericweb.example", 45, 450)

	roku := b.product(prodSpec{name: "Roku TV", vendor: "Roku", cat: CatVideo, both: true, tier: 7, pen: 0.020})
	b.useq(roku, "r", "%s%d.simroku.example", 7, 80, 300)
	b.u(roku, "x0.simroku.example", 10, 30)
	b.u(roku, "x1.simroku.example", 10, 30)
	b.useq(roku, "c", "%s%d.simroku-cdn.example", 8, 15, 80)
	b.u(roku, "sup9.simroku-assets.example", 12, 50)
	b.useq(roku, "g2", "%s%d.simgenericweb.example", 5, 40, 400)

	stv := b.product(prodSpec{name: "Samsung TV", vendor: "Samsung", cat: CatVideo, both: true, tier: 7, pen: 0.25})
	// The OTA domain idles at ~180 pkts/h (~16 % hourly visibility),
	// reproducing the ×6 day-over-hour detection gain of §6.2.
	b.u(stv, "ota.simsamsung.example", 150, 120)
	b.useq(stv, "sam", "%s%02d.simsamsung.example", 13, 8, 40)
	b.useq(stv, "tv", "%s%02d.simsamsung.example", 16, 3, 220)
	b.useq(stv, "c", "%s%d.simsamsung-cdn.example", 15, 12, 90)
	b.u(stv, "sup3.simsamsung-assets.example", 10, 40)
	b.u(stv, "sup4.simsamsung-assets.example", 8, 30)
	b.u(stv, "g04.simgenericweb.example", 35, 350)

	// ---------------- Surveillance ----------------
	amc := b.product(prodSpec{name: "Amcrest Cam", vendor: "Amcrest", cat: CatSurveillance, both: true, tier: 3, pen: 0.006})
	b.u(amc, "r0.simamcrest.example", 2500, 3000)
	for i := 1; i < 5; i++ {
		b.u(amc, fmt.Sprintf("r%d.simamcrest.example", i), 60, 200)
	}
	b.useq(amc, "c", "%s%d.simamcrest-cdn.example", 3, 20, 50)
	b.u(amc, "x0.simamcrest.example", 10, 20)
	b.u(amc, "pool08.simntp.example", 12, 0)

	bcam := b.product(prodSpec{name: "Blink Cam", vendor: "Blink", cat: CatSurveillance, both: true, tier: 7, pen: 0.006})
	b.u(bcam, "r0.simblink.example", 1500, 1000)
	b.u(bcam, "r1.simblink.example", 300, 400)
	b.u(bcam, "x0.simblink.example", 20, 40)
	b.useq(bcam, "c", "%s%d.simblink-cdn.example", 4, 15, 40)

	bhub := b.product(prodSpec{name: "Blink Hub", vendor: "Blink", cat: CatSurveillance, both: true, tier: 7, pen: 0.005})
	b.u(bhub, "r0.simblink.example", 400, 350)
	b.u(bhub, "r1.simblink.example", 300, 280)
	b.u(bhub, "pool09.simntp.example", 12, 0)

	// Icsee/Luohe/Microseven/Ubell (+ Magichome below) are the five
	// devices whose idle traffic is too sparse for NetFlow to ever see
	// (§5: "invisible in the NetFlow data").
	icsee := b.product(prodSpec{name: "Icsee Doorbell", vendor: "Icsee", cat: CatSurveillance, tier: 7, pen: 0.003})
	b.u(icsee, "r0.simicsee.example", 0.15, 2500)
	b.u(icsee, "r1.simicsee.example", 0.1, 350)

	lefun := b.product(prodSpec{name: "Lefun Cam", vendor: "Lefun", cat: CatSurveillance, shared: true, tier: 7, pen: 0.002})
	b.u(lefun, "s0.simlefun.example", 900, 800)
	b.u(lefun, "s1.simlefun.example", 60, 200)
	b.u(lefun, "s2.simlefun.example", 40, 150)

	luohe := b.product(prodSpec{name: "Luohe Cam", vendor: "Luohe", cat: CatSurveillance, tier: 7, pen: 0.0008})
	b.u(luohe, "r0.simluohe.example", 0.15, 2500)
	b.u(luohe, "r1.simluohe.example", 0.1, 300)

	m7 := b.product(prodSpec{name: "Microseven Cam", vendor: "Microseven", cat: CatSurveillance, tier: 6, pen: 0.00002})
	b.u(m7, "cam.simmicroseven.example", 0.3, 4000)

	reo := b.product(prodSpec{name: "Reolink Cam", vendor: "Reolink", cat: CatSurveillance, both: true, tier: 2, pen: 0.010})
	b.u(reo, "r0.simreolink.example", 2200, 1200)
	b.u(reo, "r1.simreolink.example", 400, 350)
	b.u(reo, "pool10.simntp.example", 12, 0)

	ring := b.product(prodSpec{name: "Ring Doorbell", vendor: "Ring", cat: CatSurveillance, both: true, tier: 7, pen: 0.012})
	b.useq(ring, "r", "%s%d.simring.example", 4, 700, 900)
	b.u(ring, "x0.simring.example", 10, 20)
	b.u(ring, "x1.simring.example", 10, 20)
	b.useq(ring, "c", "%s%d.simring-cdn.example", 6, 8, 30)
	b.u(ring, "pool11.simntp.example", 12, 0)

	ubell := b.product(prodSpec{name: "Ubell Doorbell", vendor: "Ubell", cat: CatSurveillance, tier: 7, pen: 0.0006})
	b.useq(ubell, "r", "%s%d.simubell.example", 4, 0.08, 2000)

	wans := b.product(prodSpec{name: "Wansview Cam", vendor: "Wansview", cat: CatSurveillance, both: true, tier: 0, pen: 0.022})
	b.u(wans, "r0.simwansview.example", 2500, 1500)
	b.u(wans, "r1.simwansview.example", 500, 400)
	b.u(wans, "x0.simwansview.example", 15, 30)
	b.useq(wans, "c", "%s%d.simwansview-cdn.example", 3, 10, 25)

	yi := b.product(prodSpec{name: "Yi Cam", vendor: "Yi", cat: CatSurveillance, both: true, tier: 1, pen: 0.015})
	b.useq(yi, "r", "%s%d.simyi.example", 4, 1500, 900)
	b.useq(yi, "c", "%s%d.simyi-cdn.example", 4, 12, 35)
	b.u(yi, "sup11.simyi-assets.example", 8, 20)

	zmodo := b.product(prodSpec{name: "ZModo Doorbell", vendor: "ZModo", cat: CatSurveillance, both: true, tier: 4, pen: 0.003})
	b.useq(zmodo, "r", "%s%d.simzmodo.example", 5, 600, 500)

	// ---------------- Smart hubs ----------------
	insteon := b.product(prodSpec{name: "Insteon", vendor: "Insteon", cat: CatSmartHubs, both: true, tier: 5, pen: 0.0015})
	b.u(insteon, "hub.siminsteon.example", 600, 300)
	b.u(insteon, "c0.siminsteon-cdn.example", 10, 25)
	b.u(insteon, "c1.siminsteon-cdn.example", 8, 20)

	lightify := b.product(prodSpec{name: "Lightify", vendor: "Osram", cat: CatSmartHubs, both: true, tier: 3, pen: 0.004})
	b.u(lightify, "r0.simlightify.example", 500, 280)
	b.u(lightify, "r1.simlightify.example", 350, 220)
	b.u(lightify, "x0.simosram.example", 10, 20)

	hue := b.product(prodSpec{name: "Philips Hue", vendor: "Philips", cat: CatSmartHubs, both: true, tier: 0, pen: 0.040})
	b.useq(hue, "r", "%s%d.simphilips.example", 6, 120, 280)
	b.u(hue, "x0.simphilips.example", 15, 30)
	b.u(hue, "x1.simphilips.example", 15, 30)
	b.u(hue, "hue-cloud.simwhisk.example", 12, 25)
	b.useq(hue, "c", "%s%d.simphilips-cdn.example", 8, 10, 25)
	b.u(hue, "pool12.simntp.example", 12, 0)

	sengled := b.product(prodSpec{name: "Sengled", vendor: "Sengled", cat: CatSmartHubs, both: true, tier: 7, pen: 0.003})
	b.u(sengled, "r0.simsengled.example", 450, 250)
	b.u(sengled, "r1.simsengled.example", 350, 200)
	b.u(sengled, "c0.simsengled-cdn.example", 8, 16)
	b.u(sengled, "c1.simsengled-cdn.example", 6, 12)

	smtt := b.product(prodSpec{name: "Smartthings", vendor: "SmartThings", cat: CatSmartHubs, both: true, tier: 1, pen: 0.018})
	b.u(smtt, "r0.simsmartthings.example", 600, 380)
	b.u(smtt, "r1.simsmartthings.example", 500, 320)
	b.u(smtt, "x0.simsmartthings.example", 20, 40)
	b.u(smtt, "x1.simsmartthings.example", 15, 30)
	b.useq(smtt, "c", "%s%d.simsmartthings-cdn.example", 5, 10, 20)
	b.u(smtt, "pool13.simntp.example", 12, 0)

	switchbot := b.product(prodSpec{name: "SwitchBot", vendor: "SwitchBot", cat: CatSmartHubs, tier: 7, pen: 0.004})
	b.u(switchbot, "p0.simswitchbot.example", 2, 30)
	b.u(switchbot, "p1.simswitchbot.example", 1.5, 20)
	b.u(switchbot, "p2.simswitchbot.example", 1, 15)

	wink := b.product(prodSpec{name: "Wink 2", vendor: "Wink", cat: CatSmartHubs, tier: 7, pen: 0.004})
	b.u(wink, "p0.simwink.example", 150, 120)
	b.u(wink, "p1.simwink.example", 120, 100)

	xhub := b.product(prodSpec{name: "Xiaomi Hub", vendor: "Xiaomi", cat: CatSmartHubs, both: true, tier: 7, pen: 0.025})
	b.useq(xhub, "r", "%s%d.simxiaomi.example", 3, 200, 320)
	b.u(xhub, "x0.simxiaomi.example", 15, 30)
	b.u(xhub, "x1.simxiaomi.example", 12, 25)
	b.u(xhub, "x2.simxiaomi.example", 10, 20)
	b.u(xhub, "mi-cloud.simwhisk.example", 10, 20)
	b.useq(xhub, "c", "%s%d.simxiaomi-cdn.example", 10, 8, 20)
	b.u(xhub, "pool14.simntp.example", 12, 0)

	// ---------------- Home automation ----------------
	dlink := b.product(prodSpec{name: "D-Link Mov Sensor", vendor: "D-Link", cat: CatHomeAutomation, both: true, tier: 3, pen: 0.0045})
	b.useq(dlink, "r", "%s%d.simdlink.example", 5, 100, 200)
	b.useq(dlink, "c", "%s%d.simdlink-cdn.example", 3, 8, 16)

	flux := b.product(prodSpec{name: "Flux Bulb", vendor: "MagicHome", cat: CatHomeAutomation, both: true, tier: 7, pen: 0.004})
	b.u(flux, "r0.simflux.example", 70, 160)
	b.u(flux, "r1.simflux.example", 55, 130)

	honey := b.product(prodSpec{name: "Honeywell T-stat", vendor: "Honeywell", cat: CatHomeAutomation, both: true, tier: 2, pen: 0.008})
	b.useq(honey, "r", "%s%d.simhoneywell.example", 3, 350, 280)
	b.u(honey, "x0.simhoneywell.example", 12, 25)
	b.useq(honey, "c", "%s%d.simhoneywell-cdn.example", 4, 8, 16)

	magic := b.product(prodSpec{name: "Magichome Strip", vendor: "MagicHome", cat: CatHomeAutomation, both: true, tier: 7, pen: 0.004})
	b.u(magic, "api.simmagichome.example", 0.2, 350)

	meross := b.product(prodSpec{name: "Meross Door Opener", vendor: "Meross", cat: CatHomeAutomation, both: true, tier: 0, pen: 0.030})
	b.u(meross, "mqtt.simmeross.example", 700, 400)

	nest := b.product(prodSpec{name: "Nest T-stat", vendor: "Nest", cat: CatHomeAutomation, both: true, tier: 4, pen: 0.0035})
	// Nest idles slowly across several domains, reproducing its long
	// detection times in Fig 10.
	b.useq(nest, "r", "%s%d.simnest.example", 4, 6, 120)
	b.u(nest, "x0.simnest.example", 8, 16)
	b.u(nest, "x1.simnest.example", 6, 12)
	b.u(nest, "nest-weather.simwhisk.example", 6, 12)
	b.useq(nest, "c", "%s%d.simnest-cdn.example", 6, 5, 10)

	pbulb := b.product(prodSpec{name: "Philips Bulb", vendor: "Philips", cat: CatHomeAutomation, both: true, tier: 0, pen: 0.012})
	b.useq(pbulb, "r", "%s%d.simphilips.example", 6, 70, 160)
	b.u(pbulb, "x2.simphilips.example", 8, 16)

	slBulb := b.product(prodSpec{name: "Smartlife Bulb", vendor: "Tuya", cat: CatHomeAutomation, both: true, tier: 7, pen: 0.015})
	b.useq(slBulb, "r", "%s%d.simtuya.example", 4, 60, 150)

	slRemote := b.product(prodSpec{name: "Smartlife Remote", vendor: "Tuya", cat: CatHomeAutomation, both: true, tier: 7, pen: 0.008})
	b.useq(slRemote, "r", "%s%d.simtuya.example", 4, 50, 130)

	tplBulb := b.product(prodSpec{name: "TP-Link Bulb", vendor: "TP-Link", cat: CatHomeAutomation, both: true, tier: 7, pen: 0.030})
	b.useq(tplBulb, "r", "%s%d.simtplink.example", 6, 100, 220)
	b.u(tplBulb, "sup12.simtplink-assets.example", 8, 16)
	b.useq(tplBulb, "c", "%s%d.simtplink-cdn.example", 6, 8, 16)

	// Plugs barely talk (§7.1: active use visible for only ~3.5 % of
	// TP-Link devices).
	tplPlug := b.product(prodSpec{name: "TP-Link Plug", vendor: "TP-Link", cat: CatHomeAutomation, both: true, tier: 7, pen: 0.030})
	b.useq(tplPlug, "r", "%s%d.simtplink.example", 6, 20, 80)

	wemo := b.product(prodSpec{name: "WeMo Plug", vendor: "Belkin", cat: CatHomeAutomation, tier: 7, pen: 0.02})
	b.u(wemo, "p0.simwemo.example", 200, 180)
	b.u(wemo, "p1.simwemo.example", 150, 140)

	xstrip := b.product(prodSpec{name: "Xiaomi Strip", vendor: "Xiaomi", cat: CatHomeAutomation, both: true, tier: 7, pen: 0.012})
	b.useq(xstrip, "r", "%s%d.simxiaomi.example", 3, 150, 200)

	xplug := b.product(prodSpec{name: "Xiaomi Plug", vendor: "Xiaomi", cat: CatHomeAutomation, both: true, tier: 7, pen: 0.018})
	b.useq(xplug, "r", "%s%d.simxiaomi.example", 3, 80, 120)

	// ---------------- Appliances ----------------
	anova := b.product(prodSpec{name: "Anova Sousvide", vendor: "Anova", cat: CatAppliances, both: true, tier: 2, pen: 0.009})
	b.u(anova, "api.simanova.example", 700, 350)

	appk := b.product(prodSpec{name: "Appkettle", vendor: "Appkettle", cat: CatAppliances, both: true, tier: 3, pen: 0.005})
	b.u(appk, "r0.simappkettle.example", 500, 300)
	b.u(appk, "r1.simappkettle.example", 400, 250)

	ge := b.product(prodSpec{name: "GE Microwave", vendor: "GE", cat: CatAppliances, both: true, tier: 5, pen: 0.002})
	b.u(ge, "r0.simge.example", 400, 250)
	b.u(ge, "r1.simge.example", 300, 200)
	b.u(ge, "x0.simge.example", 8, 16)

	netatmo := b.product(prodSpec{name: "Netatmo Weather", vendor: "Netatmo", cat: CatAppliances, both: true, tier: 1, pen: 0.020})
	b.u(netatmo, "api.simnetatmo.example", 800, 400)
	b.u(netatmo, "x0.simnetatmo.example", 10, 20)
	b.u(netatmo, "c0.simnetatmo-cdn.example", 8, 16)
	b.u(netatmo, "c1.simnetatmo-cdn.example", 6, 12)

	dryer := b.product(prodSpec{name: "Samsung Dryer", vendor: "Samsung", cat: CatAppliances, idle: true, tier: 7, pen: 0.035})
	b.u(dryer, "ota.simsamsung.example", 120, 0)
	b.useq(dryer, "sam", "%s%02d.simsamsung.example", 13, 5, 0)

	fridge := b.product(prodSpec{name: "Samsung Fridge", vendor: "Samsung", cat: CatAppliances, idle: true, tier: 7, pen: 0.035})
	b.u(fridge, "ota.simsamsung.example", 130, 0)
	b.useq(fridge, "sam", "%s%02d.simsamsung.example", 13, 6, 0)
	b.u(fridge, "samsung-recipes.simwhisk.example", 15, 0)
	b.u(fridge, "samsung-img.simwhisk.example", 12, 0)

	brewer := b.product(prodSpec{name: "Smarter Brewer", vendor: "Smarter", cat: CatAppliances, tier: 5, pen: 0.002})
	b.u(brewer, "kettle.simsmarter.example", 550, 280)

	scoffee := b.product(prodSpec{name: "Smarter Coffee Machine", vendor: "Smarter", cat: CatAppliances, tier: 5, pen: 0.0025})
	b.u(scoffee, "coffee.simsmarter.example", 600, 300)

	ikettle := b.product(prodSpec{name: "Smarter iKettle", vendor: "Smarter", cat: CatAppliances, both: true, tier: 1, pen: 0.012})
	b.u(ikettle, "kettle.simsmarter.example", 600, 300)

	xrice := b.product(prodSpec{name: "Xiaomi Rice Cooker", vendor: "Xiaomi", cat: CatAppliances, both: true, tier: 7, pen: 0.006})
	b.useq(xrice, "r", "%s%d.simxiaomi.example", 3, 120, 160)

	// ---- Remaining inventory attachments ----
	// Every domain in the §4.1 census is observed in the ground-truth
	// experiments, so each must be contacted by at least one device.
	for i := 0; i < 4; i++ {
		b.u(dot, fmt.Sprintf("x%d.simamazon.example", i), 10, 20)
		b.u(stv, fmt.Sprintf("x%d.simsamsung.example", i), 8, 16)
	}
	b.u(tplBulb, "x0.simtplink.example", 8, 16)
	b.u(tplBulb, "x1.simtplink.example", 8, 16)
	b.u(dot, "alexa-skills.simwhisk.example", 10, 30)
	for i := 0; i < 10; i++ {
		b.u(dot, fmt.Sprintf("c%d.simamazon-cdn.example", i), 10, 30)
	}
	for i := 10; i < 20; i++ {
		b.u(ftv, fmt.Sprintf("c%d.simamazon-cdn.example", i), 8, 40)
	}
	b.u(ftv, "sup2.simamazon-assets.example", 10, 40)
	b.u(ge, "c0.simge-cdn.example", 8, 16)
	b.u(ge, "c1.simge-cdn.example", 6, 12)
	b.u(lgtv, "pool15.simntp.example", 10, 0)
	b.u(roku, "pool16.simntp.example", 10, 0)
	b.u(wemo, "pool17.simntp.example", 10, 0)
	b.u(wink, "pool18.simntp.example", 10, 0)
	b.u(switchbot, "pool19.simntp.example", 10, 0)
	b.u(gh, "g05.simgenericweb.example", 20, 100)
	b.u(ghm, "g06.simgenericweb.example", 15, 80)
	b.u(atv, "g07.simgenericweb.example", 30, 300)
	b.u(stv, "g08.simgenericweb.example", 20, 150)
	b.u(lgtv, "g09.simgenericweb.example", 20, 150)
	b.u(roku, "g19.simgenericweb.example", 30, 250)
	genSpread := []struct {
		p      *Product
		lo, hi int
		idle   float64
		act    float64
	}{
		{ftv, 25, 35, 15, 120}, {atv, 35, 45, 15, 120},
		{stv, 45, 53, 12, 100}, {roku, 53, 60, 12, 100},
		{gh, 60, 65, 10, 60}, {lgtv, 65, 70, 10, 60},
	}
	for _, g := range genSpread {
		for i := g.lo; i < g.hi; i++ {
			b.u(g.p, fmt.Sprintf("g%02d.simgenericweb.example", i), g.idle, g.act)
		}
	}
}
