package catalog

// rules declares the 37 detection-rule specs of Fig 10: 6 platform-,
// 20 manufacturer-, and 11 product-level rules, including the two
// hierarchies of §4.3.2 (Alexa Enabled ⊃ Amazon Product ⊃ Fire TV, and
// Samsung IoT ⊃ Samsung TV).
func (b *builder) rules() {
	avs := []string{"avs-alexa.simamazon.example"}
	amz := append(append([]string{}, avs...), seq("amz", 33, "%s%02d.simamazon.example")...)
	// Child rules monitor their *additional* domains only and require a
	// confirmed parent: "we also try to avoid false positives by
	// ensuring that the domain sets per device differ" (§5). Fire TV's
	// 67 total monitored domains are the 34 Amazon ones (via the
	// parent) plus these 33; Samsung TV's 30 are the 14 core ones plus
	// these 16.
	ftv := seq("ftv", 33, "%s%02d.simamazon.example")
	sam := append([]string{"ota.simsamsung.example"}, seq("sam", 13, "%s%02d.simsamsung.example")...)
	samTV := seq("tv", 16, "%s%02d.simsamsung.example")

	add := func(r RuleSpec) { b.c.Rules = append(b.c.Rules, r) }

	add(RuleSpec{
		Name: "Alexa Enabled", Level: LevelPlatform, Domains: avs, MultiVendor: true,
		Products: []string{"Echo Dot", "Echo Spot", "Echo Plus", "Allure with Alexa", "Fire TV"},
	})
	add(RuleSpec{
		Name: "Amazon Product", Level: LevelManufacturer, Parent: "Alexa Enabled",
		RequireParent: true, Domains: amz,
		Products: []string{"Echo Dot", "Echo Spot", "Echo Plus", "Fire TV"},
	})
	add(RuleSpec{
		Name: "Fire TV", Level: LevelProduct, Parent: "Amazon Product",
		RequireParent: true, Domains: ftv,
		Products: []string{"Fire TV"},
	})
	add(RuleSpec{
		Name: "Samsung IoT", Level: LevelManufacturer, Domains: sam, MinOverride: 1,
		Products: []string{"Samsung TV", "Samsung Dryer", "Samsung Fridge"},
	})
	add(RuleSpec{
		Name: "Samsung TV", Level: LevelProduct, Parent: "Samsung IoT", RequireParent: true,
		Domains:  samTV,
		Products: []string{"Samsung TV"},
	})

	// One-domain rules.
	add(RuleSpec{Name: "Anova Sousvide", Level: LevelProduct,
		Domains: []string{"api.simanova.example"}, Products: []string{"Anova Sousvide"}})
	add(RuleSpec{Name: "iKettle", Level: LevelPlatform,
		Domains: []string{"kettle.simsmarter.example"}, Products: []string{"Smarter iKettle", "Smarter Brewer"}})
	add(RuleSpec{Name: "Insteon Hub", Level: LevelProduct,
		Domains: []string{"hub.siminsteon.example"}, Products: []string{"Insteon"}})
	add(RuleSpec{Name: "Magichome Stripe", Level: LevelProduct,
		Domains: []string{"api.simmagichome.example"}, Products: []string{"Magichome Strip"}})
	add(RuleSpec{Name: "Meross Dooropener", Level: LevelManufacturer,
		Domains: []string{"mqtt.simmeross.example"}, Products: []string{"Meross Door Opener"}})
	add(RuleSpec{Name: "Microseven Cam.", Level: LevelProduct,
		Domains: []string{"cam.simmicroseven.example"}, Products: []string{"Microseven Cam"}})
	add(RuleSpec{Name: "Netatmo Weather St.", Level: LevelManufacturer,
		Domains: []string{"api.simnetatmo.example"}, Products: []string{"Netatmo Weather"}})
	add(RuleSpec{Name: "Smarter Coffee", Level: LevelPlatform,
		Domains: []string{"coffee.simsmarter.example"}, Products: []string{"Smarter Coffee Machine"}})

	// Two-domain rules.
	two := func(name string, level Level, label string, products ...string) {
		add(RuleSpec{Name: name, Level: level,
			Domains: seq("r", 2, "%s%d."+label+".example"), Products: products})
	}
	two("AppKettle", LevelProduct, "simappkettle", "Appkettle")
	two("Blink Hub & Cam.", LevelManufacturer, "simblink", "Blink Cam", "Blink Hub")
	two("Flux Bulb", LevelPlatform, "simflux", "Flux Bulb")
	two("GE Microwave", LevelManufacturer, "simge", "GE Microwave")
	two("Icsee Doorbell", LevelProduct, "simicsee", "Icsee Doorbell")
	two("Lightify Hub", LevelPlatform, "simlightify", "Lightify")
	two("Luohe Cam.", LevelProduct, "simluohe", "Luohe Cam")
	two("Reolink Cam.", LevelProduct, "simreolink", "Reolink Cam")
	two("Sengled Dev.", LevelManufacturer, "simsengled", "Sengled")
	two("Smartthings Dev.", LevelManufacturer, "simsmartthings", "Smartthings")
	two("Wansview Cam.", LevelManufacturer, "simwansview", "Wansview Cam")

	// Three- and four-domain rules.
	add(RuleSpec{Name: "Honeywell T-stat", Level: LevelManufacturer,
		Domains: seq("r", 3, "%s%d.simhoneywell.example"), Products: []string{"Honeywell T-stat"}})
	add(RuleSpec{Name: "Xiaomi Dev.", Level: LevelManufacturer,
		Domains:  seq("r", 3, "%s%d.simxiaomi.example"),
		Products: []string{"Xiaomi Hub", "Xiaomi Strip", "Xiaomi Plug", "Xiaomi Rice Cooker"}})
	add(RuleSpec{Name: "Nest Device", Level: LevelManufacturer,
		Domains: seq("r", 4, "%s%d.simnest.example"), Products: []string{"Nest T-stat"}})
	add(RuleSpec{Name: "Ring Doorbell", Level: LevelManufacturer,
		Domains: seq("r", 4, "%s%d.simring.example"), Products: []string{"Ring Doorbell"}})
	add(RuleSpec{Name: "Smartlife", Level: LevelPlatform, MultiVendor: true,
		Domains:  seq("r", 4, "%s%d.simtuya.example"),
		Products: []string{"Smartlife Bulb", "Smartlife Remote"}})
	add(RuleSpec{Name: "Ubell Doorbell", Level: LevelManufacturer,
		Domains: seq("r", 4, "%s%d.simubell.example"), Products: []string{"Ubell Doorbell"}})
	add(RuleSpec{Name: "Yi Camera", Level: LevelManufacturer,
		Domains: seq("r", 4, "%s%d.simyi.example"), Products: []string{"Yi Cam"}})

	// Five-plus-domain rules.
	add(RuleSpec{Name: "Amcrest Cam.", Level: LevelManufacturer,
		Domains: seq("r", 5, "%s%d.simamcrest.example"), Products: []string{"Amcrest Cam"}})
	add(RuleSpec{Name: "Dlink Motion Sens.", Level: LevelManufacturer,
		Domains: seq("r", 5, "%s%d.simdlink.example"), Products: []string{"D-Link Mov Sensor"}})
	add(RuleSpec{Name: "ZModo Doorbell", Level: LevelManufacturer,
		Domains: seq("r", 5, "%s%d.simzmodo.example"), Products: []string{"ZModo Doorbell"}})
	add(RuleSpec{Name: "Philips Dev.", Level: LevelManufacturer,
		Domains: seq("r", 6, "%s%d.simphilips.example"), Products: []string{"Philips Hue", "Philips Bulb"}})
	add(RuleSpec{Name: "TP-link Dev.", Level: LevelManufacturer,
		Domains: seq("r", 6, "%s%d.simtplink.example"), Products: []string{"TP-Link Bulb", "TP-Link Plug"}})
	add(RuleSpec{Name: "Roku TV", Level: LevelProduct,
		Domains: seq("r", 7, "%s%d.simroku.example"), Products: []string{"Roku TV"}})
}
