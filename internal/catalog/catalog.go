// Package catalog defines the IoT testbed of the paper's Table 1 —
// 96 devices, 40 vendors, 56 unique products across six categories —
// together with each product's backend footprint: the domains it
// contacts, how those domains are hosted, the ports used, and the
// idle/active traffic intensity per domain.
//
// The inventory is engineered so that the §4 pipeline, run against the
// simulated passive-DNS and certificate-scan datasets, reproduces the
// paper's counts exactly:
//
//   - 524 distinct domains: 415 Primary + 19 Support (= 434
//     IoT-specific) + 90 Generic (§4.1);
//   - of the 434: 217 on dedicated infrastructure, 202 on shared
//     infrastructure, 15 without passive-DNS records, of which 8
//     (belonging to 5 devices) are recoverable from certificate scans
//     (§4.2);
//   - 37 detection rules: 6 platform-, 20 manufacturer-, and
//     11 product-level (Fig 10; the conclusion's "5 platforms" counts
//     Fig 10's six platform rows minus the Alexa umbrella).
package catalog

import (
	"fmt"

	"repro/internal/flow"
	"repro/internal/hosting"
)

// Category is a Table 1 device category.
type Category uint8

// Categories of Table 1.
const (
	CatSurveillance Category = iota + 1
	CatSmartHubs
	CatHomeAutomation
	CatVideo
	CatAudio
	CatAppliances
)

// String returns the Table 1 category heading.
func (c Category) String() string {
	switch c {
	case CatSurveillance:
		return "Surveillance"
	case CatSmartHubs:
		return "Smart Hubs"
	case CatHomeAutomation:
		return "Home Automation"
	case CatVideo:
		return "Video"
	case CatAudio:
		return "Audio"
	case CatAppliances:
		return "Appliances"
	}
	return fmt.Sprintf("Category(%d)", uint8(c))
}

// Categories lists all categories in Table 1 order.
func Categories() []Category {
	return []Category{CatSurveillance, CatSmartHubs, CatHomeAutomation, CatVideo, CatAudio, CatAppliances}
}

// Level is a detection granularity (§4.3.1).
type Level uint8

// Detection levels, coarse to fine.
const (
	LevelPlatform Level = iota + 1
	LevelManufacturer
	LevelProduct
)

// String returns the paper's level abbreviation.
func (l Level) String() string {
	switch l {
	case LevelPlatform:
		return "Pl."
	case LevelManufacturer:
		return "Man."
	case LevelProduct:
		return "Pr."
	}
	return fmt.Sprintf("Level(%d)", uint8(l))
}

// Role classifies a domain per §4.1.
type Role uint8

// Domain roles.
const (
	RolePrimary Role = iota + 1
	RoleSupport
	RoleGeneric
)

// String returns the role name.
func (r Role) String() string {
	switch r {
	case RolePrimary:
		return "Primary"
	case RoleSupport:
		return "Support"
	case RoleGeneric:
		return "Generic"
	}
	return fmt.Sprintf("Role(%d)", uint8(r))
}

// Domain is one backend domain with its hosting ground truth.
type Domain struct {
	Name     string
	Role     Role
	Kind     hosting.Kind
	Provider string // hosting provider key
	PoolSize int    // service IPs behind the domain
	HTTPS    bool   // presents a certificate on 443
	// PDNSCovered is false for the 15 domains DNSDB never saw (§4.2.2).
	PDNSCovered bool
	Port        uint16
	Proto       flow.Proto
	BytesPerPkt uint64
}

// Use binds a product to a domain with traffic intensities.
type Use struct {
	Domain *Domain
	// IdlePPH is the mean packets/hour exchanged with the domain while
	// the device is idle (0 = not contacted when idle).
	IdlePPH float64
	// ActivePPH is the mean *additional* packets/hour during active
	// experiments.
	ActivePPH float64
}

// Product is one of the 56 unique products.
type Product struct {
	Name     string
	Vendor   string
	Category Category
	// InBothTestbeds marks products deployed in both the EU and US
	// testbeds (two device instances).
	InBothTestbeds bool
	// IdleOnly marks products whose interactions could not be
	// automated (Table 1 "idle").
	IdleOnly bool
	// SharedOnly marks products whose entire backend is shared
	// infrastructure, excluded in §4.2.3.
	SharedOnly bool
	Uses       []Use
	// MarketTier is the Fig 14 popularity band (0 = Top 10 … 6 = no
	// market presence in the ISP's country).
	MarketTier int
	// WildPenetration is the fraction of IoT-adopter subscriber lines
	// hosting this product in the wild-ISP model.
	WildPenetration float64
}

// Domains returns the product's domain set.
func (p *Product) Domains() []*Domain {
	out := make([]*Domain, len(p.Uses))
	for i, u := range p.Uses {
		out[i] = u.Domain
	}
	return out
}

// RuleSpec declares one intended detection rule (§4.3.2); package rules
// compiles specs against the dedicated-infrastructure pipeline output.
type RuleSpec struct {
	Name   string // e.g. "Amazon Product"
	Level  Level
	Parent string // enclosing rule in the hierarchy ("" = none)
	// RequireParent: claim detection only when the parent rule has
	// fired (the Samsung TV case in §5).
	RequireParent bool
	// MultiVendor marks platform rules whose backend serves devices of
	// several manufacturers (§4.3.1) — detecting the platform does not
	// recognize any single manufacturer.
	MultiVendor bool
	// MinOverride fixes the evidence requirement regardless of the
	// detection threshold D. Samsung IoT uses 1: of its 14 monitored
	// domains "only one domain is important to detect Samsung IoT
	// devices with Samsung firmware" (§4.3.2); the rest feed the
	// Samsung TV sub-classification.
	MinOverride int
	// Domains are the monitored primary domains.
	Domains []string
	// Products are the catalog products this rule detects.
	Products []string
}

// Label renders the Fig 10 row label, e.g. "Samsung TV(Pr.)".
func (r *RuleSpec) Label() string { return fmt.Sprintf("%s(%s)", r.Name, r.Level) }

// ProviderSpec declares a hosting provider to create.
type ProviderSpec struct {
	Name string
	Kind hosting.Kind
	ASN  uint32
	CIDR string
	Zone string
}

// Device is one physical device instance in a testbed.
type Device struct {
	ID      int
	Product *Product
	// Testbed is 1 (EU) or 2 (US).
	Testbed int
}

// String renders "Echo Dot#2".
func (d Device) String() string { return fmt.Sprintf("%s#%d", d.Product.Name, d.Testbed) }

// Catalog is the full testbed inventory.
type Catalog struct {
	Vendors   []string
	Products  []*Product
	Domains   map[string]*Domain
	domainSeq []string
	Rules     []RuleSpec
	Providers []ProviderSpec
}

// Product returns a product by name.
func (c *Catalog) Product(name string) (*Product, bool) {
	for _, p := range c.Products {
		if p.Name == name {
			return p, true
		}
	}
	return nil, false
}

// Rule returns a rule spec by name.
func (c *Catalog) Rule(name string) (*RuleSpec, bool) {
	for i := range c.Rules {
		if c.Rules[i].Name == name {
			return &c.Rules[i], true
		}
	}
	return nil, false
}

// DomainNames returns all domains in insertion order.
func (c *Catalog) DomainNames() []string {
	out := make([]string, len(c.domainSeq))
	copy(out, c.domainSeq)
	return out
}

// Devices expands products into the 96 testbed device instances:
// every product exists in testbed 1; InBothTestbeds products have a
// second instance in testbed 2.
func (c *Catalog) Devices() []Device {
	var out []Device
	id := 0
	for _, p := range c.Products {
		out = append(out, Device{ID: id, Product: p, Testbed: 1})
		id++
	}
	for _, p := range c.Products {
		if p.InBothTestbeds {
			out = append(out, Device{ID: id, Product: p, Testbed: 2})
			id++
		}
	}
	return out
}

// RulesDetecting returns the rule specs that list the product.
func (c *Catalog) RulesDetecting(product string) []RuleSpec {
	var out []RuleSpec
	for _, r := range c.Rules {
		for _, p := range r.Products {
			if p == product {
				out = append(out, r)
				break
			}
		}
	}
	return out
}
