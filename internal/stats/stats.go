// Package stats provides the small statistical toolkit the experiments
// need: empirical CDFs, heavy-hitter selection, distinct counting, and
// time-binned series.
//
// Everything is exact (no sketches): the simulated datasets fit in
// memory, and the paper's figures are exact aggregates too.
package stats

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"sort"
)

// ECDF is an empirical cumulative distribution function over float64
// samples. The zero value is an empty distribution; Add samples, then
// query. Queries sort lazily.
type ECDF struct {
	samples []float64
	sorted  bool
}

// Add appends a sample.
func (e *ECDF) Add(v float64) {
	e.samples = append(e.samples, v)
	e.sorted = false
}

// AddN appends v n times.
func (e *ECDF) AddN(v float64, n int) {
	for i := 0; i < n; i++ {
		e.Add(v)
	}
}

// Len returns the number of samples.
func (e *ECDF) Len() int { return len(e.samples) }

func (e *ECDF) ensure() {
	if !e.sorted {
		slices.Sort(e.samples)
		e.sorted = true
	}
}

// At returns the fraction of samples <= x, in [0, 1]. It returns 0 for
// an empty distribution.
func (e *ECDF) At(x float64) float64 {
	if len(e.samples) == 0 {
		return 0
	}
	e.ensure()
	i := sort.SearchFloat64s(e.samples, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.samples))
}

// Quantile returns the q-th quantile (q in [0, 1]) using the nearest-rank
// method. It panics on an empty distribution or out-of-range q.
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.samples) == 0 {
		panic("stats: Quantile of empty ECDF")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: Quantile(%v) out of [0,1]", q))
	}
	e.ensure()
	if q == 0 {
		return e.samples[0]
	}
	idx := int(math.Ceil(q*float64(len(e.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return e.samples[idx]
}

// Mean returns the sample mean (0 for empty).
func (e *ECDF) Mean() float64 {
	if len(e.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range e.samples {
		sum += v
	}
	return sum / float64(len(e.samples))
}

// Points returns up to n (x, F(x)) pairs evenly spaced through the
// sorted samples, suitable for plotting the ECDF curve.
func (e *ECDF) Points(n int) [][2]float64 {
	if len(e.samples) == 0 || n <= 0 {
		return nil
	}
	e.ensure()
	if n > len(e.samples) {
		n = len(e.samples)
	}
	pts := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		idx := (i * (len(e.samples) - 1)) / max(n-1, 1)
		pts = append(pts, [2]float64{e.samples[idx], float64(idx+1) / float64(len(e.samples))})
	}
	return pts
}

// Counter counts occurrences of comparable keys.
type Counter[K comparable] map[K]uint64

// Inc adds n to key k's count.
func (c Counter[K]) Inc(k K, n uint64) { c[k] += n }

// Total returns the sum of all counts.
func (c Counter[K]) Total() uint64 {
	var t uint64
	for _, v := range c {
		t += v
	}
	return t
}

// KV is a key with its count.
type KV[K comparable] struct {
	Key   K
	Count uint64
}

// TopK returns the k highest-count entries, ties broken arbitrarily but
// deterministically unfriendly-free via full sort on count descending.
func TopK[K cmp.Ordered](c Counter[K], k int) []KV[K] {
	all := make([]KV[K], 0, len(c))
	for key, n := range c {
		all = append(all, KV[K]{key, n})
	}
	slices.SortFunc(all, func(a, b KV[K]) int {
		if a.Count != b.Count {
			return cmp.Compare(b.Count, a.Count)
		}
		return cmp.Compare(a.Key, b.Key)
	})
	if k < len(all) {
		all = all[:k]
	}
	return all
}

// TopFraction returns the keys whose counts place them in the top f
// (0 < f <= 1) fraction of keys by count. This mirrors the paper's
// "top 10 %/20 %/30 % of service IPs by byte count" (Fig 6).
func TopFraction[K cmp.Ordered](c Counter[K], f float64) []K {
	if len(c) == 0 || f <= 0 {
		return nil
	}
	k := int(math.Ceil(f * float64(len(c))))
	top := TopK(c, k)
	keys := make([]K, len(top))
	for i, kv := range top {
		keys[i] = kv.Key
	}
	return keys
}

// Set is a distinct-element set.
type Set[K comparable] map[K]struct{}

// NewSet returns a set containing the given elements.
func NewSet[K comparable](ks ...K) Set[K] {
	s := make(Set[K], len(ks))
	for _, k := range ks {
		s.Add(k)
	}
	return s
}

// Add inserts k.
func (s Set[K]) Add(k K) { s[k] = struct{}{} }

// Has reports membership.
func (s Set[K]) Has(k K) bool { _, ok := s[k]; return ok }

// Len returns the cardinality.
func (s Set[K]) Len() int { return len(s) }

// AddAll inserts every element of other.
func (s Set[K]) AddAll(other Set[K]) {
	for k := range other {
		s.Add(k)
	}
}

// IntersectCount returns |s ∩ other|.
func (s Set[K]) IntersectCount(other Set[K]) int {
	small, big := s, other
	if len(big) < len(small) {
		small, big = big, small
	}
	n := 0
	for k := range small {
		if big.Has(k) {
			n++
		}
	}
	return n
}

// Series is an ordered sequence of (bin, value) pairs keyed by an
// integer-like bin (hour or day).
type Series[B cmp.Ordered] struct {
	m map[B]float64
}

// NewSeries returns an empty series.
func NewSeries[B cmp.Ordered]() *Series[B] { return &Series[B]{m: map[B]float64{}} }

// Add accumulates v into bin b.
func (s *Series[B]) Add(b B, v float64) { s.m[b] += v }

// Set overwrites bin b.
func (s *Series[B]) Set(b B, v float64) { s.m[b] = v }

// Get returns the value at bin b (0 if absent).
func (s *Series[B]) Get(b B) float64 { return s.m[b] }

// Len returns the number of bins.
func (s *Series[B]) Len() int { return len(s.m) }

// Bins returns the bins in ascending order.
func (s *Series[B]) Bins() []B {
	bins := make([]B, 0, len(s.m))
	for b := range s.m {
		bins = append(bins, b)
	}
	slices.Sort(bins)
	return bins
}

// Values returns the values in bin order.
func (s *Series[B]) Values() []float64 {
	bins := s.Bins()
	vs := make([]float64, len(bins))
	for i, b := range bins {
		vs[i] = s.m[b]
	}
	return vs
}

// Max returns the maximum value (0 for empty).
func (s *Series[B]) Max() float64 {
	m := 0.0
	first := true
	for _, v := range s.m {
		if first || v > m {
			m, first = v, false
		}
	}
	return m
}

// Mean returns the mean value across bins (0 for empty).
func (s *Series[B]) Mean() float64 {
	if len(s.m) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.m {
		sum += v
	}
	return sum / float64(len(s.m))
}

// Ratio returns, bin by bin, num/den for bins where den > 0, averaged.
// It reports the mean visibility ratio used throughout §3.
func Ratio[B cmp.Ordered](num, den *Series[B]) float64 {
	sum, n := 0.0, 0
	for _, b := range den.Bins() {
		d := den.Get(b)
		if d <= 0 {
			continue
		}
		sum += num.Get(b) / d
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
