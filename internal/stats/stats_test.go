package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestECDFBasics(t *testing.T) {
	var e ECDF
	for _, v := range []float64{1, 2, 3, 4} {
		e.Add(v)
	}
	if e.Len() != 4 {
		t.Fatalf("Len = %d", e.Len())
	}
	cases := []struct {
		x, want float64
	}{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {100, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestECDFMonotone(t *testing.T) {
	f := func(vs []float64, a, b float64) bool {
		var e ECDF
		for _, v := range vs {
			if !math.IsNaN(v) {
				e.Add(v)
			}
		}
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return e.At(a) <= e.At(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestECDFQuantile(t *testing.T) {
	var e ECDF
	for i := 1; i <= 100; i++ {
		e.Add(float64(i))
	}
	if q := e.Quantile(0.5); q != 50 {
		t.Fatalf("median = %v", q)
	}
	if q := e.Quantile(1); q != 100 {
		t.Fatalf("q1 = %v", q)
	}
	if q := e.Quantile(0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := e.Quantile(0.01); q != 1 {
		t.Fatalf("q0.01 = %v", q)
	}
}

func TestECDFQuantilePanics(t *testing.T) {
	var e ECDF
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile on empty ECDF did not panic")
		}
	}()
	e.Quantile(0.5)
}

func TestECDFAddAfterQuery(t *testing.T) {
	var e ECDF
	e.Add(1)
	_ = e.At(1)
	e.Add(0) // must re-sort
	if got := e.At(0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("At(0) after late add = %v", got)
	}
}

func TestECDFMeanAndAddN(t *testing.T) {
	var e ECDF
	e.AddN(2, 3)
	e.Add(8)
	if got := e.Mean(); math.Abs(got-3.5) > 1e-12 {
		t.Fatalf("mean = %v", got)
	}
}

func TestECDFPoints(t *testing.T) {
	var e ECDF
	for i := 0; i < 50; i++ {
		e.Add(float64(i))
	}
	pts := e.Points(10)
	if len(pts) != 10 {
		t.Fatalf("Points returned %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i][0] < pts[i-1][0] || pts[i][1] < pts[i-1][1] {
			t.Fatalf("points not monotone: %v", pts)
		}
	}
	if pts[len(pts)-1][1] != 1 {
		t.Fatalf("last point F=%v, want 1", pts[len(pts)-1][1])
	}
}

func TestCounterTopK(t *testing.T) {
	c := Counter[string]{}
	c.Inc("a", 5)
	c.Inc("b", 10)
	c.Inc("c", 1)
	c.Inc("a", 1)
	top := TopK(c, 2)
	if len(top) != 2 || top[0].Key != "b" || top[1].Key != "a" || top[1].Count != 6 {
		t.Fatalf("TopK = %v", top)
	}
	if c.Total() != 17 {
		t.Fatalf("Total = %d", c.Total())
	}
}

func TestTopKDeterministicTies(t *testing.T) {
	c := Counter[string]{"x": 3, "y": 3, "z": 3}
	a := TopK(c, 3)
	b := TopK(c, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("TopK tie order not deterministic")
		}
	}
	if a[0].Key != "x" {
		t.Fatalf("tie order = %v", a)
	}
}

func TestTopFraction(t *testing.T) {
	c := Counter[int]{}
	for i := 1; i <= 10; i++ {
		c.Inc(i, uint64(i))
	}
	top := TopFraction(c, 0.2) // top 2 of 10
	if len(top) != 2 {
		t.Fatalf("TopFraction(0.2) returned %d keys", len(top))
	}
	want := NewSet(10, 9)
	for _, k := range top {
		if !want.Has(k) {
			t.Fatalf("unexpected top key %d", k)
		}
	}
	if got := TopFraction(c, 0); got != nil {
		t.Fatal("TopFraction(0) should be nil")
	}
	if got := TopFraction(c, 1); len(got) != 10 {
		t.Fatalf("TopFraction(1) = %d keys", len(got))
	}
}

func TestSet(t *testing.T) {
	s := NewSet("a", "b")
	s.Add("c")
	if !s.Has("a") || !s.Has("c") || s.Has("d") {
		t.Fatal("membership wrong")
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	other := NewSet("c", "d", "e")
	if got := s.IntersectCount(other); got != 1 {
		t.Fatalf("IntersectCount = %d", got)
	}
	s.AddAll(other)
	if s.Len() != 5 {
		t.Fatalf("after AddAll Len = %d", s.Len())
	}
}

func TestIntersectCountSymmetric(t *testing.T) {
	f := func(a, b []uint8) bool {
		sa, sb := NewSet(a...), NewSet(b...)
		return sa.IntersectCount(sb) == sb.IntersectCount(sa)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries[int64]()
	s.Add(5, 2)
	s.Add(3, 1)
	s.Add(5, 3)
	s.Set(7, 10)
	if got := s.Get(5); got != 5 {
		t.Fatalf("Get(5) = %v", got)
	}
	bins := s.Bins()
	if len(bins) != 3 || bins[0] != 3 || bins[2] != 7 {
		t.Fatalf("Bins = %v", bins)
	}
	vals := s.Values()
	if vals[0] != 1 || vals[1] != 5 || vals[2] != 10 {
		t.Fatalf("Values = %v", vals)
	}
	if s.Max() != 10 {
		t.Fatalf("Max = %v", s.Max())
	}
	if math.Abs(s.Mean()-16.0/3) > 1e-12 {
		t.Fatalf("Mean = %v", s.Mean())
	}
}

func TestSeriesEmpty(t *testing.T) {
	s := NewSeries[int]()
	if s.Max() != 0 || s.Mean() != 0 || s.Len() != 0 {
		t.Fatal("empty series not zero")
	}
	if s.Bins() != nil && len(s.Bins()) != 0 {
		t.Fatal("empty series has bins")
	}
}

func TestRatio(t *testing.T) {
	num, den := NewSeries[int](), NewSeries[int]()
	den.Set(1, 100)
	den.Set(2, 200)
	den.Set(3, 0) // skipped
	num.Set(1, 16)
	num.Set(2, 32)
	if got := Ratio(num, den); math.Abs(got-0.16) > 1e-12 {
		t.Fatalf("Ratio = %v", got)
	}
	if got := Ratio(num, NewSeries[int]()); got != 0 {
		t.Fatalf("Ratio with empty denominator = %v", got)
	}
}
