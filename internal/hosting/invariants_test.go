package hosting

import (
	"net/netip"
	"testing"

	"repro/internal/simrand"
)

// The §4.2.1 classification correctness rests on two structural
// invariants of the hosting model; these tests pin them directly.

// Invariant 1: dedicated and cloud-tenant addresses are never shared
// across domains of different SLDs, even under heavy churn.
func TestInvariantExclusiveAddressesNeverShared(t *testing.T) {
	in := New(simrand.New(3), Config{ChurnProb: 0.5, CDNBackgroundTenants: 8})
	if _, err := in.AddProvider("dc", KindDedicated, 1, "185.3.0.0/16", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := in.AddProvider("cloud", KindCloudTenant, 2, "186.1.0.0/16", "ec2compute.simcloud.example"); err != nil {
		t.Fatal(err)
	}
	domains := []string{
		"a.simx.example", "b.simx.example", // same SLD — may collide harmlessly
		"a.simy.example", "a.simz.example", "tenant.simw.example",
	}
	providers := []string{"dc", "dc", "cloud", "dc", "cloud"}
	for i, d := range domains {
		if _, err := in.Host(d, providers[i], 3, false); err != nil {
			t.Fatal(err)
		}
	}
	owner := map[netip.Addr]string{} // addr -> SLD suffix
	sldOf := func(d string) string {
		// all test domains are <label>.<sld>.example
		return d[len(d)-len("simx.example"):]
	}
	for day := 0; day < 60; day++ {
		for _, d := range domains {
			for _, ip := range in.Resolve(d) {
				if prev, ok := owner[ip]; ok && prev != sldOf(d) {
					t.Fatalf("address %v served both %s and %s", ip, prev, sldOf(d))
				}
				owner[ip] = sldOf(d)
			}
		}
		in.StepDay()
	}
}

// Invariant 2: shared-kind addresses stay inside the provider pool, so
// the background tenants blanket every address the tenants can land on.
func TestInvariantSharedStaysInPool(t *testing.T) {
	in := New(simrand.New(4), Config{ChurnProb: 0.9, CDNBackgroundTenants: 8})
	p, err := in.AddProvider("cdn", KindCDN, 3, "187.1.0.0/16", "cdn.simakamai.example")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Host("devb.example", "cdn", 4, true); err != nil {
		t.Fatal(err)
	}
	pool := map[netip.Addr]bool{}
	for _, ip := range p.Pool(64) {
		pool[ip] = true
	}
	for day := 0; day < 60; day++ {
		for _, ip := range in.Resolve("devb.example") {
			if !pool[ip] {
				t.Fatalf("day %d: CDN-hosted domain left the shared pool: %v", day, ip)
			}
		}
		in.StepDay()
	}
}

// Invariant 3: AllocIP never repeats (clouds never recycle a tenant
// address to another tenant, §4.2.1).
func TestInvariantAllocNeverRepeats(t *testing.T) {
	in := New(simrand.New(5), DefaultConfig())
	p, err := in.AddProvider("cloud", KindCloudTenant, 9, "186.2.0.0/20", "iotcloud.simaws.example")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[netip.Addr]bool{}
	for i := 0; i < 2000; i++ {
		ip := p.AllocIP()
		if seen[ip] {
			t.Fatalf("address %v allocated twice", ip)
		}
		seen[ip] = true
	}
}
