package hosting

import (
	"testing"

	"repro/internal/certscan"
	"repro/internal/pdns"
	"repro/internal/simrand"
	"repro/internal/simtime"
)

const day0 = simtime.Day(18215) // 2019-11-15

func newInfra(t *testing.T) *Infra {
	t.Helper()
	in := New(simrand.New(1), DefaultConfig())
	mustProvider := func(name string, kind Kind, asn uint32, cidr, zone string) {
		if _, err := in.AddProvider(name, kind, asn, cidr, zone); err != nil {
			t.Fatal(err)
		}
	}
	mustProvider("simring-dc", KindDedicated, 64601, "185.3.0.0/16", "")
	mustProvider("simcloud", KindCloudTenant, 64602, "185.9.0.0/16", "ec2compute.simcloud.example")
	mustProvider("simakamai", KindCDN, 64603, "185.8.0.0/16", "cdn.simakamai.example")
	mustProvider("ntp", KindNTPPool, 64604, "185.10.0.0/24", "")
	return in
}

func TestHostDedicated(t *testing.T) {
	in := newInfra(t)
	a, err := in.Host("api.simring.example", "simring-dc", 3, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.IPs) != 3 {
		t.Fatalf("pool size %d", len(a.IPs))
	}
	if a.CNAME != "" {
		t.Fatalf("dedicated hosting has CNAME %q", a.CNAME)
	}
	if a.Kind.Shared() {
		t.Fatal("dedicated kind claims shared")
	}
	seen := map[string]bool{}
	for _, ip := range a.IPs {
		if seen[ip.String()] {
			t.Fatal("duplicate IP in dedicated pool")
		}
		seen[ip.String()] = true
		if in.OwnerASN(ip) != 64601 {
			t.Fatalf("IP %v not in provider block", ip)
		}
	}
}

func TestHostCloudTenantCNAME(t *testing.T) {
	in := newInfra(t)
	a, err := in.Host("deva.example", "simcloud", 1, true)
	if err != nil {
		t.Fatal(err)
	}
	want := "deva-example-vm.ec2compute.simcloud.example"
	if a.CNAME != want {
		t.Fatalf("CNAME = %q, want %q", a.CNAME, want)
	}
}

func TestHostCDNUsesSharedPool(t *testing.T) {
	in := newInfra(t)
	a1, err := in.Host("devb.example", "simakamai", 4, true)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := in.Host("devc.example", "simakamai", 4, true)
	if err != nil {
		t.Fatal(err)
	}
	// Pools draw from the same shared block: count overlap across many
	// domains must eventually be non-empty; with 64-address pools and
	// 4-address picks collisions may not occur for 2 domains, so assert
	// the weaker invariant that all IPs are in the provider block.
	for _, a := range []*Assignment{a1, a2} {
		for _, ip := range a.IPs {
			if in.OwnerASN(ip) != 64603 {
				t.Fatalf("CDN IP %v outside block", ip)
			}
		}
	}
}

func TestDuplicateDomainRejected(t *testing.T) {
	in := newInfra(t)
	if _, err := in.Host("x.simring.example", "simring-dc", 1, false); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Host("x.simring.example", "simring-dc", 1, false); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestUnknownProviderRejected(t *testing.T) {
	in := newInfra(t)
	if _, err := in.Host("x.simring.example", "nope", 1, false); err == nil {
		t.Fatal("unknown provider accepted")
	}
}

func TestChurnReplacesDedicatedWithFreshIP(t *testing.T) {
	in := New(simrand.New(7), Config{ChurnProb: 1, CDNBackgroundTenants: 4})
	if _, err := in.AddProvider("dc", KindDedicated, 1, "185.3.0.0/16", ""); err != nil {
		t.Fatal(err)
	}
	a, _ := in.Host("api.simx.example", "dc", 2, false)
	before := map[string]bool{}
	for _, ip := range a.IPs {
		before[ip.String()] = true
	}
	allSeen := map[string]bool{}
	for d := 0; d < 20; d++ {
		in.StepDay()
		for _, ip := range a.IPs {
			allSeen[ip.String()] = true
		}
	}
	if len(allSeen) <= len(before) {
		t.Fatal("churn never introduced a fresh IP")
	}
}

func TestPDNSSeesDedicatedAsExclusive(t *testing.T) {
	in := newInfra(t)
	a, _ := in.Host("api.simring.example", "simring-dc", 2, true)
	db := pdns.New()
	for d := day0; d < day0+14; d++ {
		in.ObserveInto(db, d)
		in.StepDay()
	}
	for _, ip := range a.IPs { // current IPs after churn are observed on the last day
		ok, sld := db.ExclusiveIP(ip, day0, day0+13)
		if !ok || sld != "simring.example" {
			t.Fatalf("dedicated IP %v not exclusive (%v %q)", ip, ok, sld)
		}
	}
}

func TestPDNSSeesCloudTenantAsExclusive(t *testing.T) {
	in := newInfra(t)
	a, _ := in.Host("deva.example", "simcloud", 1, true)
	db := pdns.New()
	for d := day0; d < day0+7; d++ {
		in.ObserveInto(db, d)
		in.StepDay()
	}
	ok, sld := db.ExclusiveIP(a.IPs[0], day0, day0+6)
	if !ok || sld != "deva.example" {
		t.Fatalf("cloud tenant IP not exclusive: %v %q", ok, sld)
	}
}

func TestPDNSSeesCDNAsShared(t *testing.T) {
	in := newInfra(t)
	if err := in.AddCDNBackground("simakamai"); err != nil {
		t.Fatal(err)
	}
	a, _ := in.Host("devb.example", "simakamai", 4, true)
	db := pdns.New()
	for d := day0; d < day0+3; d++ {
		in.ObserveInto(db, d)
		in.StepDay()
	}
	shared := 0
	for _, ip := range a.IPs {
		if ok, _ := db.ExclusiveIP(ip, day0, day0+2); !ok {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("no CDN IP classified shared despite background tenants")
	}
}

func TestAddCDNBackgroundRejectsDedicated(t *testing.T) {
	in := newInfra(t)
	if err := in.AddCDNBackground("simring-dc"); err == nil {
		t.Fatal("background tenants on dedicated provider accepted")
	}
}

func TestScanIntoFindsHTTPSHosts(t *testing.T) {
	in := newInfra(t)
	a, _ := in.Host("c.deve.example", "simring-dc", 3, true)
	_, _ = in.Host("plain.simring.example", "simring-dc", 1, false)
	db := certscan.New()
	in.ScanInto(db)
	if db.Len() != 3 {
		t.Fatalf("scanned %d hosts, want 3", db.Len())
	}
	ips, ok := db.ServiceIPsForDomain("c.deve.example")
	if !ok || len(ips) != len(a.IPs) {
		t.Fatalf("ServiceIPsForDomain = %v, %v", ips, ok)
	}
}

func TestSharedCertNeverMatchesTenantDomain(t *testing.T) {
	in := newInfra(t)
	_, _ = in.Host("devb.example", "simakamai", 4, true)
	db := certscan.New()
	in.ScanInto(db)
	if _, ok := db.ServiceIPsForDomain("devb.example"); ok {
		t.Fatal("multi-SAN CDN certificate matched a tenant domain")
	}
}

func TestResolveAndDomains(t *testing.T) {
	in := newInfra(t)
	_, _ = in.Host("a.simring.example", "simring-dc", 2, false)
	_, _ = in.Host("b.simring.example", "simring-dc", 1, false)
	if got := in.Resolve("a.simring.example"); len(got) != 2 {
		t.Fatalf("Resolve = %v", got)
	}
	if got := in.Resolve("missing.example"); got != nil {
		t.Fatalf("Resolve(missing) = %v", got)
	}
	doms := in.Domains()
	if len(doms) != 2 || doms[0] != "a.simring.example" {
		t.Fatalf("Domains = %v", doms)
	}
}

func TestDeterministicWorld(t *testing.T) {
	build := func() []string {
		in := newInfra(t)
		_, _ = in.Host("api.simring.example", "simring-dc", 3, true)
		_, _ = in.Host("deva.example", "simcloud", 2, true)
		for d := 0; d < 5; d++ {
			in.StepDay()
		}
		var out []string
		for _, dom := range in.Domains() {
			for _, ip := range in.Resolve(dom) {
				out = append(out, dom+"="+ip.String())
			}
		}
		return out
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatal("nondeterministic world size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %s vs %s", i, a[i], b[i])
		}
	}
}
