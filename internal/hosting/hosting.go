// Package hosting models the Internet backend infrastructure that IoT
// services run on: dedicated manufacturer-operated servers, exclusive
// cloud tenancies reached through provider CNAMEs, shared CDN pools
// serving many customers, generic web services, and the public NTP
// pool.
//
// The model reproduces the three communication patterns of the paper's
// Figure 1 and the two worked examples of §4.2.1:
//
//   - devA.com → devA-vm.ec2compute.<cloud> → IP used by no one else
//     (cloud tenancy: exclusive, hence classifiable), and
//   - devB.com → devB.<cdn> → IP shared with many other sites
//     (shared, hence unclassifiable from flow data).
//
// Domain→IP mappings churn daily, which is why a single ground-truth
// vantage point is not enough and passive DNS must be consulted.
package hosting

import (
	"fmt"
	"net/netip"
	"sort"

	"repro/internal/certscan"
	"repro/internal/names"
	"repro/internal/pdns"
	"repro/internal/simrand"
	"repro/internal/simtime"
)

// Kind classifies how a domain's backend is hosted.
type Kind uint8

// Hosting kinds.
const (
	// KindDedicated: manufacturer-operated servers; every IP serves
	// only this SLD.
	KindDedicated Kind = iota + 1
	// KindCloudTenant: a VM (or few) behind a cloud provider CNAME;
	// the public IP is exclusive to the tenant while held.
	KindCloudTenant
	// KindCDN: shared content-delivery IPs serving many SLDs.
	KindCDN
	// KindGeneric: generic web infrastructure heavily used by non-IoT
	// clients too (netflix/wikipedia class).
	KindGeneric
	// KindNTPPool: public NTP servers.
	KindNTPPool
)

// String returns the kind mnemonic.
func (k Kind) String() string {
	switch k {
	case KindDedicated:
		return "dedicated"
	case KindCloudTenant:
		return "cloud-tenant"
	case KindCDN:
		return "cdn"
	case KindGeneric:
		return "generic"
	case KindNTPPool:
		return "ntp-pool"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Shared reports whether IPs of this kind serve unrelated parties,
// which makes domains on them undetectable from flow headers.
func (k Kind) Shared() bool {
	return k == KindCDN || k == KindGeneric || k == KindNTPPool
}

// Provider owns an address block and hands out service IPs.
type Provider struct {
	Name string
	ASN  uint32
	Kind Kind
	// Zone is the provider DNS zone for CNAME-based hosting
	// (cloud tenancy and CDN). Must be a registered public suffix in
	// package names so SLD extraction treats tenants as registrations.
	Zone string

	prefix netip.Prefix
	next   uint32
	pool   []netip.Addr // shared pool for CDN/generic/NTP kinds
}

// AllocIP returns a fresh, never-used address from the provider block.
func (p *Provider) AllocIP() netip.Addr {
	base := p.prefix.Addr().As4()
	bits := p.prefix.Bits()
	size := uint32(1) << (32 - bits)
	p.next++
	if p.next >= size {
		panic(fmt.Sprintf("hosting: provider %s exhausted %s", p.Name, p.prefix))
	}
	v := uint32(base[0])<<24 | uint32(base[1])<<16 | uint32(base[2])<<8 | uint32(base[3])
	v += p.next
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// Pool returns the shared pool (allocating it on first use).
func (p *Provider) Pool(size int) []netip.Addr {
	for len(p.pool) < size {
		p.pool = append(p.pool, p.AllocIP())
	}
	return p.pool[:size]
}

// Assignment is the hosting state of one domain.
type Assignment struct {
	Domain   string
	Kind     Kind
	Provider *Provider
	// CNAME is the intermediate provider name ("" for direct A records).
	CNAME string
	// IPs is the current address set the domain resolves to.
	IPs []netip.Addr
	// HTTPS marks domains that present a certificate on 443; the
	// certificate names cover the domain's SLD wildcard.
	HTTPS bool
	// Cert is the presented certificate when HTTPS (shared-kind
	// domains present the provider's multi-SAN certificate).
	Cert *certscan.Certificate
	// Banner is the HTTPS banner checksum.
	Banner uint64

	poolSize int
}

// Config tunes the infrastructure model.
type Config struct {
	// ChurnProb is the per-domain, per-day probability that one of the
	// domain's IPs is remapped.
	ChurnProb float64
	// CDNBackgroundTenants is the number of unrelated customer domains
	// observed per CDN provider (they make CDN IPs non-exclusive in
	// passive DNS).
	CDNBackgroundTenants int
}

// DefaultConfig returns the calibrated defaults.
func DefaultConfig() Config {
	return Config{ChurnProb: 0.25, CDNBackgroundTenants: 64}
}

// Infra is the simulated hosting world. Not safe for concurrent use.
type Infra struct {
	cfg         Config
	rng         *simrand.RNG
	providers   map[string]*Provider
	assignments map[string]*Assignment
	order       []string // deterministic iteration
	backgrounds map[string][]string
}

// New returns an empty infrastructure using rng for churn decisions.
func New(rng *simrand.RNG, cfg Config) *Infra {
	return &Infra{
		cfg:         cfg,
		rng:         rng.Fork("hosting"),
		providers:   make(map[string]*Provider),
		assignments: make(map[string]*Assignment),
		backgrounds: make(map[string][]string),
	}
}

// AddProvider registers an address block owner.
func (in *Infra) AddProvider(name string, kind Kind, asn uint32, cidr, zone string) (*Provider, error) {
	if _, dup := in.providers[name]; dup {
		return nil, fmt.Errorf("hosting: duplicate provider %q", name)
	}
	prefix, err := netip.ParsePrefix(cidr)
	if err != nil {
		return nil, fmt.Errorf("hosting: provider %q: %w", name, err)
	}
	p := &Provider{Name: name, ASN: asn, Kind: kind, Zone: zone, prefix: prefix}
	in.providers[name] = p
	return p, nil
}

// Provider returns a registered provider by name.
func (in *Infra) Provider(name string) (*Provider, bool) {
	p, ok := in.providers[name]
	return p, ok
}

// Host assigns a domain to a provider with a target address-pool size.
// The hosting pattern follows the provider kind. https controls whether
// the domain presents a certificate on 443.
func (in *Infra) Host(domain, providerName string, poolSize int, https bool) (*Assignment, error) {
	domain = names.Normalize(domain)
	if !names.Valid(domain) {
		return nil, fmt.Errorf("hosting: invalid domain %q", domain)
	}
	if _, dup := in.assignments[domain]; dup {
		return nil, fmt.Errorf("hosting: domain %q already hosted", domain)
	}
	p, ok := in.providers[providerName]
	if !ok {
		return nil, fmt.Errorf("hosting: unknown provider %q", providerName)
	}
	if poolSize <= 0 {
		poolSize = 1
	}
	a := &Assignment{Domain: domain, Kind: p.Kind, Provider: p, HTTPS: https, poolSize: poolSize}
	switch p.Kind {
	case KindDedicated:
		for i := 0; i < poolSize; i++ {
			a.IPs = append(a.IPs, p.AllocIP())
		}
	case KindCloudTenant:
		if p.Zone == "" {
			return nil, fmt.Errorf("hosting: cloud provider %q has no zone", providerName)
		}
		a.CNAME = cnameLabel(domain) + "-vm." + p.Zone
		for i := 0; i < poolSize; i++ {
			a.IPs = append(a.IPs, p.AllocIP())
		}
	case KindCDN, KindGeneric, KindNTPPool:
		pool := p.Pool(maxInt(poolSize*8, 64))
		if p.Zone != "" {
			a.CNAME = cnameLabel(domain) + "." + p.Zone
		}
		a.IPs = in.pickFromPool(pool, poolSize)
	default:
		return nil, fmt.Errorf("hosting: provider %q has unknown kind %v", providerName, p.Kind)
	}
	if https {
		a.Cert, a.Banner = in.certFor(a)
	}
	in.assignments[domain] = a
	in.order = append(in.order, domain)
	return a, nil
}

// cnameLabel flattens a FQDN into a single provider-zone label.
func cnameLabel(domain string) string {
	out := make([]byte, 0, len(domain))
	for i := 0; i < len(domain); i++ {
		c := domain[i]
		if c == '.' {
			c = '-'
		}
		out = append(out, c)
	}
	return string(out)
}

func (in *Infra) certFor(a *Assignment) (*certscan.Certificate, uint64) {
	banner := in.rng.Uint64()
	if a.Kind.Shared() {
		// Shared infrastructure presents a multi-SAN certificate that
		// never satisfies the §4.2.2 exclusivity rule.
		sans := []string{"*." + a.Provider.Name + "-edge.example", names.SLD(a.Domain)}
		for i := 0; i < 3; i++ {
			sans = append(sans, fmt.Sprintf("customer%d.%s-edge.example", i, a.Provider.Name))
		}
		return certscan.NewCertificate(sans...), banner
	}
	// Dedicated services present per-host certificates naming exactly
	// the served domain. A vendor-wide wildcard would make every
	// sibling domain's scan query match this host, over-attributing
	// service IPs across domains of the same SLD.
	return certscan.NewCertificate(a.Domain), banner
}

func (in *Infra) pickFromPool(pool []netip.Addr, n int) []netip.Addr {
	if n >= len(pool) {
		out := make([]netip.Addr, len(pool))
		copy(out, pool)
		return out
	}
	perm := in.rng.Perm(len(pool))
	out := make([]netip.Addr, n)
	for i := 0; i < n; i++ {
		out[i] = pool[perm[i]]
	}
	return out
}

// Assignment returns the hosting state of a domain.
func (in *Infra) Assignment(domain string) (*Assignment, bool) {
	a, ok := in.assignments[names.Normalize(domain)]
	return a, ok
}

// Resolve returns the domain's current addresses (nil if unhosted).
func (in *Infra) Resolve(domain string) []netip.Addr {
	a, ok := in.assignments[names.Normalize(domain)]
	if !ok {
		return nil
	}
	out := make([]netip.Addr, len(a.IPs))
	copy(out, a.IPs)
	return out
}

// Domains returns all hosted domains in registration order.
func (in *Infra) Domains() []string {
	out := make([]string, len(in.order))
	copy(out, in.order)
	return out
}

// StepDay applies one day of DNS churn: for each assignment, with
// probability ChurnProb one address is remapped. Dedicated and cloud
// domains receive a fresh exclusive address (clouds never recycle a
// tenant's IP to another tenant, per §4.2.1); shared kinds re-pick from
// the provider pool.
func (in *Infra) StepDay() {
	for _, d := range in.order {
		a := in.assignments[d]
		if len(a.IPs) == 0 || !in.rng.Bernoulli(in.cfg.ChurnProb) {
			continue
		}
		i := in.rng.Intn(len(a.IPs))
		switch a.Kind {
		case KindDedicated, KindCloudTenant:
			a.IPs[i] = a.Provider.AllocIP()
		default:
			pool := a.Provider.Pool(maxInt(a.poolSize*8, 64))
			a.IPs[i] = pool[in.rng.Intn(len(pool))]
		}
	}
}

// AddCDNBackground registers the CDN provider's unrelated customers so
// passive DNS sees its IPs serving many SLDs. Idempotent per provider.
func (in *Infra) AddCDNBackground(providerName string) error {
	p, ok := in.providers[providerName]
	if !ok {
		return fmt.Errorf("hosting: unknown provider %q", providerName)
	}
	if !p.Kind.Shared() {
		return fmt.Errorf("hosting: provider %q is not a shared kind", providerName)
	}
	if len(in.backgrounds[providerName]) > 0 {
		return nil
	}
	var doms []string
	for i := 0; i < in.cfg.CDNBackgroundTenants; i++ {
		doms = append(doms, fmt.Sprintf("site%03d.%s-customers.example", i, p.Name))
	}
	in.backgrounds[providerName] = doms
	return nil
}

// ObserveInto records the day's DNS state into a passive-DNS database:
// every assignment's CNAME chain and A records, plus the CDN background
// tenants spread over the shared pools.
func (in *Infra) ObserveInto(db *pdns.DB, day simtime.Day) {
	for _, d := range in.order {
		a := in.assignments[d]
		target := a.Domain
		if a.CNAME != "" {
			db.ObserveCNAME(a.Domain, a.CNAME, day)
			target = a.CNAME
		}
		for _, ip := range a.IPs {
			db.ObserveA(target, ip, day)
		}
	}
	for pname, doms := range in.backgrounds {
		p := in.providers[pname]
		pool := p.Pool(64)
		for i, bg := range doms {
			// Each background tenant sits on a deterministic slice of
			// the pool; together they blanket every shared IP.
			for j := 0; j < 4; j++ {
				ip := pool[(i*4+j)%len(pool)]
				alias := cnameLabel(bg) + "." + zoneOrEdge(p)
				db.ObserveCNAME(bg, alias, day)
				db.ObserveA(alias, ip, day)
			}
		}
	}
}

func zoneOrEdge(p *Provider) string {
	if p.Zone != "" {
		return p.Zone
	}
	return p.Name + "-edge.example"
}

// ScanInto records every HTTPS assignment into a certificate-scan
// database, one scanned host per (IP, 443).
func (in *Infra) ScanInto(db *certscan.DB) {
	for _, d := range in.order {
		a := in.assignments[d]
		if !a.HTTPS || a.Cert == nil {
			continue
		}
		for _, ip := range a.IPs {
			db.AddHost(certscan.Host{IP: ip, Port: 443, Cert: a.Cert, BannerChecksum: a.Banner})
		}
	}
}

// OwnerASN returns the AS number announcing ip (0 if unknown).
func (in *Infra) OwnerASN(ip netip.Addr) uint32 {
	for _, p := range in.sortedProviders() {
		if p.prefix.Contains(ip) {
			return p.ASN
		}
	}
	return 0
}

func (in *Infra) sortedProviders() []*Provider {
	out := make([]*Provider, 0, len(in.providers))
	for _, p := range in.providers {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
