// Package pdns implements a passive-DNS database in the style of
// Farsight DNSDB, the data source the paper uses in §4.2.1 to decide
// whether a service IP is exclusively used by one IoT service.
//
// The database stores time-ranged A and CNAME observations and answers
// the two queries the methodology needs:
//
//   - all records for a name (including the CNAME chain), and
//   - all names observed mapping to an IP within a window.
//
// Passive DNS sees only what its sensors see; Covered/SetCovered model
// the paper's 15 ground-truth domains for which "we did not have
// sufficient information in DNSDB".
package pdns

import (
	"fmt"
	"net/netip"
	"sort"

	"repro/internal/names"
	"repro/internal/simtime"
)

// RType is a DNS record type.
type RType uint8

// Record types stored by the database.
const (
	TypeA RType = iota + 1
	TypeCNAME
)

// String returns the record-type mnemonic.
func (t RType) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeCNAME:
		return "CNAME"
	}
	return fmt.Sprintf("RType(%d)", uint8(t))
}

// Entry is one passive-DNS observation aggregate: a (name, type, value)
// triple with the first and last day it was seen.
type Entry struct {
	Name  string
	Type  RType
	IP    netip.Addr // TypeA
	Value string     // TypeCNAME target
	First simtime.Day
	Last  simtime.Day
}

// Overlaps reports whether the entry was live during any day of [a, b].
func (e *Entry) Overlaps(a, b simtime.Day) bool {
	return e.First <= b && e.Last >= a
}

// DB is an in-memory passive-DNS store. The zero value is not usable;
// use New. DB is not safe for concurrent mutation.
type DB struct {
	byName map[string][]*Entry
	byIP   map[netip.Addr][]*Entry
	count  int

	uncovered map[string]bool // SLDs the sensors never saw
}

// New returns an empty database.
func New() *DB {
	return &DB{
		byName:    make(map[string][]*Entry),
		byIP:      make(map[netip.Addr][]*Entry),
		uncovered: make(map[string]bool),
	}
}

// SetUncovered marks a fully-qualified name as invisible to the
// sensors: past and future observations for it are dropped. This models
// DNSDB's partial coverage of the DNS hierarchy (§4.2.2 reason (b)).
func (db *DB) SetUncovered(fqdn string) {
	db.uncovered[names.Normalize(fqdn)] = true
}

// Covered reports whether observations of fqdn are retained.
func (db *DB) Covered(fqdn string) bool {
	return !db.uncovered[names.Normalize(fqdn)]
}

// ObserveA records that name resolved to ip on the given day.
func (db *DB) ObserveA(name string, ip netip.Addr, day simtime.Day) {
	name = names.Normalize(name)
	if db.uncovered[name] {
		return
	}
	for _, e := range db.byName[name] {
		if e.Type == TypeA && e.IP == ip {
			extend(e, day)
			return
		}
	}
	e := &Entry{Name: name, Type: TypeA, IP: ip, First: day, Last: day}
	db.byName[name] = append(db.byName[name], e)
	db.byIP[ip] = append(db.byIP[ip], e)
	db.count++
}

// ObserveCNAME records that name aliased target on the given day.
func (db *DB) ObserveCNAME(name, target string, day simtime.Day) {
	name, target = names.Normalize(name), names.Normalize(target)
	if db.uncovered[name] {
		return
	}
	for _, e := range db.byName[name] {
		if e.Type == TypeCNAME && e.Value == target {
			extend(e, day)
			return
		}
	}
	e := &Entry{Name: name, Type: TypeCNAME, Value: target, First: day, Last: day}
	db.byName[name] = append(db.byName[name], e)
	db.count++
}

func extend(e *Entry, day simtime.Day) {
	if day < e.First {
		e.First = day
	}
	if day > e.Last {
		e.Last = day
	}
}

// Len returns the number of distinct entries.
func (db *DB) Len() int { return db.count }

// LookupName returns all entries for a name (any type), sorted by
// first-seen then value for determinism.
func (db *DB) LookupName(name string) []Entry {
	es := db.byName[names.Normalize(name)]
	out := make([]Entry, len(es))
	for i, e := range es {
		out[i] = *e
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].First != out[j].First {
			return out[i].First < out[j].First
		}
		if out[i].Type != out[j].Type {
			return out[i].Type < out[j].Type
		}
		if out[i].Value != out[j].Value {
			return out[i].Value < out[j].Value
		}
		return out[i].IP.Less(out[j].IP)
	})
	return out
}

// LookupIP returns all A entries whose address is ip.
func (db *DB) LookupIP(ip netip.Addr) []Entry {
	es := db.byIP[ip]
	out := make([]Entry, len(es))
	for i, e := range es {
		out[i] = *e
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].First != out[j].First {
			return out[i].First < out[j].First
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// ResolveA returns the addresses name mapped to during [a, b],
// following CNAME chains up to 8 hops.
func (db *DB) ResolveA(name string, a, b simtime.Day) []netip.Addr {
	seen := map[string]bool{}
	var out []netip.Addr
	cur := []string{names.Normalize(name)}
	for hop := 0; hop < 8 && len(cur) > 0; hop++ {
		var next []string
		for _, n := range cur {
			if seen[n] {
				continue
			}
			seen[n] = true
			for _, e := range db.byName[n] {
				if !e.Overlaps(a, b) {
					continue
				}
				switch e.Type {
				case TypeA:
					out = append(out, e.IP)
				case TypeCNAME:
					next = append(next, e.Value)
				}
			}
		}
		cur = next
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return dedupAddrs(out)
}

// NamesOnIP returns every name observed resolving (directly) to ip
// during [a, b].
func (db *DB) NamesOnIP(ip netip.Addr, a, b simtime.Day) []string {
	var out []string
	for _, e := range db.byIP[ip] {
		if e.Overlaps(a, b) {
			out = append(out, e.Name)
		}
	}
	sort.Strings(out)
	return dedupStrings(out)
}

// CNAMEChainSLDs returns the registrable domains of the CNAME chain
// *roots* serving the IP: walking aliases backwards from each name
// directly on the IP, a name with no alias pointing at it is a root and
// contributes its SLD; intermediate provider names that do have aliases
// are transparent. This implements the §4.2.1 handling of cloud
// tenancy, where devA.com → devA-vm.ec2compute… → IP counts as
// belonging to devA.com ("the only CNAME associated with the IP").
func (db *DB) CNAMEChainSLDs(ip netip.Addr, a, b simtime.Day) map[string]bool {
	slds := map[string]bool{}
	// Build a reverse alias index over entries relevant to the window.
	// For the simulated dataset sizes this linear pass is fine.
	reverse := map[string][]string{} // target -> aliases
	for _, es := range db.byName {
		for _, e := range es {
			if e.Type == TypeCNAME && e.Overlaps(a, b) {
				reverse[e.Value] = append(reverse[e.Value], e.Name)
			}
		}
	}
	var visit func(name string, depth int, seen map[string]bool)
	visit = func(name string, depth int, seen map[string]bool) {
		if depth > 8 || seen[name] {
			// Cycles (or over-deep chains) have no root; count the
			// name itself so the IP is not silently exclusive.
			if s := names.SLD(name); s != "" {
				slds[s] = true
			}
			return
		}
		seen[name] = true
		aliases := reverse[name]
		if len(aliases) == 0 {
			if s := names.SLD(name); s != "" {
				slds[s] = true
			}
			return
		}
		for _, alias := range aliases {
			visit(alias, depth+1, seen)
		}
	}
	for _, n := range db.NamesOnIP(ip, a, b) {
		visit(n, 0, map[string]bool{})
	}
	return slds
}

// ExclusiveIP reports whether, during [a, b], ip served names from a
// single registrable domain (directly or via CNAME aliases). This is
// the §4.2.1 test: "a service IP is exclusively used if it only serves
// domains from a single second-level domain and its CNAMEs".
//
// The returned SLD is set when exclusive is true. An IP with no
// observations returns (false, ""): absence of data is not evidence of
// exclusivity.
func (db *DB) ExclusiveIP(ip netip.Addr, a, b simtime.Day) (exclusive bool, sld string) {
	slds := db.CNAMEChainSLDs(ip, a, b)
	if len(slds) != 1 {
		return false, ""
	}
	for s := range slds {
		return true, s
	}
	return false, ""
}

func dedupAddrs(in []netip.Addr) []netip.Addr {
	out := in[:0]
	for i, v := range in {
		if i == 0 || v != in[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func dedupStrings(in []string) []string {
	out := in[:0]
	for i, v := range in {
		if i == 0 || v != in[i-1] {
			out = append(out, v)
		}
	}
	return out
}
