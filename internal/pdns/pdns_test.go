package pdns

import (
	"net/netip"
	"testing"

	"repro/internal/simtime"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

const (
	d0 = simtime.Day(18000)
	d1 = d0 + 1
	d2 = d0 + 2
	d9 = d0 + 9
)

func TestObserveAndLookup(t *testing.T) {
	db := New()
	db.ObserveA("api.simring.example", addr("185.3.0.1"), d0)
	db.ObserveA("api.simring.example", addr("185.3.0.2"), d1)
	db.ObserveA("api.simring.example", addr("185.3.0.1"), d2) // extends range

	es := db.LookupName("api.simring.example")
	if len(es) != 2 {
		t.Fatalf("got %d entries", len(es))
	}
	if es[0].IP != addr("185.3.0.1") || es[0].First != d0 || es[0].Last != d2 {
		t.Fatalf("entry 0 = %+v", es[0])
	}
	if db.Len() != 2 {
		t.Fatalf("Len = %d", db.Len())
	}
}

func TestLookupIsCaseInsensitive(t *testing.T) {
	db := New()
	db.ObserveA("API.SimRing.Example", addr("185.3.0.1"), d0)
	if len(db.LookupName("api.simring.example")) != 1 {
		t.Fatal("case-normalized lookup failed")
	}
}

func TestLookupIP(t *testing.T) {
	db := New()
	db.ObserveA("a.simx.example", addr("185.3.0.9"), d0)
	db.ObserveA("b.simy.example", addr("185.3.0.9"), d1)
	es := db.LookupIP(addr("185.3.0.9"))
	if len(es) != 2 {
		t.Fatalf("got %d entries", len(es))
	}
}

func TestResolveAFollowsCNAME(t *testing.T) {
	db := New()
	db.ObserveCNAME("deva.example", "deva-vm.ec2compute.simcloud.example", d0)
	db.ObserveA("deva-vm.ec2compute.simcloud.example", addr("185.9.0.7"), d0)
	got := db.ResolveA("deva.example", d0, d2)
	if len(got) != 1 || got[0] != addr("185.9.0.7") {
		t.Fatalf("ResolveA = %v", got)
	}
}

func TestResolveAHonorsWindow(t *testing.T) {
	db := New()
	db.ObserveA("x.simx.example", addr("185.3.0.1"), d0)
	db.ObserveA("x.simx.example", addr("185.3.0.2"), d9)
	got := db.ResolveA("x.simx.example", d0, d1)
	if len(got) != 1 || got[0] != addr("185.3.0.1") {
		t.Fatalf("window leak: %v", got)
	}
}

func TestResolveACycleSafe(t *testing.T) {
	db := New()
	db.ObserveCNAME("a.simx.example", "b.simx.example", d0)
	db.ObserveCNAME("b.simx.example", "a.simx.example", d0)
	if got := db.ResolveA("a.simx.example", d0, d1); len(got) != 0 {
		t.Fatalf("cycle produced %v", got)
	}
}

func TestNamesOnIP(t *testing.T) {
	db := New()
	ip := addr("185.7.0.1")
	db.ObserveA("a.simcdn-tenant1.example", ip, d0)
	db.ObserveA("b.simcdn-tenant2.example", ip, d1)
	db.ObserveA("old.simcdn-tenant3.example", ip, d0)
	got := db.NamesOnIP(ip, d1, d2)
	if len(got) != 1 || got[0] != "b.simcdn-tenant2.example" {
		t.Fatalf("NamesOnIP window filter broken: %v", got)
	}
	got = db.NamesOnIP(ip, d0, d2)
	if len(got) != 3 {
		t.Fatalf("NamesOnIP = %v", got)
	}
}

func TestExclusiveIPDedicated(t *testing.T) {
	db := New()
	ip := addr("185.3.0.1")
	db.ObserveA("api.simring.example", ip, d0)
	db.ObserveA("fw.simring.example", ip, d1)
	ok, sld := db.ExclusiveIP(ip, d0, d2)
	if !ok || sld != "simring.example" {
		t.Fatalf("dedicated IP not exclusive: %v %q", ok, sld)
	}
}

func TestExclusiveIPCloudTenant(t *testing.T) {
	// The paper's devA example: devA.com → devA-VM.ec2compute…,
	// and the IP reverse-maps only to that VM name. The tenant zone is
	// a public suffix, so the VM name's SLD is the tenant registration
	// itself — one SLD, exclusive.
	db := New()
	ip := addr("185.9.0.7")
	db.ObserveCNAME("deva.example", "deva-vm.ec2compute.simcloud.example", d0)
	db.ObserveA("deva-vm.ec2compute.simcloud.example", ip, d0)
	ok, _ := db.ExclusiveIP(ip, d0, d2)
	if !ok {
		t.Fatal("cloud tenant IP should be exclusive")
	}
	slds := db.CNAMEChainSLDs(ip, d0, d2)
	if !slds["deva.example"] {
		t.Fatalf("alias SLD missing: %v", slds)
	}
}

func TestExclusiveIPSharedCDN(t *testing.T) {
	// The paper's devB example: devB.com → devB.com.akadns…, but many
	// other domains also map to the same IP → shared.
	db := New()
	ip := addr("185.8.0.1")
	db.ObserveCNAME("devb.example", "devb.cdn.simakamai.example", d0)
	db.ObserveA("devb.cdn.simakamai.example", ip, d0)
	db.ObserveCNAME("anothersite.example", "anothersite.cdn.simakamai.example", d0)
	db.ObserveA("anothersite.cdn.simakamai.example", ip, d0)
	ok, _ := db.ExclusiveIP(ip, d0, d2)
	if ok {
		t.Fatal("CDN IP serving two tenants claimed exclusive")
	}
	slds := db.CNAMEChainSLDs(ip, d0, d2)
	if !slds["devb.example"] || !slds["anothersite.example"] {
		t.Fatalf("chain SLDs = %v", slds)
	}
}

func TestExclusiveIPNoData(t *testing.T) {
	db := New()
	ok, sld := db.ExclusiveIP(addr("185.1.1.1"), d0, d1)
	if ok || sld != "" {
		t.Fatal("IP without observations must not be exclusive")
	}
}

func TestUncovered(t *testing.T) {
	db := New()
	db.SetUncovered("c.deve.example")
	db.ObserveA("c.deve.example", addr("185.5.0.1"), d0)
	if got := db.LookupName("c.deve.example"); len(got) != 0 {
		t.Fatalf("uncovered name stored: %v", got)
	}
	if db.Covered("c.deve.example") {
		t.Fatal("Covered = true for uncovered name")
	}
	if !db.Covered("other.example") {
		t.Fatal("Covered = false for normal name")
	}
}

func TestEntryOverlaps(t *testing.T) {
	e := Entry{First: d1, Last: d2}
	if !e.Overlaps(d0, d1) || !e.Overlaps(d2, d9) || !e.Overlaps(d0, d9) {
		t.Fatal("overlap misses")
	}
	if e.Overlaps(d0, d0) || e.Overlaps(d2+1, d9) {
		t.Fatal("false overlap")
	}
}

func TestRTypeString(t *testing.T) {
	if TypeA.String() != "A" || TypeCNAME.String() != "CNAME" {
		t.Fatal("RType names")
	}
}

func BenchmarkExclusiveIP(b *testing.B) {
	db := New()
	ip := addr("185.3.0.1")
	for i := 0; i < 50; i++ {
		db.ObserveA("api.simring.example", ip, d0+simtime.Day(i%3))
	}
	for i := 0; i < 1000; i++ {
		db.ObserveCNAME("a.simother.example", "t.cdn.simakamai.example", d0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.ExclusiveIP(ip, d0, d2)
	}
}
