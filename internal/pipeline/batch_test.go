package pipeline

import (
	"reflect"
	"testing"

	"repro/internal/detect"
)

// ObserveBatch must reproduce single-engine results exactly at any
// shard count — the same invariant TestPipelineMatchesEngine pins for
// the per-record path.
func TestPipelineObserveBatchMatchesEngine(t *testing.T) {
	dict, w := testDict(t)
	obs := genObs(t, dict, w)

	eng := detect.New(dict, 0.4)
	for _, o := range obs {
		eng.Observe(o.Sub, o.Hour, o.IP, o.Port, o.Pkts)
	}
	want := eng.Snapshot()
	if want.CountAnyDetected() == 0 {
		t.Fatal("reference engine detected nothing; stream is too weak to compare")
	}

	for _, n := range []int{1, 4, 8} {
		p := New(dict, 0.4, n)
		prod := p.NewProducer()
		// Feed in uneven slices so batches straddle dispatch boundaries.
		for i := 0; i < len(obs); {
			k := min(1+i%113, len(obs)-i)
			prod.ObserveBatch(obs[i : i+k])
			i += k
		}
		got := p.Snapshot()
		if !reflect.DeepEqual(got.Detections(), want.Detections()) {
			t.Fatalf("shards=%d: batch-path detections diverge from single engine", n)
		}
		if got.Subscribers() != want.Subscribers() {
			t.Fatalf("shards=%d: subscribers %d != %d", n, got.Subscribers(), want.Subscribers())
		}
		for ri := range dict.Rules {
			if got.CountDetected(ri) != want.CountDetected(ri) {
				t.Fatalf("shards=%d rule %d: count %d != %d", n, ri,
					got.CountDetected(ri), want.CountDetected(ri))
			}
		}
		p.Close()
	}
}

func TestSetBatchSizeClampsAndApplies(t *testing.T) {
	dict, _ := testDict(t)
	p := New(dict, 0.4, 2)
	defer p.Close()
	if got := p.BatchSize(); got != DefaultBatchSize {
		t.Fatalf("initial batch size %d, want %d", got, DefaultBatchSize)
	}
	p.SetBatchSize(1000)
	if got := p.BatchSize(); got != 1000 {
		t.Fatalf("batch size %d, want 1000", got)
	}
	p.SetBatchSize(1)
	if got := p.BatchSize(); got != MinBatchSize {
		t.Fatalf("batch size %d, want floor %d", got, MinBatchSize)
	}
	p.SetBatchSize(1 << 20)
	if got := p.BatchSize(); got != MaxBatchSize {
		t.Fatalf("batch size %d, want ceiling %d", got, MaxBatchSize)
	}
}

func TestAdaptiveBatchSize(t *testing.T) {
	cases := []struct {
		rate float64
		want int
	}{
		{0, DefaultBatchSize},      // controller not seeded yet
		{-5, DefaultBatchSize},     // nonsense rate
		{1000, MinBatchSize},       // 2 records/batch → floor
		{100_000, 200},             // 2ms of records
		{1_000_000, 2000},          // 2ms of records
		{10_000_000, MaxBatchSize}, // 20k records → ceiling
	}
	for _, c := range cases {
		if got := AdaptiveBatchSize(c.rate); got != c.want {
			t.Errorf("AdaptiveBatchSize(%v) = %d, want %d", c.rate, got, c.want)
		}
	}
}

// Retuning the batch size mid-stream must not lose observations.
func TestSetBatchSizeLiveRetune(t *testing.T) {
	dict, w := testDict(t)
	obs := genObs(t, dict, w)
	eng := detect.New(dict, 0.4)
	for _, o := range obs {
		eng.Observe(o.Sub, o.Hour, o.IP, o.Port, o.Pkts)
	}
	want := eng.Snapshot()

	p := New(dict, 0.4, 4)
	prod := p.NewProducer()
	sizes := []int{MinBatchSize, 700, MaxBatchSize, 128}
	for i := 0; i < len(obs); {
		p.SetBatchSize(sizes[i%len(sizes)])
		k := min(1+i%61, len(obs)-i)
		prod.ObserveBatch(obs[i : i+k])
		i += k
	}
	got := p.Snapshot()
	if !reflect.DeepEqual(got.Detections(), want.Detections()) {
		t.Fatal("live batch-size retune lost or reordered observations")
	}
	p.Close()
}

// Once per-shard buffers exist, the producer-side batch path is pure
// appends under one lock: no allocations until a dispatch hands the
// buffer off.
func TestObserveBatchZeroAllocsSteadyState(t *testing.T) {
	dict, w := testDict(t)
	obs := genObs(t, dict, w)
	if len(obs) > 64 {
		obs = obs[:64]
	}
	p := New(dict, 0.4, 4)
	defer p.Close()
	prod := p.NewProducer()
	prod.ObserveBatch(obs) // warm: acquire per-shard buffers
	runs := 0
	allocs := testing.AllocsPerRun(10, func() {
		// Stay below the dispatch threshold: this pins the per-record
		// append path; dispatch recycling is exercised elsewhere.
		if runs++; runs*len(obs) < DefaultBatchSize-len(obs) {
			prod.ObserveBatch(obs)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state ObserveBatch allocates %v allocs/run, want 0", allocs)
	}
}
