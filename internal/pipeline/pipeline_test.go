package pipeline

import (
	"fmt"
	"net/netip"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/classify"
	"repro/internal/dedicated"
	"repro/internal/detect"
	"repro/internal/rules"
	"repro/internal/simtime"
	"repro/internal/world"
)

func testDict(t testing.TB) (*rules.Dictionary, *world.World) {
	t.Helper()
	w := world.MustBuild(1)
	days := w.Window.Days()
	pipe := dedicated.New(w.PDNS, w.Scans, days[0], days[len(days)-1])
	iot := classify.DefaultKB().ClassifyAll(w.Catalog.DomainNames()).IoTSpecific()
	census := pipe.ClassifyAll(iot)
	dict, err := rules.Compile(w.Catalog, census, w.PDNS, days)
	if err != nil {
		t.Fatal(err)
	}
	return dict, w
}

// genObs builds a deterministic observation stream that exercises many
// subscribers, every rule (parents included, so hierarchy rules can
// fire), repeated hits, and hitlist misses.
func genObs(t testing.TB, dict *rules.Dictionary, w *world.World) []Obs {
	t.Helper()
	var obs []Obs
	add := func(sub detect.SubID, h simtime.Hour, domain string) {
		ips := w.ResolverOn(h.Day()).Resolve(domain)
		if len(ips) == 0 {
			return
		}
		port := uint16(443)
		if d, ok := w.Catalog.Domains[domain]; ok {
			port = d.Port
		}
		obs = append(obs, Obs{Sub: sub, Hour: h, IP: ips[0], Port: port, Pkts: uint64(sub%7) + 1})
	}
	start := w.Window.Start
	miss := netip.MustParseAddr("8.8.8.8")
	for i := 0; i < 400; i++ {
		// Scatter the identifier space like the anonymizing hash does.
		sub := detect.SubID(uint64(i)*0x9e3779b97f4a7c15 + 17)
		ri := i % len(dict.Rules)
		r := &dict.Rules[ri]
		h := start + simtime.Hour(i%48)
		if r.Parent >= 0 {
			for _, d := range dict.Rules[r.Parent].Domains {
				add(sub, h, d)
			}
		}
		for j, d := range r.Domains {
			add(sub, h+simtime.Hour(j%5), d)
		}
		obs = append(obs, Obs{Sub: sub, Hour: h, IP: miss, Port: 53, Pkts: 3})
	}
	return obs
}

// TestPipelineMatchesEngine is the determinism contract: the sharded
// pipeline must reproduce single-engine results exactly — same fired
// rules, same counts, same first-detection hours — at every shard
// count.
func TestPipelineMatchesEngine(t *testing.T) {
	dict, w := testDict(t)
	obs := genObs(t, dict, w)

	eng := detect.New(dict, 0.4)
	for _, o := range obs {
		eng.Observe(o.Sub, o.Hour, o.IP, o.Port, o.Pkts)
	}
	want := eng.Snapshot()
	if want.CountAnyDetected() == 0 {
		t.Fatal("reference engine detected nothing; stream is too weak to compare")
	}

	for _, n := range []int{1, 4, 8} {
		p := New(dict, 0.4, n)
		prod := p.NewProducer()
		for _, o := range obs {
			prod.Observe(o.Sub, o.Hour, o.IP, o.Port, o.Pkts)
		}
		got := p.Snapshot()
		if !reflect.DeepEqual(got.Detections(), want.Detections()) {
			t.Fatalf("shards=%d: detections diverge from single engine", n)
		}
		if got.CountAnyDetected() != want.CountAnyDetected() ||
			got.Subscribers() != want.Subscribers() {
			t.Fatalf("shards=%d: any %d/%d subs %d/%d", n,
				got.CountAnyDetected(), want.CountAnyDetected(),
				got.Subscribers(), want.Subscribers())
		}
		for ri := range dict.Rules {
			if got.CountDetected(ri) != want.CountDetected(ri) {
				t.Fatalf("shards=%d rule %d: count %d != %d", n, ri,
					got.CountDetected(ri), want.CountDetected(ri))
			}
			gh, gok := got.RuleFirstDetection(ri)
			wh, wok := want.RuleFirstDetection(ri)
			if gh != wh || gok != wok {
				t.Fatalf("shards=%d rule %d: first %v,%v != %v,%v", n, ri, gh, gok, wh, wok)
			}
		}
		// Point queries route to the owning shard.
		for _, d := range want.Detections()[:min(20, len(want.Detections()))] {
			if !p.Detected(d.Sub, d.Rule) {
				t.Fatalf("shards=%d: Detected(%d, %d) = false", n, d.Sub, d.Rule)
			}
			if fh, ok := p.FirstDetection(d.Sub, d.Rule); !ok || fh != d.First {
				t.Fatalf("shards=%d: FirstDetection(%d, %d) = %v, %v; want %v", n, d.Sub, d.Rule, fh, ok, d.First)
			}
			if p.ActiveUse(d.Sub, d.Rule) != (p.RulePackets(d.Sub, d.Rule) >= detect.UsageThreshold) {
				t.Fatalf("shards=%d: ActiveUse disagrees with RulePackets", n)
			}
		}
		p.Close()
	}
}

// TestPipelineMultiProducerMatchesEngine is the multi-producer
// determinism contract: N producer goroutines, each owning a disjoint
// subscriber partition of the stream, must reproduce single-engine
// results exactly. Run with -race to check the producer handoff.
func TestPipelineMultiProducerMatchesEngine(t *testing.T) {
	dict, w := testDict(t)
	obs := genObs(t, dict, w)

	eng := detect.New(dict, 0.4)
	for _, o := range obs {
		eng.Observe(o.Sub, o.Hour, o.IP, o.Port, o.Pkts)
	}
	want := eng.Snapshot()

	for _, producers := range []int{2, 4, 7} {
		p := New(dict, 0.4, 8)
		// Partition observations by subscriber so each subscriber's
		// stream stays ordered within one producer — the documented
		// cross-producer ordering contract.
		parts := make([][]Obs, producers)
		for _, o := range obs {
			i := int(uint64(o.Sub) % uint64(producers))
			parts[i] = append(parts[i], o)
		}
		var wg sync.WaitGroup
		for _, part := range parts {
			prod := p.NewProducer()
			wg.Add(1)
			go func(prod *Producer, part []Obs) {
				defer wg.Done()
				for _, o := range part {
					prod.Observe(o.Sub, o.Hour, o.IP, o.Port, o.Pkts)
				}
				prod.Close()
			}(prod, part)
		}
		wg.Wait()
		if got := p.Snapshot(); !reflect.DeepEqual(got.Detections(), want.Detections()) {
			t.Fatalf("producers=%d: detections diverge from single engine", producers)
		}
		if p.Producers() != 0 {
			t.Fatalf("producers=%d: %d handles still open", producers, p.Producers())
		}
		p.Close()
	}
}

// TestPipelineSyncFlushesLiveProducers checks the producer-aware Sync
// barrier: reads must see observations still sitting in another live
// (unflushed, unclosed) producer's partial batches.
func TestPipelineSyncFlushesLiveProducers(t *testing.T) {
	dict, w := testDict(t)
	p := New(dict, 0.4, 4)
	defer p.Close()
	h := w.Window.Start
	ips := w.ResolverOn(h.Day()).Resolve("mqtt.simmeross.example")
	port := w.Catalog.Domains["mqtt.simmeross.example"].Port

	a, b := p.NewProducer(), p.NewProducer()
	for i := 0; i < 10; i++ {
		a.Observe(detect.SubID(i), h, ips[0], port, 1)
		b.Observe(detect.SubID(100+i), h, ips[0], port, 1)
	}
	// Neither producer dispatched a full batch, and neither is closed:
	// the read barrier alone must surface all 20 subscribers.
	if got := p.CountAnyDetected(); got != 20 {
		t.Fatalf("CountAnyDetected = %d, want 20", got)
	}
	// Producers remain usable after a Sync flushed their buffers.
	a.Observe(detect.SubID(50), h, ips[0], port, 1)
	if got := p.Subscribers(); got != 21 {
		t.Fatalf("Subscribers = %d, want 21", got)
	}
}

// TestPipelineReadsDuringObserve exercises the racy-but-safe mode the
// Sync contract sanctions: readers polling aggregates while producer
// goroutines are still observing must never race, panic, or strand
// observations. Exact counts are only asserted after the producers
// quiesce. Run with -race.
func TestPipelineReadsDuringObserve(t *testing.T) {
	dict, w := testDict(t)
	obs := genObs(t, dict, w)
	p := New(dict, 0.4, 4)
	defer p.Close()

	const producers = 3
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < producers; g++ {
		prod := p.NewProducer()
		writers.Add(1)
		go func(g int, prod *Producer) {
			defer writers.Done()
			defer prod.Close()
			for _, o := range obs {
				if int(uint64(o.Sub)%producers) == g {
					prod.Observe(o.Sub, o.Hour, o.IP, o.Port, o.Pkts)
				}
			}
		}(g, prod)
	}
	readers.Add(1)
	go func() { // a reader polling mid-stream
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = p.CountAnyDetected()
				_ = p.Subscribers()
			}
		}
	}()
	writers.Wait()
	close(stop)
	readers.Wait()

	eng := detect.New(dict, 0.4)
	for _, o := range obs {
		eng.Observe(o.Sub, o.Hour, o.IP, o.Port, o.Pkts)
	}
	if got, want := p.Snapshot().CountAnyDetected(), eng.Snapshot().CountAnyDetected(); got != want {
		t.Fatalf("after quiescing: CountAnyDetected = %d, want %d", got, want)
	}
}

func TestPipelineCountsAcrossShards(t *testing.T) {
	dict, w := testDict(t)
	p := New(dict, 0.4, 4)
	defer p.Close()
	prod := p.NewProducer()
	h := w.Window.Start
	feedDomain := func(sub detect.SubID, domain string) {
		ips := w.ResolverOn(h.Day()).Resolve(domain)
		prod.Observe(sub, h, ips[0], w.Catalog.Domains[domain].Port, 1)
	}
	for i := 0; i < 64; i++ {
		feedDomain(detect.SubID(i), "mqtt.simmeross.example")
	}
	meross := dict.RuleIndex("Meross Dooropener")
	if got := p.CountDetected(meross); got != 64 {
		t.Fatalf("CountDetected = %d, want 64", got)
	}
	if got := p.CountAnyDetected(); got != 64 {
		t.Fatalf("CountAnyDetected = %d, want 64", got)
	}
	if got := p.Subscribers(); got != 64 {
		t.Fatalf("Subscribers = %d, want 64", got)
	}
	seen := map[detect.SubID]bool{}
	p.EachDetected(func(sub detect.SubID, rule int, first simtime.Hour) {
		if rule != meross || first != h {
			t.Fatalf("EachDetected visited (%d, %d, %v)", sub, rule, first)
		}
		seen[sub] = true
	})
	if len(seen) != 64 {
		t.Fatalf("EachDetected visited %d subscribers, want 64", len(seen))
	}
}

func TestPipelineResetClearsAllShards(t *testing.T) {
	dict, w := testDict(t)
	p := New(dict, 0.4, 4)
	defer p.Close()
	prod := p.NewProducer()
	h := w.Window.Start
	ips := w.ResolverOn(h.Day()).Resolve("mqtt.simmeross.example")
	for i := 0; i < 32; i++ {
		prod.Observe(detect.SubID(i), h, ips[0], w.Catalog.Domains["mqtt.simmeross.example"].Port, 1)
	}
	if p.CountAnyDetected() == 0 {
		t.Fatal("nothing detected before Reset")
	}
	p.Reset()
	if p.CountAnyDetected() != 0 || p.Subscribers() != 0 {
		t.Fatal("Reset did not clear all shards")
	}
	// The pipeline and its producers stay usable across bins, like
	// Engine.Reset.
	prod.Observe(1, h, ips[0], w.Catalog.Domains["mqtt.simmeross.example"].Port, 1)
	if p.CountAnyDetected() != 1 {
		t.Fatal("pipeline unusable after Reset")
	}
}

// TestPipelineBinCycle exercises the wild-sweep access pattern —
// observe, read, reset, repeat — with batches that rarely fill, so the
// Sync flush path is covered. Run with -race to check the
// producer/worker handoff.
func TestPipelineBinCycle(t *testing.T) {
	dict, w := testDict(t)
	obs := genObs(t, dict, w)
	p := New(dict, 0.4, 8)
	defer p.Close()
	prod := p.NewProducer()
	for bin := 0; bin < 5; bin++ {
		for i, o := range obs {
			if i%5 == bin {
				prod.Observe(o.Sub, o.Hour, o.IP, o.Port, o.Pkts)
			}
		}
		n := 0
		p.EachDetected(func(detect.SubID, int, simtime.Hour) { n++ })
		if snap := p.Snapshot(); len(snap.Detections()) != n {
			t.Fatalf("bin %d: snapshot %d detections, EachDetected saw %d", bin, len(snap.Detections()), n)
		}
		p.Reset()
	}
}

func TestPipelineShardClamp(t *testing.T) {
	dict, _ := testDict(t)
	p := New(dict, 0.4, 0)
	defer p.Close()
	if p.Shards() != 1 {
		t.Fatalf("Shards() = %d, want 1", p.Shards())
	}
	if p.Dictionary() != dict {
		t.Fatal("Dictionary() mismatch")
	}
}

func TestPipelineObserveAfterClosePanics(t *testing.T) {
	dict, _ := testDict(t)
	p := New(dict, 0.4, 2)
	prod := p.NewProducer()
	p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Observe after Close did not panic")
		}
	}()
	prod.Observe(1, 0, netip.MustParseAddr("8.8.8.8"), 53, 1)
}

func TestPipelineObserveOnClosedProducerPanics(t *testing.T) {
	dict, _ := testDict(t)
	p := New(dict, 0.4, 2)
	defer p.Close()
	prod := p.NewProducer()
	prod.Close()
	prod.Close() // double Close is a no-op
	defer func() {
		if recover() == nil {
			t.Fatal("Observe on closed Producer did not panic")
		}
	}()
	prod.Observe(1, 0, netip.MustParseAddr("8.8.8.8"), 53, 1)
}

func TestPipelineNewProducerAfterClosePanics(t *testing.T) {
	dict, _ := testDict(t)
	p := New(dict, 0.4, 2)
	p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("NewProducer after Close did not panic")
		}
	}()
	p.NewProducer()
}

// eventSet collects FireEvents from concurrent shard workers into a
// comparable (window, sub, rule) → event map — a rule may re-fire for
// the same subscriber in a later window, never within one.
type eventSet struct {
	mu     sync.Mutex
	events map[[3]uint64]FireEvent
}

func newEventSet() *eventSet { return &eventSet{events: map[[3]uint64]FireEvent{}} }

func (c *eventSet) hook(ev FireEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := [3]uint64{ev.Window, uint64(ev.Sub), uint64(ev.Rule)}
	if prev, dup := c.events[key]; dup {
		panic(fmt.Sprintf("duplicate fire for (%d, %d) in window %d: %v then %v",
			ev.Sub, ev.Rule, ev.Window, prev, ev))
	}
	c.events[key] = ev
}

// TestPipelineFireHookMatchesDetections: the push side (FireEvents from
// shard workers) must carry exactly the detections the pull side
// (EachDetected) reports — same (sub, rule) set, same first hours, at
// every shard count. Run with -race to check the hook handoff.
func TestPipelineFireHookMatchesDetections(t *testing.T) {
	dict, w := testDict(t)
	obs := genObs(t, dict, w)
	for _, n := range []int{1, 8} {
		p := New(dict, 0.4, n)
		set := newEventSet()
		p.SetFireHook(set.hook)
		prod := p.NewProducer()
		for _, o := range obs {
			prod.Observe(o.Sub, o.Hour, o.IP, o.Port, o.Pkts)
		}
		p.Sync()

		want := map[[3]uint64]simtime.Hour{}
		p.EachDetected(func(sub detect.SubID, rule int, first simtime.Hour) {
			want[[3]uint64{0, uint64(sub), uint64(rule)}] = first
		})
		if len(want) == 0 {
			t.Fatal("nothing detected; stream too weak to compare")
		}
		set.mu.Lock()
		if len(set.events) != len(want) {
			t.Fatalf("shards=%d: %d events, %d detections", n, len(set.events), len(want))
		}
		for key, ev := range set.events {
			first, ok := want[key]
			if !ok {
				t.Fatalf("shards=%d: event %v has no matching detection", n, ev)
			}
			if ev.Hour != first {
				t.Fatalf("shards=%d: event hour %v, detection first %v", n, ev.Hour, first)
			}
			if ev.Window != 0 {
				t.Fatalf("shards=%d: event window %d before any rotation", n, ev.Window)
			}
		}
		set.mu.Unlock()
		p.Close()
	}
}

// TestPipelineRotateLossFreeShardInvariant is the pipeline half of the
// windowed acceptance contract: a stream split across rotated windows
// (subscribers partitioned by window, so each window's evidence is
// self-contained) must yield the same union of detections as one
// un-rotated single-engine run — at 1 shard and at 8 — with window
// sequence numbers stamped consistently on snapshots and events.
func TestPipelineRotateLossFreeShardInvariant(t *testing.T) {
	dict, w := testDict(t)
	obs := genObs(t, dict, w)
	const windows = 3

	eng := detect.New(dict, 0.4)
	for _, o := range obs {
		eng.Observe(o.Sub, o.Hour, o.IP, o.Port, o.Pkts)
	}
	want := eng.Snapshot().Detections()
	if len(want) == 0 {
		t.Fatal("reference engine detected nothing")
	}

	// Partition by subscriber: every subscriber's full evidence lands
	// inside exactly one window, so rotation must not lose detections.
	parts := make([][]Obs, windows)
	for _, o := range obs {
		i := int(uint64(o.Sub) % windows)
		parts[i] = append(parts[i], o)
	}

	for _, n := range []int{1, 8} {
		p := New(dict, 0.4, n)
		set := newEventSet()
		p.SetFireHook(set.hook)
		prod := p.NewProducer()
		var union []detect.Detection
		for wi, part := range parts {
			for _, o := range part {
				prod.Observe(o.Sub, o.Hour, o.IP, o.Port, o.Pkts)
			}
			snap, seq := p.Rotate()
			if seq != uint64(wi) {
				t.Fatalf("shards=%d: window %d rotated with seq %d", n, wi, seq)
			}
			if p.Window() != uint64(wi+1) {
				t.Fatalf("shards=%d: Window() = %d after %d rotations", n, p.Window(), wi+1)
			}
			union = append(union, snap.Detections()...)
			// Events emitted during the window carry its sequence.
			set.mu.Lock()
			for _, d := range snap.Detections() {
				if _, ok := set.events[[3]uint64{uint64(wi), uint64(d.Sub), uint64(d.Rule)}]; !ok {
					t.Fatalf("shards=%d window %d: detection (%d, %d) emitted no event", n, wi, d.Sub, d.Rule)
				}
			}
			set.mu.Unlock()
			if got := p.Subscribers(); got != 0 {
				t.Fatalf("shards=%d: %d subscribers survive rotation", n, got)
			}
		}
		sort.Slice(union, func(i, j int) bool {
			if union[i].Sub != union[j].Sub {
				return union[i].Sub < union[j].Sub
			}
			return union[i].Rule < union[j].Rule
		})
		if !reflect.DeepEqual(union, want) {
			t.Fatalf("shards=%d: union of %d rotated windows (%d detections) diverges from un-rotated run (%d)",
				n, windows, len(union), len(want))
		}
		set.mu.Lock()
		if len(set.events) != len(want) {
			t.Fatalf("shards=%d: %d events for %d detections", n, len(set.events), len(want))
		}
		set.mu.Unlock()
		p.Close()
	}
}

// TestPipelineResetAdvancesWindow: Reset is a window cut too — events
// after it carry the next sequence number.
func TestPipelineResetAdvancesWindow(t *testing.T) {
	dict, w := testDict(t)
	p := New(dict, 0.4, 2)
	defer p.Close()
	set := newEventSet()
	p.SetFireHook(set.hook)
	h := w.Window.Start
	ips := w.ResolverOn(h.Day()).Resolve("mqtt.simmeross.example")
	port := w.Catalog.Domains["mqtt.simmeross.example"].Port

	prod := p.NewProducer()
	prod.Observe(1, h, ips[0], port, 1)
	p.Reset()
	if p.Window() != 1 {
		t.Fatalf("Window() = %d after Reset", p.Window())
	}
	prod.Observe(1, h+1, ips[0], port, 1) // same (sub, rule): re-fires in the new window
	p.Sync()

	set.mu.Lock()
	ev, ok := set.events[[3]uint64{1, 1, uint64(dict.RuleIndex("Meross Dooropener"))}]
	set.mu.Unlock()
	if !ok {
		t.Fatal("no event in second window")
	}
	if ev.Hour != h+1 {
		t.Fatalf("second-window event = %+v, want hour %v", ev, h+1)
	}
	// Uninstalling the hook stops emission.
	p.SetFireHook(nil)
	p.Reset()
	set.mu.Lock()
	before := len(set.events)
	set.mu.Unlock()
	prod.Observe(2, h, ips[0], port, 1)
	p.Sync()
	set.mu.Lock()
	defer set.mu.Unlock()
	if len(set.events) != before {
		t.Fatal("uninstalled hook still emitted")
	}
}
