// Package pipeline runs the detection engine sharded across worker
// goroutines — the scalability layer the paper's §6 wild deployments
// imply but a single detect.Engine (documented not safe for concurrent
// use) cannot provide.
//
// Observations are partitioned by a hash of the subscriber identifier,
// so every subscriber's stream lands on exactly one worker-owned
// engine and is processed in arrival order. The compiled
// rules.Dictionary is shared read-only across shards. Because all
// per-subscriber state is confined to its owning shard, every merged
// aggregate the pipeline exposes is independent of the shard count:
// running with 1 shard or 8 produces identical results, only faster.
//
// The producer side batches observations per shard and hands full
// batches to bounded channels; read accessors first drain all pending
// work (Sync) so they always observe a quiescent, consistent state.
package pipeline

import (
	"net/netip"
	"sync"

	"repro/internal/detect"
	"repro/internal/rules"
	"repro/internal/simrand"
	"repro/internal/simtime"
)

// Obs is one sampled flow observation, the unit of work handed to
// shard workers.
type Obs struct {
	Sub  detect.SubID
	Hour simtime.Hour
	IP   netip.Addr
	Port uint16
	Pkts uint64
}

// DefaultBatchSize is the number of observations buffered per shard
// before a batch is handed to its worker.
const DefaultBatchSize = 512

// shardBacklog bounds how many batches may queue per shard before the
// producer blocks (backpressure instead of unbounded memory).
const shardBacklog = 4

type shard struct {
	eng   *detect.Engine
	ch    chan []Obs
	free  chan []Obs // recycled batch buffers
	batch []Obs
}

// Pipeline is a sharded, batched detection engine. The producer API
// (Observe, Sync, Reset, Close) must be driven from one goroutine;
// engine work proceeds concurrently on the shard workers.
type Pipeline struct {
	dict      *rules.Dictionary
	shards    []*shard
	batchSize int
	pending   sync.WaitGroup // batches dispatched but not yet processed
	workers   sync.WaitGroup
	// dirty is set by Observe and cleared by Sync, so back-to-back
	// reads (e.g. point queries inside an EachDetected visit) skip the
	// flush-and-wait entirely while the engines are quiescent.
	dirty  bool
	closed bool
}

// New starts a pipeline with n worker-owned engine shards at detection
// threshold d. n < 1 is clamped to 1.
func New(dict *rules.Dictionary, d float64, n int) *Pipeline {
	if n < 1 {
		n = 1
	}
	p := &Pipeline{dict: dict, batchSize: DefaultBatchSize}
	p.shards = make([]*shard, n)
	for i := range p.shards {
		s := &shard{
			eng:   detect.New(dict, d),
			ch:    make(chan []Obs, shardBacklog),
			free:  make(chan []Obs, shardBacklog),
			batch: make([]Obs, 0, DefaultBatchSize),
		}
		p.shards[i] = s
		p.workers.Add(1)
		go p.run(s)
	}
	return p
}

func (p *Pipeline) run(s *shard) {
	defer p.workers.Done()
	for batch := range s.ch {
		for i := range batch {
			o := &batch[i]
			s.eng.Observe(o.Sub, o.Hour, o.IP, o.Port, o.Pkts)
		}
		select {
		case s.free <- batch[:0]:
		default: // recycle ring full; let the buffer be collected
		}
		p.pending.Done()
	}
}

// shardOf maps a subscriber to its owning shard. SubIDs are often
// sequential (line indices) or biased hashes, so mix before reducing.
func (p *Pipeline) shardOf(sub detect.SubID) int {
	return int(simrand.Mix64(uint64(sub)) % uint64(len(p.shards)))
}

// Observe enqueues one sampled flow observation. Unlike
// detect.Engine.Observe it does not report newly-fired rules: firing
// happens asynchronously on the owning shard. Use the read accessors
// (which synchronize) to inspect detections.
func (p *Pipeline) Observe(sub detect.SubID, h simtime.Hour, ip netip.Addr, port uint16, pkts uint64) {
	if p.closed {
		panic("pipeline: Observe after Close")
	}
	p.dirty = true
	s := p.shards[p.shardOf(sub)]
	s.batch = append(s.batch, Obs{Sub: sub, Hour: h, IP: ip, Port: port, Pkts: pkts})
	if len(s.batch) >= p.batchSize {
		p.dispatch(s)
	}
}

func (p *Pipeline) dispatch(s *shard) {
	p.pending.Add(1)
	s.ch <- s.batch
	select {
	case b := <-s.free:
		s.batch = b
	default:
		s.batch = make([]Obs, 0, p.batchSize)
	}
}

// Sync flushes partial batches and blocks until every dispatched
// observation has been applied to its shard engine. All read accessors
// call it implicitly; between Sync and the next Observe the shard
// engines are quiescent and safe to read.
func (p *Pipeline) Sync() {
	if !p.dirty {
		return
	}
	for _, s := range p.shards {
		if len(s.batch) > 0 {
			p.dispatch(s)
		}
	}
	p.pending.Wait()
	p.dirty = false
}

// Shards returns the number of engine shards.
func (p *Pipeline) Shards() int { return len(p.shards) }

// Dictionary returns the shared compiled dictionary.
func (p *Pipeline) Dictionary() *rules.Dictionary { return p.dict }

// Reset clears all shard state (start of a new aggregation bin).
func (p *Pipeline) Reset() {
	p.Sync()
	for _, s := range p.shards {
		s.eng.Reset()
	}
}

// Close drains pending work and stops the shard workers. The pipeline
// remains readable after Close but must not Observe again.
func (p *Pipeline) Close() {
	if p.closed {
		return
	}
	p.closed = true
	p.Sync()
	for _, s := range p.shards {
		close(s.ch)
	}
	p.workers.Wait()
}

// Detected reports whether the rule has fired for the subscriber.
func (p *Pipeline) Detected(sub detect.SubID, rule int) bool {
	p.Sync()
	return p.shards[p.shardOf(sub)].eng.Detected(sub, rule)
}

// FirstDetection returns the hour a rule first fired for a subscriber
// and whether it fired at all.
func (p *Pipeline) FirstDetection(sub detect.SubID, rule int) (simtime.Hour, bool) {
	p.Sync()
	return p.shards[p.shardOf(sub)].eng.FirstDetection(sub, rule)
}

// RulePackets returns the sampled packets attributed to (sub, rule) in
// this bin.
func (p *Pipeline) RulePackets(sub detect.SubID, rule int) uint64 {
	p.Sync()
	return p.shards[p.shardOf(sub)].eng.RulePackets(sub, rule)
}

// ActiveUse reports whether (sub, rule) meets the §7.1 usage threshold.
func (p *Pipeline) ActiveUse(sub detect.SubID, rule int) bool {
	p.Sync()
	return p.shards[p.shardOf(sub)].eng.ActiveUse(sub, rule)
}

// CountDetected returns how many subscribers the rule currently fires
// for, across all shards.
func (p *Pipeline) CountDetected(rule int) int {
	p.Sync()
	n := 0
	for _, s := range p.shards {
		n += s.eng.CountDetected(rule)
	}
	return n
}

// CountAnyDetected returns how many subscribers have at least one fired
// rule, across all shards.
func (p *Pipeline) CountAnyDetected() int {
	p.Sync()
	n := 0
	for _, s := range p.shards {
		n += s.eng.CountAnyDetected()
	}
	return n
}

// Subscribers returns the number of tracked subscribers across shards.
func (p *Pipeline) Subscribers() int {
	p.Sync()
	n := 0
	for _, s := range p.shards {
		n += s.eng.Subscribers()
	}
	return n
}

// EachDetected visits every (subscriber, rule) detection across shards.
// Visit order follows shard order, not subscriber order; use Snapshot
// for a globally ordered view.
func (p *Pipeline) EachDetected(fn func(sub detect.SubID, rule int, first simtime.Hour)) {
	p.Sync()
	for _, s := range p.shards {
		s.eng.EachDetected(fn)
	}
}

// Snapshot captures a merged, immutable view of all shard detections.
func (p *Pipeline) Snapshot() *detect.Snapshot {
	p.Sync()
	parts := make([]*detect.Snapshot, len(p.shards))
	for i, s := range p.shards {
		parts[i] = s.eng.Snapshot()
	}
	return detect.Merge(parts...)
}
