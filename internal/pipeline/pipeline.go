// Package pipeline runs the detection engine sharded across worker
// goroutines — the scalability layer the paper's §6 wild deployments
// imply but a single detect.Engine (documented not safe for concurrent
// use) cannot provide.
//
// Observations are partitioned by a hash of the subscriber identifier,
// so every subscriber's stream lands on exactly one worker-owned
// engine and is processed in arrival order. The compiled
// rules.Dictionary is shared read-only across shards. Because all
// per-subscriber state is confined to its owning shard, every merged
// aggregate the pipeline exposes is independent of the shard count:
// running with 1 shard or 8 produces identical results, only faster.
//
// # Producers
//
// The write side is driven through Producer handles. Each Producer
// owns per-shard batch buffers and must be used from a single
// goroutine, but any number of Producers may observe concurrently —
// one per collector feed in an operational deployment. Within one
// Producer a subscriber's observations are applied in call order;
// across Producers the interleaving is unspecified, so feeds that must
// agree on per-subscriber ordering (first-detection hours) should
// partition subscribers between them, as distinct exporters naturally
// do.
//
// Full batches are handed to bounded per-shard channels; read
// accessors first drain all live producers and wait for the workers
// (Sync), so they always observe a quiescent, consistent state. Reads
// require that no Observe is concurrently in flight: quiesce the
// producer goroutines (or Close their handles) before reading.
//
// # Events and windows
//
// The read side is available in push form too: SetFireHook installs a
// first-fire hook that shard workers invoke the moment a rule crosses
// threshold (FireEvent), and Rotate cuts an aggregation window — an
// atomic snapshot-and-reset that advances the window sequence stamped
// on every event. Together they turn the pipeline from a pull-
// snapshot batch engine into the continuously reporting detector the
// paper's §6 longitudinal views presuppose.
package pipeline

import (
	"net/netip"
	"sync"
	"sync/atomic"

	"repro/internal/detect"
	"repro/internal/rules"
	"repro/internal/simrand"
	"repro/internal/simtime"
)

// Obs is one sampled flow observation, the unit of work handed to
// shard workers. It is an alias of detect.Obs so batches flow from
// producers to shard engines without per-record conversion.
type Obs = detect.Obs

// FireEvent is one first-fire notification from a shard worker: Rule
// crossed its evidence threshold for Sub during hour bin Hour, while
// aggregation window Window was current. Events are emitted exactly
// once per (subscriber, rule) per window — the push-side counterpart
// of EachDetected.
type FireEvent struct {
	Sub    detect.SubID
	Rule   int
	Hour   simtime.Hour
	Window uint64
}

// DefaultBatchSize is the number of observations buffered per shard
// before a batch is handed to its worker.
const DefaultBatchSize = 512

// MinBatchSize and MaxBatchSize bound SetBatchSize: below the floor
// per-batch dispatch overhead dominates, above the ceiling batches
// add latency and pin memory without amortizing anything further.
const (
	MinBatchSize = 64
	MaxBatchSize = 4096
)

// batchLatencyBudget is the dwell time AdaptiveBatchSize aims for: a
// partial batch should represent about this many seconds of ingest,
// so dispatch overhead is amortized at high rates without letting
// low-rate observations linger in producer buffers.
const batchLatencyBudget = 0.002

// AdaptiveBatchSize maps an observed ingest rate in records/s — in a
// deployment, the fan-in controller's EWMA — to a dispatch threshold:
// about batchLatencyBudget worth of records, clamped to
// [MinBatchSize, MaxBatchSize]. A rate of zero or below (controller
// not yet seeded) keeps DefaultBatchSize.
func AdaptiveBatchSize(rate float64) int {
	if rate <= 0 {
		return DefaultBatchSize
	}
	n := int(rate * batchLatencyBudget)
	if n < MinBatchSize {
		return MinBatchSize
	}
	if n > MaxBatchSize {
		return MaxBatchSize
	}
	return n
}

// shardBacklog bounds how many batches may queue per shard before a
// producer blocks (backpressure instead of unbounded memory).
const shardBacklog = 4

type shard struct {
	// mu guards eng between the worker (write-locked per batch) and
	// the read accessors (read-locked per shard visit), so reads
	// concurrent with live producers are safe, merely approximate.
	mu   sync.RWMutex
	eng  *detect.Engine
	ch   chan []Obs
	free chan []Obs // recycled batch buffers
	// window is the shard's current aggregation-window sequence. It is
	// read by the fire hook and advanced by Rotate/Reset inside the
	// same mu critical section as the engine reset, so an event's
	// stamp always matches the window whose snapshot holds its
	// detection — even when rotation races live ingest.
	window uint64 // guarded by mu
}

// Pipeline is a sharded, batched detection engine. Writes go through
// Producer handles (NewProducer); engine work proceeds concurrently on
// the shard workers; read accessors synchronize via Sync.
type Pipeline struct {
	dict   *rules.Dictionary
	shards []*shard
	// batchSize is the per-shard dispatch threshold. Atomic so the
	// fan-in controller can retune it (SetBatchSize) while producers
	// are live.
	batchSize atomic.Int32
	workers   sync.WaitGroup

	// inflight counts batches dispatched but not yet processed. A
	// plain counter under a mutex with a condition variable, not a
	// WaitGroup: producers may dispatch while a reader waits for
	// quiescence, and WaitGroup forbids Add concurrent with Wait.
	inflightMu sync.Mutex
	inflight   int
	quiet      *sync.Cond // signaled when inflight drops to zero

	// dirty is set by Producer.Observe and cleared by Sync, so
	// back-to-back reads (e.g. point queries inside an EachDetected
	// visit) skip the producer flush pass while the engines are
	// quiescent.
	dirty  atomic.Bool
	closed atomic.Bool

	// hook is the optional first-fire hook (SetFireHook); shard
	// workers load it per detection, so an unhooked pipeline pays one
	// nil check per fire and nothing per observation.
	hook atomic.Pointer[func(FireEvent)]
	// window is the aggregation-window sequence number: the count of
	// completed Rotate/Reset calls. FireEvents are stamped from the
	// per-shard copy of this counter (see shard.window), which stays
	// coherent with the shard's snapshot under live rotation.
	window atomic.Uint64

	rotateMu sync.Mutex // serializes Rotate/Reset window cuts

	mu        sync.Mutex // guards producers
	producers map[*Producer]struct{}

	syncMu sync.Mutex // serializes Sync flush passes between readers
}

// New starts a pipeline with n worker-owned engine shards at detection
// threshold d. n < 1 is clamped to 1.
func New(dict *rules.Dictionary, d float64, n int) *Pipeline {
	if n < 1 {
		n = 1
	}
	p := &Pipeline{
		dict:      dict,
		producers: make(map[*Producer]struct{}),
	}
	p.batchSize.Store(DefaultBatchSize)
	p.quiet = sync.NewCond(&p.inflightMu)
	p.shards = make([]*shard, n)
	for i := range p.shards {
		s := &shard{
			eng:  detect.New(dict, d),
			ch:   make(chan []Obs, shardBacklog),
			free: make(chan []Obs, shardBacklog),
		}
		// Bridge the engine's first-fire hook to the pipeline hook,
		// stamping the shard's window sequence. The engine calls this
		// on the shard worker goroutine under the shard's lock — the
		// same lock Rotate advances s.window under, so the stamp is
		// coherent with the snapshot the detection lands in.
		s.eng.OnFire = func(sub detect.SubID, rule int, h simtime.Hour) {
			if fn := p.hook.Load(); fn != nil {
				(*fn)(FireEvent{Sub: sub, Rule: rule, Hour: h, Window: s.window})
			}
		}
		p.shards[i] = s
		p.workers.Add(1)
		go p.run(s)
	}
	return p
}

// SetFireHook installs fn as the pipeline's first-fire hook: shard
// workers call it the moment a rule crosses threshold for a
// subscriber, once per (subscriber, rule) per window. fn runs on the
// worker goroutine while it holds the shard's engine lock, so it must
// be fast and must never block or call back into the pipeline's read
// accessors — hand the event to a bounded queue and return. Pass nil
// to uninstall. Safe to call at any time; fires already in flight may
// still use the previous hook.
func (p *Pipeline) SetFireHook(fn func(FireEvent)) {
	if fn == nil {
		p.hook.Store(nil)
		return
	}
	p.hook.Store(&fn)
}

// Window returns the current aggregation-window sequence number: the
// number of completed Rotate/Reset cuts so far.
func (p *Pipeline) Window() uint64 { return p.window.Load() }

// run is a shard worker's loop: apply each batch to the shard engine
// under the shard lock. The whole batch goes through the engine's
// batch entry point, so the per-record engine costs (subscriber map
// lookup) are amortized there rather than paid per Observe call.
//
// haystack:hotpath — runs once per dispatched batch.
func (p *Pipeline) run(s *shard) {
	defer p.workers.Done()
	for batch := range s.ch {
		s.mu.Lock()
		s.eng.ObserveBatch(batch)
		s.mu.Unlock()
		select {
		case s.free <- batch[:0]:
		default: // recycle ring full; let the buffer be collected
		}
		p.inflightMu.Lock()
		p.inflight--
		if p.inflight == 0 {
			p.quiet.Broadcast()
		}
		p.inflightMu.Unlock()
	}
}

// waitQuiesced blocks until no dispatched batch remains unprocessed.
// Engine writes by the workers happen-before its return. Under
// sustained producer saturation inflight may never reach zero, so a
// racing reader waits for a lull; quiescent producers drain promptly.
func (p *Pipeline) waitQuiesced() {
	p.inflightMu.Lock()
	for p.inflight > 0 {
		p.quiet.Wait()
	}
	p.inflightMu.Unlock()
}

// shardOf maps a subscriber to its owning shard. SubIDs are often
// sequential (line indices) or biased hashes, so mix before reducing.
//
// haystack:hotpath — runs once per observation.
func (p *Pipeline) shardOf(sub detect.SubID) int {
	return int(simrand.Mix64(uint64(sub)) % uint64(len(p.shards)))
}

// dispatch hands one full or flushed batch to its shard worker.
//
// haystack:hotpath — runs once per full batch.
func (p *Pipeline) dispatch(s *shard, batch []Obs) {
	p.inflightMu.Lock()
	p.inflight++
	p.inflightMu.Unlock()
	s.ch <- batch
}

// Producer is a write handle onto the pipeline with its own per-shard
// batch buffers. Each Producer must be driven from a single goroutine;
// distinct Producers may observe concurrently. A subscriber's
// observations keep their order within one Producer (they ride the
// same per-shard buffer and channel); ordering across Producers is
// unspecified.
type Producer struct {
	p *Pipeline
	// mu guards the buffers against the flush Sync performs on behalf
	// of readers. Uncontended in steady state: only Sync/Close take it
	// from other goroutines.
	mu     sync.Mutex
	batch  [][]Obs // one buffer per shard, nil until first use
	closed bool
}

// NewProducer registers a new write handle. Producers left open are
// flushed and closed by Pipeline.Close.
func (p *Pipeline) NewProducer() *Producer {
	if p.closed.Load() {
		panic("pipeline: NewProducer after Close")
	}
	pr := &Producer{p: p, batch: make([][]Obs, len(p.shards))}
	p.mu.Lock()
	p.producers[pr] = struct{}{}
	p.mu.Unlock()
	return pr
}

// Observe enqueues one sampled flow observation. Unlike
// detect.Engine.Observe it does not report newly-fired rules: firing
// happens asynchronously on the owning shard. Use the pipeline's read
// accessors (which synchronize) to inspect detections.
//
// haystack:hotpath — runs once per sampled flow observation.
func (pr *Producer) Observe(sub detect.SubID, h simtime.Hour, ip netip.Addr, port uint16, pkts uint64) {
	p := pr.p
	if p.closed.Load() {
		panic("pipeline: Observe after Close")
	}
	size := int(p.batchSize.Load())
	i := p.shardOf(sub)
	s := p.shards[i]
	pr.mu.Lock()
	if pr.closed {
		pr.mu.Unlock()
		panic("pipeline: Observe on closed Producer")
	}
	b := pr.batch[i]
	if b == nil {
		select {
		case b = <-s.free:
		default:
			b = make([]Obs, 0, size)
		}
	}
	b = append(b, Obs{Sub: sub, Hour: h, IP: ip, Port: port, Pkts: pkts})
	if len(b) >= size {
		p.dispatch(s, b)
		b = nil
	}
	pr.batch[i] = b
	// Set dirty after buffering, still under pr.mu: a Sync that
	// cleared the flag before this point either takes pr.mu after us
	// and flushes this observation, or left it buffered — in which
	// case the store guarantees the next Sync flushes it. Setting
	// dirty first would let a racing Sync clear it over an empty
	// buffer and strand the observation invisible to later reads.
	p.dirty.Store(true)
	pr.mu.Unlock()
}

// ObserveBatch enqueues a whole batch of observations, partitioning
// it across shards under one producer-mutex acquisition instead of
// one per record. Ordering matches calling Observe per element; like
// Observe, it does not report newly-fired rules. The obs slice is
// copied into per-shard buffers and may be reused by the caller
// immediately on return.
//
// haystack:hotpath — runs once per decoded flow batch.
func (pr *Producer) ObserveBatch(obs []Obs) {
	if len(obs) == 0 {
		return
	}
	p := pr.p
	if p.closed.Load() {
		panic("pipeline: ObserveBatch after Close")
	}
	size := int(p.batchSize.Load())
	pr.mu.Lock()
	if pr.closed {
		pr.mu.Unlock()
		panic("pipeline: ObserveBatch on closed Producer")
	}
	for j := range obs {
		i := p.shardOf(obs[j].Sub)
		s := p.shards[i]
		b := pr.batch[i]
		if b == nil {
			select {
			case b = <-s.free:
			default:
				b = make([]Obs, 0, size)
			}
		}
		b = append(b, obs[j])
		if len(b) >= size {
			p.dispatch(s, b)
			b = nil
		}
		pr.batch[i] = b
	}
	// Same ordering argument as Observe: set dirty after buffering,
	// still under pr.mu, so a racing Sync can never clear the flag
	// over a buffer that is about to receive these observations.
	p.dirty.Store(true)
	pr.mu.Unlock()
}

// Flush dispatches the producer's partial batches to their shard
// workers without waiting for them to be applied.
func (pr *Producer) Flush() {
	pr.mu.Lock()
	pr.flushLocked()
	pr.mu.Unlock()
}

func (pr *Producer) flushLocked() {
	for i, b := range pr.batch {
		if len(b) > 0 {
			pr.p.dispatch(pr.p.shards[i], b)
			pr.batch[i] = nil
		}
	}
}

// Close flushes the producer's partial batches and unregisters the
// handle. Closing an already-closed producer is a no-op.
func (pr *Producer) Close() {
	pr.mu.Lock()
	if pr.closed {
		pr.mu.Unlock()
		return
	}
	pr.flushLocked()
	pr.closed = true
	pr.mu.Unlock()
	p := pr.p
	p.mu.Lock()
	delete(p.producers, pr)
	p.mu.Unlock()
}

// Producers returns the number of open producer handles.
func (p *Pipeline) Producers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.producers)
}

// Inflight returns the number of dispatched batches not yet applied
// to their shard engines — the pipeline-side queue depth a metrics
// surface reports alongside the socket-side backlog.
func (p *Pipeline) Inflight() int {
	p.inflightMu.Lock()
	defer p.inflightMu.Unlock()
	return p.inflight
}

// Sync flushes the partial batches of every live producer and blocks
// until every dispatched observation has been applied to its shard
// engine. All read accessors call it implicitly; between Sync and the
// next Observe the shard engines are quiescent and safe to read.
// Concurrent readers are safe (Sync serializes their flush passes),
// and a Sync racing an Observe is safe but may or may not include
// that observation — quiesce producers before reading for exact
// results.
func (p *Pipeline) Sync() {
	p.syncMu.Lock()
	defer p.syncMu.Unlock()
	if p.dirty.Swap(false) {
		p.mu.Lock()
		prs := make([]*Producer, 0, len(p.producers))
		for pr := range p.producers {
			prs = append(prs, pr)
		}
		p.mu.Unlock()
		for _, pr := range prs {
			pr.Flush()
		}
	}
	// Wait even when the flush pass was skipped: it is what gives a
	// reader that lost the dirty race to another Sync a happens-after
	// edge with the workers' engine writes.
	p.waitQuiesced()
}

// Shards returns the number of engine shards.
func (p *Pipeline) Shards() int { return len(p.shards) }

// BatchSize returns the current per-shard dispatch threshold.
func (p *Pipeline) BatchSize() int { return int(p.batchSize.Load()) }

// SetBatchSize retunes the per-shard dispatch threshold, clamped to
// [MinBatchSize, MaxBatchSize]. Safe to call while producers are
// live: buffers already allocated keep their capacity and dispatch at
// whichever threshold their next append observes, so retuning never
// loses or reorders observations.
func (p *Pipeline) SetBatchSize(n int) {
	if n < MinBatchSize {
		n = MinBatchSize
	}
	if n > MaxBatchSize {
		n = MaxBatchSize
	}
	p.batchSize.Store(int32(n))
}

// Dictionary returns the shared compiled dictionary.
func (p *Pipeline) Dictionary() *rules.Dictionary { return p.dict }

// Reset clears all shard state and advances the window sequence —
// Rotate without materializing the closing window's snapshot.
// Producers stay registered and usable for the next bin, but must be
// quiescent across the call or observations straddle the bins.
func (p *Pipeline) Reset() {
	p.rotateMu.Lock()
	defer p.rotateMu.Unlock()
	p.Sync()
	for _, s := range p.shards {
		s.mu.Lock()
		s.eng.Reset()
		s.window++
		s.mu.Unlock()
	}
	p.window.Add(1)
}

// Rotate atomically ends the current aggregation window: it
// synchronizes the pipeline, captures a merged snapshot of every
// shard's detections, resets the shard engines, and advances the
// window sequence. It returns the snapshot together with the sequence
// number of the window just closed (the value FireEvents emitted
// during that window carry). Producers stay registered — feeds and
// their template caches survive rotation, as they would across
// windows in a deployment. Observations in flight across the call may
// land on either side of the boundary (quiesce producers for an exact
// cut, exactly as with Reset), but event stamps stay coherent either
// way: each shard's window sequence advances inside the same critical
// section as its snapshot+reset, so an event stamped with window n is
// always part of window n's snapshot.
func (p *Pipeline) Rotate() (*detect.Snapshot, uint64) {
	p.rotateMu.Lock()
	defer p.rotateMu.Unlock()
	p.Sync()
	parts := make([]*detect.Snapshot, len(p.shards))
	for i, s := range p.shards {
		s.mu.Lock()
		parts[i] = s.eng.Snapshot()
		s.eng.Reset()
		s.window++
		s.mu.Unlock()
	}
	seq := p.window.Add(1) - 1
	return detect.Merge(parts...), seq
}

// Restore marks (sub, rule) as already detected with first-detection
// hour first, on the subscriber's owning shard — the replay path
// rebuilding the current window from a durable event log (see
// detect.Engine.Restore). No FireEvent is emitted and restoring an
// already-detected pair is a no-op. Replay before starting producers;
// a Restore racing live ingest is safe (same lock) but the
// interleaving is unspecified.
func (p *Pipeline) Restore(sub detect.SubID, rule int, first simtime.Hour) {
	s := p.shards[p.shardOf(sub)]
	s.mu.Lock()
	s.eng.Restore(sub, rule, first)
	s.mu.Unlock()
}

// SetWindow forces the aggregation-window sequence to seq on every
// shard, without snapshotting or resetting anything — how a node
// restarting from a durable log resumes the window series where the
// crash interrupted it instead of restarting at zero. Call it while
// the pipeline is quiescent (before producers start), normally
// alongside the Restore pass.
func (p *Pipeline) SetWindow(seq uint64) {
	p.rotateMu.Lock()
	defer p.rotateMu.Unlock()
	p.Sync()
	for _, s := range p.shards {
		s.mu.Lock()
		s.window = seq
		s.mu.Unlock()
	}
	p.window.Store(seq)
}

// Close flushes and closes all live producers, drains pending work and
// stops the shard workers. The pipeline remains readable after Close
// but must not Observe again.
func (p *Pipeline) Close() {
	if p.closed.Swap(true) {
		return
	}
	p.mu.Lock()
	prs := make([]*Producer, 0, len(p.producers))
	for pr := range p.producers {
		prs = append(prs, pr)
	}
	p.mu.Unlock()
	for _, pr := range prs {
		pr.Close()
	}
	p.waitQuiesced()
	p.dirty.Store(false)
	for _, s := range p.shards {
		close(s.ch)
	}
	p.workers.Wait()
}

// Detected reports whether the rule has fired for the subscriber.
func (p *Pipeline) Detected(sub detect.SubID, rule int) bool {
	p.Sync()
	s := p.shards[p.shardOf(sub)]
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.eng.Detected(sub, rule)
}

// FirstDetection returns the hour a rule first fired for a subscriber
// and whether it fired at all.
func (p *Pipeline) FirstDetection(sub detect.SubID, rule int) (simtime.Hour, bool) {
	p.Sync()
	s := p.shards[p.shardOf(sub)]
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.eng.FirstDetection(sub, rule)
}

// RulePackets returns the sampled packets attributed to (sub, rule) in
// this bin.
func (p *Pipeline) RulePackets(sub detect.SubID, rule int) uint64 {
	p.Sync()
	s := p.shards[p.shardOf(sub)]
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.eng.RulePackets(sub, rule)
}

// ActiveUse reports whether (sub, rule) meets the §7.1 usage threshold.
func (p *Pipeline) ActiveUse(sub detect.SubID, rule int) bool {
	p.Sync()
	s := p.shards[p.shardOf(sub)]
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.eng.ActiveUse(sub, rule)
}

// CountDetected returns how many subscribers the rule currently fires
// for, across all shards.
func (p *Pipeline) CountDetected(rule int) int {
	p.Sync()
	n := 0
	for _, s := range p.shards {
		s.mu.RLock()
		n += s.eng.CountDetected(rule)
		s.mu.RUnlock()
	}
	return n
}

// CountAnyDetected returns how many subscribers have at least one fired
// rule, across all shards.
func (p *Pipeline) CountAnyDetected() int {
	p.Sync()
	n := 0
	for _, s := range p.shards {
		s.mu.RLock()
		n += s.eng.CountAnyDetected()
		s.mu.RUnlock()
	}
	return n
}

// Subscribers returns the number of tracked subscribers across shards.
func (p *Pipeline) Subscribers() int {
	p.Sync()
	n := 0
	for _, s := range p.shards {
		s.mu.RLock()
		n += s.eng.Subscribers()
		s.mu.RUnlock()
	}
	return n
}

// EachDetected visits every (subscriber, rule) detection across shards.
// Visit order follows shard order, not subscriber order; use Snapshot
// for a globally ordered view. Each shard's detections are captured
// under its read lock before fn runs, so fn may itself call read
// accessors (point queries) without holding any shard lock.
func (p *Pipeline) EachDetected(fn func(sub detect.SubID, rule int, first simtime.Hour)) {
	p.Sync()
	type det struct {
		sub   detect.SubID
		rule  int
		first simtime.Hour
	}
	var items []det
	for _, s := range p.shards {
		items = items[:0]
		s.mu.RLock()
		s.eng.EachDetected(func(sub detect.SubID, rule int, first simtime.Hour) {
			items = append(items, det{sub, rule, first})
		})
		s.mu.RUnlock()
		for _, it := range items {
			fn(it.sub, it.rule, it.first)
		}
	}
}

// Snapshot captures a merged, immutable view of all shard detections.
func (p *Pipeline) Snapshot() *detect.Snapshot {
	p.Sync()
	parts := make([]*detect.Snapshot, len(p.shards))
	for i, s := range p.shards {
		s.mu.RLock()
		parts[i] = s.eng.Snapshot()
		s.mu.RUnlock()
	}
	return detect.Merge(parts...)
}
