package netflow

import (
	"testing"
	"testing/quick"

	"repro/internal/flow"
	"repro/internal/simrand"
)

// Collectors parse attacker-controlled bytes (exporters can be spoofed
// over UDP); whatever the input, Feed must return — never panic, never
// over-read — and the template cache must stay consistent.

func TestFeedNeverPanicsOnRandomBytes(t *testing.T) {
	col := NewCollector()
	f := func(data []byte) bool {
		_, _ = col.Feed(data) // errors are fine; panics are not
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFeedNeverPanicsOnMutatedMessages(t *testing.T) {
	// Start from valid messages and flip bytes: the hard corpus.
	exp := NewExporter(1)
	exp.TemplateEvery = 1
	msgs, err := exp.Export(mkRecords(12, 1000), 30)
	if err != nil {
		t.Fatal(err)
	}
	base := msgs[0]
	rng := simrand.New(99)
	for i := 0; i < 5000; i++ {
		m := append([]byte(nil), base...)
		flips := 1 + rng.Intn(4)
		for j := 0; j < flips; j++ {
			m[rng.Intn(len(m))] ^= byte(1 + rng.Intn(255))
		}
		col := NewCollector()
		recs, _ := col.Feed(m)
		for _, r := range recs {
			// Whatever decodes must still be structurally plausible.
			_ = r.Key.Src
		}
	}
}

// FuzzFeed is the native fuzz target behind the two quick-check tests
// above: whatever bytes arrive, Feed must return without panicking,
// decoded records must carry only addresses the Detector feed path
// can handle (4-byte or invalid — never a mis-sized Addr), and the
// arena path must agree with the record path byte-for-byte: FeedInto
// on a reused batch decodes exactly what Feed decodes, with the same
// error disposition.
func FuzzFeed(f *testing.F) {
	exp := NewExporter(1)
	exp.TemplateEvery = 1
	msgs, err := exp.Export(mkRecords(12, 1000), 30)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(msgs[0])
	f.Add([]byte{})
	f.Add([]byte{0, 9, 0, 1})
	// A template whose source-address field is 2 bytes wide, followed
	// by a matching data FlowSet: decodes to records with an invalid
	// Src, the case that used to panic the Detector.
	short := make([]byte, 0, 64)
	short = append(short, 0, 9, 0, 2)                                     // version 9, count 2
	short = append(short, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 7) // uptime, secs, seq, source
	short = append(short, 0, 0, 0, 12, 1, 0, 0, 1, 0, 8, 0, 2)            // template 256: srcaddr len 2
	short = append(short, 1, 0, 0, 6, 10, 1)                              // data set, one 2-byte record
	f.Add(short)
	arena := flow.NewBatch(64) // reused across inputs: stale state must never leak
	f.Fuzz(func(t *testing.T, data []byte) {
		col := NewCollector()
		recs, err := col.Feed(data)
		for i := range recs {
			if a := recs[i].Key.Src; a.IsValid() && !a.Is4() {
				t.Fatalf("decoded non-IPv4 source %v", a)
			}
		}
		colB := NewCollector()
		arena.Reset()
		errB := colB.FeedInto(data, arena)
		if (err == nil) != (errB == nil) {
			t.Fatalf("Feed err=%v, FeedInto err=%v", err, errB)
		}
		got := arena.Records()
		if len(got) != len(recs) {
			t.Fatalf("Feed decoded %d records, FeedInto %d", len(recs), len(got))
		}
		for i := range recs {
			if recs[i] != got[i] {
				t.Fatalf("record %d: Feed %+v, FeedInto %+v", i, recs[i], got[i])
			}
		}
	})
}

func TestTemplateWithHugeFieldCount(t *testing.T) {
	// A malicious template claiming 65535 fields must be rejected, not
	// allocate unbounded memory.
	msg := make([]byte, 20+8)
	msg[1] = 9 // version
	msg[20+1] = 0
	msg[20+2], msg[20+3] = 0, 8 // flowset length 8
	// template id 256, field count 65535
	msg[24], msg[25] = 1, 0
	msg[26], msg[27] = 0xff, 0xff
	if _, err := NewCollector().Feed(msg); err == nil {
		t.Log("truncated-template message accepted as no-op (records dropped)")
	}
}
