package netflow

import (
	"encoding/binary"
	"net/netip"
	"testing"
	"testing/quick"

	"repro/internal/flow"
	"repro/internal/simtime"
)

func mkRecords(n int, hour simtime.Hour) []flow.Record {
	recs := make([]flow.Record, n)
	for i := range recs {
		recs[i] = flow.Record{
			Key: flow.Key{
				Src:     netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)}),
				Dst:     netip.AddrFrom4([4]byte{185, 1, 2, byte(i)}),
				SrcPort: uint16(40000 + i),
				DstPort: 443,
				Proto:   flow.ProtoTCP,
			},
			Packets:  uint64(i + 1),
			Bytes:    uint64((i + 1) * 600),
			TCPFlags: 0x12,
			Hour:     hour,
		}
	}
	return recs
}

func TestRoundTrip(t *testing.T) {
	hour := simtime.HourOf(simtime.ActiveWindow.Start.Time())
	in := mkRecords(10, hour)
	exp := NewExporter(7)
	msgs, err := exp.Export(in, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 {
		t.Fatalf("got %d messages", len(msgs))
	}
	col := NewCollector()
	out, err := col.Feed(msgs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d records, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Key != in[i].Key {
			t.Fatalf("record %d key %v, want %v", i, out[i].Key, in[i].Key)
		}
		if out[i].Packets != in[i].Packets || out[i].Bytes != in[i].Bytes {
			t.Fatalf("record %d counters %d/%d", i, out[i].Packets, out[i].Bytes)
		}
		if out[i].TCPFlags != 0x12 {
			t.Fatalf("record %d flags %#x", i, out[i].TCPFlags)
		}
		if out[i].Hour != hour {
			t.Fatalf("record %d hour %v, want %v", i, out[i].Hour, hour)
		}
	}
}

func TestMultiMessageSplit(t *testing.T) {
	in := mkRecords(75, 1000)
	exp := NewExporter(1)
	msgs, err := exp.Export(in, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 3 {
		t.Fatalf("got %d messages, want 3", len(msgs))
	}
	col := NewCollector()
	total := 0
	for _, m := range msgs {
		recs, err := col.Feed(m)
		if err != nil {
			t.Fatal(err)
		}
		total += len(recs)
	}
	if total != 75 {
		t.Fatalf("decoded %d records", total)
	}
}

func TestDataBeforeTemplateDropped(t *testing.T) {
	in := mkRecords(5, 1000)
	exp := NewExporter(1)
	exp.TemplateEvery = 0 // template only in the very first message
	msgs1, err := exp.Export(in, 30)
	if err != nil {
		t.Fatal(err)
	}
	msgs2, err := exp.Export(in, 30)
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector()
	// Feed second message first: no template yet.
	recs, err := col.Feed(msgs2[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("decoded %d records without template", len(recs))
	}
	if col.Dropped.Load() != 1 {
		t.Fatalf("Dropped = %d", col.Dropped.Load())
	}
	// Now the templated message, then the data-only one again.
	if _, err := col.Feed(msgs1[0]); err != nil {
		t.Fatal(err)
	}
	recs, err = col.Feed(msgs2[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("decoded %d records after template", len(recs))
	}
}

func TestSourceIDSeparatesTemplates(t *testing.T) {
	in := mkRecords(3, 1000)
	expA := NewExporter(1)
	msgsA, _ := expA.Export(in, 30)
	col := NewCollector()
	if _, err := col.Feed(msgsA[0]); err != nil {
		t.Fatal(err)
	}
	// A data-only message from a different source must be dropped even
	// though the template ID matches.
	expB := NewExporter(2)
	expB.TemplateEvery = 0
	_, _ = expB.Export(in, 30) // first message has template; skip it
	msgsB2, _ := expB.Export(in, 30)
	recs, err := col.Feed(msgsB2[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || col.Dropped.Load() != 1 {
		t.Fatalf("cross-source template leak: %d records, dropped %d", len(recs), col.Dropped.Load())
	}
}

func TestGapDetection(t *testing.T) {
	exp := NewExporter(9)
	exp.TemplateEvery = 1
	m1, _ := exp.Export(mkRecords(5, 100), 30)
	m2, _ := exp.Export(mkRecords(5, 100), 30)
	m3, _ := exp.Export(mkRecords(5, 100), 30)
	col := NewCollector()
	if _, err := col.Feed(m1[0]); err != nil {
		t.Fatal(err)
	}
	// Skip m2: collector should flag a gap on m3.
	_ = m2
	if _, err := col.Feed(m3[0]); err != nil {
		t.Fatal(err)
	}
	if col.Gaps.Load() != 1 {
		t.Fatalf("Gaps = %d, want 1", col.Gaps.Load())
	}
}

func TestNoGapOnLosslessStream(t *testing.T) {
	exp := NewExporter(3)
	exp.TemplateEvery = 2 // messages 0, 2, 4, … carry the template
	col := NewCollector()
	for i := 0; i < 6; i++ {
		msgs, err := exp.Export(mkRecords(5, 100), 30)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := col.Feed(msgs[0]); err != nil {
			t.Fatal(err)
		}
	}
	if col.Gaps.Load() != 0 {
		t.Fatalf("Gaps = %d on a lossless stream", col.Gaps.Load())
	}
}

func TestSequencePerSource(t *testing.T) {
	// Interleaved sources each track their own sequence; neither sees a
	// gap from the other's numbering.
	expA, expB := NewExporter(1), NewExporter(2)
	expA.TemplateEvery, expB.TemplateEvery = 1, 1
	col := NewCollector()
	for i := 0; i < 4; i++ {
		mA, _ := expA.Export(mkRecords(3, 100), 30)
		mB, _ := expB.Export(mkRecords(3, 100), 30)
		for _, m := range [][]byte{mA[0], mB[0]} {
			if _, err := col.Feed(m); err != nil {
				t.Fatal(err)
			}
		}
	}
	if col.Gaps.Load() != 0 {
		t.Fatalf("Gaps = %d across interleaved sources", col.Gaps.Load())
	}
}

// TestSequenceReanchorsAfterUntemplatedData mirrors the IPFIX
// collector's contract: a data FlowSet dropped for lack of a template
// invalidates sequence tracking (template desync usually means an
// exporter restart, which also resets the sequence counter), and the
// next clean message re-anchors instead of reporting phantom gaps.
func TestSequenceReanchorsAfterUntemplatedData(t *testing.T) {
	exp := NewExporter(5)
	exp.TemplateEvery = 0 // template only in the first message
	templated, _ := exp.Export(mkRecords(4, 100), 30)
	dataOnly1, _ := exp.Export(mkRecords(4, 100), 30)
	dataOnly2, _ := exp.Export(mkRecords(4, 100), 30)

	// A fresh collector never saw the template: the data-only message
	// must not anchor sequence tracking.
	col := NewCollector()
	if _, err := col.Feed(dataOnly1[0]); err != nil {
		t.Fatal(err)
	}
	if col.Dropped.Load() != 1 {
		t.Fatalf("Dropped = %d, want 1", col.Dropped.Load())
	}
	// Replay from the start: seq goes 1 → 0, which would be a gap if
	// the dropped message had anchored, but tracking was invalidated.
	if _, err := col.Feed(templated[0]); err != nil {
		t.Fatal(err)
	}
	if col.Gaps.Load() != 0 {
		t.Fatalf("Gaps = %d after re-anchor, want 0", col.Gaps.Load())
	}
	// From the re-anchored clean message, real gaps are seen again.
	if _, err := col.Feed(dataOnly2[0]); err != nil { // seq 2, want 1
		t.Fatal(err)
	}
	if col.Gaps.Load() != 1 {
		t.Fatalf("Gaps = %d after genuine loss, want 1", col.Gaps.Load())
	}
}

// TestNoPhantomGapOnExporterRestart: an anchored source whose exporter
// restarts (sequence reset) and whose first post-restart message
// carries a data set the collector has no template for must not count
// a gap — the message's continuation is untrusted, so gap accounting
// re-anchors instead.
func TestNoPhantomGapOnExporterRestart(t *testing.T) {
	exp := NewExporter(5)
	exp.TemplateEvery = 0
	m1, _ := exp.Export(mkRecords(3, 100), 30) // templated, seq 0
	m2, _ := exp.Export(mkRecords(3, 100), 30) // data-only, seq 1
	col := NewCollector()
	for _, m := range [][]byte{m1[0], m2[0]} {
		if _, err := col.Feed(m); err != nil {
			t.Fatal(err)
		}
	}
	if col.Gaps.Load() != 0 {
		t.Fatalf("Gaps = %d before restart", col.Gaps.Load())
	}
	// Restarted exporter: sequence back to 0, data set referencing a
	// template ID the collector has never seen.
	restart := append([]byte(nil), m2[0]...)
	binary.BigEndian.PutUint32(restart[12:16], 0)
	binary.BigEndian.PutUint16(restart[20:22], 999)
	if _, err := col.Feed(restart); err != nil {
		t.Fatal(err)
	}
	if col.Dropped.Load() != 1 {
		t.Fatalf("Dropped = %d, want 1", col.Dropped.Load())
	}
	if col.Gaps.Load() != 0 {
		t.Fatalf("phantom gap on exporter restart: Gaps = %d", col.Gaps.Load())
	}
}

func TestSequenceReanchorsAfterParseError(t *testing.T) {
	exp := NewExporter(8)
	exp.TemplateEvery = 1
	m1, _ := exp.Export(mkRecords(2, 0), 30)
	m2, _ := exp.Export(mkRecords(2, 0), 30)
	col := NewCollector()
	if _, err := col.Feed(m1[0]); err != nil {
		t.Fatal(err)
	}
	// Corrupt m2's first flowset length so parsing errors mid-message.
	bad := append([]byte(nil), m2[0]...)
	bad[22], bad[23] = 0xff, 0xff
	if _, err := col.Feed(bad); err == nil {
		t.Fatal("oversized flowset accepted")
	}
	// The error invalidated tracking: replaying m2 cleanly (seq 1,
	// which no longer has an anchor) reports no gap.
	gaps := col.Gaps.Load()
	if _, err := col.Feed(m2[0]); err != nil {
		t.Fatal(err)
	}
	if col.Gaps.Load() != gaps {
		t.Fatalf("Gaps advanced to %d after re-anchor", col.Gaps.Load())
	}
}

func TestRejectsWrongVersion(t *testing.T) {
	msg := make([]byte, 20)
	msg[1] = 5 // NetFlow v5
	if _, err := NewCollector().Feed(msg); err == nil {
		t.Fatal("v5 message accepted")
	}
}

func TestRejectsShort(t *testing.T) {
	if _, err := NewCollector().Feed(make([]byte, 10)); err == nil {
		t.Fatal("short message accepted")
	}
}

func TestRejectsNonIPv4Record(t *testing.T) {
	rec := flow.Record{
		Key: flow.Key{
			Src: netip.MustParseAddr("2001:db8::1"),
			Dst: netip.MustParseAddr("2001:db8::2"),
		},
		Packets: 1, Bytes: 60,
	}
	if _, err := NewExporter(1).Export([]flow.Record{rec}, 30); err == nil {
		t.Fatal("IPv6 record accepted by v9 IPv4 template")
	}
}

func TestTruncatedFlowSetLength(t *testing.T) {
	exp := NewExporter(1)
	msgs, _ := exp.Export(mkRecords(2, 0), 30)
	msg := msgs[0]
	// Corrupt the first flowset length to exceed the message.
	msg[22] = 0xff
	msg[23] = 0xff
	if _, err := NewCollector().Feed(msg); err == nil {
		t.Fatal("oversized flowset accepted")
	}
}

func TestMessagesAreFourByteAligned(t *testing.T) {
	f := func(n uint8) bool {
		cnt := int(n%40) + 1
		exp := NewExporter(1)
		msgs, err := exp.Export(mkRecords(cnt, 77), 30)
		if err != nil {
			return false
		}
		for _, m := range msgs {
			if len(m)%4 != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint8) bool {
		cnt := int(seed%50) + 1
		in := mkRecords(cnt, simtime.Hour(437000))
		exp := NewExporter(uint32(seed))
		msgs, err := exp.Export(in, 17)
		if err != nil {
			return false
		}
		col := NewCollector()
		var out []flow.Record
		for _, m := range msgs {
			recs, err := col.Feed(m)
			if err != nil {
				return false
			}
			out = append(out, recs...)
		}
		if len(out) != len(in) {
			return false
		}
		for i := range in {
			if out[i].Key != in[i].Key || out[i].Packets != in[i].Packets || out[i].Bytes != in[i].Bytes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkExport(b *testing.B) {
	recs := mkRecords(30, 1000)
	exp := NewExporter(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Export(recs, 30); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCollect(b *testing.B) {
	recs := mkRecords(30, 1000)
	exp := NewExporter(1)
	exp.TemplateEvery = 1
	msgs, _ := exp.Export(recs, 30)
	col := NewCollector()
	b.SetBytes(int64(len(msgs[0])))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := col.Feed(msgs[0]); err != nil {
			b.Fatal(err)
		}
	}
}

// TestFieldWalkSkipsUnknownFields pins parseData's guarded
// shrinking-view record walk with a hand-assembled v9 packet: the
// template interleaves a vendor field type this collector does not
// decode (999, odd length 3) between known fields, so the known fields
// only decode correctly if exactly the unknown bytes are skipped.
// Trailing FlowSet padding shorter than one record must be tolerated.
func TestFieldWalkSkipsUnknownFields(t *testing.T) {
	be16 := binary.BigEndian.AppendUint16
	be32 := binary.BigEndian.AppendUint32

	var msg []byte
	msg = be16(msg, Version)
	msg = be16(msg, 3)      // count: 1 template + 2 data records
	msg = be32(msg, 123456) // sysUptime
	msg = be32(msg, 7200)   // unix seconds → hour 2
	msg = be32(msg, 0)      // sequence
	msg = be32(msg, 9)      // source id

	// Template FlowSet: template 400, recLen = 4+3+2+4+1 = 14.
	msg = be16(msg, 0)
	msg = be16(msg, 4+4+5*4)
	msg = be16(msg, 400)
	msg = be16(msg, 5)
	for _, f := range [][2]uint16{
		{FieldIPv4SrcAddr, 4},
		{999, 3},
		{FieldL4SrcPort, 2},
		{FieldInPkts, 4},
		{FieldProtocol, 1},
	} {
		msg = be16(msg, f[0])
		msg = be16(msg, f[1])
	}

	// Data FlowSet: two 14-byte records plus 2 bytes of padding.
	msg = be16(msg, 400)
	msg = be16(msg, 4+2*14+2)
	msg = append(msg, 10, 0, 0, 1)      // source address
	msg = append(msg, 0xAA, 0xBB, 0xCC) // field 999: must be skipped
	msg = be16(msg, 4242)               // source port
	msg = be32(msg, 9)                  // packets
	msg = append(msg, byte(flow.ProtoTCP))
	msg = append(msg, 10, 0, 0, 2)
	msg = append(msg, 0, 0, 0)
	msg = be16(msg, 4243)
	msg = be32(msg, 2)
	msg = append(msg, byte(flow.ProtoUDP))
	msg = append(msg, 0, 0) // FlowSet padding

	col := NewCollector()
	out, err := col.Feed(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("decoded %d records, want 2", len(out))
	}
	want := []struct {
		src     netip.Addr
		port    uint16
		packets uint64
		proto   flow.Proto
	}{
		{netip.AddrFrom4([4]byte{10, 0, 0, 1}), 4242, 9, flow.ProtoTCP},
		{netip.AddrFrom4([4]byte{10, 0, 0, 2}), 4243, 2, flow.ProtoUDP},
	}
	for i, w := range want {
		r := out[i]
		if r.Key.Src != w.src || r.Key.SrcPort != w.port ||
			r.Packets != w.packets || r.Key.Proto != w.proto {
			t.Errorf("record %d: got %+v, want src=%v port=%d packets=%d proto=%d",
				i, r, w.src, w.port, w.packets, w.proto)
		}
		if r.Hour != 2 {
			t.Errorf("record %d: hour %d, want 2", i, r.Hour)
		}
		if r.Key.Dst.IsValid() || r.Key.DstPort != 0 || r.Bytes != 0 {
			t.Errorf("record %d: untemplated fields populated: %+v", i, r)
		}
	}
	if col.Dropped.Load() != 0 || col.Gaps.Load() != 0 {
		t.Fatalf("Dropped=%d Gaps=%d, want 0, 0", col.Dropped.Load(), col.Gaps.Load())
	}
}
