package netflow

import (
	"reflect"
	"testing"

	"repro/internal/flow"
)

// FeedInto is the hot decode entry point; Feed is its compatibility
// wrapper. These tests pin the contract between them: identical wire
// bytes produce identical records, counters move identically, and the
// arena path stays allocation-free once warmed.

// AppendMessage is Export with a caller-owned buffer: the same wire
// bytes, one message per call, no per-message allocation.
func TestAppendMessageMatchesExport(t *testing.T) {
	recs := mkRecords(95, 1000)

	expA := NewExporter(7)
	msgs, err := expA.Export(recs, 30)
	if err != nil {
		t.Fatal(err)
	}

	expB := NewExporter(7)
	var buf []byte
	for i, want := range msgs {
		buf = buf[:0]
		var n int
		buf, n, err = expB.AppendMessage(buf, recs, 30)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 || n > len(recs) {
			t.Fatalf("msg %d: consumed %d of %d records", i, n, len(recs))
		}
		recs = recs[n:]
		if !reflect.DeepEqual(buf, want) {
			t.Fatalf("msg %d: AppendMessage bytes diverge from Export", i)
		}
	}
	if len(recs) != 0 {
		t.Fatalf("%d records left unconsumed", len(recs))
	}
}

func TestFeedIntoMatchesFeed(t *testing.T) {
	exp := NewExporter(7)
	exp.TemplateEvery = 1 // every message re-announces the template
	recs := mkRecords(95, 1000)
	msgs, err := exp.Export(recs, 30)
	if err != nil {
		t.Fatal(err)
	}

	colA := NewCollector() // record path
	colB := NewCollector() // batch path, one arena reused throughout
	var b flow.Batch
	for i, m := range msgs {
		want, errA := colA.Feed(m)
		b.Reset()
		errB := colB.FeedInto(m, &b)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("msg %d: Feed err=%v, FeedInto err=%v", i, errA, errB)
		}
		if !reflect.DeepEqual(want, b.Records()) && !(len(want) == 0 && b.Len() == 0) {
			t.Fatalf("msg %d: Feed and FeedInto decoded different records", i)
		}
	}
	if g, w := colB.Gaps.Load(), colA.Gaps.Load(); g != w {
		t.Fatalf("gap counters diverged: batch %d, record %d", g, w)
	}
	if g, w := colB.Dropped.Load(), colA.Dropped.Load(); g != w {
		t.Fatalf("dropped counters diverged: batch %d, record %d", g, w)
	}
}

func TestFeedIntoAccumulates(t *testing.T) {
	exp := NewExporter(7)
	exp.TemplateEvery = 1
	msgs, err := exp.Export(mkRecords(60, 1000), 30)
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector()
	var b flow.Batch
	for _, m := range msgs {
		if err := col.FeedInto(m, &b); err != nil {
			t.Fatal(err)
		}
	}
	if b.Len() != 60 {
		t.Fatalf("accumulated %d records across %d messages, want 60", b.Len(), len(msgs))
	}
	if got := col.Gaps.Load(); got != 0 {
		t.Fatalf("gaps = %d on an in-order stream, want 0", got)
	}
}

func TestFeedIntoZeroAllocs(t *testing.T) {
	exp := NewExporter(7)
	exp.TemplateEvery = 1 // the hard case: template set in every message
	msgs, err := exp.Export(mkRecords(30, 1000), 30)
	if err != nil {
		t.Fatal(err)
	}
	msg := msgs[0]
	col := NewCollector()
	b := flow.NewBatch(64)
	if err := col.FeedInto(msg, b); err != nil { // warm template cache + arena
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		b.Reset()
		if err := col.FeedInto(msg, b); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state FeedInto allocates %v allocs/run, want 0", allocs)
	}
}
