// Package netflow implements the subset of Cisco NetFlow v9 (RFC 3954)
// used by the ISP vantage point: template FlowSets, data FlowSets, and a
// collector with a per-exporter template cache.
//
// The exporter emits the paper's observable fields only — no payload is
// representable at all in this format, which is precisely why the
// methodology must work from (addresses, ports, protocol, counters).
package netflow

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"sync/atomic"

	"repro/internal/flow"
	"repro/internal/simtime"
)

// Version is the NetFlow export format version implemented here.
const Version = 9

// IANA field types (shared numbering with IPFIX information elements).
const (
	FieldInBytes          = 1
	FieldInPkts           = 2
	FieldProtocol         = 4
	FieldTCPFlags         = 6
	FieldL4SrcPort        = 7
	FieldIPv4SrcAddr      = 8
	FieldL4DstPort        = 11
	FieldIPv4DstAddr      = 12
	FieldLastSwitched     = 21
	FieldFirstSwitched    = 22
	FieldSamplingInterval = 34
)

// FieldSpec is one (type, length) pair in a template.
type FieldSpec struct {
	Type   uint16
	Length uint16
}

// Template describes the layout of data records in a data FlowSet.
type Template struct {
	ID     uint16 // >= 256
	Fields []FieldSpec
}

// RecordLen returns the encoded size of one data record.
func (t Template) RecordLen() int {
	n := 0
	for _, f := range t.Fields {
		n += int(f.Length)
	}
	return n
}

// FlowTemplate is the canonical template used by the simulated ISP's
// border routers.
var FlowTemplate = Template{
	ID: 256,
	Fields: []FieldSpec{
		{FieldIPv4SrcAddr, 4},
		{FieldIPv4DstAddr, 4},
		{FieldL4SrcPort, 2},
		{FieldL4DstPort, 2},
		{FieldProtocol, 1},
		{FieldTCPFlags, 1},
		{FieldInPkts, 4},
		{FieldInBytes, 4},
		{FieldFirstSwitched, 4},
		{FieldLastSwitched, 4},
	},
}

const headerLen = 20

// Exporter packages flow records into NetFlow v9 messages. Not safe for
// concurrent use.
type Exporter struct {
	SourceID uint32
	// TemplateEvery controls template refresh: a template FlowSet is
	// included in the first message and then every TemplateEvery-th
	// message (RFC 3954 §9 requires periodic resends over UDP).
	TemplateEvery int

	seq      uint32
	messages int
}

// NewExporter returns an exporter for one observation point.
func NewExporter(sourceID uint32) *Exporter {
	return &Exporter{SourceID: sourceID, TemplateEvery: 20}
}

// Export encodes records into one or more messages of at most
// maxRecords data records each. Each message is its own allocation;
// send paths that reuse one buffer should drive AppendMessage instead.
func (e *Exporter) Export(records []flow.Record, maxRecords int) ([][]byte, error) {
	if maxRecords <= 0 {
		maxRecords = 30
	}
	var msgs [][]byte
	for len(records) > 0 {
		n := min(maxRecords, len(records))
		msg, err := e.encodeMessage(records[:n])
		if err != nil {
			return nil, err
		}
		msgs = append(msgs, msg)
		records = records[n:]
	}
	return msgs, nil
}

// AppendMessage encodes the next message — at most maxRecords of
// records — into buf's spare capacity and returns the extended buffer
// plus how many records it consumed. Callers loop, slicing consumed
// records off and resetting buf to buf[:0] between messages, so a
// sustained send path reuses one encode buffer instead of allocating
// per message (Export's behavior). On error buf is returned unchanged.
func (e *Exporter) AppendMessage(buf []byte, records []flow.Record, maxRecords int) ([]byte, int, error) {
	if maxRecords <= 0 {
		maxRecords = 30
	}
	n := min(maxRecords, len(records))
	out, err := e.appendMessage(buf, records[:n])
	if err != nil {
		return buf, 0, err
	}
	return out, n, nil
}

func (e *Exporter) encodeMessage(records []flow.Record) ([]byte, error) {
	count := len(records) + 1 // reserve for a template record
	return e.appendMessage(make([]byte, 0, headerLen+count*(FlowTemplate.RecordLen()+8)), records)
}

func (e *Exporter) appendMessage(buf []byte, records []flow.Record) ([]byte, error) {
	withTemplate := e.messages == 0 || (e.TemplateEvery > 0 && e.messages%e.TemplateEvery == 0)
	e.messages++

	// All records in one export share the hour of the first record via
	// the header's UnixSecs; the simulator flushes tables hourly.
	var unixSecs uint32
	if len(records) > 0 {
		unixSecs = uint32(records[0].Hour.Time().Unix())
	}

	count := len(records)
	if withTemplate {
		count++ // template records count toward the header count
	}

	buf = binary.BigEndian.AppendUint16(buf, Version)
	buf = binary.BigEndian.AppendUint16(buf, uint16(count))
	buf = binary.BigEndian.AppendUint32(buf, 3_600_000) // SysUptime: end of the hour bin
	buf = binary.BigEndian.AppendUint32(buf, unixSecs)
	buf = binary.BigEndian.AppendUint32(buf, e.seq)
	buf = binary.BigEndian.AppendUint32(buf, e.SourceID)
	e.seq++

	if withTemplate {
		buf = appendTemplateFlowSet(buf, FlowTemplate)
	}
	var err error
	buf, err = appendDataFlowSet(buf, FlowTemplate, records)
	if err != nil {
		return nil, err
	}
	return buf, nil
}

func appendTemplateFlowSet(buf []byte, t Template) []byte {
	body := 4 + 4 + len(t.Fields)*4             // set header + template header + fields
	buf = binary.BigEndian.AppendUint16(buf, 0) // FlowSet ID 0 = template
	buf = binary.BigEndian.AppendUint16(buf, uint16(body))
	buf = binary.BigEndian.AppendUint16(buf, t.ID)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(t.Fields)))
	for _, f := range t.Fields {
		buf = binary.BigEndian.AppendUint16(buf, f.Type)
		buf = binary.BigEndian.AppendUint16(buf, f.Length)
	}
	return buf
}

func appendDataFlowSet(buf []byte, t Template, records []flow.Record) ([]byte, error) {
	recLen := t.RecordLen()
	body := 4 + recLen*len(records)
	pad := (4 - body%4) % 4
	buf = binary.BigEndian.AppendUint16(buf, t.ID)
	buf = binary.BigEndian.AppendUint16(buf, uint16(body+pad))
	for i := range records {
		var err error
		buf, err = appendRecord(buf, &records[i])
		if err != nil {
			return nil, err
		}
	}
	for i := 0; i < pad; i++ {
		buf = append(buf, 0)
	}
	return buf, nil
}

func appendRecord(buf []byte, r *flow.Record) ([]byte, error) {
	if !r.Key.Src.Is4() || !r.Key.Dst.Is4() {
		return nil, fmt.Errorf("netflow: record %v is not IPv4", r.Key)
	}
	src, dst := r.Key.Src.As4(), r.Key.Dst.As4()
	buf = append(buf, src[:]...)
	buf = append(buf, dst[:]...)
	buf = binary.BigEndian.AppendUint16(buf, r.Key.SrcPort)
	buf = binary.BigEndian.AppendUint16(buf, r.Key.DstPort)
	buf = append(buf, uint8(r.Key.Proto), r.TCPFlags)
	buf = binary.BigEndian.AppendUint32(buf, uint32(min(r.Packets, 0xffffffff)))
	buf = binary.BigEndian.AppendUint32(buf, uint32(min(r.Bytes, 0xffffffff)))
	buf = binary.BigEndian.AppendUint32(buf, 0)         // FirstSwitched (uptime ms at hour start)
	buf = binary.BigEndian.AppendUint32(buf, 3_599_999) // LastSwitched
	return buf, nil
}

// Collector parses NetFlow v9 messages, maintaining a template cache
// per (source ID, template ID). Feed is not safe for concurrent use,
// but the Dropped and Gaps counters are atomics so a metrics reader
// may load them while another goroutine drives Feed.
type Collector struct {
	templates map[uint64]Template
	// Dropped counts data FlowSets skipped because their template has
	// not been seen yet (possible over UDP; RFC 3954 §10).
	Dropped atomic.Uint64
	// Per-source sequence tracking. Unlike IPFIX, the v9 sequence
	// number counts export packets (RFC 3954 §5.1), so the expected
	// continuation is simply seq+1.
	lastSeq map[uint32]uint32
	// Gaps counts messages whose sequence number did not match the
	// expected continuation (lost or reordered transport).
	Gaps atomic.Uint64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		templates: make(map[uint64]Template),
		lastSeq:   make(map[uint32]uint32),
	}
}

// Errors returned by the collector.
var (
	ErrShortMessage = errors.New("netflow: short message")
	ErrBadVersion   = errors.New("netflow: unexpected version")
)

// Feed parses one message and returns the decoded flow records. It is
// a thin compatibility wrapper over FeedInto: it decodes into a fresh
// arena and returns the backing slice, allocating per call. Hot
// callers should hold a reusable flow.Batch and call FeedInto.
func (c *Collector) Feed(msg []byte) ([]flow.Record, error) {
	var b flow.Batch
	err := c.FeedInto(msg, &b)
	return b.Records(), err
}

// FeedInto parses one message, appending every decoded record to b.
// The batch's prior contents are preserved, and records decoded
// before a mid-message error remain appended — callers that need
// all-or-nothing semantics can Truncate back to the pre-call length.
// With a warmed batch and a stable template, FeedInto performs zero
// steady-state allocations per message.
//
// haystack:hotpath — runs once per datagram; error construction lives
// in outlined cold helpers.
func (c *Collector) FeedInto(msg []byte, b *flow.Batch) error {
	if len(msg) < headerLen {
		return ErrShortMessage
	}
	if v := binary.BigEndian.Uint16(msg[0:2]); v != Version {
		return errBadVersion(v)
	}
	unixSecs := binary.BigEndian.Uint32(msg[8:12])
	seq := binary.BigEndian.Uint32(msg[12:16])
	sourceID := binary.BigEndian.Uint32(msg[16:20])
	hour := simtime.Hour(int64(unixSecs) / 3600)

	want, anchored := c.lastSeq[sourceID]

	// The next expected sequence number is seq+1 (v9 counts export
	// packets, not records). Both the gap comparison and the next
	// anchor are only trusted when the whole message decodes cleanly:
	// an untemplated or partial data FlowSet means we have lost
	// template sync with the exporter — typically an exporter restart,
	// which also resets its sequence counter — and a message that
	// errors mid-parse is equally suspect. Counting those as ordinary
	// gaps would report phantom loss and desynchronize accounting for
	// the rest of the stream, so, exactly like internal/ipfix,
	// sequence tracking is instead invalidated and re-anchored by the
	// next clean message (gap accounting included).
	counted := true
	rest := msg[headerLen:]
	for len(rest) >= 4 {
		setID := binary.BigEndian.Uint16(rest[0:2])
		setLen := int(binary.BigEndian.Uint16(rest[2:4]))
		if setLen < 4 || setLen > len(rest) {
			delete(c.lastSeq, sourceID)
			return errSetOverrun(setLen, len(rest))
		}
		body := rest[4:setLen]
		switch {
		case setID == 0:
			if err := c.parseTemplates(sourceID, body); err != nil {
				delete(c.lastSeq, sourceID)
				return err
			}
		case setID >= 256:
			ok, err := c.parseDataInto(sourceID, setID, body, hour, b)
			if err != nil {
				delete(c.lastSeq, sourceID)
				return err
			}
			if !ok {
				counted = false
			}
		}
		rest = rest[setLen:]
	}
	if counted {
		if anchored && seq != want {
			c.Gaps.Add(1)
		}
		c.lastSeq[sourceID] = seq + 1
	} else {
		delete(c.lastSeq, sourceID)
	}
	return nil
}

func (c *Collector) parseTemplates(sourceID uint32, body []byte) error {
	for len(body) >= 4 {
		id := binary.BigEndian.Uint16(body[0:2])
		n := int(binary.BigEndian.Uint16(body[2:4]))
		body = body[4:]
		if len(body) < n*4 {
			return fmt.Errorf("netflow: truncated template %d", id)
		}
		// RFC 3954 §9 exporters re-announce templates periodically over
		// UDP; skip the allocation when the announcement matches the
		// cached layout, so steady-state decode stays allocation-free.
		key := templateKey(sourceID, id)
		if cached, ok := c.templates[key]; ok && templateEqual(cached, body[:n*4]) {
			body = body[n*4:]
			continue
		}
		t := Template{ID: id, Fields: make([]FieldSpec, n)}
		for i := 0; i < n; i++ {
			t.Fields[i] = FieldSpec{
				Type:   binary.BigEndian.Uint16(body[i*4:]),
				Length: binary.BigEndian.Uint16(body[i*4+2:]),
			}
		}
		body = body[n*4:]
		c.templates[key] = t
	}
	return nil
}

// templateEqual reports whether the cached template matches a wire
// announcement (spec holds the (type, length) pairs, 4 bytes each).
//
// haystack:hotpath — runs once per re-announced template.
func templateEqual(t Template, spec []byte) bool {
	if len(t.Fields)*4 != len(spec) {
		return false
	}
	// Shrinking-view walk, like the data-record decoder: every read is
	// against the guarded front of spec.
	for i := range t.Fields {
		if len(spec) < 4 {
			return false
		}
		if t.Fields[i].Type != binary.BigEndian.Uint16(spec) ||
			t.Fields[i].Length != binary.BigEndian.Uint16(spec[2:]) {
			return false
		}
		spec = spec[4:]
	}
	return true
}

func templateKey(sourceID uint32, templateID uint16) uint64 {
	return uint64(sourceID)<<16 | uint64(templateID)
}

// parseDataInto decodes one data FlowSet into the caller's arena. The
// boolean reports whether the set decoded fully (false when the
// template is missing, which leaves the stream's sequence
// continuation untrusted).
//
// haystack:hotpath — runs once per data FlowSet.
func (c *Collector) parseDataInto(sourceID uint32, setID uint16, body []byte, hour simtime.Hour, b *flow.Batch) (bool, error) {
	t, ok := c.templates[templateKey(sourceID, setID)]
	if !ok {
		c.Dropped.Add(1)
		return false, nil
	}
	recLen := t.RecordLen()
	if recLen == 0 {
		return false, errZeroLenTemplate(setID)
	}
	for len(body) >= recLen {
		rec := b.Append()
		rec.Hour = hour
		// Walk the record by slicing the front off a view of it, so
		// every access is guarded by the view's remaining length —
		// sum(field lengths) == recLen makes the guard dead code, but
		// the decoder stays safe (and provably in bounds) even if a
		// template ever lied.
		fields := body[:recLen]
		for _, f := range t.Fields {
			n := int(f.Length)
			if n > len(fields) {
				break
			}
			decodeField(rec, f, fields[:n])
			fields = fields[n:]
		}
		body = body[recLen:]
	}
	// Remaining bytes < recLen are padding.
	return true, nil
}

// Cold-path error constructors, outlined so the haystack:hotpath
// decode functions above stay fmt-free. Each fires at most once per
// malformed message, never per record.
func errBadVersion(v uint16) error { return fmt.Errorf("%w: %d", ErrBadVersion, v) }

func errSetOverrun(setLen, remaining int) error {
	return fmt.Errorf("netflow: flowset length %d exceeds remaining %d", setLen, remaining)
}

func errZeroLenTemplate(setID uint16) error {
	return fmt.Errorf("netflow: template %d has zero-length records", setID)
}

// decodeField copies one template field into rec.
//
// haystack:hotpath — runs once per field per record.
func decodeField(rec *flow.Record, f FieldSpec, b []byte) {
	switch f.Type {
	case FieldIPv4SrcAddr:
		if len(b) == 4 {
			rec.Key.Src = netip.AddrFrom4([4]byte(b))
		}
	case FieldIPv4DstAddr:
		if len(b) == 4 {
			rec.Key.Dst = netip.AddrFrom4([4]byte(b))
		}
	case FieldL4SrcPort:
		rec.Key.SrcPort = uint16(beUint(b))
	case FieldL4DstPort:
		rec.Key.DstPort = uint16(beUint(b))
	case FieldProtocol:
		rec.Key.Proto = flow.Proto(beUint(b))
	case FieldTCPFlags:
		rec.TCPFlags = uint8(beUint(b))
	case FieldInPkts:
		rec.Packets = beUint(b)
	case FieldInBytes:
		rec.Bytes = beUint(b)
	}
}

// beUint decodes a big-endian unsigned integer of 1–8 bytes.
// beUint decodes a big-endian unsigned integer of any width.
//
// haystack:hotpath — runs several times per record.
func beUint(b []byte) uint64 {
	var v uint64
	for _, x := range b {
		v = v<<8 | uint64(x)
	}
	return v
}
