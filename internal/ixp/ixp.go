// Package ixp models the wild IXP of §6.3: hundreds of member ASes —
// a few large eyeballs and a long tail — whose customers' IoT traffic
// crosses the switching fabric subject to routing asymmetry, spoofing
// (countered by the established-TCP requirement), and IPFIX sampling an
// order of magnitude sparser than the ISP's.
//
// Detection at the IXP is keyed by client IP address, not subscriber
// line: the IXP is in the middle of the network and has no subscriber
// notion.
package ixp

import (
	"net/netip"

	"repro/internal/catalog"
	"repro/internal/detect"
	"repro/internal/isp"
	"repro/internal/sampling"
	"repro/internal/simrand"
	"repro/internal/simtime"
)

// Member is one IXP member AS.
type Member struct {
	ASN uint32
	// Clients is the number of broadband lines whose traffic can
	// appear behind this member.
	Clients int
	// Visibility is the fraction of the member's client traffic that
	// actually crosses the IXP fabric (routing asymmetry and partial
	// transit make this < 1).
	Visibility float64
	// Eyeball marks large residential access networks.
	Eyeball bool
}

// Config sizes the IXP model.
type Config struct {
	// Members is the number of member ASes (the paper's IXP has >800).
	Members int
	// TotalClients is the total client-line count across members
	// (already scaled like the ISP population).
	TotalClients int
	// Scale multiplies simulated counts up to the real fabric size.
	Scale int
	// EyeballCount is the number of large residential members; member
	// sizes follow a Zipf law so these hold most clients.
	EyeballCount int
	// Skew is the Zipf exponent of the member-size distribution.
	Skew float64
	// SamplingRate is the IPFIX sampling denominator.
	SamplingRate uint64
	// AdopterFraction / UsageProbEvening mirror the ISP model.
	AdopterFraction float64
}

// DefaultConfig returns the 1:100-scale IXP calibration.
func DefaultConfig() Config {
	return Config{
		Members:         800,
		TotalClients:    60_000,
		Scale:           40,
		EyeballCount:    12,
		Skew:            1.45,
		SamplingRate:    sampling.RateIXP,
		AdopterFraction: 0.22,
	}
}

// Fabric is the assembled IXP: members plus a device population across
// their clients.
type Fabric struct {
	Cfg     Config
	Members []Member
	pop     *isp.Population
	// lineAS maps a population line to its member index.
	lineAS []int32
	rng    *simrand.RNG
}

// New builds the fabric. Member sizes are Zipf-distributed; the first
// EyeballCount members are eyeballs with high visibility, the rest
// non-eyeball networks with lower visibility.
func New(rng *simrand.RNG, cat *catalog.Catalog, cfg Config, window simtime.Window) *Fabric {
	r := rng.Fork("ixp")
	f := &Fabric{Cfg: cfg, rng: r}

	z := simrand.NewZipf(cfg.Members, cfg.Skew)
	sizes := make([]int, cfg.Members)
	for i := range sizes {
		sizes[i] = int(z.Weight(i) * float64(cfg.TotalClients))
	}
	for i, n := range sizes {
		m := Member{
			ASN:     uint32(65000 + i),
			Clients: n,
			Eyeball: i < cfg.EyeballCount,
		}
		if m.Eyeball {
			m.Visibility = 0.55 + 0.4*r.Float64()
		} else {
			m.Visibility = 0.15 + 0.5*r.Float64()
		}
		f.Members = append(f.Members, m)
	}

	total := 0
	for _, m := range f.Members {
		total += m.Clients
	}
	popCfg := isp.Config{
		Lines:            total,
		Scale:            100,
		AdopterFraction:  cfg.AdopterFraction,
		IdentifierChurn:  0, // keyed by IP, not tracked across renumbering
		SamplingRate:     cfg.SamplingRate,
		UsageProbEvening: 0.03,
	}
	f.pop = isp.NewPopulation(rng, cat, popCfg, window)

	f.lineAS = make([]int32, total)
	line := 0
	for mi, m := range f.Members {
		for j := 0; j < m.Clients; j++ {
			f.lineAS[line] = int32(mi)
			line++
		}
	}
	return f
}

// Population exposes the underlying device placement.
func (f *Fabric) Population() *isp.Population { return f.pop }

// MemberOf returns the member index of a line.
func (f *Fabric) MemberOf(line int32) int32 { return f.lineAS[line] }

// ClientIP returns the stable client address of a line: one address
// per line inside its member's address space.
func (f *Fabric) ClientIP(line int32) netip.Addr {
	mi := f.lineAS[line]
	return netip.AddrFrom4([4]byte{
		byte(30 + mi>>8), byte(mi), byte(line >> 8), byte(line),
	})
}

// Observation is one IPFIX-sampled record attributed to a client IP.
type Observation struct {
	Member int32
	Client netip.Addr
	Hour   simtime.Hour
	IP     netip.Addr
	Port   uint16
	Pkts   uint64
}

// SimulateHour emits the hour's sampled observations as seen on the
// fabric. Routing-asymmetry thinning applies on top of the IPFIX
// sampling already performed by the population (thinned Poisson
// composes), and the established-TCP requirement of §6.3 discards
// sampled TCP flows whose sampled packets could all be handshake
// packets.
func (f *Fabric) SimulateHour(h simtime.Hour, r isp.Resolver, emit func(Observation)) {
	f.pop.SimulateHour(h, r, func(line int32, _ detect.SubID, hh simtime.Hour, ip netip.Addr, port uint16, pkts uint64) {
		mi := f.lineAS[line]
		m := &f.Members[mi]
		seen := uint64(f.rng.Binomial(int(pkts), m.Visibility))
		if seen == 0 {
			return
		}
		// All catalog services are TCP except NTP (123/udp); the
		// established filter applies to TCP only.
		if port != 123 {
			if f.rng.Binomial(int(seen), 0.9) == 0 {
				return
			}
		}
		emit(Observation{
			Member: mi, Client: f.ClientIP(line), Hour: hh,
			IP: ip, Port: port, Pkts: seen,
		})
	})
}

// SimulateWindow runs SimulateHour across a window.
func (f *Fabric) SimulateWindow(w simtime.Window, resolve func(simtime.Day) isp.Resolver, emit func(Observation)) {
	w.Each(func(h simtime.Hour) {
		f.SimulateHour(h, resolve(h.Day()), emit)
	})
}
