package ixp

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/simrand"
	"repro/internal/simtime"
	"repro/internal/world"
)

func smallCfg() Config {
	cfg := DefaultConfig()
	cfg.TotalClients = 20_000
	cfg.Members = 200
	cfg.EyeballCount = 8
	return cfg
}

func TestMemberSizesSkewed(t *testing.T) {
	cat := catalog.Build()
	f := New(simrand.New(1), cat, smallCfg(), simtime.WildWindow)
	if len(f.Members) != 200 {
		t.Fatalf("members = %d", len(f.Members))
	}
	eyeballClients, total := 0, 0
	for _, m := range f.Members {
		total += m.Clients
		if m.Eyeball {
			eyeballClients += m.Clients
		}
	}
	if total == 0 {
		t.Fatal("no clients")
	}
	frac := float64(eyeballClients) / float64(total)
	if frac < 0.5 {
		t.Fatalf("eyeballs hold only %v of clients; want a skewed fabric", frac)
	}
}

func TestEyeballsMoreVisible(t *testing.T) {
	cat := catalog.Build()
	f := New(simrand.New(2), cat, smallCfg(), simtime.WildWindow)
	var eSum, nSum float64
	var eN, nN int
	for _, m := range f.Members {
		if m.Eyeball {
			eSum += m.Visibility
			eN++
		} else {
			nSum += m.Visibility
			nN++
		}
	}
	if eSum/float64(eN) <= nSum/float64(nN) {
		t.Fatal("eyeball visibility not above non-eyeball average")
	}
}

func TestClientIPStableAndScoped(t *testing.T) {
	cat := catalog.Build()
	f := New(simrand.New(3), cat, smallCfg(), simtime.WildWindow)
	a := f.ClientIP(100)
	b := f.ClientIP(100)
	if a != b {
		t.Fatal("client IP not stable")
	}
	if f.ClientIP(101) == a {
		t.Fatal("client IP collision")
	}
}

func TestSimulateHourSparserThanISP(t *testing.T) {
	w := world.MustBuild(1)
	f := New(simrand.New(4), w.Catalog, smallCfg(), w.Window)
	h := w.Window.Start + 19
	r := w.ResolverOn(h.Day())
	obs := 0
	f.SimulateHour(h, r, func(o Observation) {
		obs++
		if o.Pkts == 0 {
			t.Fatal("zero-packet observation")
		}
		if int(o.Member) >= len(f.Members) {
			t.Fatal("bad member index")
		}
	})
	// 20k lines at 1:10240 with visibility thinning: sparse but not
	// empty over an evening hour.
	if obs == 0 {
		t.Fatal("IXP fabric saw nothing")
	}
	if obs > 20000 {
		t.Fatalf("IXP fabric saw %d observations; sampling looks broken", obs)
	}
}

func TestObservationsConcentrateOnEyeballs(t *testing.T) {
	w := world.MustBuild(1)
	f := New(simrand.New(5), w.Catalog, smallCfg(), w.Window)
	counts := map[int32]int{}
	for d := 0; d < 2; d++ {
		h := w.Window.Start + simtime.Hour(19+24*d)
		f.SimulateHour(h, w.ResolverOn(h.Day()), func(o Observation) {
			counts[o.Member]++
		})
	}
	eyeball, rest := 0, 0
	for mi, n := range counts {
		if f.Members[mi].Eyeball {
			eyeball += n
		} else {
			rest += n
		}
	}
	if eyeball <= rest {
		t.Fatalf("eyeball observations %d not dominant over %d", eyeball, rest)
	}
}
