package pcap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/packet"
)

func mkFrame(t testing.TB, payload []byte) []byte {
	t.Helper()
	eth := &packet.Ethernet{}
	ip := &packet.IPv4{TTL: 64, Src: packet.MustAddr4("100.100.0.17"), Dst: packet.MustAddr4("185.3.0.1")}
	tcp := &packet.TCP{SrcPort: 40000, DstPort: 443, Flags: packet.TCPAck}
	frame, err := packet.Build(eth, ip, tcp, payload)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2019, 11, 15, 7, 30, 0, 123456000, time.UTC)
	frames := [][]byte{
		mkFrame(t, []byte("one")),
		mkFrame(t, []byte("twotwo")),
		mkFrame(t, nil),
	}
	for i, f := range frames {
		if err := w.WritePacket(Packet{Time: t0.Add(time.Duration(i) * time.Second), Data: f}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		p, err := r.Next()
		if errors.Is(err, io.EOF) {
			if i != len(frames) {
				t.Fatalf("read %d packets, want %d", i, len(frames))
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(p.Data, frames[i]) {
			t.Fatalf("packet %d differs", i)
		}
		if !p.Time.Equal(t0.Add(time.Duration(i) * time.Second)) {
			t.Fatalf("packet %d time %v", i, p.Time)
		}
		if p.Orig != len(frames[i]) {
			t.Fatalf("packet %d orig %d", i, p.Orig)
		}
		// Frames parse back through the packet layer.
		var parser packet.Parser
		if _, err := parser.Parse(p.Data, nil); err != nil {
			t.Fatalf("packet %d unparseable: %v", i, err)
		}
	}
}

func TestRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("this is not pcap at all!"))); !errors.Is(err, ErrNotPcap) {
		t.Fatalf("garbage accepted: %v", err)
	}
}

func TestRejectsNanosecond(t *testing.T) {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicNanos)
	if _, err := NewReader(bytes.NewReader(hdr[:])); !errors.Is(err, ErrNanosecond) {
		t.Fatalf("nanosecond magic accepted: %v", err)
	}
}

func TestRejectsWrongLinkType(t *testing.T) {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicMicros)
	binary.LittleEndian.PutUint32(hdr[16:20], MaxSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], 101) // raw IP
	if _, err := NewReader(bytes.NewReader(hdr[:])); !errors.Is(err, ErrWrongLink) {
		t.Fatalf("raw-IP link accepted: %v", err)
	}
}

func TestBigEndianHeaderAccepted(t *testing.T) {
	var buf bytes.Buffer
	var hdr [24]byte
	binary.BigEndian.PutUint32(hdr[0:4], magicMicros)
	binary.BigEndian.PutUint32(hdr[16:20], MaxSnapLen)
	binary.BigEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	buf.Write(hdr[:])
	var rec [16]byte
	binary.BigEndian.PutUint32(rec[0:4], 1573776000)
	binary.BigEndian.PutUint32(rec[8:12], 3)
	binary.BigEndian.PutUint32(rec[12:16], 3)
	buf.Write(rec[:])
	buf.Write([]byte{1, 2, 3})
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Next()
	if err != nil || len(p.Data) != 3 {
		t.Fatalf("big-endian record: %v %v", p, err)
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	_ = w.WritePacket(Packet{Time: time.Unix(0, 0), Data: mkFrame(t, []byte("x"))})
	_ = w.Flush()
	cut := buf.Bytes()[:buf.Len()-5]
	r, err := NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("truncated record read without error")
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	if err := w.WritePacket(Packet{Data: make([]byte, MaxSnapLen+1)}); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(payloads [][]byte) bool {
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		if len(payloads) > 20 {
			payloads = payloads[:20]
		}
		var want [][]byte
		for i, p := range payloads {
			if len(p) > 1400 {
				p = p[:1400]
			}
			frame := mkFrame(t, p)
			want = append(want, frame)
			if err := w.WritePacket(Packet{Time: time.Unix(int64(i), 0), Data: frame}); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		for i := 0; ; i++ {
			p, err := r.Next()
			if errors.Is(err, io.EOF) {
				return i == len(want)
			}
			if err != nil || !bytes.Equal(p.Data, want[i]) {
				return false
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
