// Package pcap reads and writes classic libpcap capture files
// (the tcpdump format). The Home-VP of the paper is a full packet
// capture; this package lets the simulated home vantage point persist
// its ground truth in a form any standard tool can open, and lets the
// examples replay captures through the packet parser.
//
// Only the classic format (magic 0xa1b2c3d4, microsecond timestamps,
// Ethernet link type) is implemented; nanosecond and pcapng files are
// rejected with a clear error.
package pcap

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Magic numbers (host-endian on write; both endians accepted on read).
const (
	magicMicros = 0xa1b2c3d4
	magicNanos  = 0xa1b23c4d
)

// LinkTypeEthernet is the only link type this package produces.
const LinkTypeEthernet = 1

// MaxSnapLen is the snapshot length written to file headers.
const MaxSnapLen = 65535

// Packet is one captured frame.
type Packet struct {
	// Time is the capture timestamp (microsecond resolution on disk).
	Time time.Time
	// Data is the frame starting at the Ethernet header. Len(Data) may
	// be smaller than Orig if the frame was snapped.
	Data []byte
	// Orig is the original wire length.
	Orig int
}

// Writer writes a pcap file. Create with NewWriter; Flush (or use a
// buffered sink you flush yourself) before closing the underlying file.
type Writer struct {
	w   *bufio.Writer
	buf [16]byte
}

// NewWriter writes the global header and returns a writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicMicros)
	binary.LittleEndian.PutUint16(hdr[4:6], 2) // version major
	binary.LittleEndian.PutUint16(hdr[6:8], 4) // version minor
	// thiszone, sigfigs = 0
	binary.LittleEndian.PutUint32(hdr[16:20], MaxSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// WritePacket appends one frame.
func (w *Writer) WritePacket(p Packet) error {
	if len(p.Data) > MaxSnapLen {
		return fmt.Errorf("pcap: frame of %d bytes exceeds snap length", len(p.Data))
	}
	orig := p.Orig
	if orig < len(p.Data) {
		orig = len(p.Data)
	}
	ts := p.Time.UnixMicro()
	binary.LittleEndian.PutUint32(w.buf[0:4], uint32(ts/1e6))
	binary.LittleEndian.PutUint32(w.buf[4:8], uint32(ts%1e6))
	binary.LittleEndian.PutUint32(w.buf[8:12], uint32(len(p.Data)))
	binary.LittleEndian.PutUint32(w.buf[12:16], uint32(orig))
	if _, err := w.w.Write(w.buf[:]); err != nil {
		return err
	}
	_, err := w.w.Write(p.Data)
	return err
}

// Flush flushes buffered output to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Errors returned by the reader.
var (
	ErrNotPcap     = errors.New("pcap: not a classic pcap file")
	ErrNanosecond  = errors.New("pcap: nanosecond captures not supported")
	ErrWrongLink   = errors.New("pcap: only Ethernet link type supported")
	errShortPacket = errors.New("pcap: truncated packet record")
)

// Reader reads a pcap file sequentially.
type Reader struct {
	r    *bufio.Reader
	bo   binary.ByteOrder
	snap uint32
}

// NewReader validates the global header and returns a reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [24]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotPcap, err)
	}
	var bo binary.ByteOrder
	switch m := binary.LittleEndian.Uint32(hdr[0:4]); m {
	case magicMicros:
		bo = binary.LittleEndian
	case magicNanos:
		return nil, ErrNanosecond
	default:
		switch binary.BigEndian.Uint32(hdr[0:4]) {
		case magicMicros:
			bo = binary.BigEndian
		case magicNanos:
			return nil, ErrNanosecond
		default:
			return nil, ErrNotPcap
		}
	}
	if link := bo.Uint32(hdr[20:24]); link != LinkTypeEthernet {
		return nil, fmt.Errorf("%w: link type %d", ErrWrongLink, link)
	}
	return &Reader{r: br, bo: bo, snap: bo.Uint32(hdr[16:20])}, nil
}

// Next returns the next packet, or io.EOF at end of file.
func (r *Reader) Next() (Packet, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Packet{}, io.EOF
		}
		return Packet{}, fmt.Errorf("%w: %v", errShortPacket, err)
	}
	sec := r.bo.Uint32(hdr[0:4])
	usec := r.bo.Uint32(hdr[4:8])
	capLen := r.bo.Uint32(hdr[8:12])
	orig := r.bo.Uint32(hdr[12:16])
	if capLen > r.snap || capLen > MaxSnapLen {
		return Packet{}, fmt.Errorf("pcap: capture length %d exceeds snap length %d", capLen, r.snap)
	}
	data := make([]byte, capLen)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return Packet{}, fmt.Errorf("%w: %v", errShortPacket, err)
	}
	return Packet{
		Time: time.Unix(int64(sec), int64(usec)*1000).UTC(),
		Data: data,
		Orig: int(orig),
	}, nil
}
