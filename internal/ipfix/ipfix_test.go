package ipfix

import (
	"encoding/binary"
	"net/netip"
	"testing"
	"testing/quick"

	"repro/internal/flow"
	"repro/internal/simtime"
)

func mkRecords(n int, hour simtime.Hour) []flow.Record {
	recs := make([]flow.Record, n)
	for i := range recs {
		recs[i] = flow.Record{
			Key: flow.Key{
				Src:     netip.AddrFrom4([4]byte{100, 64, byte(i >> 8), byte(i)}),
				Dst:     netip.AddrFrom4([4]byte{185, 1, 2, byte(i)}),
				SrcPort: uint16(50000 + i),
				DstPort: 8883,
				Proto:   flow.ProtoTCP,
			},
			Packets:  uint64(2*i + 1),
			Bytes:    uint64((2*i + 1) * 400),
			TCPFlags: 0x10,
			Hour:     hour,
		}
	}
	return recs
}

func TestRoundTrip(t *testing.T) {
	hour := simtime.HourOf(simtime.WildWindow.Start.Time())
	in := mkRecords(12, hour)
	exp := NewExporter(42)
	msgs, err := exp.Export(in, 30)
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector()
	out, err := col.Feed(msgs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Key != in[i].Key || out[i].Packets != in[i].Packets ||
			out[i].Bytes != in[i].Bytes || out[i].TCPFlags != in[i].TCPFlags ||
			out[i].Hour != hour {
			t.Fatalf("record %d: %+v != %+v", i, out[i], in[i])
		}
	}
}

func TestMessageLengthField(t *testing.T) {
	exp := NewExporter(1)
	msgs, err := exp.Export(mkRecords(5, 100), 30)
	if err != nil {
		t.Fatal(err)
	}
	msg := msgs[0]
	if got := int(binary.BigEndian.Uint16(msg[2:4])); got != len(msg) {
		t.Fatalf("length field %d, message is %d bytes", got, len(msg))
	}
}

func TestSequenceCountsDataRecords(t *testing.T) {
	exp := NewExporter(1)
	m1, _ := exp.Export(mkRecords(5, 100), 30)
	m2, _ := exp.Export(mkRecords(3, 100), 30)
	s1 := binary.BigEndian.Uint32(m1[0][8:12])
	s2 := binary.BigEndian.Uint32(m2[0][8:12])
	if s1 != 0 || s2 != 5 {
		t.Fatalf("sequence numbers %d, %d; want 0, 5", s1, s2)
	}
}

func TestGapDetection(t *testing.T) {
	exp := NewExporter(9)
	exp.TemplateEvery = 1
	m1, _ := exp.Export(mkRecords(5, 100), 30)
	m2, _ := exp.Export(mkRecords(5, 100), 30)
	m3, _ := exp.Export(mkRecords(5, 100), 30)
	col := NewCollector()
	if _, err := col.Feed(m1[0]); err != nil {
		t.Fatal(err)
	}
	// Skip m2: collector should flag a gap on m3.
	_ = m2
	if _, err := col.Feed(m3[0]); err != nil {
		t.Fatal(err)
	}
	if col.Gaps.Load() != 1 {
		t.Fatalf("Gaps = %d, want 1", col.Gaps.Load())
	}
}

func TestSequenceAcrossTemplateRefresh(t *testing.T) {
	exp := NewExporter(7)
	exp.TemplateEvery = 2 // messages 0, 2, 4, … carry the template
	var msgs [][]byte
	for i := 0; i < 6; i++ {
		m, err := exp.Export(mkRecords(5, 100), 30)
		if err != nil {
			t.Fatal(err)
		}
		msgs = append(msgs, m[0])
	}

	// Full round trip: a lossless stream shows no gaps across the
	// template-refresh boundary.
	col := NewCollector()
	for i, m := range msgs {
		if _, err := col.Feed(m); err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
	}
	if col.Gaps.Load() != 0 {
		t.Fatalf("lossless stream reported %d gaps", col.Gaps.Load())
	}

	// A collector joining mid-stream drops the untemplated data set
	// (unknown record count) and must not report a false gap once the
	// template refresh arrives.
	late := NewCollector()
	recs, err := late.Feed(msgs[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || late.Dropped.Load() != 1 {
		t.Fatalf("untemplated set: %d records, Dropped = %d", len(recs), late.Dropped.Load())
	}
	recs, err = late.Feed(msgs[2])
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("template refresh decoded %d records, want 5", len(recs))
	}
	if late.Gaps.Load() != 0 {
		t.Fatalf("false gap after template refresh: Gaps = %d", late.Gaps.Load())
	}

	// Sequence tracking re-anchored on the clean message: a genuinely
	// lost message is still detected afterwards.
	if _, err := late.Feed(msgs[4]); err != nil { // msgs[3] lost
		t.Fatal(err)
	}
	if late.Gaps.Load() != 1 {
		t.Fatalf("real loss after re-anchor: Gaps = %d, want 1", late.Gaps.Load())
	}
}

// TestNoPhantomGapOnExporterRestart: an anchored domain whose exporter
// restarts (sequence reset) and whose first post-restart message
// carries a data set the collector has no template for must not count
// a gap — the message's record count is unknown, so gap accounting
// re-anchors instead.
func TestNoPhantomGapOnExporterRestart(t *testing.T) {
	exp := NewExporter(5)
	exp.TemplateEvery = 0
	m1, _ := exp.Export(mkRecords(3, 100), 30) // templated, seq 0
	m2, _ := exp.Export(mkRecords(3, 100), 30) // data-only, seq 3
	col := NewCollector()
	for _, m := range [][]byte{m1[0], m2[0]} {
		if _, err := col.Feed(m); err != nil {
			t.Fatal(err)
		}
	}
	if col.Gaps.Load() != 0 {
		t.Fatalf("Gaps = %d before restart", col.Gaps.Load())
	}
	// Restarted exporter: sequence back to 0, data set referencing a
	// template ID the collector has never seen.
	restart := append([]byte(nil), m2[0]...)
	binary.BigEndian.PutUint32(restart[8:12], 0)
	binary.BigEndian.PutUint16(restart[16:18], 999)
	if _, err := col.Feed(restart); err != nil {
		t.Fatal(err)
	}
	if col.Dropped.Load() != 1 {
		t.Fatalf("Dropped = %d, want 1", col.Dropped.Load())
	}
	if col.Gaps.Load() != 0 {
		t.Fatalf("phantom gap on exporter restart: Gaps = %d", col.Gaps.Load())
	}
}

func TestTemplateCacheScopedByDomain(t *testing.T) {
	expA := NewExporter(1)
	mA, _ := expA.Export(mkRecords(2, 100), 30)
	col := NewCollector()
	if _, err := col.Feed(mA[0]); err != nil {
		t.Fatal(err)
	}
	expB := NewExporter(2)
	expB.TemplateEvery = 0
	_, _ = expB.Export(mkRecords(2, 100), 30)
	mB2, _ := expB.Export(mkRecords(2, 100), 30)
	recs, err := col.Feed(mB2[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || col.Dropped.Load() != 1 {
		t.Fatalf("template leaked across domains: %d recs", len(recs))
	}
}

func TestRejectsBadVersionAndLength(t *testing.T) {
	col := NewCollector()
	short := make([]byte, 8)
	if _, err := col.Feed(short); err == nil {
		t.Fatal("short message accepted")
	}
	msg := make([]byte, 20)
	binary.BigEndian.PutUint16(msg[0:2], 9)
	binary.BigEndian.PutUint16(msg[2:4], 20)
	if _, err := col.Feed(msg); err == nil {
		t.Fatal("version 9 accepted by IPFIX collector")
	}
	msg[1] = 10
	binary.BigEndian.PutUint16(msg[2:4], 9999)
	if _, err := col.Feed(msg); err == nil {
		t.Fatal("overlong length accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint8) bool {
		cnt := int(seed%60) + 1
		in := mkRecords(cnt, simtime.Hour(437000))
		exp := NewExporter(uint32(seed) + 1)
		msgs, err := exp.Export(in, 23)
		if err != nil {
			return false
		}
		col := NewCollector()
		var out []flow.Record
		for _, m := range msgs {
			recs, err := col.Feed(m)
			if err != nil {
				return false
			}
			out = append(out, recs...)
		}
		if len(out) != len(in) {
			return false
		}
		for i := range in {
			if out[i].Key != in[i].Key || out[i].Packets != in[i].Packets {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkExport(b *testing.B) {
	recs := mkRecords(30, 1000)
	exp := NewExporter(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Export(recs, 30); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCollect(b *testing.B) {
	recs := mkRecords(30, 1000)
	exp := NewExporter(1)
	exp.TemplateEvery = 1
	msgs, _ := exp.Export(recs, 30)
	col := NewCollector()
	b.SetBytes(int64(len(msgs[0])))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := col.Feed(msgs[0]); err != nil {
			b.Fatal(err)
		}
	}
}

// TestFieldWalkSkipsUnknownFields pins parseData's guarded
// shrinking-view record walk with a hand-assembled message: the
// template interleaves IEs this collector does not decode (999, odd
// length 3; 1000, length 5) between known fields, so decoding the
// known fields correctly requires skipping exactly the unknown bytes.
// Trailing set padding shorter than one record (RFC 7011 §3.3.1) must
// also be tolerated without disturbing the record count.
func TestFieldWalkSkipsUnknownFields(t *testing.T) {
	be16 := binary.BigEndian.AppendUint16
	be32 := binary.BigEndian.AppendUint32

	var msg []byte
	msg = be16(msg, Version)
	msg = be16(msg, 0)    // message length, patched below
	msg = be32(msg, 7200) // export time → hour 2
	msg = be32(msg, 0)    // sequence
	msg = be32(msg, 42)   // observation domain

	// Template set: template 300, recLen = 3+4+2+5+4+1 = 19.
	msg = be16(msg, templateSetID)
	msg = be16(msg, 4+4+6*4)
	msg = be16(msg, 300)
	msg = be16(msg, 6)
	for _, f := range [][2]uint16{
		{999, 3},
		{IESourceIPv4Address, 4},
		{IESourcePort, 2},
		{1000, 5},
		{IEPacketDeltaCount, 4},
		{IEProtocolIdentifier, 1},
	} {
		msg = be16(msg, f[0])
		msg = be16(msg, f[1])
	}

	// Data set: two 19-byte records plus 3 bytes of padding.
	msg = be16(msg, 300)
	msg = be16(msg, 4+2*19+3)
	msg = append(msg, 0xAA, 0xBB, 0xCC) // IE 999: must be skipped
	msg = append(msg, 100, 64, 0, 1)    // source address
	msg = be16(msg, 50000)              // source port
	msg = append(msg, 1, 2, 3, 4, 5)    // IE 1000: must be skipped
	msg = be32(msg, 77)                 // packet delta count
	msg = append(msg, byte(flow.ProtoTCP))
	msg = append(msg, 0, 0, 0)
	msg = append(msg, 100, 64, 0, 2)
	msg = be16(msg, 50001)
	msg = append(msg, 5, 4, 3, 2, 1)
	msg = be32(msg, 1)
	msg = append(msg, byte(flow.ProtoUDP))
	msg = append(msg, 0, 0, 0) // set padding
	binary.BigEndian.PutUint16(msg[2:4], uint16(len(msg)))

	col := NewCollector()
	out, err := col.Feed(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("decoded %d records, want 2", len(out))
	}
	want := []struct {
		src     netip.Addr
		port    uint16
		packets uint64
		proto   flow.Proto
	}{
		{netip.AddrFrom4([4]byte{100, 64, 0, 1}), 50000, 77, flow.ProtoTCP},
		{netip.AddrFrom4([4]byte{100, 64, 0, 2}), 50001, 1, flow.ProtoUDP},
	}
	for i, w := range want {
		r := out[i]
		if r.Key.Src != w.src || r.Key.SrcPort != w.port ||
			r.Packets != w.packets || r.Key.Proto != w.proto {
			t.Errorf("record %d: got %+v, want src=%v port=%d packets=%d proto=%d",
				i, r, w.src, w.port, w.packets, w.proto)
		}
		if r.Hour != 2 {
			t.Errorf("record %d: hour %d, want 2", i, r.Hour)
		}
		// Fields absent from the template stay zero — the unknown
		// bytes must not bleed into them.
		if r.Key.Dst.IsValid() || r.Key.DstPort != 0 || r.Bytes != 0 {
			t.Errorf("record %d: untemplated fields populated: %+v", i, r)
		}
	}
	if col.Dropped.Load() != 0 || col.Gaps.Load() != 0 {
		t.Fatalf("Dropped=%d Gaps=%d, want 0, 0", col.Dropped.Load(), col.Gaps.Load())
	}
}
