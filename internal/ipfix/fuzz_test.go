package ipfix

import (
	"testing"
	"testing/quick"

	"repro/internal/flow"
	"repro/internal/simrand"
)

func TestFeedNeverPanicsOnRandomBytes(t *testing.T) {
	col := NewCollector()
	f := func(data []byte) bool {
		_, _ = col.Feed(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// FuzzFeed is the native fuzz target behind the quick-check tests:
// whatever bytes arrive, Feed must return without panicking, decoded
// records must carry only addresses the Detector feed path can handle
// (4-byte or invalid — never a mis-sized Addr), and the arena path
// must agree with the record path byte-for-byte: FeedInto on a reused
// batch decodes exactly what Feed decodes, with the same error
// disposition.
func FuzzFeed(f *testing.F) {
	exp := NewExporter(1)
	exp.TemplateEvery = 1
	msgs, err := exp.Export(mkRecords(12, 1000), 30)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(msgs[0])
	f.Add([]byte{})
	f.Add([]byte{0, 10, 0, 16})
	arena := flow.NewBatch(64) // reused across inputs: stale state must never leak
	f.Fuzz(func(t *testing.T, data []byte) {
		col := NewCollector()
		recs, err := col.Feed(data)
		for i := range recs {
			if a := recs[i].Key.Src; a.IsValid() && !a.Is4() {
				t.Fatalf("decoded non-IPv4 source %v", a)
			}
		}
		colB := NewCollector()
		arena.Reset()
		errB := colB.FeedInto(data, arena)
		if (err == nil) != (errB == nil) {
			t.Fatalf("Feed err=%v, FeedInto err=%v", err, errB)
		}
		got := arena.Records()
		if len(got) != len(recs) {
			t.Fatalf("Feed decoded %d records, FeedInto %d", len(recs), len(got))
		}
		for i := range recs {
			if recs[i] != got[i] {
				t.Fatalf("record %d: Feed %+v, FeedInto %+v", i, recs[i], got[i])
			}
		}
	})
}

func TestFeedNeverPanicsOnMutatedMessages(t *testing.T) {
	exp := NewExporter(1)
	exp.TemplateEvery = 1
	msgs, err := exp.Export(mkRecords(12, 1000), 30)
	if err != nil {
		t.Fatal(err)
	}
	base := msgs[0]
	rng := simrand.New(123)
	for i := 0; i < 5000; i++ {
		m := append([]byte(nil), base...)
		flips := 1 + rng.Intn(4)
		for j := 0; j < flips; j++ {
			m[rng.Intn(len(m))] ^= byte(1 + rng.Intn(255))
		}
		col := NewCollector()
		_, _ = col.Feed(m)
	}
}
