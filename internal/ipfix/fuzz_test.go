package ipfix

import (
	"testing"
	"testing/quick"

	"repro/internal/simrand"
)

func TestFeedNeverPanicsOnRandomBytes(t *testing.T) {
	col := NewCollector()
	f := func(data []byte) bool {
		_, _ = col.Feed(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFeedNeverPanicsOnMutatedMessages(t *testing.T) {
	exp := NewExporter(1)
	exp.TemplateEvery = 1
	msgs, err := exp.Export(mkRecords(12, 1000), 30)
	if err != nil {
		t.Fatal(err)
	}
	base := msgs[0]
	rng := simrand.New(123)
	for i := 0; i < 5000; i++ {
		m := append([]byte(nil), base...)
		flips := 1 + rng.Intn(4)
		for j := 0; j < flips; j++ {
			m[rng.Intn(len(m))] ^= byte(1 + rng.Intn(255))
		}
		col := NewCollector()
		_, _ = col.Feed(m)
	}
}
