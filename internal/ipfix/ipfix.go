// Package ipfix implements the subset of IPFIX (RFC 7011) used by the
// IXP vantage point: template sets, data sets, and a collector with a
// per-observation-domain template cache.
//
// IPFIX and NetFlow v9 share the IANA information-element numbering for
// the fields we carry, but the message framing differs: IPFIX headers
// carry an explicit message length and export time, template sets use
// set ID 2, and the sequence number counts data records rather than
// messages.
package ipfix

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"sync/atomic"

	"repro/internal/flow"
	"repro/internal/simtime"
)

// Version is the IPFIX protocol version (RFC 7011 §3.1).
const Version = 10

// Information element IDs (IANA, same numbering as NetFlow v9 fields).
const (
	IEOctetDeltaCount    = 1
	IEPacketDeltaCount   = 2
	IEProtocolIdentifier = 4
	IETCPControlBits     = 6
	IESourcePort         = 7
	IESourceIPv4Address  = 8
	IEDestinationPort    = 11
	IEDestinationIPv4    = 12
)

// FieldSpec is one (element ID, length) pair in a template record.
type FieldSpec struct {
	ID     uint16
	Length uint16
}

// Template describes the layout of data records in a data set.
type Template struct {
	ID     uint16 // >= 256
	Fields []FieldSpec
}

// RecordLen returns the encoded size of one data record.
func (t Template) RecordLen() int {
	n := 0
	for _, f := range t.Fields {
		n += int(f.Length)
	}
	return n
}

// FlowTemplate is the canonical template used by the simulated IXP
// switching fabric.
var FlowTemplate = Template{
	ID: 300,
	Fields: []FieldSpec{
		{IESourceIPv4Address, 4},
		{IEDestinationIPv4, 4},
		{IESourcePort, 2},
		{IEDestinationPort, 2},
		{IEProtocolIdentifier, 1},
		{IETCPControlBits, 1},
		{IEPacketDeltaCount, 4},
		{IEOctetDeltaCount, 4},
	},
}

const (
	headerLen     = 16
	setHeaderLen  = 4
	templateSetID = 2
	minDataSetID  = 256
)

// Exporter packages flow records into IPFIX messages. Not safe for
// concurrent use.
type Exporter struct {
	DomainID      uint32
	TemplateEvery int

	seq      uint32 // data records sent so far (RFC 7011 §3.1)
	messages int
}

// NewExporter returns an exporter for one observation domain.
func NewExporter(domainID uint32) *Exporter {
	return &Exporter{DomainID: domainID, TemplateEvery: 20}
}

// Export encodes records into messages of at most maxRecords each.
// Each message is its own allocation; send paths that reuse one
// buffer should drive AppendMessage instead.
func (e *Exporter) Export(records []flow.Record, maxRecords int) ([][]byte, error) {
	if maxRecords <= 0 {
		maxRecords = 30
	}
	var msgs [][]byte
	for len(records) > 0 {
		n := min(maxRecords, len(records))
		msg, err := e.encodeMessage(records[:n])
		if err != nil {
			return nil, err
		}
		msgs = append(msgs, msg)
		records = records[n:]
	}
	return msgs, nil
}

// AppendMessage encodes the next message — at most maxRecords of
// records — into buf's spare capacity and returns the extended buffer
// plus how many records it consumed. Callers loop, slicing consumed
// records off and resetting buf to buf[:0] between messages, so a
// sustained send path reuses one encode buffer instead of allocating
// per message (Export's behavior). On error buf is returned unchanged.
func (e *Exporter) AppendMessage(buf []byte, records []flow.Record, maxRecords int) ([]byte, int, error) {
	if maxRecords <= 0 {
		maxRecords = 30
	}
	n := min(maxRecords, len(records))
	out, err := e.appendMessage(buf, records[:n])
	if err != nil {
		return buf, 0, err
	}
	return out, n, nil
}

func (e *Exporter) encodeMessage(records []flow.Record) ([]byte, error) {
	return e.appendMessage(make([]byte, 0, headerLen+len(records)*FlowTemplate.RecordLen()+64), records)
}

func (e *Exporter) appendMessage(buf []byte, records []flow.Record) ([]byte, error) {
	withTemplate := e.messages == 0 || (e.TemplateEvery > 0 && e.messages%e.TemplateEvery == 0)
	e.messages++

	var exportTime uint32
	if len(records) > 0 {
		exportTime = uint32(records[0].Hour.Time().Unix())
	}

	start := len(buf) // the Length field covers this message alone
	buf = binary.BigEndian.AppendUint16(buf, Version)
	buf = binary.BigEndian.AppendUint16(buf, 0) // length patched below
	buf = binary.BigEndian.AppendUint32(buf, exportTime)
	buf = binary.BigEndian.AppendUint32(buf, e.seq)
	buf = binary.BigEndian.AppendUint32(buf, e.DomainID)
	e.seq += uint32(len(records))

	if withTemplate {
		buf = appendTemplateSet(buf, FlowTemplate)
	}
	var err error
	buf, err = appendDataSet(buf, FlowTemplate, records)
	if err != nil {
		return nil, err
	}
	if len(buf)-start > 0xffff {
		return nil, fmt.Errorf("ipfix: message length %d exceeds 65535", len(buf)-start)
	}
	binary.BigEndian.PutUint16(buf[start+2:start+4], uint16(len(buf)-start))
	return buf, nil
}

func appendTemplateSet(buf []byte, t Template) []byte {
	body := setHeaderLen + 4 + len(t.Fields)*4
	buf = binary.BigEndian.AppendUint16(buf, templateSetID)
	buf = binary.BigEndian.AppendUint16(buf, uint16(body))
	buf = binary.BigEndian.AppendUint16(buf, t.ID)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(t.Fields)))
	for _, f := range t.Fields {
		buf = binary.BigEndian.AppendUint16(buf, f.ID)
		buf = binary.BigEndian.AppendUint16(buf, f.Length)
	}
	return buf
}

func appendDataSet(buf []byte, t Template, records []flow.Record) ([]byte, error) {
	recLen := t.RecordLen()
	body := setHeaderLen + recLen*len(records)
	pad := (4 - body%4) % 4 // RFC 7011 §3.3.1 permits padding
	buf = binary.BigEndian.AppendUint16(buf, t.ID)
	buf = binary.BigEndian.AppendUint16(buf, uint16(body+pad))
	for i := range records {
		r := &records[i]
		if !r.Key.Src.Is4() || !r.Key.Dst.Is4() {
			return nil, fmt.Errorf("ipfix: record %v is not IPv4", r.Key)
		}
		src, dst := r.Key.Src.As4(), r.Key.Dst.As4()
		buf = append(buf, src[:]...)
		buf = append(buf, dst[:]...)
		buf = binary.BigEndian.AppendUint16(buf, r.Key.SrcPort)
		buf = binary.BigEndian.AppendUint16(buf, r.Key.DstPort)
		buf = append(buf, uint8(r.Key.Proto), r.TCPFlags)
		buf = binary.BigEndian.AppendUint32(buf, uint32(min(r.Packets, 0xffffffff)))
		buf = binary.BigEndian.AppendUint32(buf, uint32(min(r.Bytes, 0xffffffff)))
	}
	for i := 0; i < pad; i++ {
		buf = append(buf, 0)
	}
	return buf, nil
}

// Collector parses IPFIX messages. Feed is not safe for concurrent
// use, but the Dropped and Gaps counters are atomics so a metrics
// reader may load them while another goroutine drives Feed.
type Collector struct {
	templates map[uint64]Template
	// Dropped counts data sets skipped for lack of a template.
	Dropped atomic.Uint64
	// Sequence gap detection.
	lastSeq map[uint32]uint32
	// Gaps counts messages whose sequence number did not match the
	// expected continuation (lost or reordered transport).
	Gaps atomic.Uint64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		templates: make(map[uint64]Template),
		lastSeq:   make(map[uint32]uint32),
	}
}

// Errors returned by the collector.
var (
	ErrShortMessage = errors.New("ipfix: short message")
	ErrBadVersion   = errors.New("ipfix: unexpected version")
	ErrBadLength    = errors.New("ipfix: bad message length")
)

// Feed parses one message and returns the decoded flow records. It is
// a thin compatibility wrapper over FeedInto: it decodes into a fresh
// arena and returns the backing slice, allocating per call. Hot
// callers should hold a reusable flow.Batch and call FeedInto.
func (c *Collector) Feed(msg []byte) ([]flow.Record, error) {
	var b flow.Batch
	err := c.FeedInto(msg, &b)
	return b.Records(), err
}

// FeedInto parses one message, appending every decoded record to b.
// The batch's prior contents are preserved, and records decoded
// before a mid-message error remain appended — callers that need
// all-or-nothing semantics can Truncate back to the pre-call length.
// With a warmed batch and a stable template, FeedInto performs zero
// steady-state allocations per message.
//
// haystack:hotpath — runs once per message; error construction lives
// in outlined cold helpers.
func (c *Collector) FeedInto(msg []byte, b *flow.Batch) error {
	if len(msg) < headerLen {
		return ErrShortMessage
	}
	if v := binary.BigEndian.Uint16(msg[0:2]); v != Version {
		return errBadVersion(v)
	}
	length := int(binary.BigEndian.Uint16(msg[2:4]))
	if length < headerLen || length > len(msg) {
		return errBadLength(length, len(msg))
	}
	exportTime := binary.BigEndian.Uint32(msg[4:8])
	seq := binary.BigEndian.Uint32(msg[8:12])
	domain := binary.BigEndian.Uint32(msg[12:16])
	hour := simtime.Hour(int64(exportTime) / 3600)

	want, anchored := c.lastSeq[domain]

	// The next expected sequence number is this message's sequence plus
	// the number of data records it carries (RFC 7011 §3.1). That count
	// is only known when every data set decodes: a set dropped for lack
	// of a template carries an unknown number of records. Advancing by
	// the decoded count in that case (or not at all for a message that
	// errors mid-parse) would silently desynchronize gap detection for
	// the rest of the stream — and counting the gap up front would
	// report phantom loss on e.g. an exporter restart whose first
	// post-restart message is untemplated — so both the gap comparison
	// and the anchor are deferred until the message is known clean;
	// otherwise tracking is invalidated and re-anchored by the next
	// clean message.
	start := b.Len()
	counted := true
	rest := msg[headerLen:length]
	for len(rest) >= setHeaderLen {
		setID := binary.BigEndian.Uint16(rest[0:2])
		setLen := int(binary.BigEndian.Uint16(rest[2:4]))
		if setLen < setHeaderLen || setLen > len(rest) {
			delete(c.lastSeq, domain)
			return errSetOverrun(setLen, len(rest))
		}
		body := rest[setHeaderLen:setLen]
		switch {
		case setID == templateSetID:
			if err := c.parseTemplates(domain, body); err != nil {
				delete(c.lastSeq, domain)
				return err
			}
		case setID >= minDataSetID:
			if !c.parseDataInto(domain, setID, body, hour, b) {
				counted = false
			}
		}
		rest = rest[setLen:]
	}
	if counted {
		if anchored && seq != want {
			c.Gaps.Add(1)
		}
		// This message's record count is what was appended past the
		// batch contents the caller handed in.
		c.lastSeq[domain] = seq + uint32(b.Len()-start)
	} else {
		delete(c.lastSeq, domain)
	}
	return nil
}

func (c *Collector) parseTemplates(domain uint32, body []byte) error {
	for len(body) >= 4 {
		id := binary.BigEndian.Uint16(body[0:2])
		n := int(binary.BigEndian.Uint16(body[2:4]))
		body = body[4:]
		if len(body) < n*4 {
			return fmt.Errorf("ipfix: truncated template %d", id)
		}
		// Exporters re-announce templates periodically over UDP; skip
		// the allocation when the announcement matches the cached
		// layout, so steady-state decode stays allocation-free.
		key := uint64(domain)<<16 | uint64(id)
		if cached, ok := c.templates[key]; ok && templateEqual(cached, body[:n*4]) {
			body = body[n*4:]
			continue
		}
		t := Template{ID: id, Fields: make([]FieldSpec, n)}
		for i := 0; i < n; i++ {
			t.Fields[i] = FieldSpec{
				ID:     binary.BigEndian.Uint16(body[i*4:]),
				Length: binary.BigEndian.Uint16(body[i*4+2:]),
			}
		}
		body = body[n*4:]
		c.templates[key] = t
	}
	return nil
}

// templateEqual reports whether the cached template matches a wire
// announcement (spec holds the (element ID, length) pairs, 4 bytes
// each).
//
// haystack:hotpath — runs once per re-announced template.
func templateEqual(t Template, spec []byte) bool {
	if len(t.Fields)*4 != len(spec) {
		return false
	}
	// Shrinking-view walk, like the data-record decoder: every read is
	// against the guarded front of spec.
	for i := range t.Fields {
		if len(spec) < 4 {
			return false
		}
		if t.Fields[i].ID != binary.BigEndian.Uint16(spec) ||
			t.Fields[i].Length != binary.BigEndian.Uint16(spec[2:]) {
			return false
		}
		spec = spec[4:]
	}
	return true
}

// parseDataInto decodes one data set into the caller's arena. The
// boolean reports whether the set's record count is fully known
// (false when the template is missing or degenerate).
//
// haystack:hotpath — runs once per data set.
func (c *Collector) parseDataInto(domain uint32, setID uint16, body []byte, hour simtime.Hour, b *flow.Batch) bool {
	t, ok := c.templates[uint64(domain)<<16|uint64(setID)]
	if !ok {
		c.Dropped.Add(1)
		return false
	}
	recLen := t.RecordLen()
	if recLen == 0 {
		return false
	}
	for len(body) >= recLen {
		rec := b.Append()
		rec.Hour = hour
		// Walk the record by slicing the front off a view of it, so
		// every access is guarded by the view's remaining length —
		// sum(field lengths) == recLen makes the guard dead code, but
		// the decoder stays safe (and provably in bounds) even if a
		// template ever lied.
		fields := body[:recLen]
		for _, f := range t.Fields {
			n := int(f.Length)
			if n > len(fields) {
				break
			}
			fb := fields[:n]
			fields = fields[n:]
			switch f.ID {
			case IESourceIPv4Address:
				if len(fb) == 4 {
					rec.Key.Src = netip.AddrFrom4([4]byte(fb))
				}
			case IEDestinationIPv4:
				if len(fb) == 4 {
					rec.Key.Dst = netip.AddrFrom4([4]byte(fb))
				}
			case IESourcePort:
				rec.Key.SrcPort = uint16(beUint(fb))
			case IEDestinationPort:
				rec.Key.DstPort = uint16(beUint(fb))
			case IEProtocolIdentifier:
				rec.Key.Proto = flow.Proto(beUint(fb))
			case IETCPControlBits:
				rec.TCPFlags = uint8(beUint(fb))
			case IEPacketDeltaCount:
				rec.Packets = beUint(fb)
			case IEOctetDeltaCount:
				rec.Bytes = beUint(fb)
			}
		}
		body = body[recLen:]
	}
	// Any remainder here is shorter than one record, which RFC 7011
	// §3.3.1 permits as set padding, so the record count is exact.
	return true
}

// Cold-path error constructors, outlined so the haystack:hotpath
// decode functions above stay fmt-free. Each fires at most once per
// malformed message, never per record.
func errBadVersion(v uint16) error { return fmt.Errorf("%w: %d", ErrBadVersion, v) }

func errBadLength(length, have int) error {
	return fmt.Errorf("%w: header says %d, have %d", ErrBadLength, length, have)
}

func errSetOverrun(setLen, remaining int) error {
	return fmt.Errorf("ipfix: set length %d exceeds remaining %d", setLen, remaining)
}

// beUint decodes a big-endian unsigned integer of any width.
//
// haystack:hotpath — runs several times per record.
func beUint(b []byte) uint64 {
	var v uint64
	for _, x := range b {
		v = v<<8 | uint64(x)
	}
	return v
}
