// Package isp models the wild residential ISP of §6.2: millions of
// broadband subscriber lines (scaled by a configurable factor), a
// market-calibrated IoT device population, subscriber-identifier churn,
// diurnal usage, and the NetFlow-sampled view the detection engine
// consumes.
//
// Device placement is household-correlated: a fraction of lines are
// "IoT adopters" and products are assigned within adopters using the
// catalog's penetration calibration. This is what keeps the union of
// all detections near the paper's ~20 % of subscriber lines while Alexa
// alone reaches ~14 %.
package isp

import (
	"net/netip"
	"sync"

	"repro/internal/catalog"
	"repro/internal/detect"
	"repro/internal/sampling"
	"repro/internal/simrand"
	"repro/internal/simtime"
)

// Config sizes the wild population.
type Config struct {
	// Lines is the number of simulated subscriber lines. The paper's
	// ISP has 15 M; the default scale model uses 1:100.
	Lines int
	// Scale is the factor to multiply simulated counts by when
	// comparing to the paper (Lines × Scale ≈ 15 M).
	Scale int
	// AdopterFraction is the share of lines owning any IoT device.
	AdopterFraction float64
	// IdentifierChurn is the per-line daily probability of receiving a
	// new subscriber identifier (re-assignment, reboot, …).
	IdentifierChurn float64
	// SamplingRate is the NetFlow sampling denominator at the border
	// routers.
	SamplingRate uint64
	// UsageProbEvening is the per-hour probability that an
	// entertainment device is actively used during evening hours.
	UsageProbEvening float64
}

// DefaultConfig returns the 1:100-scale calibration.
func DefaultConfig() Config {
	return Config{
		Lines:            150_000,
		Scale:            100,
		AdopterFraction:  0.22,
		IdentifierChurn:  0.04,
		SamplingRate:     sampling.RateISP,
		UsageProbEvening: 0.02,
	}
}

// instance is one device on one line.
type instance struct {
	line    int32
	product uint16
}

// Population is the device placement across subscriber lines.
type Population struct {
	Cfg Config
	cat *catalog.Catalog
	rng *simrand.RNG

	instances []instance
	adopters  int
	// trafficSeed is the root of the per-(device, hour) draw streams:
	// SimulateHour derives one stack RNG per device-hour from it, so
	// traffic realizations are a pure function of (seed, line, product,
	// hour) — independent of iteration order, which is what lets the
	// parallel sweep chunk the instance list across goroutines without
	// changing a single draw.
	trafficSeed uint64
	// perProduct counts placed devices by product index.
	perProduct []int
	// rotations[line] holds the days (relative to window start) on
	// which the line's identifier rotates, compressed as a count per
	// line derived lazily from a hash — see Identifier.
	window simtime.Window
}

// NewPopulation places devices on lines.
func NewPopulation(rng *simrand.RNG, cat *catalog.Catalog, cfg Config, window simtime.Window) *Population {
	p := &Population{
		Cfg: cfg, cat: cat, rng: rng.Fork("isp-pop"),
		perProduct: make([]int, len(cat.Products)),
		window:     window,
	}
	for line := 0; line < cfg.Lines; line++ {
		if !p.rng.Bernoulli(cfg.AdopterFraction) {
			continue
		}
		p.adopters++
		for pi, prod := range cat.Products {
			if prod.WildPenetration <= 0 {
				continue
			}
			if p.rng.Bernoulli(prod.WildPenetration) {
				p.instances = append(p.instances, instance{line: int32(line), product: uint16(pi)})
				p.perProduct[pi]++
			}
		}
	}
	// Drawn after the placement loop so placement realizations are
	// unchanged from the sequential-stream releases.
	p.trafficSeed = p.rng.Uint64()
	return p
}

// Lines returns the configured line count.
func (p *Population) Lines() int { return p.Cfg.Lines }

// Adopters returns how many lines own at least the chance of a device.
func (p *Population) Adopters() int { return p.adopters }

// Devices returns the number of placed device instances.
func (p *Population) Devices() int { return len(p.instances) }

// ProductCount returns how many lines host the product.
func (p *Population) ProductCount(name string) int {
	for pi, prod := range p.cat.Products {
		if prod.Name == name {
			return p.perProduct[pi]
		}
	}
	return 0
}

// EachInstance visits every placed device instance in placement order
// (line-major). It is the ground-truth view of the population: the
// adversarial experiment harness derives its expected (line, rule)
// pairs from exactly this assignment.
func (p *Population) EachInstance(fn func(line int32, prod *catalog.Product)) {
	for _, in := range p.instances {
		fn(in.line, p.cat.Products[in.product])
	}
}

// LinesWithAny returns the number of distinct lines hosting at least
// one device.
func (p *Population) LinesWithAny() int {
	seen := map[int32]bool{}
	for _, in := range p.instances {
		seen[in.line] = true
	}
	return len(seen)
}

// epoch returns the identifier epoch of a line on a day: the number of
// identifier rotations up to that day. Rotations are derived from a
// per-(line, day) hash so no per-line state is stored.
func (p *Population) epoch(line int32, day simtime.Day) uint64 {
	start := p.window.Start.Day()
	var n uint64
	for d := start; d < day; d++ {
		if hashBernoulli(uint64(line), uint64(d), p.Cfg.IdentifierChurn) {
			n++
		}
	}
	return n
}

func hashBernoulli(a, b uint64, prob float64) bool {
	h := splitmix(a*0x9e3779b97f4a7c15 ^ b*0xbf58476d1ce4e5b9)
	return float64(h>>11)/(1<<53) < prob
}

func splitmix(x uint64) uint64 {
	return simrand.Mix64(x + 0x9e3779b97f4a7c15)
}

// Identifier returns the anonymized subscriber identifier of a line on
// a day. It changes when the line's identifier rotates, modelling the
// churn discussion of §6.2.
func (p *Population) Identifier(line int32, day simtime.Day) detect.SubID {
	return detect.SubID(splitmix(uint64(line)<<20 ^ p.epoch(line, day)))
}

// Slash24 returns the /24 aggregate a line belongs to. Identifier
// churn re-assigns addresses within the same regional pool, so the
// /24 is a stable property of the line (§6.2, Fig 13).
func (p *Population) Slash24(line int32) uint32 { return uint32(line) >> 8 }

// diurnalClass groups products by their human-usage pattern (§6.2).
type diurnalClass uint8

const (
	diurnalFlat diurnalClass = iota
	diurnalEvening
	diurnalEveningMorning
)

func classOf(prod *catalog.Product) diurnalClass {
	switch prod.Category {
	case catalog.CatAudio, catalog.CatVideo:
		if prod.Vendor == "Samsung" {
			return diurnalEveningMorning
		}
		return diurnalEvening
	}
	return diurnalFlat
}

// usageProb is the per-hour probability of an active-use event.
// Televisions are watched for hours each evening (video class 25 %);
// voice assistants fire short commands (audio class ~3 %, the Fig 18
// calibration); everything else sees rare direct interaction.
func (p *Population) usageProb(prod *catalog.Product, class diurnalClass, local int) float64 {
	if prod.IdleOnly || class == diurnalFlat {
		return 0
	}
	evening := local >= 17 && local <= 23
	morning := local >= 6 && local <= 9
	video := prod.Category == catalog.CatVideo
	switch {
	case evening && video:
		return 0.25
	case evening:
		return p.Cfg.UsageProbEvening
	case morning && class == diurnalEveningMorning:
		return 0.08
	case video:
		return 0.05
	default:
		return p.Cfg.UsageProbEvening / 4
	}
}

// usageFactor modulates interactive traffic by local hour.
func usageFactor(class diurnalClass, local int) float64 {
	switch class {
	case diurnalEvening:
		switch {
		case local >= 18 && local <= 22:
			return 1.6
		case local >= 8 && local < 18:
			return 1.0
		default:
			return 0.55
		}
	case diurnalEveningMorning:
		switch {
		case local >= 18 && local <= 22:
			return 1.6
		case local >= 6 && local <= 9:
			return 1.2
		case local > 9 && local < 18:
			return 1.0
		default:
			return 0.55
		}
	}
	return 1.0
}

// Resolver supplies per-day domain→IP views (world.ResolverOn).
type Resolver interface {
	Resolve(domain string) []netip.Addr
}

// Emit receives one sampled observation: the line's identifier
// exchanged pkts sampled packets with (ip, port) in hour h.
type Emit func(line int32, sub detect.SubID, h simtime.Hour, ip netip.Addr, port uint16, pkts uint64)

// SimulateHour draws the sampled traffic of one hour and emits every
// visible (subscriber, endpoint) observation.
//
// The fast path exploits Poisson thinning: packets are Poisson(mean)
// and sampling is Binomial(·, 1/rate), so the sampled count is
// Poisson(mean/rate) — one draw per (device, domain, hour), from a
// stack RNG derived from (trafficSeed, line, product, hour).
func (p *Population) SimulateHour(h simtime.Hour, r Resolver, emit Emit) {
	p.simulateSlice(h, r, p.instances, emit)
}

// simulateSlice is SimulateHour over a contiguous run of instances —
// the unit of work the parallel sweep hands each goroutine. Draws
// depend only on (trafficSeed, line, product, hour), never on slice
// boundaries, so any contiguous partition reproduces the full-slice
// emission sequence when chunks are concatenated in order.
func (p *Population) simulateSlice(h simtime.Hour, r Resolver, instances []instance, emit Emit) {
	day := h.Day()
	local := h.LocalHour(simtime.ISPUTCOffset)
	invRate := 1 / float64(p.Cfg.SamplingRate)

	for _, in := range instances {
		prod := p.cat.Products[in.product]
		class := classOf(prod)
		f := usageFactor(class, local)

		// Active-use events: entertainment devices see bursts in the
		// evening (voice commands, streaming), driving §7.1.
		burst := 0.0
		if prob := p.usageProb(prod, class, local); prob > 0 {
			if hashBernoulli(uint64(in.line)*31+uint64(in.product), uint64(h), prob) {
				burst = 1 + float64(splitmix(uint64(h)^uint64(in.line))%5)
			}
		}

		// The device-hour's private draw stream (see trafficSeed).
		rng := simrand.NewFrom(splitmix(
			p.trafficSeed ^ uint64(in.line)*0x9e3779b97f4a7c15 ^ uint64(in.product)<<40 ^ uint64(h)*0xbf58476d1ce4e5b9))

		var sub detect.SubID
		subSet := false
		for ui := range prod.Uses {
			use := &prod.Uses[ui]
			mean := use.IdlePPH
			if burst > 0 {
				mean += use.ActivePPH * burst
			} else if class != diurnalFlat {
				// Light interactive background following the diurnal
				// shape.
				mean += use.ActivePPH * 0.02 * f
			}
			if mean <= 0 {
				continue
			}
			pkts := rng.Poisson(mean * invRate)
			if pkts == 0 {
				continue
			}
			ips := r.Resolve(use.Domain.Name)
			if len(ips) == 0 {
				continue
			}
			ip := ips[int(uint64(in.line)+uint64(ui)+uint64(day))%len(ips)]
			if !subSet {
				sub = p.Identifier(in.line, day)
				subSet = true
			}
			emit(in.line, sub, h, ip, use.Domain.Port, uint64(pkts))
		}
	}
}

// emission is one buffered SimulateHour observation, staged by a
// parallel worker for the ordered merge.
type emission struct {
	line int32
	sub  detect.SubID
	ip   netip.Addr
	port uint16
	pkts uint64
}

// parallelMinInstances is the population size below which the
// parallel sweep falls back to the sequential loop: goroutine and
// merge overhead beats the win on small testbed populations.
const parallelMinInstances = 4096

// SimulateHourParallel is SimulateHour with the instance sweep split
// across workers goroutines. The emission sequence is byte-identical
// to SimulateHour's for every worker count — draws are a pure
// function of (seed, line, product, hour), chunks are contiguous,
// and workers stage emissions in per-chunk buffers that the caller's
// goroutine merges in chunk order — so emit still runs on a single
// goroutine and needs no locking. The Resolver must be safe for
// concurrent reads (world.DayResolver is: its day views are
// precomputed).
func (p *Population) SimulateHourParallel(h simtime.Hour, r Resolver, workers int, emit Emit) {
	if workers > len(p.instances) {
		workers = len(p.instances)
	}
	if workers <= 1 || len(p.instances) < parallelMinInstances {
		p.simulateSlice(h, r, p.instances, emit)
		return
	}
	chunks := make([][]emission, workers)
	per := (len(p.instances) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > len(p.instances) {
			hi = len(p.instances)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		// Bounded worker: runs one chunk to completion and exits; the
		// WaitGroup joins all of them before the merge below.
		go func(w, lo, hi int) {
			defer wg.Done()
			buf := make([]emission, 0, (hi-lo)/2)
			p.simulateSlice(h, r, p.instances[lo:hi], func(line int32, sub detect.SubID, _ simtime.Hour, ip netip.Addr, port uint16, pkts uint64) {
				buf = append(buf, emission{line: line, sub: sub, ip: ip, port: port, pkts: pkts})
			})
			chunks[w] = buf
		}(w, lo, hi)
	}
	wg.Wait()
	for _, buf := range chunks {
		for i := range buf {
			e := &buf[i]
			emit(e.line, e.sub, h, e.ip, e.port, e.pkts)
		}
	}
}

// SimulateWindow runs SimulateHour over a window.
func (p *Population) SimulateWindow(w simtime.Window, resolve func(simtime.Day) Resolver, emit Emit) {
	w.Each(func(h simtime.Hour) {
		p.SimulateHour(h, resolve(h.Day()), emit)
	})
}
