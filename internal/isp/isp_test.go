package isp

import (
	"math"
	"net/netip"
	"testing"

	"repro/internal/catalog"
	"repro/internal/detect"
	"repro/internal/simrand"
	"repro/internal/simtime"
	"repro/internal/world"
)

func smallCfg(lines int) Config {
	cfg := DefaultConfig()
	cfg.Lines = lines
	return cfg
}

func TestPlacementPenetrations(t *testing.T) {
	cat := catalog.Build()
	pop := NewPopulation(simrand.New(1), cat, smallCfg(60_000), simtime.WildWindow)

	adopterFrac := float64(pop.Adopters()) / float64(pop.Lines())
	if math.Abs(adopterFrac-0.22) > 0.01 {
		t.Fatalf("adopter fraction %v, want ~0.22", adopterFrac)
	}

	// Echo Dot at 45 % of adopters ≈ 9.9 % of lines.
	dots := float64(pop.ProductCount("Echo Dot")) / float64(pop.Lines())
	if math.Abs(dots-0.22*0.45) > 0.01 {
		t.Fatalf("Echo Dot penetration %v, want ~%v", dots, 0.22*0.45)
	}

	// Any-IoT union stays near the paper's 20 %.
	anyFrac := float64(pop.LinesWithAny()) / float64(pop.Lines())
	if anyFrac < 0.17 || anyFrac > 0.22 {
		t.Fatalf("lines with any device %v, want ~0.20", anyFrac)
	}
}

func TestIdentifierStableWithinEpoch(t *testing.T) {
	cat := catalog.Build()
	pop := NewPopulation(simrand.New(2), cat, smallCfg(1000), simtime.WildWindow)
	day := simtime.WildWindow.Start.Day()
	a := pop.Identifier(42, day)
	b := pop.Identifier(42, day)
	if a != b {
		t.Fatal("identifier not deterministic")
	}
	if pop.Identifier(43, day) == a {
		t.Fatal("identifier collision between adjacent lines")
	}
}

func TestIdentifierChurnRate(t *testing.T) {
	cat := catalog.Build()
	cfg := smallCfg(20_000)
	pop := NewPopulation(simrand.New(3), cat, cfg, simtime.WildWindow)
	days := simtime.WildWindow.Days()
	changed := 0
	for line := int32(0); line < 20000; line++ {
		if pop.Identifier(line, days[0]) != pop.Identifier(line, days[1]) {
			changed++
		}
	}
	got := float64(changed) / 20000
	if math.Abs(got-cfg.IdentifierChurn) > 0.01 {
		t.Fatalf("daily identifier churn %v, want ~%v", got, cfg.IdentifierChurn)
	}
}

func TestIdentifierNeverRepeatsAcrossEpochs(t *testing.T) {
	cat := catalog.Build()
	pop := NewPopulation(simrand.New(4), cat, smallCfg(1000), simtime.WildWindow)
	days := simtime.WildWindow.Days()
	seen := map[uint64]simtime.Day{}
	for _, d := range days {
		id := uint64(pop.Identifier(7, d))
		if prev, ok := seen[id]; ok && pop.epoch(7, prev) != pop.epoch(7, d) {
			t.Fatalf("identifier reused across epochs (%v and %v)", prev, d)
		}
		seen[id] = d
	}
}

func TestSlash24Stable(t *testing.T) {
	cat := catalog.Build()
	pop := NewPopulation(simrand.New(5), cat, smallCfg(1000), simtime.WildWindow)
	if pop.Slash24(255) != 0 || pop.Slash24(256) != 1 {
		t.Fatal("/24 grouping wrong")
	}
}

func TestSimulateHourEmitsSampledTraffic(t *testing.T) {
	w := world.MustBuild(1)
	pop := NewPopulation(simrand.New(6), w.Catalog, smallCfg(20_000), w.Window)
	h := w.Window.Start + 18
	r := w.ResolverOn(h.Day())
	emits := 0
	subs := map[detect.SubID]bool{}
	pop.SimulateHour(h, r, func(line int32, sub detect.SubID, hh simtime.Hour, ip netip.Addr, port uint16, p uint64) {
		emits++
		subs[sub] = true
		if p == 0 {
			t.Fatal("zero-packet emission")
		}
		if hh != h {
			t.Fatalf("hour %v, want %v", hh, h)
		}
		if !ip.IsValid() || port == 0 {
			t.Fatal("invalid endpoint")
		}
	})
	if emits == 0 {
		t.Fatal("no sampled traffic from 20k lines")
	}
	if len(subs) < emits/20 {
		t.Fatalf("observations concentrate on too few subscribers: %d subs, %d emits", len(subs), emits)
	}
}

func TestDiurnalVisibility(t *testing.T) {
	// Evening hours must show more Alexa traffic than deep night.
	w := world.MustBuild(1)
	pop := NewPopulation(simrand.New(7), w.Catalog, smallCfg(30_000), w.Window)
	count := func(h simtime.Hour) int {
		n := 0
		r := w.ResolverOn(h.Day())
		pop.SimulateHour(h, r, func(_ int32, _ detect.SubID, _ simtime.Hour, _ netip.Addr, _ uint16, p uint64) {
			n += int(p)
		})
		return n
	}
	evening := 0
	night := 0
	for d := 0; d < 3; d++ {
		base := w.Window.Start + simtime.Hour(24*d)
		evening += count(base + 19) // 20:00 local
		night += count(base + 2)    // 03:00 local
	}
	if evening <= night {
		t.Fatalf("no diurnal pattern: evening %d <= night %d", evening, night)
	}
}

// The parallel sweep must reproduce the sequential emission sequence
// byte-for-byte at every worker count — the same invariant the
// detection pipeline pins for shard counts.
func TestSimulateHourParallelMatchesSequential(t *testing.T) {
	w := world.MustBuild(1)
	pop := NewPopulation(simrand.New(8), w.Catalog, smallCfg(30_000), w.Window)
	if pop.Devices() < parallelMinInstances {
		t.Fatalf("population too small (%d devices) to exercise the parallel path", pop.Devices())
	}
	h := w.Window.Start + 19 // evening: bursts exercised
	r := w.ResolverOn(h.Day())

	type obs struct {
		line int32
		sub  detect.SubID
		h    simtime.Hour
		ip   netip.Addr
		port uint16
		pkts uint64
	}
	collect := func(workers int) []obs {
		var out []obs
		fn := func(line int32, sub detect.SubID, hh simtime.Hour, ip netip.Addr, port uint16, pkts uint64) {
			out = append(out, obs{line, sub, hh, ip, port, pkts})
		}
		if workers == 0 {
			pop.SimulateHour(h, r, fn)
		} else {
			pop.SimulateHourParallel(h, r, workers, fn)
		}
		return out
	}

	want := collect(0)
	if len(want) == 0 {
		t.Fatal("sequential sweep emitted nothing")
	}
	for _, workers := range []int{1, 2, 4, 7} {
		got := collect(workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d emissions, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: emission %d = %+v, want %+v", workers, i, got[i], want[i])
			}
		}
	}
}

// Repeated sweeps of the same hour must be identical: draws are
// stateless, so simulating an hour twice (or out of order) cannot
// perturb any other hour's realization.
func TestSimulateHourStatelessDraws(t *testing.T) {
	w := world.MustBuild(1)
	pop := NewPopulation(simrand.New(9), w.Catalog, smallCfg(5_000), w.Window)
	h := w.Window.Start + 19
	r := w.ResolverOn(h.Day())
	count := func() (n int, pk uint64) {
		pop.SimulateHour(h, r, func(_ int32, _ detect.SubID, _ simtime.Hour, _ netip.Addr, _ uint16, p uint64) {
			n++
			pk += p
		})
		return
	}
	n1, p1 := count()
	// An interleaved different hour must not shift the replay.
	pop.SimulateHour(h+3, w.ResolverOn((h + 3).Day()), func(int32, detect.SubID, simtime.Hour, netip.Addr, uint16, uint64) {})
	n2, p2 := count()
	if n1 != n2 || p1 != p2 {
		t.Fatalf("hour replay diverged: (%d, %d) then (%d, %d)", n1, p1, n2, p2)
	}
}

func TestUsageFactorShape(t *testing.T) {
	if usageFactor(diurnalEvening, 20) <= usageFactor(diurnalEvening, 3) {
		t.Fatal("evening class not peaked in the evening")
	}
	if usageFactor(diurnalFlat, 20) != 1 || usageFactor(diurnalFlat, 3) != 1 {
		t.Fatal("flat class not flat")
	}
	if usageFactor(diurnalEveningMorning, 7) <= usageFactor(diurnalEveningMorning, 3) {
		t.Fatal("morning bump missing")
	}
}
