package simrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestForkIndependence(t *testing.T) {
	root := New(7)
	a := root.Fork("traffic")
	root2 := New(7)
	_ = root2.Fork("traffic")
	b := New(7).Fork("churn")
	// Different labels must give different streams.
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forks with different labels matched %d/100 draws", same)
	}
}

func TestForkDeterministic(t *testing.T) {
	a := New(7).Fork("x")
	b := New(7).Fork("x")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same fork label diverged")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) hit only %d distinct values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniform(t *testing.T) {
	r := New(6)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Uint64n(10)]++
	}
	for v, c := range counts {
		got := float64(c) / n
		if math.Abs(got-0.1) > 0.01 {
			t.Fatalf("value %d frequency %v, want ~0.1", v, got)
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(8)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(9)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.25) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.25) > 0.01 {
		t.Fatalf("Bernoulli(0.25) rate %v", rate)
	}
}

func TestBinomialEdges(t *testing.T) {
	r := New(10)
	if got := r.Binomial(0, 0.5); got != 0 {
		t.Fatalf("Binomial(0, .5) = %d", got)
	}
	if got := r.Binomial(100, 0); got != 0 {
		t.Fatalf("Binomial(100, 0) = %d", got)
	}
	if got := r.Binomial(100, 1); got != 100 {
		t.Fatalf("Binomial(100, 1) = %d", got)
	}
	if got := r.Binomial(-5, 0.5); got != 0 {
		t.Fatalf("Binomial(-5, .5) = %d", got)
	}
}

func TestBinomialBounds(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	r := New(11)
	f := func(n uint16, pRaw uint16) bool {
		n16 := int(n % 1000)
		p := float64(pRaw) / math.MaxUint16
		got := r.Binomial(n16, p)
		return got >= 0 && got <= n16
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestBinomialMean(t *testing.T) {
	r := New(12)
	cases := []struct {
		n int
		p float64
	}{
		{10000, 0.001}, {1000, 0.3}, {50, 0.7}, {200, 0.5},
	}
	for _, c := range cases {
		sum := 0
		const trials = 2000
		for i := 0; i < trials; i++ {
			sum += r.Binomial(c.n, c.p)
		}
		mean := float64(sum) / trials
		want := float64(c.n) * c.p
		sd := math.Sqrt(float64(c.n) * c.p * (1 - c.p))
		if math.Abs(mean-want) > 5*sd/math.Sqrt(trials)+0.05 {
			t.Errorf("Binomial(%d,%v) mean %v, want %v", c.n, c.p, mean, want)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(13)
	for _, mean := range []float64{0.5, 3, 29, 120} {
		sum := 0
		const trials = 3000
		for i := 0; i < trials; i++ {
			sum += r.Poisson(mean)
		}
		got := float64(sum) / trials
		tol := 5 * math.Sqrt(mean/trials)
		if math.Abs(got-mean) > tol+0.05 {
			t.Errorf("Poisson(%v) mean %v", mean, got)
		}
	}
}

func TestPoissonNonNegative(t *testing.T) {
	r := New(14)
	if r.Poisson(0) != 0 || r.Poisson(-3) != 0 {
		t.Fatal("Poisson of non-positive mean must be 0")
	}
}

func TestNormMeanVar(t *testing.T) {
	r := New(15)
	sum, sumSq := 0.0, 0.0
	const n = 50000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %v", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(16)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(17)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: %v", xs)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(18)
	z := NewZipf(100, 1.0)
	counts := make([]int, 100)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[90] {
		t.Fatalf("zipf not skewed: c0=%d c10=%d c90=%d", counts[0], counts[10], counts[90])
	}
	// Rank 0 of Zipf(s=1, n=100) has mass 1/H(100) ~ 0.193.
	p0 := float64(counts[0]) / n
	if math.Abs(p0-0.1928) > 0.01 {
		t.Fatalf("zipf rank-0 mass %v, want ~0.193", p0)
	}
}

func TestZipfWeightsSumToOne(t *testing.T) {
	z := NewZipf(50, 1.3)
	sum := 0.0
	for i := 0; i < z.N(); i++ {
		sum += z.Weight(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("zipf weights sum %v", sum)
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	r := New(19)
	z := NewZipf(10, 0)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	for i, c := range counts {
		got := float64(c) / n
		if math.Abs(got-0.1) > 0.01 {
			t.Fatalf("rank %d freq %v, want 0.1", i, got)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkBinomialSparse(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Binomial(100000, 0.001)
	}
}

func BenchmarkZipfSample(b *testing.B) {
	r := New(1)
	z := NewZipf(10000, 1.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Sample(r)
	}
}
