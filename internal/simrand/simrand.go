// Package simrand provides a deterministic, seedable random number
// generator and the sampling distributions used throughout the haystack
// simulation.
//
// Everything in the simulated world — device placement, DNS churn,
// packet sampling — must be reproducible bit-for-bit from a seed, so the
// simulation deliberately avoids math/rand's global state. The core
// generator is xoshiro256**, seeded via splitmix64, which is the
// initialization recommended by its authors.
package simrand

import (
	"math"
	"math/bits"
)

// RNG is a deterministic xoshiro256** generator. The zero value is not
// usable; construct with New. RNG is not safe for concurrent use; derive
// independent streams with Fork.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from the given seed using splitmix64.
func New(seed uint64) *RNG {
	r := NewFrom(seed)
	return &r
}

// NewFrom returns a generator value seeded exactly like New. It backs
// stateless per-use draws: a hot loop constructs one on the stack per
// (entity, time-bin) from a hash-derived seed, making every draw a
// pure function of that seed — no shared stream to serialize on, so
// the loop can be chunked across goroutines without changing any
// realization.
func NewFrom(seed uint64) RNG {
	var r RNG
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		r.s[i] = Mix64(sm)
	}
	return r
}

// Mix64 is the splitmix64 finalizer: a cheap bijective bit mix that
// turns correlated inputs (sequential ids, biased hashes) into
// well-distributed words. Shared by seeding, identifier anonymization,
// and shard partitioning so the mixing constants live in one place.
func Mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Fork derives an independent generator from r and a stream label.
// Two forks with different labels produce uncorrelated streams, which
// lets subsystems (traffic, churn, sampling …) draw independently while
// the whole world stays a pure function of the root seed.
func (r *RNG) Fork(label string) *RNG {
	h := uint64(14695981039346656037) // FNV-64 offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return New(h ^ r.Uint64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("simrand: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's unbiased
// multiply-shift rejection method. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("simrand: Uint64n with zero n")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n // (2^64 - n) mod n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Binomial draws the number of successes in n independent trials with
// success probability p. It is exact for all n: successes are counted by
// geometric gap-skipping, so the expected cost is O(n·p) rather than
// O(n), which matters when thinning millions of packets at 1:1000
// sampling rates.
func (r *RNG) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if p > 0.5 {
		return n - r.Binomial(n, 1-p)
	}
	// Geometric gap-skipping: the gap between successes is
	// Geometric(p); jump gap-by-gap until past n.
	lq := math.Log1p(-p)
	count := 0
	i := 0
	for {
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		gap := int(math.Log(u) / lq) // floor, gap >= 0
		i += gap + 1
		if i > n {
			return count
		}
		count++
	}
}

// Poisson draws from a Poisson distribution with the given mean.
// Large means are decomposed using Poisson(a+b) = Poisson(a)+Poisson(b)
// so Knuth's product method never underflows.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	const chunk = 30.0
	n := 0
	for mean > chunk {
		n += r.poissonKnuth(chunk)
		mean -= chunk
	}
	return n + r.poissonKnuth(mean)
}

func (r *RNG) poissonKnuth(mean float64) int {
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle performs a Fisher–Yates shuffle over n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Zipf samples ranks in [0, n) with probability proportional to
// 1/(rank+1)^s via a precomputed CDF. It models device-popularity and
// AS-size skew. Use NewZipf once and Sample many times.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a bounded Zipf sampler over n ranks with exponent s.
// It panics if n <= 0 or s < 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("simrand: NewZipf with non-positive n")
	}
	if s < 0 {
		panic("simrand: NewZipf with negative exponent")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Weight returns the probability mass of the given rank.
func (z *Zipf) Weight(rank int) float64 {
	if rank == 0 {
		return z.cdf[0]
	}
	return z.cdf[rank] - z.cdf[rank-1]
}

// Sample draws a rank in [0, N) using r.
func (z *Zipf) Sample(r *RNG) int {
	u := r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
