package classify

import (
	"testing"

	"repro/internal/catalog"
)

func TestClassifyExamples(t *testing.T) {
	kb := DefaultKB()
	cases := map[string]catalog.Role{
		"avs-alexa.simamazon.example":      catalog.RolePrimary,
		"r0.simring.example":               catalog.RolePrimary,
		"c3.simxiaomi-cdn.example":         catalog.RolePrimary,
		"samsung-recipes.simwhisk.example": catalog.RoleSupport,
		"sup0.simamazon-assets.example":    catalog.RoleSupport,
		"pool07.simntp.example":            catalog.RoleGeneric,
		"g42.simgenericweb.example":        catalog.RoleGeneric,
	}
	for d, want := range cases {
		if got := kb.Classify(d); got != want {
			t.Errorf("Classify(%q) = %v, want %v", d, got, want)
		}
	}
}

func TestCensusMatchesPaperCounts(t *testing.T) {
	// §4.1: of 524 observed domains, 415 Primary, 19 Support, the rest
	// Generic.
	c := catalog.Build()
	kb := DefaultKB()
	census := kb.ClassifyAll(c.DomainNames())
	p, s, g := census.Counts()
	if p != 415 {
		t.Errorf("primary = %d, want 415", p)
	}
	if s != 19 {
		t.Errorf("support = %d, want 19", s)
	}
	if g != 90 {
		t.Errorf("generic = %d, want 90", g)
	}
	if got := len(census.IoTSpecific()); got != 434 {
		t.Errorf("IoT-specific = %d, want 434", got)
	}
}

func TestClassifierAgreesWithCatalogGroundTruth(t *testing.T) {
	c := catalog.Build()
	kb := DefaultKB()
	for name, d := range c.Domains {
		if got := kb.Classify(name); got != d.Role {
			t.Errorf("Classify(%q) = %v, catalog says %v", name, got, d.Role)
		}
	}
}

func TestClassifyAllPreservesDuplicates(t *testing.T) {
	// ClassifyAll takes an observation list as-is; deduplication is
	// the caller's job (DomainNames is already unique).
	kb := DefaultKB()
	census := kb.ClassifyAll([]string{"a.simx.example", "a.simx.example", "pool00.simntp.example"})
	p, _, g := census.Counts()
	if p != 2 || g != 1 {
		t.Fatalf("primary=%d generic=%d, want 2 and 1", p, g)
	}
}
