// Package classify implements the §4.1 domain classification: every
// domain observed in the ground-truth traffic is sorted into
// IoT-specific Primary, IoT-specific Support, or Generic.
//
// The paper did this with "pattern matching, manual inspection, and by
// visiting their websites"; the equivalent here is a small curated
// knowledge base of generic-service suffixes and
// complementary-service patterns, applied mechanically. The knowledge
// base is data, not code, so tests can extend it.
package classify

import (
	"strings"

	"repro/internal/catalog"
	"repro/internal/names"
)

// KnowledgeBase holds the curated classification hints.
type KnowledgeBase struct {
	// GenericSLDs are registrable domains of generic service
	// providers heavily used by non-IoT clients (public NTP pools,
	// streaming, wikis, ad networks).
	GenericSLDs []string
	// SupportSLDs are registrable domains of complementary-service
	// operators (the paper's whisk.com example).
	SupportSLDs []string
	// SupportPatterns are label substrings marking vendor-adjacent
	// asset services.
	SupportPatterns []string
}

// DefaultKB returns the knowledge base curated for the simulated
// world, the analogue of the paper's manual inspection results.
func DefaultKB() *KnowledgeBase {
	return &KnowledgeBase{
		GenericSLDs:     []string{"simntp.example", "simgenericweb.example"},
		SupportSLDs:     []string{"simwhisk.example"},
		SupportPatterns: []string{"-assets"},
	}
}

// Classify assigns a role to one domain name.
func (kb *KnowledgeBase) Classify(domain string) catalog.Role {
	domain = names.Normalize(domain)
	sld := names.SLD(domain)
	for _, g := range kb.GenericSLDs {
		if sld == g || names.IsSubdomainOf(domain, g) {
			return catalog.RoleGeneric
		}
	}
	for _, s := range kb.SupportSLDs {
		if sld == s || names.IsSubdomainOf(domain, s) {
			return catalog.RoleSupport
		}
	}
	for _, p := range kb.SupportPatterns {
		if strings.Contains(sld, p) {
			return catalog.RoleSupport
		}
	}
	return catalog.RolePrimary
}

// Census is the outcome of classifying a domain set.
type Census struct {
	Primary []string
	Support []string
	Generic []string
}

// IoTSpecific returns Primary ∪ Support — the §4.2 input set.
func (c *Census) IoTSpecific() []string {
	out := make([]string, 0, len(c.Primary)+len(c.Support))
	out = append(out, c.Primary...)
	return append(out, c.Support...)
}

// Counts returns (#primary, #support, #generic).
func (c *Census) Counts() (int, int, int) {
	return len(c.Primary), len(c.Support), len(c.Generic)
}

// ClassifyAll classifies a domain list, preserving order within each
// class.
func (kb *KnowledgeBase) ClassifyAll(domains []string) *Census {
	var c Census
	for _, d := range domains {
		switch kb.Classify(d) {
		case catalog.RoleGeneric:
			c.Generic = append(c.Generic, d)
		case catalog.RoleSupport:
			c.Support = append(c.Support, d)
		default:
			c.Primary = append(c.Primary, d)
		}
	}
	return &c
}
