// Package adversary is the adversarial experiment harness: it
// measures how detection quality degrades when the world stops
// cooperating with the paper's methodology.
//
// The paper (§6–§7) validates the detection rules against cooperative
// ground truth. This package stresses the same compiled dictionary and
// the same sharded pipeline against conditions a production deployment
// meets first: devices that evade, NAT identifier churn, vantage-point
// sampling, and misbehaving exporters on the wire. The shape follows
// the classic experiment-runner pattern: an ExperimentConfig runs N
// seeded-deterministic trials and aggregates TPR/FPR/FNR plus
// per-rule quality into one ExperimentResult per scenario.
//
// Ground truth is the isp.Population device assignment: a (line, rule)
// pair is a positive when the line's devices can, under full
// visibility, cover the rule's compiled evidence requirement (and its
// parent chain). Detections come from a fresh sharded pipeline run per
// trial, so every result is also shard-count invariant — the matrix
// bytes are identical at 1 and 8 shards.
package adversary

import (
	"fmt"
	"sort"

	"repro/internal/detect"
	"repro/internal/experiments"
	"repro/internal/isp"
	"repro/internal/pipeline"
	"repro/internal/sampling"
	"repro/internal/simrand"
	"repro/internal/simtime"
)

// Scenario names one adversarial condition.
type Scenario string

// The shipped scenarios. Baseline is the cooperative reference every
// adversarial scenario is read against.
const (
	// ScenarioBaseline is cooperative ground truth: unsampled
	// emissions, stable identifiers, honest exporters.
	ScenarioBaseline Scenario = "baseline"
	// ScenarioEvasive models devices that try not to be detected:
	// sticky per-(line, endpoint) port jitter moves a fraction of
	// backend flows off the dictionary's (ip, port) hitlist, and
	// per-observation packet counts are held under the
	// detect.UsageThreshold active-use boundary.
	ScenarioEvasive Scenario = "evasive"
	// ScenarioNATChurn remaps subscriber lines to new detect.SubIDs
	// mid-window (carrier-grade NAT / forced reassignment), splitting
	// each line's evidence across identities, observed under ISP
	// sampling.
	ScenarioNATChurn Scenario = "nat-churn"
	// ScenarioSampling routes every emitted packet through a
	// per-packet sampler (sampling.Deterministic or sampling.Uniform)
	// at a configurable 1-in-N rate.
	ScenarioSampling Scenario = "sampling"
	// ScenarioExporter runs wire-level trials: emissions are encoded
	// as real NetFlow v9 and IPFIX messages, sequence lies and
	// template churn are injected, and detections come from the
	// collector decode path.
	ScenarioExporter Scenario = "exporter"
)

// Scenarios returns all scenarios in canonical (report) order.
func Scenarios() []Scenario {
	return []Scenario{
		ScenarioBaseline, ScenarioEvasive, ScenarioNATChurn,
		ScenarioSampling, ScenarioExporter,
	}
}

// ParseScenario maps a CLI name to a Scenario.
func ParseScenario(s string) (Scenario, error) {
	for _, sc := range Scenarios() {
		if string(sc) == s {
			return sc, nil
		}
	}
	return "", fmt.Errorf("unknown scenario %q (want %s)", s, ScenarioNames())
}

// ScenarioNames returns the canonical names as a "|"-joined list, for
// CLI usage strings and error messages.
func ScenarioNames() string {
	names := ""
	for i, sc := range Scenarios() {
		if i > 0 {
			names += "|"
		}
		names += string(sc)
	}
	return names
}

// ExperimentConfig sizes one experiment: a scenario run Trials times
// with seeded determinism.
type ExperimentConfig struct {
	Scenario Scenario
	// Trials is the number of independently seeded populations to run.
	Trials int
	// Seed derives every trial's RNG stream.
	Seed uint64
	// Population sizes the per-trial wild population. SamplingRate and
	// IdentifierChurn are owned by the scenario (the harness forces
	// the population itself to emit unsampled with stable
	// identifiers, then applies the scenario's distortion explicitly).
	Population isp.Config
	// WindowHours is the observation window length, anchored at the
	// start of simtime.WildWindow.
	WindowHours int
	// Threshold is the detection threshold D.
	Threshold float64
	// Shards is the pipeline shard count; results are shard-invariant.
	Shards int

	// Sampling is the vantage-point 1-in-N denominator for scenarios
	// that sample (nat-churn, sampling, exporter). 1 = unsampled.
	Sampling uint64
	// DeterministicSampler selects count-based 1-in-N sampling
	// (sampling.Deterministic) instead of uniform per-packet sampling
	// for ScenarioSampling.
	DeterministicSampler bool

	// EvasionFraction is the sticky probability that an evasive
	// device moves one (line, endpoint) flow to a jittered port.
	EvasionFraction float64
	// ChurnEveryHours is the NAT identifier remap period.
	ChurnEveryHours int

	// RestartEveryHours is the misbehaving exporter's restart period:
	// each restart switches to a fresh source ID and loses the
	// template announcement.
	RestartEveryHours int
	// TemplateEvery is the misbehaving exporter's template refresh
	// cadence in messages.
	TemplateEvery int
	// SeqLieEvery injects a lying sequence number into every N-th
	// exported message.
	SeqLieEvery int
}

// DefaultConfig returns the test-scale configuration for one scenario.
func DefaultConfig(sc Scenario, seed uint64) ExperimentConfig {
	pop := isp.DefaultConfig()
	pop.Lines = 2000
	cfg := ExperimentConfig{
		Scenario:          sc,
		Trials:            3,
		Seed:              seed,
		Population:        pop,
		WindowHours:       48,
		Threshold:         0.4,
		Shards:            1,
		Sampling:          1,
		EvasionFraction:   0.7,
		ChurnEveryHours:   6,
		RestartEveryHours: 6,
		TemplateEvery:     8,
		SeqLieEvery:       7,
	}
	switch sc {
	case ScenarioNATChurn, ScenarioExporter:
		cfg.Sampling = sampling.RateISP
	case ScenarioSampling:
		cfg.Sampling = 1000
	}
	return cfg
}

// maxWindowHours bounds WindowHours to the wild study window the
// dictionary is compiled for.
var maxWindowHours = simtime.WildWindow.Hours()

// Validate rejects configurations the runner cannot execute.
func (c *ExperimentConfig) Validate() error {
	if _, err := ParseScenario(string(c.Scenario)); err != nil {
		return err
	}
	if c.Trials < 1 {
		return fmt.Errorf("trials must be >= 1 (got %d)", c.Trials)
	}
	if c.Population.Lines < 1 || c.Population.Lines > 1<<24 {
		return fmt.Errorf("population must have 1..%d lines (got %d)", 1<<24, c.Population.Lines)
	}
	if c.WindowHours < 1 || c.WindowHours > maxWindowHours {
		return fmt.Errorf("window must be 1..%d hours (got %d)", maxWindowHours, c.WindowHours)
	}
	if c.Threshold <= 0 || c.Threshold > 1 {
		return fmt.Errorf("threshold must be in (0, 1] (got %g)", c.Threshold)
	}
	if c.Shards < 1 {
		return fmt.Errorf("shards must be >= 1 (got %d)", c.Shards)
	}
	if err := sampling.Validate(c.Sampling); err != nil {
		return err
	}
	if c.Sampling > 1_000_000 {
		return fmt.Errorf("sampling denominator %d is implausible (max 1000000)", c.Sampling)
	}
	if c.EvasionFraction < 0 || c.EvasionFraction > 1 {
		return fmt.Errorf("evasion fraction must be in [0, 1] (got %g)", c.EvasionFraction)
	}
	if c.ChurnEveryHours < 1 {
		return fmt.Errorf("churn period must be >= 1 hour (got %d)", c.ChurnEveryHours)
	}
	if c.RestartEveryHours < 1 {
		return fmt.Errorf("exporter restart period must be >= 1 hour (got %d)", c.RestartEveryHours)
	}
	if c.TemplateEvery < 1 {
		return fmt.Errorf("template refresh cadence must be >= 1 message (got %d)", c.TemplateEvery)
	}
	if c.SeqLieEvery < 1 {
		return fmt.Errorf("sequence-lie cadence must be >= 1 message (got %d)", c.SeqLieEvery)
	}
	return nil
}

// window anchors the configured duration at the wild window start.
func (c *ExperimentConfig) window() simtime.Window {
	start := simtime.WildWindow.Start
	return simtime.Window{Start: start, End: start + simtime.Hour(c.WindowHours)}
}

// RuleQuality is the aggregated confusion of one rule across trials.
type RuleQuality struct {
	TP int `json:"tp"`
	FP int `json:"fp"`
	FN int `json:"fn"`
	// TPR is TP/(TP+FN); 1 when the rule has no positives.
	TPR float64 `json:"tpr"`
	// FPR is FP over the rule's negative (line, trial) pairs.
	FPR float64 `json:"fpr"`
}

// TrialResult is the confusion of one trial over all (line, rule)
// pairs.
type TrialResult struct {
	Trial int `json:"trial"`
	TP    int `json:"tp"`
	FP    int `json:"fp"`
	FN    int `json:"fn"`
	TN    int `json:"tn"`
	// MeanDelayHours averages, over true positives, the hours from
	// window start to the firing observation.
	MeanDelayHours float64 `json:"mean_delay_hours"`
	// TemplateDrops and SequenceGaps are the wire decoders' counters
	// (ScenarioExporter only).
	TemplateDrops uint64 `json:"template_drops"`
	SequenceGaps  uint64 `json:"sequence_gaps"`
}

// ExperimentResult aggregates one scenario's trials.
type ExperimentResult struct {
	Scenario Scenario      `json:"scenario"`
	Trials   []TrialResult `json:"trials"`

	TP, FP, FN, TN int
	// TPR is the true-positive rate over all expected (line, rule)
	// pairs; FPR the false-positive rate over all unexpected pairs;
	// FNR = 1 - TPR.
	TPR float64 `json:"tpr"`
	FPR float64 `json:"fpr"`
	FNR float64 `json:"fnr"`
	// MeanDetectionDelayHours averages detection delay over all true
	// positives of all trials.
	MeanDetectionDelayHours float64 `json:"mean_detection_delay_hours"`
	// TemplateDrops and SequenceGaps sum the decoders' counters over
	// all trials (ScenarioExporter only).
	TemplateDrops uint64 `json:"template_drops"`
	SequenceGaps  uint64 `json:"sequence_gaps"`
	// PerRule breaks the confusion down by rule name.
	PerRule map[string]RuleQuality `json:"-"`
}

// Runner executes experiments against one compiled lab (world +
// dictionary). The lab is the expensive part; populations are rebuilt
// per trial from the trial's seed.
type Runner struct {
	lab *experiments.Lab
}

// NewRunner wraps a lab.
func NewRunner(lab *experiments.Lab) *Runner { return &Runner{lab: lab} }

// pair identifies one (line, rule) cell of the confusion matrix.
type pair struct {
	line int32
	rule int
}

// Run executes the configured scenario and aggregates its trials.
func (r *Runner) Run(cfg ExperimentConfig) (*ExperimentResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("adversary: %w", err)
	}
	window := cfg.window()
	or := newOracle(r.lab, cfg.Threshold)

	res := &ExperimentResult{Scenario: cfg.Scenario}
	nRules := len(r.lab.Dict.Rules)
	ruleTP := make([]int, nRules)
	ruleFP := make([]int, nRules)
	ruleFN := make([]int, nRules)
	rulePos := make([]int, nRules)
	var delaySum float64
	var delayN int

	for t := 0; t < cfg.Trials; t++ {
		tr, err := r.runTrial(cfg, t, window, or, ruleTP, ruleFP, ruleFN, rulePos, &delaySum, &delayN)
		if err != nil {
			return nil, err
		}
		res.Trials = append(res.Trials, tr)
		res.TP += tr.TP
		res.FP += tr.FP
		res.FN += tr.FN
		res.TN += tr.TN
		res.TemplateDrops += tr.TemplateDrops
		res.SequenceGaps += tr.SequenceGaps
	}

	res.TPR = ratio(res.TP, res.TP+res.FN, 1)
	res.FPR = ratio(res.FP, res.FP+res.TN, 0)
	res.FNR = 1 - res.TPR
	if delayN > 0 {
		res.MeanDetectionDelayHours = delaySum / float64(delayN)
	}

	res.PerRule = make(map[string]RuleQuality, nRules)
	lines := cfg.Trials * cfg.Population.Lines
	for ri := range r.lab.Dict.Rules {
		neg := lines - rulePos[ri]
		res.PerRule[r.lab.Dict.Rules[ri].Name] = RuleQuality{
			TP:  ruleTP[ri],
			FP:  ruleFP[ri],
			FN:  ruleFN[ri],
			TPR: ratio(ruleTP[ri], rulePos[ri], 1),
			FPR: ratio(ruleFP[ri], neg, 0),
		}
	}
	return res, nil
}

// RunAll runs every scenario with the base config's sizing, returning
// results in canonical scenario order.
func (r *Runner) RunAll(base ExperimentConfig) ([]*ExperimentResult, error) {
	var out []*ExperimentResult
	for _, sc := range Scenarios() {
		cfg := DefaultConfig(sc, base.Seed)
		cfg.Trials = base.Trials
		cfg.Population = base.Population
		cfg.WindowHours = base.WindowHours
		cfg.Threshold = base.Threshold
		cfg.Shards = base.Shards
		if base.Sampling > 1 {
			cfg.Sampling = base.Sampling
		}
		res, err := r.Run(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

func ratio(num, den int, empty float64) float64 {
	if den == 0 {
		return empty
	}
	return float64(num) / float64(den)
}

// runTrial builds one seeded population, drives it through a fresh
// sharded pipeline under the scenario's distortion, and scores the
// detections against the oracle's expected pairs.
func (r *Runner) runTrial(cfg ExperimentConfig, trial int, window simtime.Window, or *oracle,
	ruleTP, ruleFP, ruleFN, rulePos []int, delaySum *float64, delayN *int) (TrialResult, error) {

	rng := simrand.New(cfg.Seed).Fork(fmt.Sprintf("adversary-%s-trial-%d", cfg.Scenario, trial))

	// The population emits unsampled with stable identifiers; every
	// distortion (sampling, churn, wire loss) is applied explicitly by
	// the scenario so the measured degradation is attributable.
	popCfg := cfg.Population
	popCfg.SamplingRate = 1
	popCfg.IdentifierChurn = 0
	pop := isp.NewPopulation(rng.Fork("pop"), r.lab.W.Catalog, popCfg, window)

	expected := or.expectedPairs(pop)

	pipe := pipeline.New(r.lab.Dict, cfg.Threshold, cfg.Shards)
	defer pipe.Close()

	var drive *trialDrive
	var err error
	if cfg.Scenario == ScenarioExporter {
		drive, err = r.runWireTrial(cfg, rng, pop, pipe, window)
	} else {
		drive, err = r.runEmitTrial(cfg, rng, pop, pipe, window)
	}
	if err != nil {
		return TrialResult{}, err
	}

	// Score: earliest firing hour per (line, rule), any identity of
	// the line counting for the line.
	detected := make(map[pair]simtime.Hour)
	pipe.EachDetected(func(sub detect.SubID, rule int, first simtime.Hour) {
		line, ok := drive.subLine[sub]
		if !ok {
			return // never happens: every fed sub is recorded
		}
		k := pair{line: line, rule: rule}
		if h, ok := detected[k]; !ok || first < h {
			detected[k] = first
		}
	})

	tr := TrialResult{
		Trial:         trial,
		TemplateDrops: drive.templateDrops,
		SequenceGaps:  drive.sequenceGaps,
	}
	var trialDelay float64
	for k := range expected {
		rulePos[k.rule]++
		if first, ok := detected[k]; ok {
			tr.TP++
			ruleTP[k.rule]++
			d := float64(first - window.Start)
			trialDelay += d
			*delaySum += d
			*delayN++
		} else {
			tr.FN++
			ruleFN[k.rule]++
		}
	}
	for k := range detected {
		if !expected[k] {
			tr.FP++
			ruleFP[k.rule]++
		}
	}
	tr.TN = cfg.Population.Lines*len(r.lab.Dict.Rules) - tr.TP - tr.FP - tr.FN
	if tr.TP > 0 {
		tr.MeanDelayHours = trialDelay / float64(tr.TP)
	}
	return tr, nil
}

// trialDrive is what a scenario's emission drive hands back to the
// scorer: the identity→line mapping and the wire decoders' counters.
type trialDrive struct {
	subLine       map[detect.SubID]int32
	templateDrops uint64
	sequenceGaps  uint64
}

// SortedRules returns the result's per-rule breakdown in rule-name
// order — the deterministic iteration every renderer uses.
func (res *ExperimentResult) SortedRules() []string {
	names := make([]string, 0, len(res.PerRule))
	for name := range res.PerRule {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
