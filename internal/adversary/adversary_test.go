package adversary

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/experiments"
)

// The suite shares one lab (world + dictionary) and caches experiment
// results per (scenario, shards): the band assertions and the
// shard-invariance assertions read the same runs.

var (
	labOnce sync.Once
	lab     *experiments.Lab

	resMu    sync.Mutex
	resCache = map[string]*ExperimentResult{}
)

func sharedLab(t testing.TB) *experiments.Lab {
	t.Helper()
	labOnce.Do(func() {
		lab = experiments.MustNewLab(experiments.DefaultConfig(1))
	})
	return lab
}

// testConfig is the suite-scale experiment sizing: small enough to run
// all scenarios at two shard counts, large enough for stable bands.
func testConfig(sc Scenario, shards int) ExperimentConfig {
	cfg := DefaultConfig(sc, 7)
	cfg.Population.Lines = 1200
	cfg.Trials = 2
	cfg.WindowHours = 48
	cfg.Shards = shards
	return cfg
}

func runScenario(t testing.TB, sc Scenario, shards int) *ExperimentResult {
	t.Helper()
	key := string(sc) + "/" + strings.Repeat("x", shards)
	resMu.Lock()
	defer resMu.Unlock()
	if res, ok := resCache[key]; ok {
		return res
	}
	r := NewRunner(sharedLab(t))
	res, err := r.Run(testConfig(sc, shards))
	if err != nil {
		t.Fatalf("%s: %v", sc, err)
	}
	resCache[key] = res
	return res
}

// matrixBytes renders results the way the CLI does; byte equality is
// the determinism contract.
func matrixBytes(t testing.TB, results []*ExperimentResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteMatrixJSONL(&buf, results); err != nil {
		t.Fatal(err)
	}
	if err := WriteMatrixText(&buf, results, true); err != nil {
		t.Fatal(err)
	}
	if err := WriteMatrixCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestAdversaryScenariosShardInvariant is the acceptance contract:
// same seed ⇒ byte-identical matrix at shards 1 and 8, for every
// scenario.
func TestAdversaryScenariosShardInvariant(t *testing.T) {
	var one, eight []*ExperimentResult
	for _, sc := range Scenarios() {
		one = append(one, runScenario(t, sc, 1))
		eight = append(eight, runScenario(t, sc, 8))
	}
	b1 := matrixBytes(t, one)
	b8 := matrixBytes(t, eight)
	if !bytes.Equal(b1, b8) {
		t.Fatalf("matrix differs between 1 and 8 shards:\n--- shards=1\n%s\n--- shards=8\n%s", b1, b8)
	}
	if len(b1) == 0 {
		t.Fatal("empty matrix")
	}
}

// TestBaselineCooperativeBands pins the cooperative reference: with
// full visibility and stable identifiers the detector must find what
// the ground-truth oracle says is findable, and must not invent
// detections.
func TestBaselineCooperativeBands(t *testing.T) {
	res := runScenario(t, ScenarioBaseline, 1)
	if res.TP+res.FN == 0 {
		t.Fatal("baseline has no positive (line, rule) pairs; population broken")
	}
	if res.TPR < 0.9 {
		t.Errorf("baseline TPR = %.4f, want >= 0.9", res.TPR)
	}
	if res.FPR > 0.001 {
		t.Errorf("baseline FPR = %.6f, want ~0", res.FPR)
	}
	if res.MeanDetectionDelayHours < 0 || res.MeanDetectionDelayHours >= 48 {
		t.Errorf("baseline mean delay %.1f h out of window", res.MeanDetectionDelayHours)
	}
}

// TestEvasiveBelowBaseline: sticky port jitter plus active-use pacing
// must strictly cost detection coverage — the harness can tell an
// evading population from a cooperative one.
func TestEvasiveBelowBaseline(t *testing.T) {
	base := runScenario(t, ScenarioBaseline, 1)
	ev := runScenario(t, ScenarioEvasive, 1)
	if ev.TPR >= base.TPR {
		t.Errorf("evasive TPR %.4f not strictly below baseline %.4f", ev.TPR, base.TPR)
	}
	if ev.FPR > 0.001 {
		t.Errorf("evasive FPR = %.6f, want ~0 (jitter must not invent matches)", ev.FPR)
	}
}

// TestSamplingDistortsDetection: per-packet 1-in-N sampling costs
// coverage relative to the unsampled baseline, and the deterministic
// (count-based) sampler is a valid drop-in for the uniform one.
func TestSamplingDistortsDetection(t *testing.T) {
	base := runScenario(t, ScenarioBaseline, 1)
	smp := runScenario(t, ScenarioSampling, 1)
	if smp.TPR >= base.TPR {
		t.Errorf("sampled TPR %.4f not below baseline %.4f", smp.TPR, base.TPR)
	}
	if smp.FPR > 0.001 {
		t.Errorf("sampling FPR = %.6f, want ~0", smp.FPR)
	}

	cfg := testConfig(ScenarioSampling, 1)
	cfg.DeterministicSampler = true
	det, err := NewRunner(sharedLab(t)).Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if det.TP+det.FN == 0 || det.TPR <= 0 {
		t.Errorf("deterministic sampler found nothing (tpr=%.4f)", det.TPR)
	}
	if det.TPR >= base.TPR {
		t.Errorf("deterministic-sampled TPR %.4f not below baseline %.4f", det.TPR, base.TPR)
	}
}

// TestNATChurnSplitsEvidence: identifier churn under ISP sampling
// splits each line's evidence across identities and must cost
// coverage beyond sampling alone at the same rate.
func TestNATChurnSplitsEvidence(t *testing.T) {
	base := runScenario(t, ScenarioBaseline, 1)
	churn := runScenario(t, ScenarioNATChurn, 1)
	if churn.TPR >= base.TPR {
		t.Errorf("churn TPR %.4f not below baseline %.4f", churn.TPR, base.TPR)
	}

	// Same sampling rate, no churn: evidence accumulates on one
	// identity, so coverage must be at least the churned coverage.
	cfg := testConfig(ScenarioNATChurn, 1)
	cfg.ChurnEveryHours = cfg.WindowHours // one epoch = no mid-window remap
	stable, err := NewRunner(sharedLab(t)).Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if churn.TPR >= stable.TPR {
		t.Errorf("churned TPR %.4f not below stable-identity TPR %.4f at the same sampling rate",
			churn.TPR, stable.TPR)
	}
}

// TestExporterMisbehaviorOnTheWire: the wire trials must actually
// exercise the misbehavior (drops and gaps observed by the real
// collector codecs) and lose coverage relative to the baseline, while
// decoded records must never produce false detections.
func TestExporterMisbehaviorOnTheWire(t *testing.T) {
	base := runScenario(t, ScenarioBaseline, 1)
	wire := runScenario(t, ScenarioExporter, 1)
	if wire.TemplateDrops == 0 {
		t.Error("no template drops: template churn was not exercised")
	}
	if wire.SequenceGaps == 0 {
		t.Error("no sequence gaps: sequence lies were not exercised")
	}
	if wire.TPR >= base.TPR {
		t.Errorf("wire TPR %.4f not below baseline %.4f", wire.TPR, base.TPR)
	}
	if wire.TPR <= 0 {
		t.Error("wire TPR is zero: the decode path fed nothing")
	}
	if wire.FPR > 0.001 {
		t.Errorf("wire FPR = %.6f, want ~0", wire.FPR)
	}
}

// TestPerRuleQualityConsistent: the per-rule breakdown must sum to the
// scenario totals and the per-rule confusion must be self-consistent.
func TestPerRuleQualityConsistent(t *testing.T) {
	res := runScenario(t, ScenarioBaseline, 1)
	var tp, fp, fn int
	for _, name := range res.SortedRules() {
		q := res.PerRule[name]
		tp += q.TP
		fp += q.FP
		fn += q.FN
		if q.TPR < 0 || q.TPR > 1 || q.FPR < 0 || q.FPR > 1 {
			t.Errorf("%s: rates out of range: tpr=%v fpr=%v", name, q.TPR, q.FPR)
		}
	}
	if tp != res.TP || fp != res.FP || fn != res.FN {
		t.Errorf("per-rule sums (tp=%d fp=%d fn=%d) != totals (tp=%d fp=%d fn=%d)",
			tp, fp, fn, res.TP, res.FP, res.FN)
	}
}

// TestExperimentConfigValidate pins the error surface the CLI maps to
// exit 2.
func TestExperimentConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*ExperimentConfig)
		want string
	}{
		{"zero trials", func(c *ExperimentConfig) { c.Trials = 0 }, "trials"},
		{"unknown scenario", func(c *ExperimentConfig) { c.Scenario = "wormhole" }, "unknown scenario"},
		{"zero sampling", func(c *ExperimentConfig) { c.Sampling = 0 }, "sampling"},
		{"huge sampling", func(c *ExperimentConfig) { c.Sampling = 2_000_000 }, "implausible"},
		{"zero window", func(c *ExperimentConfig) { c.WindowHours = 0 }, "window"},
		{"over-long window", func(c *ExperimentConfig) { c.WindowHours = 10_000 }, "window"},
		{"bad threshold", func(c *ExperimentConfig) { c.Threshold = 0 }, "threshold"},
		{"zero shards", func(c *ExperimentConfig) { c.Shards = 0 }, "shards"},
		{"bad evasion", func(c *ExperimentConfig) { c.EvasionFraction = 1.5 }, "evasion"},
		{"zero churn period", func(c *ExperimentConfig) { c.ChurnEveryHours = 0 }, "churn"},
		{"zero restart period", func(c *ExperimentConfig) { c.RestartEveryHours = 0 }, "restart"},
		{"zero template cadence", func(c *ExperimentConfig) { c.TemplateEvery = 0 }, "template"},
		{"zero lie cadence", func(c *ExperimentConfig) { c.SeqLieEvery = 0 }, "sequence-lie"},
		{"no lines", func(c *ExperimentConfig) { c.Population.Lines = 0 }, "lines"},
	}
	for _, tc := range cases {
		cfg := DefaultConfig(ScenarioBaseline, 1)
		tc.mut(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, cfg)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	good := DefaultConfig(ScenarioEvasive, 1)
	if err := good.Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

// TestParseScenario covers the CLI name mapping.
func TestParseScenario(t *testing.T) {
	for _, sc := range Scenarios() {
		got, err := ParseScenario(string(sc))
		if err != nil || got != sc {
			t.Errorf("ParseScenario(%q) = %v, %v", sc, got, err)
		}
	}
	if _, err := ParseScenario("nope"); err == nil {
		t.Error("ParseScenario accepted an unknown name")
	}
}
