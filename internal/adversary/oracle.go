package adversary

import (
	"math/bits"

	"repro/internal/catalog"
	"repro/internal/experiments"
	"repro/internal/rules"
)

// cov is a per-rule evidence-domain bitset, wide enough for the
// largest compiled rule (≤ 64 domains today, 128 for headroom; the
// detect engine uses the same width).
type cov [2]uint64

func (c *cov) set(i int)  { c[i>>6] |= 1 << (i & 63) }
func (c *cov) or(d cov)   { c[0] |= d[0]; c[1] |= d[1] }
func (c *cov) count() int { return bits.OnesCount64(c[0]) + bits.OnesCount64(c[1]) }

// oracle computes ground truth: which (line, rule) pairs the engine
// would detect under full visibility, given the line's device
// assignment. A rule is expected when the union of the line's
// products' emission-reachable domains covers the rule's compiled
// evidence requirement and the rule's parent chain is itself expected
// — exactly the engine's firing condition with no packets lost.
type oracle struct {
	rules   []rules.Rule
	minDoms []int
	// perProduct maps a catalog product to its per-rule coverage of
	// compiled evidence domains.
	perProduct map[*catalog.Product][]cov
}

func newOracle(lab *experiments.Lab, threshold float64) *oracle {
	dict := lab.Dict
	o := &oracle{
		rules:      dict.Rules,
		minDoms:    make([]int, len(dict.Rules)),
		perProduct: make(map[*catalog.Product][]cov, len(lab.W.Catalog.Products)),
	}
	// domainBit[d] lists the (rule, bit) positions of compiled
	// evidence domain d.
	type target struct{ rule, bit int }
	domainBit := map[string][]target{}
	for ri := range dict.Rules {
		r := &dict.Rules[ri]
		o.minDoms[ri] = r.MinDomains(threshold)
		for bit, d := range r.Domains {
			domainBit[d] = append(domainBit[d], target{rule: ri, bit: bit})
		}
	}
	for _, prod := range lab.W.Catalog.Products {
		var pc []cov
		for ui := range prod.Uses {
			use := &prod.Uses[ui]
			if !emissionReachable(prod, use) {
				continue
			}
			for _, t := range domainBit[use.Domain.Name] {
				if pc == nil {
					pc = make([]cov, len(dict.Rules))
				}
				pc[t.rule].set(t.bit)
			}
		}
		if pc != nil {
			o.perProduct[prod] = pc
		}
	}
	return o
}

// emissionReachable mirrors isp.SimulateHour's traffic model: a use
// emits when it idles (IdlePPH > 0) or when the product's diurnal
// class is non-flat, which adds interactive background on top of
// ActivePPH. Flat-class products never see active traffic.
func emissionReachable(prod *catalog.Product, use *catalog.Use) bool {
	if use.IdlePPH > 0 {
		return true
	}
	nonFlat := prod.Category == catalog.CatAudio || prod.Category == catalog.CatVideo
	return nonFlat && use.ActivePPH > 0
}

// expectedPairs returns the positive (line, rule) pairs of a placed
// population.
func (o *oracle) expectedPairs(pop interface {
	EachInstance(func(line int32, prod *catalog.Product))
}) map[pair]bool {
	perLine := map[int32][]cov{}
	pop.EachInstance(func(line int32, prod *catalog.Product) {
		pc := o.perProduct[prod]
		if pc == nil {
			return
		}
		lc, ok := perLine[line]
		if !ok {
			lc = make([]cov, len(o.rules))
			perLine[line] = lc
		}
		for ri := range lc {
			lc[ri].or(pc[ri])
		}
	})

	expected := make(map[pair]bool)
	fired := make([]bool, len(o.rules))
	for line, lc := range perLine {
		for i := range fired {
			fired[i] = false
		}
		// Fixpoint over the parent hierarchy: a child's evidence only
		// counts once its parent is itself expected, and confirming a
		// parent can release children (the engine's evaluate loop).
		for changed := true; changed; {
			changed = false
			for ri := range o.rules {
				if fired[ri] || lc[ri].count() < o.minDoms[ri] {
					continue
				}
				r := &o.rules[ri]
				if r.RequireParent && r.Parent >= 0 && !fired[r.Parent] {
					continue
				}
				fired[ri] = true
				changed = true
			}
		}
		for ri, f := range fired {
			if f {
				expected[pair{line: line, rule: ri}] = true
			}
		}
	}
	return expected
}
