package adversary

// Export writers for the per-scenario detection-quality matrix,
// following the root export.go conventions: sorted deterministic
// rows, a declared CSV header matching the JSON field order, and the
// haystack:deterministic lint contract on everything that reaches an
// io.Writer — the matrix bytes are diffed across runs and across
// shard counts in tests.

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// matrixRow is one scenario in the export schema, shared by the CSV
// and JSONL writers (CSV emits the fields in declaration order).
type matrixRow struct {
	Scenario      string  `json:"scenario"`
	Trials        int     `json:"trials"`
	TPR           float64 `json:"tpr"`
	FPR           float64 `json:"fpr"`
	FNR           float64 `json:"fnr"`
	MeanDelay     float64 `json:"mean_detection_delay_hours"`
	TP            int     `json:"tp"`
	FP            int     `json:"fp"`
	FN            int     `json:"fn"`
	TN            int     `json:"tn"`
	TemplateDrops uint64  `json:"template_drops"`
	SequenceGaps  uint64  `json:"sequence_gaps"`

	// PerRule is the rule-name-sorted quality breakdown (JSONL only).
	PerRule []ruleRow `json:"per_rule,omitempty"`
}

// ruleRow is one rule's quality in the JSONL schema.
type ruleRow struct {
	Rule string  `json:"rule"`
	TP   int     `json:"tp"`
	FP   int     `json:"fp"`
	FN   int     `json:"fn"`
	TPR  float64 `json:"tpr"`
	FPR  float64 `json:"fpr"`
}

// matrixHeader is the CSV header, matching matrixRow.
var matrixHeader = []string{
	"scenario", "trials", "tpr", "fpr", "fnr", "mean_detection_delay_hours",
	"tp", "fp", "fn", "tn", "template_drops", "sequence_gaps",
}

// sortedRows renders results as export rows in scenario-name order.
//
// haystack:deterministic
func sortedRows(results []*ExperimentResult, perRule bool) []matrixRow {
	rows := make([]matrixRow, 0, len(results))
	for _, res := range results {
		row := matrixRow{
			Scenario:      string(res.Scenario),
			Trials:        len(res.Trials),
			TPR:           res.TPR,
			FPR:           res.FPR,
			FNR:           res.FNR,
			MeanDelay:     res.MeanDetectionDelayHours,
			TP:            res.TP,
			FP:            res.FP,
			FN:            res.FN,
			TN:            res.TN,
			TemplateDrops: res.TemplateDrops,
			SequenceGaps:  res.SequenceGaps,
		}
		if perRule {
			for _, name := range res.SortedRules() {
				q := res.PerRule[name]
				row.PerRule = append(row.PerRule, ruleRow{
					Rule: name, TP: q.TP, FP: q.FP, FN: q.FN, TPR: q.TPR, FPR: q.FPR,
				})
			}
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Scenario < rows[j].Scenario })
	return rows
}

// f4 renders a rate with fixed precision so bytes are comparable.
func f4(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

// WriteMatrixText writes the scenario matrix as an aligned table,
// optionally followed by a per-rule quality block per scenario.
//
// haystack:deterministic — the table bytes are compared across runs
// and shard counts.
func WriteMatrixText(w io.Writer, results []*ExperimentResult, perRule bool) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%-10s %6s %7s %7s %7s %9s %7s %5s %7s %6s %5s\n",
		"scenario", "trials", "tpr", "fpr", "fnr", "delay(h)", "tp", "fp", "fn", "drops", "gaps")
	rows := sortedRows(results, perRule)
	for _, r := range rows {
		fmt.Fprintf(bw, "%-10s %6d %7s %7s %7s %9.1f %7d %5d %7d %6d %5d\n",
			r.Scenario, r.Trials, f4(r.TPR), f4(r.FPR), f4(r.FNR), r.MeanDelay,
			r.TP, r.FP, r.FN, r.TemplateDrops, r.SequenceGaps)
	}
	if perRule {
		for _, r := range rows {
			fmt.Fprintf(bw, "\n%s per-rule quality:\n", r.Scenario)
			for _, q := range r.PerRule {
				fmt.Fprintf(bw, "  %-22s tpr=%s fpr=%s tp=%d fp=%d fn=%d\n",
					q.Rule, f4(q.TPR), f4(q.FPR), q.TP, q.FP, q.FN)
			}
		}
	}
	return bw.Flush()
}

// WriteMatrixCSV writes the scenario matrix as CSV with a header row.
//
// haystack:deterministic — export bytes are compared across runs.
func WriteMatrixCSV(w io.Writer, results []*ExperimentResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(matrixHeader); err != nil {
		return err
	}
	for _, r := range sortedRows(results, false) {
		err := cw.Write([]string{
			r.Scenario, strconv.Itoa(r.Trials),
			f4(r.TPR), f4(r.FPR), f4(r.FNR), f4(r.MeanDelay),
			strconv.Itoa(r.TP), strconv.Itoa(r.FP), strconv.Itoa(r.FN), strconv.Itoa(r.TN),
			strconv.FormatUint(r.TemplateDrops, 10), strconv.FormatUint(r.SequenceGaps, 10),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteMatrixJSONL writes one JSON object per scenario, including the
// rule-name-sorted per-rule breakdown — the machine-readable form of
// the matrix.
//
// haystack:deterministic — export bytes are compared across runs.
func WriteMatrixJSONL(w io.Writer, results []*ExperimentResult) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range sortedRows(results, true) {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return bw.Flush()
}
