package adversary

import (
	"net/netip"

	"repro/internal/detect"
	"repro/internal/isp"
	"repro/internal/pipeline"
	"repro/internal/sampling"
	"repro/internal/simrand"
	"repro/internal/simtime"
)

// runEmitTrial drives the in-memory scenarios: the population's
// emissions pass through the scenario's distortion and straight into
// pipeline observations. Single producer, hour-ordered — the
// observation stream is deterministic and shard-invariant.
func (r *Runner) runEmitTrial(cfg ExperimentConfig, rng *simrand.RNG, pop *isp.Population,
	pipe *pipeline.Pipeline, window simtime.Window) (*trialDrive, error) {

	drive := &trialDrive{subLine: map[detect.SubID]int32{}}
	prod := pipe.NewProducer()
	salt := rng.Fork("scenario-salt").Uint64()
	thinRng := rng.Fork("thin")

	// ScenarioSampling's per-packet sampler is shared across the whole
	// trial, so Deterministic's count phase carries from one
	// observation to the next — the semantics the sampling edge-case
	// tests pin.
	var smp sampling.Sampler
	if cfg.Scenario == ScenarioSampling {
		if cfg.DeterministicSampler {
			smp = sampling.NewDeterministic(cfg.Sampling)
		} else {
			smp = sampling.NewUniform(cfg.Sampling, rng.Fork("uniform-sampler"))
		}
	}

	emit := func(line int32, sub detect.SubID, h simtime.Hour, ip netip.Addr, port uint16, pkts uint64) {
		switch cfg.Scenario {
		case ScenarioEvasive:
			// Sticky per-(line, endpoint) decision: evasive firmware
			// pins a fraction of its backend flows to jittered ports,
			// moving them off the (ip, port) hitlist for good, and
			// paces every flow under the active-use threshold.
			if jittered(salt, line, ip, cfg.EvasionFraction) {
				port = jitterPort(salt, line, ip)
			}
			if pkts >= detect.UsageThreshold {
				pkts = detect.UsageThreshold - 1
			}
		case ScenarioNATChurn:
			// The line's identifier rotates every ChurnEveryHours,
			// splitting evidence across identities; the vantage point
			// samples at the ISP rate, so each identity must
			// re-accumulate evidence from sparse observations.
			epoch := uint64(h-window.Start) / uint64(cfg.ChurnEveryHours)
			sub = detect.SubID(simrand.Mix64(salt ^ uint64(line)<<20 ^ epoch))
			pkts = sampling.Thin(thinRng, pkts, cfg.Sampling)
		case ScenarioSampling:
			var sampled uint64
			for i := uint64(0); i < pkts; i++ {
				if smp.Sample() {
					sampled++
				}
			}
			pkts = sampled
		}
		if pkts == 0 {
			return
		}
		drive.subLine[sub] = line
		prod.Observe(sub, h, ip, port, pkts)
	}

	pop.SimulateWindow(window, func(d simtime.Day) isp.Resolver {
		return r.lab.W.ResolverOn(d)
	}, emit)
	prod.Close()
	return drive, nil
}

// jittered is the sticky evasion decision for one (line, endpoint)
// flow, derived from a hash so it is stable across the window and
// identical across shard counts.
func jittered(salt uint64, line int32, ip netip.Addr, frac float64) bool {
	h := evasionHash(salt, line, ip)
	return float64(h>>11)/(1<<53) < frac
}

// jitterPort picks the evasive flow's high port. The dictionary's
// hitlist holds real service ports, so anything in the ephemeral
// range never matches.
func jitterPort(salt uint64, line int32, ip netip.Addr) uint16 {
	return uint16(40000 + evasionHash(salt^0x5bf0_3635, line, ip)%20000)
}

func evasionHash(salt uint64, line int32, ip netip.Addr) uint64 {
	var v uint64
	if ip.Is4() {
		b := ip.As4()
		v = uint64(b[0])<<24 | uint64(b[1])<<16 | uint64(b[2])<<8 | uint64(b[3])
	} else {
		b := ip.As16()
		for _, x := range b[8:] {
			v = v<<8 | uint64(x)
		}
	}
	return simrand.Mix64(salt ^ uint64(line)<<32 ^ v)
}
