package adversary

import (
	"encoding/binary"
	"fmt"
	"net/netip"

	"repro/internal/detect"
	"repro/internal/flow"
	"repro/internal/ipfix"
	"repro/internal/isp"
	"repro/internal/netflow"
	"repro/internal/pipeline"
	"repro/internal/sampling"
	"repro/internal/simrand"
	"repro/internal/simtime"
)

// ScenarioExporter's wire trial: the population's (sampled) emissions
// become real flow records, the records are encoded as NetFlow v9 and
// IPFIX messages by misbehaving exporters, and detections come from
// decoding those bytes through the collector codecs into the sharded
// pipeline — the same decode path `haystack listen` runs behind its
// sockets.
//
// Two kinds of misbehavior are injected:
//
//   - template churn: the exporter "restarts" every RestartEveryHours,
//     switching to a fresh source/domain ID whose first message — the
//     template announcement — is lost. Every data set until the new
//     exporter's next template refresh is undecodable and counted by
//     the collectors' Dropped counters; its records are gone.
//   - sequence lies: every SeqLieEvery-th delivered message has its
//     header sequence number rewritten. The collectors count the
//     mismatches (Gaps) but still decode the records — detection
//     quality must not depend on exporter sequence honesty.

// wireExporter is the common surface of the NetFlow v9 and IPFIX
// encoders.
type wireExporter interface {
	Export(records []flow.Record, maxRecords int) ([][]byte, error)
}

// wireMaxRecords is the per-message record cap for wire trials: small
// enough that a lost template costs several messages of evidence.
const wireMaxRecords = 25

// wireStream is one misbehaving export stream (one protocol).
type wireStream struct {
	newExporter func(id uint32) wireExporter
	decode      func(msg []byte) ([]flow.Record, error)
	// seqOffset is the byte offset of the header's 32-bit sequence
	// field: 12 in NetFlow v9, 8 in IPFIX.
	seqOffset int

	exp          wireExporter
	srcID        uint32
	buf          []flow.Record
	delivered    int  // messages actually fed to the collector
	withholdNext bool // lose the next message (template announcement)
}

// restart simulates an exporter crash/upgrade: fresh ID, fresh
// sequence space, and a lost template announcement.
func (s *wireStream) restart() {
	s.srcID++
	s.exp = s.newExporter(s.srcID)
	s.withholdNext = true
}

// flush encodes and delivers the hour's buffered records, applying the
// stream's misbehavior, and returns the decoded records.
func (s *wireStream) flush(cfg *ExperimentConfig, out []flow.Record) ([]flow.Record, error) {
	if len(s.buf) == 0 {
		return out, nil
	}
	msgs, err := s.exp.Export(s.buf, wireMaxRecords)
	if err != nil {
		return out, fmt.Errorf("adversary: wire export: %w", err)
	}
	s.buf = s.buf[:0]
	for _, msg := range msgs {
		if s.withholdNext {
			// The restart's first message carries the template; losing
			// it orphans every data set until the next refresh.
			s.withholdNext = false
			continue
		}
		s.delivered++
		if s.delivered%cfg.SeqLieEvery == 0 {
			lieSequence(msg, s.seqOffset)
		}
		recs, err := s.decode(msg)
		if err != nil {
			return out, fmt.Errorf("adversary: wire decode: %w", err)
		}
		out = append(out, recs...)
	}
	return out, nil
}

// lieSequence rewrites the header sequence field in place.
func lieSequence(msg []byte, offset int) {
	seq := binary.BigEndian.Uint32(msg[offset : offset+4])
	binary.BigEndian.PutUint32(msg[offset:offset+4], seq+1009)
}

// runWireTrial drives one ScenarioExporter trial.
func (r *Runner) runWireTrial(cfg ExperimentConfig, rng *simrand.RNG, pop *isp.Population,
	pipe *pipeline.Pipeline, window simtime.Window) (*trialDrive, error) {

	drive := &trialDrive{subLine: map[detect.SubID]int32{}}
	prod := pipe.NewProducer()
	salt := rng.Fork("wire-salt").Uint64()
	thinRng := rng.Fork("thin")

	nfColl := netflow.NewCollector()
	ixColl := ipfix.NewCollector()
	// Subscriber lines are partitioned across the two protocol streams
	// by parity, like a deployment splitting its exporter fleet.
	nf := &wireStream{
		newExporter: func(id uint32) wireExporter {
			e := netflow.NewExporter(id)
			e.TemplateEvery = cfg.TemplateEvery
			return e
		},
		decode:    nfColl.Feed,
		seqOffset: 12,
	}
	ix := &wireStream{
		newExporter: func(id uint32) wireExporter {
			e := ipfix.NewExporter(id)
			e.TemplateEvery = cfg.TemplateEvery
			return e
		},
		decode:    ixColl.Feed,
		seqOffset: 8,
	}
	nf.srcID, ix.srcID = 100, 200
	nf.exp = nf.newExporter(nf.srcID)
	ix.exp = ix.newExporter(ix.srcID)

	hourIdx := 0
	var decoded []flow.Record
	var wireErr error
	window.Each(func(h simtime.Hour) {
		if wireErr != nil {
			return
		}
		resolver := r.lab.W.ResolverOn(h.Day())
		pop.SimulateHour(h, resolver, func(line int32, _ detect.SubID, h simtime.Hour, ip netip.Addr, port uint16, pkts uint64) {
			// The border router samples before export; the record is
			// what the wire carries.
			pkts = sampling.Thin(thinRng, pkts, cfg.Sampling)
			if pkts == 0 {
				return
			}
			rec := flow.Record{
				Key: flow.Key{
					Src:     lineAddr(line),
					Dst:     ip,
					SrcPort: uint16(49152 + uint32(line)%16000),
					DstPort: port,
					Proto:   flow.ProtoTCP,
				},
				Packets: pkts,
				Bytes:   pkts * 512,
				Hour:    h,
			}
			s := nf
			if line%2 == 1 {
				s = ix
			}
			s.buf = append(s.buf, rec)
		})
		// Hour boundary: restart misbehavior fires first, then both
		// streams flush. Messages never mix hours, so decoded record
		// hours are exact.
		if hourIdx > 0 && hourIdx%cfg.RestartEveryHours == 0 {
			nf.restart()
			ix.restart()
		}
		hourIdx++
		decoded = decoded[:0]
		for _, s := range []*wireStream{nf, ix} {
			if decoded, wireErr = s.flush(&cfg, decoded); wireErr != nil {
				return
			}
		}
		for i := range decoded {
			rec := &decoded[i]
			line, ok := lineFromAddr(rec.Key.Src)
			if !ok {
				continue
			}
			sub := detect.SubID(simrand.Mix64(salt ^ uint64(line)<<20))
			drive.subLine[sub] = line
			prod.Observe(sub, rec.Hour, rec.Key.Dst, rec.Key.DstPort, rec.Packets)
		}
	})
	prod.Close()
	if wireErr != nil {
		return nil, wireErr
	}
	drive.templateDrops = nfColl.Dropped.Load() + ixColl.Dropped.Load()
	drive.sequenceGaps = nfColl.Gaps.Load() + ixColl.Gaps.Load()
	return drive, nil
}

// lineAddr maps a subscriber line to its 10.0.0.0/8 source address.
func lineAddr(line int32) netip.Addr {
	return netip.AddrFrom4([4]byte{10, byte(line >> 16), byte(line >> 8), byte(line)})
}

// lineFromAddr inverts lineAddr.
func lineFromAddr(a netip.Addr) (int32, bool) {
	if !a.Is4() {
		return 0, false
	}
	b := a.As4()
	if b[0] != 10 {
		return 0, false
	}
	return int32(b[1])<<16 | int32(b[2])<<8 | int32(b[3]), true
}
