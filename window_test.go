package haystack

// Tests for the windowed, event-driven read side: Subscribe streams,
// Rotate window cuts, and their acceptance contract — rotation is
// loss-free and shard-invariant, and the events of a window reproduce
// its WindowResult exactly.

import (
	"fmt"
	"net"
	"net/netip"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/collector"
	"repro/internal/flow"
	"repro/internal/netflow"
	"repro/internal/simtime"
)

// merossMsgs builds NetFlow v9 messages whose single record fires the
// single-domain Meross rule for the given subscriber address.
func merossMsgs(t *testing.T, s *System, src netip.Addr, h simtime.Hour, srcID uint32) [][]byte {
	t.Helper()
	ips := s.lab.W.ResolverOn(h.Day()).Resolve("mqtt.simmeross.example")
	if len(ips) == 0 {
		t.Fatal("meross does not resolve")
	}
	dom := s.lab.W.Catalog.Domains["mqtt.simmeross.example"]
	rec := flow.Record{
		Key: flow.Key{
			Src: src, Dst: ips[0],
			SrcPort: 50123, DstPort: dom.Port, Proto: flow.ProtoTCP,
		},
		Packets: 3, Bytes: 1800, TCPFlags: 0x18,
		Hour: h,
	}
	msgs, err := netflow.NewExporter(srcID).Export([]flow.Record{rec}, 30)
	if err != nil {
		t.Fatal(err)
	}
	return msgs
}

func waitEvent(t *testing.T, ch <-chan DetectionEvent) DetectionEvent {
	t.Helper()
	select {
	case ev, ok := <-ch:
		if !ok {
			t.Fatal("event channel closed while waiting for an event")
		}
		return ev
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for a detection event")
	}
	panic("unreachable")
}

// TestDetectorRotationLossFreeShardInvariantUDP is the acceptance
// contract of the windowed API, over real loopback sockets: a run
// split across N rotated windows (each window's exporters covering a
// disjoint subscriber range) must yield the same union of
// (subscriber, rule) detections as one un-rotated single-shard run —
// at 1 engine shard and at 8 — and the events received via Subscribe
// must match each WindowResult's contents exactly.
func TestDetectorRotationLossFreeShardInvariantUDP(t *testing.T) {
	s := sharedSystem(t)
	const windows = 3
	streams := exporterStreams(t, s, windows)

	// Reference: every stream through one un-rotated single-shard
	// detector.
	single := s.NewShardedDetector(0.4, 1)
	feedStreams(t, single, streams)
	want := single.Detections()
	single.Close()
	if len(want) == 0 {
		t.Fatal("reference detector detected nothing; stream is too weak to compare")
	}

	run := func(t *testing.T, shards int) []WindowResult {
		det := s.NewShardedDetector(0.4, shards)
		defer det.Close()

		evCh, cancel := det.Subscribe()
		defer cancel()
		var evMu sync.Mutex
		eventsByWindow := map[uint64][]DetectionEvent{}
		evDone := make(chan struct{})
		go func() {
			defer close(evDone)
			for ev := range evCh {
				evMu.Lock()
				eventsByWindow[ev.Window] = append(eventsByWindow[ev.Window], ev)
				evMu.Unlock()
			}
		}()

		srv, err := det.Listen(ListenConfig{Config: collector.Config{
			Listeners:  []collector.Listener{{Addr: "127.0.0.1:0"}},
			MaxFeeds:   4,
			QueueLen:   4096,
			ReadBuffer: 4 << 20,
		}})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		addr := srv.Addrs()[0].String()

		var results []WindowResult
		total := 0
		for wi, msgs := range streams {
			conn, err := net.Dial("udp", addr)
			if err != nil {
				t.Fatal(err)
			}
			feed := func(i int, m []byte) {
				if _, err := conn.Write(m); err != nil {
					t.Fatal(err)
				}
				if i%16 == 15 {
					time.Sleep(time.Millisecond) // pace loopback bursts
				}
			}
			for i, m := range msgs {
				feed(i, m)
			}
			conn.Close()
			total += len(msgs)
			deadline := time.Now().Add(10 * time.Second)
			for srv.Stats().Datagrams < uint64(total) {
				if time.Now().After(deadline) {
					t.Fatalf("window %d: socket received %d of %d datagrams", wi, srv.Stats().Datagrams, total)
				}
				time.Sleep(time.Millisecond)
			}
			srv.Sync() // all datagrams decoded; feeds quiescent → exact cut
			res := det.Rotate()
			if res.Seq != uint64(wi) {
				t.Fatalf("window %d rotated with Seq %d", wi, res.Seq)
			}
			if got := len(det.Detections()); got != 0 {
				t.Fatalf("window %d: %d detections survive rotation", wi, got)
			}
			results = append(results, res)
		}
		if st := srv.Stats(); st.DroppedDatagrams != 0 || st.DecodeErrors != 0 {
			t.Fatalf("transport not clean: %+v", st)
		}
		srv.Close()
		det.Close() // drains the broker and closes the event stream
		<-evDone

		st := det.Stats()
		if st.EventsDropped != 0 || st.SubscriberDrops != 0 {
			t.Fatalf("event path lossy in a paced test: %+v", st)
		}
		if st.Windows != windows {
			t.Fatalf("Windows = %d, want %d", st.Windows, windows)
		}

		// Per window: events must reproduce the WindowResult exactly,
		// and RuleCounts must tally its detections.
		for wi, res := range results {
			evs := eventsByWindow[uint64(wi)]
			got := make([]Detection, len(evs))
			for i, ev := range evs {
				got[i] = Detection{Subscriber: ev.Subscriber, Rule: ev.Rule, Level: ev.Level, First: ev.First}
			}
			sortDetections(got)
			if !reflect.DeepEqual(got, res.Detections) {
				t.Fatalf("window %d: %d events diverge from %d WindowResult detections",
					wi, len(got), len(res.Detections))
			}
			counted := 0
			for _, n := range res.RuleCounts {
				counted += n
			}
			if counted != len(res.Detections) {
				t.Fatalf("window %d: RuleCounts tally %d != %d detections", wi, counted, len(res.Detections))
			}
		}
		if len(eventsByWindow) > windows {
			t.Fatalf("events stamped with %d distinct windows, want ≤ %d", len(eventsByWindow), windows)
		}
		return results
	}

	var perShard [][]WindowResult
	for _, shards := range []int{1, 8} {
		t.Run(fmt.Sprintf("shards_%d", shards), func(t *testing.T) {
			results := run(t, shards)
			// Loss-free: the union across windows equals the
			// un-rotated reference.
			var union []Detection
			for _, r := range results {
				union = append(union, r.Detections...)
			}
			sortDetections(union)
			if !reflect.DeepEqual(union, want) {
				t.Fatalf("union of %d rotated windows (%d detections) diverges from un-rotated run (%d)",
					windows, len(union), len(want))
			}
			perShard = append(perShard, results)
		})
	}
	// Shard-invariant: the same windows at 1 and 8 shards.
	if len(perShard) == 2 {
		for wi := range perShard[0] {
			a, b := perShard[0][wi], perShard[1][wi]
			if !reflect.DeepEqual(a.Detections, b.Detections) ||
				!reflect.DeepEqual(a.RuleCounts, b.RuleCounts) ||
				a.Subscribers != b.Subscribers {
				t.Fatalf("window %d diverges between 1 and 8 shards", wi)
			}
		}
	}
}

// TestDetectorRotateStandalone covers Rotate off the wire path: window
// metadata, per-rule counts, stats deltas, and re-detection of the
// same subscriber in consecutive windows.
func TestDetectorRotateStandalone(t *testing.T) {
	s := sharedSystem(t)
	det := s.NewDetector(0.4)
	defer det.Close()
	h := simtime.HourOf(s.StudyStart()) + 9
	sub := netip.MustParseAddr("100.64.9.9")

	for _, m := range merossMsgs(t, s, sub, h, 1) {
		if err := det.FeedNetFlow(m); err != nil {
			t.Fatal(err)
		}
	}
	res := det.Rotate()
	if res.Seq != 0 {
		t.Fatalf("first window Seq = %d", res.Seq)
	}
	if len(res.Detections) != 1 || res.Detections[0].Rule != "Meross Dooropener" {
		t.Fatalf("window detections = %+v", res.Detections)
	}
	if res.Detections[0].First != (h).Time() {
		t.Fatalf("first = %v, want %v", res.Detections[0].First, h.Time())
	}
	if res.RuleCounts["Meross Dooropener"] != 1 || res.Subscribers != 1 || res.DetectedSubscribers != 1 {
		t.Fatalf("window tallies = %+v", res)
	}
	if res.Records != 1 || res.RecordsIPv4 != 1 || res.RecordsIPv6 != 0 {
		t.Fatalf("window record deltas = %+v", res)
	}
	if res.End.Before(res.Start) {
		t.Fatalf("window bounds inverted: %v – %v", res.Start, res.End)
	}

	// Second window: the same subscriber re-fires, and the record
	// delta is the window's own.
	for _, m := range merossMsgs(t, s, sub, h+24, 1) {
		if err := det.FeedNetFlow(m); err != nil {
			t.Fatal(err)
		}
	}
	res2 := det.Rotate()
	if res2.Seq != 1 || len(res2.Detections) != 1 || res2.Records != 1 {
		t.Fatalf("second window = %+v", res2)
	}
	if res2.Detections[0].Subscriber != res.Detections[0].Subscriber {
		t.Fatal("same subscriber hashed differently across windows")
	}
	if !res2.Start.Equal(res.End) {
		t.Fatalf("windows not contiguous: %v then %v", res.End, res2.Start)
	}

	// Reset discards a window and cuts the baseline: the next Rotate
	// reports an empty window with zero deltas.
	for _, m := range merossMsgs(t, s, sub, h+48, 1) {
		if err := det.FeedNetFlow(m); err != nil {
			t.Fatal(err)
		}
	}
	det.Reset()
	res3 := det.Rotate()
	if res3.Seq != 3 { // Reset consumed sequence 2
		t.Fatalf("post-Reset window Seq = %d, want 3", res3.Seq)
	}
	if len(res3.Detections) != 0 || res3.Records != 0 || res3.Subscribers != 0 {
		t.Fatalf("post-Reset window not empty: %+v", res3)
	}
}

// TestDetectorSubscribeFanOutAndCancel: multiple subscribers each see
// every event, a cancelled subscriber's channel closes and stops
// receiving, and Close closes the rest.
func TestDetectorSubscribeFanOutAndCancel(t *testing.T) {
	s := sharedSystem(t)
	det := s.NewDetector(0.4)
	h := simtime.HourOf(s.StudyStart()) + 9

	chA, cancelA := det.Subscribe()
	chB, cancelB := det.Subscribe()
	defer cancelB()

	for _, m := range merossMsgs(t, s, netip.MustParseAddr("100.64.9.9"), h, 1) {
		if err := det.FeedNetFlow(m); err != nil {
			t.Fatal(err)
		}
	}
	// Force the pipeline flush that applies the observation (events
	// fire on the shard workers).
	if n := len(det.Detections()); n != 1 {
		t.Fatalf("detections = %d", n)
	}
	evA, evB := waitEvent(t, chA), waitEvent(t, chB)
	if evA != evB {
		t.Fatalf("subscribers diverge: %+v vs %+v", evA, evB)
	}
	if evA.Rule != "Meross Dooropener" || evA.Window != 0 {
		t.Fatalf("event = %+v", evA)
	}

	// Cancel A: channel closes; B keeps receiving.
	cancelA()
	cancelA() // idempotent
	if _, ok := <-chA; ok {
		t.Fatal("cancelled channel still open")
	}
	for _, m := range merossMsgs(t, s, netip.MustParseAddr("100.64.9.10"), h, 2) {
		if err := det.FeedNetFlow(m); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(det.Detections()); n != 2 {
		t.Fatalf("detections = %d", n)
	}
	ev2 := waitEvent(t, chB)
	if ev2.Subscriber == evA.Subscriber {
		t.Fatalf("second event for the same subscriber: %+v", ev2)
	}
	if st := det.Stats(); st.EventSubscribers != 1 || st.EventsEmitted != 2 {
		t.Fatalf("event stats = %+v", st)
	}

	// Close closes the remaining channel once the broker drained.
	det.Close()
	for {
		if _, ok := <-chB; !ok {
			break
		}
	}
	// Subscribing after Close yields an already-closed channel.
	chC, cancelC := det.Subscribe()
	defer cancelC()
	if _, ok := <-chC; ok {
		t.Fatal("post-Close subscription delivered an event")
	}
}

// TestDetectorCloseFlushesImplicitFeed pins the Close contract: an
// observation buffered on the lazily-created default feed must reach
// the pipeline when the detector is closed — FeedNetFlow, Close,
// Detections never loses data.
func TestDetectorCloseFlushesImplicitFeed(t *testing.T) {
	s := sharedSystem(t)
	det := s.NewDetector(0.4)
	h := simtime.HourOf(s.StudyStart()) + 9
	for _, m := range merossMsgs(t, s, netip.MustParseAddr("100.64.9.9"), h, 1) {
		if err := det.FeedNetFlow(m); err != nil {
			t.Fatal(err)
		}
	}
	det.Close()
	if n := len(det.Detections()); n != 1 {
		t.Fatalf("detections after Close = %d, want 1", n)
	}
	det.Close() // idempotent
}

// TestListenMaxFeedsDefaultsToShards: a zero ListenConfig.MaxFeeds is
// defaulted to the detector's shard count; an explicit value is
// preserved.
func TestListenMaxFeedsDefaultsToShards(t *testing.T) {
	s := sharedSystem(t)
	det := s.NewShardedDetector(0.4, 3)
	defer det.Close()
	srv, err := det.Listen(ListenConfig{Config: collector.Config{
		Listeners: []collector.Listener{{Addr: "127.0.0.1:0"}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.Stats().MaxFeeds; got != det.Shards() {
		t.Fatalf("defaulted MaxFeeds = %d, want Shards() = %d", got, det.Shards())
	}
	srv.Close()

	srv2, err := det.Listen(ListenConfig{Config: collector.Config{
		Listeners: []collector.Listener{{Addr: "127.0.0.1:0"}},
		MaxFeeds:  2,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if got := srv2.Stats().MaxFeeds; got != 2 {
		t.Fatalf("explicit MaxFeeds = %d, want 2", got)
	}
}

// TestDetectorStatsFieldSemantics pins what each DetectorStats field
// means while feeds are live: per-family record counts, skip counts,
// open feed handles, and the window sequence.
func TestDetectorStatsFieldSemantics(t *testing.T) {
	s := sharedSystem(t)
	det := s.NewShardedDetector(0.4, 2)
	defer det.Close()
	h := simtime.HourOf(s.StudyStart()) + 9

	if st := det.Stats(); st.Shards != 2 || st.OpenFeeds != 0 || st.Windows != 0 {
		t.Fatalf("fresh detector stats = %+v", st)
	}

	fa, fb := det.NewFeed(), det.NewFeed()
	if st := det.Stats(); st.OpenFeeds != 2 {
		t.Fatalf("OpenFeeds = %d, want 2", st.OpenFeeds)
	}

	// A live feed goroutine while another goroutine polls Stats: the
	// counters must be loadable mid-ingest (run under -race in CI).
	msgs := merossMsgs(t, s, netip.MustParseAddr("100.64.9.9"), h, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			for _, m := range msgs {
				if err := fa.FeedNetFlow(m); err != nil {
					t.Error(err)
					return
				}
			}
		}
		fa.Close()
	}()
	for {
		select {
		case <-done:
			goto fed
		default:
			_ = det.Stats()
		}
	}
fed:
	// A v6 subscriber and an unusable record, via the second feed.
	ips := s.lab.W.ResolverOn(h.Day()).Resolve("mqtt.simmeross.example")
	dom := s.lab.W.Catalog.Domains["mqtt.simmeross.example"]
	fb.observeBatch([]flow.Record{
		{Key: flow.Key{Src: netip.MustParseAddr("2001:db8::9"), Dst: ips[0], DstPort: dom.Port, Proto: flow.ProtoTCP}, Packets: 2, Hour: h},
		{Key: flow.Key{Dst: ips[0], DstPort: dom.Port, Proto: flow.ProtoTCP}, Packets: 2, Hour: h}, // no subscriber address
	})
	fb.Close()

	if n := len(det.Detections()); n != 2 { // v4 sub + v6 sub
		t.Fatalf("detections = %d, want 2", n)
	}
	st := det.Stats()
	if st.RecordsIPv4 != 50 {
		t.Fatalf("RecordsIPv4 = %d, want 50", st.RecordsIPv4)
	}
	if st.RecordsIPv6 != 1 {
		t.Fatalf("RecordsIPv6 = %d, want 1", st.RecordsIPv6)
	}
	if st.SkippedRecords != 1 {
		t.Fatalf("SkippedRecords = %d, want 1", st.SkippedRecords)
	}
	if st.OpenFeeds != 0 {
		t.Fatalf("OpenFeeds = %d after closing both feeds", st.OpenFeeds)
	}
	if st.InflightBatches != 0 {
		t.Fatalf("InflightBatches = %d on a quiescent detector", st.InflightBatches)
	}

	det.Reset()
	res := det.Rotate()
	if st := det.Stats(); st.Windows != 2 {
		t.Fatalf("Windows = %d after Reset + Rotate", st.Windows)
	}
	if res.Seq != 1 {
		t.Fatalf("Rotate after Reset returned Seq %d, want 1", res.Seq)
	}
	// Cumulative counters survive window cuts.
	if st := det.Stats(); st.RecordsIPv4 != 50 || st.SkippedRecords != 1 {
		t.Fatalf("cumulative counters reset by rotation: %+v", st)
	}
}
