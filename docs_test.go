package haystack

// Documentation hygiene: every relative markdown link must resolve,
// and prose references to test/benchmark symbols must not dangle —
// the docs are part of the operator-facing surface and CI runs this
// as the doc-link check step.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches [text](target); targets with a scheme or a pure
// anchor are out of scope.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func TestDocRelativeLinksResolve(t *testing.T) {
	files, err := filepath.Glob("*.md")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, sub...)
	if len(files) < 5 {
		t.Fatalf("found only %d markdown files; glob broken?", len(files))
	}
	for _, f := range files {
		body, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(body), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			target, _, _ = strings.Cut(target, "#") // strip fragment
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(f), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken relative link %q (%v)", f, m[1], err)
			}
		}
	}
}

// TestDocSymbolReferencesExist greps the markdown for Test*/Benchmark*
// identifiers and checks each names a real symbol in the Go sources,
// catching references left dangling by refactors.
func TestDocSymbolReferencesExist(t *testing.T) {
	mds, err := filepath.Glob("*.md")
	if err != nil {
		t.Fatal(err)
	}
	sub, _ := filepath.Glob("docs/*.md")
	mds = append(mds, sub...)

	var src strings.Builder
	err = filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			b, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			src.Write(b)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	code := src.String()

	sym := regexp.MustCompile(`\b(?:Test|Benchmark)[A-Z]\w+`)
	for _, f := range mds {
		body, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range sym.FindAllString(string(body), -1) {
			if !strings.Contains(code, "func "+name+"(") {
				t.Errorf("%s references %s, which no Go source defines", f, name)
			}
		}
	}
}
