package haystack

// Loopback integration tests for the TCP stream transport (RFC 7011):
// the acceptance contract is that an IPFIX run delivered over TCP —
// with messages split across every possible read boundary — produces
// detections byte-identical to the same run delivered over UDP
// loopback, at shards=1 and shards=8, and that connection teardown
// frees each source's Feed without leaking goroutines.

import (
	"net"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/collector"
	"repro/internal/ipfix"
)

// ipfixStreams builds n disjoint-subscriber IPFIX message streams —
// the TCP transport is IPFIX-only, so both runs of the identity test
// speak the same protocol.
func ipfixStreams(t testing.TB, s *System, n int) [][][]byte {
	t.Helper()
	streams := make([][][]byte, n)
	for fi := 0; fi < n; fi++ {
		msgs, err := ipfix.NewExporter(uint32(fi+1)).Export(streamRecords(t, s, fi, n), 25)
		if err != nil {
			t.Fatal(err)
		}
		streams[fi] = msgs
	}
	return streams
}

// runUDPStreams delivers the streams over loopback UDP (one source
// per stream) and returns the quiesced detections.
func runUDPStreams(t *testing.T, s *System, streams [][][]byte, shards int) []Detection {
	t.Helper()
	det := s.NewShardedDetector(0.4, shards)
	defer det.Close()
	srv, err := det.Listen(ListenConfig{Config: collector.Config{
		Listeners:  []collector.Listener{{Addr: "127.0.0.1:0", Proto: collector.ProtoIPFIX}},
		MaxFeeds:   len(streams),
		MinFeeds:   len(streams),
		QueueLen:   4096,
		ReadBuffer: 4 << 20,
	}})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addrs()[0].String()
	total := 0
	for _, msgs := range streams {
		conn, err := net.Dial("udp", addr)
		if err != nil {
			t.Fatal(err)
		}
		for i, m := range msgs {
			if _, err := conn.Write(m); err != nil {
				t.Fatal(err)
			}
			if i%16 == 15 {
				time.Sleep(time.Millisecond) // pace loopback bursts
			}
		}
		conn.Close()
		total += len(msgs)
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().Datagrams < uint64(total) {
		if time.Now().After(deadline) {
			t.Fatalf("UDP socket received %d of %d datagrams", srv.Stats().Datagrams, total)
		}
		time.Sleep(time.Millisecond)
	}
	srv.Close()
	if st := srv.Stats(); st.DroppedDatagrams != 0 || st.DecodeErrors != 0 {
		t.Fatalf("UDP transport not clean: %+v", st)
	}
	return det.Detections()
}

// runTCPStreams delivers the same streams over one TCP connection per
// exporter, splitting the byte stream across adversarial write
// boundaries, waits for connection teardown to free every feed, and
// returns the quiesced detections.
func runTCPStreams(t *testing.T, s *System, streams [][][]byte, shards int) []Detection {
	t.Helper()
	det := s.NewShardedDetector(0.4, shards)
	defer det.Close()
	srv, err := det.Listen(ListenConfig{Config: collector.Config{
		Listeners: []collector.Listener{{Addr: "127.0.0.1:0", Proto: collector.ProtoIPFIX, Net: "tcp"}},
		MaxFeeds:  len(streams),
		MinFeeds:  len(streams),
		QueueLen:  4096,
	}})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addrs()[0].String()

	total := 0
	for fi, msgs := range streams {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		var stream []byte
		for _, m := range msgs {
			stream = append(stream, m...)
		}
		total += len(msgs)
		if fi == 0 {
			// First exporter: one byte per write — a message boundary
			// split at every possible position.
			for i := range stream {
				if _, err := conn.Write(stream[i : i+1]); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			// The rest: cycling chunk widths that never align with
			// message boundaries.
			for i, w := 0, 1; i < len(stream); w = w%13 + 1 {
				n := min(w, len(stream)-i)
				if _, err := conn.Write(stream[i : i+n]); err != nil {
					t.Fatal(err)
				}
				i += n
			}
		}
		conn.Close()
	}

	// Every framed message must arrive, then every disconnect must
	// tear its source's Feed down — the detector ends with zero open
	// feeds while the server is still listening.
	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().StreamMessages < uint64(total) {
		if time.Now().After(deadline) {
			t.Fatalf("TCP framed %d of %d messages", srv.Stats().StreamMessages, total)
		}
		time.Sleep(time.Millisecond)
	}
	for det.Stats().OpenFeeds != 0 || srv.Stats().StreamConns != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("teardown incomplete: %d open feeds, %d open conns",
				det.Stats().OpenFeeds, srv.Stats().StreamConns)
		}
		time.Sleep(time.Millisecond)
	}

	st := srv.Stats()
	if st.FramingErrors != 0 || st.DroppedDatagrams != 0 || st.DecodeErrors != 0 {
		t.Fatalf("TCP transport not clean: %+v", st)
	}
	if st.StreamConnsTotal != uint64(len(streams)) {
		t.Fatalf("accepted %d connections, want %d", st.StreamConnsTotal, len(streams))
	}
	if st.Datagrams != 0 {
		t.Fatalf("UDP counters moved on a TCP-only run: %+v", st)
	}
	for _, fs := range st.Feeds {
		if fs.TemplateDrops != 0 || fs.SequenceGaps != 0 {
			t.Fatalf("feed %d transport counters dirty: %+v", fs.Feed, fs)
		}
	}
	srv.Close()
	return det.Detections()
}

// TestDetectorListenTCPMatchesUDP is the stream-transport acceptance
// contract: same IPFIX run, TCP vs UDP loopback, byte-identical
// detections at shards=1 and shards=8 — and no goroutine left behind
// once the servers and detectors close.
func TestDetectorListenTCPMatchesUDP(t *testing.T) {
	s := sharedSystem(t)
	streams := ipfixStreams(t, s, 3)
	before := runtime.NumGoroutine()

	for _, shards := range []int{1, 8} {
		want := runUDPStreams(t, s, streams, shards)
		if len(want) == 0 {
			t.Fatal("UDP reference run detected nothing; stream is too weak to compare")
		}
		got := runTCPStreams(t, s, streams, shards)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d: TCP detections diverge from UDP reference: got %d, want %d",
				shards, len(got), len(want))
		}
	}

	// Goroutine-leak check: servers, rotators, conn loops, and shard
	// workers must all be gone.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDetectorListenTCPReconnect pins the reconnect semantics at the
// detector level: an exporter that drops and redials resumes with a
// fresh feed (fresh template cache — it must resend templates, which
// the bundled exporter does on its first message) and both halves of
// the split run land in the same detector.
func TestDetectorListenTCPReconnect(t *testing.T) {
	s := sharedSystem(t)
	streams := ipfixStreams(t, s, 1)
	msgs := streams[0]
	if len(msgs) < 4 {
		t.Fatalf("stream too short to split: %d messages", len(msgs))
	}

	// The reference mirrors the reconnect exactly: two in-memory feeds
	// carrying the same two batches (the second re-led by the
	// template-bearing first message, as a restarted exporter would).
	half := len(msgs) / 2
	batches := [][][]byte{msgs[:half], append([][]byte{msgs[0]}, msgs[half:]...)}
	ref := s.NewShardedDetector(0.4, 1)
	defer ref.Close()
	for _, batch := range batches {
		f := ref.NewFeed()
		for _, m := range batch {
			if err := f.FeedIPFIX(m); err != nil {
				t.Fatal(err)
			}
		}
		f.Close()
	}
	want := ref.Detections()
	if len(want) == 0 {
		t.Fatal("reference detector detected nothing")
	}

	det := s.NewShardedDetector(0.4, 4)
	defer det.Close()
	srv, err := det.Listen(ListenConfig{Config: collector.Config{
		Listeners: []collector.Listener{{Addr: "127.0.0.1:0", Proto: collector.ProtoIPFIX, Net: "tcp"}},
		QueueLen:  4096,
	}})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addrs()[0].String()

	// First half, disconnect, then the second half on a new
	// connection, re-led by the template-bearing first message so the
	// fresh feed can decode (exactly what a restarted exporter does:
	// templates precede data on every new connection).
	sent := uint64(0)
	send := func(batch [][]byte) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range batch {
			for i := 0; i < len(m); i += 5 {
				if _, err := conn.Write(m[i:min(i+5, len(m))]); err != nil {
					t.Fatal(err)
				}
			}
		}
		conn.Close()
		sent += uint64(len(batch))
		// First every message must be framed (so the teardown wait
		// below cannot pass vacuously before the server even accepted
		// the connection), then the disconnect must free the feed.
		deadline := time.Now().Add(10 * time.Second)
		for srv.Stats().StreamMessages < sent {
			if time.Now().After(deadline) {
				t.Fatalf("framed %d of %d messages", srv.Stats().StreamMessages, sent)
			}
			time.Sleep(time.Millisecond)
		}
		for srv.Stats().StreamConns != 0 || det.Stats().OpenFeeds != 0 {
			if time.Now().After(deadline) {
				t.Fatalf("connection teardown incomplete")
			}
			time.Sleep(time.Millisecond)
		}
	}
	send(batches[0])
	send(batches[1])
	srv.Close()

	st := srv.Stats()
	if st.StreamConnsTotal != 2 || st.FramingErrors != 0 {
		t.Fatalf("transport: %+v", st)
	}
	for _, fs := range st.Feeds {
		if fs.TemplateDrops != 0 {
			t.Fatalf("reconnected feed dropped untemplated data: %+v", fs)
		}
	}
	if got := det.Detections(); !reflect.DeepEqual(got, want) {
		t.Fatalf("reconnected run diverges: got %d, want %d detections", len(got), len(want))
	}
}
